// Observability surface of the rrtcp facade: the telemetry bus and
// sinks, metrics, spans and sampled series, trace export, the live
// introspection server, and the overload guardrails.
package rrtcp

import (
	"io"

	"rrtcp/internal/experiments"
	"rrtcp/internal/guard"
	"rrtcp/internal/invariant"
	"rrtcp/internal/obs"
	"rrtcp/internal/stats"
	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
)

// --- telemetry (structured events, metrics, sinks) ---

type (
	// TelemetryBus fans structured simulation events out to sinks. A nil
	// bus is valid and publishes nothing (the default null sink).
	TelemetryBus = telemetry.Bus
	// TelemetryEvent is one structured simulation event.
	TelemetryEvent = telemetry.Event
	// TelemetrySink consumes published events.
	TelemetrySink = telemetry.Sink
	// TelemetryRing is a bounded in-memory sink, handy in tests.
	TelemetryRing = telemetry.Ring
	// NDJSONSink streams events as newline-delimited JSON.
	NDJSONSink = telemetry.NDJSONSink
	// MetricsRegistry aggregates counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSink populates a MetricsRegistry from the event stream.
	MetricsSink = telemetry.MetricsSink
)

// NewTelemetryBus returns a bus publishing to the given sinks.
func NewTelemetryBus(sinks ...telemetry.Sink) *TelemetryBus { return telemetry.NewBus(sinks...) }

// NewTelemetryRing returns an in-memory ring keeping the last n events.
func NewTelemetryRing(n int) *TelemetryRing { return telemetry.NewRing(n) }

// NewNDJSONSink returns a sink streaming events to w as NDJSON.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return telemetry.NewNDJSONSink(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewMetricsSink returns a sink aggregating events into a fresh
// registry, exposed as its R field.
func NewMetricsSink() *MetricsSink { return telemetry.NewMetricsSink() }

// --- live introspection (HTTP server, progress state) ---

type (
	// ProgressState is a concurrency-safe materialized view of sweep
	// progress events, readable while the sweep runs — the data source
	// behind the introspection server's /progress endpoint.
	ProgressState = telemetry.ProgressState
	// ProgressSnapshot is a point-in-time copy of sweep progress.
	ProgressSnapshot = telemetry.ProgressSnapshot
	// ObsServer is the live introspection HTTP server: /metrics
	// (Prometheus text format), /progress (JSON), /healthz, and
	// /debug/pprof. See internal/obs and docs/OBSERVABILITY.md.
	ObsServer = obs.Server
)

// NewProgressState returns an empty progress view, ready to subscribe
// to a sweep's progress bus alongside (or instead of) a ProgressSink.
func NewProgressState() *ProgressState { return telemetry.NewProgressState() }

// NewObsServer returns an unstarted introspection server over the
// given sources; any may be nil. Call Start(addr) to serve.
func NewObsServer(r *MetricsRegistry, p *ProgressState, f *FlowTable) *ObsServer {
	return obs.New(obs.Config{Registry: r, Progress: p, Flows: f})
}

// ValidatePrometheus structurally checks Prometheus text-format
// exposition output (the format /metrics serves).
func ValidatePrometheus(data []byte) error { return telemetry.ValidatePrometheus(data) }

// --- flow-scale analytics (aggregate accounting, exemplars, fairness) ---

type (
	// FlowTable is the constant-memory-per-flow analytics sink: it folds
	// flow lifecycle events into per-variant aggregates (FCT, goodput,
	// retransmissions, windowed Jain fairness) plus a seeded reservoir
	// of fully-detailed exemplar flows. It is the data source behind the
	// introspection server's /flows endpoint.
	FlowTable = flowstats.FlowTable
	// FlowStatsConfig parameterizes a FlowTable.
	FlowStatsConfig = flowstats.Config
	// FlowSummary is a FlowTable snapshot: the JSON-safe, mergeable unit
	// parallel sweeps reduce in job order.
	FlowSummary = flowstats.Summary
	// FlowReport is the rendered form of a FlowSummary: per-variant FCT
	// quantiles, goodput, and fairness, with text and CSV output.
	FlowReport = flowstats.Report
	// FlowVariantStats is one variant's row of a FlowReport.
	FlowVariantStats = flowstats.VariantStats
	// FlowExemplar is one reservoir-sampled flow retained in full ring
	// detail.
	FlowExemplar = flowstats.Exemplar
)

// NewFlowTable returns an empty flow-analytics table; subscribe it to a
// telemetry bus. The zero FlowStatsConfig is valid (aggregates only).
func NewFlowTable(cfg FlowStatsConfig) *FlowTable { return flowstats.New(cfg) }

// FlowTableFromRecords replays decoded NDJSON records through a fresh
// table — how `rrtrace flows` rebuilds the live /flows view offline.
func FlowTableFromRecords(records []telemetry.Record, cfg FlowStatsConfig) *FlowTable {
	return flowstats.FromRecords(records, cfg)
}

// --- spans, sampled series, and trace export ---

type (
	// Span is one timed interval assembled from the event stream: a
	// connection lifetime, a recovery episode, a retreat/probe
	// sub-phase, or a queue busy period.
	Span = telemetry.Span
	// SpanKind discriminates the span types.
	SpanKind = telemetry.SpanKind
	// SpanEvent is an instantaneous marker attached to a span.
	SpanEvent = telemetry.SpanEvent
	// SpanSink assembles spans live from a telemetry bus.
	SpanSink = telemetry.SpanSink
	// Sampler periodically records gauge series (cwnd, ssthresh,
	// actnum, srtt, rto, flight, queue occupancy) in simulated time.
	Sampler = telemetry.Sampler
	// TelemetryGaugeSource is implemented by components that expose
	// gauges to a Sampler (senders, queues).
	TelemetryGaugeSource = telemetry.GaugeSource
	// Series is one sampled gauge time series.
	Series = telemetry.Series
	// SeriesSink collects sampled series live from a telemetry bus.
	SeriesSink = telemetry.SeriesSink
	// LogHistogram is a log-bucketed HDR-style histogram for latency
	// and duration distributions.
	LogHistogram = stats.LogHistogram
	// TelemetryComponent identifies the component an event came from.
	TelemetryComponent = telemetry.Component
)

// CompQueue labels queue-scoped telemetry — the component to pass when
// wiring a Sampler to a queue instance via AddInstance.
const CompQueue = telemetry.CompQueue

// Span kinds assembled by SpanSink.
const (
	SpanConn      = telemetry.SpanConn
	SpanRecovery  = telemetry.SpanRecovery
	SpanRetreat   = telemetry.SpanRetreat
	SpanProbe     = telemetry.SpanProbe
	SpanQueueBusy = telemetry.SpanQueueBusy
)

// NewSpanSink returns a sink assembling spans from the event stream.
func NewSpanSink() *SpanSink { return telemetry.NewSpanSink() }

// NewSeriesSink returns a sink collecting sampled gauge series.
func NewSeriesSink() *SeriesSink { return telemetry.NewSeriesSink() }

// NewSampler returns a sampler publishing gauge samples on bus every
// `every` of simulated time, or nil (a safe no-op) when telemetry is
// disabled. Register sources with AddFlow/AddInstance, then Start.
func NewSampler(s *Scheduler, bus *TelemetryBus, every Time) *Sampler {
	return telemetry.NewSampler(s, bus, every)
}

// NewLogHistogram returns an empty log-bucketed histogram.
func NewLogHistogram() *LogHistogram { return stats.NewLogHistogram() }

// AssembleSpans builds the span tree from decoded NDJSON records.
func AssembleSpans(records []telemetry.Record) []*Span { return telemetry.AssembleSpans(records) }

// AssembleSeries builds sampled series from decoded NDJSON records.
func AssembleSeries(records []telemetry.Record) []*Series { return telemetry.AssembleSeries(records) }

// RenderSpans formats a span tree as an indented text listing.
func RenderSpans(spans []*Span) string { return telemetry.RenderSpans(spans) }

// WriteChromeTrace writes spans and series as Chrome trace-event JSON,
// openable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []*Span, series []*Series) error {
	return telemetry.WriteChromeTrace(w, spans, series)
}

// ValidateChromeTrace structurally checks Chrome trace-event JSON:
// well-formed traceEvents, per-track monotone timestamps, balanced
// begin/end pairs.
func ValidateChromeTrace(data []byte) error { return telemetry.ValidateChromeTrace(data) }

// WriteSeriesCSV writes sampled series as CSV (seg,comp,src,flow,t,value).
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	return telemetry.WriteSeriesCSV(w, series)
}

// --- overload guardrails: budgets, bounded telemetry, degradation ---

type (
	// GuardLimits is a set of resource budgets (events, sim-time, event
	// storm, wall clock, heap) attached to a scheduler; zero fields mean
	// "no limit".
	GuardLimits = guard.Limits
	// GuardMonitor observes one scheduler against a GuardLimits set.
	GuardMonitor = guard.Monitor
	// OverloadError is the typed error a tripped resource budget
	// produces; it carries the sweep's Degraded marker.
	OverloadError = guard.OverloadError
	// StallError is the typed error form of a liveness ("stall")
	// violation; like OverloadError it degrades rather than fails.
	StallError = invariant.StallError
	// BoundedSink wraps a telemetry sink with an event budget and drop
	// policy, with drop accounting surfaced as "telemetry-drops" events.
	BoundedSink = telemetry.BoundedSink
	// BoundedSinkConfig parameterizes a BoundedSink.
	BoundedSinkConfig = telemetry.BoundedConfig
	// TelemetryDropPolicy selects the over-budget behavior
	// (TelemetryDropNewest or TelemetrySampleOneInK).
	TelemetryDropPolicy = telemetry.DropPolicy
	// SweepDegraded is the result slot of a sweep job whose resource
	// budget tripped: the sweep completes and reports it instead of
	// failing.
	SweepDegraded = sweep.Degraded
	// StressConfig / StressResult: the overload soak (rrsim stress).
	StressConfig = experiments.StressConfig
	StressResult = experiments.StressResult
)

// Telemetry drop policies for BoundedSinkConfig.Policy.
const (
	TelemetryDropNewest   = telemetry.DropNewest
	TelemetrySampleOneInK = telemetry.SampleOneInK
)

// AttachGuard installs a resource-budget monitor on the scheduler; a
// tripped budget stops the run with a typed *OverloadError and
// publishes an "overload" telemetry event on bus (which may be nil).
func AttachGuard(sched *Scheduler, limits GuardLimits, bus *TelemetryBus) (*GuardMonitor, error) {
	return guard.Attach(sched, limits, bus)
}

// NewBoundedSink wraps inner with an event budget and drop policy.
func NewBoundedSink(inner TelemetrySink, cfg BoundedSinkConfig) *BoundedSink {
	return telemetry.NewBoundedSink(inner, cfg)
}

// SweepIsDegraded reports whether a job error carries the structural
// Degraded marker (a resource-budget trip) anywhere in its Unwrap
// chain.
func SweepIsDegraded(err error) bool { return sweep.IsDegraded(err) }

// RunStress runs the overload soak: cells of concurrent flows under
// chaos plans, invariant checking, bounded telemetry, and guard
// budgets, with budget-tripped cells degrading instead of failing.
func RunStress(cfg StressConfig) (*StressResult, error) { return experiments.Stress(cfg) }
