// Experiment surface of the rrtcp facade: analytic models, the
// table/figure runners, parallel sweeps, scenarios, and chaos.
package rrtcp

import (
	"io"

	"rrtcp/internal/experiments"
	"rrtcp/internal/faults"
	"rrtcp/internal/invariant"
	"rrtcp/internal/model"
	"rrtcp/internal/scenario"
	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
)

// --- analytic models (paper §4) ---

// SqrtModelWindow returns the Mathis et al. bound C/sqrt(p) in packets.
func SqrtModelWindow(p, c float64) float64 { return model.SqrtWindow(p, c) }

// CAckEveryPacket is the Mathis constant for ACK-every-packet receivers.
const CAckEveryPacket = model.CAckEveryPacket

// PadhyeModelWindow returns the timeout-aware Padhye et al. window.
func PadhyeModelWindow(rttSeconds, t0Seconds, p float64, b int) float64 {
	return model.PadhyeWindow(rttSeconds, t0Seconds, p, b)
}

// --- experiment runners (one per table/figure) ---

type (
	// Figure5Config / Figure5Result: drop-tail burst-loss throughput.
	Figure5Config = experiments.Figure5Config
	Figure5Result = experiments.Figure5Result
	// Figure6Config / Figure6Result: RED-gateway sequence traces.
	Figure6Config = experiments.Figure6Config
	Figure6Result = experiments.Figure6Result
	// Figure7Config / Figure7Result: square-root-model fitness.
	Figure7Config = experiments.Figure7Config
	Figure7Result = experiments.Figure7Result
	// Table5Config / Table5Case / Table5Result: fairness matrix.
	Table5Config = experiments.Table5Config
	Table5Case   = experiments.Table5Case
	Table5Result = experiments.Table5Result
	// AckLossConfig / AckLossResult: §2.3 ACK-loss robustness.
	AckLossConfig = experiments.AckLossConfig
	AckLossResult = experiments.AckLossResult
	// FairShareConfig / FairShareResult: §2.3 fair-share claim (FIFO vs
	// DRR gateways on the ACK path).
	FairShareConfig = experiments.FairShareConfig
	FairShareResult = experiments.FairShareResult
	// TwoWayConfig / TwoWayResult: two-way traffic extension ([22]).
	TwoWayConfig = experiments.TwoWayConfig
	TwoWayResult = experiments.TwoWayResult
	// SmoothStartConfig / SmoothStartResult: slow-start overshoot
	// comparison against the paper's companion refinement ([21]).
	SmoothStartConfig = experiments.SmoothStartConfig
	SmoothStartResult = experiments.SmoothStartResult
	// BurstyConfig / BurstyResult: Gilbert-Elliott correlated-loss
	// sweep (the paper's [18] loss regime).
	BurstyConfig = experiments.BurstyConfig
	BurstyResult = experiments.BurstyResult
	// AblationResult: RR design-choice matrix.
	AblationResult = experiments.AblationResult
	// ChaosConfig / ChaosResult: seeded-random fault sweep with runtime
	// invariant checking; ChaosCase and ChaosBundle are the replayable
	// units behind repro bundles.
	ChaosConfig = experiments.ChaosConfig
	ChaosResult = experiments.ChaosResult
	ChaosCase   = experiments.ChaosCase
	ChaosBundle = experiments.Bundle
	// FaultPlan is a serializable fault schedule (link flaps, reordering,
	// duplication, corruption, ACK compression) for a netem topology.
	FaultPlan = faults.PlanSpec
	// InvariantViolation is one runtime TCP-invariant breach.
	InvariantViolation = invariant.Violation
)

// RunFigure5 regenerates one Figure 5 panel.
func RunFigure5(cfg Figure5Config) (*Figure5Result, error) { return experiments.Figure5(cfg) }

// RunFigure6 regenerates the Figure 6 panels.
func RunFigure6(cfg Figure6Config) (*Figure6Result, error) { return experiments.Figure6(cfg) }

// RunFigure7 regenerates the Figure 7 sweep.
func RunFigure7(cfg Figure7Config) (*Figure7Result, error) { return experiments.Figure7(cfg) }

// RunTable5 regenerates the Table 5 fairness matrix.
func RunTable5(cfg Table5Config) (*Table5Result, error) { return experiments.Table5(cfg) }

// RunAckLoss runs the §2.3 ACK-loss robustness sweep.
func RunAckLoss(cfg AckLossConfig) (*AckLossResult, error) { return experiments.AckLoss(cfg) }

// RunFairShare runs the §2.3 fair-share gateway comparison.
func RunFairShare(cfg FairShareConfig) (*FairShareResult, error) {
	return experiments.FairShare(cfg)
}

// RunTwoWay runs the two-way-traffic extension experiment.
func RunTwoWay(cfg TwoWayConfig) (*TwoWayResult, error) {
	return experiments.TwoWay(cfg)
}

// RunSmoothStart runs the slow-start overshoot comparison.
func RunSmoothStart(cfg SmoothStartConfig) (*SmoothStartResult, error) {
	return experiments.SmoothStart(cfg)
}

// RunBursty runs the Gilbert-Elliott correlated-loss sweep.
func RunBursty(cfg BurstyConfig) (*BurstyResult, error) {
	return experiments.Bursty(cfg)
}

// --- parallel sweeps and the unified Experiment API ---

type (
	// SweepJob is one independent simulation run inside a sweep.
	SweepJob = sweep.Job
	// SweepConfig parameterizes a RunSweep call.
	SweepConfig = sweep.Config
	// Experiment is the unified interface every experiment runner
	// implements: Name, Jobs, Reduce.
	Experiment = experiments.Experiment
	// ExperimentOptions carries the CLI-facing knobs shared across
	// experiments; zero values mean "experiment default".
	ExperimentOptions = experiments.Options
	// ExperimentRunOptions controls execution (worker count, progress).
	ExperimentRunOptions = experiments.RunOptions
	// ExperimentResult is a structured result with a text rendering.
	ExperimentResult = experiments.Renderable
	// ExperimentRegistration is one named experiment in the registry.
	ExperimentRegistration = experiments.Registration
	// ProgressSink renders sweep progress events as a status line.
	ProgressSink = telemetry.ProgressSink
	// SweepRetryPolicy governs re-execution of transiently failed sweep
	// jobs with capped exponential backoff; the zero value disables
	// retry.
	SweepRetryPolicy = sweep.RetryPolicy
	// SweepJournal is a sweep checkpoint: an append-only NDJSON log of
	// completed job results that lets an interrupted sweep resume.
	SweepJournal = sweep.Journal
	// ExperimentResultCodec is implemented by experiments whose job
	// results survive a JSON round-trip — the prerequisite for
	// checkpoint/resume.
	ExperimentResultCodec = experiments.ResultCodec
)

// RunSweep fans the jobs out across a worker pool and returns their
// results in job-index order, byte-identical to sequential execution;
// see internal/sweep for the determinism contract.
func RunSweep(cfg SweepConfig, jobs []SweepJob) ([]any, error) { return sweep.Run(cfg, jobs) }

// DeriveSweepSeed returns the deterministic per-job seed the sweep
// engine uses for the job at index under a master seed.
func DeriveSweepSeed(seed int64, index int) int64 { return sweep.DeriveSeed(seed, index) }

// OpenSweepJournal opens (resume) or creates the checkpoint journal for
// the sweep identified by (cfg.Name, cfg.Seed, jobs) under dir; decode
// reconstructs one job's result from its stored JSON. Hand the journal
// to RunSweep via SweepConfig.Checkpoint and Close it afterwards.
func OpenSweepJournal(dir string, cfg SweepConfig, jobs []SweepJob, resume bool,
	decode func([]byte) (any, error)) (*SweepJournal, error) {
	return sweep.OpenJournal(dir, cfg, jobs, resume, decode)
}

// SweepTransient reports whether a sweep job failure is environmental
// (timeout, panic, injected fault — worth retrying) as opposed to a
// deterministic simulation error.
func SweepTransient(err error) bool { return sweep.Transient(err) }

// NewSweepFaultInjector returns a deterministic seeded fault injector
// for SweepConfig.FaultInjector, failing each (job, attempt) pair with
// the given probability — the chaos hook for testing retry handling.
func NewSweepFaultInjector(seed int64, rate float64) func(index, attempt int) error {
	return sweep.NewFaultInjector(seed, rate)
}

// Experiments lists every registered experiment in canonical order.
func Experiments() []ExperimentRegistration { return experiments.Experiments() }

// BuildExperiment constructs a registered experiment by name.
func BuildExperiment(name string, o ExperimentOptions) (Experiment, error) {
	return experiments.Build(name, o)
}

// RunExperiment executes an experiment end to end: expand jobs, sweep
// them across the worker pool, reduce the ordered results.
func RunExperiment(e Experiment, opt ExperimentRunOptions) (ExperimentResult, error) {
	return experiments.Run(e, opt)
}

// NewProgressSink returns a telemetry sink rendering sweep progress to
// w (typically os.Stderr).
func NewProgressSink(w io.Writer) *ProgressSink { return telemetry.NewProgressSink(w) }

// --- user-defined scenarios ---

type (
	// Scenario is a JSON-described simulation: topology, losses, flows.
	Scenario = scenario.Spec
	// ScenarioReport is a completed scenario's per-flow outcome.
	ScenarioReport = scenario.Report
)

// LoadScenario parses a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile parses a scenario from a file.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// RunAblation runs the RR design ablation matrix.
func RunAblation(drops int) (*AblationResult, error) { return experiments.Ablation(drops) }

// --- chaos / robustness ---

// RunChaos sweeps seeded-random fault schedules across the TCP
// variants under runtime invariant checking.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) { return experiments.Chaos(cfg) }

// RunChaosCase replays one chaos case (e.g. from a repro bundle).
func RunChaosCase(c ChaosCase) (*experiments.ChaosOutcome, error) {
	return experiments.RunChaosCase(c)
}

// LoadChaosBundle reads a repro bundle written by a chaos sweep.
func LoadChaosBundle(path string) (*ChaosBundle, error) { return experiments.LoadBundle(path) }

// ReplayChaosBundle re-runs a bundle's case and verifies the stored
// violation reproduces exactly.
func ReplayChaosBundle(b *ChaosBundle) (*experiments.ChaosOutcome, error) {
	return experiments.ReplayBundle(b)
}
