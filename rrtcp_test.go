package rrtcp_test

import (
	"strings"
	"testing"
	"time"

	"rrtcp"
)

func TestQuickstartTransfer(t *testing.T) {
	sched := rrtcp.NewScheduler(1)
	net, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	flow, err := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
		Kind:  rrtcp.RR,
		Bytes: 100 * 1000,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(30 * time.Second)
	delay, ok := flow.Trace.TransferDelay()
	if !ok {
		t.Fatal("transfer did not complete")
	}
	if delay <= 0 || delay > 10*time.Second {
		t.Fatalf("implausible transfer delay %v", delay)
	}
}

// TestEndToEndIntegrity runs every variant over a RED gateway with
// organic drops and checks that the application stream arrives intact
// and in order: delivered bytes form a contiguous prefix equal to the
// sender's acknowledged data.
func TestEndToEndIntegrity(t *testing.T) {
	for _, kind := range []rrtcp.Kind{rrtcp.Tahoe, rrtcp.Reno, rrtcp.NewReno, rrtcp.SACK, rrtcp.RR} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sched := rrtcp.NewScheduler(3)
			cfg := rrtcp.PaperDropTailConfig(2)
			d, err := rrtcp.NewDumbbell(sched, cfg)
			if err != nil {
				t.Fatalf("dumbbell: %v", err)
			}
			flows, err := rrtcp.InstallFlows(sched, d, []rrtcp.FlowSpec{
				{Kind: kind, Bytes: 300 * 1000, Window: 20},
				{Kind: kind, Bytes: rrtcp.Infinite, Window: 20, StartAt: 50 * time.Millisecond},
			})
			if err != nil {
				t.Fatalf("install: %v", err)
			}
			sched.Run(120 * time.Second)
			if !flows[0].Sender.Done() {
				t.Fatal("finite transfer did not complete under contention")
			}
			if flows[0].Receiver.Delivered != 300*1000 {
				t.Fatalf("delivered %d bytes, want 300000", flows[0].Receiver.Delivered)
			}
			if got := len(flows[0].Receiver.OutOfOrderBlocks()); got != 0 {
				t.Fatalf("%d out-of-order blocks left after completion", got)
			}
			if d.BottleneckQueue().Drops == 0 {
				t.Fatal("scenario produced no congestion drops; contention too weak to be meaningful")
			}
		})
	}
}

// TestDeterminism re-runs an identical RED scenario and requires
// byte-identical outcomes: the whole simulator must be seed-driven.
func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64, uint64) {
		sched := rrtcp.NewScheduler(11)
		cfg := rrtcp.PaperDropTailConfig(4)
		cfg.ForwardQueue = rrtcp.Must(rrtcp.NewREDQueue(sched, rrtcp.PaperREDConfig()))
		d, err := rrtcp.NewDumbbell(sched, cfg)
		if err != nil {
			t.Fatalf("dumbbell: %v", err)
		}
		specs := make([]rrtcp.FlowSpec, 4)
		for i := range specs {
			specs[i] = rrtcp.FlowSpec{Kind: rrtcp.RR, Bytes: rrtcp.Infinite, Window: 20,
				StartAt: time.Duration(i) * 100 * time.Millisecond}
		}
		flows, err := rrtcp.InstallFlows(sched, d, specs)
		if err != nil {
			t.Fatalf("install: %v", err)
		}
		sched.Run(10 * time.Second)
		return flows[0].Trace.BytesAcked, flows[0].Trace.Retransmits, flows[0].Trace.Timeouts
	}
	a1, r1, t1 := run()
	a2, r2, t2 := run()
	if a1 != a2 || r1 != r2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, r1, t1, a2, r2, t2)
	}
}

func TestModelHelpers(t *testing.T) {
	w := rrtcp.SqrtModelWindow(0.01, rrtcp.CAckEveryPacket)
	if w < 12 || w > 12.5 {
		t.Fatalf("SqrtModelWindow(0.01) = %v", w)
	}
	p := rrtcp.PadhyeModelWindow(0.2, 1.0, 0.01, 1)
	if p <= 0 || p > w {
		t.Fatalf("PadhyeModelWindow = %v, want in (0, %v]", p, w)
	}
}

func TestParseKindFacade(t *testing.T) {
	k, err := rrtcp.ParseKind("rr")
	if err != nil || k != rrtcp.RR {
		t.Fatalf("ParseKind: %v, %v", k, err)
	}
}

func TestStrategyConstructors(t *testing.T) {
	if rrtcp.NewRRStrategy().Name() != "rr" {
		t.Fatal("NewRRStrategy name")
	}
	s := rrtcp.NewRRStrategyWithOptions(rrtcp.RROptions{RetreatDupsPerSegment: 1})
	if s.Name() != "rr" {
		t.Fatal("NewRRStrategyWithOptions name")
	}
}

func TestFacadeQueueConstructors(t *testing.T) {
	sched := rrtcp.NewScheduler(1)
	if q, err := rrtcp.NewDropTailQueue(sched, 8); err != nil || q == nil || q.Len() != 0 {
		t.Fatalf("drop-tail constructor: %v", err)
	}
	if q, err := rrtcp.NewDRRQueue(sched, rrtcp.DRRConfig{QuantumBytes: 500, LimitPackets: 8}); err != nil || q == nil || q.Len() != 0 {
		t.Fatalf("DRR constructor: %v", err)
	}
	if q, err := rrtcp.NewREDQueue(sched, rrtcp.PaperREDConfig()); err != nil || q == nil || q.Len() != 0 {
		t.Fatalf("RED constructor: %v", err)
	}
	if _, err := rrtcp.NewDropTailQueue(sched, 0); err == nil {
		t.Fatal("drop-tail accepted zero limit")
	}
	if _, err := rrtcp.NewDRRQueue(sched, rrtcp.DRRConfig{QuantumBytes: 0, LimitPackets: 8}); err == nil {
		t.Fatal("DRR accepted zero quantum")
	}
}

func TestFacadeLossConstructors(t *testing.T) {
	sched := rrtcp.NewScheduler(1)
	sl := rrtcp.NewSeqLoss(sched)
	sl.Drop(0, 1000)
	ul := rrtcp.NewUniformLoss(sched, 0.5)
	if ul == nil || sl == nil {
		t.Fatal("loss constructors")
	}
}

func TestFacadeKinds(t *testing.T) {
	kinds := rrtcp.Kinds()
	if len(kinds) != 9 {
		t.Fatalf("%d kinds, want 9", len(kinds))
	}
}

func TestFacadeScenario(t *testing.T) {
	spec, err := rrtcp.LoadScenario(strings.NewReader(
		`{"duration":"5s","flows":[{"kind":"rr","packets":20,"window":18}]}`))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Flows) != 1 || !rep.Flows[0].Finished {
		t.Fatalf("report: %+v", rep)
	}
	if _, err := rrtcp.LoadScenarioFile("/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFacadeReverseFlow(t *testing.T) {
	sched := rrtcp.NewScheduler(1)
	d, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	f, err := rrtcp.InstallReverseFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind: rrtcp.RR, Bytes: 20 * 1000, Window: 18,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(20 * time.Second)
	if !f.Sender.Done() {
		t.Fatal("reverse flow incomplete")
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	if _, err := rrtcp.RunAckLoss(rrtcp.AckLossConfig{
		AckLossRates: []float64{0}, Seeds: []int64{1},
		Variants: []rrtcp.Kind{rrtcp.RR},
	}); err != nil {
		t.Fatalf("ackloss: %v", err)
	}
	if _, err := rrtcp.RunAblation(3); err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if _, err := rrtcp.RunFairShare(rrtcp.FairShareConfig{TransferPackets: 50}); err != nil {
		t.Fatalf("fairshare: %v", err)
	}
	if _, err := rrtcp.RunTwoWay(rrtcp.TwoWayConfig{Seeds: []int64{1}, TransferPackets: 50}); err != nil {
		t.Fatalf("twoway: %v", err)
	}
	if _, err := rrtcp.RunSmoothStart(rrtcp.SmoothStartConfig{TransferPackets: 60}); err != nil {
		t.Fatalf("smoothstart: %v", err)
	}
	if _, err := rrtcp.RunTable5(rrtcp.Table5Config{
		Seeds: []int64{1},
		Cases: []rrtcp.Table5Case{{Label: "x", Background: rrtcp.Reno, Target: rrtcp.RR}},
	}); err != nil {
		t.Fatalf("table5: %v", err)
	}
	if _, err := rrtcp.RunFigure6(rrtcp.Figure6Config{
		Variants: []rrtcp.Kind{rrtcp.RR}, Seeds: []int64{42}, Flows: 4,
	}); err != nil {
		t.Fatalf("fig6: %v", err)
	}
}

func TestFacadeStrategyPlugsIn(t *testing.T) {
	// A Strategy built through the facade drives a Sender end to end.
	sched := rrtcp.NewScheduler(1)
	d, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	strat := rrtcp.NewRRStrategyWithOptions(rrtcp.RROptions{RetreatDupsPerSegment: 1})
	flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind: rrtcp.RR, Bytes: 20 * 1000, Window: 18,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	_ = strat // constructed strategies are exercised via RROptions in FlowSpec
	sched.Run(20 * time.Second)
	if !flow.Sender.Done() {
		t.Fatal("flow incomplete")
	}
}
