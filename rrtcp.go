// Package rrtcp is the public API of this reproduction of "Robust TCP
// Congestion Recovery" (Wang & Shin, ICDCS 2001). It exposes the
// discrete-event simulator, the network elements, the TCP senders
// (Tahoe, Reno, New-Reno, SACK, and the paper's Robust Recovery), and
// the experiment runners that regenerate every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	sched := rrtcp.NewScheduler(1)
//	net, _ := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
//	flow, _ := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
//		Kind:  rrtcp.RR,
//		Bytes: 100 * 1000,
//	})
//	sched.Run(30 * time.Second)
//	delay, _ := flow.Trace.TransferDelay()
//
// See the examples/ directory for complete programs.
package rrtcp

import (
	"rrtcp/internal/core"
	"rrtcp/internal/netem"
	"rrtcp/internal/tcp"
	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// Must unwraps any constructor result, panicking on error — for call
// sites with constant, known-valid parameters:
//
//	cfg.ForwardQueue = rrtcp.Must(rrtcp.NewDropTailQueue(sched, 25))
func Must[T any](v T, err error) T { return netem.Must(v, err) }

// --- TCP ---

type (
	// Sender is one connection's sending side.
	Sender = tcp.Sender
	// Receiver is the data sink; it never needs modification for RR.
	Receiver = tcp.Receiver
	// Strategy is the pluggable congestion-control state machine.
	Strategy = tcp.Strategy
	// RROptions exposes RR's ablation knobs.
	RROptions = core.Options
)

// Infinite marks an unbounded transfer.
const Infinite = tcp.Infinite

// DefaultMSS is the paper's 1000-byte segment size.
const DefaultMSS = tcp.DefaultMSS

// NewRRStrategy returns the paper's Robust Recovery algorithm.
func NewRRStrategy() Strategy { return core.NewRR() }

// NewRRStrategyWithOptions returns RR with design knobs overridden.
func NewRRStrategyWithOptions(opts RROptions) Strategy {
	return core.NewRRWithOptions(opts)
}

// --- flows and workloads ---

type (
	// Kind selects a TCP loss-recovery variant.
	Kind = workload.Kind
	// FlowSpec describes one connection to install.
	FlowSpec = workload.FlowSpec
	// Flow is an installed connection.
	Flow = workload.Flow
	// FlowTrace records a flow's time series and counters.
	FlowTrace = trace.FlowTrace
)

// The TCP variants under evaluation: the paper's lineup plus the
// related-work schemes its introduction analyzes (right-edge recovery,
// Lin-Kung) and a modern RFC 6675-style SACK.
const (
	Tahoe      = workload.Tahoe
	Reno       = workload.Reno
	NewReno    = workload.NewReno
	SACK       = workload.SACK
	SACKModern = workload.SACKModern
	RR         = workload.RR
	RightEdge  = workload.RightEdge
	LinKung    = workload.LinKung
	FACK       = workload.FACK
)

// Kinds lists every variant in evaluation order.
func Kinds() []Kind { return workload.Kinds() }

// ParseKind converts a variant name ("tahoe", "newreno", "rr", ...).
func ParseKind(s string) (Kind, error) { return workload.ParseKind(s) }

// InstallFlow wires a flow into slot idx of the dumbbell.
func InstallFlow(s *Scheduler, d *Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	return workload.Install(s, d, idx, spec)
}

// InstallFlows installs one flow per spec.
func InstallFlows(s *Scheduler, d *Dumbbell, specs []FlowSpec) ([]*Flow, error) {
	return workload.InstallAll(s, d, specs)
}

// InstallReverseFlow wires a flow whose data crosses the bottleneck in
// the opposite direction, for two-way-traffic scenarios.
func InstallReverseFlow(s *Scheduler, d *Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	return workload.InstallReverse(s, d, idx, spec)
}
