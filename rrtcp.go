// Package rrtcp is the public API of this reproduction of "Robust TCP
// Congestion Recovery" (Wang & Shin, ICDCS 2001). It exposes the
// discrete-event simulator, the network elements, the TCP senders
// (Tahoe, Reno, New-Reno, SACK, and the paper's Robust Recovery), and
// the experiment runners that regenerate every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	sched := rrtcp.NewScheduler(1)
//	net, _ := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
//	flow, _ := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
//		Kind:  rrtcp.RR,
//		Bytes: 100 * 1000,
//	})
//	sched.Run(30 * time.Second)
//	delay, _ := flow.Trace.TransferDelay()
//
// See the examples/ directory for complete programs.
package rrtcp

import (
	"io"

	"rrtcp/internal/core"
	"rrtcp/internal/experiments"
	"rrtcp/internal/faults"
	"rrtcp/internal/guard"
	"rrtcp/internal/invariant"
	"rrtcp/internal/model"
	"rrtcp/internal/netem"
	"rrtcp/internal/obs"
	"rrtcp/internal/scenario"
	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// --- simulation engine ---

// Scheduler is the deterministic discrete-event engine driving a run.
type Scheduler = sim.Scheduler

// Time is a simulated instant (an offset from the simulation epoch).
type Time = sim.Time

// NewScheduler returns an engine with the clock at zero and all
// randomness derived from seed.
func NewScheduler(seed int64) *Scheduler { return sim.NewScheduler(seed) }

// --- network elements ---

type (
	// Packet is a simulated TCP segment or acknowledgment.
	Packet = netem.Packet
	// Node consumes packets; all network elements implement it.
	Node = netem.Node
	// Link is a point-to-point link with bandwidth and delay.
	Link = netem.Link
	// DumbbellConfig describes the paper's Figure 4 topology.
	DumbbellConfig = netem.DumbbellConfig
	// Dumbbell is the instantiated n-flow dumbbell network.
	Dumbbell = netem.Dumbbell
	// REDConfig carries the RED gateway parameters of Table 4.
	REDConfig = netem.REDConfig
	// SACKBlock is a selective-acknowledgment block.
	SACKBlock = netem.SACKBlock
)

type (
	// SeqLoss drops listed (flow, sequence) pairs exactly once — the
	// deterministic loss patterns behind the Figure 5 scenarios.
	SeqLoss = netem.SeqLoss
	// UniformLoss drops data packets i.i.d. with a fixed probability —
	// the artificial losses of the Figure 7 experiment.
	UniformLoss = netem.UniformLoss
)

// NewSeqLoss returns a deterministic loss injector, ready to be placed
// at the bottleneck via DumbbellConfig.Loss. The scheduler argument is
// unused (the injector draws no randomness); it is accepted so every
// loss constructor shares the (scheduler, params...) shape and loss
// models stay drop-in replacements for each other.
func NewSeqLoss(_ *Scheduler) *SeqLoss { return netem.NewSeqLoss(nil) }

// NewUniformLoss returns a random loss injector drawing from the
// scheduler's deterministic random source.
func NewUniformLoss(s *Scheduler, rate float64) *UniformLoss {
	return netem.NewUniformLoss(rate, s.Rand(), nil)
}

// GilbertLoss is the two-state correlated (bursty) loss channel.
type GilbertLoss = netem.GilbertLoss

// NewGilbertLoss returns a Gilbert-Elliott loss channel; see the netem
// documentation for the stationary rate and burst-length formulas.
func NewGilbertLoss(s *Scheduler, pGoodToBad, pBadToGood, pDropBad float64) *GilbertLoss {
	return netem.NewGilbertLoss(pGoodToBad, pBadToGood, pDropBad, s.Rand(), nil)
}

// QueueDiscipline is a gateway buffer policy (drop-tail or RED).
type QueueDiscipline = netem.QueueDiscipline

// NewDropTailQueue returns a finite FIFO measured in packets, or an
// error for a non-positive limit.
func NewDropTailQueue(limit int) (QueueDiscipline, error) { return netem.NewDropTail(limit) }

// NewDRRQueue returns a deficit-round-robin fair queue, or an error for
// non-positive quantum or limit.
func NewDRRQueue(quantumBytes, limitPackets int) (QueueDiscipline, error) {
	return netem.NewDRR(quantumBytes, limitPackets)
}

// NewREDQueue returns a RED gateway queue whose drop decisions draw
// from the scheduler's deterministic random source, or an error for an
// unusable configuration (see netem.NewRED).
func NewREDQueue(s *Scheduler, cfg REDConfig) (QueueDiscipline, error) {
	return netem.NewRED(cfg, s.Rand())
}

// Must unwraps any constructor result, panicking on error — for call
// sites with constant, known-valid parameters:
//
//	cfg.ForwardQueue = rrtcp.Must(rrtcp.NewDropTailQueue(25))
func Must[T any](v T, err error) T { return netem.Must(v, err) }

// MustQueue unwraps a queue-constructor result, panicking on error.
//
// Deprecated: use the generic Must, which works with every constructor
// in this package.
func MustQueue(q QueueDiscipline, err error) QueueDiscipline {
	return netem.Must(q, err)
}

// NewDumbbell builds the Figure 4 topology.
func NewDumbbell(s *Scheduler, cfg DumbbellConfig) (*Dumbbell, error) {
	return netem.NewDumbbell(s, cfg)
}

// PaperDropTailConfig returns the Table 3 drop-tail configuration.
func PaperDropTailConfig(flows int) DumbbellConfig {
	return netem.PaperDropTailConfig(flows)
}

// PaperREDConfig returns the Table 4 RED configuration.
func PaperREDConfig() REDConfig { return netem.PaperREDConfig() }

// --- TCP ---

type (
	// Sender is one connection's sending side.
	Sender = tcp.Sender
	// Receiver is the data sink; it never needs modification for RR.
	Receiver = tcp.Receiver
	// Strategy is the pluggable congestion-control state machine.
	Strategy = tcp.Strategy
	// RROptions exposes RR's ablation knobs.
	RROptions = core.Options
)

// Infinite marks an unbounded transfer.
const Infinite = tcp.Infinite

// DefaultMSS is the paper's 1000-byte segment size.
const DefaultMSS = tcp.DefaultMSS

// NewRRStrategy returns the paper's Robust Recovery algorithm.
func NewRRStrategy() Strategy { return core.NewRR() }

// NewRRStrategyWithOptions returns RR with design knobs overridden.
func NewRRStrategyWithOptions(opts RROptions) Strategy {
	return core.NewRRWithOptions(opts)
}

// --- flows and workloads ---

type (
	// Kind selects a TCP loss-recovery variant.
	Kind = workload.Kind
	// FlowSpec describes one connection to install.
	FlowSpec = workload.FlowSpec
	// Flow is an installed connection.
	Flow = workload.Flow
	// FlowTrace records a flow's time series and counters.
	FlowTrace = trace.FlowTrace
)

// The TCP variants under evaluation: the paper's lineup plus the
// related-work schemes its introduction analyzes (right-edge recovery,
// Lin-Kung) and a modern RFC 6675-style SACK.
const (
	Tahoe      = workload.Tahoe
	Reno       = workload.Reno
	NewReno    = workload.NewReno
	SACK       = workload.SACK
	SACKModern = workload.SACKModern
	RR         = workload.RR
	RightEdge  = workload.RightEdge
	LinKung    = workload.LinKung
	FACK       = workload.FACK
)

// Kinds lists every variant in evaluation order.
func Kinds() []Kind { return workload.Kinds() }

// ParseKind converts a variant name ("tahoe", "newreno", "rr", ...).
func ParseKind(s string) (Kind, error) { return workload.ParseKind(s) }

// InstallFlow wires a flow into slot idx of the dumbbell.
func InstallFlow(s *Scheduler, d *Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	return workload.Install(s, d, idx, spec)
}

// InstallFlows installs one flow per spec.
func InstallFlows(s *Scheduler, d *Dumbbell, specs []FlowSpec) ([]*Flow, error) {
	return workload.InstallAll(s, d, specs)
}

// InstallReverseFlow wires a flow whose data crosses the bottleneck in
// the opposite direction, for two-way-traffic scenarios.
func InstallReverseFlow(s *Scheduler, d *Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	return workload.InstallReverse(s, d, idx, spec)
}

// --- telemetry (structured events, metrics, sinks) ---

type (
	// TelemetryBus fans structured simulation events out to sinks. A nil
	// bus is valid and publishes nothing (the default null sink).
	TelemetryBus = telemetry.Bus
	// TelemetryEvent is one structured simulation event.
	TelemetryEvent = telemetry.Event
	// TelemetrySink consumes published events.
	TelemetrySink = telemetry.Sink
	// TelemetryRing is a bounded in-memory sink, handy in tests.
	TelemetryRing = telemetry.Ring
	// NDJSONSink streams events as newline-delimited JSON.
	NDJSONSink = telemetry.NDJSONSink
	// MetricsRegistry aggregates counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSink populates a MetricsRegistry from the event stream.
	MetricsSink = telemetry.MetricsSink
)

// NewTelemetryBus returns a bus publishing to the given sinks.
func NewTelemetryBus(sinks ...telemetry.Sink) *TelemetryBus { return telemetry.NewBus(sinks...) }

// NewTelemetryRing returns an in-memory ring keeping the last n events.
func NewTelemetryRing(n int) *TelemetryRing { return telemetry.NewRing(n) }

// NewNDJSONSink returns a sink streaming events to w as NDJSON.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return telemetry.NewNDJSONSink(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewMetricsSink returns a sink aggregating events into a fresh
// registry, exposed as its R field.
func NewMetricsSink() *MetricsSink { return telemetry.NewMetricsSink() }

// --- live introspection (HTTP server, progress state) ---

type (
	// ProgressState is a concurrency-safe materialized view of sweep
	// progress events, readable while the sweep runs — the data source
	// behind the introspection server's /progress endpoint.
	ProgressState = telemetry.ProgressState
	// ProgressSnapshot is a point-in-time copy of sweep progress.
	ProgressSnapshot = telemetry.ProgressSnapshot
	// ObsServer is the live introspection HTTP server: /metrics
	// (Prometheus text format), /progress (JSON), /healthz, and
	// /debug/pprof. See internal/obs and docs/OBSERVABILITY.md.
	ObsServer = obs.Server
)

// NewProgressState returns an empty progress view, ready to subscribe
// to a sweep's progress bus alongside (or instead of) a ProgressSink.
func NewProgressState() *ProgressState { return telemetry.NewProgressState() }

// NewObsServer returns an unstarted introspection server over the
// given sources; either may be nil. Call Start(addr) to serve.
func NewObsServer(r *MetricsRegistry, p *ProgressState) *ObsServer {
	return obs.New(obs.Config{Registry: r, Progress: p})
}

// ValidatePrometheus structurally checks Prometheus text-format
// exposition output (the format /metrics serves).
func ValidatePrometheus(data []byte) error { return telemetry.ValidatePrometheus(data) }

// SimCounters reports the process-wide simulator totals: discrete
// events processed and packets transmitted across every scheduler.
func SimCounters() (events, packets uint64) { return sim.GlobalCounters() }

// --- spans, sampled series, and trace export ---

type (
	// Span is one timed interval assembled from the event stream: a
	// connection lifetime, a recovery episode, a retreat/probe
	// sub-phase, or a queue busy period.
	Span = telemetry.Span
	// SpanKind discriminates the span types.
	SpanKind = telemetry.SpanKind
	// SpanEvent is an instantaneous marker attached to a span.
	SpanEvent = telemetry.SpanEvent
	// SpanSink assembles spans live from a telemetry bus.
	SpanSink = telemetry.SpanSink
	// Sampler periodically records gauge series (cwnd, ssthresh,
	// actnum, srtt, rto, flight, queue occupancy) in simulated time.
	Sampler = telemetry.Sampler
	// TelemetryGaugeSource is implemented by components that expose
	// gauges to a Sampler (senders, queues).
	TelemetryGaugeSource = telemetry.GaugeSource
	// Series is one sampled gauge time series.
	Series = telemetry.Series
	// SeriesSink collects sampled series live from a telemetry bus.
	SeriesSink = telemetry.SeriesSink
	// LogHistogram is a log-bucketed HDR-style histogram for latency
	// and duration distributions.
	LogHistogram = stats.LogHistogram
	// TelemetryComponent identifies the component an event came from.
	TelemetryComponent = telemetry.Component
)

// CompQueue labels queue-scoped telemetry — the component to pass when
// wiring a Sampler to a queue instance via AddInstance.
const CompQueue = telemetry.CompQueue

// Span kinds assembled by SpanSink.
const (
	SpanConn      = telemetry.SpanConn
	SpanRecovery  = telemetry.SpanRecovery
	SpanRetreat   = telemetry.SpanRetreat
	SpanProbe     = telemetry.SpanProbe
	SpanQueueBusy = telemetry.SpanQueueBusy
)

// NewSpanSink returns a sink assembling spans from the event stream.
func NewSpanSink() *SpanSink { return telemetry.NewSpanSink() }

// NewSeriesSink returns a sink collecting sampled gauge series.
func NewSeriesSink() *SeriesSink { return telemetry.NewSeriesSink() }

// NewSampler returns a sampler publishing gauge samples on bus every
// `every` of simulated time, or nil (a safe no-op) when telemetry is
// disabled. Register sources with AddFlow/AddInstance, then Start.
func NewSampler(s *Scheduler, bus *TelemetryBus, every Time) *Sampler {
	return telemetry.NewSampler(s, bus, every)
}

// NewLogHistogram returns an empty log-bucketed histogram.
func NewLogHistogram() *LogHistogram { return stats.NewLogHistogram() }

// AssembleSpans builds the span tree from decoded NDJSON records.
func AssembleSpans(records []telemetry.Record) []*Span { return telemetry.AssembleSpans(records) }

// AssembleSeries builds sampled series from decoded NDJSON records.
func AssembleSeries(records []telemetry.Record) []*Series { return telemetry.AssembleSeries(records) }

// RenderSpans formats a span tree as an indented text listing.
func RenderSpans(spans []*Span) string { return telemetry.RenderSpans(spans) }

// WriteChromeTrace writes spans and series as Chrome trace-event JSON,
// openable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []*Span, series []*Series) error {
	return telemetry.WriteChromeTrace(w, spans, series)
}

// ValidateChromeTrace structurally checks Chrome trace-event JSON:
// well-formed traceEvents, per-track monotone timestamps, balanced
// begin/end pairs.
func ValidateChromeTrace(data []byte) error { return telemetry.ValidateChromeTrace(data) }

// WriteSeriesCSV writes sampled series as CSV (seg,comp,src,flow,t,value).
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	return telemetry.WriteSeriesCSV(w, series)
}

// --- analytic models (paper §4) ---

// SqrtModelWindow returns the Mathis et al. bound C/sqrt(p) in packets.
func SqrtModelWindow(p, c float64) float64 { return model.SqrtWindow(p, c) }

// CAckEveryPacket is the Mathis constant for ACK-every-packet receivers.
const CAckEveryPacket = model.CAckEveryPacket

// PadhyeModelWindow returns the timeout-aware Padhye et al. window.
func PadhyeModelWindow(rttSeconds, t0Seconds, p float64, b int) float64 {
	return model.PadhyeWindow(rttSeconds, t0Seconds, p, b)
}

// --- experiment runners (one per table/figure) ---

type (
	// Figure5Config / Figure5Result: drop-tail burst-loss throughput.
	Figure5Config = experiments.Figure5Config
	Figure5Result = experiments.Figure5Result
	// Figure6Config / Figure6Result: RED-gateway sequence traces.
	Figure6Config = experiments.Figure6Config
	Figure6Result = experiments.Figure6Result
	// Figure7Config / Figure7Result: square-root-model fitness.
	Figure7Config = experiments.Figure7Config
	Figure7Result = experiments.Figure7Result
	// Table5Config / Table5Case / Table5Result: fairness matrix.
	Table5Config = experiments.Table5Config
	Table5Case   = experiments.Table5Case
	Table5Result = experiments.Table5Result
	// AckLossConfig / AckLossResult: §2.3 ACK-loss robustness.
	AckLossConfig = experiments.AckLossConfig
	AckLossResult = experiments.AckLossResult
	// FairShareConfig / FairShareResult: §2.3 fair-share claim (FIFO vs
	// DRR gateways on the ACK path).
	FairShareConfig = experiments.FairShareConfig
	FairShareResult = experiments.FairShareResult
	// TwoWayConfig / TwoWayResult: two-way traffic extension ([22]).
	TwoWayConfig = experiments.TwoWayConfig
	TwoWayResult = experiments.TwoWayResult
	// SmoothStartConfig / SmoothStartResult: slow-start overshoot
	// comparison against the paper's companion refinement ([21]).
	SmoothStartConfig = experiments.SmoothStartConfig
	SmoothStartResult = experiments.SmoothStartResult
	// BurstyConfig / BurstyResult: Gilbert-Elliott correlated-loss
	// sweep (the paper's [18] loss regime).
	BurstyConfig = experiments.BurstyConfig
	BurstyResult = experiments.BurstyResult
	// AblationResult: RR design-choice matrix.
	AblationResult = experiments.AblationResult
	// ChaosConfig / ChaosResult: seeded-random fault sweep with runtime
	// invariant checking; ChaosCase and ChaosBundle are the replayable
	// units behind repro bundles.
	ChaosConfig = experiments.ChaosConfig
	ChaosResult = experiments.ChaosResult
	ChaosCase   = experiments.ChaosCase
	ChaosBundle = experiments.Bundle
	// FaultPlan is a serializable fault schedule (link flaps, reordering,
	// duplication, corruption, ACK compression) for a netem topology.
	FaultPlan = faults.PlanSpec
	// InvariantViolation is one runtime TCP-invariant breach.
	InvariantViolation = invariant.Violation
)

// RunFigure5 regenerates one Figure 5 panel.
func RunFigure5(cfg Figure5Config) (*Figure5Result, error) { return experiments.Figure5(cfg) }

// RunFigure6 regenerates the Figure 6 panels.
func RunFigure6(cfg Figure6Config) (*Figure6Result, error) { return experiments.Figure6(cfg) }

// RunFigure7 regenerates the Figure 7 sweep.
func RunFigure7(cfg Figure7Config) (*Figure7Result, error) { return experiments.Figure7(cfg) }

// RunTable5 regenerates the Table 5 fairness matrix.
func RunTable5(cfg Table5Config) (*Table5Result, error) { return experiments.Table5(cfg) }

// RunAckLoss runs the §2.3 ACK-loss robustness sweep.
func RunAckLoss(cfg AckLossConfig) (*AckLossResult, error) { return experiments.AckLoss(cfg) }

// RunFairShare runs the §2.3 fair-share gateway comparison.
func RunFairShare(cfg FairShareConfig) (*FairShareResult, error) {
	return experiments.FairShare(cfg)
}

// RunTwoWay runs the two-way-traffic extension experiment.
func RunTwoWay(cfg TwoWayConfig) (*TwoWayResult, error) {
	return experiments.TwoWay(cfg)
}

// RunSmoothStart runs the slow-start overshoot comparison.
func RunSmoothStart(cfg SmoothStartConfig) (*SmoothStartResult, error) {
	return experiments.SmoothStart(cfg)
}

// RunBursty runs the Gilbert-Elliott correlated-loss sweep.
func RunBursty(cfg BurstyConfig) (*BurstyResult, error) {
	return experiments.Bursty(cfg)
}

// --- parallel sweeps and the unified Experiment API ---

type (
	// SweepJob is one independent simulation run inside a sweep.
	SweepJob = sweep.Job
	// SweepConfig parameterizes a RunSweep call.
	SweepConfig = sweep.Config
	// Experiment is the unified interface every experiment runner
	// implements: Name, Jobs, Reduce.
	Experiment = experiments.Experiment
	// ExperimentOptions carries the CLI-facing knobs shared across
	// experiments; zero values mean "experiment default".
	ExperimentOptions = experiments.Options
	// ExperimentRunOptions controls execution (worker count, progress).
	ExperimentRunOptions = experiments.RunOptions
	// ExperimentResult is a structured result with a text rendering.
	ExperimentResult = experiments.Renderable
	// ExperimentRegistration is one named experiment in the registry.
	ExperimentRegistration = experiments.Registration
	// ProgressSink renders sweep progress events as a status line.
	ProgressSink = telemetry.ProgressSink
	// SweepRetryPolicy governs re-execution of transiently failed sweep
	// jobs with capped exponential backoff; the zero value disables
	// retry.
	SweepRetryPolicy = sweep.RetryPolicy
	// SweepJournal is a sweep checkpoint: an append-only NDJSON log of
	// completed job results that lets an interrupted sweep resume.
	SweepJournal = sweep.Journal
	// ExperimentResultCodec is implemented by experiments whose job
	// results survive a JSON round-trip — the prerequisite for
	// checkpoint/resume.
	ExperimentResultCodec = experiments.ResultCodec
)

// RunSweep fans the jobs out across a worker pool and returns their
// results in job-index order, byte-identical to sequential execution;
// see internal/sweep for the determinism contract.
func RunSweep(cfg SweepConfig, jobs []SweepJob) ([]any, error) { return sweep.Run(cfg, jobs) }

// DeriveSweepSeed returns the deterministic per-job seed the sweep
// engine uses for the job at index under a master seed.
func DeriveSweepSeed(seed int64, index int) int64 { return sweep.DeriveSeed(seed, index) }

// OpenSweepJournal opens (resume) or creates the checkpoint journal for
// the sweep identified by (cfg.Name, cfg.Seed, jobs) under dir; decode
// reconstructs one job's result from its stored JSON. Hand the journal
// to RunSweep via SweepConfig.Checkpoint and Close it afterwards.
func OpenSweepJournal(dir string, cfg SweepConfig, jobs []SweepJob, resume bool,
	decode func([]byte) (any, error)) (*SweepJournal, error) {
	return sweep.OpenJournal(dir, cfg, jobs, resume, decode)
}

// SweepTransient reports whether a sweep job failure is environmental
// (timeout, panic, injected fault — worth retrying) as opposed to a
// deterministic simulation error.
func SweepTransient(err error) bool { return sweep.Transient(err) }

// NewSweepFaultInjector returns a deterministic seeded fault injector
// for SweepConfig.FaultInjector, failing each (job, attempt) pair with
// the given probability — the chaos hook for testing retry handling.
func NewSweepFaultInjector(seed int64, rate float64) func(index, attempt int) error {
	return sweep.NewFaultInjector(seed, rate)
}

// Experiments lists every registered experiment in canonical order.
func Experiments() []ExperimentRegistration { return experiments.Experiments() }

// BuildExperiment constructs a registered experiment by name.
func BuildExperiment(name string, o ExperimentOptions) (Experiment, error) {
	return experiments.Build(name, o)
}

// RunExperiment executes an experiment end to end: expand jobs, sweep
// them across the worker pool, reduce the ordered results.
func RunExperiment(e Experiment, opt ExperimentRunOptions) (ExperimentResult, error) {
	return experiments.Run(e, opt)
}

// NewProgressSink returns a telemetry sink rendering sweep progress to
// w (typically os.Stderr).
func NewProgressSink(w io.Writer) *ProgressSink { return telemetry.NewProgressSink(w) }

// --- user-defined scenarios ---

type (
	// Scenario is a JSON-described simulation: topology, losses, flows.
	Scenario = scenario.Spec
	// ScenarioReport is a completed scenario's per-flow outcome.
	ScenarioReport = scenario.Report
)

// LoadScenario parses a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile parses a scenario from a file.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// RunAblation runs the RR design ablation matrix.
func RunAblation(drops int) (*AblationResult, error) { return experiments.Ablation(drops) }

// --- chaos / robustness ---

// RunChaos sweeps seeded-random fault schedules across the TCP
// variants under runtime invariant checking.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) { return experiments.Chaos(cfg) }

// RunChaosCase replays one chaos case (e.g. from a repro bundle).
func RunChaosCase(c ChaosCase) (*experiments.ChaosOutcome, error) {
	return experiments.RunChaosCase(c)
}

// LoadChaosBundle reads a repro bundle written by a chaos sweep.
func LoadChaosBundle(path string) (*ChaosBundle, error) { return experiments.LoadBundle(path) }

// ReplayChaosBundle re-runs a bundle's case and verifies the stored
// violation reproduces exactly.
func ReplayChaosBundle(b *ChaosBundle) (*experiments.ChaosOutcome, error) {
	return experiments.ReplayBundle(b)
}

// --- overload guardrails: budgets, bounded telemetry, degradation ---

type (
	// GuardLimits is a set of resource budgets (events, sim-time, event
	// storm, wall clock, heap) attached to a scheduler; zero fields mean
	// "no limit".
	GuardLimits = guard.Limits
	// GuardMonitor observes one scheduler against a GuardLimits set.
	GuardMonitor = guard.Monitor
	// OverloadError is the typed error a tripped resource budget
	// produces; it carries the sweep's Degraded marker.
	OverloadError = guard.OverloadError
	// StallError is the typed error form of a liveness ("stall")
	// violation; like OverloadError it degrades rather than fails.
	StallError = invariant.StallError
	// BoundedSink wraps a telemetry sink with an event budget and drop
	// policy, with drop accounting surfaced as "telemetry-drops" events.
	BoundedSink = telemetry.BoundedSink
	// BoundedSinkConfig parameterizes a BoundedSink.
	BoundedSinkConfig = telemetry.BoundedConfig
	// TelemetryDropPolicy selects the over-budget behavior
	// (TelemetryDropNewest or TelemetrySampleOneInK).
	TelemetryDropPolicy = telemetry.DropPolicy
	// SweepDegraded is the result slot of a sweep job whose resource
	// budget tripped: the sweep completes and reports it instead of
	// failing.
	SweepDegraded = sweep.Degraded
	// StressConfig / StressResult: the overload soak (rrsim stress).
	StressConfig = experiments.StressConfig
	StressResult = experiments.StressResult
)

// Telemetry drop policies for BoundedSinkConfig.Policy.
const (
	TelemetryDropNewest   = telemetry.DropNewest
	TelemetrySampleOneInK = telemetry.SampleOneInK
)

// AttachGuard installs a resource-budget monitor on the scheduler; a
// tripped budget stops the run with a typed *OverloadError and
// publishes an "overload" telemetry event on bus (which may be nil).
func AttachGuard(sched *Scheduler, limits GuardLimits, bus *TelemetryBus) (*GuardMonitor, error) {
	return guard.Attach(sched, limits, bus)
}

// NewBoundedSink wraps inner with an event budget and drop policy.
func NewBoundedSink(inner TelemetrySink, cfg BoundedSinkConfig) *BoundedSink {
	return telemetry.NewBoundedSink(inner, cfg)
}

// SweepIsDegraded reports whether a job error carries the structural
// Degraded marker (a resource-budget trip) anywhere in its Unwrap
// chain.
func SweepIsDegraded(err error) bool { return sweep.IsDegraded(err) }

// RunStress runs the overload soak: cells of concurrent flows under
// chaos plans, invariant checking, bounded telemetry, and guard
// budgets, with budget-tripped cells degrading instead of failing.
func RunStress(cfg StressConfig) (*StressResult, error) { return experiments.Stress(cfg) }
