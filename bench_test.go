package rrtcp_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §4). Each benchmark runs the full
// experiment per iteration and reports domain metrics (goodput,
// transfer delay, timeouts) alongside the usual ns/op, so
// `go test -bench=. -benchmem` doubles as the reproduction driver:
//
//	BenchmarkFigure5Drop3 / Drop6 / Drop8   — Figure 5 (+ robustness sweep)
//	BenchmarkFigure6NewReno / SACK / RR     — Figure 6 panels
//	BenchmarkFigure7                        — Figure 7 sweep (reduced)
//	BenchmarkTable5Case1..4                 — Table 5 fairness matrix
//	BenchmarkAckLoss                        — §2.3 ACK-loss robustness
//	BenchmarkAblation                       — RR design-choice ablations
//
// Microbenchmarks at the bottom cover the substrate hot paths.

import (
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rrtcp"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
)

// --- Figure 5: drop-tail burst-loss throughput ---

func benchFigure5(b *testing.B, drops int) {
	b.Helper()
	var rrGoodput, sackGoodput, newrenoGoodput float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFigure5(rrtcp.Figure5Config{Drops: drops})
		if err != nil {
			b.Fatal(err)
		}
		rr, _ := res.Row(rrtcp.RR)
		sack, _ := res.Row(rrtcp.SACK)
		nr, _ := res.Row(rrtcp.NewReno)
		rrGoodput = rr.GoodputBps
		sackGoodput = sack.GoodputBps
		newrenoGoodput = nr.GoodputBps
	}
	b.ReportMetric(rrGoodput/1000, "rr-Kbps")
	b.ReportMetric(sackGoodput/1000, "sack-Kbps")
	b.ReportMetric(newrenoGoodput/1000, "newreno-Kbps")
}

func BenchmarkFigure5Drop3(b *testing.B) { benchFigure5(b, 3) }
func BenchmarkFigure5Drop6(b *testing.B) { benchFigure5(b, 6) }
func BenchmarkFigure5Drop8(b *testing.B) { benchFigure5(b, 8) }

// --- telemetry overhead ---
//
// The three benchmarks below quantify what the observability layer
// costs a Figure 5 run: nothing attached (the shipping default, one nil
// check per event site), a bus draining into the NDJSON encoder, and a
// bus retaining events in memory.

func benchFigure5Telemetry(b *testing.B, mkBus func() *rrtcp.TelemetryBus) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFigure5(rrtcp.Figure5Config{Drops: 3, Telemetry: mkBus()})
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row(rrtcp.RR); !ok || !row.Finished {
			b.Fatal("rr did not finish")
		}
	}
}

func BenchmarkFigure5NullSink(b *testing.B) {
	benchFigure5Telemetry(b, func() *rrtcp.TelemetryBus { return nil })
}

func BenchmarkFigure5NDJSONSink(b *testing.B) {
	benchFigure5Telemetry(b, func() *rrtcp.TelemetryBus {
		return rrtcp.NewTelemetryBus(rrtcp.NewNDJSONSink(io.Discard))
	})
}

func BenchmarkFigure5RingSink(b *testing.B) {
	benchFigure5Telemetry(b, func() *rrtcp.TelemetryBus {
		return rrtcp.NewTelemetryBus(rrtcp.NewTelemetryRing(4096))
	})
}

func BenchmarkFigure5FlowTableSink(b *testing.B) {
	benchFigure5Telemetry(b, func() *rrtcp.TelemetryBus {
		return rrtcp.NewTelemetryBus(rrtcp.NewFlowTable(rrtcp.FlowStatsConfig{Exemplars: 2}))
	})
}

func BenchmarkNDJSONEmit(b *testing.B) {
	sink := rrtcp.NewNDJSONSink(io.Discard)
	ev := rrtcp.TelemetryEvent{
		At:   time.Second,
		Comp: telemetry.CompRR,
		Kind: telemetry.KRecoveryEnter,
		Flow: 0, Seq: 60000, A: 13.6, B: 6.5,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Emit(ev)
	}
}

// --- Figure 6: RED gateway panels ---

func benchFigure6(b *testing.B, kind rrtcp.Kind) {
	b.Helper()
	var flow0, aggregate float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFigure6(rrtcp.Figure6Config{
			Variants: []rrtcp.Kind{kind},
			Seeds:    []int64{42, 43, 44},
		})
		if err != nil {
			b.Fatal(err)
		}
		p, _ := res.Panel(kind)
		flow0 = p.Flow0GoodputBps
		aggregate = p.AggregateGoodputBps
	}
	b.ReportMetric(flow0/1000, "flow1-Kbps")
	b.ReportMetric(aggregate/1000, "aggregate-Kbps")
}

func BenchmarkFigure6NewReno(b *testing.B) { benchFigure6(b, rrtcp.NewReno) }
func BenchmarkFigure6SACK(b *testing.B)    { benchFigure6(b, rrtcp.SACK) }
func BenchmarkFigure6RR(b *testing.B)      { benchFigure6(b, rrtcp.RR) }

// --- Figure 7: square-root-model fitness ---

func BenchmarkFigure7(b *testing.B) {
	var rrFit, sackFit float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFigure7(rrtcp.Figure7Config{
			LossRates: []float64{0.005, 0.05},
			Duration:  30 * time.Second,
			Seeds:     []int64{1},
		})
		if err != nil {
			b.Fatal(err)
		}
		rr, _ := res.Point(rrtcp.RR, 0.005)
		sack, _ := res.Point(rrtcp.SACK, 0.005)
		rrFit = rr.Window / rr.ModelWindow
		sackFit = sack.Window / sack.ModelWindow
	}
	b.ReportMetric(rrFit, "rr-window/model")
	b.ReportMetric(sackFit, "sack-window/model")
}

// --- Table 5: fairness matrix ---

func benchTable5(b *testing.B, bg, target rrtcp.Kind) {
	b.Helper()
	var delay, lossRate float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunTable5(rrtcp.Table5Config{
			Seeds: []int64{1, 2, 3},
			Cases: []rrtcp.Table5Case{{Label: "bench", Background: bg, Target: target}},
		})
		if err != nil {
			b.Fatal(err)
		}
		delay = res.Rows[0].TransferDelay.Seconds()
		lossRate = res.Rows[0].LossRate
	}
	b.ReportMetric(delay, "transfer-s")
	b.ReportMetric(lossRate*100, "loss-%")
}

func BenchmarkTable5Case1RenoOverReno(b *testing.B) { benchTable5(b, rrtcp.Reno, rrtcp.Reno) }
func BenchmarkTable5Case2RenoOverRR(b *testing.B)   { benchTable5(b, rrtcp.RR, rrtcp.Reno) }
func BenchmarkTable5Case3RROverRR(b *testing.B)     { benchTable5(b, rrtcp.RR, rrtcp.RR) }
func BenchmarkTable5Case4RROverReno(b *testing.B)   { benchTable5(b, rrtcp.Reno, rrtcp.RR) }

// --- §2.3 ACK-loss robustness ---

func BenchmarkAckLoss(b *testing.B) {
	var rrDelay float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunAckLoss(rrtcp.AckLossConfig{
			AckLossRates: []float64{0.1},
			Variants:     []rrtcp.Kind{rrtcp.NewReno, rrtcp.RR},
			Seeds:        []int64{1, 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			if pt.Variant == rrtcp.RR {
				rrDelay = pt.MeanDelay.Seconds()
			}
		}
	}
	b.ReportMetric(rrDelay, "rr-delay-s")
}

// --- RR design ablations ---

func BenchmarkAblation(b *testing.B) {
	var published, noDetect float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunAblation(3)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Variant.Label {
			case "rr (published)":
				published = row.TransferDelay.Seconds()
			case "no further-loss detection":
				noDetect = row.TransferDelay.Seconds()
			}
		}
	}
	b.ReportMetric(published, "published-s")
	b.ReportMetric(noDetect, "no-detect-s")
}

// --- substrate microbenchmarks ---

func BenchmarkSchedulerEventChurn(b *testing.B) {
	s := sim.NewScheduler(1)
	b.ReportAllocs()
	var tick func()
	remaining := b.N
	tick = func() {
		if remaining == 0 {
			return
		}
		remaining--
		if _, err := s.Schedule(time.Microsecond, tick); err != nil {
			b.Fatal(err)
		}
	}
	tick()
	b.ResetTimer()
	s.RunAll()
}

func BenchmarkREDEnqueueDequeue(b *testing.B) {
	q := netem.Must(netem.NewRED(netem.PaperREDConfig(), rand.New(rand.NewSource(1))))
	p := &netem.Packet{Kind: netem.Data, Size: 1000, Len: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, time.Duration(i)*time.Millisecond)
		q.Dequeue()
	}
}

func BenchmarkDropTailEnqueueDequeue(b *testing.B) {
	q := netem.Must(netem.NewDropTail(64))
	p := &netem.Packet{Kind: netem.Data, Size: 1000, Len: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, 0)
		q.Dequeue()
	}
}

func BenchmarkReceiverInOrder(b *testing.B) {
	sched := sim.NewScheduler(1)
	sink := netem.NodeFunc(func(*netem.Packet) {})
	r := tcp.NewReceiver(sched, 0, sink, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Receive(&netem.Packet{Flow: 0, Kind: netem.Data, Seq: int64(i) * 1000, Len: 1000, Size: 1000})
	}
}

func BenchmarkEndToEndSimulationThroughput(b *testing.B) {
	// Measures simulator speed: simulated packet deliveries per second
	// of wall time for a 10-flow RED scenario.
	for i := 0; i < b.N; i++ {
		sched := rrtcp.NewScheduler(1)
		cfg := rrtcp.PaperDropTailConfig(10)
		cfg.ForwardQueue = rrtcp.Must(rrtcp.NewREDQueue(sched, rrtcp.PaperREDConfig()))
		d, err := rrtcp.NewDumbbell(sched, cfg)
		if err != nil {
			b.Fatal(err)
		}
		specs := make([]rrtcp.FlowSpec, 10)
		for j := range specs {
			specs[j] = rrtcp.FlowSpec{Kind: rrtcp.RR, Bytes: rrtcp.Infinite, Window: 30}
		}
		if _, err := rrtcp.InstallFlows(sched, d, specs); err != nil {
			b.Fatal(err)
		}
		sched.Run(6 * time.Second)
	}
}

// --- headline simulator-speed benchmarks ---
//
// BenchmarkEventsPerSec and BenchmarkPacketsPerSec are the repo's
// committed performance trajectory (BENCH_core.json): scheduler events
// and simulated packet transmissions per wall second on the standard
// 10-flow RED dumbbell, plus heap allocations per event. tools/benchdiff
// compares these numbers across PRs; see docs/OBSERVABILITY.md.

// runHeadlineWorld builds and runs the standard measurement scenario,
// returning the scheduler (for its counters) and the topology (for its
// packet pool).
func runHeadlineWorld(b *testing.B) (*rrtcp.Scheduler, *rrtcp.Dumbbell) {
	b.Helper()
	sched := rrtcp.NewScheduler(1)
	cfg := rrtcp.PaperDropTailConfig(10)
	cfg.ForwardQueue = rrtcp.Must(rrtcp.NewREDQueue(sched, rrtcp.PaperREDConfig()))
	d, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]rrtcp.FlowSpec, 10)
	for j := range specs {
		specs[j] = rrtcp.FlowSpec{Kind: rrtcp.RR, Bytes: rrtcp.Infinite, Window: 30}
	}
	if _, err := rrtcp.InstallFlows(sched, d, specs); err != nil {
		b.Fatal(err)
	}
	sched.Run(6 * time.Second)
	return sched, d
}

// reportHeadlineWorkingSet publishes the engine working-set metrics the
// performance trajectory tracks alongside throughput: the deepest the
// pending-event heap got, and the packet pool's recycling hit rate
// (fraction of Gets served without allocating).
func reportHeadlineWorkingSet(b *testing.B, heapHighWater int, poolGets, poolHits uint64) {
	b.Helper()
	b.ReportMetric(float64(heapHighWater), "heap-highwater")
	if poolGets > 0 {
		b.ReportMetric(float64(poolHits)/float64(poolGets), "pool-hit-ratio")
	}
}

func BenchmarkEventsPerSec(b *testing.B) {
	var events, poolGets, poolHits uint64
	highWater := 0
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, d := runHeadlineWorld(b)
		events += sched.Processed()
		if hw := sched.HeapHighWater(); hw > highWater {
			highWater = hw
		}
		poolGets += d.Pool().Gets
		poolHits += d.Pool().Hits
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
	if events > 0 {
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(events), "allocs/event")
	}
	reportHeadlineWorkingSet(b, highWater, poolGets, poolHits)
}

func BenchmarkPacketsPerSec(b *testing.B) {
	var poolGets, poolHits uint64
	highWater := 0
	_, before := rrtcp.SimCounters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, d := runHeadlineWorld(b)
		if hw := sched.HeapHighWater(); hw > highWater {
			highWater = hw
		}
		poolGets += d.Pool().Gets
		poolHits += d.Pool().Hits
	}
	b.StopTimer()
	_, after := rrtcp.SimCounters()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(after-before)/secs, "packets/sec")
	}
	reportHeadlineWorkingSet(b, highWater, poolGets, poolHits)
}

// --- live-introspection overhead ---
//
// The pair below prices the -http introspection server against the
// acceptance bar (<5% overhead): the identical parallel chaos sweep
// with no observers, and with the full live stack — metrics sink,
// progress state, HTTP server, and a client scraping /metrics and
// /progress every 50ms throughout the run. 50ms is already ~300x
// more aggressive than a default Prometheus scrape interval; anything
// tighter measures the scraper's own CPU appetite on small machines,
// not the cost of having introspection enabled.

func runBenchChaos(b *testing.B, runOpt rrtcp.ExperimentRunOptions) {
	b.Helper()
	e, err := rrtcp.BuildExperiment("chaos", rrtcp.ExperimentOptions{
		Runs:     6,
		Seed:     7,
		Variants: []rrtcp.Kind{rrtcp.NewReno, rrtcp.RR},
		Bytes:    60 * 1000,
		Horizon:  20 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rrtcp.RunExperiment(e, runOpt); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkChaosParallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runBenchChaos(b, rrtcp.ExperimentRunOptions{Parallel: 4})
	}
}

func BenchmarkChaosParallel4LiveHTTP(b *testing.B) {
	sink := rrtcp.NewMetricsSink()
	ps := rrtcp.NewProgressState()
	srv := rrtcp.NewObsServer(sink.R, ps, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			for _, path := range []string{"/metrics", "/progress"} {
				resp, err := http.Get("http://" + addr + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	bus := rrtcp.NewTelemetryBus(sink, ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchChaos(b, rrtcp.ExperimentRunOptions{Parallel: 4, Progress: bus})
	}
	b.StopTimer()
	stop.Store(true)
	<-done
}

// --- §2.3 fair-share gateways ---

func BenchmarkFairShare(b *testing.B) {
	var fifoLoss, drrLoss float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFairShare(rrtcp.FairShareConfig{})
		if err != nil {
			b.Fatal(err)
		}
		fifo, _ := res.Row("fifo")
		drr, _ := res.Row("drr")
		fifoLoss = fifo.AckLossRate
		drrLoss = drr.AckLossRate
	}
	b.ReportMetric(fifoLoss*100, "fifo-ackloss-%")
	b.ReportMetric(drrLoss*100, "drr-ackloss-%")
}

// --- two-way traffic extension ---

func BenchmarkTwoWay(b *testing.B) {
	var rrDelay, newrenoDelay float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunTwoWay(rrtcp.TwoWayConfig{Seeds: []int64{1, 2}})
		if err != nil {
			b.Fatal(err)
		}
		rr, _ := res.Row(rrtcp.RR)
		nr, _ := res.Row(rrtcp.NewReno)
		rrDelay = rr.MeanDelay.Seconds()
		newrenoDelay = nr.MeanDelay.Seconds()
	}
	b.ReportMetric(rrDelay, "rr-delay-s")
	b.ReportMetric(newrenoDelay, "newreno-delay-s")
}

// --- Smooth-start [21] ---

func BenchmarkSmoothStart(b *testing.B) {
	var classicDrops, smoothDrops float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunSmoothStart(rrtcp.SmoothStartConfig{})
		if err != nil {
			b.Fatal(err)
		}
		classic, _ := res.Row(false)
		smooth, _ := res.Row(true)
		classicDrops = float64(classic.SlowStartDrops)
		smoothDrops = float64(smooth.SlowStartDrops)
	}
	b.ReportMetric(classicDrops, "classic-drops")
	b.ReportMetric(smoothDrops, "smooth-drops")
}

// --- delayed-ACK model fit (extension of Figure 7) ---

func BenchmarkFigure7DelayedAck(b *testing.B) {
	var fit float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunFigure7(rrtcp.Figure7Config{
			LossRates:  []float64{0.005},
			Duration:   30 * time.Second,
			Seeds:      []int64{1},
			DelayedAck: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		pt, _ := res.Point(rrtcp.SACK, 0.005)
		fit = pt.Window / pt.ModelWindow
	}
	b.ReportMetric(fit, "window/model")
}

// --- more substrate microbenchmarks ---

func BenchmarkDRREnqueueDequeue(b *testing.B) {
	q := netem.Must(netem.NewDRR(1000, 64))
	pkts := [4]*netem.Packet{}
	for i := range pkts {
		pkts[i] = &netem.Packet{Flow: i, Kind: netem.Data, Size: 1000, Len: 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%4], 0)
		q.Dequeue()
	}
}

func BenchmarkReceiverOutOfOrder(b *testing.B) {
	sched := sim.NewScheduler(1)
	sink := netem.NodeFunc(func(*netem.Packet) {})
	r := tcp.NewReceiver(sched, 0, sink, nil)
	r.SACKEnabled = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate a gap and its fill: exercises block merge + SACK
		// generation on every second packet.
		base := int64(i) * 2000
		r.Receive(&netem.Packet{Flow: 0, Kind: netem.Data, Seq: base + 1000, Len: 1000, Size: 1000})
		r.Receive(&netem.Packet{Flow: 0, Kind: netem.Data, Seq: base, Len: 1000, Size: 1000})
	}
}

// benchVariantTransfer measures one full burst-loss transfer per
// iteration for a given variant — the end-to-end cost of each recovery
// scheme's state machine.
func benchVariantTransfer(b *testing.B, kind rrtcp.Kind) {
	b.Helper()
	var delay float64
	for i := 0; i < b.N; i++ {
		sched := rrtcp.NewScheduler(1)
		loss := rrtcp.NewSeqLoss(sched)
		loss.Drop(0, 60*1000, 61*1000, 63*1000)
		cfg := rrtcp.PaperDropTailConfig(1)
		cfg.Loss = loss
		d, err := rrtcp.NewDumbbell(sched, cfg)
		if err != nil {
			b.Fatal(err)
		}
		flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
			Kind:            kind,
			Bytes:           150 * 1000,
			Window:          18,
			InitialSSThresh: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		sched.Run(60 * time.Second)
		if dl, ok := flow.Trace.TransferDelay(); ok {
			delay = dl.Seconds()
		}
	}
	b.ReportMetric(delay, "transfer-s")
}

func BenchmarkVariantTahoe(b *testing.B)     { benchVariantTransfer(b, rrtcp.Tahoe) }
func BenchmarkVariantReno(b *testing.B)      { benchVariantTransfer(b, rrtcp.Reno) }
func BenchmarkVariantNewReno(b *testing.B)   { benchVariantTransfer(b, rrtcp.NewReno) }
func BenchmarkVariantSACK(b *testing.B)      { benchVariantTransfer(b, rrtcp.SACK) }
func BenchmarkVariantFACK(b *testing.B)      { benchVariantTransfer(b, rrtcp.FACK) }
func BenchmarkVariantRightEdge(b *testing.B) { benchVariantTransfer(b, rrtcp.RightEdge) }
func BenchmarkVariantLinKung(b *testing.B)   { benchVariantTransfer(b, rrtcp.LinKung) }
func BenchmarkVariantRR(b *testing.B)        { benchVariantTransfer(b, rrtcp.RR) }

// --- Gilbert-Elliott bursty loss ---

func BenchmarkBursty(b *testing.B) {
	var rr8, nr8 float64
	for i := 0; i < b.N; i++ {
		res, err := rrtcp.RunBursty(rrtcp.BurstyConfig{
			BurstLengths: []float64{8},
		})
		if err != nil {
			b.Fatal(err)
		}
		rr, _ := res.Point(rrtcp.RR, 8)
		nr, _ := res.Point(rrtcp.NewReno, 8)
		rr8 = rr.GoodputBps
		nr8 = nr.GoodputBps
	}
	b.ReportMetric(rr8/1000, "rr-Kbps")
	b.ReportMetric(nr8/1000, "newreno-Kbps")
}
