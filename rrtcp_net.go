// Network-element surface of the rrtcp facade: packets, links, queue
// disciplines, loss models, and the paper's dumbbell topology.
package rrtcp

import (
	"rrtcp/internal/netem"
)

// --- network elements ---

type (
	// Packet is a simulated TCP segment or acknowledgment.
	Packet = netem.Packet
	// Node consumes packets; all network elements implement it.
	Node = netem.Node
	// Link is a point-to-point link with bandwidth and delay.
	Link = netem.Link
	// DumbbellConfig describes the paper's Figure 4 topology.
	DumbbellConfig = netem.DumbbellConfig
	// Dumbbell is the instantiated n-flow dumbbell network.
	Dumbbell = netem.Dumbbell
	// REDConfig carries the RED gateway parameters of Table 4.
	REDConfig = netem.REDConfig
	// SACKBlock is a selective-acknowledgment block.
	SACKBlock = netem.SACKBlock
)

type (
	// SeqLoss drops listed (flow, sequence) pairs exactly once — the
	// deterministic loss patterns behind the Figure 5 scenarios.
	SeqLoss = netem.SeqLoss
	// UniformLoss drops data packets i.i.d. with a fixed probability —
	// the artificial losses of the Figure 7 experiment.
	UniformLoss = netem.UniformLoss
)

// NewSeqLoss returns a deterministic loss injector, ready to be placed
// at the bottleneck via DumbbellConfig.Loss. The scheduler argument is
// unused (the injector draws no randomness); it is accepted so every
// loss constructor shares the (scheduler, params...) shape and loss
// models stay drop-in replacements for each other.
func NewSeqLoss(_ *Scheduler) *SeqLoss { return netem.NewSeqLoss(nil) }

// NewUniformLoss returns a random loss injector drawing from the
// scheduler's deterministic random source.
func NewUniformLoss(s *Scheduler, rate float64) *UniformLoss {
	return netem.NewUniformLoss(rate, s.Rand(), nil)
}

// GilbertLoss is the two-state correlated (bursty) loss channel.
type GilbertLoss = netem.GilbertLoss

// NewGilbertLoss returns a Gilbert-Elliott loss channel; see the netem
// documentation for the stationary rate and burst-length formulas.
func NewGilbertLoss(s *Scheduler, pGoodToBad, pBadToGood, pDropBad float64) *GilbertLoss {
	return netem.NewGilbertLoss(pGoodToBad, pBadToGood, pDropBad, s.Rand(), nil)
}

// QueueDiscipline is a gateway buffer policy (drop-tail or RED).
type QueueDiscipline = netem.QueueDiscipline

// DRRConfig parameterizes a deficit-round-robin fair queue.
type DRRConfig = netem.DRRConfig

// NewDropTailQueue returns a finite FIFO measured in packets, or an
// error for a non-positive limit. Like every queue constructor it is
// scheduler-first; drop-tail draws no randomness, so the scheduler
// argument is accepted only to keep the disciplines drop-in
// replacements for each other.
func NewDropTailQueue(_ *Scheduler, limit int) (QueueDiscipline, error) {
	return netem.NewDropTail(limit)
}

// NewDRRQueue returns a deficit-round-robin fair queue, or an error
// for a non-positive quantum or limit. DRR draws no randomness; see
// NewDropTailQueue for why it still takes the scheduler.
func NewDRRQueue(_ *Scheduler, cfg DRRConfig) (QueueDiscipline, error) {
	return netem.NewDRRConfig(cfg)
}

// NewREDQueue returns a RED gateway queue whose drop decisions draw
// from the scheduler's deterministic random source, or an error for an
// unusable configuration (see netem.NewRED).
func NewREDQueue(s *Scheduler, cfg REDConfig) (QueueDiscipline, error) {
	return netem.NewRED(cfg, s.Rand())
}

// NewDumbbell builds the Figure 4 topology.
func NewDumbbell(s *Scheduler, cfg DumbbellConfig) (*Dumbbell, error) {
	return netem.NewDumbbell(s, cfg)
}

// PaperDropTailConfig returns the Table 3 drop-tail configuration.
func PaperDropTailConfig(flows int) DumbbellConfig {
	return netem.PaperDropTailConfig(flows)
}

// PaperREDConfig returns the Table 4 RED configuration.
func PaperREDConfig() REDConfig { return netem.PaperREDConfig() }
