package rrtcp_test

import (
	"fmt"
	"time"

	"rrtcp"
)

// The simplest complete simulation: one RR flow, one engineered burst
// loss, one number out.
func Example() {
	sched := rrtcp.NewScheduler(1)

	loss := rrtcp.NewSeqLoss(sched)
	loss.Drop(0, 60*1000, 61*1000, 62*1000)

	cfg := rrtcp.PaperDropTailConfig(1)
	cfg.Loss = loss
	net, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	flow, err := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.RR,
		Bytes:           100 * 1000,
		Window:          18, // keep slow start inside the 8-packet buffer
		InitialSSThresh: 9,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	sched.Run(30 * time.Second)

	fmt.Printf("retransmissions: %d, timeouts: %d\n",
		flow.Trace.Retransmits, flow.Trace.Timeouts)
	// Output:
	// retransmissions: 3, timeouts: 0
}

// Racing two recovery variants on identical loss patterns.
func ExampleInstallFlow() {
	for _, kind := range []rrtcp.Kind{rrtcp.NewReno, rrtcp.RR} {
		sched := rrtcp.NewScheduler(1)
		loss := rrtcp.NewSeqLoss(sched)
		loss.Drop(0, 60*1000, 61*1000, 62*1000, 63*1000)
		cfg := rrtcp.PaperDropTailConfig(1)
		cfg.Loss = loss
		net, _ := rrtcp.NewDumbbell(sched, cfg)
		flow, _ := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
			Kind:            kind,
			Bytes:           120 * 1000,
			Window:          18,
			InitialSSThresh: 9,
		})
		sched.Run(60 * time.Second)
		_, finished := flow.Trace.TransferDelay()
		fmt.Printf("%s finished=%t retransmits=%d\n", kind, finished, flow.Trace.Retransmits)
	}
	// Output:
	// newreno finished=true retransmits=4
	// rr finished=true retransmits=4
}

// The analytic models of the paper's Section 4.
func ExampleSqrtModelWindow() {
	w := rrtcp.SqrtModelWindow(0.01, rrtcp.CAckEveryPacket)
	fmt.Printf("W(p=0.01) = %.2f packets\n", w)
	// Output:
	// W(p=0.01) = 12.25 packets
}

// Variant names round-trip through ParseKind.
func ExampleParseKind() {
	k, _ := rrtcp.ParseKind("robust-recovery")
	fmt.Println(k)
	// Output:
	// rr
}
