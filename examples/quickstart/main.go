// Quickstart: run one Robust Recovery (RR) TCP flow over the paper's
// Table 3 dumbbell, lose a burst of three packets from one window, and
// watch RR recover without a timeout.
package main

import (
	"fmt"
	"os"
	"time"

	"rrtcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sched := rrtcp.NewScheduler(1)

	// Drop packets 60, 61, and 62 — a burst within one window of data.
	loss := rrtcp.NewSeqLoss(sched)
	loss.Drop(0, 60*1000, 61*1000, 62*1000)

	// The Figure 4 dumbbell with Table 3 parameters: 0.8 Mbps
	// bottleneck, 8-packet drop-tail buffer, 10 Mbps side links.
	cfg := rrtcp.PaperDropTailConfig(1)
	cfg.Loss = loss
	net, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		return err
	}

	// A 100 KB transfer using the paper's Robust Recovery sender. The
	// receiver is a stock cumulative-ACK TCP receiver: RR needs no
	// receiver changes.
	flow, err := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.RR,
		Bytes:           100 * 1000,
		Window:          18,
		InitialSSThresh: 9,
	})
	if err != nil {
		return err
	}

	sched.Run(30 * time.Second)

	delay, ok := flow.Trace.TransferDelay()
	if !ok {
		return fmt.Errorf("transfer did not complete")
	}
	fmt.Printf("transferred 100 KB with %s in %.3fs (%.1f Kbps)\n",
		flow.Spec.Kind, delay.Seconds(), 100*8/delay.Seconds())
	fmt.Printf("retransmissions: %d, coarse timeouts: %d\n",
		flow.Trace.Retransmits, flow.Trace.Timeouts)
	return nil
}
