// Customcc shows the extension surface: any congestion-control /
// loss-recovery state machine that implements rrtcp.Strategy can drive
// the TCP sender. Here we race the published RR algorithm against its
// "right-edge" ablation (one new packet per duplicate ACK during the
// retreat sub-phase) on the burst-loss scenario.
package main

import (
	"fmt"
	"os"
	"time"

	"rrtcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customcc:", err)
		os.Exit(1)
	}
}

func run() error {
	type entry struct {
		label string
		opts  *rrtcp.RROptions
	}
	entries := []entry{
		{label: "rr (published)", opts: nil},
		{label: "rr right-edge retreat", opts: &rrtcp.RROptions{RetreatDupsPerSegment: 1}},
		{label: "rr without further-loss detection", opts: &rrtcp.RROptions{DisableFurtherLossDetection: true}},
	}
	for _, e := range entries {
		delay, rtx, err := raceBurst(e.opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-36s transfer %.3fs, %d retransmissions\n", e.label, delay.Seconds(), rtx)
	}
	return nil
}

func raceBurst(opts *rrtcp.RROptions) (time.Duration, uint64, error) {
	sched := rrtcp.NewScheduler(1)
	// Lose four packets from one window plus one packet sent during
	// recovery itself — the further-loss case RR was designed for.
	loss := rrtcp.NewSeqLoss(sched)
	for _, pk := range []int64{60, 61, 63, 64, 75} {
		loss.Drop(0, pk*1000)
	}
	cfg := rrtcp.PaperDropTailConfig(1)
	cfg.Loss = loss
	net, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		return 0, 0, err
	}
	flow, err := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.RR,
		Bytes:           150 * 1000,
		Window:          18,
		InitialSSThresh: 9,
		RROptions:       opts,
	})
	if err != nil {
		return 0, 0, err
	}
	sched.Run(60 * time.Second)
	delay, ok := flow.Trace.TransferDelay()
	if !ok {
		return 0, 0, fmt.Errorf("transfer did not complete")
	}
	return delay, flow.Trace.Retransmits, nil
}
