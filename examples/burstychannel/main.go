// Burstychannel races the recovery schemes over a Gilbert-Elliott
// correlated-loss channel — the loss regime the paper's introduction
// reports as common in the Internet. The mean loss rate stays fixed at
// 2% while the burst length grows; watch RR pull away as the same
// losses clump together.
package main

import (
	"fmt"
	"os"

	"rrtcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burstychannel:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := rrtcp.RunBursty(rrtcp.BurstyConfig{})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("\nSame mean loss rate in every row — only the clumping changes.")
	fmt.Println("A burst is one congestion signal to RR, so its window is cut once")
	fmt.Println("where New-Reno exhausts its ACK clock recovering one hole per RTT.")
	return nil
}
