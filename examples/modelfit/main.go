// Modelfit reproduces the paper's Section 4 analysis: a single
// long-lived flow under uniform random loss, compared against the
// square-root throughput model of Mathis et al. and the timeout-aware
// refinement of Padhye et al. (Figure 7).
//
// Usage: modelfit [-full]   (-full runs the paper's 100 s sweep)
package main

import (
	"fmt"
	"os"
	"time"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelfit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cfg := rrtcp.Figure7Config{
		LossRates: []float64{0.001, 0.005, 0.02, 0.1},
		Duration:  30 * time.Second,
		Seeds:     []int64{1},
	}
	if len(args) > 0 && args[0] == "-full" {
		cfg = rrtcp.Figure7Config{}
	}
	res, err := rrtcp.RunFigure7(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("\nThe measured windows track C/sqrt(p) at low loss and fall below it")
	fmt.Println("as coarse timeouts take over; the Padhye column models that droop.")
	return nil
}
