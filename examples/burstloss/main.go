// Burstloss compares all five recovery variants on the paper's core
// scenario — a burst of packets lost from a single window of data
// (Figure 5) — and prints how each one survives it.
//
// Usage: burstloss [drops]
package main

import (
	"fmt"
	"os"
	"strconv"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "burstloss:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	drops := 6
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("drops argument: %w", err)
		}
		drops = n
	}

	res, err := rrtcp.RunFigure5(rrtcp.Figure5Config{
		Drops: drops,
		Variants: []rrtcp.Kind{
			rrtcp.Tahoe, rrtcp.Reno, rrtcp.NewReno, rrtcp.SACK, rrtcp.RR,
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	fmt.Println("\nWhat to look for:")
	fmt.Println("  - reno halves its window once per lost packet and usually times out;")
	fmt.Println("  - newreno survives but recovers only one loss per RTT with a dwindling ACK clock;")
	fmt.Println("  - sack recovers in about one RTT until the burst eats too much of the window;")
	fmt.Println("  - rr treats the whole burst as one congestion signal and keeps transmitting.")
	return nil
}
