// Fairness reproduces the paper's Table 5: a targeted 100 KB transfer
// competes with nineteen staggered background flows over a drop-tail
// bottleneck, across the four {Reno, RR} background/target
// combinations. The point of the experiment is incremental
// deployability — an RR background must not hurt legacy Reno clients.
package main

import (
	"fmt"
	"os"

	"rrtcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fairness:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := rrtcp.RunTable5(rrtcp.Table5Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("\nRead it as the paper does: case 2 vs case 1 shows a Reno client is")
	fmt.Println("not penalized (and is usually helped) when the background upgrades to")
	fmt.Println("RR; case 4 shows a single RR flow claims otherwise-unused bandwidth")
	fmt.Println("without starving the Reno crowd.")
	return nil
}
