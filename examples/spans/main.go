// Spans runs the paper's burst-loss scenario with an RR flow and shows
// the recovery-episode span layer: the connection lifetime, the
// recovery episode with its retreat→probe decomposition, and the
// bottleneck queue's busy periods — assembled live from the telemetry
// bus while a periodic sampler records cwnd, ssthresh, actnum, srtt,
// rto, flight, and queue occupancy.
//
// Usage: spans [trace.json]
//
// With a path argument the program also writes the spans and series as
// Chrome trace-event JSON; open it at https://ui.perfetto.dev to see
// the episode as nested slices with counter lanes underneath.
package main

import (
	"fmt"
	"os"
	"time"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spans:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	sched := rrtcp.NewScheduler(1)

	// The Figure 5 setup: a drop-tail dumbbell that loses a burst of
	// six packets from one congestion window.
	loss := rrtcp.NewSeqLoss(sched)
	mss := int64(rrtcp.DefaultMSS)
	for _, pk := range []int64{60, 61, 63, 64, 66, 67} {
		loss.Drop(0, pk*mss)
	}
	cfg := rrtcp.PaperDropTailConfig(1)
	cfg.Loss = loss
	net, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		return err
	}

	// One bus, two live subscribers: spans assemble the episode tree,
	// series collect the sampled gauges.
	spans := rrtcp.NewSpanSink()
	series := rrtcp.NewSeriesSink()
	bus := rrtcp.NewTelemetryBus(spans, series)
	net.Instrument(bus)

	flow, err := rrtcp.InstallFlow(sched, net, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.RR,
		Bytes:           150 * mss,
		Window:          18,
		InitialSSThresh: 9,
		Telemetry:       bus,
	})
	if err != nil {
		return err
	}

	sampler := rrtcp.NewSampler(sched, bus, 10*time.Millisecond)
	sampler.AddFlow(0, flow.Sender)
	sampler.AddInstance(rrtcp.CompQueue, "fwd", net.BottleneckQueue())
	sampler.Start()

	sched.Run(60 * time.Second)

	fmt.Print(rrtcp.RenderSpans(spans.Spans()))

	fmt.Println("\nWhat to look for:")
	fmt.Println("  - the recovery episode nests under the connection span;")
	fmt.Println("  - retreat (halving in) and probe (growing out) tile the episode;")
	fmt.Println("  - further-loss instants mark where RR absorbed extra holes without restarting;")
	fmt.Println("  - queue-busy spans show the bottleneck draining and refilling.")

	if len(args) > 0 {
		f, err := os.Create(args[0])
		if err != nil {
			return err
		}
		err = rrtcp.WriteChromeTrace(f, spans.Spans(), series.Series())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s — open it at https://ui.perfetto.dev\n", args[0])
	}
	return nil
}
