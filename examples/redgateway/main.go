// Redgateway reproduces the paper's Figure 6 environment: ten TCP
// flows of the same recovery variant share a 0.8 Mbps bottleneck behind
// a RED gateway under heavy congestion. It prints the first flow's
// sequence-number plot for New-Reno, SACK, and RR — the New-Reno panel
// shows the stall the paper's Section 1 describes.
package main

import (
	"fmt"
	"os"

	"rrtcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "redgateway:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := rrtcp.RunFigure6(rrtcp.Figure6Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}
