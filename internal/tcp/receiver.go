package tcp

import (
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/trace"
)

// Receiver is the data sink of a connection. Matching the paper's
// setup, it acknowledges every data packet it receives, and it sends an
// immediate duplicate ACK for each out-of-sequence arrival ("the
// delayed acknowledgment mechanism is off"). It needs no modification
// for RR — that is the point of the paper — but can optionally attach
// SACK blocks for the SACK-TCP baseline.
type Receiver struct {
	sched *sim.Scheduler
	out   netem.Node
	flow  int

	// SACKEnabled makes ACKs carry up to three SACK blocks.
	SACKEnabled bool
	// AckSize is the wire size of generated ACKs (paper: 40 bytes).
	AckSize int
	// DelayedAck enables RFC 1122-style delayed acknowledgments for
	// in-order data: one ACK per two segments, or after AckDelay. The
	// paper runs with this OFF ("the receiver sends an ACK for every
	// data packet"); it is provided for the delayed-ACK extension
	// experiments. Out-of-order arrivals and hole fills are always
	// acknowledged immediately, per RFC 5681.
	DelayedAck bool
	// AckDelay bounds how long an acknowledgment may be withheld
	// (default 200 ms).
	AckDelay sim.Time

	rcvNxt int64
	blocks []seqRange // out-of-order data, sorted by Start, disjoint
	recent []seqRange // recency order for SACK block selection

	unacked  int // in-order segments received since the last ACK
	ackTimer *sim.Timer

	// Pool, when non-nil, supplies outgoing ACKs and receives every
	// consumed data packet back.
	Pool *netem.PacketPool

	tr *trace.FlowTrace

	// Telemetry, when non-nil, receives the receiver's delivery events.
	Telemetry *telemetry.Bus

	// Delivered counts in-order bytes handed to the application.
	Delivered int64
	// Segments counts data packets processed.
	Segments uint64
	// DupSegments counts arrivals fully below rcvNxt.
	DupSegments uint64
}

type seqRange struct {
	Start int64
	End   int64
}

var _ netem.Node = (*Receiver)(nil)

// NewReceiver builds a receiver whose ACKs go to out.
func NewReceiver(sched *sim.Scheduler, flow int, out netem.Node, tr *trace.FlowTrace) *Receiver {
	r := &Receiver{
		sched:    sched,
		out:      out,
		flow:     flow,
		AckSize:  40,
		AckDelay: 200 * time.Millisecond,
		tr:       tr,
	}
	r.ackTimer = sched.NewTimer(r.flushAck)
	return r
}

// SetOutput redirects generated ACKs to a different node, letting
// experiments interpose loss modules on the reverse path (§2.3).
func (r *Receiver) SetOutput(n netem.Node) { r.out = n }

// RcvNxt reports the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OutOfOrderBlocks returns a copy of the buffered out-of-order ranges.
func (r *Receiver) OutOfOrderBlocks() []netem.SACKBlock {
	out := make([]netem.SACKBlock, 0, len(r.blocks))
	for _, b := range r.blocks {
		out = append(out, netem.SACKBlock{Start: b.Start, End: b.End})
	}
	return out
}

// Receive implements netem.Node for data packets.
func (r *Receiver) Receive(p *netem.Packet) {
	defer p.Release() // the receiver buffers ranges, never packets
	if p.Kind != netem.Data || p.Flow != r.flow {
		return
	}
	r.Segments++
	switch {
	case p.EndSeq() <= r.rcvNxt:
		// Entirely old data (e.g. a spurious retransmission): re-ACK
		// immediately.
		r.DupSegments++
		r.flushAck()
	case p.Seq <= r.rcvNxt:
		// In-order (possibly partially old): deliver and drain any
		// buffered blocks that became contiguous.
		hadHole := len(r.blocks) > 0
		r.advance(p.EndSeq())
		if !r.DelayedAck || hadHole {
			// Hole fills are acknowledged immediately (RFC 5681).
			r.flushAck()
			return
		}
		r.unacked++
		if r.unacked >= 2 {
			r.flushAck()
		} else if !r.ackTimer.Armed() {
			r.ackTimer.Reset(r.AckDelay)
		}
	default:
		// Out of order: buffer and emit an immediate duplicate ACK.
		r.insert(seqRange{Start: p.Seq, End: p.EndSeq()})
		r.flushAck()
	}
}

// flushAck emits a cumulative ACK now and clears delayed-ACK state.
func (r *Receiver) flushAck() {
	r.unacked = 0
	r.ackTimer.Stop()
	r.sendAck()
}

func (r *Receiver) advance(end int64) {
	if end > r.rcvNxt {
		r.rcvNxt = end
	}
	// Drain contiguous buffered blocks.
	for len(r.blocks) > 0 && r.blocks[0].Start <= r.rcvNxt {
		if r.blocks[0].End > r.rcvNxt {
			r.rcvNxt = r.blocks[0].End
		}
		r.dropRecent(r.blocks[0])
		r.blocks = r.blocks[1:]
	}
	r.Delivered = r.rcvNxt
	ev := telemetry.Event{
		At:   r.sched.Now(),
		Comp: telemetry.CompRecv,
		Kind: telemetry.KDeliver,
		Flow: int32(r.flow),
		Seq:  r.rcvNxt,
	}
	r.tr.OnEvent(ev)
	r.Telemetry.Publish(ev)
}

func (r *Receiver) insert(nb seqRange) {
	// Merge nb into the sorted disjoint block list.
	merged := make([]seqRange, 0, len(r.blocks)+1)
	inserted := false
	for _, b := range r.blocks {
		switch {
		case b.End < nb.Start:
			merged = append(merged, b)
		case nb.End < b.Start:
			if !inserted {
				merged = append(merged, nb)
				inserted = true
			}
			merged = append(merged, b)
		default: // overlap or adjacency: absorb
			r.dropRecent(b)
			if b.Start < nb.Start {
				nb.Start = b.Start
			}
			if b.End > nb.End {
				nb.End = b.End
			}
		}
	}
	if !inserted {
		merged = append(merged, nb)
	}
	r.blocks = merged
	// Most-recently-updated block goes to the head of the recency list.
	r.recent = append([]seqRange{nb}, r.recent...)
	if len(r.recent) > 6 {
		r.recent = r.recent[:6]
	}
}

func (r *Receiver) dropRecent(b seqRange) {
	for i, rb := range r.recent {
		if rb.Start >= b.Start && rb.End <= b.End {
			r.recent = append(r.recent[:i], r.recent[i+1:]...)
			return
		}
	}
}

func (r *Receiver) sendAck() {
	ack := r.Pool.Get()
	ack.ID = netem.NextID()
	ack.Flow = r.flow
	ack.Kind = netem.Ack
	ack.AckNo = r.rcvNxt
	ack.Size = r.AckSize
	if r.SACKEnabled {
		ack.SACK = r.appendSACKBlocks(ack.SACK[:0])
	}
	r.out.Receive(ack)
}

// appendSACKBlocks appends up to three blocks to dst, most recently
// changed first, per RFC 2018's reporting rules. Appending into the
// caller's (recycled) slice keeps steady-state ACK generation
// allocation-free.
func (r *Receiver) appendSACKBlocks(dst []netem.SACKBlock) []netem.SACKBlock {
	var seen [3]seqRange // at most three reported blocks to dedup against
	out := dst
	appendBlock := func(q seqRange) {
		if len(out)-len(dst) >= 3 {
			return
		}
		for i := 0; i < len(out)-len(dst); i++ {
			if seen[i] == q {
				return
			}
		}
		seen[len(out)-len(dst)] = q
		out = append(out, netem.SACKBlock{Start: q.Start, End: q.End})
	}
	for _, q := range r.recent {
		// Only report blocks that still exist (were not delivered).
		for _, b := range r.blocks {
			if q.Start >= b.Start && q.End <= b.End {
				appendBlock(b)
				break
			}
		}
	}
	for _, b := range r.blocks {
		appendBlock(b)
	}
	return out
}
