package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/trace"
)

var stalePacket = netem.Packet{Flow: 0, Kind: netem.Ack, AckNo: 1000, Size: 40}

func TestSenderValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, Config{}); err == nil {
		t.Fatal("nil dependencies accepted")
	}
}

func TestSenderDoubleStart(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{})
	n.start(t)
	if err := n.sender.Start(0); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestSenderCompletesLosslessTransfer(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 50 * 1000})
	n.start(t)
	n.run(30 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
	if n.recv.Delivered != 50*1000 {
		t.Fatalf("delivered %d bytes, want 50000", n.recv.Delivered)
	}
	if _, rtx := n.counts(); rtx != 0 {
		t.Fatalf("%d retransmissions on a lossless path", rtx)
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts on a lossless path", n.tr.Timeouts)
	}
}

func TestSenderSlowStartDoublesPerRTT(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 64})
	n.start(t)
	// After ~4 RTTs (20 ms each) of slow start the window is ~16.
	n.run(90 * time.Millisecond)
	if cw := n.sender.Cwnd(); cw < 12 || cw > 20 {
		t.Fatalf("cwnd = %.1f after 4 RTTs of slow start, want ~16", cw)
	}
}

func TestSenderCongestionAvoidanceLinear(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 64, ssthresh: 4})
	n.start(t)
	n.run(100 * time.Millisecond) // ~5 RTTs
	// Slow start to 4 (~2 RTTs), then ~+1/RTT.
	if cw := n.sender.Cwnd(); cw < 5 || cw > 10 {
		t.Fatalf("cwnd = %.1f, want linear growth past ssthresh 4", cw)
	}
}

func TestSenderRespectsReceiverWindow(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 4})
	n.start(t)
	n.run(2 * time.Second)
	if fl := n.sender.FlightPackets(); fl > 4 {
		t.Fatalf("flight %d exceeds the 4-packet advertised window", fl)
	}
	if cw := n.sender.Cwnd(); cw > 4 {
		t.Fatalf("cwnd %.1f exceeds the advertised window cap", cw)
	}
}

func TestSenderTimeoutCollapsesToSlowStart(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 16})
	// Drop a packet AND its dup-ack generators so no fast retransmit
	// can fire: drop everything in flight after packet 5.
	for i := int64(5); i < 40; i++ {
		n.loss.Drop(0, i*1000)
	}
	n.start(t)
	n.run(10 * time.Second)
	if n.tr.Timeouts == 0 {
		t.Fatal("no timeout despite total loss of the window tail")
	}
	if n.sender.SndUna() < 10*1000 {
		t.Fatalf("sender did not recover after timeout: una=%d", n.sender.SndUna())
	}
}

func TestSenderRTOBacksOffExponentially(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 16})
	// Lose packet 5 and its first several retransmissions: each RTO
	// doubles.
	for i := int64(5); i < 40; i++ {
		n.loss.Drop(0, i*1000)
	}
	n.loss.DropRetransmit(0, 5*1000)
	n.start(t)
	n.run(30 * time.Second)
	timeouts := n.tr.SamplesOf(trace.EvTimeout)
	if len(timeouts) < 2 {
		t.Fatalf("want at least 2 timeouts, got %d", len(timeouts))
	}
	gap1 := timeouts[1].At - timeouts[0].At
	if gap1 < 2*MinRTO-TimerGranularity {
		t.Fatalf("second RTO gap %v did not back off from the first", gap1)
	}
}

func TestSenderKarnNoSampleFromRetransmission(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{window: 16})
	n.start(t)
	n.run(5 * time.Second)
	srttBefore := n.sender.SRTT()
	if srttBefore <= 0 {
		t.Fatal("no RTT samples on a clean path")
	}
	// The loopback RTT is ~21 ms.
	if srttBefore > 0.05 {
		t.Fatalf("srtt = %v, want ~21ms", srttBefore)
	}
}

func TestSenderCompletionCallback(t *testing.T) {
	called := false
	n := newTestNet(t, NewTahoe(), testNetConfig{
		totalBytes: 10 * 1000,
		onDone:     func() { called = true },
	})
	n.start(t)
	n.run(10 * time.Second)
	if !called {
		t.Fatal("OnDone not invoked")
	}
	if !n.sender.Done() {
		t.Fatal("Done() false after completion")
	}
}

func TestSenderIgnoresStaleAcks(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 20 * 1000})
	n.start(t)
	n.run(10 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	// Feeding an old ACK after completion must be harmless.
	n.sender.Receive(&stalePacket)
}
