package tcp

import (
	"encoding/binary"
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
)

// fuzzVariantNames indexes the variants for fuzz input decoding, in a
// fixed order so corpus entries stay meaningful.
var fuzzVariantNames = []string{
	"tahoe", "reno", "newreno", "sack", "sack6675", "fack", "rightedge", "linkung",
}

// FuzzLossRecovery decodes an arbitrary byte string into a loss
// pattern — scattered first-transmission drops, retransmission drops,
// and ACK drops — and requires the selected variant to complete the
// transfer and deliver every byte in order. Any input that wedges a
// sender or corrupts the stream is a bug.
func FuzzLossRecovery(f *testing.F) {
	// Seed corpus: the paper's canonical burst patterns and the shapes
	// the property tests historically caught regressions with.
	f.Add(uint8(1), []byte{20, 21, 22})                     // Reno, 3-burst (Figure 5 left)
	f.Add(uint8(2), []byte{20, 21, 22, 23, 24, 25})         // New-Reno, 6-burst (Figure 5 right)
	f.Add(uint8(3), []byte{10, 40, 70, 100})                // SACK, scattered singles
	f.Add(uint8(0), []byte{20, 20, 20})                     // Tahoe, rtx of the same segment
	f.Add(uint8(5), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})      // FACK, half-window burst
	f.Add(uint8(6), []byte{119})                            // right-edge, tail loss
	f.Add(uint8(7), []byte{30, 31, 90, 91, 92, 30})         // Lin-Kung, two bursts + rtx drop
	f.Add(uint8(4), []byte{15, 16, 17, 18, 19, 20, 21, 22}) // modern SACK, long burst
	f.Add(uint8(1), []byte{0, 119, 60, 0, 119, 60, 0, 119}) // edge seqs repeated
	f.Fuzz(func(t *testing.T, variant uint8, pattern []byte) {
		name := fuzzVariantNames[int(variant)%len(fuzzVariantNames)]
		mk := strategiesUnderTest()[name]
		if len(pattern) > 30 {
			pattern = pattern[:30] // bound severity so the timer can always drain
		}
		const transfer = 120 * 1000
		n := newTestNet(t, mk(), testNetConfig{
			totalBytes: transfer,
			window:     24,
			ssthresh:   12,
			sack:       needsSACK(name),
		})
		for i, b := range pattern {
			seq := int64(b%120) * 1000
			switch i % 4 {
			case 0, 1:
				n.loss.Drop(0, seq)
			case 2:
				n.loss.DropRetransmit(0, seq)
			case 3:
				n.ackLoss.DropAck(0, seq)
			}
		}
		n.start(t)
		n.run(600 * time.Second)
		if !n.sender.Done() {
			t.Fatalf("%s wedged: una=%d of %d", name, n.sender.SndUna(), transfer)
		}
		if n.recv.Delivered != transfer {
			t.Fatalf("%s delivered %d bytes, want %d", name, n.recv.Delivered, transfer)
		}
		if len(n.recv.OutOfOrderBlocks()) != 0 {
			t.Fatalf("%s left out-of-order blocks behind", name)
		}
	})
}

// FuzzAckInjection fires arbitrary — including forged and nonsensical —
// ACK numbers at a mid-transfer sender. Whatever arrives, sender state
// must stay structurally sane: snd.una inside the transfer, never
// beyond the data actually sent, and cwnd inside its bounds.
func FuzzAckInjection(f *testing.F) {
	le := binary.LittleEndian
	add := func(vals ...uint64) {
		buf := make([]byte, 8*len(vals))
		for i, v := range vals {
			le.PutUint64(buf[i*8:], v)
		}
		f.Add(buf)
	}
	add(1000, 2000, 3000)         // plausible cumulative ACKs
	add(0, 0, 0, 0)               // dup-ACK storm for seq 0
	add(1<<62, 1<<62)             // far beyond anything sent
	add(^uint64(0), ^uint64(0)-7) // negative when read as int64
	add(500, 1500, 999, 1001)     // mid-segment (never on MSS bounds)
	add(59000, 60000, 61000)      // around the end of the transfer
	f.Fuzz(func(t *testing.T, data []byte) {
		const transfer = 60 * 1000
		n := newTestNet(t, NewNewReno(), testNetConfig{
			totalBytes: transfer,
			window:     24,
			ssthresh:   12,
		})
		n.start(t)
		for i := 0; i+8 <= len(data) && i < 64*8; i += 8 {
			ackNo := int64(le.Uint64(data[i : i+8]))
			at := sim.Time(time.Duration(i/8) * 50 * time.Millisecond)
			if _, err := n.sched.Schedule(at, func() {
				n.sender.Receive(&netem.Packet{Kind: netem.Ack, Flow: 0, AckNo: ackNo, Size: 40})
			}); err != nil {
				t.Fatal(err)
			}
		}
		n.run(600 * time.Second)
		s := n.sender
		if una := s.SndUna(); una < 0 || una > transfer || una > s.MaxSeq() {
			t.Fatalf("forged ACKs corrupted state: una=%d, max=%d", una, s.MaxSeq())
		}
		if nxt := s.SndNxt(); nxt < s.SndUna() || nxt > s.MaxSeq() {
			t.Fatalf("forged ACKs corrupted state: nxt=%d outside [%d, %d]", nxt, s.SndUna(), s.MaxSeq())
		}
		if cw := s.Cwnd(); cw < 1 || cw > 24 {
			t.Fatalf("forged ACKs pushed cwnd to %g", cw)
		}
	})
}
