package tcp

import "rrtcp/internal/telemetry"

// FACKStrategy implements FACK TCP (Mathis & Mahdavi, SIGCOMM'96 — the
// paper's [13]): forward acknowledgment refines SACK recovery by
// tracking `fack`, the forward-most SACKed byte. Outstanding data is
// estimated as (snd.nxt − fack) plus retransmitted-but-unacknowledged
// data, which is more accurate than Reno's cumulative-ACK view, and
// recovery triggers as soon as more than DupThresh segments' worth of
// data lies between snd.una and fack — no need to count three separate
// duplicate ACKs when one SACK block already proves the gap. The paper
// groups FACK with SACK: efficient multi-loss recovery, but requiring
// cooperative (SACK-capable) receivers.
type FACKStrategy struct {
	inRecovery bool
	recover    int64
	fack       int64

	scoreboard []seqRange
	rtxOut     map[int64]bool // retransmitted holes not yet acked/SACKed
}

var _ Strategy = (*FACKStrategy)(nil)

// NewFACK returns the FACK strategy. The flow's Receiver must have
// SACKEnabled set.
func NewFACK() *FACKStrategy {
	return &FACKStrategy{rtxOut: make(map[int64]bool)}
}

// Name implements Strategy.
func (f *FACKStrategy) Name() string { return "fack" }

// InRecovery reports whether recovery is active (for tests).
func (f *FACKStrategy) InRecovery() bool { return f.inRecovery }

// Fack exposes the forward-most acknowledged byte (for tests).
func (f *FACKStrategy) Fack() int64 { return f.fack }

// OnAck implements Strategy.
func (f *FACKStrategy) OnAck(s *Sender, ev AckEvent) {
	f.update(s, ev)
	switch {
	case !ev.IsDup && f.inRecovery:
		f.onNewAckInRecovery(s, ev)
	case !ev.IsDup:
		s.SetDupAcks(0)
		s.GrowWindow()
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
	case f.inRecovery:
		f.fill(s)
	default:
		s.SetDupAcks(s.DupAcks() + 1)
		// FACK trigger: the hole between una and fack already spans
		// more than DupThresh segments, or the classic dup count.
		if f.fack-s.SndUna() > int64(DupThresh*s.MSS()) || s.DupAcks() == DupThresh {
			f.enter(s)
		}
	}
}

func (f *FACKStrategy) enter(s *Sender) {
	f.inRecovery = true
	f.recover = s.MaxSeq()
	f.rtxOut = make(map[int64]bool)
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(s.Ssthresh())
	f.retransmitHole(s, s.SndUna())
	s.RestartTimer()
	f.fill(s)
}

func (f *FACKStrategy) onNewAckInRecovery(s *Sender, ev AckEvent) {
	for seq := range f.rtxOut {
		if seq < ev.AckNo {
			delete(f.rtxOut, seq)
		}
	}
	if ev.AckNo >= f.recover {
		f.inRecovery = false
		s.SetDupAcks(0)
		s.SetCwnd(s.Ssthresh())
		s.Emit(telemetry.CompSender, telemetry.KRecoveryExit, ev.AckNo, s.Cwnd(), 0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	s.RestartTimer()
	f.fill(s)
}

// pipe is FACK's in-flight estimate: (snd.nxt − fack) plus outstanding
// retransmissions, in packets.
func (f *FACKStrategy) pipe(s *Sender) int {
	awnd := s.SndNxt() - f.fack
	if awnd < 0 {
		awnd = 0
	}
	return int(awnd/int64(s.MSS())) + len(f.rtxOut)
}

func (f *FACKStrategy) fill(s *Sender) {
	for f.pipe(s) < int(s.Cwnd()) {
		if hole, ok := f.nextHole(s); ok {
			f.retransmitHole(s, hole)
			continue
		}
		if !s.SendNewSegment() {
			return
		}
	}
}

func (f *FACKStrategy) retransmitHole(s *Sender, seq int64) {
	f.rtxOut[seq] = true
	s.Retransmit(seq)
}

// nextHole returns the lowest un-SACKed, un-retransmitted sequence
// below fack.
func (f *FACKStrategy) nextHole(s *Sender) (int64, bool) {
	mss := int64(s.MSS())
	for seq := s.SndUna(); seq < f.fack; seq += mss {
		if f.rtxOut[seq] || f.isSacked(seq) {
			continue
		}
		return seq, true
	}
	return 0, false
}

func (f *FACKStrategy) isSacked(seq int64) bool {
	for _, b := range f.scoreboard {
		if seq >= b.Start && seq < b.End {
			return true
		}
		if b.Start > seq {
			return false
		}
	}
	return false
}

// update merges SACK blocks, advances fack, and trims state below the
// cumulative ACK.
func (f *FACKStrategy) update(s *Sender, ev AckEvent) {
	for _, b := range ev.SACK {
		f.mergeBlock(seqRange{Start: b.Start, End: b.End})
		if b.End > f.fack {
			f.fack = b.End
		}
		if f.rtxOut != nil {
			for seq := range f.rtxOut {
				if seq >= b.Start && seq < b.End {
					delete(f.rtxOut, seq)
				}
			}
		}
	}
	if ev.AckNo > f.fack {
		f.fack = ev.AckNo
	}
	cut := ev.AckNo
	if cut < s.SndUna() {
		cut = s.SndUna()
	}
	out := f.scoreboard[:0]
	for _, b := range f.scoreboard {
		if b.End <= cut {
			continue
		}
		if b.Start < cut {
			b.Start = cut
		}
		out = append(out, b)
	}
	f.scoreboard = out
}

func (f *FACKStrategy) mergeBlock(nb seqRange) {
	if nb.End <= nb.Start {
		return
	}
	merged := make([]seqRange, 0, len(f.scoreboard)+1)
	inserted := false
	for _, b := range f.scoreboard {
		switch {
		case b.End < nb.Start:
			merged = append(merged, b)
		case nb.End < b.Start:
			if !inserted {
				merged = append(merged, nb)
				inserted = true
			}
			merged = append(merged, b)
		default:
			if b.Start < nb.Start {
				nb.Start = b.Start
			}
			if b.End > nb.End {
				nb.End = b.End
			}
		}
	}
	if !inserted {
		merged = append(merged, nb)
	}
	f.scoreboard = merged
}

// OnTimeout implements Strategy.
func (f *FACKStrategy) OnTimeout(s *Sender) {
	f.inRecovery = false
	f.scoreboard = nil
	f.fack = s.SndUna()
	f.rtxOut = make(map[int64]bool)
}
