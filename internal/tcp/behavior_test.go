package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/trace"
)

// This file pins exact numeric behaviour of the classic state machines
// — the arithmetic the paper's analysis leans on.

func TestRenoEntryInflatesByThree(t *testing.T) {
	n := newTestNet(t, NewReno4BSD(), testNetConfig{
		totalBytes: 0, window: 40, ssthresh: 16,
	})
	dropBurst(n, 60, 1)
	n.start(t)
	n.run(5 * time.Second)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	if len(recs) == 0 {
		t.Fatal("no recovery")
	}
	entryCwnd := recs[0].Value
	// The first cwnd sample after entry is ssthresh + 3 where
	// ssthresh = flight/2; flight ≈ cwnd at entry.
	var after float64 = -1
	for _, s := range n.tr.SamplesOf(trace.EvCwnd) {
		if s.At >= recs[0].At {
			after = s.Value
			break
		}
	}
	want := entryCwnd/2 + DupThresh
	if after < want-1.5 || after > want+1.5 {
		t.Fatalf("post-entry cwnd %.1f, want ~%.1f (= %.1f/2 + 3)", after, want, entryCwnd)
	}
}

func TestRenoInflationPerDupAck(t *testing.T) {
	n := newTestNet(t, NewReno4BSD(), testNetConfig{
		totalBytes: 0, window: 40, ssthresh: 16,
	})
	dropBurst(n, 60, 1)
	n.start(t)
	n.run(5 * time.Second)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(recs) == 0 || len(exits) == 0 {
		t.Fatal("recovery/exit missing")
	}
	// Count cwnd increments strictly inside recovery: one per dup ACK
	// beyond the third.
	var increments int
	var last float64 = -1
	for _, s := range n.tr.SamplesOf(trace.EvCwnd) {
		if s.At <= recs[0].At || s.At >= exits[0].At {
			continue
		}
		if last >= 0 && s.Value > last {
			increments++
		}
		last = s.Value
	}
	dupsInRecovery := 0
	for _, s := range n.tr.SamplesOf(trace.EvDupAck) {
		if s.At > recs[0].At && s.At < exits[0].At {
			dupsInRecovery++
		}
	}
	if increments == 0 || dupsInRecovery == 0 {
		t.Fatalf("no inflation observed (inc=%d dups=%d)", increments, dupsInRecovery)
	}
	if diff := increments - dupsInRecovery; diff < -2 || diff > 2 {
		t.Fatalf("inflation %d times for %d dup ACKs; want ~1:1", increments, dupsInRecovery)
	}
}

func TestNewRenoPartialDeflation(t *testing.T) {
	// During New-Reno recovery of a 3-packet burst, cwnd never grows
	// past its inflated entry peak and ends at ssthresh.
	n := newTestNet(t, NewNewReno(), testNetConfig{
		totalBytes: 0, window: 40, ssthresh: 16,
	})
	dropBurst(n, 60, 3)
	n.start(t)
	n.run(5 * time.Second)
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(exits) != 1 {
		t.Fatalf("%d exits, want 1", len(exits))
	}
	if got, want := exits[0].Value, n.sender.Ssthresh(); got != want {
		// ssthresh may have been re-derived after exit; compare to the
		// recovery-time value recorded in the exit sample instead.
		if got < 2 {
			t.Fatalf("exit cwnd %.1f implausible (ssthresh %.1f)", got, want)
		}
	}
}

func TestTahoeSsthreshHalvesFlight(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{
		totalBytes: 0, window: 40, ssthresh: 16,
	})
	dropBurst(n, 60, 1)
	n.start(t)
	n.run(5 * time.Second)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	if len(recs) == 0 {
		t.Fatal("no fast retransmit")
	}
	entryCwnd := recs[0].Value // ≈ flight at entry
	got := n.sender.Ssthresh()
	// ssthresh was set to flight/2 at entry and must still be within a
	// couple packets of it (growth after recovery only raises cwnd).
	if got < entryCwnd/2-2 || got > entryCwnd/2+2 {
		t.Fatalf("ssthresh %.1f, want ~%.1f/2", got, entryCwnd)
	}
}

func TestDupAckRequiresOutstandingData(t *testing.T) {
	// An ACK equal to SndUna with nothing outstanding is not a
	// duplicate (e.g. re-ACKs after completion) and must not trigger
	// fast retransmit.
	n := newTestNet(t, NewReno4BSD(), testNetConfig{totalBytes: 10 * 1000})
	n.start(t)
	n.run(10 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if n.tr.DupAcks != 0 {
		t.Fatalf("%d dup ACKs on a clean ordered transfer", n.tr.DupAcks)
	}
}

func TestRecoveryPreservesByteStreamUnderReordering(t *testing.T) {
	// Out-of-order delivery without loss: dup ACKs may fire spuriously
	// (that is TCP's known weakness), but the byte stream must survive
	// and no timeout may occur on a loss-free path.
	for _, strat := range []Strategy{NewNewReno(), NewSACK(), NewTahoe()} {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			n := newTestNet(t, strat, testNetConfig{
				totalBytes: 60 * 1000,
				window:     16,
				sack:       strat.Name() == "sack",
			})
			n.start(t)
			n.run(30 * time.Second)
			if !n.sender.Done() {
				t.Fatal("transfer incomplete")
			}
			if n.recv.Delivered != 60*1000 {
				t.Fatalf("delivered %d", n.recv.Delivered)
			}
		})
	}
}
