package tcp

import (
	"rrtcp/internal/netem"
	"rrtcp/internal/telemetry"
)

// SACKStrategy implements SACK TCP. Two modes are provided:
//
//   - The default reproduces the 1996 Fall & Floyd `sack1` sender the
//     paper compares against: a scoreboard of SACKed blocks plus an
//     incrementally maintained `pipe` estimate of packets in the path
//     (decremented by one per duplicate ACK, by two per partial ACK,
//     incremented per transmission). The sender may transmit whenever
//     pipe < cwnd, preferring the oldest un-SACKed hole. Because the
//     packets lost in the current window stay counted in pipe for the
//     first recovery RTT, this sender is throttled early in recovery
//     and — as the paper and Bruyeron et al. note — can be forced into
//     a timeout when too little of the window survives.
//
//   - Modern mode (NewSACKModern) derives pipe from the scoreboard as
//     RFC 6675 does, excluding segments deemed lost (DupThresh SACKed
//     segments above them), which removes the first-RTT throttling.
//
// The paper contrasts SACK's passive pipe with RR's `actnum`, which
// both measures and *controls* the in-flight data.
type SACKStrategy struct {
	modern bool

	inRecovery bool
	recover    int64
	pipe       int // incremental estimate (classic mode only)

	scoreboard []seqRange     // SACKed ranges above SndUna, sorted, disjoint
	rtxDone    map[int64]bool // holes already retransmitted this recovery
}

var _ Strategy = (*SACKStrategy)(nil)

// NewSACK returns the classic Fall & Floyd sack1 sender — the SACK
// baseline of the paper's evaluation. The flow's Receiver must have
// SACKEnabled set.
func NewSACK() *SACKStrategy {
	return &SACKStrategy{rtxDone: make(map[int64]bool)}
}

// NewSACKModern returns the RFC 6675-style sender with the
// scoreboard-derived pipe.
func NewSACKModern() *SACKStrategy {
	return &SACKStrategy{modern: true, rtxDone: make(map[int64]bool)}
}

// Name implements Strategy.
func (k *SACKStrategy) Name() string {
	if k.modern {
		return "sack6675"
	}
	return "sack"
}

// Pipe exposes the in-flight estimate (for tests).
func (k *SACKStrategy) Pipe(s *Sender) int { return k.pipeFor(s) }

// InRecovery reports whether fast recovery is active (for tests).
func (k *SACKStrategy) InRecovery() bool { return k.inRecovery }

// pipeFor returns the current in-flight estimate for the active mode.
func (k *SACKStrategy) pipeFor(s *Sender) int {
	if !k.modern {
		return k.pipe
	}
	// RFC 6675: segments sent but not cumulatively acked, excluding
	// SACKed segments and lost-but-not-retransmitted segments.
	mss := int64(s.MSS())
	pipe := 0
	for seq := s.SndUna(); seq < s.SndNxt(); seq += mss {
		if k.isSacked(seq) {
			continue
		}
		if k.isLost(s, seq) && !k.rtxDone[seq] {
			continue
		}
		pipe++
	}
	return pipe
}

// isLost deems a segment lost once DupThresh segments above it have
// been SACKed (RFC 6675 IsLost).
func (k *SACKStrategy) isLost(s *Sender, seq int64) bool {
	mss := int64(s.MSS())
	var sackedAbove int64
	for _, b := range k.scoreboard {
		if b.End <= seq {
			continue
		}
		lo := b.Start
		if lo < seq {
			lo = seq
		}
		sackedAbove += b.End - lo
	}
	return sackedAbove >= DupThresh*mss
}

// OnAck implements Strategy.
func (k *SACKStrategy) OnAck(s *Sender, ev AckEvent) {
	k.updateScoreboard(s, ev)
	switch {
	case !ev.IsDup && k.inRecovery:
		k.onNewAckInRecovery(s, ev)
	case !ev.IsDup:
		s.SetDupAcks(0)
		s.GrowWindow()
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
	case k.inRecovery:
		// Each duplicate ACK signals one departure from the path.
		if k.pipe > 0 {
			k.pipe--
		}
		k.fill(s)
	default:
		s.SetDupAcks(s.DupAcks() + 1)
		if s.DupAcks() == DupThresh {
			k.enter(s)
		}
	}
}

func (k *SACKStrategy) enter(s *Sender) {
	k.inRecovery = true
	k.recover = s.MaxSeq()
	k.rtxDone = make(map[int64]bool)
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(s.Ssthresh())
	// Three duplicate ACKs mean three packets have left the path.
	k.pipe = flight - DupThresh
	if k.pipe < 0 {
		k.pipe = 0
	}
	k.retransmitHole(s, s.SndUna())
	s.RestartTimer()
	k.fill(s)
}

func (k *SACKStrategy) onNewAckInRecovery(s *Sender, ev AckEvent) {
	if ev.AckNo >= k.recover {
		k.inRecovery = false
		s.SetDupAcks(0)
		s.SetCwnd(s.Ssthresh())
		s.Emit(telemetry.CompSender, telemetry.KRecoveryExit, ev.AckNo, s.Cwnd(), 0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	// Partial ACK: both the original transmission and its
	// retransmission have left the path.
	k.pipe -= 2
	if k.pipe < 0 {
		k.pipe = 0
	}
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	s.RestartTimer()
	k.fill(s)
}

// fill transmits while pipe < cwnd: holes first, then new data.
func (k *SACKStrategy) fill(s *Sender) {
	for k.pipeFor(s) < int(s.Cwnd()) {
		if hole, ok := k.nextHole(s); ok {
			k.retransmitHole(s, hole)
			continue
		}
		if !s.SendNewSegment() {
			return
		}
		k.pipe++
	}
}

func (k *SACKStrategy) retransmitHole(s *Sender, seq int64) {
	k.rtxDone[seq] = true
	s.Retransmit(seq)
	k.pipe++
}

// nextHole returns the lowest sequence at or above SndUna, below the
// highest SACKed byte, that has been neither SACKed nor retransmitted
// this recovery. In modern mode a hole must also be deemed lost.
func (k *SACKStrategy) nextHole(s *Sender) (int64, bool) {
	if len(k.scoreboard) == 0 {
		return 0, false
	}
	highest := k.scoreboard[len(k.scoreboard)-1].End
	mss := int64(s.MSS())
	for seq := s.SndUna(); seq < highest; seq += mss {
		if k.rtxDone[seq] || k.isSacked(seq) {
			continue
		}
		if k.modern && !k.isLost(s, seq) {
			return 0, false
		}
		return seq, true
	}
	return 0, false
}

func (k *SACKStrategy) isSacked(seq int64) bool {
	for _, b := range k.scoreboard {
		if seq >= b.Start && seq < b.End {
			return true
		}
		if b.Start > seq {
			return false
		}
	}
	return false
}

// updateScoreboard merges the ACK's SACK blocks and discards ranges at
// or below the cumulative ACK.
func (k *SACKStrategy) updateScoreboard(s *Sender, ev AckEvent) {
	for _, b := range ev.SACK {
		k.merge(seqRange{Start: b.Start, End: b.End})
	}
	cut := ev.AckNo
	if cut < s.SndUna() {
		cut = s.SndUna()
	}
	out := k.scoreboard[:0]
	for _, b := range k.scoreboard {
		if b.End <= cut {
			continue
		}
		if b.Start < cut {
			b.Start = cut
		}
		out = append(out, b)
	}
	k.scoreboard = out
}

func (k *SACKStrategy) merge(nb seqRange) {
	if nb.End <= nb.Start {
		return
	}
	merged := make([]seqRange, 0, len(k.scoreboard)+1)
	inserted := false
	for _, b := range k.scoreboard {
		switch {
		case b.End < nb.Start:
			merged = append(merged, b)
		case nb.End < b.Start:
			if !inserted {
				merged = append(merged, nb)
				inserted = true
			}
			merged = append(merged, b)
		default:
			if b.Start < nb.Start {
				nb.Start = b.Start
			}
			if b.End > nb.End {
				nb.End = b.End
			}
		}
	}
	if !inserted {
		merged = append(merged, nb)
	}
	k.scoreboard = merged
}

// Scoreboard exposes a copy of the SACKed ranges (for tests).
func (k *SACKStrategy) Scoreboard() []netem.SACKBlock {
	out := make([]netem.SACKBlock, 0, len(k.scoreboard))
	for _, b := range k.scoreboard {
		out = append(out, netem.SACKBlock{Start: b.Start, End: b.End})
	}
	return out
}

// OnTimeout implements Strategy.
func (k *SACKStrategy) OnTimeout(*Sender) {
	k.inRecovery = false
	k.scoreboard = nil
	k.pipe = 0
	k.rtxDone = make(map[int64]bool)
}
