package tcp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRTTFirstSample(t *testing.T) {
	var e rttEstimator
	e.sample(100 * time.Millisecond)
	if e.SRTT() != 0.1 {
		t.Fatalf("srtt = %v, want 0.1", e.SRTT())
	}
	if e.rttvar != 0.05 {
		t.Fatalf("rttvar = %v, want 0.05", e.rttvar)
	}
}

func TestRTTConvergesToSteadyValue(t *testing.T) {
	var e rttEstimator
	for i := 0; i < 100; i++ {
		e.sample(200 * time.Millisecond)
	}
	if diff := e.SRTT() - 0.2; diff > 0.001 || diff < -0.001 {
		t.Fatalf("srtt = %v, want ~0.2", e.SRTT())
	}
	if e.rttvar > 0.01 {
		t.Fatalf("rttvar = %v, want ~0 for constant samples", e.rttvar)
	}
}

func TestRTOBeforeAnySample(t *testing.T) {
	var e rttEstimator
	if got := e.rto(); got != 3*time.Second {
		t.Fatalf("initial rto = %v, want 3s", got)
	}
}

func TestRTOCoarseGranularity(t *testing.T) {
	var e rttEstimator
	for i := 0; i < 50; i++ {
		e.sample(100 * time.Millisecond)
	}
	rto := e.rto()
	if rto%TimerGranularity != 0 {
		t.Fatalf("rto %v not a multiple of the 500ms tick", rto)
	}
	if rto < MinRTO {
		t.Fatalf("rto %v below minimum %v", rto, MinRTO)
	}
}

func TestRTOMinimumOneSecond(t *testing.T) {
	var e rttEstimator
	for i := 0; i < 50; i++ {
		e.sample(time.Millisecond)
	}
	if got := e.rto(); got != MinRTO {
		t.Fatalf("rto = %v for tiny RTTs, want the %v floor", got, MinRTO)
	}
}

func TestRTOMaxClamp(t *testing.T) {
	var e rttEstimator
	e.sample(10 * time.Minute)
	if got := e.rto(); got != MaxRTO {
		t.Fatalf("rto = %v, want clamp to %v", got, MaxRTO)
	}
}

func TestRTTNegativeSampleIgnored(t *testing.T) {
	var e rttEstimator
	e.sample(-time.Second)
	if e.sampled {
		t.Fatal("negative sample accepted")
	}
}

// Property: the RTO always lies within [MinRTO, MaxRTO] and is tick-
// aligned, for any sample sequence.
func TestRTOBoundsProperty(t *testing.T) {
	f := func(samplesMs []uint32) bool {
		var e rttEstimator
		for _, ms := range samplesMs {
			e.sample(time.Duration(ms%100000) * time.Millisecond)
		}
		rto := e.rto()
		return rto >= MinRTO && rto <= MaxRTO && rto%TimerGranularity == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: srtt stays within the min/max of the samples fed in.
func TestSRTTWithinSampleRangeProperty(t *testing.T) {
	f := func(samplesMs []uint16) bool {
		if len(samplesMs) == 0 {
			return true
		}
		var e rttEstimator
		lo, hi := time.Duration(samplesMs[0])*time.Millisecond, time.Duration(samplesMs[0])*time.Millisecond
		for _, ms := range samplesMs {
			d := time.Duration(ms) * time.Millisecond
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			e.sample(d)
		}
		return e.SRTT() >= lo.Seconds()-1e-9 && e.SRTT() <= hi.Seconds()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
