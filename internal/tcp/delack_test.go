package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/trace"
)

func newDelAckRecv() (*Receiver, *ackSink) {
	r, sink := newRecv(false)
	r.DelayedAck = true
	return r, sink
}

func TestDelayedAckEverySecondSegment(t *testing.T) {
	r, sink := newDelAckRecv()
	r.Receive(data(0))
	if len(sink.acks) != 0 {
		t.Fatal("first in-order segment acknowledged immediately")
	}
	r.Receive(data(1000))
	if len(sink.acks) != 1 {
		t.Fatalf("%d ACKs after two segments, want 1", len(sink.acks))
	}
	if sink.last().AckNo != 2000 {
		t.Fatalf("ack = %d, want 2000", sink.last().AckNo)
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	r, sink := newDelAckRecv()
	r.Receive(data(0))
	if len(sink.acks) != 0 {
		t.Fatal("premature ACK")
	}
	// Let the 200 ms delayed-ACK timer fire.
	r.sched.RunAll()
	if len(sink.acks) != 1 || sink.last().AckNo != 1000 {
		t.Fatalf("delayed ACK not flushed: %v", sink.acks)
	}
	if r.sched.Now() != 200*time.Millisecond {
		t.Fatalf("flush at %v, want 200ms", r.sched.Now())
	}
}

func TestDelayedAckImmediateDupOnGap(t *testing.T) {
	r, sink := newDelAckRecv()
	r.Receive(data(0))
	r.Receive(data(1000)) // ack 2000 emitted
	r.Receive(data(3000)) // gap: immediate dup ACK
	if len(sink.acks) != 2 {
		t.Fatalf("%d ACKs, want immediate dup on out-of-order arrival", len(sink.acks))
	}
	if sink.last().AckNo != 2000 {
		t.Fatalf("dup ack = %d, want 2000", sink.last().AckNo)
	}
}

func TestDelayedAckImmediateOnHoleFill(t *testing.T) {
	r, sink := newDelAckRecv()
	r.Receive(data(0))
	r.Receive(data(1000))
	r.Receive(data(3000))
	n := len(sink.acks)
	r.Receive(data(2000)) // fills the hole: immediate big ACK
	if len(sink.acks) != n+1 {
		t.Fatal("hole fill not acknowledged immediately")
	}
	if sink.last().AckNo != 4000 {
		t.Fatalf("ack = %d, want 4000", sink.last().AckNo)
	}
}

func TestDelayedAckTransferStillCompletes(t *testing.T) {
	n := newTestNet(t, NewNewReno(), testNetConfig{totalBytes: 80 * 1000, window: 24})
	n.recv.DelayedAck = true
	dropBurst(n, 40, 2)
	n.start(t)
	n.run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer with delayed ACKs did not complete")
	}
	if n.recv.Delivered != 80*1000 {
		t.Fatalf("delivered %d", n.recv.Delivered)
	}
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	fast := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 60 * 1000})
	fast.start(t)
	fast.run(30 * time.Second)

	slow := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 60 * 1000})
	slow.recv.DelayedAck = true
	slow.start(t)
	slow.run(30 * time.Second)

	fastN := len(fast.tr.SamplesOf(trace.EvAckRecv))
	slowN := len(slow.tr.SamplesOf(trace.EvAckRecv))
	if slowN >= fastN {
		t.Fatalf("delayed ACKs produced no reduction: %d vs %d ACKs", slowN, fastN)
	}
	if float64(slowN) > 0.7*float64(fastN) {
		t.Fatalf("delayed ACKs only reduced ACK count to %d/%d, want roughly half", slowN, fastN)
	}
}
