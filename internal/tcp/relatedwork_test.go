package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/trace"
)

func TestRightEdgeCompletesBurstLoss(t *testing.T) {
	n := runTransfer(t, NewRightEdge(), 3)
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts", n.tr.Timeouts)
	}
}

func TestRightEdgeSendsPerDupAck(t *testing.T) {
	// Compared with New-Reno on an identical scenario, right-edge must
	// inject strictly more new data during recovery.
	re := runTransfer(t, NewRightEdge(), 3)
	nr := runTransfer(t, NewNewReno(), 3)
	reSends := sendsDuringRecovery(re)
	nrSends := sendsDuringRecovery(nr)
	if reSends <= nrSends {
		t.Fatalf("right-edge sent %d during recovery, New-Reno %d; want more", reSends, nrSends)
	}
}

func sendsDuringRecovery(n *testNet) int {
	samples := n.tr.Samples()
	var entry, exit = time.Duration(-1), time.Duration(-1)
	for _, s := range samples {
		if s.Kind == trace.EvRecovery && entry < 0 {
			entry = s.At
		}
		if s.Kind == trace.EvExit && exit < 0 {
			exit = s.At
		}
	}
	if entry < 0 {
		return 0
	}
	if exit < 0 {
		exit = 1 << 62
	}
	count := 0
	for _, s := range samples {
		if s.Kind == trace.EvSend && s.At > entry && s.At < exit {
			count++
		}
	}
	return count
}

func TestLinKungSendsOnFirstTwoDups(t *testing.T) {
	n := newTestNet(t, NewLinKung(), testNetConfig{
		totalBytes: 120 * 1000,
		window:     24,
		ssthresh:   12,
	})
	dropBurst(n, 40, 1)
	n.start(t)
	n.run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
	// Count new-data sends in the window between the loss being
	// detectable (first dup ACK) and fast retransmit: Lin-Kung sends
	// two extra packets New-Reno would not.
	rtx := n.tr.SamplesOf(trace.EvRetransmit)
	if len(rtx) == 0 {
		t.Fatal("no fast retransmit")
	}
	dups := n.tr.SamplesOf(trace.EvDupAck)
	if len(dups) < 2 {
		t.Fatal("not enough duplicate ACKs")
	}
	extra := 0
	for _, s := range n.tr.SamplesOf(trace.EvSend) {
		if s.At >= dups[0].At && s.At < rtx[0].At {
			extra++
		}
	}
	if extra != 2 {
		t.Fatalf("%d sends between first dup ACK and fast retransmit, want 2", extra)
	}
}

func TestLinKungRecoveryMatchesNewReno(t *testing.T) {
	n := runTransfer(t, NewLinKung(), 3)
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts", n.tr.Timeouts)
	}
	if n.tr.Retransmits != 3 {
		t.Fatalf("%d retransmits, want 3 (New-Reno style recovery)", n.tr.Retransmits)
	}
}

func TestRelatedWorkNames(t *testing.T) {
	if NewRightEdge().Name() != "rightedge" {
		t.Fatal("rightedge name")
	}
	if NewLinKung().Name() != "linkung" {
		t.Fatal("linkung name")
	}
}

func TestRightEdgeRetransmissionLossTimesOut(t *testing.T) {
	n := newTestNet(t, NewRightEdge(), testNetConfig{
		totalBytes: 120 * 1000,
		window:     24,
		ssthresh:   12,
	})
	dropBurst(n, 40, 1)
	n.loss.DropRetransmit(0, 40*1000)
	n.start(t)
	n.run(60 * time.Second)
	if n.tr.Timeouts == 0 {
		t.Fatal("lost retransmission must force a timeout")
	}
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
}
