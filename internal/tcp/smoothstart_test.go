package tcp

import (
	"testing"
	"time"
)

func TestSmoothStartSlowerInUpperHalf(t *testing.T) {
	classic := newTestNet(t, NewTahoe(), testNetConfig{window: 64, ssthresh: 16})
	classic.start(t)
	classic.run(100 * time.Millisecond)

	smooth := newTestNet(t, NewTahoe(), testNetConfig{window: 64, ssthresh: 16, smoothStart: true})
	smooth.start(t)
	smooth.run(100 * time.Millisecond)

	if smooth.sender.Cwnd() >= classic.sender.Cwnd() {
		t.Fatalf("smooth-start cwnd %.1f not below classic %.1f",
			smooth.sender.Cwnd(), classic.sender.Cwnd())
	}
}

func TestSmoothStartSameBelowHalfThreshold(t *testing.T) {
	classic := newTestNet(t, NewTahoe(), testNetConfig{window: 64, ssthresh: 32})
	classic.start(t)
	classic.run(50 * time.Millisecond) // cwnd ~8 < ssthresh/2

	smooth := newTestNet(t, NewTahoe(), testNetConfig{window: 64, ssthresh: 32, smoothStart: true})
	smooth.start(t)
	smooth.run(50 * time.Millisecond)

	if smooth.sender.Cwnd() != classic.sender.Cwnd() {
		t.Fatalf("smooth-start diverged below ssthresh/2: %.1f vs %.1f",
			smooth.sender.Cwnd(), classic.sender.Cwnd())
	}
}
