package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/trace"
)

func newFACKNet(t *testing.T, drops int64) *testNet {
	t.Helper()
	n := newTestNet(t, NewFACK(), testNetConfig{
		totalBytes: 120 * 1000,
		window:     24,
		ssthresh:   12,
		sack:       true,
	})
	dropBurst(n, 40, drops)
	return n
}

func TestFACKCompletesBurstLoss(t *testing.T) {
	n := newFACKNet(t, 3)
	n.start(t)
	n.run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts", n.tr.Timeouts)
	}
	if n.tr.Retransmits != 3 {
		t.Fatalf("%d retransmits, want 3", n.tr.Retransmits)
	}
}

func TestFACKTriggersBeforeThreeDupAcks(t *testing.T) {
	// A 4-packet burst puts fack-una > 3*MSS on the very first SACK
	// block, so FACK must enter recovery with fewer than 3 dup ACKs.
	n := newFACKNet(t, 4)
	n.start(t)
	n.run(60 * time.Second)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	if len(recs) == 0 {
		t.Fatal("no recovery")
	}
	dupsBefore := 0
	for _, s := range n.tr.SamplesOf(trace.EvDupAck) {
		if s.At <= recs[0].At {
			dupsBefore++
		}
	}
	if dupsBefore >= 3 {
		t.Fatalf("recovery needed %d dup ACKs; FACK should trigger on the gap", dupsBefore)
	}
}

func TestFACKRecoversHeavyBurstWithoutTimeout(t *testing.T) {
	// FACK's pipe (snd.nxt - fack + rtx) does not count the lost
	// packets, so it keeps sending where classic SACK stalls.
	n := newFACKNet(t, 9)
	n.start(t)
	n.run(60 * time.Second)
	if n.tr.Timeouts != 0 {
		t.Fatalf("FACK timed out on a 9-packet burst (%d)", n.tr.Timeouts)
	}
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
}

func TestFACKSingleRecoveryPerBurst(t *testing.T) {
	n := newFACKNet(t, 5)
	n.start(t)
	n.run(60 * time.Second)
	if got := len(n.tr.SamplesOf(trace.EvRecovery)); got != 1 {
		t.Fatalf("%d window cuts for one burst, want 1", got)
	}
}

func TestFACKRetransmissionLossTimesOut(t *testing.T) {
	n := newFACKNet(t, 1)
	n.loss.DropRetransmit(0, 40*1000)
	n.start(t)
	n.run(60 * time.Second)
	if n.tr.Timeouts == 0 {
		t.Fatal("lost retransmission must force a timeout")
	}
	if !n.sender.Done() {
		t.Fatal("transfer did not complete")
	}
}

func TestFACKName(t *testing.T) {
	if NewFACK().Name() != "fack" {
		t.Fatal("fack name")
	}
}
