package tcp

import "rrtcp/internal/telemetry"

// Tahoe implements 4.3BSD-Tahoe loss recovery as modeled by ns-2: on
// the third duplicate ACK the sender halves ssthresh, collapses cwnd to
// one segment, and slow-starts again from the lost segment (go-back-N).
// There is no fast recovery; every loss costs a full slow start, but —
// as the paper observes — the go-back-N resend makes Tahoe more robust
// than New-Reno when many packets are lost from one window.
//
// As in ns-2 (its "bugfix" option, on by default), a second fast
// retransmit is suppressed until the cumulative ACK passes the highest
// sequence outstanding when the previous one fired: go-back-N resends
// of already-delivered segments produce duplicate ACKs that must not
// retrigger recovery.
type Tahoe struct {
	recover int64
}

var _ Strategy = (*Tahoe)(nil)

// NewTahoe returns the Tahoe strategy.
func NewTahoe() *Tahoe { return &Tahoe{} }

// Name implements Strategy.
func (*Tahoe) Name() string { return "tahoe" }

// OnAck implements Strategy.
func (t *Tahoe) OnAck(s *Sender, ev AckEvent) {
	if !ev.IsDup {
		s.SetDupAcks(0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.GrowWindow()
		s.PumpWindow()
		return
	}
	s.SetDupAcks(s.DupAcks() + 1)
	if s.DupAcks() != DupThresh || s.SndUna() <= t.recover {
		return
	}
	// Fast retransmit, Tahoe style: slow start over from the hole.
	t.recover = s.MaxSeq()
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(1)
	s.GoBackN()
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// OnTimeout implements Strategy; the Sender's common timeout actions
// are exactly Tahoe's behavior, so only the fast-retransmit guard needs
// refreshing.
func (t *Tahoe) OnTimeout(s *Sender) { t.recover = s.MaxSeq() }
