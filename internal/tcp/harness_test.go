package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/trace"
)

// testNet is a two-endpoint loopback network: sender → (loss) → data
// link → receiver, receiver → (ackLoss) → ack link → sender. Links are
// fast (10 Mbps) with 10 ms one-way delay, giving a ~20 ms RTT.
type testNet struct {
	sched   *sim.Scheduler
	sender  *Sender
	recv    *Receiver
	loss    *netem.SeqLoss
	ackLoss *netem.SeqLoss
	tr      *trace.FlowTrace
}

type testNetConfig struct {
	totalBytes  int64
	window      int
	ssthresh    float64
	sack        bool
	smoothStart bool
	onDone      func()
}

func newTestNet(t *testing.T, strat Strategy, cfg testNetConfig) *testNet {
	t.Helper()
	sched := sim.NewScheduler(1)
	tr := trace.New(0, strat.Name())

	n := &testNet{sched: sched, tr: tr}

	dataLink := netem.Must(netem.NewLink(sched, 10e6, 10*time.Millisecond, netem.Must(netem.NewDropTail(1000)), nil))
	ackLink := netem.Must(netem.NewLink(sched, 10e6, 10*time.Millisecond, netem.Must(netem.NewDropTail(1000)), nil))
	n.loss = netem.NewSeqLoss(dataLink)
	n.ackLoss = netem.NewSeqLoss(ackLink)

	n.recv = NewReceiver(sched, 0, n.ackLoss, tr)
	n.recv.SACKEnabled = cfg.sack
	dataLink.Dst = n.recv

	if cfg.totalBytes == 0 {
		cfg.totalBytes = Infinite
	}
	sender, err := New(sched, n.loss, strat, Config{
		Flow:            0,
		Window:          cfg.window,
		InitialSSThresh: cfg.ssthresh,
		TotalBytes:      cfg.totalBytes,
		SmoothStart:     cfg.smoothStart,
		Trace:           tr,
		OnDone:          cfg.onDone,
	})
	if err != nil {
		t.Fatalf("new sender: %v", err)
	}
	n.sender = sender
	ackLink.Dst = sender
	return n
}

func (n *testNet) start(t *testing.T) {
	t.Helper()
	if err := n.sender.Start(0); err != nil {
		t.Fatalf("start: %v", err)
	}
}

func (n *testNet) run(d sim.Time) { n.sched.Run(d) }

// counts returns (sends, retransmits) recorded so far.
func (n *testNet) counts() (uint64, uint64) {
	return n.tr.DataSent, n.tr.Retransmits
}
