package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
)

func TestSenderAccessors(t *testing.T) {
	n := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 10 * 1000, window: 7})
	s := n.sender
	if s.Flow() != 0 {
		t.Fatalf("Flow = %d", s.Flow())
	}
	if s.VariantName() != "tahoe" {
		t.Fatalf("VariantName = %q", s.VariantName())
	}
	if s.Window() != 7 {
		t.Fatalf("Window = %d", s.Window())
	}
	if s.TotalBytes() != 10*1000 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	if s.MSS() != DefaultMSS {
		t.Fatalf("MSS = %d", s.MSS())
	}
	if !s.HasNewData() {
		t.Fatal("HasNewData false before transfer")
	}
	if s.Trace() != n.tr {
		t.Fatal("Trace accessor")
	}
	n.start(t)
	n.run(10 * time.Second)
	if s.HasNewData() {
		t.Fatal("HasNewData true after transfer")
	}
}

func TestRetransmitClampsToTransferEnd(t *testing.T) {
	// A retransmission at the last (short) segment must not exceed the
	// transfer length, and one past the end must be a no-op.
	n := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 2500})
	n.start(t)
	n.run(5 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	before := n.tr.Retransmits
	n.sender.Retransmit(2000) // 500-byte tail, but transfer is done
	n.sender.Retransmit(9000) // beyond the end entirely
	if n.tr.Retransmits != before {
		t.Fatal("retransmit after completion emitted segments")
	}
}

func TestRetransmitShortTail(t *testing.T) {
	// Lose the final, sub-MSS segment: its retransmission must carry
	// only the remaining bytes.
	n := newTestNet(t, NewTahoe(), testNetConfig{totalBytes: 5500, window: 4})
	n.loss.Drop(0, 5000)
	n.start(t)
	n.run(30 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if n.recv.Delivered != 5500 {
		t.Fatalf("delivered %d, want 5500", n.recv.Delivered)
	}
}

func TestStrategyIntrospectionAccessors(t *testing.T) {
	reno := NewReno4BSD()
	if reno.InRecovery() {
		t.Fatal("fresh Reno in recovery")
	}
	nr := NewNewReno()
	if nr.InRecovery() || nr.Recover() != 0 {
		t.Fatal("fresh New-Reno state")
	}
	sack := NewSACK()
	if sack.InRecovery() || len(sack.Scoreboard()) != 0 {
		t.Fatal("fresh SACK state")
	}
	fack := NewFACK()
	if fack.InRecovery() || fack.Fack() != 0 {
		t.Fatal("fresh FACK state")
	}
	re := NewRightEdge()
	if re.InRecovery() {
		t.Fatal("fresh right-edge state")
	}
	lk := NewLinKung()
	if lk.InRecovery() {
		t.Fatal("fresh Lin-Kung state")
	}
}

func TestSACKPipeAccessorDuringRecovery(t *testing.T) {
	n := newTestNet(t, NewSACK(), testNetConfig{
		totalBytes: 0, window: 24, ssthresh: 12, sack: true,
	})
	strat, ok := n.sender.strat.(*SACKStrategy)
	if !ok {
		t.Fatal("strategy type")
	}
	dropBurst(n, 40, 2)
	n.start(t)
	// Run until recovery is active.
	for i := 0; i < 500 && !strat.InRecovery(); i++ {
		n.sched.Run(n.sched.Now() + 10*time.Millisecond)
	}
	if !strat.InRecovery() {
		t.Fatal("recovery never entered")
	}
	if strat.Pipe(n.sender) < 0 {
		t.Fatal("negative pipe")
	}
	if len(strat.Scoreboard()) == 0 {
		t.Fatal("empty scoreboard during recovery")
	}
}

func TestReceiverSetOutputRedirects(t *testing.T) {
	sink := &ackSink{}
	r, orig := newRecv(false)
	r.SetOutput(sink)
	r.Receive(data(0))
	if len(sink.acks) != 1 {
		t.Fatal("redirected output missed the ACK")
	}
	if len(orig.acks) != 0 {
		t.Fatal("original output still receiving")
	}
}

func TestTimerExpiresAtUnarmed(t *testing.T) {
	sched := sim.NewScheduler(1)
	timer := sim.NewTimer(sched, func() {})
	if timer.ExpiresAt() != 0 {
		t.Fatal("unarmed timer has an expiry")
	}
}

func TestSenderWindowAccessorsViaTopology(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	if d.ForwardLink() == nil || d.ReverseLink() == nil {
		t.Fatal("link accessors nil")
	}
	if d.Config().Flows != 1 {
		t.Fatalf("config flows = %d", d.Config().Flows)
	}
	q := d.BottleneckQueue()
	if q.Len() != 0 {
		t.Fatalf("fresh queue len %d", q.Len())
	}
	if q.Discipline() == nil {
		t.Fatal("discipline accessor nil")
	}
}
