package tcp

import (
	"time"

	"rrtcp/internal/sim"
)

// Classic BSD coarse-grained timer constants. The 500 ms tick is what
// makes the paper's "coarse timeouts" so expensive: the minimum RTO is
// two ticks, so a stalled recovery idles the link for about a second.
const (
	// TimerGranularity is the coarse clock tick.
	TimerGranularity = 500 * time.Millisecond
	// MinRTO is the smallest retransmission timeout.
	MinRTO = 2 * TimerGranularity
	// MaxRTO caps exponential backoff.
	MaxRTO = 64 * time.Second
)

// rttEstimator implements the Jacobson/Karels smoothed RTT estimate
// with Karn's algorithm handled by the caller (samples are only fed for
// segments that were not retransmitted).
type rttEstimator struct {
	srtt    float64 // seconds
	rttvar  float64 // seconds
	sampled bool
}

// sample folds one RTT measurement into the estimate.
func (e *rttEstimator) sample(rtt sim.Time) {
	s := rtt.Seconds()
	if s < 0 {
		return
	}
	if !e.sampled {
		e.srtt = s
		e.rttvar = s / 2
		e.sampled = true
		return
	}
	const alpha, beta = 1.0 / 8, 1.0 / 4
	diff := s - e.srtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (1-beta)*e.rttvar + beta*diff
	e.srtt = (1-alpha)*e.srtt + alpha*s
}

// rto returns the current retransmission timeout, rounded up to the
// coarse tick and clamped to [MinRTO, MaxRTO].
func (e *rttEstimator) rto() sim.Time {
	if !e.sampled {
		return 3 * time.Second // RFC 1122 initial RTO
	}
	raw := sim.Time((e.srtt + 4*e.rttvar) * float64(time.Second))
	// Round up to the timer granularity, as a BSD-style slow timer
	// would observe it.
	ticks := (raw + TimerGranularity - 1) / TimerGranularity
	rto := ticks * TimerGranularity
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// SRTT exposes the smoothed estimate in seconds (0 until sampled).
func (e *rttEstimator) SRTT() float64 { return e.srtt }
