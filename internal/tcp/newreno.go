package tcp

import "rrtcp/internal/telemetry"

// NewRenoStrategy implements the modified fast recovery of Hoe / RFC
// 2582: a partial ACK retransmits the next hole immediately and keeps
// the sender in fast recovery (with partial window deflation) until the
// ACK passes `recover`, the highest sequence outstanding when the first
// loss was detected. It recovers one loss per RTT and — per the paper —
// sends roughly one new packet per two duplicate ACKs, exponentially
// shrinking the transfer rate for the whole recovery period.
type NewRenoStrategy struct {
	inRecovery bool
	recover    int64
	// exitUnderflow guards against multiple cwnd cuts for one window
	// of losses after a timeout (RFC 2582 "avoiding multiple fast
	// retransmits" heuristic).
	noRetransmitBelow int64
}

var _ Strategy = (*NewRenoStrategy)(nil)

// NewNewReno returns the New-Reno strategy.
func NewNewReno() *NewRenoStrategy { return &NewRenoStrategy{} }

// Name implements Strategy.
func (*NewRenoStrategy) Name() string { return "newreno" }

// OnAck implements Strategy.
func (n *NewRenoStrategy) OnAck(s *Sender, ev AckEvent) {
	switch {
	case !ev.IsDup && n.inRecovery:
		n.onNewAckInRecovery(s, ev)
	case !ev.IsDup:
		s.SetDupAcks(0)
		s.GrowWindow()
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
	case n.inRecovery:
		s.SetCwnd(s.Cwnd() + 1) // inflation
		s.PumpWindow()
	default:
		s.SetDupAcks(s.DupAcks() + 1)
		if s.DupAcks() == DupThresh && s.SndUna() >= n.noRetransmitBelow {
			n.enter(s)
		}
	}
}

func (n *NewRenoStrategy) onNewAckInRecovery(s *Sender, ev AckEvent) {
	if ev.AckNo >= n.recover {
		// Full ACK: deflate and exit.
		n.inRecovery = false
		s.SetDupAcks(0)
		s.SetCwnd(s.Ssthresh())
		s.Emit(telemetry.CompSender, telemetry.KRecoveryExit, ev.AckNo, s.Cwnd(), 0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	// Partial ACK: retransmit the next hole without leaving recovery,
	// and apply partial window deflation (deflate by the amount of new
	// data acknowledged, then add back one segment).
	ackedPkts := float64(ev.AckNo-s.SndUna()) / float64(s.MSS())
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	cw := s.Cwnd() - ackedPkts + 1
	if cw < 1 {
		cw = 1
	}
	s.SetCwnd(cw)
	s.Retransmit(ev.AckNo)
	s.RestartTimer()
	s.PumpWindow()
}

func (n *NewRenoStrategy) enter(s *Sender) {
	n.inRecovery = true
	n.recover = s.MaxSeq()
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(s.Ssthresh() + DupThresh)
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// OnTimeout implements Strategy.
func (n *NewRenoStrategy) OnTimeout(s *Sender) {
	n.inRecovery = false
	// After a timeout, suppress fast retransmit until the whole
	// pre-timeout window is acknowledged.
	n.noRetransmitBelow = s.MaxSeq()
}

// InRecovery reports whether fast recovery is active (for tests).
func (n *NewRenoStrategy) InRecovery() bool { return n.inRecovery }

// Recover exposes the recovery exit threshold (for tests).
func (n *NewRenoStrategy) Recover() int64 { return n.recover }
