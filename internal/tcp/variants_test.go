package tcp

import (
	"testing"
	"time"

	"rrtcp/internal/trace"
)

// dropBurst registers n consecutive packet drops starting at pkt.
func dropBurst(n *testNet, pkt, count int64) {
	for i := int64(0); i < count; i++ {
		n.loss.Drop(0, (pkt+i)*1000)
	}
}

// runTransfer drives a 120-packet transfer with a 3-packet burst loss
// at packet 40 and returns the net.
func runTransfer(t *testing.T, strat Strategy, drops int64) *testNet {
	t.Helper()
	n := newTestNet(t, strat, testNetConfig{
		totalBytes: 120 * 1000,
		window:     24,
		ssthresh:   12,
		sack:       strat.Name() == "sack" || strat.Name() == "sack6675",
	})
	dropBurst(n, 40, drops)
	n.start(t)
	n.run(60 * time.Second)
	return n
}

func TestAllVariantsCompleteAfterBurstLoss(t *testing.T) {
	strategies := []Strategy{NewTahoe(), NewReno4BSD(), NewNewReno(), NewSACK(), NewSACKModern()}
	for _, strat := range strategies {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			n := runTransfer(t, strat, 3)
			if !n.sender.Done() {
				t.Fatal("transfer did not complete")
			}
			if n.recv.Delivered != 120*1000 {
				t.Fatalf("delivered %d bytes, want 120000", n.recv.Delivered)
			}
		})
	}
}

func TestTahoeFastRetransmitCollapsesWindow(t *testing.T) {
	n := runTransfer(t, NewTahoe(), 1)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	if len(recs) != 1 {
		t.Fatalf("%d fast retransmits, want 1", len(recs))
	}
	// The cwnd sample right after recovery entry must be 1 (Tahoe
	// restarts slow start).
	var sawCollapse bool
	for _, s := range n.tr.SamplesOf(trace.EvCwnd) {
		if s.At >= recs[0].At && s.Value == 1 {
			sawCollapse = true
			break
		}
	}
	if !sawCollapse {
		t.Fatal("Tahoe did not collapse cwnd to 1 on fast retransmit")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts for a single loss", n.tr.Timeouts)
	}
}

func TestRenoSingleLossNoTimeout(t *testing.T) {
	n := runTransfer(t, NewReno4BSD(), 1)
	if n.tr.Timeouts != 0 {
		t.Fatalf("Reno timed out on a single loss (%d timeouts)", n.tr.Timeouts)
	}
	if n.tr.Retransmits != 1 {
		t.Fatalf("%d retransmits, want exactly the lost packet", n.tr.Retransmits)
	}
}

func TestRenoMultipleLossesStruggle(t *testing.T) {
	// Classic Reno halves repeatedly on a 3-packet burst and typically
	// needs a timeout; New-Reno must not.
	reno := runTransfer(t, NewReno4BSD(), 3)
	newreno := runTransfer(t, NewNewReno(), 3)
	if newreno.tr.Timeouts != 0 {
		t.Fatalf("New-Reno timed out on a 3-packet burst (%d)", newreno.tr.Timeouts)
	}
	renoDelay, ok := reno.tr.TransferDelay()
	if !ok {
		t.Fatal("Reno transfer incomplete")
	}
	nrDelay, ok := newreno.tr.TransferDelay()
	if !ok {
		t.Fatal("New-Reno transfer incomplete")
	}
	if nrDelay > renoDelay {
		t.Fatalf("New-Reno (%v) slower than Reno (%v) on burst loss", nrDelay, renoDelay)
	}
}

func TestNewRenoRecoversOneLossPerRTT(t *testing.T) {
	n := runTransfer(t, NewNewReno(), 3)
	if n.tr.Retransmits != 3 {
		t.Fatalf("%d retransmits, want 3", n.tr.Retransmits)
	}
	// Retransmissions are spaced roughly one RTT (~21 ms) apart: the
	// partial-ACK clock.
	rtx := n.tr.SamplesOf(trace.EvRetransmit)
	for i := 1; i < len(rtx); i++ {
		gap := rtx[i].At - rtx[i-1].At
		if gap < 15*time.Millisecond || gap > 100*time.Millisecond {
			t.Fatalf("retransmit gap %v, want ~1 RTT", gap)
		}
	}
	if n.tr.Timeouts != 0 {
		t.Fatal("New-Reno timed out")
	}
}

func TestNewRenoStaysInRecoveryUntilFullAck(t *testing.T) {
	n := runTransfer(t, NewNewReno(), 3)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(recs) != 1 || len(exits) != 1 {
		t.Fatalf("recoveries=%d exits=%d, want exactly 1 each (single signal)", len(recs), len(exits))
	}
}

func TestSACKRetransmitsAllHolesInFirstRTT(t *testing.T) {
	n := runTransfer(t, NewSACK(), 3)
	recs := n.tr.SamplesOf(trace.EvRecovery)
	rtx := n.tr.SamplesOf(trace.EvRetransmit)
	if len(rtx) != 3 {
		t.Fatalf("%d retransmits, want 3", len(rtx))
	}
	// All holes go out within ~1 RTT of entering recovery.
	for _, r := range rtx {
		if r.At-recs[0].At > 40*time.Millisecond {
			t.Fatalf("hole retransmitted %v after entry, want within ~1 RTT", r.At-recs[0].At)
		}
	}
	if n.tr.Timeouts != 0 {
		t.Fatal("SACK timed out on a 3-packet burst")
	}
}

func TestSACKSingleRecoveryPerBurst(t *testing.T) {
	n := runTransfer(t, NewSACK(), 4)
	if got := len(n.tr.SamplesOf(trace.EvRecovery)); got != 1 {
		t.Fatalf("%d window cuts for one burst, want 1", got)
	}
}

func TestSACKModernSurvivesHeavyBurst(t *testing.T) {
	// Lose more than half the window: the classic 1996 pipe stalls into
	// a timeout, the RFC 6675 pipe must not.
	classic := runTransfer(t, NewSACK(), 9)
	modern := runTransfer(t, NewSACKModern(), 9)
	if modern.tr.Timeouts != 0 {
		t.Fatalf("modern SACK timed out (%d)", modern.tr.Timeouts)
	}
	if classic.tr.Timeouts == 0 {
		t.Skip("classic SACK recovered this burst; stall not triggered at this window")
	}
}

func TestVariantsWindowHalvedAfterRecovery(t *testing.T) {
	for _, strat := range []Strategy{NewReno4BSD(), NewNewReno(), NewSACK()} {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			n := runTransfer(t, strat, 1)
			exits := n.tr.SamplesOf(trace.EvExit)
			if len(exits) == 0 {
				t.Fatal("no recovery exit recorded")
			}
			recs := n.tr.SamplesOf(trace.EvRecovery)
			entryCwnd := recs[0].Value
			exitCwnd := exits[0].Value
			if exitCwnd > entryCwnd*0.75 {
				t.Fatalf("exit cwnd %.1f not roughly half of entry %.1f", exitCwnd, entryCwnd)
			}
		})
	}
}

func TestRetransmissionLossForcesTimeout(t *testing.T) {
	// When the retransmission itself is lost, every variant must fall
	// back to the coarse timeout (the paper notes this for SACK too).
	for _, strat := range []Strategy{NewNewReno(), NewSACK()} {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			n := newTestNet(t, strat, testNetConfig{
				totalBytes: 120 * 1000,
				window:     24,
				ssthresh:   12,
				sack:       strat.Name() == "sack",
			})
			dropBurst(n, 40, 1)
			n.loss.DropRetransmit(0, 40*1000)
			n.start(t)
			n.run(60 * time.Second)
			if n.tr.Timeouts == 0 {
				t.Fatal("no timeout despite lost retransmission")
			}
			if !n.sender.Done() {
				t.Fatal("transfer did not complete after timeout recovery")
			}
		})
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]Strategy{
		"tahoe":    NewTahoe(),
		"reno":     NewReno4BSD(),
		"newreno":  NewNewReno(),
		"sack":     NewSACK(),
		"sack6675": NewSACKModern(),
	}
	for want, strat := range names {
		if got := strat.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}
