package tcp

import "rrtcp/internal/telemetry"

// Reno implements 4.3BSD-Reno fast recovery: on the third duplicate
// ACK the sender retransmits the hole, halves the window, and inflates
// cwnd by one segment per additional duplicate ACK so new data keeps
// flowing; ANY new ACK — even a partial one — deflates the window and
// exits recovery. With multiple losses in one window this halves cwnd
// once per loss and usually ends in a coarse timeout, the weakness the
// paper's Section 1 describes.
type Reno struct {
	inRecovery bool
	recover    int64
}

// As in ns-2's default "bugfix" behavior, Reno suppresses a second fast
// retransmit until the cumulative ACK passes `recover`, so a burst of
// losses in one window usually costs it a coarse timeout — the weakness
// the paper's Section 1 describes.

var _ Strategy = (*Reno)(nil)

// NewReno4BSD returns the Reno strategy. (The name avoids a clash with
// the New-Reno constructor.)
func NewReno4BSD() *Reno { return &Reno{} }

// Name implements Strategy.
func (*Reno) Name() string { return "reno" }

// OnAck implements Strategy.
func (r *Reno) OnAck(s *Sender, ev AckEvent) {
	if !ev.IsDup {
		if r.inRecovery {
			// Reno deflates and leaves recovery on the first new ACK,
			// partial or not.
			r.inRecovery = false
			s.SetCwnd(s.Ssthresh())
			s.Emit(telemetry.CompSender, telemetry.KRecoveryExit, ev.AckNo, s.Cwnd(), 0)
		} else {
			s.GrowWindow()
		}
		s.SetDupAcks(0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	if r.inRecovery {
		// Window inflation: each duplicate ACK signals a departure.
		s.SetCwnd(s.Cwnd() + 1)
		s.PumpWindow()
		return
	}
	s.SetDupAcks(s.DupAcks() + 1)
	if s.DupAcks() != DupThresh || s.SndUna() <= r.recover {
		return
	}
	r.enter(s)
}

func (r *Reno) enter(s *Sender) {
	r.inRecovery = true
	r.recover = s.MaxSeq()
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(s.Ssthresh() + DupThresh)
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// OnTimeout implements Strategy.
func (r *Reno) OnTimeout(s *Sender) {
	r.inRecovery = false
	r.recover = s.MaxSeq()
}

// InRecovery reports whether fast recovery is active (for tests).
func (r *Reno) InRecovery() bool { return r.inRecovery }
