package tcp

import "rrtcp/internal/telemetry"

// The two related-work enhancements the paper's introduction analyzes
// and argues against. Both keep TCP aggressive around loss detection;
// the paper's criticism is that packets transmitted on the verge of a
// congestion signal "add more fuel to the fire" at the bottleneck, and
// that neither can detect further losses during recovery.

// RightEdge implements right-edge recovery (Balakrishnan et al.,
// INFOCOM'98, the paper's [1]): New-Reno fast recovery, except that one
// new data packet is clocked out for EACH duplicate ACK instead of each
// second one, keeping the right edge of the window moving to avoid
// coarse timeouts under tiny windows.
type RightEdge struct {
	inRecovery        bool
	recover           int64
	noRetransmitBelow int64
}

var _ Strategy = (*RightEdge)(nil)

// NewRightEdge returns the right-edge recovery strategy.
func NewRightEdge() *RightEdge { return &RightEdge{} }

// Name implements Strategy.
func (*RightEdge) Name() string { return "rightedge" }

// OnAck implements Strategy.
func (e *RightEdge) OnAck(s *Sender, ev AckEvent) {
	switch {
	case !ev.IsDup && e.inRecovery:
		e.onNewAckInRecovery(s, ev)
	case !ev.IsDup:
		s.SetDupAcks(0)
		s.GrowWindow()
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
	case e.inRecovery:
		// One new packet per duplicate ACK: the defining rule.
		s.SendNewSegment()
	default:
		s.SetDupAcks(s.DupAcks() + 1)
		if s.DupAcks() == DupThresh && s.SndUna() >= e.noRetransmitBelow {
			e.enter(s)
		}
	}
}

func (e *RightEdge) enter(s *Sender) {
	e.inRecovery = true
	e.recover = s.MaxSeq()
	s.Emit(telemetry.CompSender, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(s.Ssthresh())
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

func (e *RightEdge) onNewAckInRecovery(s *Sender, ev AckEvent) {
	if ev.AckNo >= e.recover {
		e.inRecovery = false
		s.SetDupAcks(0)
		s.SetCwnd(s.Ssthresh())
		s.Emit(telemetry.CompSender, telemetry.KRecoveryExit, ev.AckNo, s.Cwnd(), 0)
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	// Partial ACK: New-Reno-style hole retransmission.
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// OnTimeout implements Strategy.
func (e *RightEdge) OnTimeout(s *Sender) {
	e.inRecovery = false
	e.noRetransmitBelow = s.MaxSeq()
}

// InRecovery reports whether fast recovery is active (for tests).
func (e *RightEdge) InRecovery() bool { return e.inRecovery }

// LinKung implements the Lin & Kung (INFOCOM'98, the paper's [12])
// refinement: a new data packet is generated upon each arrival of the
// FIRST TWO duplicate ACKs — before fast retransmit even fires — so
// TCP stays aggressive while a loss is still only suspected. Recovery
// itself proceeds as in New-Reno.
type LinKung struct {
	newreno NewRenoStrategy
}

var _ Strategy = (*LinKung)(nil)

// NewLinKung returns the Lin-Kung strategy.
func NewLinKung() *LinKung { return &LinKung{} }

// Name implements Strategy.
func (*LinKung) Name() string { return "linkung" }

// OnAck implements Strategy.
func (l *LinKung) OnAck(s *Sender, ev AckEvent) {
	if ev.IsDup && !l.newreno.InRecovery() && s.DupAcks() < DupThresh-1 {
		// First two duplicate ACKs each clock out one new packet.
		s.SendNewSegment()
	}
	l.newreno.OnAck(s, ev)
}

// OnTimeout implements Strategy.
func (l *LinKung) OnTimeout(s *Sender) { l.newreno.OnTimeout(s) }

// InRecovery reports whether fast recovery is active (for tests).
func (l *LinKung) InRecovery() bool { return l.newreno.InRecovery() }
