// Package tcp implements the sender- and receiver-side TCP machinery
// the paper's evaluation depends on: segment/ACK generation, RTT
// estimation with a coarse-grained retransmission timer, slow start and
// congestion avoidance, and the four loss-recovery baselines — Tahoe,
// Reno, New-Reno, and SACK TCP. The paper's own contribution, Robust
// Recovery, plugs into the same Sender through the Strategy interface
// and lives in internal/core.
package tcp

import (
	"fmt"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/trace"
)

// DupThresh is the classic three-duplicate-ACK fast-retransmit trigger.
const DupThresh = 3

// DefaultMSS matches the paper's 1000-byte data packets.
const DefaultMSS = 1000

// Infinite marks a flow with unbounded data to send.
const Infinite int64 = -1

// AckEvent summarizes an incoming acknowledgment for a Strategy.
type AckEvent struct {
	// AckNo is the cumulative acknowledgment.
	AckNo int64
	// SACK carries the selective-acknowledgment blocks, if any.
	SACK []netem.SACKBlock
	// IsDup reports a pure duplicate: AckNo equals SndUna while data is
	// outstanding.
	IsDup bool
}

// Strategy is the pluggable congestion-control / loss-recovery state
// machine of a Sender. The Sender handles segment bookkeeping, RTT
// estimation, the retransmission timer, and application completion;
// the Strategy decides how the window evolves and what gets
// (re)transmitted in response to ACKs and timeouts.
type Strategy interface {
	// Name identifies the variant ("tahoe", "newreno", "rr", ...).
	Name() string
	// OnAck handles one acknowledgment. It runs after the Sender has
	// taken its RTT sample but before any state is advanced: the
	// strategy itself calls Sender methods (AdvanceUna, GrowWindow,
	// PumpWindow, Retransmit, ...) to effect the response.
	OnAck(s *Sender, ev AckEvent)
	// OnTimeout lets the strategy reset recovery state after the Sender
	// has performed the standard timeout actions (collapse to slow
	// start and go-back-N).
	OnTimeout(s *Sender)
}

// Config parameterizes a Sender.
type Config struct {
	// Flow is the connection identifier used in packet headers.
	Flow int
	// MSS is the segment payload size; the wire size of a data packet
	// equals MSS here, matching the paper's "each data packet is 1000
	// bytes long".
	MSS int
	// Window is the receiver's advertised window in packets.
	Window int
	// InitialSSThresh is the initial slow-start threshold in packets;
	// zero defaults to Window.
	InitialSSThresh float64
	// TotalBytes bounds the transfer; Infinite for an unbounded FTP.
	TotalBytes int64
	// SmoothStart enables the slow-start refinement of Wang, Xin,
	// Reeves & Shin (ISCC 2000) — the paper's reference [21], described
	// there as orthogonal to recovery enhancements: once cwnd passes
	// half of ssthresh, growth slows from doubling to ×1.5 per RTT so
	// the final approach to the knee does not burst the gateway buffer.
	SmoothStart bool
	// Trace, if non-nil, records the flow's events.
	Trace *trace.FlowTrace
	// Telemetry, if non-nil, receives every sender event the trace
	// does (plus recovery-internal ones) as structured telemetry. The
	// FlowTrace is wired in as a direct per-flow subscriber of the same
	// event stream, so the two never diverge.
	Telemetry *telemetry.Bus
	// OnDone runs when the transfer completes (all bytes acked).
	OnDone func()
	// Pool, when non-nil, supplies outgoing packets and receives every
	// consumed ACK back; topologies share one pool across their
	// endpoints so steady-state traffic allocates no packets.
	Pool *netem.PacketPool
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = DefaultMSS
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.InitialSSThresh <= 0 {
		c.InitialSSThresh = float64(c.Window)
	}
	if c.TotalBytes == 0 {
		c.TotalBytes = Infinite
	}
}

// Sender is one TCP connection's sending side. Construct with New and
// a Strategy; start transmission with Start.
type Sender struct {
	sched *sim.Scheduler
	out   netem.Node
	cfg   Config
	strat Strategy
	tr    *trace.FlowTrace
	bus   *telemetry.Bus

	sndUna int64 // lowest unacknowledged byte
	sndNxt int64 // next new byte to transmit
	maxSeq int64 // highest sequence transmitted so far (snd.nxt high-water)

	cwnd     float64 // packets
	ssthresh float64 // packets
	dupAcks  int

	rtt        rttEstimator
	rtxTimer   *sim.Timer
	rtoBackoff uint

	pool       *netem.PacketPool
	startTimer *sim.Timer

	// Karn's algorithm: one outstanding RTT measurement at a time,
	// invalidated by retransmission of the timed segment.
	rttSeq     int64
	rttSentAt  sim.Time
	rttPending bool

	// Flow-lifecycle accounting for the flow-done event: counters cost
	// an integer increment on paths that already publish telemetry, so
	// aggregate flow analytics need not retain the event stream.
	startedAt    sim.Time
	rtxCount     uint32
	timeoutCount uint32

	started bool
	done    bool
}

var _ netem.Node = (*Sender)(nil)

// New builds a sender transmitting into out under the given strategy.
func New(sched *sim.Scheduler, out netem.Node, strat Strategy, cfg Config) (*Sender, error) {
	if sched == nil || out == nil || strat == nil {
		return nil, fmt.Errorf("tcp: nil scheduler, output node, or strategy")
	}
	cfg.fillDefaults()
	s := &Sender{
		sched:    sched,
		out:      out,
		cfg:      cfg,
		strat:    strat,
		tr:       cfg.Trace,
		bus:      cfg.Telemetry,
		pool:     cfg.Pool,
		cwnd:     1,
		ssthresh: cfg.InitialSSThresh,
	}
	s.rtxTimer = sched.NewTimer(s.onTimeout)
	s.startTimer = sched.NewTimer(s.onStart)
	return s, nil
}

// Start schedules the flow to begin transmitting after delay.
func (s *Sender) Start(delay sim.Time) error {
	if s.started {
		return fmt.Errorf("tcp: flow %d already started", s.cfg.Flow)
	}
	s.started = true
	return s.startTimer.At(s.sched.Now() + delay)
}

// onStart fires when the configured start delay elapses.
func (s *Sender) onStart() {
	s.startedAt = s.sched.Now()
	s.tr.SetStart(s.startedAt)
	if s.bus.Enabled() {
		// Built inline rather than via Emit: lifecycle events carry the
		// variant name in Src so flow-level sinks can aggregate per
		// variant without a side table.
		s.bus.Publish(telemetry.Event{
			At:   s.startedAt,
			Comp: telemetry.CompSender,
			Kind: telemetry.KFlowStart,
			Src:  s.strat.Name(),
			Flow: int32(s.cfg.Flow),
			A:    float64(s.cfg.TotalBytes),
		})
	}
	s.PumpWindow()
}

// StartedAt returns the simulated instant transmission began (zero
// until the start delay elapses).
func (s *Sender) StartedAt() sim.Time { return s.startedAt }

// Retransmits returns the cumulative retransmission count.
func (s *Sender) Retransmits() uint32 { return s.rtxCount }

// Timeouts returns the cumulative retransmission-timer expirations.
func (s *Sender) Timeouts() uint32 { return s.timeoutCount }

// --- accessors used by strategies and experiments ---

// Now returns the current simulated time.
func (s *Sender) Now() sim.Time { return s.sched.Now() }

// Flow returns the connection identifier.
func (s *Sender) Flow() int { return s.cfg.Flow }

// VariantName returns the attached strategy's name.
func (s *Sender) VariantName() string { return s.strat.Name() }

// MSS returns the segment size in bytes.
func (s *Sender) MSS() int { return s.cfg.MSS }

// SndUna returns the lowest unacknowledged byte.
func (s *Sender) SndUna() int64 { return s.sndUna }

// SndNxt returns the next new byte to transmit.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// MaxSeq returns the highest byte sequence sent so far.
func (s *Sender) MaxSeq() int64 { return s.maxSeq }

// Cwnd returns the congestion window in packets.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SetCwnd sets the congestion window (packets), clamped to [1, Window].
func (s *Sender) SetCwnd(pkts float64) {
	if pkts < 1 {
		pkts = 1
	}
	if pkts > float64(s.cfg.Window) {
		pkts = float64(s.cfg.Window)
	}
	s.cwnd = pkts
	s.Emit(telemetry.CompSender, telemetry.KCwnd, s.sndUna, s.cwnd, 0)
}

// Ssthresh returns the slow-start threshold in packets.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// SetSsthresh sets the slow-start threshold (packets), floored at 2.
func (s *Sender) SetSsthresh(pkts float64) {
	if pkts < 2 {
		pkts = 2
	}
	s.ssthresh = pkts
}

// DupAcks returns the consecutive duplicate-ACK count.
func (s *Sender) DupAcks() int { return s.dupAcks }

// SetDupAcks overrides the duplicate-ACK count.
func (s *Sender) SetDupAcks(n int) { s.dupAcks = n }

// FlightPackets estimates outstanding packets as (SndNxt-SndUna)/MSS.
func (s *Sender) FlightPackets() int {
	return int((s.sndNxt - s.sndUna) / int64(s.cfg.MSS))
}

// Window returns the receiver's advertised window in packets.
func (s *Sender) Window() int { return s.cfg.Window }

// Done reports whether the transfer has completed.
func (s *Sender) Done() bool { return s.done }

// SRTT exposes the smoothed RTT estimate in seconds.
func (s *Sender) SRTT() float64 { return s.rtt.SRTT() }

// RTOBackoff reports the current exponential-backoff shift applied to
// the retransmission timeout (0 outside repeated-timeout situations).
func (s *Sender) RTOBackoff() uint { return s.rtoBackoff }

// TimerArmed reports whether the retransmission timer is pending — a
// sender with outstanding data and no armed timer is deadlocked, which
// is exactly what the invariant checker's watchdog looks for.
func (s *Sender) TimerArmed() bool { return s.rtxTimer.Armed() }

// Strategy exposes the congestion-control strategy driving this sender.
func (s *Sender) Strategy() Strategy { return s.strat }

// Trace returns the attached flow trace (may be nil).
func (s *Sender) Trace() *trace.FlowTrace { return s.tr }

// Telemetry returns the attached event bus (may be nil).
func (s *Sender) Telemetry() *telemetry.Bus { return s.bus }

// Emit publishes one structured event for this flow: to the attached
// FlowTrace (a direct subscriber of the same stream) and to the shared
// telemetry bus. Strategies use it for recovery phase transitions; the
// sender itself uses it for the segment/ACK/timer lifecycle. With no
// trace and a nil bus it costs two nil checks.
func (s *Sender) Emit(comp telemetry.Component, kind telemetry.Kind, seq int64, a, b float64) {
	if s.tr == nil && !s.bus.Enabled() {
		return
	}
	ev := telemetry.Event{
		At:   s.sched.Now(),
		Comp: comp,
		Kind: kind,
		Flow: int32(s.cfg.Flow),
		Seq:  seq,
		A:    a,
		B:    b,
	}
	s.tr.OnEvent(ev)
	s.bus.Publish(ev)
}

// SampleGauges implements telemetry.GaugeSource: the periodic Sampler
// calls it to record the window/RTT state the paper's figures plot.
// Strategies that track actnum (RR) expose it through an optional
// accessor and get an extra gauge.
func (s *Sender) SampleGauges(emit func(gauge string, v float64)) {
	emit("cwnd", s.cwnd)
	emit("ssthresh", s.ssthresh)
	emit("srtt", s.rtt.SRTT())
	emit("rto", s.currentRTO().Seconds())
	emit("flight", float64(s.FlightPackets()))
	if a, ok := s.strat.(interface{ Actnum() int }); ok {
		emit("actnum", float64(a.Actnum()))
	}
}

// TotalBytes returns the configured transfer size (Infinite if unbounded).
func (s *Sender) TotalBytes() int64 { return s.cfg.TotalBytes }

// --- ACK ingress ---

// Receive implements netem.Node for the sender side: it consumes ACKs.
func (s *Sender) Receive(p *netem.Packet) {
	defer p.Release() // strategies copy what they keep of the ACK
	if s.done || p.Kind != netem.Ack || p.Flow != s.cfg.Flow {
		return
	}
	if p.AckNo < s.sndUna {
		return // stale, reordered ACK
	}
	if p.AckNo > s.maxSeq {
		// Acknowledges data never sent — a forged or corrupted ACK.
		// RFC 793: drop it rather than let it fabricate sender state.
		// (The bound is the snd.nxt high-water mark, not snd.nxt itself:
		// after a go-back-N rewind a legitimate cumulative ACK covering
		// receiver-buffered data exceeds the rewound snd.nxt.)
		return
	}
	ev := AckEvent{
		AckNo: p.AckNo,
		SACK:  p.SACK,
		IsDup: p.AckNo == s.sndUna && s.sndNxt > s.sndUna,
	}
	s.Emit(telemetry.CompSender, telemetry.KAck, p.AckNo, 0, 0)
	if ev.IsDup {
		s.Emit(telemetry.CompSender, telemetry.KDupAck, p.AckNo, 0, 0)
	}
	// RTT sampling (Karn-safe: the pending sample is cancelled whenever
	// the timed segment is retransmitted).
	if s.rttPending && p.AckNo > s.rttSeq {
		s.rtt.sample(s.sched.Now() - s.rttSentAt)
		s.rttPending = false
	}
	if p.AckNo > s.sndUna {
		s.rtoBackoff = 0
	}
	s.strat.OnAck(s, ev)
}

// AdvanceUna moves the left window edge to ackNo, restarts or stops the
// retransmission timer, and fires completion. Strategies call it for
// every ACK that acknowledges new data.
func (s *Sender) AdvanceUna(ackNo int64) {
	if ackNo <= s.sndUna {
		return
	}
	s.sndUna = ackNo
	if s.sndNxt < s.sndUna {
		s.sndNxt = s.sndUna
	}
	if s.cfg.TotalBytes != Infinite && s.sndUna >= s.cfg.TotalBytes {
		s.complete()
		return
	}
	if s.sndNxt > s.sndUna {
		s.rtxTimer.Reset(s.currentRTO())
	} else {
		s.rtxTimer.Stop()
	}
}

func (s *Sender) complete() {
	s.done = true
	s.rtxTimer.Stop()
	// The accounting event precedes the lifecycle close so stream
	// consumers (span assembly included) see "done" as the flow's final
	// event.
	if s.bus.Enabled() {
		s.bus.Publish(telemetry.Event{
			At:   s.sched.Now(),
			Comp: telemetry.CompSender,
			Kind: telemetry.KFlowStats,
			Src:  s.strat.Name(),
			Flow: int32(s.cfg.Flow),
			Seq:  s.sndUna,
			A:    float64(s.rtxCount),
			B:    float64(s.timeoutCount),
		})
	}
	s.Emit(telemetry.CompSender, telemetry.KFlowDone, s.sndUna, 0, 0)
	if s.cfg.OnDone != nil {
		s.cfg.OnDone()
	}
}

// GrowWindow applies the per-ACK slow-start / congestion-avoidance
// increase: +1 packet per ACK below ssthresh, +1/cwnd above it. With
// SmoothStart, the upper half of the slow-start region grows at half
// rate (×1.5 per RTT), the paper's [21] burst-damping refinement.
func (s *Sender) GrowWindow() {
	switch {
	case s.cwnd >= s.ssthresh:
		s.SetCwnd(s.cwnd + 1/s.cwnd)
	case s.cfg.SmoothStart && s.cwnd >= s.ssthresh/2:
		s.SetCwnd(s.cwnd + 0.5)
	default:
		s.SetCwnd(s.cwnd + 1)
	}
}

// --- transmission ---

// availableBytes reports how much unsent application data remains.
func (s *Sender) availableBytes() int64 {
	if s.cfg.TotalBytes == Infinite {
		return 1 << 62
	}
	return s.cfg.TotalBytes - s.sndNxt
}

// HasNewData reports whether the application has unsent bytes.
func (s *Sender) HasNewData() bool { return s.availableBytes() > 0 }

// SendNewSegment transmits one new MSS-sized segment at SndNxt,
// ignoring the congestion window (strategies that meter transmissions
// themselves — RR, SACK — use this directly). Self-metered recovery may
// overshoot the advertised window by the dup-ACK clock (the paper's
// model assumes a receiver window above the operating point), but twice
// the advertised window is a hard sanity bound: past it something is
// broken, and no more data enters the pipe. It reports whether a
// segment was sent.
func (s *Sender) SendNewSegment() bool {
	if s.done {
		return false
	}
	if s.FlightPackets() >= 2*s.cfg.Window {
		return false
	}
	avail := s.availableBytes()
	if avail <= 0 {
		return false
	}
	n := int64(s.cfg.MSS)
	if avail < n {
		n = avail
	}
	seq := s.sndNxt
	s.sndNxt += n
	if s.sndNxt > s.maxSeq {
		s.maxSeq = s.sndNxt
	}
	s.transmit(seq, int(n), false)
	return true
}

// PumpWindow sends new segments while the effective window
// (min(cwnd, advertised window) minus flight) permits.
func (s *Sender) PumpWindow() {
	for s.FlightPackets() < s.effectiveWindow() {
		if !s.SendNewSegment() {
			return
		}
	}
}

func (s *Sender) effectiveWindow() int {
	w := s.cwnd
	if fw := float64(s.cfg.Window); w > fw {
		w = fw
	}
	return int(w)
}

// Retransmit resends the MSS-sized segment starting at seq.
func (s *Sender) Retransmit(seq int64) {
	if s.done {
		return
	}
	n := int64(s.cfg.MSS)
	if s.cfg.TotalBytes != Infinite && seq+n > s.cfg.TotalBytes {
		n = s.cfg.TotalBytes - seq
	}
	if n <= 0 {
		return
	}
	// Karn: invalidate a pending RTT sample for a retransmitted range.
	if s.rttPending && seq <= s.rttSeq {
		s.rttPending = false
	}
	s.transmit(seq, int(n), true)
}

func (s *Sender) transmit(seq int64, n int, rtx bool) {
	p := s.pool.Get()
	p.ID = netem.NextID()
	p.Flow = s.cfg.Flow
	p.Kind = netem.Data
	p.Seq = seq
	p.Len = n
	p.Size = n
	p.Retransmit = rtx
	if rtx {
		s.rtxCount++
		s.Emit(telemetry.CompSender, telemetry.KRetransmit, seq, 0, 0)
	} else {
		s.Emit(telemetry.CompSender, telemetry.KSend, seq, 0, 0)
		if !s.rttPending {
			s.rttSeq = seq
			s.rttSentAt = s.sched.Now()
			s.rttPending = true
		}
	}
	if !s.rtxTimer.Armed() {
		s.rtxTimer.Reset(s.currentRTO())
	}
	s.out.Receive(p)
}

// GoBackN collapses SndNxt to SndUna so transmission resumes from the
// first unacknowledged byte, as in Tahoe fast retransmit and timeouts.
func (s *Sender) GoBackN() {
	s.sndNxt = s.sndUna
	s.rttPending = false
}

// RestartTimer re-arms the retransmission timer at the current RTO, as
// recovery algorithms do on partial ACKs.
func (s *Sender) RestartTimer() { s.rtxTimer.Reset(s.currentRTO()) }

func (s *Sender) currentRTO() sim.Time {
	rto := s.rtt.rto() << s.rtoBackoff
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// --- timeout path ---

// onTimeout performs the standard TCP timeout: halve ssthresh from the
// current flight, collapse cwnd to one segment, go back to SndUna, back
// off the timer exponentially, and retransmit the first lost segment.
// The strategy is notified afterwards so it can discard recovery state.
func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	s.timeoutCount++
	s.Emit(telemetry.CompSender, telemetry.KTimeout, s.sndUna, 0, 0)
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	s.SetCwnd(1)
	s.dupAcks = 0
	s.sndNxt = s.sndUna // go-back-N
	s.rttPending = false
	if s.rtoBackoff < 6 {
		s.rtoBackoff++
	}
	s.strat.OnTimeout(s)
	s.Retransmit(s.sndUna)
	s.rtxTimer.Reset(s.currentRTO())
}
