package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// strategiesUnderTest builds one of each variant (fresh state per call).
func strategiesUnderTest() map[string]func() Strategy {
	return map[string]func() Strategy{
		"tahoe":     func() Strategy { return NewTahoe() },
		"reno":      func() Strategy { return NewReno4BSD() },
		"newreno":   func() Strategy { return NewNewReno() },
		"sack":      func() Strategy { return NewSACK() },
		"sack6675":  func() Strategy { return NewSACKModern() },
		"fack":      func() Strategy { return NewFACK() },
		"rightedge": func() Strategy { return NewRightEdge() },
		"linkung":   func() Strategy { return NewLinKung() },
	}
}

func needsSACK(name string) bool {
	return name == "sack" || name == "sack6675" || name == "fack"
}

// TestVariantsSurviveRandomLossProperty drives every variant through
// randomly generated loss patterns — scattered first-transmission drops
// plus occasional retransmission drops — and requires the transfer to
// complete with the full byte stream delivered in order. This is the
// core reliability invariant: no loss pattern may wedge a sender.
func TestVariantsSurviveRandomLossProperty(t *testing.T) {
	const transfer = 150 * 1000
	for name, mk := range strategiesUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := newTestNet(t, mk(), testNetConfig{
					totalBytes: transfer,
					window:     24,
					ssthresh:   12,
					sack:       needsSACK(name),
				})
				// Up to 15 scattered drops among the first 120 packets.
				drops := rng.Intn(16)
				for i := 0; i < drops; i++ {
					n.loss.Drop(0, int64(rng.Intn(120))*1000)
				}
				// Occasionally lose a retransmission as well.
				if rng.Intn(3) == 0 {
					n.loss.DropRetransmit(0, int64(rng.Intn(120))*1000)
				}
				n.start(t)
				n.run(600 * time.Second)
				if !n.sender.Done() {
					t.Logf("seed %d: transfer incomplete (una=%d)", seed, n.sender.SndUna())
					return false
				}
				if n.recv.Delivered != transfer {
					t.Logf("seed %d: delivered %d", seed, n.recv.Delivered)
					return false
				}
				if len(n.recv.OutOfOrderBlocks()) != 0 {
					t.Logf("seed %d: leftover out-of-order blocks", seed)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVariantsSurviveRandomAckLossProperty repeats the exercise with
// ACK losses layered on top: self-clocking must re-establish via the
// retransmission timer no matter which ACKs disappear.
func TestVariantsSurviveRandomAckLossProperty(t *testing.T) {
	const transfer = 100 * 1000
	for name, mk := range strategiesUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := newTestNet(t, mk(), testNetConfig{
					totalBytes: transfer,
					window:     24,
					ssthresh:   12,
					sack:       needsSACK(name),
				})
				for i := 0; i < rng.Intn(8); i++ {
					n.loss.Drop(0, int64(rng.Intn(80))*1000)
				}
				// Drop specific cumulative ACKs on the reverse path.
				for i := 0; i < rng.Intn(6); i++ {
					n.ackLoss.DropAck(0, int64(rng.Intn(80))*1000)
				}
				n.start(t)
				n.run(600 * time.Second)
				return n.sender.Done() && n.recv.Delivered == transfer
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
