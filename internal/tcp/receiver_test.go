package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
)

// ackSink records ACKs emitted by a receiver.
type ackSink struct {
	acks []*netem.Packet
}

func (a *ackSink) Receive(p *netem.Packet) { a.acks = append(a.acks, p) }

func (a *ackSink) last() *netem.Packet {
	if len(a.acks) == 0 {
		return nil
	}
	return a.acks[len(a.acks)-1]
}

func newRecv(sack bool) (*Receiver, *ackSink) {
	sink := &ackSink{}
	r := NewReceiver(sim.NewScheduler(1), 0, sink, nil)
	r.SACKEnabled = sack
	return r, sink
}

func data(seq int64) *netem.Packet {
	return &netem.Packet{Flow: 0, Kind: netem.Data, Seq: seq, Len: 1000, Size: 1000}
}

func TestReceiverInOrderDelivery(t *testing.T) {
	r, sink := newRecv(false)
	for i := int64(0); i < 5; i++ {
		r.Receive(data(i * 1000))
	}
	if r.RcvNxt() != 5000 {
		t.Fatalf("rcvNxt = %d, want 5000", r.RcvNxt())
	}
	if len(sink.acks) != 5 {
		t.Fatalf("%d ACKs, want one per packet", len(sink.acks))
	}
	for i, a := range sink.acks {
		if a.AckNo != int64(i+1)*1000 {
			t.Fatalf("ack %d = %d, want %d", i, a.AckNo, (i+1)*1000)
		}
	}
}

func TestReceiverImmediateDupAckOnGap(t *testing.T) {
	r, sink := newRecv(false)
	r.Receive(data(0))
	r.Receive(data(2000)) // gap at 1000
	r.Receive(data(3000))
	if r.RcvNxt() != 1000 {
		t.Fatalf("rcvNxt advanced past the hole: %d", r.RcvNxt())
	}
	if len(sink.acks) != 3 {
		t.Fatalf("%d ACKs, want 3 (one per arrival)", len(sink.acks))
	}
	if sink.acks[1].AckNo != 1000 || sink.acks[2].AckNo != 1000 {
		t.Fatal("out-of-order arrivals did not produce duplicate ACKs")
	}
}

func TestReceiverFillsHoleAndJumps(t *testing.T) {
	r, sink := newRecv(false)
	r.Receive(data(0))
	r.Receive(data(2000))
	r.Receive(data(3000))
	r.Receive(data(1000)) // fill
	if r.RcvNxt() != 4000 {
		t.Fatalf("rcvNxt = %d after filling the hole, want 4000", r.RcvNxt())
	}
	if sink.last().AckNo != 4000 {
		t.Fatalf("big ACK = %d, want 4000", sink.last().AckNo)
	}
}

func TestReceiverDuplicateOldSegment(t *testing.T) {
	r, sink := newRecv(false)
	r.Receive(data(0))
	r.Receive(data(0)) // spurious retransmission
	if r.DupSegments != 1 {
		t.Fatalf("dupSegments = %d, want 1", r.DupSegments)
	}
	if sink.last().AckNo != 1000 {
		t.Fatal("old segment did not re-ACK rcvNxt")
	}
}

func TestReceiverIgnoresWrongFlowAndAcks(t *testing.T) {
	r, sink := newRecv(false)
	wrong := data(0)
	wrong.Flow = 3
	r.Receive(wrong)
	r.Receive(&netem.Packet{Flow: 0, Kind: netem.Ack, AckNo: 1000, Size: 40})
	if len(sink.acks) != 0 {
		t.Fatal("receiver responded to foreign or ACK packets")
	}
}

func TestReceiverSACKBlocks(t *testing.T) {
	r, sink := newRecv(true)
	r.Receive(data(0))
	r.Receive(data(2000))
	r.Receive(data(4000))
	r.Receive(data(6000))
	last := sink.last()
	if len(last.SACK) != 3 {
		t.Fatalf("%d SACK blocks, want 3", len(last.SACK))
	}
	// First block reports the most recent arrival.
	if last.SACK[0].Start != 6000 || last.SACK[0].End != 7000 {
		t.Fatalf("first SACK block %+v, want [6000,7000)", last.SACK[0])
	}
}

func TestReceiverSACKBlocksMerge(t *testing.T) {
	r, sink := newRecv(true)
	r.Receive(data(0))
	r.Receive(data(2000))
	r.Receive(data(3000)) // adjacent: merges with [2000,3000)
	last := sink.last()
	if len(last.SACK) != 1 {
		t.Fatalf("%d SACK blocks, want 1 merged", len(last.SACK))
	}
	if last.SACK[0].Start != 2000 || last.SACK[0].End != 4000 {
		t.Fatalf("merged block %+v, want [2000,4000)", last.SACK[0])
	}
}

func TestReceiverNoSACKWhenDisabled(t *testing.T) {
	r, sink := newRecv(false)
	r.Receive(data(2000))
	if len(sink.last().SACK) != 0 {
		t.Fatal("SACK blocks on a non-SACK receiver")
	}
}

func TestReceiverOutOfOrderBlocksAccessor(t *testing.T) {
	r, _ := newRecv(false)
	r.Receive(data(2000))
	r.Receive(data(5000))
	blocks := r.OutOfOrderBlocks()
	if len(blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(blocks))
	}
	if blocks[0].Start != 2000 || blocks[1].Start != 5000 {
		t.Fatalf("blocks %v not sorted", blocks)
	}
}

// Property: delivering a random permutation of segments always ends
// with rcvNxt covering everything, rcvNxt monotonically nondecreasing,
// and one ACK per arrival.
func TestReceiverPermutationProperty(t *testing.T) {
	f := func(seed int64, nSeg uint8) bool {
		n := int(nSeg%30) + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		r, sink := newRecv(true)
		prev := int64(0)
		for _, i := range perm {
			r.Receive(data(int64(i) * 1000))
			if r.RcvNxt() < prev {
				return false
			}
			prev = r.RcvNxt()
		}
		return r.RcvNxt() == int64(n)*1000 &&
			len(sink.acks) == n &&
			len(r.OutOfOrderBlocks()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with duplicated deliveries mixed in, the receiver still
// converges and never reports overlapping out-of-order blocks.
func TestReceiverDuplicatesProperty(t *testing.T) {
	f := func(seed int64, nSeg uint8) bool {
		n := int(nSeg%20) + 1
		rng := rand.New(rand.NewSource(seed))
		r, _ := newRecv(true)
		// Deliver 3n random segments from [0, n), then the full set.
		for i := 0; i < 3*n; i++ {
			r.Receive(data(int64(rng.Intn(n)) * 1000))
			blocks := r.OutOfOrderBlocks()
			for j := 1; j < len(blocks); j++ {
				if blocks[j].Start < blocks[j-1].End {
					return false // overlap or disorder
				}
			}
		}
		for i := 0; i < n; i++ {
			r.Receive(data(int64(i) * 1000))
		}
		return r.RcvNxt() == int64(n)*1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverPartiallyOldSegment(t *testing.T) {
	// A segment straddling rcvNxt (old bytes + new bytes) delivers the
	// new portion.
	r, sink := newRecv(false)
	r.Receive(data(0))
	// 1500-byte segment starting at 500: bytes 500..1000 are old.
	r.Receive(&netem.Packet{Flow: 0, Kind: netem.Data, Seq: 500, Len: 1500, Size: 1500})
	if r.RcvNxt() != 2000 {
		t.Fatalf("rcvNxt = %d, want 2000", r.RcvNxt())
	}
	if sink.last().AckNo != 2000 {
		t.Fatalf("ack = %d", sink.last().AckNo)
	}
}

func TestReceiverManyDistinctHoles(t *testing.T) {
	// Every other packet arrives: the block list must track all holes
	// and drain in one pass once they fill.
	r, _ := newRecv(true)
	for i := int64(1); i <= 19; i += 2 {
		r.Receive(data(i * 1000))
	}
	if got := len(r.OutOfOrderBlocks()); got != 10 {
		t.Fatalf("%d blocks, want 10", got)
	}
	for i := int64(0); i <= 18; i += 2 {
		r.Receive(data(i * 1000))
	}
	if r.RcvNxt() != 20*1000 {
		t.Fatalf("rcvNxt = %d", r.RcvNxt())
	}
	if len(r.OutOfOrderBlocks()) != 0 {
		t.Fatal("blocks left after draining")
	}
}
