// Package faults injects adversarial network conditions into a netem
// topology: link flaps that lose everything in flight, mid-flow
// bandwidth/delay renegotiation, packet reordering, duplication,
// corruption (modeled as loss, since a checksum failure discards the
// segment), and ACK compression on the reverse path.
//
// Everything is deterministic: injectors draw from an explicitly
// provided *rand.Rand (by convention a stream derived from the
// scheduler seed via sim.Scheduler.DeriveRand), and all timing flows
// through the simulation scheduler. A PlanSpec is a fully serializable
// description of a fault schedule, so a failing run can be replayed
// exactly from its scenario config and seed — the basis of the repro
// bundles internal/experiments emits for invariant violations.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// Duration wraps time.Duration with JSON encoding as a string ("50ms"),
// so fault plans round-trip through repro bundles legibly.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler; accepts "50ms" strings or
// raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("faults: duration must be a string like \"50ms\" or nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// D converts to the scheduler's time type.
func (d Duration) D() sim.Time { return sim.Time(d) }

// injector is the shared state of the in-path fault modules.
type injector struct {
	sched *sim.Scheduler
	rng   *rand.Rand
	dst   netem.Node
	bus   *telemetry.Bus
	name  string
}

// SetDst satisfies netem.DstSetter so injectors chain like loss modules.
func (in *injector) SetDst(n netem.Node) { in.dst = n }

// Instrument attaches the telemetry bus under the given instance name.
func (in *injector) Instrument(bus *telemetry.Bus, name string) {
	in.bus, in.name = bus, name
}

func (in *injector) emit(kind telemetry.Kind, p *netem.Packet, a, b float64) {
	if !in.bus.Enabled() {
		return
	}
	ev := telemetry.Event{
		At:   in.sched.Now(),
		Comp: telemetry.CompFault,
		Kind: kind,
		Src:  in.name,
		Flow: telemetry.NoFlow,
		A:    a,
		B:    b,
	}
	if p != nil {
		ev.Flow = int32(p.Flow)
		ev.Seq = p.Seq
	}
	in.bus.Publish(ev)
}

// Reorderer delays a random subset of packets by an extra interval so
// they arrive behind segments sent after them — the dup-ACK noise that
// distinguishes genuine loss recovery from spurious fast retransmit.
type Reorderer struct {
	injector
	rate     float64
	min, max sim.Time

	// heldFree recycles held-packet entries (and their timer slots)
	// across reorder events.
	heldFree *heldPacket

	// Reordered counts packets held back.
	Reordered uint64
}

// heldPacket is one delayed delivery in flight: a pooled pairing of a
// packet with a reusable timer, so repeated reordering does not grow
// the scheduler's timer arena.
type heldPacket struct {
	r     *Reorderer
	p     *netem.Packet
	timer *sim.Timer
	next  *heldPacket
}

func (h *heldPacket) deliver() {
	r, p := h.r, h.p
	h.p = nil
	h.next = r.heldFree
	r.heldFree = h
	r.dst.Receive(p)
}

var _ netem.Node = (*Reorderer)(nil)

// NewReorderer holds back each packet with probability rate, delaying
// it by an extra duration uniform in [min, max] before delivery to dst.
func NewReorderer(sched *sim.Scheduler, rng *rand.Rand, rate float64, min, max sim.Time, dst netem.Node) (*Reorderer, error) {
	if err := validateRate("reorder", rate); err != nil {
		return nil, err
	}
	if rng == nil || sched == nil {
		return nil, fmt.Errorf("faults: reorderer needs a scheduler and a random source")
	}
	if min < 0 || max < min {
		return nil, fmt.Errorf("faults: reorder delay range [%v, %v] invalid", min, max)
	}
	return &Reorderer{injector: injector{sched: sched, rng: rng, dst: dst}, rate: rate, min: min, max: max}, nil
}

// Receive implements netem.Node.
func (r *Reorderer) Receive(p *netem.Packet) {
	if r.rng.Float64() >= r.rate {
		r.dst.Receive(p)
		return
	}
	extra := r.min
	if r.max > r.min {
		extra += sim.Time(r.rng.Int63n(int64(r.max - r.min)))
	}
	r.Reordered++
	r.emit(telemetry.KFaultReorder, p, extra.Seconds(), 0)
	h := r.heldFree
	if h != nil {
		r.heldFree = h.next
	} else {
		h = &heldPacket{r: r}
		h.timer = r.sched.NewTimer(h.deliver)
	}
	h.p = p
	h.timer.Reset(extra)
}

// Duplicator re-delivers a random subset of packets twice, as a
// misbehaving middlebox or a link-layer retransmission would. The copy
// gets a fresh packet ID but is otherwise identical.
type Duplicator struct {
	injector
	rate float64

	// Duplicated counts injected copies.
	Duplicated uint64
}

var _ netem.Node = (*Duplicator)(nil)

// NewDuplicator duplicates each packet with probability rate.
func NewDuplicator(sched *sim.Scheduler, rng *rand.Rand, rate float64, dst netem.Node) (*Duplicator, error) {
	if err := validateRate("duplicate", rate); err != nil {
		return nil, err
	}
	if rng == nil || sched == nil {
		return nil, fmt.Errorf("faults: duplicator needs a scheduler and a random source")
	}
	return &Duplicator{injector: injector{sched: sched, rng: rng, dst: dst}, rate: rate}, nil
}

// Receive implements netem.Node.
func (d *Duplicator) Receive(p *netem.Packet) {
	if d.rng.Float64() < d.rate {
		// Clone before forwarding: the downstream chain may consume and
		// recycle the original (and its SACK backing) immediately.
		c := p.Clone()
		d.Duplicated++
		d.emit(telemetry.KFaultDup, p, 0, 0)
		d.dst.Receive(p)
		d.dst.Receive(c)
		return
	}
	d.dst.Receive(p)
}

// Corrupter drops a random subset of packets, modeling bit errors: a
// TCP segment failing its checksum is discarded by the receiver, so
// corruption and loss are indistinguishable to the sender.
type Corrupter struct {
	injector
	rate float64

	// Corrupted counts discarded packets.
	Corrupted uint64
}

var _ netem.Node = (*Corrupter)(nil)

// NewCorrupter corrupts (drops) each packet with probability rate.
func NewCorrupter(sched *sim.Scheduler, rng *rand.Rand, rate float64, dst netem.Node) (*Corrupter, error) {
	if err := validateRate("corrupt", rate); err != nil {
		return nil, err
	}
	if rng == nil || sched == nil {
		return nil, fmt.Errorf("faults: corrupter needs a scheduler and a random source")
	}
	return &Corrupter{injector: injector{sched: sched, rng: rng, dst: dst}, rate: rate}, nil
}

// Receive implements netem.Node.
func (c *Corrupter) Receive(p *netem.Packet) {
	if c.rng.Float64() < c.rate {
		c.Corrupted++
		c.emit(telemetry.KDrop, p, 0, 1)
		p.Release()
		return
	}
	c.dst.Receive(p)
}

// AckCompressor models reverse-path queueing that bunches ACKs: held
// acknowledgments are released back-to-back, turning a smooth ACK clock
// into bursts that slam the sender's window open all at once. Data
// packets (two-way traffic) pass through untouched.
type AckCompressor struct {
	injector
	hold sim.Time
	max  int

	held      []*netem.Packet
	holdTimer *sim.Timer

	// Batches counts release bursts.
	Batches uint64
}

var _ netem.Node = (*AckCompressor)(nil)

// NewAckCompressor holds ACKs for up to hold, or until max are queued,
// then releases the batch back-to-back.
func NewAckCompressor(sched *sim.Scheduler, hold sim.Time, max int, dst netem.Node) (*AckCompressor, error) {
	if sched == nil {
		return nil, fmt.Errorf("faults: ACK compressor needs a scheduler")
	}
	if hold <= 0 {
		return nil, fmt.Errorf("faults: ACK hold must be positive, got %v", hold)
	}
	if max < 2 {
		return nil, fmt.Errorf("faults: ACK batch size must be >= 2, got %d", max)
	}
	a := &AckCompressor{injector: injector{sched: sched, dst: dst}, hold: hold, max: max}
	a.holdTimer = sched.NewTimer(a.release)
	return a, nil
}

// Receive implements netem.Node.
func (a *AckCompressor) Receive(p *netem.Packet) {
	if p.Kind != netem.Ack {
		a.dst.Receive(p)
		return
	}
	a.held = append(a.held, p)
	if len(a.held) >= a.max {
		a.release()
		return
	}
	if len(a.held) == 1 {
		a.holdTimer.Reset(a.hold)
	}
}

func (a *AckCompressor) release() {
	a.holdTimer.Stop()
	if len(a.held) == 0 {
		return
	}
	batch := a.held
	a.held = nil
	a.Batches++
	a.emit(telemetry.KAckCompress, nil, float64(len(batch)), 0)
	for _, p := range batch {
		a.dst.Receive(p)
	}
}

// Held reports the ACKs currently detained (for tests).
func (a *AckCompressor) Held() int { return len(a.held) }

func validateRate(what string, rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: %s rate must be in [0, 1], got %v", what, rate)
	}
	return nil
}
