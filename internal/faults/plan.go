package faults

import (
	"fmt"
	"math/rand"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// FlapSpec is one scheduled link outage: both bottleneck directions
// lose carrier at At and recover Down later. Everything on the wire at
// At is lost; the gateway queues survive.
type FlapSpec struct {
	At   Duration `json:"at"`
	Down Duration `json:"down"`
}

// RenegSpec is one scheduled mid-flow parameter change on the
// bottleneck (both directions). Zero-valued fields leave that
// parameter untouched.
type RenegSpec struct {
	At Duration `json:"at"`
	// BandwidthBps, when positive, becomes the new bottleneck rate.
	BandwidthBps float64 `json:"bandwidthBps,omitempty"`
	// Delay, when positive, becomes the new one-way propagation delay —
	// an RTT step change.
	Delay Duration `json:"delay,omitempty"`
}

// AckSpec configures reverse-path ACK compression.
type AckSpec struct {
	// Hold is how long the first ACK of a batch is detained.
	Hold Duration `json:"hold"`
	// Max releases the batch early once this many ACKs are held.
	Max int `json:"max"`
}

// PlanSpec is a complete, serializable fault schedule for one run. A
// zero PlanSpec injects nothing.
type PlanSpec struct {
	Flaps          []FlapSpec  `json:"flaps,omitempty"`
	Renegotiations []RenegSpec `json:"renegotiations,omitempty"`

	// ReorderRate holds back that fraction of forward-path packets by an
	// extra delay uniform in [ReorderMinDelay, ReorderMaxDelay].
	ReorderRate     float64  `json:"reorderRate,omitempty"`
	ReorderMinDelay Duration `json:"reorderMinDelay,omitempty"`
	ReorderMaxDelay Duration `json:"reorderMaxDelay,omitempty"`

	// DuplicateRate duplicates that fraction of forward-path packets.
	DuplicateRate float64 `json:"duplicateRate,omitempty"`

	// CorruptRate drops that fraction of forward-path packets (a failed
	// checksum discards the segment).
	CorruptRate float64 `json:"corruptRate,omitempty"`

	// Ack, when non-nil, compresses the reverse ACK path.
	Ack *AckSpec `json:"ack,omitempty"`
}

// Validate checks the plan's internal consistency.
func (p *PlanSpec) Validate() error {
	for i, f := range p.Flaps {
		if f.At < 0 {
			return fmt.Errorf("faults: flap %d: negative start %v", i, time.Duration(f.At))
		}
		if f.Down <= 0 {
			return fmt.Errorf("faults: flap %d: outage must be positive, got %v", i, time.Duration(f.Down))
		}
	}
	for i, r := range p.Renegotiations {
		if r.At < 0 {
			return fmt.Errorf("faults: renegotiation %d: negative start %v", i, time.Duration(r.At))
		}
		if r.BandwidthBps == 0 && r.Delay == 0 {
			return fmt.Errorf("faults: renegotiation %d changes nothing", i)
		}
		if r.BandwidthBps < 0 {
			return fmt.Errorf("faults: renegotiation %d: negative bandwidth %v", i, r.BandwidthBps)
		}
		if r.Delay < 0 {
			return fmt.Errorf("faults: renegotiation %d: negative delay %v", i, time.Duration(r.Delay))
		}
	}
	for _, rc := range []struct {
		what string
		rate float64
	}{{"reorder", p.ReorderRate}, {"duplicate", p.DuplicateRate}, {"corrupt", p.CorruptRate}} {
		if err := validateRate(rc.what, rc.rate); err != nil {
			return err
		}
	}
	if p.ReorderRate > 0 && (p.ReorderMinDelay < 0 || p.ReorderMaxDelay < p.ReorderMinDelay) {
		return fmt.Errorf("faults: reorder delay range [%v, %v] invalid",
			time.Duration(p.ReorderMinDelay), time.Duration(p.ReorderMaxDelay))
	}
	if p.Ack != nil {
		if p.Ack.Hold <= 0 {
			return fmt.Errorf("faults: ACK hold must be positive, got %v", time.Duration(p.Ack.Hold))
		}
		if p.Ack.Max < 2 {
			return fmt.Errorf("faults: ACK batch size must be >= 2, got %d", p.Ack.Max)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *PlanSpec) Active() bool {
	return len(p.Flaps) > 0 || len(p.Renegotiations) > 0 ||
		p.ReorderRate > 0 || p.DuplicateRate > 0 || p.CorruptRate > 0 || p.Ack != nil
}

// Apply arms the plan on a dumbbell: schedules the flaps and
// renegotiations, and splices the probabilistic injectors into the
// forward path (corrupt → duplicate → reorder → bottleneck) and the
// ACK compressor into the reverse path. The rng drives every
// probabilistic decision; pass a stream derived from the run seed
// (sched.DeriveRand) for reproducibility. The bus may be nil.
func (p *PlanSpec) Apply(sched *sim.Scheduler, d *netem.Dumbbell, rng *rand.Rand, bus *telemetry.Bus) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if sched == nil || d == nil {
		return fmt.Errorf("faults: apply needs a scheduler and a topology")
	}
	if rng == nil && (p.ReorderRate > 0 || p.DuplicateRate > 0 || p.CorruptRate > 0) {
		return fmt.Errorf("faults: probabilistic injection needs a random source")
	}

	for _, f := range p.Flaps {
		f := f
		if err := sched.NewTimer(func() {
			d.ForwardLink().SetDown(true)
			d.ReverseLink().SetDown(true)
		}).At(f.At.D()); err != nil {
			return fmt.Errorf("faults: schedule flap: %w", err)
		}
		if err := sched.NewTimer(func() {
			d.ForwardLink().SetDown(false)
			d.ReverseLink().SetDown(false)
		}).At(f.At.D() + f.Down.D()); err != nil {
			return fmt.Errorf("faults: schedule flap recovery: %w", err)
		}
	}

	for _, r := range p.Renegotiations {
		r := r
		if err := sched.NewTimer(func() {
			for _, l := range []*netem.Link{d.ForwardLink(), d.ReverseLink()} {
				if r.BandwidthBps > 0 {
					// Validated above; Set* re-checks and cannot fail here.
					_ = l.SetBandwidth(r.BandwidthBps)
				}
				if r.Delay > 0 {
					_ = l.SetDelay(r.Delay.D())
				}
			}
		}).At(r.At.D()); err != nil {
			return fmt.Errorf("faults: schedule renegotiation: %w", err)
		}
	}

	// Forward-path injector chain, innermost (closest to the bottleneck)
	// first: a duplicated packet can still be reordered, a corrupted one
	// is gone before either.
	entry := d.ForwardEntry()
	if p.ReorderRate > 0 {
		ro, err := NewReorderer(sched, rng, p.ReorderRate, p.ReorderMinDelay.D(), p.ReorderMaxDelay.D(), entry)
		if err != nil {
			return err
		}
		ro.Instrument(bus, "reorder")
		entry = ro
	}
	if p.DuplicateRate > 0 {
		du, err := NewDuplicator(sched, rng, p.DuplicateRate, entry)
		if err != nil {
			return err
		}
		du.Instrument(bus, "dup")
		entry = du
	}
	if p.CorruptRate > 0 {
		co, err := NewCorrupter(sched, rng, p.CorruptRate, entry)
		if err != nil {
			return err
		}
		co.Instrument(bus, "corrupt")
		entry = co
	}
	if entry != d.ForwardEntry() {
		d.SetForwardEntry(entry)
	}

	if p.Ack != nil {
		ac, err := NewAckCompressor(sched, p.Ack.Hold.D(), p.Ack.Max, d.ReverseEntry())
		if err != nil {
			return err
		}
		ac.Instrument(bus, "ackc")
		d.SetReverseEntry(ac)
	}
	return nil
}

// RandomPlanSpec draws a bounded-severity random fault schedule over
// [0, horizon) for the given topology, for chaos sweeps. Severity is
// capped so a correct TCP should survive (possibly slowly): short
// outages, rate cuts no deeper than 4×, reorder/dup/corrupt rates of a
// few percent. Identical (rng state, horizon, cfg) inputs yield the
// identical plan.
func RandomPlanSpec(rng *rand.Rand, horizon sim.Time, cfg netem.DumbbellConfig) PlanSpec {
	var p PlanSpec

	between := func(lo, hi time.Duration) Duration {
		if hi <= lo {
			return Duration(lo)
		}
		return Duration(lo + time.Duration(rng.Int63n(int64(hi-lo))))
	}
	// Fault onsets land in the middle 70% of the horizon, so flows have
	// started and still have time to recover.
	onset := func() Duration { return between(horizon/10, horizon*8/10) }

	for i, n := 0, rng.Intn(4); i < n; i++ {
		p.Flaps = append(p.Flaps, FlapSpec{At: onset(), Down: between(50*time.Millisecond, 2*time.Second)})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		r := RenegSpec{At: onset()}
		if rng.Intn(2) == 0 {
			r.BandwidthBps = cfg.BottleneckBps * (0.25 + 1.75*rng.Float64())
		} else {
			r.Delay = Duration(float64(cfg.BottleneckDelay) * (0.5 + 3.5*rng.Float64()))
		}
		p.Renegotiations = append(p.Renegotiations, r)
	}
	if rng.Intn(2) == 0 {
		p.ReorderRate = 0.05 * rng.Float64()
		p.ReorderMinDelay = between(5*time.Millisecond, 20*time.Millisecond)
		p.ReorderMaxDelay = p.ReorderMinDelay + between(0, 30*time.Millisecond)
	}
	if rng.Intn(2) == 0 {
		p.DuplicateRate = 0.02 * rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.CorruptRate = 0.02 * rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.Ack = &AckSpec{Hold: between(10*time.Millisecond, 100*time.Millisecond), Max: 4 + rng.Intn(13)}
	}
	return p
}
