package faults

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// countNode records deliveries in arrival order.
type countNode struct {
	got []*netem.Packet
}

func (n *countNode) Receive(p *netem.Packet) { n.got = append(n.got, p) }

func pkt(seq int64, kind netem.PacketKind) *netem.Packet {
	return &netem.Packet{ID: netem.NextID(), Kind: kind, Seq: seq, Size: 1000}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(1500 * time.Millisecond)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1.5s"` {
		t.Fatalf("marshal: %s", b)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip %v -> %v", d, back)
	}
	if err := json.Unmarshal([]byte(`2000000`), &back); err != nil {
		t.Fatal(err)
	}
	if back != Duration(2*time.Millisecond) {
		t.Fatalf("nanosecond form: %v", back)
	}
	if err := json.Unmarshal([]byte(`"three furlongs"`), &back); err == nil {
		t.Fatal("nonsense duration accepted")
	}
}

func TestInjectorConstructorValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	rng := rand.New(rand.NewSource(1))
	dst := &countNode{}
	if _, err := NewReorderer(sched, rng, 1.5, 0, 0, dst); err == nil {
		t.Error("reorder rate > 1 accepted")
	}
	if _, err := NewReorderer(sched, rng, 0.1, 10, 5, dst); err == nil {
		t.Error("inverted reorder delay range accepted")
	}
	if _, err := NewReorderer(sched, nil, 0.1, 0, 5, dst); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewDuplicator(sched, rng, -0.1, dst); err == nil {
		t.Error("negative duplicate rate accepted")
	}
	if _, err := NewCorrupter(nil, rng, 0.1, dst); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewAckCompressor(sched, 0, 4, dst); err == nil {
		t.Error("zero ACK hold accepted")
	}
	if _, err := NewAckCompressor(sched, sim.Time(time.Millisecond), 1, dst); err == nil {
		t.Error("batch of one accepted")
	}
}

func TestReordererDelaysSubset(t *testing.T) {
	sched := sim.NewScheduler(1)
	dst := &countNode{}
	ro, err := NewReorderer(sched, rand.New(rand.NewSource(7)), 0.5,
		sim.Time(5*time.Millisecond), sim.Time(10*time.Millisecond), dst)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		ro.Receive(pkt(int64(i)*1000, netem.Data))
	}
	direct := len(dst.got)
	if ro.Reordered == 0 || direct == n {
		t.Fatalf("nothing reordered (%d direct, %d held)", direct, ro.Reordered)
	}
	if direct+int(ro.Reordered) != n {
		t.Fatalf("%d direct + %d reordered != %d", direct, ro.Reordered, n)
	}
	sched.RunAll()
	if len(dst.got) != n {
		t.Fatalf("%d delivered after drain, want %d", len(dst.got), n)
	}
}

func TestDuplicatorInjectsCopies(t *testing.T) {
	sched := sim.NewScheduler(1)
	dst := &countNode{}
	du, err := NewDuplicator(sched, rand.New(rand.NewSource(7)), 0.3, dst)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	ids := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		p := pkt(int64(i)*1000, netem.Data)
		ids[p.ID] = true
		du.Receive(p)
	}
	if du.Duplicated == 0 {
		t.Fatal("nothing duplicated")
	}
	if got := len(dst.got); got != n+int(du.Duplicated) {
		t.Fatalf("%d delivered, want %d", got, n+int(du.Duplicated))
	}
	fresh := 0
	for _, p := range dst.got {
		if !ids[p.ID] {
			fresh++
		}
	}
	if fresh != int(du.Duplicated) {
		t.Fatalf("%d fresh packet IDs, want %d (copies must not alias originals)", fresh, du.Duplicated)
	}
}

func TestCorrupterDropsSubset(t *testing.T) {
	sched := sim.NewScheduler(1)
	dst := &countNode{}
	co, err := NewCorrupter(sched, rand.New(rand.NewSource(7)), 0.3, dst)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		co.Receive(pkt(int64(i)*1000, netem.Data))
	}
	if co.Corrupted == 0 {
		t.Fatal("nothing corrupted")
	}
	if got := len(dst.got); got != n-int(co.Corrupted) {
		t.Fatalf("%d delivered, want %d", got, n-int(co.Corrupted))
	}
}

func TestAckCompressorBatchesAcks(t *testing.T) {
	sched := sim.NewScheduler(1)
	dst := &countNode{}
	ac, err := NewAckCompressor(sched, sim.Time(50*time.Millisecond), 3, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Data passes straight through.
	ac.Receive(pkt(0, netem.Data))
	if len(dst.got) != 1 {
		t.Fatal("data packet detained")
	}
	// Two ACKs are held; the third releases the batch early.
	ac.Receive(pkt(1000, netem.Ack))
	ac.Receive(pkt(2000, netem.Ack))
	if len(dst.got) != 1 || ac.Held() != 2 {
		t.Fatalf("%d held, %d delivered; want 2 held", ac.Held(), len(dst.got))
	}
	ac.Receive(pkt(3000, netem.Ack))
	if len(dst.got) != 4 || ac.Held() != 0 {
		t.Fatalf("batch not released at max: %d delivered, %d held", len(dst.got), ac.Held())
	}
	if ac.Batches != 1 {
		t.Fatalf("%d batches, want 1", ac.Batches)
	}
	// A lone ACK is released by the hold timer, not a stale one.
	ac.Receive(pkt(4000, netem.Ack))
	sched.RunAll()
	if len(dst.got) != 5 || ac.Held() != 0 {
		t.Fatalf("hold timer did not flush: %d delivered, %d held", len(dst.got), ac.Held())
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []PlanSpec{
		{Flaps: []FlapSpec{{At: Duration(-time.Second), Down: Duration(time.Second)}}},
		{Flaps: []FlapSpec{{At: 0, Down: 0}}},
		{Renegotiations: []RenegSpec{{At: 0}}},
		{Renegotiations: []RenegSpec{{At: 0, BandwidthBps: -1}}},
		{ReorderRate: 2},
		{ReorderRate: 0.1, ReorderMinDelay: Duration(10 * time.Millisecond), ReorderMaxDelay: Duration(time.Millisecond)},
		{CorruptRate: -0.5},
		{Ack: &AckSpec{Hold: 0, Max: 4}},
		{Ack: &AckSpec{Hold: Duration(time.Millisecond), Max: 1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	var zero PlanSpec
	if err := zero.Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	if zero.Active() {
		t.Error("zero plan claims to be active")
	}
}

func TestRandomPlanSpecDeterministic(t *testing.T) {
	cfg := netem.PaperDropTailConfig(1)
	horizon := sim.Time(60 * time.Second)
	a := RandomPlanSpec(rand.New(rand.NewSource(5)), horizon, cfg)
	b := RandomPlanSpec(rand.New(rand.NewSource(5)), horizon, cfg)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different plans:\n%s\n%s", ja, jb)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	// Across many seeds every generated plan must validate.
	for seed := int64(0); seed < 200; seed++ {
		p := RandomPlanSpec(rand.New(rand.NewSource(seed)), horizon, cfg)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
	}
}

func TestPlanApplyEmitsTelemetry(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ring := telemetry.NewRing(64)
	bus := telemetry.NewBus(ring)
	d.Instrument(bus)
	p := PlanSpec{
		Flaps: []FlapSpec{{At: Duration(time.Second), Down: Duration(500 * time.Millisecond)}},
		Renegotiations: []RenegSpec{
			{At: Duration(2 * time.Second), BandwidthBps: 400 * 1000},
		},
	}
	if err := p.Apply(sched, d, sched.DeriveRand("faults"), bus); err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Time(3 * time.Second))
	var downs, ups, params int
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case telemetry.KLinkDown:
			downs++
		case telemetry.KLinkUp:
			ups++
		case telemetry.KLinkParam:
			params++
		}
	}
	if downs != 2 || ups != 2 || params != 2 {
		t.Fatalf("got %d downs, %d ups, %d params; want 2 each (both directions)", downs, ups, params)
	}
}
