package netem

import "math/rand"

// GilbertLoss is the two-state Gilbert-Elliott loss model: a Markov
// chain alternating between a good state (no drops) and a bad state
// (drops with high probability), producing the *correlated* bursty
// losses the paper's introduction reports as common in the Internet
// (Paxson — its [18]) and that RR is designed to survive. The chain
// advances once per data packet.
type GilbertLoss struct {
	// PGoodToBad is the per-packet probability of entering the bad state.
	PGoodToBad float64
	// PBadToGood is the per-packet probability of leaving the bad state.
	PBadToGood float64
	// PDropBad is the drop probability while in the bad state (1 =
	// classic Gilbert).
	PDropBad float64
	// Dst receives surviving packets.
	Dst Node

	rng *rand.Rand
	bad bool
	lossTelemetry

	// Dropped and Forwarded count outcomes.
	Dropped   uint64
	Forwarded uint64
}

var (
	_ Node             = (*GilbertLoss)(nil)
	_ DstSetter        = (*GilbertLoss)(nil)
	_ LossInstrumenter = (*GilbertLoss)(nil)
)

// SetDst implements DstSetter.
func (g *GilbertLoss) SetDst(n Node) { g.Dst = n }

// NewGilbertLoss builds the model in the good state.
//
// The stationary loss rate is PDropBad · πbad with
// πbad = PGoodToBad / (PGoodToBad + PBadToGood), and the mean burst
// length is PDropBad / PBadToGood packets.
func NewGilbertLoss(pGoodToBad, pBadToGood, pDropBad float64, rng *rand.Rand, dst Node) *GilbertLoss {
	return &GilbertLoss{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		PDropBad:   pDropBad,
		Dst:        dst,
		rng:        rng,
	}
}

// MeanLossRate returns the model's stationary drop probability.
func (g *GilbertLoss) MeanLossRate() float64 {
	denom := g.PGoodToBad + g.PBadToGood
	if denom <= 0 {
		return 0
	}
	return g.PDropBad * g.PGoodToBad / denom
}

// InBadState reports the current chain state (for tests).
func (g *GilbertLoss) InBadState() bool { return g.bad }

// Receive implements Node. ACKs pass through untouched, matching the
// paper's forward-path loss setup.
func (g *GilbertLoss) Receive(p *Packet) {
	if p.Kind != Data {
		g.Dst.Receive(p)
		return
	}
	// Advance the chain.
	if g.bad {
		if g.rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.PGoodToBad {
		g.bad = true
	}
	if g.bad && g.rng.Float64() < g.PDropBad {
		g.Dropped++
		g.emitDrop(p)
		p.Release()
		return
	}
	g.Forwarded++
	g.Dst.Receive(p)
}
