package netem

import (
	"math"
	"math/rand"
	"testing"
)

func TestGilbertStationaryLossRate(t *testing.T) {
	// πbad = 0.01/(0.01+0.25) ≈ 0.0385; with PDropBad=1 the loss rate
	// is the same.
	sink := &collector{}
	g := NewGilbertLoss(0.01, 0.25, 1.0, rand.New(rand.NewSource(1)), sink)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		g.Receive(pkt(i))
	}
	want := g.MeanLossRate()
	got := float64(g.Dropped) / n
	if math.Abs(got-want) > 0.006 {
		t.Fatalf("loss rate %f, stationary %f", got, want)
	}
}

func TestGilbertLossesAreBursty(t *testing.T) {
	// Compare run lengths: with PBadToGood=0.25 the mean burst is 4
	// packets, far above the ~1 of i.i.d. loss at the same rate.
	sink := &collector{}
	g := NewGilbertLoss(0.01, 0.25, 1.0, rand.New(rand.NewSource(2)), sink)
	const n = 100000
	var bursts, dropped int
	inBurst := false
	for i := uint64(0); i < n; i++ {
		before := g.Dropped
		g.Receive(pkt(i))
		wasDropped := g.Dropped > before
		if wasDropped {
			dropped++
			if !inBurst {
				bursts++
			}
		}
		inBurst = wasDropped
	}
	if bursts == 0 {
		t.Fatal("no loss bursts")
	}
	meanBurst := float64(dropped) / float64(bursts)
	if meanBurst < 2.5 {
		t.Fatalf("mean burst length %f, want ≥2.5 (correlated losses)", meanBurst)
	}
}

func TestGilbertSparesAcks(t *testing.T) {
	sink := &collector{}
	g := NewGilbertLoss(1, 0, 1, rand.New(rand.NewSource(1)), sink) // always bad
	g.Receive(&Packet{Kind: Ack, AckNo: 1000, Size: 40})
	if len(sink.pkts) != 1 {
		t.Fatal("ACK dropped")
	}
	g.Receive(pkt(1))
	if len(sink.pkts) != 1 {
		t.Fatal("data survived the permanent bad state")
	}
	if !g.InBadState() {
		t.Fatal("state accessor")
	}
}

func TestGilbertZeroRates(t *testing.T) {
	sink := &collector{}
	g := NewGilbertLoss(0, 0, 1, rand.New(rand.NewSource(1)), sink)
	for i := uint64(0); i < 1000; i++ {
		g.Receive(pkt(i))
	}
	if g.Dropped != 0 {
		t.Fatalf("dropped %d with PGoodToBad=0", g.Dropped)
	}
	if g.MeanLossRate() != 0 {
		t.Fatal("mean loss rate with degenerate chain")
	}
}
