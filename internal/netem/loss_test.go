package netem

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformLossRate(t *testing.T) {
	sink := &collector{}
	u := NewUniformLoss(0.1, rand.New(rand.NewSource(1)), sink)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		u.Receive(pkt(i))
	}
	rate := float64(u.Dropped) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("drop rate %f, want ~0.1", rate)
	}
	if int(u.Dropped)+len(sink.pkts) != n {
		t.Fatalf("dropped %d + forwarded %d != %d", u.Dropped, len(sink.pkts), n)
	}
}

func TestUniformLossSparesAcksByDefault(t *testing.T) {
	sink := &collector{}
	u := NewUniformLoss(1.0, rand.New(rand.NewSource(1)), sink)
	u.Receive(&Packet{Kind: Ack, Size: 40})
	if len(sink.pkts) != 1 {
		t.Fatal("ACK dropped despite DropAcks=false")
	}
	u.Receive(pkt(1))
	if len(sink.pkts) != 1 {
		t.Fatal("data packet survived p=1")
	}
}

func TestUniformLossDropAcks(t *testing.T) {
	sink := &collector{}
	u := NewUniformLoss(1.0, rand.New(rand.NewSource(1)), sink)
	u.DropAcks = true
	u.Receive(&Packet{Kind: Ack, Size: 40})
	if len(sink.pkts) != 0 {
		t.Fatal("ACK survived p=1 with DropAcks")
	}
}

func TestUniformLossZeroRate(t *testing.T) {
	sink := &collector{}
	u := NewUniformLoss(0, rand.New(rand.NewSource(1)), sink)
	for i := uint64(0); i < 100; i++ {
		u.Receive(pkt(i))
	}
	if u.Dropped != 0 || len(sink.pkts) != 100 {
		t.Fatalf("p=0 dropped %d packets", u.Dropped)
	}
}

func TestSeqLossDropsFirstTransmissionOnce(t *testing.T) {
	sink := &collector{}
	l := NewSeqLoss(sink)
	l.Drop(0, 5000)

	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000})
	if len(sink.pkts) != 0 {
		t.Fatal("registered sequence not dropped")
	}
	// The retransmission passes.
	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000, Retransmit: true})
	if len(sink.pkts) != 1 {
		t.Fatal("retransmission dropped")
	}
	// A fresh first transmission of the same seq (go-back-N resend)
	// also passes: the pattern fires once.
	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000})
	if len(sink.pkts) != 2 {
		t.Fatal("sequence dropped twice")
	}
	if l.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", l.Dropped)
	}
}

func TestSeqLossDropRetransmit(t *testing.T) {
	sink := &collector{}
	l := NewSeqLoss(sink)
	l.Drop(0, 5000)
	l.DropRetransmit(0, 5000)

	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000})
	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000, Retransmit: true})
	if len(sink.pkts) != 0 {
		t.Fatal("first retransmission not dropped")
	}
	l.Receive(&Packet{Flow: 0, Kind: Data, Seq: 5000, Len: 1000, Size: 1000, Retransmit: true})
	if len(sink.pkts) != 1 {
		t.Fatal("second retransmission dropped")
	}
}

func TestSeqLossIsPerFlow(t *testing.T) {
	sink := &collector{}
	l := NewSeqLoss(sink)
	l.Drop(0, 5000)
	l.Receive(&Packet{Flow: 1, Kind: Data, Seq: 5000, Len: 1000, Size: 1000})
	if len(sink.pkts) != 1 {
		t.Fatal("drop pattern leaked across flows")
	}
}

func TestSeqLossIgnoresAcks(t *testing.T) {
	sink := &collector{}
	l := NewSeqLoss(sink)
	l.Drop(0, 5000)
	l.Receive(&Packet{Flow: 0, Kind: Ack, AckNo: 5000, Size: 40})
	if len(sink.pkts) != 1 {
		t.Fatal("ACK dropped by data-only injector")
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NextID()
		if seen[id] {
			t.Fatalf("duplicate packet ID %d", id)
		}
		seen[id] = true
	}
}

func TestPacketEndSeqAndString(t *testing.T) {
	p := &Packet{Flow: 2, Kind: Data, Seq: 3000, Len: 1000, Size: 1000}
	if p.EndSeq() != 4000 {
		t.Fatalf("EndSeq = %d, want 4000", p.EndSeq())
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
	a := &Packet{Flow: 2, Kind: Ack, AckNo: 4000, Size: 40}
	if a.String() == "" {
		t.Fatal("empty ack String()")
	}
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Fatal("PacketKind.String wrong")
	}
}

func TestSeqLossDropAck(t *testing.T) {
	sink := &collector{}
	l := NewSeqLoss(sink)
	l.DropAck(0, 5000)
	l.Receive(&Packet{Flow: 0, Kind: Ack, AckNo: 5000, Size: 40})
	if len(sink.pkts) != 0 {
		t.Fatal("registered ACK not dropped")
	}
	// Only the first matching ACK drops; the receiver's dup re-sends
	// get through.
	l.Receive(&Packet{Flow: 0, Kind: Ack, AckNo: 5000, Size: 40})
	if len(sink.pkts) != 1 {
		t.Fatal("second matching ACK dropped")
	}
	if l.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", l.Dropped)
	}
}
