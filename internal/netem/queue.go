package netem

import (
	"fmt"
	"math"
	"math/rand"

	"rrtcp/internal/sim"
)

// QueueDiscipline decides which packets a link's buffer accepts and in
// what order they drain. Implementations are drop-tail FIFO and RED.
type QueueDiscipline interface {
	// Enqueue offers a packet at the given instant; it returns false if
	// the discipline drops the packet.
	Enqueue(p *Packet, now sim.Time) bool
	// Dequeue removes and returns the next packet, or nil when empty.
	Dequeue() *Packet
	// Len reports the number of queued packets.
	Len() int
}

// pktRing is a growable circular FIFO of packets. Unlike a slice-of-
// packets FIFO advanced with fifo[1:], it reuses its backing array
// forever: steady-state enqueue/dequeue traffic allocates nothing.
type pktRing struct {
	buf  []*Packet // capacity always a power of two (or empty)
	head int
	n    int
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]*Packet, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// DropTail is a finite FIFO measured in packets, as in the paper's
// Table 3 ("window size and buffer space at the gateways are measured
// in number of fixed-size packets").
type DropTail struct {
	limit int
	fifo  pktRing
}

var _ QueueDiscipline = (*DropTail)(nil)

// NewDropTail returns a FIFO holding at most limit packets. A limit
// below one is an error: such a queue drops everything, which in a
// congestion-control simulation is almost always a misconfiguration
// rather than an intent.
func NewDropTail(limit int) (*DropTail, error) {
	if limit < 1 {
		return nil, fmt.Errorf("netem: drop-tail limit must be >= 1 packet, got %d", limit)
	}
	return &DropTail{limit: limit}, nil
}

// Enqueue implements QueueDiscipline.
func (d *DropTail) Enqueue(p *Packet, _ sim.Time) bool {
	if d.fifo.n >= d.limit {
		return false
	}
	d.fifo.push(p)
	return true
}

// Dequeue implements QueueDiscipline.
func (d *DropTail) Dequeue() *Packet { return d.fifo.pop() }

// Len implements QueueDiscipline.
func (d *DropTail) Len() int { return d.fifo.n }

// Limit reports the configured packet limit.
func (d *DropTail) Limit() int { return d.limit }

// REDConfig carries the Random Early Detection parameters of the
// paper's Table 4.
type REDConfig struct {
	// MinThreshold and MaxThreshold bound the average queue region in
	// which packets are dropped probabilistically (packets).
	MinThreshold float64
	MaxThreshold float64
	// MaxDropProb is the drop probability at MaxThreshold.
	MaxDropProb float64
	// QueueWeight is the EWMA weight for the average queue estimate.
	QueueWeight float64
	// Limit is the physical buffer size in packets.
	Limit int
	// MeanPacketSize is used to age the average across idle periods,
	// in bytes (defaults to 1000 if zero).
	MeanPacketSize int
	// LinkBandwidthBps estimates the drain rate for idle aging; if
	// zero, idle aging is skipped.
	LinkBandwidthBps float64
}

// PaperREDConfig returns the Table 4 configuration: min 5, max 20,
// maxp 0.02, wq 0.002, buffer 25 packets.
func PaperREDConfig() REDConfig {
	return REDConfig{
		MinThreshold:     5,
		MaxThreshold:     20,
		MaxDropProb:      0.02,
		QueueWeight:      0.002,
		Limit:            25,
		MeanPacketSize:   1000,
		LinkBandwidthBps: 0.8e6,
	}
}

// REDQueue implements Random Early Detection (Floyd & Jacobson 1993):
// it tracks an exponentially weighted average queue size, drops nothing
// below the minimum threshold, drops with probability ramping to maxp
// between the thresholds (spread out by the count heuristic), and drops
// everything above the maximum threshold or when the physical buffer is
// full.
type REDQueue struct {
	cfg  REDConfig
	rng  *rand.Rand
	fifo pktRing

	avg       float64
	count     int // packets since last drop while in the random region
	idleSince sim.Time
	idle      bool

	// lastDropEarly distinguishes the most recent rejection for the
	// queue wrapper's telemetry: true for a probabilistic early drop,
	// false for a forced one.
	lastDropEarly bool

	// EarlyDrops and ForcedDrops split drops by cause for tracing.
	EarlyDrops  uint64
	ForcedDrops uint64
}

var _ QueueDiscipline = (*REDQueue)(nil)

// NewRED builds a RED queue using the provided deterministic random
// source for drop decisions. The configuration must describe a usable
// drop curve: a positive buffer, thresholds with min < max, a drop
// probability in (0, 1], and an EWMA weight in (0, 1].
func NewRED(cfg REDConfig, rng *rand.Rand) (*REDQueue, error) {
	if rng == nil {
		return nil, fmt.Errorf("netem: RED needs a random source")
	}
	if cfg.Limit < 1 {
		return nil, fmt.Errorf("netem: RED buffer limit must be >= 1 packet, got %d", cfg.Limit)
	}
	if cfg.MinThreshold < 0 || cfg.MaxThreshold <= cfg.MinThreshold {
		return nil, fmt.Errorf("netem: RED thresholds must satisfy 0 <= min < max, got min=%v max=%v",
			cfg.MinThreshold, cfg.MaxThreshold)
	}
	if cfg.MaxDropProb <= 0 || cfg.MaxDropProb > 1 {
		return nil, fmt.Errorf("netem: RED max drop probability must be in (0, 1], got %v", cfg.MaxDropProb)
	}
	if cfg.QueueWeight <= 0 || cfg.QueueWeight > 1 {
		return nil, fmt.Errorf("netem: RED queue weight must be in (0, 1], got %v", cfg.QueueWeight)
	}
	if cfg.MeanPacketSize <= 0 {
		cfg.MeanPacketSize = 1000
	}
	return &REDQueue{cfg: cfg, rng: rng, count: -1}, nil
}

// AvgQueue reports the current average queue estimate, for tests.
func (r *REDQueue) AvgQueue() float64 { return r.avg }

// Enqueue implements QueueDiscipline.
func (r *REDQueue) Enqueue(p *Packet, now sim.Time) bool {
	r.updateAverage(now)
	switch {
	case r.fifo.n >= r.cfg.Limit:
		r.ForcedDrops++
		r.count = 0
		r.lastDropEarly = false
		return false
	case r.avg >= r.cfg.MaxThreshold:
		r.ForcedDrops++
		r.count = 0
		r.lastDropEarly = false
		return false
	case r.avg >= r.cfg.MinThreshold:
		r.count++
		pb := r.cfg.MaxDropProb * (r.avg - r.cfg.MinThreshold) /
			(r.cfg.MaxThreshold - r.cfg.MinThreshold)
		pa := pb
		if denom := 1 - float64(r.count)*pb; denom > 0 {
			pa = pb / denom
		} else {
			pa = 1
		}
		if r.rng.Float64() < pa {
			r.EarlyDrops++
			r.count = 0
			r.lastDropEarly = true
			return false
		}
	default:
		r.count = -1
	}
	r.fifo.push(p)
	return true
}

func (r *REDQueue) updateAverage(now sim.Time) {
	if r.fifo.n > 0 || !r.idle {
		r.avg = (1-r.cfg.QueueWeight)*r.avg + r.cfg.QueueWeight*float64(r.fifo.n)
		return
	}
	// Queue has been idle: age the average as if m small packets had
	// drained during the idle period (Floyd & Jacobson eq. 3).
	if r.cfg.LinkBandwidthBps > 0 {
		idleSeconds := (now - r.idleSince).Seconds()
		perPacket := float64(r.cfg.MeanPacketSize*8) / r.cfg.LinkBandwidthBps
		if perPacket > 0 {
			m := idleSeconds / perPacket
			r.avg *= math.Pow(1-r.cfg.QueueWeight, m)
		}
	}
	r.idle = false
	r.avg = (1-r.cfg.QueueWeight)*r.avg + r.cfg.QueueWeight*float64(r.fifo.n)
}

// Dequeue implements QueueDiscipline.
func (r *REDQueue) Dequeue() *Packet {
	p := r.fifo.pop()
	if p != nil && r.fifo.n == 0 {
		r.idle = true
		// idleSince is stamped by MarkIdle, which the owning Queue calls
		// with the scheduler clock right after draining.
	}
	return p
}

// MarkIdle records the instant the queue went empty; the Link calls
// this so idle aging has a timestamp. Safe to call at any time.
func (r *REDQueue) MarkIdle(now sim.Time) {
	if r.fifo.n == 0 {
		r.idle = true
		r.idleSince = now
	}
}

// Len implements QueueDiscipline.
func (r *REDQueue) Len() int { return r.fifo.n }
