package netem

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func TestTapRecordsAndForwards(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	tap := NewTap(s, "r1->r2", sink)
	tap.Receive(&Packet{ID: 1, Flow: 0, Kind: Data, Seq: 1000, Len: 1000, Size: 1000})
	tap.Receive(&Packet{ID: 2, Flow: 0, Kind: Ack, AckNo: 2000, Size: 40})
	if len(sink.pkts) != 2 {
		t.Fatalf("forwarded %d packets, want 2", len(sink.pkts))
	}
	recs := tap.Records()
	if len(recs) != 2 || tap.Seen != 2 {
		t.Fatalf("recorded %d/%d", len(recs), tap.Seen)
	}
	if recs[0].Kind != Data || recs[0].Seq != 1000 {
		t.Fatalf("data record wrong: %+v", recs[0])
	}
	if recs[1].Kind != Ack || recs[1].AckNo != 2000 {
		t.Fatalf("ack record wrong: %+v", recs[1])
	}
}

func TestTapLimit(t *testing.T) {
	s := sim.NewScheduler(1)
	tap := NewTap(s, "x", nil)
	tap.Limit = 3
	for i := 0; i < 10; i++ {
		tap.Receive(&Packet{ID: uint64(i), Kind: Data, Size: 1000, Len: 1000})
	}
	if len(tap.Records()) != 3 {
		t.Fatalf("recorded %d, want limit 3", len(tap.Records()))
	}
	if tap.Seen != 10 {
		t.Fatalf("seen %d, want 10", tap.Seen)
	}
}

func TestTapWriter(t *testing.T) {
	s := sim.NewScheduler(1)
	var sb strings.Builder
	tap := NewTap(s, "probe", nil)
	tap.W = &sb
	tap.Receive(&Packet{ID: 1, Flow: 3, Kind: Data, Seq: 5000, Len: 1000, Size: 1000, Retransmit: true})
	out := sb.String()
	for _, want := range []string{"probe", "flow=3", "data 5000", "rtx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("line missing %q: %s", want, out)
		}
	}
}

func TestTapInline(t *testing.T) {
	// A tap inserted in front of the bottleneck sees every data packet
	// the sender emits.
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	link := Must(NewLink(s, 10e6, time.Millisecond, nil, sink))
	tap := NewTap(s, "pre-bottleneck", link)
	for i := 0; i < 5; i++ {
		tap.Receive(&Packet{ID: uint64(i), Kind: Data, Size: 1000, Len: 1000})
	}
	s.RunAll()
	if len(sink.pkts) != 5 || tap.Seen != 5 {
		t.Fatalf("delivered %d, seen %d", len(sink.pkts), tap.Seen)
	}
}

func TestTapRecordString(t *testing.T) {
	rec := TapRecord{Label: "x", Flow: 1, Kind: Ack, AckNo: 7000, SACKed: 2}
	if !strings.Contains(rec.String(), "ack 7000") {
		t.Fatalf("ack string: %s", rec)
	}
}
