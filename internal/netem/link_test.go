package netem

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

// collector records delivered packets with their arrival times.
type collector struct {
	sched *sim.Scheduler
	pkts  []*Packet
	at    []sim.Time
}

func (c *collector) Receive(p *Packet) {
	c.pkts = append(c.pkts, p)
	if c.sched != nil {
		c.at = append(c.at, c.sched.Now())
	}
}

func TestLinkTransmissionPlusPropagation(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	// 0.8 Mbps, 50 ms: a 1000-byte packet serializes in 10 ms.
	l := Must(NewLink(s, 0.8e6, 50*time.Millisecond, Must(NewDropTail(10)), sink))
	l.Receive(pkt(1))
	s.RunAll()
	want := 60 * time.Millisecond
	if len(sink.at) != 1 || sink.at[0] != want {
		t.Fatalf("arrival %v, want %v", sink.at, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	l := Must(NewLink(s, 0.8e6, 50*time.Millisecond, Must(NewDropTail(10)), sink))
	l.Receive(pkt(1))
	l.Receive(pkt(2))
	l.Receive(pkt(3))
	s.RunAll()
	if len(sink.at) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(sink.at))
	}
	// Successive packets are spaced by the 10 ms serialization time.
	for i := 1; i < 3; i++ {
		gap := sink.at[i] - sink.at[i-1]
		if gap != 10*time.Millisecond {
			t.Fatalf("gap %d = %v, want 10ms", i, gap)
		}
	}
}

func TestLinkDropsWhenQueueFull(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	l := Must(NewLink(s, 0.8e6, time.Millisecond, Must(NewDropTail(2)), sink))
	// One packet goes straight to the transmitter; two queue; the rest drop.
	for i := uint64(0); i < 6; i++ {
		l.Receive(pkt(i))
	}
	s.RunAll()
	if len(sink.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3 (1 in flight + 2 queued)", len(sink.pkts))
	}
	if l.Queue().Drops != 3 {
		t.Fatalf("drops = %d, want 3", l.Queue().Drops)
	}
}

func TestLinkIdleThenBusyAgain(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	l := Must(NewLink(s, 8e6, time.Millisecond, Must(NewDropTail(10)), sink))
	l.Receive(pkt(1))
	s.RunAll()
	l.Receive(pkt(2))
	s.RunAll()
	if len(sink.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(sink.pkts))
	}
	if l.TxPackets != 2 {
		t.Fatalf("tx packets = %d, want 2", l.TxPackets)
	}
}

func TestLinkCountsBytes(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	l := Must(NewLink(s, 8e6, time.Millisecond, nil, sink))
	l.Receive(&Packet{ID: 1, Kind: Ack, Size: 40})
	l.Receive(&Packet{ID: 2, Kind: Data, Size: 1000, Len: 1000})
	s.RunAll()
	if l.TxBytes != 1040 {
		t.Fatalf("tx bytes = %d, want 1040", l.TxBytes)
	}
}

func TestLinkSmallPacketsFaster(t *testing.T) {
	s := sim.NewScheduler(1)
	l := Must(NewLink(s, 0.8e6, 0, nil, &collector{sched: s}))
	ack := l.TransmissionDelay(40)
	data := l.TransmissionDelay(1000)
	if ack >= data {
		t.Fatalf("ack tx delay %v not below data %v", ack, data)
	}
	if data != 10*time.Millisecond {
		t.Fatalf("data tx delay %v, want 10ms", data)
	}
}

func TestNodeFuncAdapts(t *testing.T) {
	var got *Packet
	n := NodeFunc(func(p *Packet) { got = p })
	want := pkt(7)
	n.Receive(want)
	if got != want {
		t.Fatal("NodeFunc did not forward the packet")
	}
}
