package netem

import (
	"math/rand"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// DstSetter is implemented by loss modules whose downstream node the
// topology wires up when the module is installed at a gateway.
type DstSetter interface {
	SetDst(Node)
}

// LossInstrumenter is implemented by loss modules that can publish
// per-drop telemetry; Dumbbell.Instrument wires installed modules up
// through it.
type LossInstrumenter interface {
	Instrument(sched *sim.Scheduler, bus *telemetry.Bus, name string)
}

// lossTelemetry is the shared publishing state of the loss modules.
// Its zero value is inert.
type lossTelemetry struct {
	sched *sim.Scheduler
	bus   *telemetry.Bus
	name  string
}

// Instrument implements LossInstrumenter.
func (lt *lossTelemetry) Instrument(sched *sim.Scheduler, bus *telemetry.Bus, name string) {
	lt.sched, lt.bus, lt.name = sched, bus, name
}

// emitDrop publishes one injected-loss event for p.
func (lt *lossTelemetry) emitDrop(p *Packet) {
	if lt.sched == nil || !lt.bus.Enabled() {
		return
	}
	lt.bus.Publish(telemetry.Event{
		At:   lt.sched.Now(),
		Comp: telemetry.CompLoss,
		Kind: telemetry.KDrop,
		Src:  lt.name,
		Flow: int32(p.Flow),
		Seq:  p.Seq,
	})
}

// UniformLoss drops data packets independently with a fixed probability
// before forwarding the rest downstream. It reproduces the artificial
// uniform random losses the paper introduces at gateway R1 for the
// square-root-model experiment (Section 4). ACKs pass through
// untouched, matching the paper's forward-path-only loss setup.
type UniformLoss struct {
	// Rate is the per-packet drop probability in [0, 1].
	Rate float64
	// DropAcks extends the losses to ACK packets (used by the ACK-loss
	// robustness experiments of Section 2.3).
	DropAcks bool
	// Dst receives surviving packets.
	Dst Node

	rng *rand.Rand
	lossTelemetry

	// Dropped and Forwarded count outcomes.
	Dropped   uint64
	Forwarded uint64
}

var (
	_ Node             = (*UniformLoss)(nil)
	_ DstSetter        = (*UniformLoss)(nil)
	_ LossInstrumenter = (*UniformLoss)(nil)
)

// SetDst implements DstSetter.
func (u *UniformLoss) SetDst(n Node) { u.Dst = n }

// NewUniformLoss builds a loss module using the given deterministic
// random source.
func NewUniformLoss(rate float64, rng *rand.Rand, dst Node) *UniformLoss {
	return &UniformLoss{Rate: rate, Dst: dst, rng: rng}
}

// Receive implements Node.
func (u *UniformLoss) Receive(p *Packet) {
	eligible := p.Kind == Data || u.DropAcks
	if eligible && u.rng.Float64() < u.Rate {
		u.Dropped++
		u.emitDrop(p)
		p.Release()
		return
	}
	u.Forwarded++
	u.Dst.Receive(p)
}

// SeqLoss drops specific (flow, first-transmission sequence) pairs
// exactly once each, then forwards everything. It pins the paper's
// engineered drop patterns — "the buffer size is set to achieve the
// desired packet loss pattern" — deterministically: e.g. 3 or 6 lost
// packets within one window of flow 1 for Figure 5. Retransmissions of
// a dropped sequence are never re-dropped unless DropRetransmits lists
// them.
type SeqLoss struct {
	// Dst receives surviving packets.
	Dst Node

	pending map[int]map[int64]bool // flow -> seq -> still to drop
	rtx     map[int]map[int64]bool // flow -> seq -> drop the retransmission too
	acks    map[int]map[int64]bool // flow -> ackno -> drop the next such ACK

	lossTelemetry

	// Dropped counts packets removed.
	Dropped uint64
}

var (
	_ Node             = (*SeqLoss)(nil)
	_ DstSetter        = (*SeqLoss)(nil)
	_ LossInstrumenter = (*SeqLoss)(nil)
)

// SetDst implements DstSetter.
func (s *SeqLoss) SetDst(n Node) { s.Dst = n }

// NewSeqLoss builds a deterministic loss injector.
func NewSeqLoss(dst Node) *SeqLoss {
	return &SeqLoss{
		Dst:     dst,
		pending: make(map[int]map[int64]bool),
		rtx:     make(map[int]map[int64]bool),
		acks:    make(map[int]map[int64]bool),
	}
}

// Drop registers the first transmission of the given byte sequence
// numbers of a flow to be dropped.
func (s *SeqLoss) Drop(flow int, seqs ...int64) {
	m := s.pending[flow]
	if m == nil {
		m = make(map[int64]bool, len(seqs))
		s.pending[flow] = m
	}
	for _, q := range seqs {
		m[q] = true
	}
}

// DropRetransmit additionally drops the first retransmission of the
// given sequences, to exercise the paper's retransmission-loss /
// timeout path.
func (s *SeqLoss) DropRetransmit(flow int, seqs ...int64) {
	m := s.rtx[flow]
	if m == nil {
		m = make(map[int64]bool, len(seqs))
		s.rtx[flow] = m
	}
	for _, q := range seqs {
		m[q] = true
	}
}

// DropAck registers the next ACK carrying each given cumulative
// acknowledgment number of a flow to be dropped (reverse-path loss,
// §2.3).
func (s *SeqLoss) DropAck(flow int, ackNos ...int64) {
	m := s.acks[flow]
	if m == nil {
		m = make(map[int64]bool, len(ackNos))
		s.acks[flow] = m
	}
	for _, a := range ackNos {
		m[a] = true
	}
}

// Receive implements Node.
func (s *SeqLoss) Receive(p *Packet) {
	if p.Kind == Ack {
		if set := s.acks[p.Flow]; set != nil && set[p.AckNo] {
			delete(set, p.AckNo)
			s.Dropped++
			s.emitDrop(p)
			p.Release()
			return
		}
	}
	if p.Kind == Data {
		set := s.pending[p.Flow]
		if p.Retransmit {
			set = s.rtx[p.Flow]
		}
		if set != nil && set[p.Seq] {
			delete(set, p.Seq)
			s.Dropped++
			s.emitDrop(p)
			p.Release()
			return
		}
	}
	s.Dst.Receive(p)
}
