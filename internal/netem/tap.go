package netem

import (
	"fmt"
	"io"

	"rrtcp/internal/sim"
)

// TapRecord is one observed packet passage.
type TapRecord struct {
	At     sim.Time
	Label  string
	Flow   int
	Kind   PacketKind
	Seq    int64
	AckNo  int64
	Size   int
	Rtx    bool
	PktID  uint64
	SACKed int // number of SACK blocks carried
}

// String renders the record in a tcpdump-ish single line.
func (r TapRecord) String() string {
	if r.Kind == Ack {
		return fmt.Sprintf("%.6f %s flow=%d ack %d sack=%d", r.At.Seconds(), r.Label, r.Flow, r.AckNo, r.SACKed)
	}
	flag := ""
	if r.Rtx {
		flag = " rtx"
	}
	return fmt.Sprintf("%.6f %s flow=%d data %d(%d)%s", r.At.Seconds(), r.Label, r.Flow, r.Seq, r.Size, flag)
}

// Tap observes packets flowing through a point in the topology and
// forwards them untouched — the simulator's answer to tcpdump. Insert
// one anywhere a Node is accepted; records accumulate in memory and can
// optionally stream to a writer.
type Tap struct {
	sched *sim.Scheduler
	label string
	dst   Node

	// W, when non-nil, receives one formatted line per packet.
	W io.Writer

	// Limit bounds in-memory records (0 = unlimited).
	Limit int

	records []TapRecord
	// Seen counts all packets, even past Limit.
	Seen uint64
}

var _ Node = (*Tap)(nil)

// NewTap builds a tap labelled for trace output that forwards to dst.
func NewTap(sched *sim.Scheduler, label string, dst Node) *Tap {
	return &Tap{sched: sched, label: label, dst: dst}
}

// Receive implements Node.
func (t *Tap) Receive(p *Packet) {
	t.Seen++
	rec := TapRecord{
		At:     t.sched.Now(),
		Label:  t.label,
		Flow:   p.Flow,
		Kind:   p.Kind,
		Seq:    p.Seq,
		AckNo:  p.AckNo,
		Size:   p.Size,
		Rtx:    p.Retransmit,
		PktID:  p.ID,
		SACKed: len(p.SACK),
	}
	if t.Limit == 0 || len(t.records) < t.Limit {
		t.records = append(t.records, rec)
	}
	if t.W != nil {
		fmt.Fprintln(t.W, rec)
	}
	if t.dst != nil {
		t.dst.Receive(p)
	} else {
		p.Release()
	}
}

// Records returns a copy of the captured records.
func (t *Tap) Records() []TapRecord {
	out := make([]TapRecord, len(t.records))
	copy(out, t.records)
	return out
}

// SetDst redirects the tap's output node.
func (t *Tap) SetDst(n Node) { t.dst = n }
