package netem

import (
	"time"

	"rrtcp/internal/sim"
)

// Link is a point-to-point unidirectional link with a fixed bandwidth
// and propagation delay, fed by an attached queue. It models the
// (transmission + propagation) pipeline of an ns-2 duplex-link half:
// packets are serialized one at a time at the link rate, then propagate
// for Delay before arriving at the downstream node.
type Link struct {
	sched *sim.Scheduler
	// BandwidthBps is the link rate in bits per second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// Dst receives packets after transmission + propagation.
	Dst Node

	queue *Queue
	busy  bool

	// TxPackets and TxBytes count transmitted traffic.
	TxPackets uint64
	TxBytes   uint64
}

var _ Node = (*Link)(nil)

// NewLink builds a link draining the given queue discipline. The queue
// may be nil, in which case an unbounded FIFO is used (useful for the
// uncongested side links).
func NewLink(sched *sim.Scheduler, bandwidthBps float64, delay sim.Time, q QueueDiscipline, dst Node) *Link {
	if q == nil {
		q = NewDropTail(1 << 30)
	}
	l := &Link{
		sched:        sched,
		BandwidthBps: bandwidthBps,
		Delay:        delay,
		Dst:          dst,
	}
	l.queue = &Queue{disc: q, sched: sched}
	return l
}

// Queue returns the link's attached queue, for inspection in tests and
// traces.
func (l *Link) Queue() *Queue { return l.queue }

// Receive implements Node: enqueue the packet and start transmitting if
// the link is idle.
func (l *Link) Receive(p *Packet) {
	if !l.queue.enqueue(p) {
		return // dropped by the discipline
	}
	if !l.busy {
		l.transmitNext()
	}
}

// TransmissionDelay returns the serialization time of a packet of the
// given size at the link rate.
func (l *Link) TransmissionDelay(sizeBytes int) sim.Time {
	seconds := float64(sizeBytes*8) / l.BandwidthBps
	return sim.Time(seconds * float64(time.Second))
}

func (l *Link) transmitNext() {
	p := l.queue.dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txDelay := l.TransmissionDelay(p.Size)
	l.TxPackets++
	l.TxBytes += uint64(p.Size)
	// The packet leaves the queue now and arrives after tx+prop delay;
	// the link is free to start the next packet after tx delay alone.
	if _, err := l.sched.Schedule(txDelay+l.Delay, func() { l.Dst.Receive(p) }); err != nil {
		l.busy = false
		return
	}
	if _, err := l.sched.Schedule(txDelay, l.transmitNext); err != nil {
		l.busy = false
	}
}

// Queue wraps a QueueDiscipline with occupancy accounting shared by all
// disciplines.
type Queue struct {
	disc  QueueDiscipline
	sched *sim.Scheduler

	// Drops counts packets rejected by the discipline.
	Drops uint64
	// Enqueued counts packets accepted.
	Enqueued uint64
}

func (q *Queue) enqueue(p *Packet) bool {
	if !q.disc.Enqueue(p, q.sched.Now()) {
		q.Drops++
		return false
	}
	q.Enqueued++
	return true
}

// idleMarker is implemented by disciplines (RED) that need to know when
// the queue drains, so average-queue aging has a timestamp.
type idleMarker interface {
	MarkIdle(now sim.Time)
}

func (q *Queue) dequeue() *Packet {
	p := q.disc.Dequeue()
	if q.disc.Len() == 0 {
		if m, ok := q.disc.(idleMarker); ok {
			m.MarkIdle(q.sched.Now())
		}
	}
	return p
}

// Len reports the current number of queued packets.
func (q *Queue) Len() int { return q.disc.Len() }

// Discipline exposes the underlying queue discipline.
func (q *Queue) Discipline() QueueDiscipline { return q.disc }
