package netem

import (
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// Link is a point-to-point unidirectional link with a fixed bandwidth
// and propagation delay, fed by an attached queue. It models the
// (transmission + propagation) pipeline of an ns-2 duplex-link half:
// packets are serialized one at a time at the link rate, then propagate
// for Delay before arriving at the downstream node.
type Link struct {
	sched *sim.Scheduler
	// BandwidthBps is the link rate in bits per second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// Dst receives packets after transmission + propagation.
	Dst Node

	queue *Queue
	busy  bool

	bus  *telemetry.Bus
	name string

	// TxPackets and TxBytes count transmitted traffic.
	TxPackets uint64
	TxBytes   uint64
}

var _ Node = (*Link)(nil)

// NewLink builds a link draining the given queue discipline. The queue
// may be nil, in which case an unbounded FIFO is used (useful for the
// uncongested side links).
func NewLink(sched *sim.Scheduler, bandwidthBps float64, delay sim.Time, q QueueDiscipline, dst Node) *Link {
	if q == nil {
		q = NewDropTail(1 << 30)
	}
	l := &Link{
		sched:        sched,
		BandwidthBps: bandwidthBps,
		Delay:        delay,
		Dst:          dst,
	}
	l.queue = &Queue{disc: q, sched: sched}
	return l
}

// Queue returns the link's attached queue, for inspection in tests and
// traces.
func (l *Link) Queue() *Queue { return l.queue }

// Instrument attaches the telemetry bus to the link and its queue
// under the given instance name: the link publishes a link-tx event
// per serialized packet (utilization), the queue publishes
// enqueue/drop/mark events (occupancy, loss accounting).
func (l *Link) Instrument(bus *telemetry.Bus, name string) {
	l.bus, l.name = bus, name
	l.queue.Instrument(bus, name)
}

// Receive implements Node: enqueue the packet and start transmitting if
// the link is idle.
func (l *Link) Receive(p *Packet) {
	if !l.queue.enqueue(p) {
		return // dropped by the discipline
	}
	if !l.busy {
		l.transmitNext()
	}
}

// TransmissionDelay returns the serialization time of a packet of the
// given size at the link rate.
func (l *Link) TransmissionDelay(sizeBytes int) sim.Time {
	seconds := float64(sizeBytes*8) / l.BandwidthBps
	return sim.Time(seconds * float64(time.Second))
}

func (l *Link) transmitNext() {
	p := l.queue.dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txDelay := l.TransmissionDelay(p.Size)
	l.TxPackets++
	l.TxBytes += uint64(p.Size)
	if l.bus.Enabled() {
		l.bus.Publish(telemetry.Event{
			At:   l.sched.Now(),
			Comp: telemetry.CompLink,
			Kind: telemetry.KLinkTx,
			Src:  l.name,
			Flow: int32(p.Flow),
			Seq:  p.Seq,
			A:    float64(p.Size),
			B:    float64(l.queue.Len()),
		})
	}
	// The packet leaves the queue now and arrives after tx+prop delay;
	// the link is free to start the next packet after tx delay alone.
	if _, err := l.sched.Schedule(txDelay+l.Delay, func() { l.Dst.Receive(p) }); err != nil {
		l.busy = false
		return
	}
	if _, err := l.sched.Schedule(txDelay, l.transmitNext); err != nil {
		l.busy = false
	}
}

// Queue wraps a QueueDiscipline with occupancy accounting shared by all
// disciplines.
type Queue struct {
	disc  QueueDiscipline
	sched *sim.Scheduler

	bus  *telemetry.Bus
	name string

	// Drops counts packets rejected by the discipline.
	Drops uint64
	// Enqueued counts packets accepted.
	Enqueued uint64
}

// Instrument attaches the telemetry bus under the given instance name.
func (q *Queue) Instrument(bus *telemetry.Bus, name string) {
	q.bus, q.name = bus, name
}

func (q *Queue) enqueue(p *Packet) bool {
	now := q.sched.Now()
	if !q.disc.Enqueue(p, now) {
		q.Drops++
		if q.bus.Enabled() {
			// RED early (probabilistic) drops are reported as "mark"
			// events, the congestion-signal reading of an RED drop;
			// everything else is a forced drop (buffer overflow or
			// average above the max threshold).
			ev := telemetry.Event{
				At:   now,
				Comp: telemetry.CompQueue,
				Kind: telemetry.KDrop,
				Src:  q.name,
				Flow: int32(p.Flow),
				Seq:  p.Seq,
				A:    float64(q.disc.Len()),
				B:    1,
			}
			if red, ok := q.disc.(*REDQueue); ok && red.lastDropEarly {
				ev.Kind = telemetry.KMark
				ev.B = red.AvgQueue()
			}
			q.bus.Publish(ev)
		}
		return false
	}
	q.Enqueued++
	if q.bus.Enabled() {
		q.bus.Publish(telemetry.Event{
			At:   now,
			Comp: telemetry.CompQueue,
			Kind: telemetry.KEnqueue,
			Src:  q.name,
			Flow: int32(p.Flow),
			Seq:  p.Seq,
			A:    float64(q.disc.Len()),
		})
	}
	return true
}

// idleMarker is implemented by disciplines (RED) that need to know when
// the queue drains, so average-queue aging has a timestamp.
type idleMarker interface {
	MarkIdle(now sim.Time)
}

func (q *Queue) dequeue() *Packet {
	p := q.disc.Dequeue()
	if q.disc.Len() == 0 {
		if m, ok := q.disc.(idleMarker); ok {
			m.MarkIdle(q.sched.Now())
		}
	}
	return p
}

// Len reports the current number of queued packets.
func (q *Queue) Len() int { return q.disc.Len() }

// Discipline exposes the underlying queue discipline.
func (q *Queue) Discipline() QueueDiscipline { return q.disc }
