package netem

import (
	"fmt"
	"math"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// Must unwraps a constructor result, panicking on error. It is for
// call sites whose parameters are compile-time constants already known
// to be valid (experiment configs, tests), in the spirit of
// regexp.MustCompile.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Link is a point-to-point unidirectional link with a fixed bandwidth
// and propagation delay, fed by an attached queue. It models the
// (transmission + propagation) pipeline of an ns-2 duplex-link half:
// packets are serialized one at a time at the link rate, then propagate
// for Delay before arriving at the downstream node.
type Link struct {
	sched *sim.Scheduler
	// BandwidthBps is the link rate in bits per second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// Dst receives packets after transmission + propagation.
	Dst Node

	queue *Queue
	busy  bool

	// txTimer paces serialization: it fires transmitNext once per packet
	// after the transmission delay. Created once per link, re-armed per
	// packet with no allocation.
	txTimer *sim.Timer
	// flightFree recycles in-flight delivery records (packet + flap
	// snapshot + delivery timer). The pool's depth is bounded by the
	// link's bandwidth-delay product in packets.
	flightFree *flight

	// down marks a failed link: nothing serializes while set, and every
	// packet on the wire when the failure began is lost.
	down bool
	// flaps counts SetDown(true) transitions; in-flight deliveries
	// compare it against its value at transmission time, so a packet
	// that was on the wire across a flap is dropped even if the link is
	// back up when it would have arrived.
	flaps uint64

	bus  *telemetry.Bus
	name string

	// TxPackets and TxBytes count transmitted traffic.
	TxPackets uint64
	TxBytes   uint64
	// FaultDrops counts packets lost to link failures (in flight during
	// a flap, or serialized while the link was down).
	FaultDrops uint64
}

var _ Node = (*Link)(nil)

// NewLink builds a link draining the given queue discipline. The queue
// may be nil, in which case an unbounded FIFO is used (useful for the
// uncongested side links). The bandwidth must be positive and finite
// and the delay non-negative; degenerate values would silently wedge
// the pipeline (an infinite transmission delay never delivers).
func NewLink(sched *sim.Scheduler, bandwidthBps float64, delay sim.Time, q QueueDiscipline, dst Node) (*Link, error) {
	if sched == nil {
		return nil, fmt.Errorf("netem: link needs a scheduler")
	}
	if err := validateLinkParams(bandwidthBps, delay); err != nil {
		return nil, err
	}
	if q == nil {
		q = &DropTail{limit: 1 << 30}
	}
	l := &Link{
		sched:        sched,
		BandwidthBps: bandwidthBps,
		Delay:        delay,
		Dst:          dst,
	}
	l.txTimer = sched.NewTimer(l.transmitNext)
	l.queue = newQueue(q, sched)
	return l, nil
}

func validateLinkParams(bandwidthBps float64, delay sim.Time) error {
	if bandwidthBps <= 0 || math.IsInf(bandwidthBps, 0) || math.IsNaN(bandwidthBps) {
		return fmt.Errorf("netem: link bandwidth must be positive and finite, got %v", bandwidthBps)
	}
	if delay < 0 {
		return fmt.Errorf("netem: negative link delay %v", delay)
	}
	return nil
}

// Queue returns the link's attached queue, for inspection in tests and
// traces.
func (l *Link) Queue() *Queue { return l.queue }

// Instrument attaches the telemetry bus to the link and its queue
// under the given instance name: the link publishes a link-tx event
// per serialized packet (utilization), the queue publishes
// enqueue/drop/mark events (occupancy, loss accounting).
func (l *Link) Instrument(bus *telemetry.Bus, name string) {
	l.bus, l.name = bus, name
	l.queue.Instrument(bus, name)
}

// Receive implements Node: enqueue the packet and start transmitting if
// the link is idle.
func (l *Link) Receive(p *Packet) {
	if !l.queue.enqueue(p) {
		return // dropped by the discipline
	}
	if !l.busy && !l.down {
		l.transmitNext()
	}
}

// Down reports whether the link carrier is currently lost.
func (l *Link) Down() bool { return l.down }

// SetDown flips the link's carrier state. Taking the link down loses
// every packet currently propagating on the wire (they are dropped on
// arrival) and pauses serialization; the attached queue survives the
// outage, mirroring a router holding its buffer across an interface
// flap. Bringing the link back up resumes draining the queue.
func (l *Link) SetDown(down bool) {
	if down == l.down {
		return
	}
	l.down = down
	kind := telemetry.KLinkUp
	if down {
		l.flaps++
		kind = telemetry.KLinkDown
	}
	if l.bus.Enabled() {
		l.bus.Publish(telemetry.Event{
			At:   l.sched.Now(),
			Comp: telemetry.CompLink,
			Kind: kind,
			Src:  l.name,
			Flow: telemetry.NoFlow,
			A:    float64(l.queue.Len()),
		})
	}
	if !down && !l.busy {
		l.transmitNext()
	}
}

// SetBandwidth renegotiates the link rate mid-flow (a modem retrain, a
// wireless rate adaptation). In-flight packets are unaffected; packets
// serialized from now on see the new rate.
func (l *Link) SetBandwidth(bps float64) error {
	if err := validateLinkParams(bps, l.Delay); err != nil {
		return err
	}
	l.BandwidthBps = bps
	l.emitParam()
	return nil
}

// SetDelay renegotiates the propagation delay mid-flow (a path change),
// stepping the flow's RTT. In-flight packets keep the delay they left
// with, so a delay drop can reorder across the change point — exactly
// the hazard the injection is meant to exercise.
func (l *Link) SetDelay(d sim.Time) error {
	if err := validateLinkParams(l.BandwidthBps, d); err != nil {
		return err
	}
	l.Delay = d
	l.emitParam()
	return nil
}

func (l *Link) emitParam() {
	if !l.bus.Enabled() {
		return
	}
	l.bus.Publish(telemetry.Event{
		At:   l.sched.Now(),
		Comp: telemetry.CompLink,
		Kind: telemetry.KLinkParam,
		Src:  l.name,
		Flow: telemetry.NoFlow,
		A:    l.BandwidthBps,
		B:    l.Delay.Seconds(),
	})
}

// TransmissionDelay returns the serialization time of a packet of the
// given size at the link rate.
func (l *Link) TransmissionDelay(sizeBytes int) sim.Time {
	seconds := float64(sizeBytes*8) / l.BandwidthBps
	return sim.Time(seconds * float64(time.Second))
}

func (l *Link) transmitNext() {
	if l.down {
		l.busy = false
		return
	}
	p := l.queue.dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txDelay := l.TransmissionDelay(p.Size)
	l.TxPackets++
	l.TxBytes += uint64(p.Size)
	sim.CountPackets(1)
	if l.bus.Enabled() {
		l.bus.Publish(telemetry.Event{
			At:   l.sched.Now(),
			Comp: telemetry.CompLink,
			Kind: telemetry.KLinkTx,
			Src:  l.name,
			Flow: int32(p.Flow),
			Seq:  p.Seq,
			A:    float64(p.Size),
			B:    float64(l.queue.Len()),
		})
	}
	// The packet leaves the queue now and arrives after tx+prop delay;
	// the link is free to start the next packet after tx delay alone. A
	// packet on the wire across a carrier loss never arrives: the flap
	// counter at transmission time is compared at delivery time. The
	// delivery timer must be armed before the serialization timer so
	// simultaneous firings keep the historical order (delivery first).
	f := l.getFlight()
	f.p = p
	f.flapsAtTx = l.flaps
	f.timer.Reset(txDelay + l.Delay)
	l.txTimer.Reset(txDelay)
}

// flight is one packet on the wire: the delivery timer plus the state
// its expiry needs. Flight records are pooled per link, and each owns
// its timer (and the one handler closure binding them) for its whole
// pooled lifetime, so steady-state transmission allocates nothing.
type flight struct {
	l         *Link
	p         *Packet
	flapsAtTx uint64
	timer     *sim.Timer
	next      *flight
}

func (l *Link) getFlight() *flight {
	f := l.flightFree
	if f == nil {
		f = &flight{l: l}
		f.timer = l.sched.NewTimer(f.deliver)
		return f
	}
	l.flightFree = f.next
	f.next = nil
	return f
}

// deliver fires when the packet finishes propagating. The flight record
// is recycled before the downstream Receive so a re-entrant transmit
// can reuse it immediately.
func (f *flight) deliver() {
	l, p, flapsAtTx := f.l, f.p, f.flapsAtTx
	f.p = nil
	f.next = l.flightFree
	l.flightFree = f
	if l.flaps != flapsAtTx {
		l.dropInFlight(p)
		return
	}
	l.Dst.Receive(p)
}

// dropInFlight accounts for a wire packet lost to a link flap.
func (l *Link) dropInFlight(p *Packet) {
	l.FaultDrops++
	if l.bus.Enabled() {
		l.bus.Publish(telemetry.Event{
			At:   l.sched.Now(),
			Comp: telemetry.CompLink,
			Kind: telemetry.KDrop,
			Src:  l.name,
			Flow: int32(p.Flow),
			Seq:  p.Seq,
			B:    1,
		})
	}
	p.Release()
}

// Queue wraps a QueueDiscipline with occupancy accounting shared by all
// disciplines.
type Queue struct {
	disc  QueueDiscipline
	sched *sim.Scheduler

	// idle and red cache the discipline's optional interfaces, hoisting
	// the per-packet type assertions out of the hot path.
	idle idleMarker
	red  *REDQueue

	bus  *telemetry.Bus
	name string

	// Drops counts packets rejected by the discipline.
	Drops uint64
	// Enqueued counts packets accepted.
	Enqueued uint64
}

// newQueue wraps a discipline, caching its optional capabilities.
func newQueue(disc QueueDiscipline, sched *sim.Scheduler) *Queue {
	q := &Queue{disc: disc, sched: sched}
	q.idle, _ = disc.(idleMarker)
	q.red, _ = disc.(*REDQueue)
	return q
}

// Instrument attaches the telemetry bus under the given instance name.
func (q *Queue) Instrument(bus *telemetry.Bus, name string) {
	q.bus, q.name = bus, name
}

func (q *Queue) enqueue(p *Packet) bool {
	now := q.sched.Now()
	if !q.disc.Enqueue(p, now) {
		q.Drops++
		if q.bus.Enabled() {
			// RED early (probabilistic) drops are reported as "mark"
			// events, the congestion-signal reading of an RED drop;
			// everything else is a forced drop (buffer overflow or
			// average above the max threshold).
			ev := telemetry.Event{
				At:   now,
				Comp: telemetry.CompQueue,
				Kind: telemetry.KDrop,
				Src:  q.name,
				Flow: int32(p.Flow),
				Seq:  p.Seq,
				A:    float64(q.disc.Len()),
				B:    1,
			}
			if q.red != nil && q.red.lastDropEarly {
				ev.Kind = telemetry.KMark
				ev.B = q.red.AvgQueue()
			}
			q.bus.Publish(ev)
		}
		p.Release()
		return false
	}
	q.Enqueued++
	if q.bus.Enabled() {
		q.bus.Publish(telemetry.Event{
			At:   now,
			Comp: telemetry.CompQueue,
			Kind: telemetry.KEnqueue,
			Src:  q.name,
			Flow: int32(p.Flow),
			Seq:  p.Seq,
			A:    float64(q.disc.Len()),
		})
	}
	return true
}

// idleMarker is implemented by disciplines (RED) that need to know when
// the queue drains, so average-queue aging has a timestamp.
type idleMarker interface {
	MarkIdle(now sim.Time)
}

func (q *Queue) dequeue() *Packet {
	p := q.disc.Dequeue()
	if q.idle != nil && q.disc.Len() == 0 {
		q.idle.MarkIdle(q.sched.Now())
	}
	return p
}

// Len reports the current number of queued packets.
func (q *Queue) Len() int { return q.disc.Len() }

// SampleGauges implements telemetry.GaugeSource: the periodic Sampler
// records the queue's occupancy series.
func (q *Queue) SampleGauges(emit func(gauge string, v float64)) {
	emit("qlen", float64(q.disc.Len()))
}

// Discipline exposes the underlying queue discipline.
func (q *Queue) Discipline() QueueDiscipline { return q.disc }
