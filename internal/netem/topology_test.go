package netem

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func TestDumbbellForwardPath(t *testing.T) {
	s := sim.NewScheduler(1)
	d, err := NewDumbbell(s, PaperDropTailConfig(2))
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	sink0 := &collector{sched: s}
	sink1 := &collector{sched: s}
	d.ConnectReceiver(0, sink0)
	d.ConnectReceiver(1, sink1)

	p := pkt(1)
	p.Flow = 0
	d.SenderPort(0).Receive(p)
	q := pkt(2)
	q.Flow = 1
	d.SenderPort(1).Receive(q)
	s.RunAll()

	if len(sink0.pkts) != 1 || sink0.pkts[0].ID != 1 {
		t.Fatalf("flow 0 delivery wrong: %v", sink0.pkts)
	}
	if len(sink1.pkts) != 1 || sink1.pkts[0].ID != 2 {
		t.Fatalf("flow 1 delivery wrong: %v", sink1.pkts)
	}
}

func TestDumbbellReversePath(t *testing.T) {
	s := sim.NewScheduler(1)
	d, err := NewDumbbell(s, PaperDropTailConfig(2))
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	sink := &collector{sched: s}
	d.ConnectSender(1, sink)
	ack := &Packet{ID: 9, Flow: 1, Kind: Ack, AckNo: 1000, Size: 40}
	d.ReceiverPort(1).Receive(ack)
	s.RunAll()
	if len(sink.pkts) != 1 || sink.pkts[0].ID != 9 {
		t.Fatalf("ack delivery wrong: %v", sink.pkts)
	}
}

func TestDumbbellEndToEndDelay(t *testing.T) {
	s := sim.NewScheduler(1)
	cfg := PaperDropTailConfig(1)
	d, err := NewDumbbell(s, cfg)
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	sink := &collector{sched: s}
	d.ConnectReceiver(0, sink)
	p := pkt(1)
	p.Flow = 0
	d.SenderPort(0).Receive(p)
	s.RunAll()
	// side (1ms prop + 0.8ms tx) + bottleneck (50ms prop + 10ms tx) +
	// side (1ms prop + 0.8ms tx) = 63.6 ms.
	want := 63600 * time.Microsecond
	if sink.at[0] != want {
		t.Fatalf("one-way delay %v, want %v", sink.at[0], want)
	}
}

func TestDumbbellBottleneckSharedAcrossFlows(t *testing.T) {
	s := sim.NewScheduler(1)
	cfg := PaperDropTailConfig(2)
	cfg.ForwardQueue = Must(NewDropTail(1))
	d, err := NewDumbbell(s, cfg)
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	sink0 := &collector{sched: s}
	sink1 := &collector{sched: s}
	d.ConnectReceiver(0, sink0)
	d.ConnectReceiver(1, sink1)
	// Burst of 6 packets from both senders into a 1-packet bottleneck
	// buffer: some must drop at the shared queue.
	for i := uint64(0); i < 3; i++ {
		p := pkt(i)
		p.Flow = 0
		d.SenderPort(0).Receive(p)
		q := pkt(i + 10)
		q.Flow = 1
		d.SenderPort(1).Receive(q)
	}
	s.RunAll()
	delivered := len(sink0.pkts) + len(sink1.pkts)
	if delivered+int(d.BottleneckQueue().Drops) != 6 {
		t.Fatalf("delivered %d + dropped %d != 6", delivered, d.BottleneckQueue().Drops)
	}
	if d.BottleneckQueue().Drops == 0 {
		t.Fatal("no drops despite 1-packet shared buffer")
	}
}

func TestDumbbellLossModuleInsertion(t *testing.T) {
	s := sim.NewScheduler(1)
	loss := NewSeqLoss(nil)
	loss.Drop(0, 0)
	cfg := PaperDropTailConfig(1)
	cfg.Loss = loss
	d, err := NewDumbbell(s, cfg)
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	sink := &collector{sched: s}
	d.ConnectReceiver(0, sink)
	p := pkt(1)
	p.Flow = 0
	p.Seq = 0
	d.SenderPort(0).Receive(p)
	s.RunAll()
	if len(sink.pkts) != 0 {
		t.Fatal("loss module did not intercept the forward path")
	}
	if loss.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", loss.Dropped)
	}
}

func TestDumbbellValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	if _, err := NewDumbbell(s, DumbbellConfig{Flows: 0, BottleneckBps: 1, SideBps: 1}); err == nil {
		t.Fatal("zero flows accepted")
	}
	if _, err := NewDumbbell(s, DumbbellConfig{Flows: 1, BottleneckBps: 0, SideBps: 1}); err == nil {
		t.Fatal("zero bottleneck bandwidth accepted")
	}
	if _, err := NewDumbbell(s, DumbbellConfig{Flows: 1, BottleneckBps: 1, SideBps: -1}); err == nil {
		t.Fatal("negative side bandwidth accepted")
	}
}

func TestDemuxDropsUnknownFlow(t *testing.T) {
	d := NewDemux()
	sink := &collector{}
	d.Route(1, sink)
	p := pkt(1)
	p.Flow = 99
	d.Receive(p) // must not panic and not deliver
	if len(sink.pkts) != 0 {
		t.Fatal("unknown flow delivered")
	}
}

func TestPaperDropTailConfigMatchesTable3(t *testing.T) {
	cfg := PaperDropTailConfig(3)
	if cfg.Flows != 3 {
		t.Fatalf("flows = %d", cfg.Flows)
	}
	if cfg.BottleneckBps != 0.8e6 {
		t.Fatalf("bottleneck = %v, want 0.8 Mbps", cfg.BottleneckBps)
	}
	if cfg.SideBps != 10e6 {
		t.Fatalf("side = %v, want 10 Mbps", cfg.SideBps)
	}
	dt, ok := cfg.ForwardQueue.(*DropTail)
	if !ok || dt.Limit() != 8 {
		t.Fatalf("forward queue %T limit, want 8-packet drop-tail", cfg.ForwardQueue)
	}
}
