package netem

import (
	"fmt"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// Demux routes packets to per-flow destinations; it models the routing
// step at a gateway fanning out to the receiver (or sender) hosts.
// Routing is a dense-slice lookup indexed by flow ID — flow IDs are
// small topology slot numbers — with a map fallback for any outliers.
type Demux struct {
	dst      []Node
	overflow map[int]Node
}

var _ Node = (*Demux)(nil)

// demuxDenseMax bounds how large a flow ID the dense table will grow
// for; anything larger routes through the overflow map.
const demuxDenseMax = 1 << 16

// NewDemux returns an empty router.
func NewDemux() *Demux { return &Demux{} }

// Route binds a flow ID to a destination node.
func (d *Demux) Route(flow int, dst Node) {
	if flow >= 0 && flow < demuxDenseMax {
		for len(d.dst) <= flow {
			d.dst = append(d.dst, nil)
		}
		d.dst[flow] = dst
		return
	}
	if d.overflow == nil {
		d.overflow = make(map[int]Node)
	}
	d.overflow[flow] = dst
}

// Receive implements Node; packets for unknown flows are dropped.
func (d *Demux) Receive(p *Packet) {
	if uint(p.Flow) < uint(len(d.dst)) {
		if dst := d.dst[p.Flow]; dst != nil {
			dst.Receive(p)
			return
		}
	} else if dst, ok := d.overflow[p.Flow]; ok {
		dst.Receive(p)
		return
	}
	p.Release()
}

// DumbbellConfig describes the Figure 4 topology: n sender hosts S_i
// and receiver hosts K_i joined by gateways R1 and R2 over a shared
// bottleneck.
type DumbbellConfig struct {
	// Flows is the number of S_i/K_i pairs.
	Flows int
	// BottleneckBps is the R1→R2 (and R2→R1) link rate in bits/s.
	BottleneckBps float64
	// BottleneckDelay is the one-way bottleneck propagation delay.
	BottleneckDelay sim.Time
	// SideBps and SideDelay configure each S_i→R1 and R2→K_i link.
	SideBps   float64
	SideDelay sim.Time
	// ForwardQueue supplies the discipline for the congested R1→R2
	// buffer. nil defaults to an 8-packet drop-tail (Table 3).
	ForwardQueue QueueDiscipline
	// ReverseQueueLimit bounds the R2→R1 ACK-path drop-tail buffer;
	// zero means a generous default (ACKs are tiny).
	ReverseQueueLimit int
	// ReverseQueue overrides the reverse-path discipline entirely
	// (e.g. a DRR fair queue for the §2.3 fair-share experiment). When
	// set, ReverseQueueLimit is ignored.
	ReverseQueue QueueDiscipline
	// Loss, when non-nil, is inserted at R1 in front of the forward
	// bottleneck queue (where the paper injects artificial losses).
	Loss Node
}

// PaperDropTailConfig returns the Table 3 configuration for n flows:
// 8-packet bottleneck buffer, 0.8 Mbps bottleneck, 10 Mbps side links.
// The bottleneck one-way delay is 50 ms (see DESIGN.md §3 for why).
func PaperDropTailConfig(flows int) DumbbellConfig {
	return DumbbellConfig{
		Flows:           flows,
		BottleneckBps:   0.8e6,
		BottleneckDelay: 50 * time.Millisecond,
		SideBps:         10e6,
		SideDelay:       1 * time.Millisecond,
		ForwardQueue:    Must(NewDropTail(8)),
	}
}

// Dumbbell is the instantiated topology. Senders inject via
// SenderPort(i); receivers inject ACKs via ReceiverPort(i); final
// delivery goes to the nodes registered with ConnectSender /
// ConnectReceiver.
type Dumbbell struct {
	cfg   DumbbellConfig
	sched *sim.Scheduler

	senderLinks   []*Link // S_i -> R1
	receiverLinks []*Link // R2 -> K_i
	ackLinks      []*Link // K_i -> R2
	returnLinks   []*Link // R1 -> S_i
	forward       *Link   // R1 -> R2 (bottleneck, congested)
	reverse       *Link   // R2 -> R1 (bottleneck, ACK path)
	fwdDemux      *Demux  // at R2, to receivers
	revDemux      *Demux  // at R1, to senders

	// fwdEntry and revEntry are the first nodes on each bottleneck path
	// (the links themselves, or the head of an injector chain in front
	// of them); side links feed into these.
	fwdEntry Node
	revEntry Node

	// pool recycles the topology's packets; the endpoints installed on
	// the dumbbell allocate from and release to it.
	pool PacketPool
}

// Pool returns the topology's packet pool. Endpoints wired onto the
// dumbbell draw their packets from it so steady-state traffic allocates
// nothing; every drop or consumption site releases back into it.
func (d *Dumbbell) Pool() *PacketPool { return &d.pool }

// NewDumbbell wires up the topology on the given scheduler.
func NewDumbbell(sched *sim.Scheduler, cfg DumbbellConfig) (*Dumbbell, error) {
	if cfg.Flows < 1 {
		return nil, fmt.Errorf("netem: dumbbell needs at least one flow, got %d", cfg.Flows)
	}
	if err := validateLinkParams(cfg.BottleneckBps, cfg.BottleneckDelay); err != nil {
		return nil, fmt.Errorf("bottleneck: %w", err)
	}
	if err := validateLinkParams(cfg.SideBps, cfg.SideDelay); err != nil {
		return nil, fmt.Errorf("side link: %w", err)
	}
	fq := cfg.ForwardQueue
	if fq == nil {
		fq = Must(NewDropTail(8))
	}
	revLimit := cfg.ReverseQueueLimit
	if revLimit <= 0 {
		revLimit = 1000
	}

	d := &Dumbbell{
		cfg:      cfg,
		sched:    sched,
		fwdDemux: NewDemux(),
		revDemux: NewDemux(),
	}
	rq := cfg.ReverseQueue
	if rq == nil {
		rq = Must(NewDropTail(revLimit))
	}
	// The parameters were validated above, so per-link construction
	// cannot fail; the panic path in Must is unreachable here.
	d.forward = Must(NewLink(sched, cfg.BottleneckBps, cfg.BottleneckDelay, fq, d.fwdDemux))
	d.reverse = Must(NewLink(sched, cfg.BottleneckBps, cfg.BottleneckDelay, rq, d.revDemux))
	d.revEntry = d.reverse

	// Entry into the forward bottleneck, optionally via a loss module.
	d.fwdEntry = d.forward
	if cfg.Loss != nil {
		if setter, ok := cfg.Loss.(DstSetter); ok {
			setter.SetDst(d.forward)
		}
		d.fwdEntry = cfg.Loss
	}

	sideQueue := func() QueueDiscipline { return Must(NewDropTail(1000)) }
	d.senderLinks = make([]*Link, cfg.Flows)
	d.receiverLinks = make([]*Link, cfg.Flows)
	d.ackLinks = make([]*Link, cfg.Flows)
	d.returnLinks = make([]*Link, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		d.senderLinks[i] = Must(NewLink(sched, cfg.SideBps, cfg.SideDelay, sideQueue(), d.fwdEntry))
		d.receiverLinks[i] = Must(NewLink(sched, cfg.SideBps, cfg.SideDelay, sideQueue(), nil))
		d.ackLinks[i] = Must(NewLink(sched, cfg.SideBps, cfg.SideDelay, sideQueue(), d.revEntry))
		d.returnLinks[i] = Must(NewLink(sched, cfg.SideBps, cfg.SideDelay, sideQueue(), nil))
		d.fwdDemux.Route(i, d.receiverLinks[i])
		d.revDemux.Route(i, d.returnLinks[i])
	}
	return d, nil
}

// SenderPort returns the node into which sender i transmits data.
func (d *Dumbbell) SenderPort(i int) Node { return d.senderLinks[i] }

// ReceiverPort returns the node into which receiver i transmits ACKs.
func (d *Dumbbell) ReceiverPort(i int) Node { return d.ackLinks[i] }

// ConnectReceiver registers the endpoint that consumes flow i's data
// packets at host K_i.
func (d *Dumbbell) ConnectReceiver(i int, n Node) { d.receiverLinks[i].Dst = n }

// ConnectSender registers the endpoint that consumes flow i's ACKs back
// at host S_i.
func (d *Dumbbell) ConnectSender(i int, n Node) { d.returnLinks[i].Dst = n }

// ForwardEntry returns the first node on the forward bottleneck path —
// the forward link itself, or the head of whatever injector chain has
// been pushed in front of it.
func (d *Dumbbell) ForwardEntry() Node { return d.fwdEntry }

// SetForwardEntry interposes n at the head of the forward bottleneck
// path and rewires every sender-side link to feed it. Fault injectors
// chain themselves in with this: n should ultimately deliver into the
// previous ForwardEntry.
func (d *Dumbbell) SetForwardEntry(n Node) {
	d.fwdEntry = n
	for _, l := range d.senderLinks {
		l.Dst = n
	}
}

// ReverseEntry returns the first node on the reverse (ACK) bottleneck
// path.
func (d *Dumbbell) ReverseEntry() Node { return d.revEntry }

// SetReverseEntry interposes n at the head of the reverse bottleneck
// path, rewiring every receiver-side ACK link to feed it.
func (d *Dumbbell) SetReverseEntry(n Node) {
	d.revEntry = n
	for _, l := range d.ackLinks {
		l.Dst = n
	}
}

// BottleneckQueue exposes the congested R1→R2 queue for tracing.
func (d *Dumbbell) BottleneckQueue() *Queue { return d.forward.Queue() }

// ForwardLink exposes the bottleneck link for throughput accounting.
func (d *Dumbbell) ForwardLink() *Link { return d.forward }

// ReverseLink exposes the ACK-path bottleneck link.
func (d *Dumbbell) ReverseLink() *Link { return d.reverse }

// Config returns the configuration used to build the topology.
func (d *Dumbbell) Config() DumbbellConfig { return d.cfg }

// Instrument attaches the telemetry bus to the contended elements of
// the topology: the forward (data) and reverse (ACK) bottleneck links
// with their queues, named "fwd" and "rev", plus any installed loss
// module, named "inject". The uncongested side links are left silent —
// they never drop by construction, and instrumenting them would multiply
// event volume without adding signal.
func (d *Dumbbell) Instrument(bus *telemetry.Bus) {
	d.forward.Instrument(bus, "fwd")
	d.reverse.Instrument(bus, "rev")
	if inst, ok := d.cfg.Loss.(LossInstrumenter); ok {
		inst.Instrument(d.sched, bus, "inject")
	}
}
