package netem

import (
	"fmt"

	"rrtcp/internal/sim"
)

// DRRQueue is a deficit-round-robin fair queue (Shreedhar & Varghese
// 1996): each flow gets its own FIFO and a byte quantum per round, so a
// 40-byte ACK stream claims its fair share with almost no buffer
// pressure from competing 1000-byte data flows. The paper's §2.3
// argues that with such per-flow fair sharing at routers, ACK packets
// are far less likely to drop than data packets; the fairshare
// experiment tests exactly that.
type DRRQueue struct {
	quantum int
	limit   int

	queues  map[int][]*Packet
	deficit map[int]int
	active  []int // flows with queued packets, round-robin order
	fresh   map[int]bool
	total   int

	// Drops counts packets rejected, by flow.
	Drops map[int]uint64
}

var _ QueueDiscipline = (*DRRQueue)(nil)

// DRRConfig parameterizes a deficit-round-robin fair queue.
type DRRConfig struct {
	// QuantumBytes is the per-round byte credit each active flow earns.
	QuantumBytes int
	// LimitPackets bounds the shared buffer, in packets.
	LimitPackets int
}

// NewDRRConfig builds a fair queue from a DRRConfig; see NewDRR for
// the parameter constraints.
func NewDRRConfig(cfg DRRConfig) (*DRRQueue, error) {
	return NewDRR(cfg.QuantumBytes, cfg.LimitPackets)
}

// NewDRR builds a fair queue with the given per-round byte quantum and
// a total buffer limit in packets. Both must be at least one: a
// non-positive quantum never earns any flow a transmission credit, and
// a non-positive limit drops everything.
func NewDRR(quantumBytes, limitPackets int) (*DRRQueue, error) {
	if quantumBytes < 1 {
		return nil, fmt.Errorf("netem: DRR quantum must be >= 1 byte, got %d", quantumBytes)
	}
	if limitPackets < 1 {
		return nil, fmt.Errorf("netem: DRR limit must be >= 1 packet, got %d", limitPackets)
	}
	return &DRRQueue{
		quantum: quantumBytes,
		limit:   limitPackets,
		queues:  make(map[int][]*Packet),
		deficit: make(map[int]int),
		fresh:   make(map[int]bool),
		Drops:   make(map[int]uint64),
	}, nil
}

// Enqueue implements QueueDiscipline. When the shared buffer is full,
// the packet at the tail of the longest per-flow queue is evicted
// (longest-queue drop), which is what protects low-rate flows such as
// ACK streams.
func (d *DRRQueue) Enqueue(p *Packet, _ sim.Time) bool {
	if d.total >= d.limit {
		victim := d.longestFlow()
		if victim == p.Flow || victim == -1 {
			d.Drops[p.Flow]++
			return false
		}
		q := d.queues[victim]
		dropped := q[len(q)-1]
		q[len(q)-1] = nil
		d.queues[victim] = q[:len(q)-1]
		d.Drops[dropped.Flow]++
		dropped.Release()
		d.total--
		if len(d.queues[victim]) == 0 {
			d.deactivate(victim)
		}
	}
	if len(d.queues[p.Flow]) == 0 {
		d.active = append(d.active, p.Flow)
		d.fresh[p.Flow] = true
	}
	d.queues[p.Flow] = append(d.queues[p.Flow], p)
	d.total++
	return true
}

func (d *DRRQueue) longestFlow() int {
	longest, bestLen := -1, 0
	for _, f := range d.active {
		if l := len(d.queues[f]); l > bestLen {
			longest, bestLen = f, l
		}
	}
	return longest
}

func (d *DRRQueue) deactivate(flow int) {
	for i, f := range d.active {
		if f == flow {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.deficit[flow] = 0
	delete(d.fresh, flow)
}

// Dequeue implements QueueDiscipline with the standard DRR round.
func (d *DRRQueue) Dequeue() *Packet {
	for d.total > 0 {
		if len(d.active) == 0 {
			return nil
		}
		flow := d.active[0]
		if d.fresh[flow] {
			d.deficit[flow] += d.quantum
			d.fresh[flow] = false
		}
		q := d.queues[flow]
		if len(q) > 0 && q[0].Size <= d.deficit[flow] {
			p := q[0]
			d.queues[flow] = q[1:]
			d.deficit[flow] -= p.Size
			d.total--
			if len(d.queues[flow]) == 0 {
				d.deactivate(flow)
			}
			return p
		}
		// Flow exhausted its deficit: move it to the back of the round
		// and credit it a fresh quantum on its next turn.
		d.active = append(d.active[1:], flow)
		d.fresh[flow] = true
	}
	return nil
}

// Len implements QueueDiscipline.
func (d *DRRQueue) Len() int { return d.total }

// FlowLen reports one flow's queued packets (for tests).
func (d *DRRQueue) FlowLen(flow int) int { return len(d.queues[flow]) }
