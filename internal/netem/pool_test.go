package netem

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func TestPacketPoolRecycles(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.Seq = 42
	p.SACK = append(p.SACK, SACKBlock{Start: 1, End: 2})
	p.Release()
	q := pp.Get()
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if q.Seq != 0 || len(q.SACK) != 0 {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if cap(q.SACK) == 0 {
		t.Fatal("recycled packet lost its SACK backing array")
	}
	if pp.Gets != 2 || pp.Hits != 1 {
		t.Fatalf("counters Gets=%d Hits=%d, want 2/1", pp.Gets, pp.Hits)
	}
}

func TestPacketPoolNilSafe(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Release() // non-pooled packet: must be a no-op
	var orphan Packet
	orphan.Release()
}

func TestPacketPoolDoubleReleaseIsNoOp(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.Release()
	p.Release()
	if len(pp.free) != 1 {
		t.Fatalf("double release grew the free list to %d", len(pp.free))
	}
}

// TestPacketPoolSteadyStateZeroAlloc asserts the pooling contract of
// the zero-alloc campaign: a warm Get/Release cycle allocates nothing.
func TestPacketPoolSteadyStateZeroAlloc(t *testing.T) {
	var pp PacketPool
	pp.Get().Release() // warm: one packet in the free list
	avg := testing.AllocsPerRun(100, func() {
		p := pp.Get()
		p.Seq = 7
		p.Release()
	})
	if avg != 0 {
		t.Fatalf("warm Get/Release allocates %.2f allocs/run, want 0", avg)
	}
}

// TestLinkSteadyStateZeroAlloc drives pooled packets through a link
// (serialization timer, flight pool, queue ring) and asserts the whole
// transmission path allocates nothing once warm.
func TestLinkSteadyStateZeroAlloc(t *testing.T) {
	s := sim.NewScheduler(1)
	var pp PacketPool
	sink := NodeFunc(func(p *Packet) { p.Release() })
	l := Must(NewLink(s, 8e6, time.Millisecond, Must(NewDropTail(64)), sink))

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pp.Get()
			p.Kind = Data
			p.Len = 1000
			p.Size = 1000
			l.Receive(p)
			s.Run(s.Now() + 5*time.Millisecond)
		}
	}
	send(32) // warm: pool, flight free list, heap, queue ring

	avg := testing.AllocsPerRun(20, func() { send(10) })
	if avg != 0 {
		t.Fatalf("warm link transmission allocates %.2f allocs/run, want 0", avg)
	}
}
