package netem

import (
	"time"

	"rrtcp/internal/sim"
)

// CBRSource emits fixed-size packets at a constant bit rate — the
// simple background load used by the fair-share experiment to congest
// a link without TCP dynamics.
type CBRSource struct {
	sched *sim.Scheduler
	dst   Node
	flow  int
	size  int
	gap   sim.Time
	tick  *sim.Timer

	running bool
	stopped bool

	// Pool, when non-nil, supplies the emitted packets.
	Pool *PacketPool

	// Sent counts emitted packets.
	Sent uint64
}

// NewCBR builds a source sending size-byte packets at rateBps into dst.
func NewCBR(sched *sim.Scheduler, flow int, rateBps float64, size int, dst Node) *CBRSource {
	if size < 1 {
		size = 1
	}
	gap := sim.Time(float64(size*8) / rateBps * float64(time.Second))
	if gap < 1 {
		gap = 1
	}
	c := &CBRSource{sched: sched, dst: dst, flow: flow, size: size, gap: gap}
	c.tick = sched.NewTimer(c.emit)
	return c
}

// Start schedules the first emission after delay.
func (c *CBRSource) Start(delay sim.Time) error {
	if c.running {
		return nil
	}
	c.running = true
	return c.tick.At(c.sched.Now() + delay)
}

// Stop halts emission after the next tick.
func (c *CBRSource) Stop() { c.stopped = true }

func (c *CBRSource) emit() {
	if c.stopped {
		return
	}
	c.Sent++
	p := c.Pool.Get()
	p.ID = NextID()
	p.Flow = c.flow
	p.Kind = Data
	p.Seq = int64(c.Sent) * int64(c.size)
	p.Len = c.size
	p.Size = c.size
	c.dst.Receive(p)
	c.tick.Reset(c.gap)
}
