package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rrtcp/internal/sim"
)

func pkt(id uint64) *Packet {
	return &Packet{ID: id, Kind: Data, Size: 1000, Len: 1000}
}

func TestDropTailCapacity(t *testing.T) {
	q := Must(NewDropTail(3))
	for i := uint64(0); i < 3; i++ {
		if !q.Enqueue(pkt(i), 0) {
			t.Fatalf("packet %d rejected below capacity", i)
		}
	}
	if q.Enqueue(pkt(3), 0) {
		t.Fatal("packet accepted above capacity")
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3", q.Len())
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := Must(NewDropTail(10))
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(pkt(i), 0)
	}
	for i := uint64(0); i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty queue returned a packet")
	}
}

func TestDropTailRejectsDegenerateLimit(t *testing.T) {
	for _, lim := range []int{0, -1} {
		if q, err := NewDropTail(lim); err == nil {
			t.Fatalf("NewDropTail(%d) = %v, want error", lim, q)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewLink(s, 0, time.Millisecond, nil, nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(s, -1e6, time.Millisecond, nil, nil); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := NewLink(s, 1e6, -time.Millisecond, nil, nil); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := NewLink(nil, 1e6, time.Millisecond, nil, nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewRED(REDConfig{Limit: 0, MinThreshold: 5, MaxThreshold: 20, MaxDropProb: 0.02, QueueWeight: 0.002}, rng); err == nil {
		t.Fatal("RED zero limit accepted")
	}
	if _, err := NewRED(REDConfig{Limit: 25, MinThreshold: 20, MaxThreshold: 5, MaxDropProb: 0.02, QueueWeight: 0.002}, rng); err == nil {
		t.Fatal("RED inverted thresholds accepted")
	}
	if _, err := NewRED(REDConfig{Limit: 25, MinThreshold: 5, MaxThreshold: 20, MaxDropProb: 0, QueueWeight: 0.002}, rng); err == nil {
		t.Fatal("RED zero maxp accepted")
	}
	if _, err := NewRED(REDConfig{Limit: 25, MinThreshold: 5, MaxThreshold: 20, MaxDropProb: 0.02, QueueWeight: 2}, rng); err == nil {
		t.Fatal("RED weight > 1 accepted")
	}
	if _, err := NewRED(PaperREDConfig(), nil); err == nil {
		t.Fatal("RED nil rng accepted")
	}
	if _, err := NewDRR(0, 10); err == nil {
		t.Fatal("DRR zero quantum accepted")
	}
	if _, err := NewDRR(1000, 0); err == nil {
		t.Fatal("DRR zero limit accepted")
	}
}

// Property: a drop-tail queue never holds more than its limit and
// preserves FIFO order for accepted packets.
func TestDropTailProperty(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		lim := int(limit%16) + 1
		q := Must(NewDropTail(lim))
		var accepted, dequeued []uint64
		var next uint64
		for _, enq := range ops {
			if enq {
				p := pkt(next)
				next++
				if q.Enqueue(p, 0) {
					accepted = append(accepted, p.ID)
				}
			} else if p := q.Dequeue(); p != nil {
				dequeued = append(dequeued, p.ID)
			}
			if q.Len() > lim {
				return false
			}
		}
		for q.Len() > 0 {
			dequeued = append(dequeued, q.Dequeue().ID)
		}
		if len(dequeued) != len(accepted) {
			return false
		}
		for i := range accepted {
			if accepted[i] != dequeued[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestREDNoDropsBelowMinThreshold(t *testing.T) {
	cfg := PaperREDConfig()
	q := Must(NewRED(cfg, rand.New(rand.NewSource(1))))
	// With an empty queue the average stays near zero, so the first few
	// packets must always be accepted.
	for i := uint64(0); i < 4; i++ {
		if !q.Enqueue(pkt(i), 0) {
			t.Fatalf("packet %d dropped below min threshold", i)
		}
	}
	if q.EarlyDrops != 0 || q.ForcedDrops != 0 {
		t.Fatalf("drops below min threshold: early=%d forced=%d", q.EarlyDrops, q.ForcedDrops)
	}
}

func TestREDForcedDropAtLimit(t *testing.T) {
	cfg := PaperREDConfig()
	cfg.Limit = 5
	q := Must(NewRED(cfg, rand.New(rand.NewSource(1))))
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(pkt(i), 0)
	}
	if q.Enqueue(pkt(5), 0) {
		t.Fatal("packet accepted with full buffer")
	}
	if q.ForcedDrops != 1 {
		t.Fatalf("forced drops = %d, want 1", q.ForcedDrops)
	}
}

func TestREDEarlyDropsInRandomRegion(t *testing.T) {
	cfg := REDConfig{
		MinThreshold: 2,
		MaxThreshold: 10,
		MaxDropProb:  0.5,
		QueueWeight:  0.5, // fast-moving average for the test
		Limit:        100,
	}
	q := Must(NewRED(cfg, rand.New(rand.NewSource(1))))
	dropsBefore := q.EarlyDrops
	// Grow the queue so the average sits between the thresholds.
	for i := uint64(0); i < 50; i++ {
		q.Enqueue(pkt(i), 0)
	}
	if q.AvgQueue() <= cfg.MinThreshold {
		t.Fatalf("average queue %f did not exceed min threshold", q.AvgQueue())
	}
	if q.EarlyDrops == dropsBefore {
		t.Fatal("no early drops despite average above min threshold")
	}
}

func TestREDForcedDropAboveMaxThreshold(t *testing.T) {
	cfg := REDConfig{
		MinThreshold: 1,
		MaxThreshold: 3,
		MaxDropProb:  0.1,
		QueueWeight:  1, // average == instantaneous
		Limit:        100,
	}
	q := Must(NewRED(cfg, rand.New(rand.NewSource(1))))
	for i := uint64(0); i < 10; i++ {
		q.Enqueue(pkt(i), 0)
	}
	if q.Len() > 4 {
		t.Fatalf("queue grew to %d despite max threshold 3", q.Len())
	}
	if q.ForcedDrops == 0 {
		t.Fatal("no forced drops above max threshold")
	}
}

func TestREDAverageDecaysWhenIdle(t *testing.T) {
	cfg := PaperREDConfig()
	cfg.QueueWeight = 0.5
	q := Must(NewRED(cfg, rand.New(rand.NewSource(1))))
	for i := uint64(0); i < 20; i++ {
		q.Enqueue(pkt(i), 0)
	}
	grown := q.AvgQueue()
	for q.Len() > 0 {
		q.Dequeue()
	}
	q.MarkIdle(time.Second)
	// Re-enqueue long after the queue drained: the average must have
	// aged down.
	q.Enqueue(pkt(100), 10*time.Second)
	if q.AvgQueue() >= grown {
		t.Fatalf("average %f did not decay from %f after idle period", q.AvgQueue(), grown)
	}
}

func TestREDDeterministicForSeed(t *testing.T) {
	run := func() (uint64, uint64) {
		q := Must(NewRED(PaperREDConfig(), rand.New(rand.NewSource(9))))
		for i := uint64(0); i < 500; i++ {
			q.Enqueue(pkt(i), time.Duration(i)*time.Millisecond)
			if i%3 == 0 {
				q.Dequeue()
			}
		}
		return q.EarlyDrops, q.ForcedDrops
	}
	e1, f1 := run()
	e2, f2 := run()
	if e1 != e2 || f1 != f2 {
		t.Fatalf("RED not deterministic: (%d,%d) vs (%d,%d)", e1, f1, e2, f2)
	}
}

func TestPaperREDConfigMatchesTable4(t *testing.T) {
	cfg := PaperREDConfig()
	if cfg.MinThreshold != 5 || cfg.MaxThreshold != 20 {
		t.Fatalf("thresholds %v/%v, want 5/20", cfg.MinThreshold, cfg.MaxThreshold)
	}
	if cfg.MaxDropProb != 0.02 {
		t.Fatalf("maxp = %v, want 0.02", cfg.MaxDropProb)
	}
	if cfg.QueueWeight != 0.002 {
		t.Fatalf("wq = %v, want 0.002", cfg.QueueWeight)
	}
	if cfg.Limit != 25 {
		t.Fatalf("limit = %v, want 25", cfg.Limit)
	}
}
