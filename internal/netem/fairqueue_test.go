package netem

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func flowPkt(flow int, size int) *Packet {
	return &Packet{ID: NextID(), Flow: flow, Kind: Data, Size: size, Len: size}
}

func TestDRRSingleFlowFIFO(t *testing.T) {
	q := Must(NewDRR(1000, 10))
	var ids []uint64
	for i := 0; i < 5; i++ {
		p := flowPkt(1, 1000)
		ids = append(ids, p.ID)
		if !q.Enqueue(p, 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != ids[i] {
			t.Fatalf("dequeue %d out of order", i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty dequeue returned packet")
	}
}

func TestDRRInterleavesEqualFlows(t *testing.T) {
	q := Must(NewDRR(1000, 20))
	for i := 0; i < 4; i++ {
		q.Enqueue(flowPkt(1, 1000), 0)
	}
	for i := 0; i < 4; i++ {
		q.Enqueue(flowPkt(2, 1000), 0)
	}
	var order []int
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		order = append(order, p.Flow)
	}
	if len(order) != 8 {
		t.Fatalf("%d packets, want 8", len(order))
	}
	// With one-packet quanta the flows must alternate.
	for i := 2; i < len(order); i++ {
		if order[i] == order[i-1] && order[i] == order[i-2] {
			t.Fatalf("no interleaving: %v", order)
		}
	}
}

func TestDRRFavorsSmallPacketsByBytes(t *testing.T) {
	// Flow 1 sends 1000-byte packets, flow 2 sends 100-byte packets:
	// per round flow 2 should drain ~10 packets for each of flow 1's.
	q := Must(NewDRR(1000, 100))
	for i := 0; i < 10; i++ {
		q.Enqueue(flowPkt(1, 1000), 0)
	}
	for i := 0; i < 40; i++ {
		q.Enqueue(flowPkt(2, 100), 0)
	}
	small, big := 0, 0
	for i := 0; i < 22; i++ {
		p := q.Dequeue()
		if p == nil {
			break
		}
		if p.Flow == 1 {
			big++
		} else {
			small++
		}
	}
	if small < 5*big {
		t.Fatalf("byte fairness broken: %d small vs %d big packets served", small, big)
	}
}

func TestDRRLongestQueueDropProtectsSparseFlow(t *testing.T) {
	q := Must(NewDRR(1000, 10))
	// Flow 1 fills the buffer.
	for i := 0; i < 10; i++ {
		q.Enqueue(flowPkt(1, 1000), 0)
	}
	// A sparse flow's packet must still get in, evicting from flow 1.
	if !q.Enqueue(flowPkt(2, 40), 0) {
		t.Fatal("sparse flow's packet rejected despite longest-queue drop")
	}
	if q.Drops[1] != 1 {
		t.Fatalf("drops[1] = %d, want 1", q.Drops[1])
	}
	if q.FlowLen(2) != 1 {
		t.Fatal("sparse packet not queued")
	}
	if q.Len() != 10 {
		t.Fatalf("total = %d, want limit 10", q.Len())
	}
}

func TestDRRDropsOwnTailWhenLongest(t *testing.T) {
	q := Must(NewDRR(1000, 4))
	for i := 0; i < 4; i++ {
		q.Enqueue(flowPkt(1, 1000), 0)
	}
	if q.Enqueue(flowPkt(1, 1000), 0) {
		t.Fatal("longest flow's own packet accepted at limit")
	}
	if q.Drops[1] != 1 {
		t.Fatalf("drops[1] = %d, want 1", q.Drops[1])
	}
}

func TestDRRQuantumSmallerThanPacket(t *testing.T) {
	// Deficit must accumulate across rounds; no livelock.
	q := Must(NewDRR(100, 10))
	q.Enqueue(flowPkt(1, 1000), 0)
	p := q.Dequeue()
	if p == nil {
		t.Fatal("packet never served with sub-packet quantum")
	}
}

func TestDRRBehindLink(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	l := Must(NewLink(s, 0.8e6, time.Millisecond, Must(NewDRR(1000, 10)), sink))
	for i := 0; i < 3; i++ {
		l.Receive(flowPkt(1, 1000))
		l.Receive(flowPkt(2, 1000))
	}
	s.RunAll()
	if len(sink.pkts) != 6 {
		t.Fatalf("delivered %d, want 6", len(sink.pkts))
	}
}

func TestCBRRateAndSize(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	// 0.8 Mbps with 1000-byte packets = 100 packets/s.
	src := NewCBR(s, 7, 0.8e6, 1000, sink)
	if err := src.Start(0); err != nil {
		t.Fatalf("start: %v", err)
	}
	s.Run(time.Second)
	if n := len(sink.pkts); n < 99 || n > 102 {
		t.Fatalf("%d packets in 1s, want ~100", n)
	}
	if sink.pkts[0].Size != 1000 || sink.pkts[0].Flow != 7 {
		t.Fatalf("packet fields wrong: %+v", sink.pkts[0])
	}
}

func TestCBRStop(t *testing.T) {
	s := sim.NewScheduler(1)
	sink := &collector{sched: s}
	src := NewCBR(s, 7, 0.8e6, 1000, sink)
	if err := src.Start(0); err != nil {
		t.Fatalf("start: %v", err)
	}
	s.Run(100 * time.Millisecond)
	src.Stop()
	n := len(sink.pkts)
	s.Run(time.Second)
	if len(sink.pkts) > n+1 {
		t.Fatalf("CBR kept emitting after Stop: %d → %d", n, len(sink.pkts))
	}
}
