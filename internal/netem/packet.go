// Package netem models the network elements the paper's ns-2 scenarios
// use: packets, point-to-point links with transmission and propagation
// delay, finite-buffer FIFO (drop-tail) queues, RED queues, random and
// deterministic loss injectors, and the dumbbell topology of Figure 4.
package netem

import (
	"fmt"
	"sync/atomic"
)

// _idCounter hands out process-unique packet IDs for tracing.
var _idCounter atomic.Uint64

// NextID returns a fresh packet ID.
func NextID() uint64 { return _idCounter.Add(1) }

// SACKBlock describes one contiguous block of out-of-order data held at
// the receiver, reported in ACKs when the SACK option is enabled.
// Edges are byte sequence numbers: [Start, End).
type SACKBlock struct {
	Start int64
	End   int64
}

// PacketKind distinguishes data segments from acknowledgments.
type PacketKind int

// Packet kinds.
const (
	Data PacketKind = iota + 1
	Ack
)

// String implements fmt.Stringer for diagnostics.
func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// Packet is a simulated TCP segment or acknowledgment. Sequence fields
// are byte sequence numbers, as in a real TCP, though the simulations
// always use MSS-sized segments.
type Packet struct {
	// ID uniquely identifies the packet instance (retransmissions get
	// fresh IDs), for tracing.
	ID uint64
	// Flow identifies the connection the packet belongs to.
	Flow int
	// Kind says whether this is a data segment or an ACK.
	Kind PacketKind
	// Seq is the first byte carried (data) or is unused (ACK).
	Seq int64
	// Len is the number of payload bytes carried (data only).
	Len int
	// AckNo is the cumulative acknowledgment (ACK only): the next byte
	// the receiver expects.
	AckNo int64
	// SACK carries up to three selective-acknowledgment blocks.
	SACK []SACKBlock
	// Size is the wire size in bytes, used for transmission delay and
	// queue accounting.
	Size int
	// Retransmit marks retransmitted data segments, for tracing.
	Retransmit bool
}

// EndSeq returns the sequence number one past the last byte carried.
func (p *Packet) EndSeq() int64 { return p.Seq + int64(p.Len) }

// String implements fmt.Stringer for trace output.
func (p *Packet) String() string {
	if p.Kind == Ack {
		return fmt.Sprintf("ack{flow=%d ackno=%d sack=%v}", p.Flow, p.AckNo, p.SACK)
	}
	return fmt.Sprintf("data{flow=%d seq=%d len=%d rtx=%t}", p.Flow, p.Seq, p.Len, p.Retransmit)
}

// Node consumes packets. Links deliver to Nodes; queues, routers, TCP
// endpoints, and loss injectors all implement Node.
type Node interface {
	// Receive hands the node a packet. Ownership transfers to the node.
	Receive(p *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(p *Packet)

// Receive implements Node.
func (f NodeFunc) Receive(p *Packet) { f(p) }
