// Package netem models the network elements the paper's ns-2 scenarios
// use: packets, point-to-point links with transmission and propagation
// delay, finite-buffer FIFO (drop-tail) queues, RED queues, random and
// deterministic loss injectors, and the dumbbell topology of Figure 4.
package netem

import (
	"fmt"
	"sync/atomic"
)

// _idCounter hands out process-unique packet IDs for tracing.
var _idCounter atomic.Uint64

// NextID returns a fresh packet ID.
func NextID() uint64 { return _idCounter.Add(1) }

// SACKBlock describes one contiguous block of out-of-order data held at
// the receiver, reported in ACKs when the SACK option is enabled.
// Edges are byte sequence numbers: [Start, End).
type SACKBlock struct {
	Start int64
	End   int64
}

// PacketKind distinguishes data segments from acknowledgments.
type PacketKind int

// Packet kinds.
const (
	Data PacketKind = iota + 1
	Ack
)

// String implements fmt.Stringer for diagnostics.
func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// Packet is a simulated TCP segment or acknowledgment. Sequence fields
// are byte sequence numbers, as in a real TCP, though the simulations
// always use MSS-sized segments.
type Packet struct {
	// ID uniquely identifies the packet instance (retransmissions get
	// fresh IDs), for tracing.
	ID uint64
	// Flow identifies the connection the packet belongs to.
	Flow int
	// Kind says whether this is a data segment or an ACK.
	Kind PacketKind
	// Seq is the first byte carried (data) or is unused (ACK).
	Seq int64
	// Len is the number of payload bytes carried (data only).
	Len int
	// AckNo is the cumulative acknowledgment (ACK only): the next byte
	// the receiver expects.
	AckNo int64
	// SACK carries up to three selective-acknowledgment blocks.
	SACK []SACKBlock
	// Size is the wire size in bytes, used for transmission delay and
	// queue accounting.
	Size int
	// Retransmit marks retransmitted data segments, for tracing.
	Retransmit bool

	// pool, when non-nil, is where Release returns the packet.
	pool *PacketPool
}

// Release returns a pooled packet to its pool once its ownership chain
// ends (consumed by an endpoint, dropped by a queue or injector).
// Releasing a packet that did not come from a pool, or releasing twice,
// is a safe no-op — the first Release clears the pool backpointer.
// After Release the caller must not touch the packet or its SACK slice.
func (p *Packet) Release() {
	pp := p.pool
	if pp == nil {
		return
	}
	p.pool = nil
	pp.free = append(pp.free, p)
}

// Clone returns an independent copy of p with a fresh packet ID. The
// SACK blocks are deep-copied and the clone is detached from any pool,
// so the original can be released without invalidating the copy.
func (p *Packet) Clone() *Packet {
	c := *p
	c.pool = nil
	c.ID = NextID()
	if len(p.SACK) > 0 {
		c.SACK = append([]SACKBlock(nil), p.SACK...)
	}
	return &c
}

// PacketPool recycles Packet values through a free list so steady-state
// traffic allocates no packets. All Get/Release traffic happens on the
// single simulation goroutine, so the pool needs no locking; each
// topology owns one. The zero value and a nil pool are both usable (a
// nil pool's Get falls back to plain allocation), which keeps hand-built
// test fixtures working unchanged.
type PacketPool struct {
	free []*Packet

	// Gets counts Get calls and Hits the subset served from the free
	// list; Hits/Gets is the pool hit rate the benchmarks report.
	Gets uint64
	Hits uint64
}

// Get returns a zeroed packet owned by the pool. The packet's SACK
// slice keeps its recycled backing array (length 0), so appending
// blocks to it steady-state allocates nothing.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	pp.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.Hits++
		sack := p.SACK[:0]
		*p = Packet{SACK: sack, pool: pp}
		return p
	}
	return &Packet{pool: pp}
}

// HitRate reports the fraction of Gets served from the free list.
func (pp *PacketPool) HitRate() float64 {
	if pp == nil || pp.Gets == 0 {
		return 0
	}
	return float64(pp.Hits) / float64(pp.Gets)
}

// EndSeq returns the sequence number one past the last byte carried.
func (p *Packet) EndSeq() int64 { return p.Seq + int64(p.Len) }

// String implements fmt.Stringer for trace output.
func (p *Packet) String() string {
	if p.Kind == Ack {
		return fmt.Sprintf("ack{flow=%d ackno=%d sack=%v}", p.Flow, p.AckNo, p.SACK)
	}
	return fmt.Sprintf("data{flow=%d seq=%d len=%d rtx=%t}", p.Flow, p.Seq, p.Len, p.Retransmit)
}

// Node consumes packets. Links deliver to Nodes; queues, routers, TCP
// endpoints, and loss injectors all implement Node.
type Node interface {
	// Receive hands the node a packet. Ownership transfers to the node.
	Receive(p *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(p *Packet)

// Receive implements Node.
func (f NodeFunc) Receive(p *Packet) { f(p) }
