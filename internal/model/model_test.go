package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSqrtWindowKnownValues(t *testing.T) {
	// C/sqrt(p) with C = sqrt(3/2): at p = 0.01, W = 12.247.
	got := SqrtWindow(0.01, CAckEveryPacket)
	if math.Abs(got-12.247448713915889) > 1e-9 {
		t.Fatalf("W(0.01) = %v", got)
	}
	if !math.IsInf(SqrtWindow(0, CAckEveryPacket), 1) {
		t.Fatal("p=0 must give an infinite bound")
	}
}

func TestSqrtWindowMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.001, 0.01, 0.05, 0.1, 0.5} {
		w := SqrtWindow(p, CAckEveryPacket)
		if w >= prev {
			t.Fatalf("window not decreasing in p at %v", p)
		}
		prev = w
	}
}

func TestSqrtBandwidth(t *testing.T) {
	// BW = MSS*8 * W / RTT: 1000-byte MSS, 200 ms RTT, p=0.01 → ~490 Kbps.
	got := SqrtBandwidthBps(1000, 0.2, 0.01, CAckEveryPacket)
	want := 8000 * 12.247448713915889 / 0.2
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("BW = %v, want %v", got, want)
	}
	if SqrtBandwidthBps(1000, 0, 0.01, CAckEveryPacket) != 0 {
		t.Fatal("zero RTT must give 0")
	}
}

func TestConstants(t *testing.T) {
	if math.Abs(CAckEveryPacket-math.Sqrt(1.5)) > 1e-12 {
		t.Fatalf("CAckEveryPacket = %v, want sqrt(3/2)", CAckEveryPacket)
	}
	if math.Abs(CDelayedAck-math.Sqrt(0.75)) > 1e-12 {
		t.Fatalf("CDelayedAck = %v, want sqrt(3/4)", CDelayedAck)
	}
}

func TestPadhyeBelowSqrtModel(t *testing.T) {
	// The timeout term only subtracts throughput: Padhye ≤ Mathis
	// everywhere.
	for _, p := range []float64{0.001, 0.01, 0.05, 0.1} {
		mathis := SqrtWindow(p, CAckEveryPacket)
		padhye := PadhyeWindow(0.2, 1.0, p, 1)
		if padhye > mathis {
			t.Fatalf("Padhye %v above Mathis %v at p=%v", padhye, mathis, p)
		}
	}
}

func TestPadhyeTimeoutTermDominatesAtHighLoss(t *testing.T) {
	// At 10% loss with a 1 s RTO the prediction collapses well below
	// the sqrt bound.
	mathis := SqrtWindow(0.1, CAckEveryPacket)
	padhye := PadhyeWindow(0.2, 1.0, 0.1, 1)
	if padhye > mathis/2 {
		t.Fatalf("Padhye %v not far below Mathis %v at p=0.1", padhye, mathis)
	}
}

func TestPadhyeEdgeCases(t *testing.T) {
	if PadhyeThroughputPps(0.2, 1, 0, 1) != 0 {
		t.Fatal("p=0 must give 0 (undefined regime)")
	}
	if PadhyeThroughputPps(0, 1, 0.01, 1) != 0 {
		t.Fatal("rtt=0 must give 0")
	}
}

func TestPadhyeConvergesToSqrtAtLowLoss(t *testing.T) {
	// As p→0 the timeout term vanishes; ratio → 1.
	p := 1e-6
	mathis := SqrtWindow(p, CAckEveryPacket)
	padhye := PadhyeWindow(0.2, 1.0, p, 1)
	if r := padhye / mathis; r < 0.95 {
		t.Fatalf("Padhye/Mathis = %v at p=1e-6, want →1", r)
	}
}

// Property: both models are positive and decreasing in p on (0, 0.5].
func TestModelsMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := 0.0005 + float64(a%1000)/2000*0.4
		p2 := 0.0005 + float64(b%1000)/2000*0.4
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if p1 == p2 {
			return true
		}
		m1, m2 := SqrtWindow(p1, CAckEveryPacket), SqrtWindow(p2, CAckEveryPacket)
		d1, d2 := PadhyeWindow(0.2, 1, p1, 1), PadhyeWindow(0.2, 1, p2, 1)
		return m1 > m2 && m2 > 0 && d1 > d2 && d2 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
