// Package model provides the analytic TCP throughput models the paper
// uses in Section 4: the square-root ("macroscopic") model of Mathis,
// Semke, Mahdavi & Ott (1997), which upper-bounds steady-state
// congestion-avoidance throughput as a function of loss rate and RTT,
// and the refinement of Padhye, Firoiu, Towsley & Kurose (1998) that
// also captures retransmission timeouts.
package model

import "math"

// CAckEveryPacket is the Mathis constant C = sqrt(3/2) for a receiver
// that acknowledges every data packet — the configuration of the
// paper's Figure 7 experiment.
const CAckEveryPacket = 1.2247448713915890

// CDelayedAck is the constant C = sqrt(3/4) for a receiver that
// acknowledges every other packet.
const CDelayedAck = 0.8660254037844386

// SqrtWindow returns the square-root model's upper bound on the mean
// congestion window in packets: W = C / sqrt(p). This is the quantity
// BW*RTT/MSS plotted on the y-axis of Figure 7.
func SqrtWindow(p, c float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return c / math.Sqrt(p)
}

// SqrtBandwidthBps returns the model's throughput bound in bits per
// second: BW = (MSS * C) / (RTT * sqrt(p)).
func SqrtBandwidthBps(mssBytes int, rttSeconds, p, c float64) float64 {
	if rttSeconds <= 0 {
		return 0
	}
	return float64(mssBytes*8) * SqrtWindow(p, c) / rttSeconds
}

// PadhyeThroughputPps returns the Padhye et al. steady-state throughput
// in packets per second, including the timeout term:
//
//	B(p) = 1 / ( RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p²) )
//
// where b is the number of packets acknowledged per ACK (1 here) and T0
// is the base retransmission timeout in seconds.
func PadhyeThroughputPps(rttSeconds, t0Seconds, p float64, b int) float64 {
	if p <= 0 || rttSeconds <= 0 {
		return 0
	}
	fb := float64(b)
	denom := rttSeconds*math.Sqrt(2*fb*p/3) +
		t0Seconds*math.Min(1, 3*math.Sqrt(3*fb*p/8))*p*(1+32*p*p)
	if denom <= 0 {
		return 0
	}
	return 1 / denom
}

// PadhyeWindow converts the Padhye throughput to a window in packets
// (throughput × RTT), for plotting on the same axes as SqrtWindow.
func PadhyeWindow(rttSeconds, t0Seconds, p float64, b int) float64 {
	return PadhyeThroughputPps(rttSeconds, t0Seconds, p, b) * rttSeconds
}
