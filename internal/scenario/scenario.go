// Package scenario loads and runs user-described simulations from JSON
// files: topology, queue disciplines, loss injection, and a list of
// flows. It is the glue that lets rrsim run arbitrary experiments
// beyond the paper's fixed tables and figures.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/workload"
)

// Duration wraps time.Duration with JSON encoding as a string ("50ms").
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler; accepts "50ms" strings or
// raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"50ms\" or nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// QueueSpec selects a queue discipline.
type QueueSpec struct {
	// Type is "droptail" (default), "red", or "drr".
	Type string `json:"type"`
	// Limit is the buffer size in packets.
	Limit int `json:"limit"`
	// Quantum is the DRR byte quantum (drr only; default 1000).
	Quantum int `json:"quantum,omitempty"`
	// RED overrides the Table 4 parameters (red only).
	RED *netem.REDConfig `json:"red,omitempty"`
}

func (q *QueueSpec) build(sched *sim.Scheduler) (netem.QueueDiscipline, error) {
	limit := q.Limit
	if limit < 0 {
		return nil, fmt.Errorf("scenario: negative queue limit %d", limit)
	}
	if limit == 0 {
		limit = 8 // unset: the Table 3 default
	}
	switch q.Type {
	case "", "droptail", "fifo":
		return netem.NewDropTail(limit)
	case "red":
		cfg := netem.PaperREDConfig()
		if q.RED != nil {
			cfg = *q.RED
		}
		cfg.Limit = limit
		return netem.NewRED(cfg, sched.Rand())
	case "drr":
		quantum := q.Quantum
		if quantum < 0 {
			return nil, fmt.Errorf("scenario: negative DRR quantum %d", quantum)
		}
		if quantum == 0 {
			quantum = 1000
		}
		return netem.NewDRR(quantum, limit)
	default:
		return nil, fmt.Errorf("scenario: unknown queue type %q", q.Type)
	}
}

// TopologySpec describes the dumbbell.
type TopologySpec struct {
	Flows           int        `json:"flows"`
	BottleneckBps   float64    `json:"bottleneckBps"`
	BottleneckDelay Duration   `json:"bottleneckDelay"`
	SideBps         float64    `json:"sideBps"`
	SideDelay       Duration   `json:"sideDelay"`
	ForwardQueue    *QueueSpec `json:"forwardQueue,omitempty"`
	ReverseQueue    *QueueSpec `json:"reverseQueue,omitempty"`
}

// LossSpec describes loss injection at the forward bottleneck.
type LossSpec struct {
	// Rate enables uniform random loss.
	Rate float64 `json:"rate,omitempty"`
	// DropAcks extends random loss to ACKs.
	DropAcks bool `json:"dropAcks,omitempty"`
	// BurstLength, when > 1 together with Rate, switches to a
	// Gilbert-Elliott channel with the given mean loss-burst length at
	// the same stationary rate.
	BurstLength float64 `json:"burstLength,omitempty"`
	// Drops lists deterministic per-flow packet-number drops.
	Drops []FlowDrops `json:"drops,omitempty"`
}

// FlowDrops pins deterministic losses for one flow.
type FlowDrops struct {
	Flow    int     `json:"flow"`
	Packets []int64 `json:"packets"`
	// Retransmits lists packet numbers whose first retransmission is
	// also dropped.
	Retransmits []int64 `json:"retransmits,omitempty"`
}

// FlowSpec describes one connection.
type FlowSpec struct {
	// Kind is the variant name ("rr", "newreno", ...).
	Kind string `json:"kind"`
	// Bytes bounds the transfer; 0 or -1 means unbounded.
	Bytes int64 `json:"bytes,omitempty"`
	// Packets is an alternative to Bytes, in 1000-byte packets.
	Packets int64 `json:"packets,omitempty"`
	// StartAt delays the flow's first transmission.
	StartAt Duration `json:"startAt,omitempty"`
	// Window is the advertised window in packets.
	Window int `json:"window,omitempty"`
	// SSThresh overrides the initial slow-start threshold.
	SSThresh float64 `json:"ssthresh,omitempty"`
	// DelayedAck enables RFC 1122 delayed ACKs at the receiver.
	DelayedAck bool `json:"delayedAck,omitempty"`
	// SmoothStart enables the [21] slow-start refinement.
	SmoothStart bool `json:"smoothStart,omitempty"`
	// Reverse sends the flow's data across the bottleneck backwards.
	Reverse bool `json:"reverse,omitempty"`
}

// Spec is a complete scenario file.
type Spec struct {
	// Name labels the run.
	Name string `json:"name,omitempty"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Duration bounds the simulation.
	Duration Duration `json:"duration"`
	// Topology describes the dumbbell (defaults to paper Table 3).
	Topology *TopologySpec `json:"topology,omitempty"`
	// Loss configures loss injection.
	Loss *LossSpec `json:"loss,omitempty"`
	// Flows lists the connections.
	Flows []FlowSpec `json:"flows"`
	// Telemetry, when non-nil, receives structured events from every
	// flow plus the instrumented bottleneck links, queues, and loss
	// injector. Set programmatically (e.g. by rrsim -events); not part
	// of the JSON schema.
	Telemetry *telemetry.Bus `json:"-"`
	// SampleEvery enables the periodic gauge Sampler (per-flow window
	// and RTT state plus bottleneck occupancy) at the given sim-time
	// interval when Telemetry is enabled; 0 keeps sampling off. Set
	// programmatically (e.g. by rrsim -trace-out).
	SampleEvery sim.Time `json:"-"`
}

// FlowReport is one flow's outcome.
type FlowReport struct {
	Flow        int      `json:"flow"`
	Kind        string   `json:"kind"`
	Reverse     bool     `json:"reverse,omitempty"`
	GoodputBps  float64  `json:"goodputBps"`
	BytesAcked  int64    `json:"bytesAcked"`
	Retransmits uint64   `json:"retransmits"`
	Timeouts    uint64   `json:"timeouts"`
	Finished    bool     `json:"finished"`
	Delay       Duration `json:"transferDelay,omitempty"`
}

// Report is the scenario outcome.
type Report struct {
	Name            string       `json:"name,omitempty"`
	DurationSeconds float64      `json:"durationSeconds"`
	BottleneckDrops uint64       `json:"bottleneckDrops"`
	Flows           []FlowReport `json:"flows"`
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// LoadFile parses a scenario from a file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate checks the spec for obvious mistakes.
func (s *Spec) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("scenario: at least one flow required")
	}
	for i, f := range s.Flows {
		if _, err := workload.ParseKind(f.Kind); err != nil {
			return fmt.Errorf("scenario: flow %d: %w", i, err)
		}
	}
	if s.Topology != nil {
		if s.Topology.Flows > 0 && s.Topology.Flows < len(s.Flows) {
			return fmt.Errorf("scenario: topology has %d slots for %d flows",
				s.Topology.Flows, len(s.Flows))
		}
		if s.Topology.BottleneckBps < 0 || s.Topology.SideBps < 0 {
			return fmt.Errorf("scenario: negative bandwidth")
		}
	}
	if s.Loss != nil && (s.Loss.Rate < 0 || s.Loss.Rate > 1) {
		return fmt.Errorf("scenario: loss rate %v outside [0,1]", s.Loss.Rate)
	}
	return nil
}

// Run executes the scenario and returns its report.
func (s *Spec) Run() (*Report, error) {
	return s.RunWithTrace(nil)
}

// RunWithTrace executes the scenario and additionally streams flow 0's
// event trace as CSV to w (when non-nil).
func (s *Spec) RunWithTrace(w io.Writer) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	sched := sim.NewScheduler(seed)

	dcfg := netem.PaperDropTailConfig(len(s.Flows))
	if t := s.Topology; t != nil {
		if t.Flows > 0 {
			dcfg.Flows = t.Flows
		}
		if t.BottleneckBps > 0 {
			dcfg.BottleneckBps = t.BottleneckBps
		}
		if t.BottleneckDelay > 0 {
			dcfg.BottleneckDelay = time.Duration(t.BottleneckDelay)
		}
		if t.SideBps > 0 {
			dcfg.SideBps = t.SideBps
		}
		if t.SideDelay > 0 {
			dcfg.SideDelay = time.Duration(t.SideDelay)
		}
		if t.ForwardQueue != nil {
			q, err := t.ForwardQueue.build(sched)
			if err != nil {
				return nil, err
			}
			dcfg.ForwardQueue = q
		}
		if t.ReverseQueue != nil {
			q, err := t.ReverseQueue.build(sched)
			if err != nil {
				return nil, err
			}
			dcfg.ReverseQueue = q
		}
	}
	if l := s.Loss; l != nil {
		switch {
		case l.Rate > 0 && l.BurstLength > 1:
			pB2G := 1 / l.BurstLength
			pG2B := l.Rate * pB2G / (1 - l.Rate)
			dcfg.Loss = netem.NewGilbertLoss(pG2B, pB2G, 1.0, sched.Rand(), nil)
		case l.Rate > 0:
			u := netem.NewUniformLoss(l.Rate, sched.Rand(), nil)
			u.DropAcks = l.DropAcks
			dcfg.Loss = u
		case len(l.Drops) > 0:
			sl := netem.NewSeqLoss(nil)
			for _, fd := range l.Drops {
				for _, pk := range fd.Packets {
					sl.Drop(fd.Flow, pk*int64(tcp.DefaultMSS))
				}
				for _, pk := range fd.Retransmits {
					sl.DropRetransmit(fd.Flow, pk*int64(tcp.DefaultMSS))
				}
			}
			dcfg.Loss = sl
		}
	}

	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return nil, err
	}
	if s.Telemetry.Enabled() {
		d.Instrument(s.Telemetry)
		telemetry.AttachSchedulerProfile(sched, s.Telemetry, 4096)
	}

	flows := make([]*workload.Flow, 0, len(s.Flows))
	for i, fs := range s.Flows {
		kind, err := workload.ParseKind(fs.Kind)
		if err != nil {
			return nil, err
		}
		bytes := fs.Bytes
		if fs.Packets > 0 {
			bytes = fs.Packets * int64(tcp.DefaultMSS)
		}
		if bytes == 0 {
			bytes = tcp.Infinite
		}
		spec := workload.FlowSpec{
			Kind:            kind,
			Bytes:           bytes,
			StartAt:         time.Duration(fs.StartAt),
			Window:          fs.Window,
			InitialSSThresh: fs.SSThresh,
			DelayedAck:      fs.DelayedAck,
			SmoothStart:     fs.SmoothStart,
			Telemetry:       s.Telemetry,
		}
		var flow *workload.Flow
		if fs.Reverse {
			flow, err = workload.InstallReverse(sched, d, i, spec)
		} else {
			flow, err = workload.Install(sched, d, i, spec)
		}
		if err != nil {
			return nil, err
		}
		flows = append(flows, flow)
	}

	if s.SampleEvery > 0 {
		sampler := telemetry.NewSampler(sched, s.Telemetry, s.SampleEvery)
		for i, flow := range flows {
			sampler.AddFlow(int32(i), flow.Sender)
		}
		sampler.AddInstance(telemetry.CompQueue, "fwd", d.BottleneckQueue())
		sampler.Start()
	}

	sched.Run(time.Duration(s.Duration))

	if w != nil && len(flows) > 0 {
		if err := flows[0].Trace.WriteCSV(w); err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Name:            s.Name,
		DurationSeconds: time.Duration(s.Duration).Seconds(),
		BottleneckDrops: d.BottleneckQueue().Drops,
	}
	for i, flow := range flows {
		fr := FlowReport{
			Flow:        i,
			Kind:        flow.Spec.Kind.String(),
			Reverse:     s.Flows[i].Reverse,
			GoodputBps:  flow.Trace.GoodputBps(0, time.Duration(s.Duration)),
			BytesAcked:  flow.Trace.BytesAcked,
			Retransmits: flow.Trace.Retransmits,
			Timeouts:    flow.Trace.Timeouts,
		}
		if delay, ok := flow.Trace.TransferDelay(); ok {
			fr.Finished = true
			fr.Delay = Duration(delay)
			// For finished transfers, goodput over the transfer itself is
			// the meaningful figure, not over the whole horizon.
			if delay > 0 {
				fr.GoodputBps = float64(fr.BytesAcked) * 8 / time.Duration(delay).Seconds()
			}
		}
		rep.Flows = append(rep.Flows, fr)
	}
	return rep, nil
}

// RenderText formats the report as an aligned table.
func (r *Report) RenderText() string {
	out := fmt.Sprintf("scenario %q: %.1fs simulated, %d bottleneck drops\n",
		r.Name, r.DurationSeconds, r.BottleneckDrops)
	out += fmt.Sprintf("%-5s %-10s %-8s %-12s %-12s %-5s %-9s %s\n",
		"flow", "kind", "dir", "goodput", "acked", "rtx", "timeouts", "delay")
	for _, f := range r.Flows {
		dir := "fwd"
		if f.Reverse {
			dir = "rev"
		}
		delay := "-"
		if f.Finished {
			delay = time.Duration(f.Delay).String()
		}
		out += fmt.Sprintf("%-5d %-10s %-8s %-12s %-12d %-5d %-9d %s\n",
			f.Flow, f.Kind, dir, fmt.Sprintf("%.1fKbps", f.GoodputBps/1000),
			f.BytesAcked, f.Retransmits, f.Timeouts, delay)
	}
	return out
}
