package scenario

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestExampleScenariosRoundTrip loads every shipped example scenario
// and requires the spec to survive a marshal → load → marshal cycle
// byte-identically: the JSON schema has no lossy or one-way fields.
func TestExampleScenariosRoundTrip(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := LoadFile(path)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			first, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			reloaded, err := Load(bytes.NewReader(first))
			if err != nil {
				t.Fatalf("reload marshalled spec: %v", err)
			}
			second, err := json.Marshal(reloaded)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", first, second)
			}
		})
	}
}
