package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const sampleScenario = `{
  "name": "burst loss demo",
  "seed": 3,
  "duration": "30s",
  "topology": {
    "flows": 2,
    "bottleneckBps": 800000,
    "bottleneckDelay": "50ms",
    "sideBps": 10000000,
    "sideDelay": "1ms",
    "forwardQueue": {"type": "droptail", "limit": 8}
  },
  "loss": {
    "drops": [{"flow": 0, "packets": [60, 61, 62]}]
  },
  "flows": [
    {"kind": "rr", "packets": 150, "window": 18, "ssthresh": 9},
    {"kind": "newreno", "window": 18, "startAt": "100ms"}
  ]
}`

func TestLoadAndRun(t *testing.T) {
	spec, err := Load(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if spec.Name != "burst loss demo" || spec.Seed != 3 {
		t.Fatalf("header wrong: %+v", spec)
	}
	if time.Duration(spec.Duration) != 30*time.Second {
		t.Fatalf("duration = %v", spec.Duration)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Flows) != 2 {
		t.Fatalf("%d flow reports, want 2", len(rep.Flows))
	}
	rr := rep.Flows[0]
	if !rr.Finished {
		t.Fatal("finite RR flow did not finish")
	}
	if rr.Retransmits == 0 {
		t.Fatal("engineered drops produced no retransmissions")
	}
	if rep.Flows[1].Finished {
		t.Fatal("unbounded flow reported finished")
	}
	if rep.Flows[1].BytesAcked == 0 {
		t.Fatal("background flow moved no data")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		spec, err := Load(strings.NewReader(sampleScenario))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		rep, err := spec.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("non-deterministic reports:\n%s\n%s", aj, bj)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil {
		t.Fatalf("string form: %v", err)
	}
	if time.Duration(d) != 150*time.Millisecond {
		t.Fatalf("d = %v", d)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil {
		t.Fatalf("numeric form: %v", err)
	}
	if time.Duration(d) != time.Millisecond {
		t.Fatalf("d = %v", d)
	}
	out, err := json.Marshal(Duration(2 * time.Second))
	if err != nil || string(out) != `"2s"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
	if err := json.Unmarshal([]byte(`{}`), &d); err == nil {
		t.Fatal("object duration accepted")
	}
}

func TestValidation(t *testing.T) {
	cases := map[string]string{
		"no duration":    `{"flows":[{"kind":"rr"}]}`,
		"no flows":       `{"duration":"1s"}`,
		"bad kind":       `{"duration":"1s","flows":[{"kind":"cubic"}]}`,
		"too few slots":  `{"duration":"1s","topology":{"flows":1},"flows":[{"kind":"rr"},{"kind":"rr"}]}`,
		"bad loss rate":  `{"duration":"1s","loss":{"rate":1.5},"flows":[{"kind":"rr"}]}`,
		"unknown field":  `{"duration":"1s","bogus":1,"flows":[{"kind":"rr"}]}`,
		"negative bw":    `{"duration":"1s","topology":{"bottleneckBps":-1},"flows":[{"kind":"rr"}]}`,
		"bad queue type": `{"duration":"1s","topology":{"forwardQueue":{"type":"codel"}},"flows":[{"kind":"rr"}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			spec, err := Load(strings.NewReader(in))
			if err != nil {
				return // rejected at load: fine
			}
			if _, err := spec.Run(); err == nil {
				t.Fatalf("invalid scenario accepted: %s", in)
			}
		})
	}
}

func TestQueueSpecTypes(t *testing.T) {
	run := func(qtype string) error {
		in := `{"duration":"2s","topology":{"forwardQueue":{"type":"` + qtype + `","limit":10}},"flows":[{"kind":"rr","packets":20,"window":8}]}`
		spec, err := Load(strings.NewReader(in))
		if err != nil {
			return err
		}
		_, err = spec.Run()
		return err
	}
	for _, qtype := range []string{"droptail", "fifo", "red", "drr"} {
		if err := run(qtype); err != nil {
			t.Fatalf("%s: %v", qtype, err)
		}
	}
}

func TestReverseFlowScenario(t *testing.T) {
	in := `{
	  "duration": "10s",
	  "flows": [
	    {"kind": "rr", "packets": 50, "window": 18},
	    {"kind": "reno", "reverse": true, "window": 18}
	  ]
	}`
	spec, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Flows[0].Finished {
		t.Fatal("forward transfer did not finish")
	}
	if !rep.Flows[1].Reverse || rep.Flows[1].BytesAcked == 0 {
		t.Fatalf("reverse flow idle: %+v", rep.Flows[1])
	}
}

func TestUniformLossScenario(t *testing.T) {
	in := `{
	  "duration": "20s",
	  "loss": {"rate": 0.02},
	  "flows": [{"kind": "sack", "window": 32}]
	}`
	spec, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Flows[0].Retransmits == 0 {
		t.Fatal("2% random loss produced no retransmissions")
	}
}

func TestRenderText(t *testing.T) {
	spec, err := Load(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := rep.RenderText()
	for _, want := range []string{"burst loss demo", "rr", "newreno", "fwd"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGilbertLossScenario(t *testing.T) {
	in := `{
	  "duration": "30s",
	  "loss": {"rate": 0.02, "burstLength": 6},
	  "flows": [{"kind": "rr", "window": 32}]
	}`
	spec, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := spec.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Flows[0].Retransmits == 0 {
		t.Fatal("bursty channel produced no retransmissions")
	}
}
