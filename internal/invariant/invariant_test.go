package invariant

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
)

// fakeSender is a scriptable Probe: tests mutate its fields and emit
// events to drive the checker.
type fakeSender struct {
	flow     int
	done     bool
	una, nxt int64
	max      int64
	cwnd     float64
	ssthresh float64
	window   int
	total    int64
	backoff  uint
	armed    bool
}

func (f *fakeSender) Flow() int          { return f.flow }
func (f *fakeSender) Done() bool         { return f.done }
func (f *fakeSender) SndUna() int64      { return f.una }
func (f *fakeSender) SndNxt() int64      { return f.nxt }
func (f *fakeSender) MaxSeq() int64      { return f.max }
func (f *fakeSender) Cwnd() float64      { return f.cwnd }
func (f *fakeSender) Ssthresh() float64  { return f.ssthresh }
func (f *fakeSender) Window() int        { return f.window }
func (f *fakeSender) FlightPackets() int { return int(f.nxt-f.una) / 1000 }
func (f *fakeSender) TotalBytes() int64  { return f.total }
func (f *fakeSender) RTOBackoff() uint   { return f.backoff }
func (f *fakeSender) TimerArmed() bool   { return f.armed }

var _ Probe = (*fakeSender)(nil)

// fakeRecovery is a scriptable RecoveryProbe.
type fakeRecovery struct {
	recovery, probe bool
	actnum, ndup    int
}

func (f *fakeRecovery) InRecovery() bool { return f.recovery }
func (f *fakeRecovery) InProbe() bool    { return f.probe }
func (f *fakeRecovery) Actnum() int      { return f.actnum }
func (f *fakeRecovery) Ndup() int        { return f.ndup }

func healthyFake() *fakeSender {
	return &fakeSender{
		una: 10 * 1000, nxt: 14 * 1000, max: 20 * 1000,
		cwnd: 4, ssthresh: 8, window: 24, total: tcp.Infinite,
		armed: true,
	}
}

// rig wires a checker to a bus and a fake sender.
func rig(t *testing.T) (*sim.Scheduler, *Checker, *fakeSender) {
	t.Helper()
	sched := sim.NewScheduler(1)
	bus := telemetry.NewBus()
	c := NewChecker(sched, bus)
	bus.Subscribe(c)
	f := healthyFake()
	c.Watch(f)
	return sched, c, f
}

func emit(c *Checker, kind telemetry.Kind) {
	c.Emit(telemetry.Event{Comp: telemetry.CompSender, Kind: kind, Flow: 0})
}

func rules(c *Checker) []string {
	var out []string
	for _, v := range c.Violations() {
		out = append(out, v.Rule)
	}
	return out
}

func wantRule(t *testing.T, c *Checker, rule string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("rule %q not reported; got %v", rule, rules(c))
}

func TestHealthyStateIsQuiet(t *testing.T) {
	_, c, _ := rig(t)
	for _, k := range []telemetry.Kind{telemetry.KSend, telemetry.KAck, telemetry.KCwnd} {
		emit(c, k)
	}
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("healthy sender flagged: %v", got)
	}
}

func TestSeqOrderRules(t *testing.T) {
	_, c, f := rig(t)
	f.nxt = f.una - 1000 // nxt behind una
	emit(c, telemetry.KAck)
	wantRule(t, c, "seq-order")
}

func TestUnaRegress(t *testing.T) {
	_, c, f := rig(t)
	emit(c, telemetry.KAck)
	f.una -= 1000
	f.nxt = f.una + 4000
	emit(c, telemetry.KAck)
	wantRule(t, c, "una-regress")
}

func TestSeqOverrun(t *testing.T) {
	_, c, f := rig(t)
	f.total = 15 * 1000
	f.max = 16 * 1000
	emit(c, telemetry.KSend)
	wantRule(t, c, "seq-overrun")
}

func TestWindowBounds(t *testing.T) {
	_, c, f := rig(t)
	f.cwnd = float64(f.window) + 1
	emit(c, telemetry.KCwnd)
	wantRule(t, c, "cwnd-bounds")
	f.cwnd = 4
	f.ssthresh = 1
	emit(c, telemetry.KCwnd)
	wantRule(t, c, "ssthresh-floor")
}

func TestFlightRules(t *testing.T) {
	_, c, f := rig(t)
	// Overshoot without any loss episode: flagged.
	f.nxt = f.una + int64(f.window+1)*1000
	f.max = f.nxt
	emit(c, telemetry.KSend)
	wantRule(t, c, "flight-window")

	// Same overshoot during a loss episode: tolerated up to 2x window.
	_, c2, f2 := rig(t)
	emit(c2, telemetry.KDupAck)
	f2.nxt = f2.una + int64(f2.window+1)*1000
	f2.max = f2.nxt
	emit(c2, telemetry.KSend)
	if len(c2.Violations()) != 0 {
		t.Fatalf("dup-ACK overshoot flagged: %v", rules(c2))
	}
	// But past the hard sanity bound it is not.
	f2.nxt = f2.una + int64(2*f2.window+1)*1000
	f2.max = f2.nxt
	emit(c2, telemetry.KSend)
	wantRule(t, c2, "flight-bounds")
}

func TestBackoffNeedsTimeout(t *testing.T) {
	_, c, f := rig(t)
	f.backoff = 1
	emit(c, telemetry.KAck)
	wantRule(t, c, "backoff-no-timeout")

	// With the timeout observed at the same instant, growth is fine.
	_, c2, f2 := rig(t)
	emit(c2, telemetry.KTimeout)
	f2.backoff = 1
	emit(c2, telemetry.KRetransmit)
	for _, v := range c2.Violations() {
		if v.Rule == "backoff-no-timeout" {
			t.Fatalf("legitimate backoff flagged: %v", v)
		}
	}
}

func TestRetransmitRules(t *testing.T) {
	_, c, f := rig(t)
	c.Emit(telemetry.Event{Comp: telemetry.CompSender, Kind: telemetry.KRetransmit, Flow: 0, Seq: f.una - 1000})
	wantRule(t, c, "rtx-below-una")
	c.Emit(telemetry.Event{Comp: telemetry.CompSender, Kind: telemetry.KRetransmit, Flow: 0, Seq: f.max})
	wantRule(t, c, "rtx-unsent")
}

func TestActnumRules(t *testing.T) {
	_, c, f := rig(t)
	r := &fakeRecovery{}
	c.WatchRecovery(f.flow, r)

	// Nonzero actnum outside recovery.
	r.actnum = 3
	emit(c, telemetry.KAck)
	wantRule(t, c, "actnum-open")

	// Actnum beyond the advertised window.
	_, c2, f2 := rig(t)
	r2 := &fakeRecovery{recovery: true, actnum: f2.window + 1}
	c2.WatchRecovery(f2.flow, r2)
	emit(c2, telemetry.KAck)
	wantRule(t, c2, "actnum-bounds")
}

func TestRecoveryCwndFrozen(t *testing.T) {
	_, c, f := rig(t)
	r := &fakeRecovery{}
	c.WatchRecovery(f.flow, r)
	emit(c, telemetry.KRecoveryEnter)
	r.recovery = true
	r.actnum = 2
	f.cwnd = 6 // drifted away from the entry value without a timeout
	emit(c, telemetry.KCwnd)
	wantRule(t, c, "recovery-cwnd-touched")
}

func TestViolationsDeduplicatedAndPublished(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := telemetry.NewRing(16)
	bus := telemetry.NewBus(ring)
	c := NewChecker(sched, bus)
	bus.Subscribe(c)
	f := healthyFake()
	c.Watch(f)

	var cb int
	c.OnViolation = func(Violation) { cb++ }
	f.ssthresh = 1
	emit(c, telemetry.KCwnd)
	emit(c, telemetry.KCwnd)
	emit(c, telemetry.KCwnd)
	if len(c.Violations()) != 1 || cb != 1 {
		t.Fatalf("dedup failed: %d violations, %d callbacks", len(c.Violations()), cb)
	}
	if got := ring.EventsOf(telemetry.KViolation); len(got) != 1 {
		t.Fatalf("%d violation events on the bus, want 1", len(got))
	}
}

func TestWatchdogStallNoTimer(t *testing.T) {
	sched := sim.NewScheduler(1)
	bus := telemetry.NewBus()
	c := NewChecker(sched, bus)
	bus.Subscribe(c)
	f := healthyFake()
	f.armed = false // data outstanding but no timer: deadlock
	c.Watch(f)
	emit(c, telemetry.KSend) // activates the flow
	if err := c.StartWatchdog(0, sim.Time(2*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Time(10 * time.Second))
	wantRule(t, c, "stall-no-timer")
}

func TestWatchdogHardStall(t *testing.T) {
	sched := sim.NewScheduler(1)
	bus := telemetry.NewBus()
	c := NewChecker(sched, bus)
	bus.Subscribe(c)
	f := healthyFake()
	c.Watch(f)
	emit(c, telemetry.KSend)
	if err := c.StartWatchdog(0, 0, sim.Time(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Time(60 * time.Second))
	wantRule(t, c, "stall")
}

func TestWatchdogQuietWhileProgressing(t *testing.T) {
	sched := sim.NewScheduler(1)
	bus := telemetry.NewBus()
	c := NewChecker(sched, bus)
	bus.Subscribe(c)
	f := healthyFake()
	c.Watch(f)
	// Steady progress: una advances every 100 ms for 20 s.
	for i := 0; i < 200; i++ {
		i := i
		if _, err := sched.Schedule(sim.Time(time.Duration(i)*100*time.Millisecond), func() {
			f.una += 1000
			f.nxt = f.una + 4000
			f.max = f.nxt
			c.Emit(telemetry.Event{At: sched.Now(), Comp: telemetry.CompSender, Kind: telemetry.KAck, Flow: 0})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StartWatchdog(0, sim.Time(2*time.Second), sim.Time(15*time.Second)); err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Time(20 * time.Second))
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("progressing flow flagged: %v", got)
	}
	// A finished flow is never flagged, however long the run idles.
	f.done = true
	sched.Run(sim.Time(120 * time.Second))
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("finished flow flagged: %v", got)
	}
}

func TestWatchdogValidatesParams(t *testing.T) {
	sched := sim.NewScheduler(1)
	c := NewChecker(sched, telemetry.NewBus())
	if err := c.StartWatchdog(sim.Time(-1), 0, 0); err == nil {
		t.Fatal("negative interval accepted")
	}
}
