package invariant

import (
	"testing"
	"time"

	"rrtcp/internal/guard"
	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// These tests pin down the division of labor between the two wedge
// detectors: invariant.StartWatchdog observes stalls in runs whose
// simulated clock still advances, while guard.Limits.StormEvents is the
// only detector that can end an event storm at a frozen clock (the
// watchdog's own ticks are sim-time scheduled and never fire there).
// Whichever detector applies, a run must end with exactly one typed
// degradation cause, the same one every run.

// wedgeWinner runs a wedged sender under both detectors and reports
// which typed error decided the run, using the same priority the stress
// cells apply: a guard trip explains the early stop and wins; otherwise
// a liveness stall degrades the run.
func wedgeWinner(t *testing.T, limits guard.Limits, frozenClock bool) (string, *guard.OverloadError, *StallError) {
	t.Helper()
	sched := sim.NewScheduler(1)
	bus := telemetry.NewBus()
	c := NewChecker(sched, bus)
	bus.Subscribe(c)

	// A wedged sender: active (one event observed), no forward
	// progress, retransmission timer disarmed — nothing will wake it.
	f := healthyFake()
	f.armed = false
	c.Watch(f)
	c.Emit(telemetry.Event{Comp: telemetry.CompSender, Kind: telemetry.KSend, Flow: 0})

	if err := c.StartWatchdog(10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The wedge itself: a self-rescheduling loop that burns events
	// without ever moving the flow forward. With step 0 the clock
	// freezes and the watchdog tick can never fire.
	step := sim.Time(time.Millisecond)
	if frozenClock {
		step = 0
	}
	var spin func()
	spin = func() {
		if _, err := sched.Schedule(step, spin); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sched.Schedule(step, spin); err != nil {
		t.Fatal(err)
	}

	mon, err := guard.Attach(sched, limits, bus)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Time(time.Second))

	oerr := mon.Err()
	serr := c.StallError()
	switch {
	case oerr != nil:
		return oerr.Resource, oerr, serr
	case serr != nil:
		return "liveness", oerr, serr
	default:
		return "", nil, nil
	}
}

func TestFrozenClockStormOnlyGuardFires(t *testing.T) {
	winner, oerr, serr := wedgeWinner(t, guard.Limits{StormEvents: 1000}, true)
	if winner != guard.ResourceStorm {
		t.Fatalf("winner = %q, want %q", winner, guard.ResourceStorm)
	}
	if oerr == nil || oerr.At != 0 {
		t.Fatalf("storm trip = %+v, want one at the frozen clock's instant 0", oerr)
	}
	// The watchdog ticks are sim-time scheduled: at a frozen clock they
	// never ran, so the checker saw no stall — exactly one detector
	// reported.
	if serr != nil {
		t.Fatalf("watchdog reported %v during a frozen-clock storm; its ticks cannot have run", serr)
	}
}

func TestAdvancingClockWedgeWatchdogFires(t *testing.T) {
	// No event budget: the storm detector can't trip (the clock
	// advances every event) and the watchdog's hard threshold is the
	// only detector left.
	winner, oerr, serr := wedgeWinner(t, guard.Limits{StormEvents: 1 << 20}, false)
	if winner != "liveness" {
		t.Fatalf("winner = %q, want liveness", winner)
	}
	if oerr != nil {
		t.Fatalf("guard tripped %v; nothing should have exceeded its budget", oerr)
	}
	if serr == nil || (serr.V.Rule != "stall" && serr.V.Rule != "stall-no-timer") {
		t.Fatalf("stall error = %+v, want a liveness rule", serr)
	}
	if !serr.Degraded() {
		t.Fatal("StallError must carry the Degraded marker")
	}
}

func TestTightEventBudgetPreemptsWatchdog(t *testing.T) {
	// Same advancing-clock wedge, but an event budget small enough to
	// trip before the watchdog's grace elapses: the guard's typed error
	// wins and the watchdog never got to report.
	winner, oerr, serr := wedgeWinner(t, guard.Limits{MaxEvents: 10, StormEvents: 1 << 20}, false)
	if winner != guard.ResourceEvents {
		t.Fatalf("winner = %q, want %q", winner, guard.ResourceEvents)
	}
	if oerr == nil || oerr.Events != 10 {
		t.Fatalf("trip = %+v, want one at exactly event 10", oerr)
	}
	if serr != nil {
		t.Fatalf("watchdog also reported %v; the guard stopped the run first", serr)
	}
}

func TestWedgeWinnerIsDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		limits guard.Limits
		frozen bool
	}{
		{"frozen-storm", guard.Limits{StormEvents: 1000}, true},
		{"advancing-stall", guard.Limits{StormEvents: 1 << 20}, false},
		{"tight-budget", guard.Limits{MaxEvents: 10, StormEvents: 1 << 20}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w1, o1, s1 := wedgeWinner(t, tc.limits, tc.frozen)
			w2, o2, s2 := wedgeWinner(t, tc.limits, tc.frozen)
			if w1 != w2 {
				t.Fatalf("winner diverged across runs: %q vs %q", w1, w2)
			}
			if (o1 == nil) != (o2 == nil) || (o1 != nil && *o1 != *o2) {
				t.Fatalf("overload errors diverged: %+v vs %+v", o1, o2)
			}
			if (s1 == nil) != (s2 == nil) || (s1 != nil && s1.V != s2.V) {
				t.Fatalf("stall errors diverged: %+v vs %+v", s1, s2)
			}
		})
	}
}
