// Package invariant is a runtime checker for the TCP and Robust
// Recovery state machines: it subscribes to the telemetry bus and,
// after every event of a watched flow, asserts structural invariants
// over the live sender state — sequence-number ordering, cwnd/ssthresh
// bounds, timer-backoff discipline, actnum bounds in the RR phases —
// plus a scheduled liveness watchdog that catches wedged senders.
//
// The checker is the verification half of the chaos subsystem
// (internal/faults provides the adversarial half): a fault schedule is
// only a useful test if something is watching for the sender ending up
// in an impossible state. On violation the checker records a typed
// Violation, publishes a telemetry event (kind "violation"), and
// invokes an optional callback; internal/experiments turns that into a
// replayable repro bundle.
package invariant

import (
	"fmt"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
)

// Probe is the sender state surface the checker reads. *tcp.Sender
// implements it; the indirection keeps the rules testable against
// synthetic states.
type Probe interface {
	Flow() int
	Done() bool
	SndUna() int64
	SndNxt() int64
	MaxSeq() int64
	Cwnd() float64
	Ssthresh() float64
	Window() int
	FlightPackets() int
	TotalBytes() int64
	RTOBackoff() uint
	TimerArmed() bool
}

var _ Probe = (*tcp.Sender)(nil)

// RecoveryProbe is the additional surface of recovery strategies that
// expose their sub-phase state; *core.RRStrategy implements it. The
// checker applies the RR-specific rules only when it is available.
type RecoveryProbe interface {
	InRecovery() bool
	InProbe() bool
	Actnum() int
	Ndup() int
}

// Violation is one detected invariant breach.
type Violation struct {
	// At is the simulated instant of detection.
	At sim.Time `json:"at"`
	// Flow is the connection the violated state belongs to.
	Flow int `json:"flow"`
	// Rule names the invariant (stable identifiers, see the catalog in
	// docs/ROBUSTNESS.md).
	Rule string `json:"rule"`
	// Detail is a human-readable account of the violated state.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%v flow %d: %s: %s", v.At, v.Flow, v.Rule, v.Detail)
}

// maxViolations bounds retention so a persistently broken sender can't
// grow the slice without bound; each (flow, rule) pair reports once
// anyway.
const maxViolations = 256

// flowState is the checker's per-flow memory.
type flowState struct {
	probe Probe
	rec   RecoveryProbe // nil for variants without sub-phase state

	active       bool
	lastUna      int64
	lastBackoff  uint
	enterCwnd    float64  // cwnd recorded at recovery entry
	timeoutAt    sim.Time // instant of the most recent timeout event
	sawTimeout   bool
	lastProgress sim.Time
	inRecovery   bool // tracked from recovery enter/exit/timeout events
	lossEpisode  bool // dup ACKs or recovery seen; flight may overshoot
}

// Checker subscribes to a telemetry bus and validates watched senders
// after every event of theirs. All methods run on the simulation
// goroutine.
type Checker struct {
	sched *sim.Scheduler
	bus   *telemetry.Bus

	flows map[int32]*flowState
	order []int32         // flows in Watch order, for deterministic scans
	seen  map[string]bool // "flow/rule" pairs already reported

	violations []Violation

	// OnViolation, when non-nil, runs synchronously for each new
	// violation (after recording and publishing it).
	OnViolation func(Violation)
}

var _ telemetry.Sink = (*Checker)(nil)

// NewChecker builds a checker that publishes violations back onto bus.
// The caller subscribes it: bus.Subscribe(c).
func NewChecker(sched *sim.Scheduler, bus *telemetry.Bus) *Checker {
	return &Checker{
		sched: sched,
		bus:   bus,
		flows: make(map[int32]*flowState),
		seen:  make(map[string]bool),
	}
}

// Watch registers a sender-state probe. An optional RecoveryProbe can
// be attached with WatchRecovery.
func (c *Checker) Watch(p Probe) {
	flow := int32(p.Flow())
	if _, ok := c.flows[flow]; !ok {
		c.order = append(c.order, flow)
	}
	c.flows[flow] = &flowState{probe: p}
}

// WatchRecovery attaches recovery sub-phase state to an already-watched
// flow.
func (c *Checker) WatchRecovery(flow int, rp RecoveryProbe) {
	if st, ok := c.flows[int32(flow)]; ok {
		st.rec = rp
	}
}

// WatchSender registers a *tcp.Sender, discovering its RecoveryProbe
// (the RR strategy) automatically.
func (c *Checker) WatchSender(s *tcp.Sender) {
	c.Watch(s)
	if rp, ok := s.Strategy().(RecoveryProbe); ok {
		c.WatchRecovery(s.Flow(), rp)
	}
}

// Violations returns the recorded breaches in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// StallError is the typed error form of a liveness violation, carrying
// the structural Degraded marker so a job that returns one becomes a
// Degraded sweep result (like a guard.OverloadError) instead of a
// failure: a wedged flow at hostile scale is a reportable outcome, not
// a reason to fail the whole sweep.
type StallError struct {
	// V is the first liveness ("stall" / "stall-no-timer") violation the
	// watchdog recorded.
	V Violation
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("invariant: liveness violation: %s", e.V)
}

// Degraded marks the error for internal/sweep's structural taxonomy.
func (e *StallError) Degraded() bool { return true }

// StallError returns the first recorded liveness violation as a typed
// *StallError, or nil when the watchdog saw none. Structural (safety)
// violations are deliberately excluded: those mean the state machine is
// wrong and must fail the run, while a stall means the run wedged and
// should degrade.
func (c *Checker) StallError() *StallError {
	for _, v := range c.violations {
		if v.Rule == "stall" || v.Rule == "stall-no-timer" {
			return &StallError{V: v}
		}
	}
	return nil
}

// Emit implements telemetry.Sink: every event of a watched flow
// triggers a full state check for that flow.
func (c *Checker) Emit(ev telemetry.Event) {
	if ev.Comp == telemetry.CompInvariant {
		return // our own violation events
	}
	st, ok := c.flows[ev.Flow]
	if !ok {
		return
	}
	if !st.active {
		st.active = true
		st.lastUna = st.probe.SndUna()
		st.lastProgress = ev.At
	}
	switch ev.Kind {
	case telemetry.KTimeout:
		st.sawTimeout = true
		st.timeoutAt = ev.At
		st.inRecovery = false
	case telemetry.KRecoveryEnter:
		st.enterCwnd = st.probe.Cwnd()
		st.inRecovery = true
		st.lossEpisode = true
	case telemetry.KRecoveryExit:
		st.inRecovery = false
	case telemetry.KDupAck:
		st.lossEpisode = true
	case telemetry.KRetransmit:
		c.checkRetransmit(st, ev)
	}
	c.checkState(st, ev)
}

// report records one violation, deduplicated per (flow, rule).
func (c *Checker) report(flow int32, rule, format string, args ...any) {
	key := fmt.Sprintf("%d/%s", flow, rule)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	v := Violation{
		At:     c.sched.Now(),
		Flow:   int(flow),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
	c.bus.Publish(telemetry.Event{
		At:   v.At,
		Comp: telemetry.CompInvariant,
		Kind: telemetry.KViolation,
		Src:  rule,
		Flow: flow,
	})
	if c.OnViolation != nil {
		c.OnViolation(v)
	}
}

// checkRetransmit validates a retransmission event against the sender's
// sequence state.
func (c *Checker) checkRetransmit(st *flowState, ev telemetry.Event) {
	flow := ev.Flow
	if ev.Seq < st.probe.SndUna() {
		c.report(flow, "rtx-below-una",
			"retransmitted seq %d below snd.una %d (already acknowledged)", ev.Seq, st.probe.SndUna())
	}
	if ev.Seq >= st.probe.MaxSeq() {
		c.report(flow, "rtx-unsent",
			"retransmitted seq %d at or beyond max sent seq %d", ev.Seq, st.probe.MaxSeq())
	}
}

// checkState runs the full structural rule set against the flow's
// current sender state.
func (c *Checker) checkState(st *flowState, ev telemetry.Event) {
	p := st.probe
	flow := ev.Flow
	una, nxt, max := p.SndUna(), p.SndNxt(), p.MaxSeq()

	// Sequence-number geometry: 0 <= una <= nxt <= max, una monotone,
	// and a bounded transfer never fabricates data past its size.
	if una < 0 || una > nxt || nxt > max {
		c.report(flow, "seq-order", "snd.una %d, snd.nxt %d, max %d out of order", una, nxt, max)
	}
	if una < st.lastUna {
		c.report(flow, "una-regress", "snd.una moved backwards: %d -> %d", st.lastUna, una)
	}
	progressed := una > st.lastUna
	if progressed {
		st.lastUna = una
		st.lastProgress = ev.At
	}
	if total := p.TotalBytes(); total != tcp.Infinite && max > total {
		c.report(flow, "seq-overrun", "max sent seq %d beyond transfer size %d", max, total)
	}

	// Window geometry. SetCwnd/SetSsthresh clamp, so a violation here
	// means a strategy bypassed the guarded mutators.
	if cwnd := p.Cwnd(); cwnd < 1 || cwnd > float64(p.Window()) {
		c.report(flow, "cwnd-bounds", "cwnd %g outside [1, %d]", cwnd, p.Window())
	}
	if ss := p.Ssthresh(); ss < 2 {
		c.report(flow, "ssthresh-floor", "ssthresh %g below floor 2", ss)
	}
	// Flight geometry. The advertised window bounds new data in the open
	// state; self-metered recovery (RR probe, right-edge, Lin-Kung) may
	// overshoot it by the dup-ACK clock, so during a loss episode — dup
	// ACKs seen and flight not yet drained back under the window — only
	// the sender's hard 2×Window sanity bound applies.
	fl, w := p.FlightPackets(), p.Window()
	if fl < 0 || fl > 2*w {
		c.report(flow, "flight-bounds", "%d packets in flight outside [0, %d]", fl, 2*w)
	} else if fl > w && !st.lossEpisode {
		c.report(flow, "flight-window",
			"%d packets in flight beyond the advertised window %d outside a loss episode", fl, w)
	}
	// A loss episode ends on forward progress — a fresh cumulative ACK —
	// with flight back inside the window and no recovery in progress.
	// Clearing on anything weaker would re-arm the strict bound between
	// the dup ACK and the self-metered send it clocks out.
	if progressed && fl <= w && !st.inRecovery {
		st.lossEpisode = false
	}

	// Timer discipline: exponential backoff may only grow in response
	// to a timeout (observed at the same instant — the sender emits the
	// timeout event before incrementing), and is capped at 2^6.
	if bo := p.RTOBackoff(); bo > st.lastBackoff {
		if !st.sawTimeout || st.timeoutAt != ev.At {
			c.report(flow, "backoff-no-timeout",
				"RTO backoff grew %d -> %d with no timeout at %v", st.lastBackoff, bo, ev.At)
		}
		if bo > 6 {
			c.report(flow, "backoff-cap", "RTO backoff %d beyond cap 6", bo)
		}
	}
	st.lastBackoff = p.RTOBackoff()

	if st.rec != nil {
		c.checkRecovery(st, ev)
	}
}

// checkRecovery applies the RR-specific rules.
func (c *Checker) checkRecovery(st *flowState, ev telemetry.Event) {
	p, r := st.probe, st.rec
	flow := ev.Flow
	an := r.Actnum()

	if an < 0 || an > p.Window() {
		c.report(flow, "actnum-bounds", "actnum %d outside [0, %d]", an, p.Window())
	}
	switch {
	case r.InRecovery():
		// Back-off (any cwnd change below the recovery-entry value) may
		// happen only through the recovery machinery: in recovery cwnd
		// is out of the control loop and must hold its entry value — or
		// 1, the timeout path, which emits its cwnd collapse before the
		// strategy's OnTimeout observes it.
		if cw := p.Cwnd(); st.enterCwnd > 0 && cw != st.enterCwnd && cw != 1 {
			c.report(flow, "recovery-cwnd-touched",
				"cwnd changed to %g during recovery (entered at %g)", cw, st.enterCwnd)
		}
	case ev.Kind == telemetry.KRecoveryExit || ev.Kind == telemetry.KTimeout:
		// The exit event is emitted between leaving the phase and
		// clearing actnum; a timeout resets phase before its own emit
		// sequence completes. Both instants legitimately show stale
		// actnum.
	default:
		if an != 0 {
			c.report(flow, "actnum-open", "actnum %d nonzero outside recovery", an)
		}
	}
}

// StartWatchdog schedules a periodic liveness scan: every interval it
// checks each active, unfinished flow and reports
//
//   - "stall-no-timer" when the flow made no progress for grace and its
//     retransmission timer is not armed — nothing can ever wake it, a
//     deadlock;
//   - "stall" when no progress happened for hard, timer or not — the
//     horizon for pathological-but-armed loops. hard should comfortably
//     exceed the maximum backed-off RTO (64 s) plus the longest
//     injected outage, or legitimate recovery reads as a hang.
//
// Zero parameters select the defaults (500 ms, 5 s, 300 s); negative
// ones are an error.
//
// The ticks are sim-time scheduled, so the watchdog only observes
// stalls in runs whose clock still advances. An event storm at a frozen
// clock (a zero-delay self-rescheduling loop) never reaches the next
// tick; guard.Limits.StormEvents is the complementary detector for that
// regime.
func (c *Checker) StartWatchdog(interval, grace, hard sim.Time) error {
	if interval < 0 || grace < 0 || hard < 0 {
		return fmt.Errorf("invariant: watchdog periods must be non-negative, got %v/%v/%v", interval, grace, hard)
	}
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	if grace == 0 {
		grace = 5 * time.Second
	}
	if hard == 0 {
		hard = 300 * time.Second
	}
	var timer *sim.Timer
	tick := func() {
		now := c.sched.Now()
		for _, flow := range c.order {
			st := c.flows[flow]
			if !st.active || st.probe.Done() {
				continue
			}
			idle := now - st.lastProgress
			if idle > grace && !st.probe.TimerArmed() {
				c.report(flow, "stall-no-timer",
					"no progress for %v and no retransmission timer armed (una=%d, flight=%d)",
					idle, st.probe.SndUna(), st.probe.FlightPackets())
			}
			if idle > hard {
				c.report(flow, "stall", "no progress for %v (una=%d)", idle, st.probe.SndUna())
			}
		}
		timer.Reset(interval)
	}
	timer = c.sched.NewTimer(tick)
	return timer.At(c.sched.Now() + interval)
}
