package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1380899352993) > 1e-9 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Fatalf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{1, 2}, 50); !almost(got, 1.5) {
		t.Fatalf("interpolated median = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// A single sample is every percentile.
	for _, p := range []float64{0, 25, 50, 100} {
		if got := Percentile([]float64{7}, p); !almost(got, 7) {
			t.Fatalf("single-sample p%v = %v, want 7", p, got)
		}
	}
	// Unsorted input must give the same answers as sorted.
	unsorted := []float64{5, 1, 4, 2, 3}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	} {
		if got := Percentile(unsorted, c.p); !almost(got, c.want) {
			t.Fatalf("unsorted p%v = %v, want %v", c.p, got, c.want)
		}
	}
	// p0 and p100 are exact extremes, never interpolated.
	xs := []float64{2.5, -1.5, 9.25}
	if got := Percentile(xs, 0); !almost(got, -1.5) {
		t.Fatalf("p0 = %v, want -1.5", got)
	}
	if got := Percentile(xs, 100); !almost(got, 9.25) {
		t.Fatalf("p100 = %v, want 9.25", got)
	}
	// Duplicates collapse cleanly.
	if got := Percentile([]float64{4, 4, 4, 4}, 50); !almost(got, 4) {
		t.Fatalf("duplicate p50 = %v, want 4", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{9, 1, 5}), 5) {
		t.Fatal("median wrong")
	}
}

func TestCI95(t *testing.T) {
	if CI95HalfWidth([]float64{1}) != 0 {
		t.Fatal("single-sample CI")
	}
	xs := []float64{10, 12, 14, 16}
	want := 1.96 * StdDev(xs) / 2
	if !almost(CI95HalfWidth(xs), want) {
		t.Fatal("CI half-width wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) ||
		s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("summary string: %s", s)
	}
}

// Property: min ≤ every percentile ≤ max, and mean within [min, max].
func TestBoundsProperty(t *testing.T) {
	f := func(raw []int16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pct := Percentile(xs, float64(p%101))
		return Min(xs) <= pct && pct <= Max(xs) &&
			Min(xs) <= Mean(xs) && Mean(xs) <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is translation-invariant and scales with |k|.
func TestStdDevInvarianceProperty(t *testing.T) {
	f := func(raw []int8, shift int8, scale int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
			scaled[i] = float64(v) * float64(scale)
		}
		base := StdDev(xs)
		if math.Abs(StdDev(shifted)-base) > 1e-6 {
			return false
		}
		return math.Abs(StdDev(scaled)-math.Abs(float64(scale))*base) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
