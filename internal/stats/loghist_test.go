package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(50) != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h)
	}
}

func TestLogHistogramExactExtremes(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.003, 1.5, 42, 0.8} {
		h.Observe(v)
	}
	if h.Min() != 0.003 || h.Max() != 42 {
		t.Fatalf("min/max = %g/%g, want 0.003/42", h.Min(), h.Max())
	}
	if h.Quantile(0) != 0.003 || h.Quantile(100) != 42 {
		t.Fatalf("q0/q100 = %g/%g", h.Quantile(0), h.Quantile(100))
	}
	if got, want := h.Mean(), (0.003+1.5+42+0.8)/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
}

// Quantiles must land within the sub-bucket relative-error bound of the
// exact percentile across several orders of magnitude.
func TestLogHistogramQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLogHistogram()
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over 1e-6 .. 1e3.
		v := math.Pow(10, rng.Float64()*9-6)
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9} {
		exact := Percentile(xs, p)
		got := h.Quantile(p)
		if relErr := math.Abs(got-exact) / exact; relErr > 2.0/logSubBuckets {
			t.Fatalf("q%g = %g, exact %g, rel err %.4f > %.4f",
				p, got, exact, relErr, 2.0/logSubBuckets)
		}
	}
}

func TestLogHistogramNonPositiveUnderflow(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// Three samples in the underflow bucket: q50 sits below the minimum
	// representable value and clamps to the observed minimum.
	if q := h.Quantile(50); q > 1 {
		t.Fatalf("q50 = %g, want <= 1", q)
	}
}

func TestLogHistogramOverflowClamped(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(1e30) // beyond 2^40: overflow bucket
	h.Observe(1)
	if h.Max() != 1e30 {
		t.Fatalf("max = %g", h.Max())
	}
	if q := h.Quantile(100); q != 1e30 {
		t.Fatalf("q100 = %g, want exact max", q)
	}
	if q := h.Quantile(99); math.IsInf(q, 1) {
		t.Fatal("quantile in the overflow bucket returned +Inf")
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a, b := NewLogHistogram(), NewLogHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewLogHistogram())
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged count/min/max = %d/%g/%g", a.Count(), a.Min(), a.Max())
	}
	if q := a.Quantile(50); math.Abs(q-100)/100 > 0.1 {
		t.Fatalf("merged q50 = %g, want ~100", q)
	}
}

func TestLogHistogramBucketBoundsCoverValues(t *testing.T) {
	for _, v := range []float64{1e-9, 0.001, 0.5, 1, 1.0001, 3, 1000, 1e9} {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %g outside its bucket [%g, %g)", v, lo, hi)
		}
	}
}

func BenchmarkLogHistogramObserve(b *testing.B) {
	h := NewLogHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}

func BenchmarkLogHistogramQuantile(b *testing.B) {
	h := NewLogHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Observe(math.Pow(10, rng.Float64()*6-3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(99)
	}
}
