package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// histJSON renders a histogram through its JSON codec; byte equality of
// two renderings implies equality of every bucket plus the exact
// count/sum/min/max fields.
func histJSON(t *testing.T, h *LogHistogram) []byte {
	t.Helper()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// histDoc is the decoded JSON shape, used to compare histograms
// structurally: buckets, count, min, and max must match exactly, while
// sum — a float accumulated in observation order — may differ in the
// last bits between merge orders.
type histDoc struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

func requireSameHist(t *testing.T, got, want *LogHistogram) {
	t.Helper()
	var g, w histDoc
	if err := json.Unmarshal(histJSON(t, got), &g); err != nil {
		t.Fatalf("decode got: %v", err)
	}
	if err := json.Unmarshal(histJSON(t, want), &w); err != nil {
		t.Fatalf("decode want: %v", err)
	}
	if g.Count != w.Count || g.Min != w.Min || g.Max != w.Max {
		t.Fatalf("stats differ: count %d/%d min %v/%v max %v/%v",
			g.Count, w.Count, g.Min, w.Min, g.Max, w.Max)
	}
	if !reflect.DeepEqual(g.Buckets, w.Buckets) {
		t.Fatalf("buckets differ:\n got %v\nwant %v", g.Buckets, w.Buckets)
	}
	if diff := math.Abs(g.Sum - w.Sum); diff > 1e-9*math.Abs(w.Sum) {
		t.Fatalf("sums diverge beyond rounding: %v vs %v", g.Sum, w.Sum)
	}
}

// Merging the parts of a partitioned sample set must reproduce the
// whole histogram bucket-for-bucket, and therefore every quantile —
// the property the parallel sweep's flow-report reduction rests on.
func TestLogHistogramMergeOfPartsEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewLogHistogram()
	parts := make([]*LogHistogram, 4)
	for i := range parts {
		parts[i] = NewLogHistogram()
	}
	for i := 0; i < 10000; i++ {
		// Mixed magnitudes, including sub-one values and a heavy tail.
		v := math.Exp(rng.NormFloat64()*4 - 2)
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}

	merged := NewLogHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}

	requireSameHist(t, merged, whole)
	for _, q := range []float64{0, 1, 10, 50, 90, 99, 99.9, 100} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v after merge, want %v", q, got, want)
		}
	}
}

// Merge order must not matter structurally: fold the same parts forward
// and backward and compare buckets and quantiles.
func TestLogHistogramMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*LogHistogram, 5)
	for i := range parts {
		parts[i] = NewLogHistogram()
		for j := 0; j < 500; j++ {
			parts[i].Observe(rng.ExpFloat64() * float64(i+1))
		}
	}
	fwd, bwd := NewLogHistogram(), NewLogHistogram()
	for i := range parts {
		fwd.Merge(parts[i])
		bwd.Merge(parts[len(parts)-1-i])
	}
	requireSameHist(t, fwd, bwd)
	for _, q := range []float64{1, 50, 99} {
		if got, want := fwd.Quantile(q), bwd.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) order-dependent: %v vs %v", q, got, want)
		}
	}
}

// Merging an empty histogram is the identity in both directions, and
// byte-exact: no floats are touched.
func TestLogHistogramMergeEmptyIdentity(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.5, 3, 3, 42} {
		h.Observe(v)
	}
	before := histJSON(t, h)

	h.Merge(NewLogHistogram())
	if got := histJSON(t, h); !bytes.Equal(got, before) {
		t.Fatalf("merging empty changed histogram: %s -> %s", before, got)
	}

	e := NewLogHistogram()
	e.Merge(h)
	if got := histJSON(t, e); !bytes.Equal(got, before) {
		t.Fatalf("merging into empty lost data: %s != %s", got, before)
	}
	if e.Count() != 4 || e.Min() != 0.5 || e.Max() != 42 {
		t.Fatalf("merged stats: count=%d min=%v max=%v", e.Count(), e.Min(), e.Max())
	}
}

// Values past the bucket range clamp into the edge buckets; merging
// clamped histograms must behave like observing the same values into
// one histogram.
func TestLogHistogramMergeOverflowEdges(t *testing.T) {
	extremes := []float64{1e-300, 1e300, -5, 0, math.SmallestNonzeroFloat64, 1e307}
	whole := NewLogHistogram()
	a, b := NewLogHistogram(), NewLogHistogram()
	for i, v := range extremes {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	requireSameHist(t, a, whole)
	if got, want := a.Quantile(100), whole.Quantile(100); got != want {
		t.Fatalf("Quantile(100) = %v, want %v", got, want)
	}
}

// The JSON codec must round-trip exactly, including by-value fields of
// an enclosing struct (how flow summaries carry their histograms
// through the checkpoint journal).
func TestLogHistogramJSONRoundTrip(t *testing.T) {
	h := NewLogHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.ExpFloat64())
	}
	type carrier struct {
		H LogHistogram `json:"h"`
	}
	data, err := json.Marshal(carrier{H: *h})
	if err != nil {
		t.Fatalf("marshal carrier: %v", err)
	}
	var back carrier
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal carrier: %v", err)
	}
	if got, want := histJSON(t, &back.H), histJSON(t, h); !bytes.Equal(got, want) {
		t.Fatalf("round trip changed histogram:\n got %s\nwant %s", got, want)
	}
	if back.H.Count() != h.Count() || back.H.Sum() != h.Sum() {
		t.Fatalf("round trip stats: count %d/%d sum %v/%v",
			back.H.Count(), h.Count(), back.H.Sum(), h.Sum())
	}
}

// An empty histogram serializes compactly and round-trips to empty.
func TestLogHistogramJSONEmpty(t *testing.T) {
	data := histJSON(t, NewLogHistogram())
	var h LogHistogram
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if h.Count() != 0 {
		t.Fatalf("empty round trip has count %d", h.Count())
	}
}

// Malformed bucket payloads must be rejected, not silently truncated.
func TestLogHistogramJSONMalformed(t *testing.T) {
	cases := []string{
		`{"count":1,"sum":1,"min":1,"max":1,"buckets":[1]}`,          // odd pairs
		`{"count":1,"sum":1,"min":1,"max":1,"buckets":[99999999,1]}`, // index out of range
	}
	for _, c := range cases {
		var h LogHistogram
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("unmarshal %s succeeded, want error", c)
		}
	}
}
