package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// LogHistogram is a log-bucketed histogram in the HDR-histogram family:
// fixed-size counters over geometrically spaced buckets, so recording
// is O(1) with no allocation and quantiles carry a bounded *relative*
// error instead of the unbounded absolute error of fixed-width buckets.
//
// It is the summary structure for quantities that span orders of
// magnitude — recovery-episode durations (milliseconds through the
// 64-second max-RTO regime) and sweep job latencies (microsecond jobs
// next to multi-second chaos runs) — where retaining raw samples (the
// Registry's exact Histogram) would grow without bound on long sweeps.
//
// Layout: a value's binary exponent selects a decade row and its
// mantissa selects one of logSubBuckets linear sub-buckets within the
// row, giving a worst-case relative error of 1/logSubBuckets (~3% at
// the default 32). Non-positive and sub-minimum values land in a
// dedicated underflow bucket; values beyond the top land in overflow.
type LogHistogram struct {
	counts [logBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

const (
	// logSubBuckets is the linear resolution within one power of two.
	logSubBuckets = 32
	// logMinExp / logMaxExp bound the tracked binary exponents:
	// 2^-40 ≈ 9e-13 through 2^40 ≈ 1.1e12.
	logMinExp = -40
	logMaxExp = 40
	// logBuckets = underflow + exponent rows + overflow.
	logBuckets = (logMaxExp-logMinExp)*logSubBuckets + 2
)

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0 // underflow
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if exp < logMinExp {
		return 0
	}
	if exp > logMaxExp {
		return logBuckets - 1 // overflow
	}
	sub := int((frac - 0.5) * 2 * logSubBuckets)
	if sub >= logSubBuckets {
		sub = logSubBuckets - 1
	}
	return 1 + (exp-logMinExp)*logSubBuckets + sub
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket.
func bucketBounds(idx int) (lo, hi float64) {
	if idx <= 0 {
		return 0, math.Ldexp(0.5, logMinExp)
	}
	if idx >= logBuckets-1 {
		return math.Ldexp(1, logMaxExp), math.Inf(1)
	}
	idx--
	exp := logMinExp + idx/logSubBuckets
	sub := idx % logSubBuckets
	lo = math.Ldexp(0.5+float64(sub)/(2*logSubBuckets), exp)
	hi = math.Ldexp(0.5+float64(sub+1)/(2*logSubBuckets), exp)
	return lo, hi
}

// Observe records one sample.
func (h *LogHistogram) Observe(v float64) {
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of recorded samples.
func (h *LogHistogram) Count() uint64 { return h.count }

// Sum reports the exact sum of recorded samples.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean reports the exact sample mean (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest recorded sample (0 when empty).
func (h *LogHistogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded sample (0 when empty).
func (h *LogHistogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the p-th percentile (0 ≤ p ≤ 100)
// with relative error bounded by the sub-bucket resolution. The exact
// observed extremes clamp the estimate, so Quantile(0) and
// Quantile(100) are exact.
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	// Rank of the target sample (1-based), then walk the cumulative
	// counts to its bucket and interpolate linearly within it.
	rank := p / 100 * float64(h.count-1)
	target := uint64(rank) + 1
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			if math.IsInf(hi, 1) {
				hi = h.max
			}
			frac := float64(target-cum) / float64(c)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// logHistJSON is the wire form of a LogHistogram: the scalar summary
// plus a sparse [index, count, index, count, ...] pair list, so an
// empty or narrow histogram costs a few bytes instead of 2562 zeros.
type logHistJSON struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram sparsely. It is a value-receiver
// method so histograms embedded by value in result structs round-trip
// through encoding/json regardless of addressability.
func (h LogHistogram) MarshalJSON() ([]byte, error) {
	out := logHistJSON{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, uint64(i), c)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON; it replaces the
// receiver's contents.
func (h *LogHistogram) UnmarshalJSON(data []byte) error {
	var in logHistJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Buckets)%2 != 0 {
		return fmt.Errorf("stats: odd bucket pair list (len %d)", len(in.Buckets))
	}
	*h = LogHistogram{count: in.Count, sum: in.Sum, min: in.Min, max: in.Max}
	for i := 0; i < len(in.Buckets); i += 2 {
		idx := in.Buckets[i]
		if idx >= logBuckets {
			return fmt.Errorf("stats: bucket index %d out of range", idx)
		}
		h.counts[idx] = in.Buckets[i+1]
	}
	return nil
}

// Merge folds the samples of o into h. Sums and counts stay exact;
// min/max track the union.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}
