// Package stats provides the small set of summary statistics the
// experiment harness needs for seed-averaged results: mean, standard
// deviation, percentiles, and normal-approximation confidence
// intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CI95HalfWidth returns the half-width of a normal-approximation 95%
// confidence interval for the mean: 1.96·s/√n. Zero when n < 2.
func CI95HalfWidth(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
	CI95   float64
}

// Summarize computes a Summary in one pass over the helpers.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		CI95:   CI95HalfWidth(xs),
	}
}

// String renders the summary as "mean ± ci95 [min..max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g [%.3g..%.3g] (n=%d)", s.Mean, s.CI95, s.Min, s.Max, s.N)
}
