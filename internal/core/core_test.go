package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rrtcp/internal/core"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/trace"
)

// rrNet wires an RR sender to a receiver over 10 ms links with
// deterministic loss injection.
type rrNet struct {
	sched  *sim.Scheduler
	sender *tcp.Sender
	recv   *tcp.Receiver
	loss   *netem.SeqLoss
	strat  *core.RRStrategy
	tr     *trace.FlowTrace
}

func newRRNet(t *testing.T, opts *core.Options, totalPackets int64) *rrNet {
	t.Helper()
	sched := sim.NewScheduler(1)
	tr := trace.New(0, "rr")

	strat := core.NewRR()
	if opts != nil {
		strat = core.NewRRWithOptions(*opts)
	}

	dataLink := netem.Must(netem.NewLink(sched, 10e6, 10*time.Millisecond, netem.Must(netem.NewDropTail(1000)), nil))
	ackLink := netem.Must(netem.NewLink(sched, 10e6, 10*time.Millisecond, netem.Must(netem.NewDropTail(1000)), nil))
	loss := netem.NewSeqLoss(dataLink)
	recv := tcp.NewReceiver(sched, 0, ackLink, tr)
	dataLink.Dst = recv

	total := tcp.Infinite
	if totalPackets > 0 {
		total = totalPackets * 1000
	}
	sender, err := tcp.New(sched, loss, strat, tcp.Config{
		Flow:            0,
		Window:          24,
		InitialSSThresh: 12,
		TotalBytes:      total,
		Trace:           tr,
	})
	if err != nil {
		t.Fatalf("new sender: %v", err)
	}
	ackLink.Dst = sender

	return &rrNet{sched: sched, sender: sender, recv: recv, loss: loss, strat: strat, tr: tr}
}

func (n *rrNet) drop(pkts ...int64) {
	for _, p := range pkts {
		n.loss.Drop(0, p*1000)
	}
}

func (n *rrNet) start(t *testing.T) {
	t.Helper()
	if err := n.sender.Start(0); err != nil {
		t.Fatalf("start: %v", err)
	}
}

func TestRRName(t *testing.T) {
	if core.NewRR().Name() != "rr" {
		t.Fatal("wrong name")
	}
}

func TestRRCompletesCleanTransfer(t *testing.T) {
	n := newRRNet(t, nil, 100)
	n.start(t)
	n.sched.Run(30 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if n.tr.Retransmits != 0 || n.tr.Timeouts != 0 {
		t.Fatalf("clean path produced rtx=%d timeouts=%d", n.tr.Retransmits, n.tr.Timeouts)
	}
}

func TestRRSingleLossRecoversWithoutProbe(t *testing.T) {
	n := newRRNet(t, nil, 120)
	n.drop(40)
	n.start(t)
	n.sched.Run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts on a single loss", n.tr.Timeouts)
	}
	if n.tr.Retransmits != 1 {
		t.Fatalf("%d retransmits, want 1", n.tr.Retransmits)
	}
	// Single loss: exit happens straight from retreat, so no probe
	// transition is recorded.
	if got := len(n.tr.SamplesOf(trace.EvPhaseFlip)); got != 0 {
		t.Fatalf("probe sub-phase entered %d times for a single loss", got)
	}
	if got := len(n.tr.SamplesOf(trace.EvExit)); got != 1 {
		t.Fatalf("%d exits, want 1", got)
	}
}

func TestRRBurstLossSingleSignal(t *testing.T) {
	n := newRRNet(t, nil, 120)
	n.drop(40, 41, 42, 43)
	n.start(t)
	n.sched.Run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts on a 4-packet burst", n.tr.Timeouts)
	}
	// One congestion signal: exactly one recovery entry and one exit.
	if got := len(n.tr.SamplesOf(trace.EvRecovery)); got != 1 {
		t.Fatalf("%d recoveries, want 1", got)
	}
	if got := len(n.tr.SamplesOf(trace.EvPhaseFlip)); got != 1 {
		t.Fatalf("%d retreat→probe transitions, want 1", got)
	}
	if n.tr.Retransmits != 4 {
		t.Fatalf("%d retransmits, want 4", n.tr.Retransmits)
	}
}

func TestRRRecoversOneHolePerRTT(t *testing.T) {
	n := newRRNet(t, nil, 120)
	n.drop(40, 41, 42)
	n.start(t)
	n.sched.Run(60 * time.Second)
	rtx := n.tr.SamplesOf(trace.EvRetransmit)
	if len(rtx) != 3 {
		t.Fatalf("%d retransmits, want 3", len(rtx))
	}
	for i := 1; i < len(rtx); i++ {
		gap := rtx[i].At - rtx[i-1].At
		if gap < 15*time.Millisecond || gap > 60*time.Millisecond {
			t.Fatalf("retransmit gap %v, want ~1 RTT (partial-ACK clock)", gap)
		}
	}
}

func TestRRSendsNewDataDuringRecovery(t *testing.T) {
	n := newRRNet(t, nil, 0) // unbounded
	n.drop(40, 41, 42)
	n.start(t)
	n.sched.Run(10 * time.Second)
	samples := n.tr.Samples()
	var entry, exitAt sim.Time = -1, -1
	for _, s := range samples {
		if s.Kind == trace.EvRecovery && entry < 0 {
			entry = s.At
		}
		if s.Kind == trace.EvExit && exitAt < 0 {
			exitAt = s.At
		}
	}
	if entry < 0 || exitAt < 0 {
		t.Fatal("recovery entry/exit not recorded")
	}
	newSends := 0
	for _, s := range samples {
		if s.Kind == trace.EvSend && s.At > entry && s.At < exitAt {
			newSends++
		}
	}
	if newSends < 5 {
		t.Fatalf("only %d new packets sent during recovery; RR must keep transmitting", newSends)
	}
}

func TestRRCwndUnchangedDuringRecovery(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40, 41, 42)
	n.start(t)
	n.sched.Run(10 * time.Second)
	samples := n.tr.Samples()
	var entry, exitAt sim.Time = -1, -1
	var entryCwnd float64
	for _, s := range samples {
		if s.Kind == trace.EvRecovery && entry < 0 {
			entry = s.At
			entryCwnd = s.Value
		}
		if s.Kind == trace.EvExit && exitAt < 0 {
			exitAt = s.At
		}
	}
	// No cwnd samples strictly inside recovery (cwnd is out of the
	// control loop until the exit hand-off).
	for _, s := range samples {
		if s.Kind == trace.EvCwnd && s.At > entry && s.At < exitAt {
			t.Fatalf("cwnd changed during recovery at %v (%.1f→%.1f)", s.At, entryCwnd, s.Value)
		}
	}
}

func TestRRExitHandsOffActnum(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40, 41, 42)
	n.start(t)
	n.sched.Run(10 * time.Second)
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(exits) == 0 {
		t.Fatal("no exit recorded")
	}
	// Exit cwnd equals actnum at exit: a small positive integer well
	// below the pre-loss window.
	cw := exits[0].Value
	if cw < 1 || cw > 20 {
		t.Fatalf("exit cwnd %.1f implausible", cw)
	}
	if cw != float64(int(cw)) {
		t.Fatalf("exit cwnd %.3f not an integer packet count", cw)
	}
}

func TestRRFurtherLossDetectedWithoutNewFastRetransmit(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40, 41, 42)
	// Lose a packet transmitted during the retreat sub-phase (new data
	// beyond maxseq ≈ 55): a "further" loss inside recovery.
	n.drop(57)
	n.start(t)
	n.sched.Run(10 * time.Second)
	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts; the further loss must be absorbed in-recovery", n.tr.Timeouts)
	}
	if got := len(n.tr.SamplesOf(trace.EvRecovery)); got != 1 {
		t.Fatalf("%d recovery entries, want 1 (no second fast retransmit)", got)
	}
	if got := len(n.tr.SamplesOf(trace.EvFurther)); got == 0 {
		t.Fatal("further loss not detected")
	}
	if n.strat.FurtherLosses == 0 {
		t.Fatal("FurtherLosses counter not incremented")
	}
}

func TestRRFurtherLossExtendsExit(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40, 41, 42, 57)
	n.start(t)
	n.sched.Run(10 * time.Second)
	// The further-lost packet must be retransmitted inside the same
	// recovery phase.
	var sawRtx57 bool
	for _, s := range n.tr.SamplesOf(trace.EvRetransmit) {
		if s.Seq == 57*1000 {
			sawRtx57 = true
		}
	}
	if !sawRtx57 {
		t.Fatal("further-lost packet not retransmitted")
	}
	if got := len(n.tr.SamplesOf(trace.EvExit)); got != 1 {
		t.Fatalf("%d exits, want 1", got)
	}
}

func TestRRRetransmissionLossFallsBackToTimeout(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40)
	n.loss.DropRetransmit(0, 40*1000)
	n.start(t)
	n.sched.Run(20 * time.Second)
	if n.tr.Timeouts == 0 {
		t.Fatal("lost retransmission must force a coarse timeout")
	}
	if n.sender.SndUna() <= 40*1000 {
		t.Fatal("sender did not make progress after the timeout")
	}
}

func TestRRNoSACKReceiverRequired(t *testing.T) {
	n := newRRNet(t, nil, 120)
	if n.recv.SACKEnabled {
		t.Fatal("RR test net should run without SACK")
	}
	n.drop(40, 41, 42, 43, 44)
	n.start(t)
	n.sched.Run(60 * time.Second)
	if !n.sender.Done() {
		t.Fatal("RR did not recover with a plain cumulative-ACK receiver")
	}
}

func TestRRInternalStateResets(t *testing.T) {
	n := newRRNet(t, nil, 120)
	n.drop(40, 41)
	n.start(t)
	n.sched.Run(60 * time.Second)
	if n.strat.InRecovery() {
		t.Fatal("still in recovery after completion")
	}
	if n.strat.Actnum() != 0 || n.strat.Ndup() != 0 {
		t.Fatalf("actnum=%d ndup=%d after exit, want 0", n.strat.Actnum(), n.strat.Ndup())
	}
}

func TestRROptionsRightEdge(t *testing.T) {
	// Right-edge retreat (1 new packet per dup ACK) injects roughly
	// twice the new data of the published retreat.
	published := newRRNet(t, nil, 0)
	published.drop(40, 41, 42)
	published.start(t)
	published.sched.Run(5 * time.Second)

	aggressive := newRRNet(t, &core.Options{RetreatDupsPerSegment: 1}, 0)
	aggressive.drop(40, 41, 42)
	aggressive.start(t)
	aggressive.sched.Run(5 * time.Second)

	if aggressive.tr.DataSent <= published.tr.DataSent {
		t.Fatalf("right-edge sent %d ≤ published %d; expected more aggressive retreat",
			aggressive.tr.DataSent, published.tr.DataSent)
	}
}

func TestRROptionsDisableFurtherLossDetection(t *testing.T) {
	n := newRRNet(t, &core.Options{DisableFurtherLossDetection: true}, 0)
	n.drop(40, 41, 42, 57)
	n.start(t)
	n.sched.Run(20 * time.Second)
	if got := len(n.tr.SamplesOf(trace.EvFurther)); got != 0 {
		t.Fatalf("further-loss detection fired %d times despite being disabled", got)
	}
	// Without detection the further loss needs another fast retransmit
	// or a timeout.
	extra := len(n.tr.SamplesOf(trace.EvRecovery)) > 1 || n.tr.Timeouts > 0
	if !extra {
		t.Fatal("further loss recovered without any extra signal; detection seems active")
	}
}

func TestRROptionsExitToSsthresh(t *testing.T) {
	n := newRRNet(t, &core.Options{ExitToSsthresh: true}, 0)
	n.drop(40, 41, 42)
	n.start(t)
	n.sched.Run(10 * time.Second)
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(exits) == 0 {
		t.Fatal("no exit recorded")
	}
	if exits[0].Value != n.sender.Ssthresh() && exits[0].Value < 2 {
		t.Fatalf("exit cwnd %.1f does not reflect ssthresh hand-off", exits[0].Value)
	}
}

func TestRRRecoverAccessor(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(40, 41)
	n.start(t)
	// Run until just after recovery starts.
	n.sched.Run(1200 * time.Millisecond)
	if n.strat.InRecovery() && n.strat.Recover() <= 40*1000 {
		t.Fatalf("recover = %d, want beyond the lost packet", n.strat.Recover())
	}
}

// TestRRSurvivesRandomLossProperty drives RR through random loss
// patterns — scattered drops, retransmission drops, and ACK drops —
// and requires the transfer to always complete with the stream intact.
func TestRRSurvivesRandomLossProperty(t *testing.T) {
	const transferPkts = 150
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := newRRNet(t, nil, transferPkts)
		drops := rng.Intn(16)
		for i := 0; i < drops; i++ {
			n.loss.Drop(0, int64(rng.Intn(120))*1000)
		}
		if rng.Intn(3) == 0 {
			n.loss.DropRetransmit(0, int64(rng.Intn(120))*1000)
		}
		n.start(t)
		n.sched.Run(600 * time.Second)
		if !n.sender.Done() {
			t.Logf("seed %d: incomplete, una=%d", seed, n.sender.SndUna())
			return false
		}
		if n.recv.Delivered != transferPkts*1000 {
			t.Logf("seed %d: delivered %d", seed, n.recv.Delivered)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRRInvariantsDuringRecoveryProperty checks RR's internal
// invariants at every ACK under random loss: actnum and ndup are
// non-negative, and the exit threshold never regresses.
func TestRRInvariantsDuringRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := newRRNet(t, nil, 150)
		for i := 0; i < rng.Intn(10); i++ {
			n.loss.Drop(0, int64(rng.Intn(120))*1000)
		}
		n.start(t)
		ok := true
		var lastRecover int64
		inRecovery := false
		// Poll invariants at fine granularity while the run progresses.
		for i := 0; i < 6000 && ok && !n.sender.Done(); i++ {
			n.sched.Run(n.sched.Now() + 10*time.Millisecond)
			if n.strat.Actnum() < 0 || n.strat.Ndup() < 0 {
				ok = false
			}
			if n.strat.InRecovery() {
				if inRecovery && n.strat.Recover() < lastRecover {
					ok = false // exit threshold regressed
				}
				inRecovery = true
				lastRecover = n.strat.Recover()
			} else {
				inRecovery = false
				lastRecover = 0
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRRPaperFigure3Example reproduces the worked example of the
// paper's Figure 3: four packets dropped from one window in the
// pattern 4, 5, 7, 8 — two pairs separated by a survivor. (The paper
// presumes an established window; we shift the pattern by 40 packets
// so the drops land after slow start instead of inside it, where three
// duplicate ACKs cannot exist.) The first loss is recovered in the
// retreat sub-phase; the rest in the probe sub-phase, one per RTT,
// each triggered by a partial ACK.
func TestRRPaperFigure3Example(t *testing.T) {
	n := newRRNet(t, nil, 0)
	n.drop(44, 45, 47, 48)
	n.start(t)
	n.sched.Run(10 * time.Second)

	if n.tr.Timeouts != 0 {
		t.Fatalf("%d timeouts; the example recovers without any", n.tr.Timeouts)
	}
	rtx := n.tr.SamplesOf(trace.EvRetransmit)
	if len(rtx) != 4 {
		t.Fatalf("%d retransmits, want 4", len(rtx))
	}
	wantOrder := []int64{44000, 45000, 47000, 48000}
	for i, s := range rtx {
		if s.Seq != wantOrder[i] {
			t.Fatalf("retransmission %d at seq %d, want %d", i, s.Seq, wantOrder[i])
		}
	}
	// Packet 4 goes out with the fast retransmit (recovery entry);
	// 5, 7, 8 follow one per probe RTT.
	recs := n.tr.SamplesOf(trace.EvRecovery)
	if len(recs) != 1 {
		t.Fatalf("%d recovery entries, want 1 (single congestion signal)", len(recs))
	}
	if rtx[0].At != recs[0].At {
		t.Fatal("first retransmission not at recovery entry")
	}
	for i := 2; i < 4; i++ {
		gap := rtx[i].At - rtx[i-1].At
		if gap < 15*time.Millisecond || gap > 80*time.Millisecond {
			t.Fatalf("probe retransmissions %d→%d spaced %v, want ~1 RTT", i-1, i, gap)
		}
	}
	// And the connection keeps transmitting new data throughout.
	exits := n.tr.SamplesOf(trace.EvExit)
	if len(exits) != 1 {
		t.Fatalf("%d exits, want 1", len(exits))
	}
	newSends := 0
	for _, s := range n.tr.SamplesOf(trace.EvSend) {
		if s.At > recs[0].At && s.At < exits[0].At {
			newSends++
		}
	}
	if newSends == 0 {
		t.Fatal("no new data during the Figure 3 recovery")
	}
}
