// Package core implements Robust Recovery (RR), the TCP
// congestion-recovery algorithm of Wang & Shin, "Robust TCP Congestion
// Recovery" (ICDCS 2001) — the paper's primary contribution.
//
// RR is a sender-side-only modification. It treats a burst of losses
// within one window as a single congestion signal, splitting recovery
// into two sub-phases:
//
//   - retreat: the first RTT of recovery. The sender exponentially
//     backs off, injecting one new packet per two duplicate ACKs, while
//     cwnd is left untouched (it is not used for control during
//     recovery). actnum stays 0.
//
//   - probe: every subsequent RTT, delimited by partial ACKs. The
//     state variable actnum — the number of new packets sent in the
//     previous RTT, hence an accurate measure of data in flight —
//     takes over congestion control. Each duplicate ACK clocks out one
//     new packet; each partial ACK retransmits the next hole and, by
//     comparing ndup (new packets confirmed this RTT) against actnum,
//     detects further losses without another fast retransmit or a
//     timeout: on no loss actnum grows by one (congestion-avoidance-
//     like), on further loss actnum shrinks linearly to ndup and the
//     recovery exit point advances to snd.nxt.
//
// Recovery ends when the cumulative ACK passes the exit point; the
// hand-off sets cwnd = actnum × MSS, so the exit ACK clocks out exactly
// one new packet and the "big ACK" burst of New-Reno/SACK never forms.
package core

import (
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
)

// phase tracks where the sender is in the RR state machine.
type phase int

const (
	phaseNone phase = iota + 1
	phaseRetreat
	phaseProbe
)

// Options expose the design choices DESIGN.md calls out for ablation.
// The zero value (via NewRR) is the algorithm as published.
type Options struct {
	// RetreatDupsPerSegment is how many duplicate ACKs clock out one
	// new segment during the retreat sub-phase. The paper uses 2
	// (halving the rate); 1 reproduces "right-edge recovery".
	RetreatDupsPerSegment int `json:"retreatDupsPerSegment,omitempty"`
	// DisableFurtherLossDetection skips the ndup/actnum comparison,
	// degrading RR to New-Reno-style blindness inside recovery.
	DisableFurtherLossDetection bool `json:"disableFurtherLossDetection,omitempty"`
	// HalveOnFurtherLoss backs off multiplicatively (actnum/2) instead
	// of the paper's linear reduction to ndup.
	HalveOnFurtherLoss bool `json:"halveOnFurtherLoss,omitempty"`
	// ExitToSsthresh hands cwnd = ssthresh back at exit (the New-Reno
	// rule) instead of the paper's cwnd = actnum×MSS, reintroducing the
	// big-ACK burst.
	ExitToSsthresh bool `json:"exitToSsthresh,omitempty"`
}

func (o *Options) fillDefaults() {
	if o.RetreatDupsPerSegment <= 0 {
		o.RetreatDupsPerSegment = 2
	}
}

// RRStrategy is the Robust Recovery state machine. It plugs into
// tcp.Sender through the tcp.Strategy interface; no receiver support
// (SACK or otherwise) is required.
type RRStrategy struct {
	opts Options

	phase       phase
	recover     int64 // recovery exit threshold (advances on further loss)
	actnum      int   // packets in flight during the probe sub-phase
	ndup        int   // duplicate ACKs received in the current recovery RTT
	retreatSent int   // new packets injected during the retreat sub-phase

	// noRetransmitBelow suppresses a spurious re-entry right after a
	// timeout, as in New-Reno.
	noRetransmitBelow int64

	// FurtherLosses counts further-loss detections (for tests/traces).
	FurtherLosses uint64
}

var _ tcp.Strategy = (*RRStrategy)(nil)

// NewRR returns the algorithm exactly as published.
func NewRR() *RRStrategy { return NewRRWithOptions(Options{}) }

// NewRRWithOptions returns RR with ablation knobs applied.
func NewRRWithOptions(opts Options) *RRStrategy {
	opts.fillDefaults()
	return &RRStrategy{opts: opts, phase: phaseNone}
}

// Name implements tcp.Strategy.
func (r *RRStrategy) Name() string { return "rr" }

// InRecovery reports whether the sender is inside RR (for tests).
func (r *RRStrategy) InRecovery() bool { return r.phase != phaseNone }

// InProbe reports whether the probe sub-phase is active (for tests).
func (r *RRStrategy) InProbe() bool { return r.phase == phaseProbe }

// Actnum exposes the in-flight measure (for tests).
func (r *RRStrategy) Actnum() int { return r.actnum }

// Ndup exposes the per-RTT duplicate-ACK count (for tests).
func (r *RRStrategy) Ndup() int { return r.ndup }

// Recover exposes the recovery exit threshold (for tests).
func (r *RRStrategy) Recover() int64 { return r.recover }

// OnAck implements tcp.Strategy.
func (r *RRStrategy) OnAck(s *tcp.Sender, ev tcp.AckEvent) {
	switch r.phase {
	case phaseRetreat:
		r.onAckRetreat(s, ev)
	case phaseProbe:
		r.onAckProbe(s, ev)
	default:
		r.onAckOpen(s, ev)
	}
}

// onAckOpen handles ACKs outside recovery: standard slow start /
// congestion avoidance, entering RR on the third duplicate ACK.
func (r *RRStrategy) onAckOpen(s *tcp.Sender, ev tcp.AckEvent) {
	if !ev.IsDup {
		s.SetDupAcks(0)
		s.GrowWindow()
		s.AdvanceUna(ev.AckNo)
		if s.Done() {
			return
		}
		s.PumpWindow()
		return
	}
	s.SetDupAcks(s.DupAcks() + 1)
	if s.DupAcks() == tcp.DupThresh && s.SndUna() >= r.noRetransmitBelow {
		r.enter(s)
	}
}

// enter is the transient entrance state (Figure 2): record the exit
// threshold, halve ssthresh, retransmit the first lost packet, and
// begin the retreat sub-phase. cwnd is deliberately left unchanged —
// it is out of the control loop until exit.
func (r *RRStrategy) enter(s *tcp.Sender) {
	r.phase = phaseRetreat
	r.recover = s.MaxSeq()
	r.actnum = 0
	// Figure 2 starts the dup-ACK count at the first duplicate ACK, so
	// the three that triggered fast retransmit are already in ndup.
	r.ndup = s.DupAcks()
	r.retreatSent = 0
	flight := s.FlightPackets()
	if flight < 2 {
		flight = 2
	}
	s.SetSsthresh(float64(flight) / 2)
	// enter-recovery marks the start of the retreat sub-phase; cwnd is
	// reported untouched — it is out of the control loop until exit.
	s.Emit(telemetry.CompRR, telemetry.KRecoveryEnter, s.SndUna(), s.Cwnd(), s.Ssthresh())
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// onAckRetreat covers the first RTT of recovery: one new packet per
// RetreatDupsPerSegment duplicate ACKs; the first non-duplicate ACK
// ends the sub-phase.
func (r *RRStrategy) onAckRetreat(s *tcp.Sender, ev tcp.AckEvent) {
	if ev.IsDup {
		r.ndup++
		if r.ndup%r.opts.RetreatDupsPerSegment == 0 && s.SendNewSegment() {
			r.retreatSent++
		}
		return
	}
	// First non-duplicate ACK: actnum picks up the number of new
	// packets sent during retreat (ndup × 1/2 in the paper's terms) and
	// takes over congestion control.
	r.actnum = r.retreatSent
	if r.actnum < 1 {
		r.actnum = 1
	}
	if ev.AckNo >= r.recover {
		// Only a single packet was lost: recovery is already over.
		r.exit(s, ev.AckNo)
		return
	}
	// First partial ACK: retreat → probe.
	r.phase = phaseProbe
	r.ndup = 0
	s.Emit(telemetry.CompRR, telemetry.KRetreatProbe, ev.AckNo, float64(r.actnum), 0)
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	s.Retransmit(s.SndUna())
	s.RestartTimer()
}

// onAckProbe covers every later recovery RTT, delimited by partial ACKs.
func (r *RRStrategy) onAckProbe(s *tcp.Sender, ev tcp.AckEvent) {
	if ev.IsDup {
		// Each duplicate ACK confirms one new packet from the previous
		// RTT and clocks out one new packet, keeping actnum in flight.
		r.ndup++
		s.SendNewSegment()
		return
	}
	if ev.AckNo >= r.recover {
		r.exit(s, ev.AckNo)
		return
	}
	// Partial ACK: an RTT boundary. Detect further losses by comparing
	// the packets confirmed this RTT (ndup) with the packets sent last
	// RTT (actnum).
	grow := true
	if !r.opts.DisableFurtherLossDetection && r.ndup < r.actnum {
		r.FurtherLosses++
		s.Emit(telemetry.CompRR, telemetry.KFurtherLoss, ev.AckNo, float64(r.actnum), float64(r.ndup))
		if r.opts.HalveOnFurtherLoss {
			r.actnum /= 2
		} else {
			r.actnum = r.ndup // linear back-off by the number of losses
		}
		// Extend the exit point so the further losses are recovered
		// inside this same recovery phase.
		r.recover = s.SndNxt()
		grow = false
	}
	s.AdvanceUna(ev.AckNo)
	if s.Done() {
		return
	}
	s.Retransmit(s.SndUna())
	s.RestartTimer()
	if grow {
		// No further loss: linear growth, one extra packet per RTT,
		// mirroring congestion avoidance.
		r.actnum++
		s.SendNewSegment()
	}
	// One actnum/ndup sample per recovery RTT, after the grow/shrink
	// decision — the state evolution behind the paper's Figure 3.
	s.Emit(telemetry.CompRR, telemetry.KActnum, ev.AckNo, float64(r.actnum), float64(r.ndup))
	r.ndup = 0
}

// exit is the transient exit state: hand congestion control back to
// cwnd sized to the measured in-flight data, so the exit ACK clocks out
// one packet and no burst forms.
func (r *RRStrategy) exit(s *tcp.Sender, ackNo int64) {
	r.phase = phaseNone
	cw := float64(r.actnum)
	if cw < 1 {
		cw = 1
	}
	// Recovery state is cleared before any Sender call below can emit:
	// once phase is none, an observer (the invariant checker) must never
	// see a stale actnum.
	r.actnum = 0
	r.ndup = 0
	if r.opts.ExitToSsthresh {
		s.SetCwnd(s.Ssthresh())
	} else {
		s.SetCwnd(cw)
	}
	// Seamless exit: cwnd = actnum × MSS hands control back with no
	// big-ACK burst.
	s.Emit(telemetry.CompRR, telemetry.KRecoveryExit, ackNo, s.Cwnd(), 0)
	s.SetDupAcks(0)
	s.AdvanceUna(ackNo)
	if s.Done() {
		return
	}
	s.PumpWindow()
}

// OnTimeout implements tcp.Strategy: a retransmission loss inside
// recovery is handled by the coarse timeout, as the paper specifies.
func (r *RRStrategy) OnTimeout(s *tcp.Sender) {
	r.phase = phaseNone
	r.actnum = 0
	r.ndup = 0
	r.noRetransmitBelow = s.MaxSeq()
}
