// Package workload assembles complete TCP flows — sender, receiver,
// trace, and FTP-style application data — onto a netem topology, and
// names the recovery variants the paper evaluates. It corresponds to
// the ns-2 scenario scripts in the original study.
package workload

import (
	"encoding/json"
	"fmt"
	"strings"

	"rrtcp/internal/core"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/trace"
)

// Kind selects a TCP loss-recovery variant.
type Kind int

// The variants the paper evaluates.
const (
	Tahoe Kind = iota + 1
	Reno
	NewReno
	SACK
	SACKModern
	RR
	RightEdge
	LinKung
	FACK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Tahoe:
		return "tahoe"
	case Reno:
		return "reno"
	case NewReno:
		return "newreno"
	case SACK:
		return "sack"
	case SACKModern:
		return "sack6675"
	case RR:
		return "rr"
	case RightEdge:
		return "rightedge"
	case LinKung:
		return "linkung"
	case FACK:
		return "fack"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalJSON implements json.Marshaler, encoding the variant name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON implements json.Unmarshaler.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	parsed, err := ParseKind(name)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind converts a variant name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tahoe":
		return Tahoe, nil
	case "reno":
		return Reno, nil
	case "newreno", "new-reno":
		return NewReno, nil
	case "sack":
		return SACK, nil
	case "sack6675", "sackmodern", "sack-modern":
		return SACKModern, nil
	case "rr", "robust", "robust-recovery":
		return RR, nil
	case "rightedge", "right-edge":
		return RightEdge, nil
	case "linkung", "lin-kung":
		return LinKung, nil
	case "fack":
		return FACK, nil
	default:
		return 0, fmt.Errorf("workload: unknown TCP variant %q", s)
	}
}

// Kinds lists all variants in evaluation order.
func Kinds() []Kind {
	return []Kind{Tahoe, Reno, NewReno, SACK, SACKModern, RR, RightEdge, LinKung, FACK}
}

// NeedsSACKReceiver reports whether the variant requires receiver-side
// selective acknowledgments — the deployment cost the paper holds
// against SACK TCP.
func (k Kind) NeedsSACKReceiver() bool { return k == SACK || k == SACKModern || k == FACK }

// FlowSpec describes one connection to install on a topology.
type FlowSpec struct {
	// Kind selects the recovery variant.
	Kind Kind
	// StartAt is when the flow begins transmitting.
	StartAt sim.Time
	// Bytes bounds the transfer (tcp.Infinite for an unbounded FTP).
	Bytes int64
	// Window is the advertised receiver window in packets (default 128).
	Window int
	// InitialSSThresh overrides the initial slow-start threshold.
	InitialSSThresh float64
	// MSS overrides the segment size (default 1000 bytes).
	MSS int
	// DelayedAck enables RFC 1122 delayed acknowledgments at the
	// receiver (the paper runs with them off).
	DelayedAck bool
	// SmoothStart enables the paper's [21] slow-start refinement.
	SmoothStart bool
	// RROptions, for Kind == RR, applies ablation knobs.
	RROptions *core.Options
	// Strategy, when non-nil, overrides Kind entirely — the escape hatch
	// for custom or deliberately broken strategies (chaos testing).
	Strategy tcp.Strategy
	// Telemetry, when non-nil, receives the flow's structured events
	// (sender, receiver, and recovery state machine).
	Telemetry *telemetry.Bus
	// NoTrace skips the per-flow FlowTrace ring entirely. Rings retain
	// every event of the connection — O(events) memory per flow — which
	// many-flow workloads replace with aggregate accounting (a
	// flowstats.FlowTable on the Telemetry bus) plus its sampled
	// exemplars.
	NoTrace bool
	// OnDone runs when the transfer completes.
	OnDone func()
}

// Flow is an installed connection.
type Flow struct {
	Spec     FlowSpec
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
	Trace    *trace.FlowTrace
}

// NewStrategy instantiates the strategy for a spec.
func (s FlowSpec) NewStrategy() (tcp.Strategy, error) {
	if s.Strategy != nil {
		return s.Strategy, nil
	}
	switch s.Kind {
	case Tahoe:
		return tcp.NewTahoe(), nil
	case Reno:
		return tcp.NewReno4BSD(), nil
	case NewReno:
		return tcp.NewNewReno(), nil
	case SACK:
		return tcp.NewSACK(), nil
	case SACKModern:
		return tcp.NewSACKModern(), nil
	case RR:
		if s.RROptions != nil {
			return core.NewRRWithOptions(*s.RROptions), nil
		}
		return core.NewRR(), nil
	case RightEdge:
		return tcp.NewRightEdge(), nil
	case LinKung:
		return tcp.NewLinKung(), nil
	case FACK:
		return tcp.NewFACK(), nil
	default:
		return nil, fmt.Errorf("workload: unknown TCP variant %v", s.Kind)
	}
}

// Install wires a flow into slot idx of the dumbbell and schedules its
// start.
func Install(sched *sim.Scheduler, d *netem.Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	if spec.Bytes == 0 {
		spec.Bytes = tcp.Infinite
	}
	strat, err := spec.NewStrategy()
	if err != nil {
		return nil, err
	}
	var tr *trace.FlowTrace // nil is a valid no-op trace
	if !spec.NoTrace {
		tr = trace.New(idx, spec.Kind.String())
	}
	recv := tcp.NewReceiver(sched, idx, d.ReceiverPort(idx), tr)
	recv.SACKEnabled = spec.Kind.NeedsSACKReceiver()
	recv.DelayedAck = spec.DelayedAck
	recv.Telemetry = spec.Telemetry
	recv.Pool = d.Pool()
	snd, err := tcp.New(sched, d.SenderPort(idx), strat, tcp.Config{
		Flow:            idx,
		MSS:             spec.MSS,
		Window:          spec.Window,
		InitialSSThresh: spec.InitialSSThresh,
		TotalBytes:      spec.Bytes,
		SmoothStart:     spec.SmoothStart,
		Trace:           tr,
		Telemetry:       spec.Telemetry,
		OnDone:          spec.OnDone,
		Pool:            d.Pool(),
	})
	if err != nil {
		return nil, fmt.Errorf("flow %d: %w", idx, err)
	}
	d.ConnectReceiver(idx, recv)
	d.ConnectSender(idx, snd)
	if err := snd.Start(spec.StartAt); err != nil {
		return nil, fmt.Errorf("flow %d: %w", idx, err)
	}
	return &Flow{Spec: spec, Sender: snd, Receiver: recv, Trace: tr}, nil
}

// InstallReverse wires a flow in the opposite direction: the sender
// sits at host K_idx and its data crosses the R2→R1 bottleneck, with
// ACKs returning over R1→R2. Two-way traffic like this is what makes
// drop-tail gateways interleave data and ACKs (the ACK-compression
// effects of Zhang, Shenker & Clark, SIGCOMM'91 — the paper's [22]).
func InstallReverse(sched *sim.Scheduler, d *netem.Dumbbell, idx int, spec FlowSpec) (*Flow, error) {
	if spec.Bytes == 0 {
		spec.Bytes = tcp.Infinite
	}
	strat, err := spec.NewStrategy()
	if err != nil {
		return nil, err
	}
	var tr *trace.FlowTrace
	if !spec.NoTrace {
		tr = trace.New(idx, spec.Kind.String()+"-rev")
	}
	// The receiver lives at the S side: its ACKs enter via SenderPort.
	recv := tcp.NewReceiver(sched, idx, d.SenderPort(idx), tr)
	recv.SACKEnabled = spec.Kind.NeedsSACKReceiver()
	recv.DelayedAck = spec.DelayedAck
	recv.Telemetry = spec.Telemetry
	recv.Pool = d.Pool()
	// The sender lives at the K side: its data enters via ReceiverPort.
	snd, err := tcp.New(sched, d.ReceiverPort(idx), strat, tcp.Config{
		Flow:            idx,
		MSS:             spec.MSS,
		Window:          spec.Window,
		InitialSSThresh: spec.InitialSSThresh,
		TotalBytes:      spec.Bytes,
		SmoothStart:     spec.SmoothStart,
		Trace:           tr,
		Telemetry:       spec.Telemetry,
		OnDone:          spec.OnDone,
		Pool:            d.Pool(),
	})
	if err != nil {
		return nil, fmt.Errorf("reverse flow %d: %w", idx, err)
	}
	// Data arrives at the S side; ACKs arrive back at the K side.
	d.ConnectSender(idx, recv)
	d.ConnectReceiver(idx, snd)
	if err := snd.Start(spec.StartAt); err != nil {
		return nil, fmt.Errorf("reverse flow %d: %w", idx, err)
	}
	return &Flow{Spec: spec, Sender: snd, Receiver: recv, Trace: tr}, nil
}

// InstallAll installs one flow per spec, in slot order.
func InstallAll(sched *sim.Scheduler, d *netem.Dumbbell, specs []FlowSpec) ([]*Flow, error) {
	flows := make([]*Flow, 0, len(specs))
	for i, spec := range specs {
		f, err := Install(sched, d, i, spec)
		if err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}
