package workload

import (
	"encoding/json"
	"testing"
	"time"

	"rrtcp/internal/core"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v → %v", k, got)
		}
	}
}

func TestParseKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"NewReno":         NewReno,
		"new-reno":        NewReno,
		"  rr ":           RR,
		"robust-recovery": RR,
		"SACK":            SACK,
		"sack-modern":     SACKModern,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("cubic"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestKindStringsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, k := range Kinds() {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind has empty String")
	}
}

func TestNeedsSACKReceiver(t *testing.T) {
	for _, k := range Kinds() {
		want := k == SACK || k == SACKModern || k == FACK
		if k.NeedsSACKReceiver() != want {
			t.Fatalf("NeedsSACKReceiver(%v) = %v", k, !want)
		}
	}
}

func TestNewStrategyAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		spec := FlowSpec{Kind: k}
		strat, err := spec.NewStrategy()
		if err != nil {
			t.Fatalf("NewStrategy(%v): %v", k, err)
		}
		if strat.Name() != k.String() {
			t.Fatalf("strategy name %q != kind %q", strat.Name(), k.String())
		}
	}
	if _, err := (FlowSpec{Kind: Kind(99)}).NewStrategy(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNewStrategyRROptions(t *testing.T) {
	spec := FlowSpec{Kind: RR, RROptions: &core.Options{RetreatDupsPerSegment: 1}}
	strat, err := spec.NewStrategy()
	if err != nil {
		t.Fatalf("NewStrategy: %v", err)
	}
	if _, ok := strat.(*core.RRStrategy); !ok {
		t.Fatalf("strategy %T, want *core.RRStrategy", strat)
	}
}

func TestInstallWiresEndToEnd(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(2))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	flows, err := InstallAll(sched, d, []FlowSpec{
		{Kind: RR, Bytes: 20 * 1000},
		{Kind: SACK, Bytes: 20 * 1000, StartAt: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(30 * time.Second)
	for i, f := range flows {
		if !f.Sender.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
		if f.Receiver.Delivered != 20*1000 {
			t.Fatalf("flow %d delivered %d", i, f.Receiver.Delivered)
		}
	}
	if !flows[1].Receiver.SACKEnabled {
		t.Fatal("SACK flow installed without a SACK receiver")
	}
	if flows[0].Receiver.SACKEnabled {
		t.Fatal("RR flow installed with a SACK receiver")
	}
}

func TestInstallDefaultsInfiniteBytes(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	f, err := Install(sched, d, 0, FlowSpec{Kind: Tahoe})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if f.Sender.TotalBytes() != tcp.Infinite {
		t.Fatalf("TotalBytes = %d, want Infinite", f.Sender.TotalBytes())
	}
	sched.Run(time.Second)
	if f.Sender.Done() {
		t.Fatal("infinite flow completed")
	}
}

func TestInstallRejectsBadKind(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	if _, err := Install(sched, d, 0, FlowSpec{Kind: Kind(42)}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("round trip %v → %v", k, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"cubic"`), &k); err == nil {
		t.Fatal("unknown variant unmarshalled")
	}
	if err := json.Unmarshal([]byte(`42`), &k); err == nil {
		t.Fatal("numeric kind unmarshalled")
	}
}

func TestInstallReverseEndToEnd(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	f, err := InstallReverse(sched, d, 0, FlowSpec{Kind: RR, Bytes: 30 * 1000, Window: 18})
	if err != nil {
		t.Fatalf("install reverse: %v", err)
	}
	sched.Run(30 * time.Second)
	if !f.Sender.Done() {
		t.Fatal("reverse transfer did not complete")
	}
	if f.Receiver.Delivered != 30*1000 {
		t.Fatalf("delivered %d", f.Receiver.Delivered)
	}
	if f.Trace.Name != "rr-rev" {
		t.Fatalf("trace name %q", f.Trace.Name)
	}
}

func TestInstallReverseRejectsBadKind(t *testing.T) {
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	if _, err := InstallReverse(sched, d, 0, FlowSpec{Kind: Kind(42)}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestForwardAndReverseShareSlot(t *testing.T) {
	// A forward flow on slot 0 and a reverse flow on slot 1 coexist.
	sched := sim.NewScheduler(1)
	d, err := netem.NewDumbbell(sched, netem.PaperDropTailConfig(2))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	fwd, err := Install(sched, d, 0, FlowSpec{Kind: NewReno, Bytes: 20 * 1000, Window: 18})
	if err != nil {
		t.Fatalf("fwd: %v", err)
	}
	rev, err := InstallReverse(sched, d, 1, FlowSpec{Kind: NewReno, Bytes: 20 * 1000, Window: 18})
	if err != nil {
		t.Fatalf("rev: %v", err)
	}
	sched.Run(60 * time.Second)
	if !fwd.Sender.Done() || !rev.Sender.Done() {
		t.Fatalf("fwd done=%t rev done=%t", fwd.Sender.Done(), rev.Sender.Done())
	}
}
