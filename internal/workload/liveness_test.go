package workload_test

import (
	"fmt"
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/workload"
)

// TestEveryVariantSurvivesEveryLossRegime is the liveness table: each
// TCP variant must complete a bounded transfer under each loss injector
// within a generous simulated-time bound. A variant that wedges under
// any regime — burst loss, random loss, correlated loss — fails its row.
func TestEveryVariantSurvivesEveryLossRegime(t *testing.T) {
	const (
		bytes = 150 * 1000
		bound = sim.Time(120 * time.Second)
	)
	regimes := []struct {
		name string
		loss func(sched *sim.Scheduler) netem.Node
	}{
		{"clean", func(*sim.Scheduler) netem.Node { return nil }},
		{"burst3", func(*sim.Scheduler) netem.Node {
			sl := netem.NewSeqLoss(nil)
			// A 3-packet burst, with the first retransmission of the lead
			// segment lost too — the paper's timeout-path stressor.
			sl.Drop(0, 20*1000, 21*1000, 22*1000)
			sl.DropRetransmit(0, 20*1000)
			return sl
		}},
		{"uniform5pct", func(sched *sim.Scheduler) netem.Node {
			return netem.NewUniformLoss(0.05, sched.DeriveRand("loss"), nil)
		}},
		{"gilbert", func(sched *sim.Scheduler) netem.Node {
			return netem.NewGilbertLoss(0.02, 0.3, 0.5, sched.DeriveRand("loss"), nil)
		}},
	}

	for _, regime := range regimes {
		for _, kind := range workload.Kinds() {
			t.Run(fmt.Sprintf("%s/%v", regime.name, kind), func(t *testing.T) {
				sched := sim.NewScheduler(1)
				dcfg := netem.PaperDropTailConfig(1)
				dcfg.Loss = regime.loss(sched)
				d, err := netem.NewDumbbell(sched, dcfg)
				if err != nil {
					t.Fatal(err)
				}
				flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
					Kind:   kind,
					Bytes:  bytes,
					Window: 64,
					OnDone: func() { sched.Stop() },
				})
				if err != nil {
					t.Fatal(err)
				}
				sched.Run(bound)
				if !flow.Sender.Done() {
					t.Fatalf("%v did not finish %d bytes under %s within %v (una=%d)",
						kind, bytes, regime.name, time.Duration(bound), flow.Sender.SndUna())
				}
			})
		}
	}
}
