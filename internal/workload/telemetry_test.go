package workload

import (
	"testing"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
)

// TestRRPhaseEventSequence replays the canned Figure 5 burst-loss
// pattern through an RR flow and asserts the exact ordered
// phase-transition events the state machine must publish:
// recovery-enter (begin retreat) → retreat-probe → recovery-exit, with
// the hand-off window cwnd = actnum packets at exit (§2.2's "seamless
// congestion recovery").
func TestRRPhaseEventSequence(t *testing.T) {
	sched := sim.NewScheduler(1)
	loss := netem.NewSeqLoss(nil)
	mss := int64(tcp.DefaultMSS)
	// Figure 5's 3-drop pattern: packets 60, 61, 63 of flow 0.
	for _, pk := range []int64{60, 61, 63} {
		loss.Drop(0, pk*mss)
	}
	dcfg := netem.PaperDropTailConfig(1)
	dcfg.Loss = loss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}

	ring := telemetry.NewRing(0)
	bus := telemetry.NewBus(ring)
	d.Instrument(bus)
	flow, err := Install(sched, d, 0, FlowSpec{
		Kind:            RR,
		Bytes:           150 * mss,
		Window:          18,
		InitialSSThresh: 9,
		Telemetry:       bus,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(60 * time.Second)

	if _, ok := flow.Trace.TransferDelay(); !ok {
		t.Fatal("transfer did not finish")
	}

	// Collect the RR state machine's phase transitions in order.
	var phases []telemetry.Event
	for _, ev := range ring.Events() {
		if ev.Comp != telemetry.CompRR {
			continue
		}
		switch ev.Kind {
		case telemetry.KRecoveryEnter, telemetry.KRetreatProbe, telemetry.KRecoveryExit:
			phases = append(phases, ev)
		}
	}
	want := []telemetry.Kind{telemetry.KRecoveryEnter, telemetry.KRetreatProbe, telemetry.KRecoveryExit}
	if len(phases) != len(want) {
		t.Fatalf("phase events = %d, want %d: %+v", len(phases), len(want), phases)
	}
	for i, k := range want {
		if phases[i].Kind != k {
			t.Fatalf("phase[%d] = %v, want %v", i, phases[i].Kind, k)
		}
	}
	enter, probe, exit := phases[0], phases[1], phases[2]
	if !(enter.At < probe.At && probe.At < exit.At) {
		t.Fatalf("phase times not ordered: %v %v %v", enter.At, probe.At, exit.At)
	}
	// The retreat→probe flip carries actnum; the exit window must be
	// exactly that many packets (cwnd = actnum × MSS).
	if probe.A <= 0 {
		t.Fatalf("probe actnum = %v, want > 0", probe.A)
	}
	if exit.A != probe.A+1 && exit.A != probe.A {
		// actnum may grow by one per probe RTT before exit; accept the
		// grown value but require the exact hand-off relation to the
		// last actnum sample.
		last := ring.EventsOf(telemetry.KActnum)
		if len(last) == 0 || exit.A != last[len(last)-1].A {
			t.Fatalf("exit cwnd %v does not match actnum (probe %v)", exit.A, probe.A)
		}
	}

	// The engineered drops must be attributed to the loss injector.
	drops := 0
	for _, ev := range ring.Events() {
		if ev.Comp == telemetry.CompLoss && ev.Kind == telemetry.KDrop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("loss-injector drops = %d, want 3", drops)
	}
}

// TestTelemetryMatchesTraceCounters cross-checks the event stream
// against the legacy FlowTrace counters for the same run.
func TestTelemetryMatchesTraceCounters(t *testing.T) {
	sched := sim.NewScheduler(1)
	loss := netem.NewSeqLoss(nil)
	mss := int64(tcp.DefaultMSS)
	loss.Drop(0, 60*mss)
	dcfg := netem.PaperDropTailConfig(1)
	dcfg.Loss = loss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	ring := telemetry.NewRing(0)
	flow, err := Install(sched, d, 0, FlowSpec{
		Kind:            NewReno,
		Bytes:           100 * mss,
		Window:          18,
		InitialSSThresh: 9,
		Telemetry:       telemetry.NewBus(ring),
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(60 * time.Second)

	if got := uint64(len(ring.EventsOf(telemetry.KRetransmit))); got != flow.Trace.Retransmits {
		t.Fatalf("retransmit events %d != trace counter %d", got, flow.Trace.Retransmits)
	}
	if got := uint64(len(ring.EventsOf(telemetry.KTimeout))); got != flow.Trace.Timeouts {
		t.Fatalf("timeout events %d != trace counter %d", got, flow.Trace.Timeouts)
	}
	sends := len(ring.EventsOf(telemetry.KSend))
	if sends != 100 {
		t.Fatalf("send events = %d, want 100", sends)
	}
	if done := ring.EventsOf(telemetry.KFlowDone); len(done) != 1 {
		t.Fatalf("done events = %d, want 1", len(done))
	}
}
