package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"rrtcp/internal/sim"
)

// The span layer turns the bus's point events into intervals: a
// recovery episode is not one event but a region of time with internal
// structure (the retreat→probe split, further-loss detections, actnum
// updates), and the questions the paper asks — how long did probe last,
// how did actnum evolve across it — are questions about that region.
// SpanSink is a bus subscriber that assembles the intervals online;
// RenderSpans and WriteChromeTrace are its text and Perfetto exports.

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds.
const (
	// SpanConn covers a connection's lifetime: first sender event
	// through the flow-done event.
	SpanConn SpanKind = iota + 1
	// SpanRecovery covers one loss-recovery episode
	// (recovery-enter → recovery-exit).
	SpanRecovery
	// SpanRetreat is RR's back-off sub-phase, a child of SpanRecovery.
	SpanRetreat
	// SpanProbe is RR's conservative-growth sub-phase, a child of
	// SpanRecovery.
	SpanProbe
	// SpanQueueBusy covers a bottleneck-queue busy period: first
	// enqueue into an empty queue through the transmission that drains
	// it.
	SpanQueueBusy
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanConn:
		return "conn"
	case SpanRecovery:
		return "recovery"
	case SpanRetreat:
		return "retreat"
	case SpanProbe:
		return "probe"
	case SpanQueueBusy:
		return "queue-busy"
	default:
		return "?"
	}
}

// SpanEvent is a point event attached to a span (a further-loss
// detection, an actnum update) — an instant, not an interval.
type SpanEvent struct {
	At   sim.Time
	Name string
	A, B float64
}

// Span is one assembled interval. IDs are assigned in open order on the
// single simulation goroutine, so they are deterministic.
type Span struct {
	ID     int
	Parent int // parent span ID, or -1 for a root span
	Kind   SpanKind
	Flow   int32 // NoFlow for instance-scoped spans (queues)
	Src    string
	// Seg is the stream segment the span belongs to. A segment rolls
	// whenever sim time regresses in the event stream — which happens
	// when several runs are republished back-to-back onto one bus (the
	// fig5 multi-variant export) — so spans from different runs never
	// interleave.
	Seg   int
	Begin sim.Time
	End   sim.Time
	// Open marks a span that never saw its closing event (a truncated
	// log, or the segment rolled underneath it); End then holds the
	// last time seen in the segment.
	Open   bool
	Attrs  map[string]float64
	Events []SpanEvent
}

// Duration reports End − Begin.
func (s *Span) Duration() sim.Time { return s.End - s.Begin }

func (s *Span) attr(name string, v float64) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]float64, 4)
	}
	s.Attrs[name] = v
}

// SpanSink assembles spans from the event stream. It is a Sink; attach
// it to a bus (or feed decoded records through Emit via Record.Event).
// A nil *SpanSink is a valid no-op, mirroring the nil-bus null default.
type SpanSink struct {
	spans []*Span

	seg  int
	last sim.Time
	any  bool

	conn map[int32]*Span // open connection span per flow
	rec  map[int32]*Span // open recovery episode per flow
	sub  map[int32]*Span // open retreat/probe child per flow
	busy map[string]*Span
}

// NewSpanSink returns an empty span assembler.
func NewSpanSink() *SpanSink {
	return &SpanSink{
		conn: make(map[int32]*Span),
		rec:  make(map[int32]*Span),
		sub:  make(map[int32]*Span),
		busy: make(map[string]*Span),
	}
}

func (s *SpanSink) open(kind SpanKind, flow int32, src string, parent int, at sim.Time) *Span {
	sp := &Span{
		ID:     len(s.spans),
		Parent: parent,
		Kind:   kind,
		Flow:   flow,
		Src:    src,
		Seg:    s.seg,
		Begin:  at,
		End:    at,
		Open:   true,
	}
	s.spans = append(s.spans, sp)
	return sp
}

func closeSpan(sp *Span, at sim.Time) {
	if sp == nil {
		return
	}
	sp.End = at
	sp.Open = false
}

// rollSegment abandons all open spans (they stay Open with End at the
// last time seen) and starts a fresh segment.
func (s *SpanSink) rollSegment() {
	for _, sp := range s.spans {
		if sp.Open && sp.Seg == s.seg {
			sp.End = s.last
		}
	}
	s.seg++
	clear(s.conn)
	clear(s.rec)
	clear(s.sub)
	clear(s.busy)
}

// Emit implements Sink.
func (s *SpanSink) Emit(ev Event) {
	if s == nil {
		return
	}
	// Sweep progress events fire on the coordinating goroutine at t=0
	// between simulations; they are not part of any run's timeline.
	if ev.Comp == CompSweep {
		return
	}
	if s.any && ev.At < s.last {
		s.rollSegment()
	}
	s.any = true
	s.last = ev.At

	// Connection lifetime: opened lazily by the first flow-scoped
	// sender/receiver/RR event, closed by flow-done. Gauge samples and
	// flow accounting are passive instrumentation, not connection
	// activity — a sampler tick or a stats event landing after flow-done
	// must not resurrect the span.
	if ev.Flow != NoFlow && ev.Kind != KSample && ev.Kind != KFlowStats {
		switch ev.Comp {
		case CompSender, CompRecv, CompRR:
			if s.conn[ev.Flow] == nil {
				s.conn[ev.Flow] = s.open(SpanConn, ev.Flow, "", -1, ev.At)
			}
		}
	}

	switch ev.Kind {
	case KFlowDone:
		closeSpan(s.conn[ev.Flow], ev.At)
		delete(s.conn, ev.Flow)

	case KRecoveryEnter:
		parent := -1
		if c := s.conn[ev.Flow]; c != nil {
			parent = c.ID
		}
		rec := s.open(SpanRecovery, ev.Flow, "", parent, ev.At)
		rec.attr("enter_cwnd", ev.A)
		rec.attr("ssthresh", ev.B)
		s.rec[ev.Flow] = rec
		// Only RR has the retreat/probe split; baseline variants emit
		// recovery-enter from the sender path and get a flat episode.
		if ev.Comp == CompRR {
			s.sub[ev.Flow] = s.open(SpanRetreat, ev.Flow, "", rec.ID, ev.At)
		}

	case KRetreatProbe:
		rec := s.rec[ev.Flow]
		if rec == nil {
			return
		}
		closeSpan(s.sub[ev.Flow], ev.At)
		probe := s.open(SpanProbe, ev.Flow, "", rec.ID, ev.At)
		probe.attr("actnum", ev.A)
		s.sub[ev.Flow] = probe

	case KFurtherLoss, KActnum:
		rec := s.rec[ev.Flow]
		if rec == nil {
			return
		}
		// Instants attach to the innermost open span — the retreat or
		// probe sub-phase when RR is active — so the exported trace
		// keeps them inside the slice they occurred in.
		target := rec
		if sub := s.sub[ev.Flow]; sub != nil {
			target = sub
		}
		target.Events = append(target.Events, SpanEvent{At: ev.At, Name: ev.Kind.String(), A: ev.A, B: ev.B})
		if ev.Kind == KFurtherLoss {
			rec.attr("further_losses", rec.Attrs["further_losses"]+1)
		}

	case KRecoveryExit:
		rec := s.rec[ev.Flow]
		if rec == nil {
			return
		}
		closeSpan(s.sub[ev.Flow], ev.At)
		delete(s.sub, ev.Flow)
		rec.attr("exit_cwnd", ev.A)
		closeSpan(rec, ev.At)
		delete(s.rec, ev.Flow)

	case KEnqueue:
		if ev.Comp == CompQueue && s.busy[ev.Src] == nil {
			s.busy[ev.Src] = s.open(SpanQueueBusy, NoFlow, ev.Src, -1, ev.At)
		}

	case KLinkTx:
		// The link leaving zero occupancy behind ends the busy period.
		if ev.B == 0 {
			if sp := s.busy[ev.Src]; sp != nil {
				closeSpan(sp, ev.At)
				delete(s.busy, ev.Src)
			}
		}
	}
}

// Spans returns the assembled spans in open order. Spans still open
// (truncated stream) keep Open=true with End at the last time seen in
// their segment.
func (s *SpanSink) Spans() []*Span {
	if s == nil {
		return nil
	}
	for _, sp := range s.spans {
		if sp.Open && sp.Seg == s.seg {
			sp.End = s.last
		}
	}
	return s.spans
}

// AssembleSpans runs decoded NDJSON records through a SpanSink — the
// offline (rrtrace) path to the same assembly the live sink performs.
func AssembleSpans(records []Record) []*Span {
	sink := NewSpanSink()
	for _, rec := range records {
		if ev, ok := rec.Event(); ok {
			sink.Emit(ev)
		}
	}
	return sink.Spans()
}

// RenderSpans formats spans as an indented tree, one segment per block,
// children nested under their parents in time order.
func RenderSpans(spans []*Span) string {
	var b strings.Builder
	if len(spans) == 0 {
		b.WriteString("no spans\n")
		return b.String()
	}
	children := make(map[int][]*Span)
	var roots []*Span
	for _, sp := range spans {
		if sp.Parent < 0 {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	seg := -1
	var render func(sp *Span, depth int)
	render = func(sp *Span, depth int) {
		indent := strings.Repeat("  ", depth)
		label := sp.Kind.String()
		if sp.Src != "" {
			label += " " + sp.Src
		}
		if sp.Flow != NoFlow {
			label += fmt.Sprintf(" flow=%d", sp.Flow)
		}
		open := ""
		if sp.Open {
			open = "  [open]"
		}
		fmt.Fprintf(&b, "%s%-28s %11.6f .. %11.6f  (%9.6fs)%s%s\n",
			indent, label, sp.Begin.Seconds(), sp.End.Seconds(),
			sp.Duration().Seconds(), renderAttrs(sp.Attrs), open)
		for _, evt := range sp.Events {
			fmt.Fprintf(&b, "%s  @%.6f %s a=%g b=%g\n",
				indent, evt.At.Seconds(), evt.Name, evt.A, evt.B)
		}
		for _, c := range children[sp.ID] {
			render(c, depth+1)
		}
	}
	for _, sp := range roots {
		if sp.Seg != seg {
			seg = sp.Seg
			fmt.Fprintf(&b, "segment %d\n", seg)
		}
		render(sp, 1)
	}
	return b.String()
}

func renderAttrs(attrs map[string]float64) string {
	if len(attrs) == 0 {
		return ""
	}
	names := make([]string, 0, len(attrs))
	for k := range attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "  %s=%g", k, attrs[k])
	}
	return b.String()
}
