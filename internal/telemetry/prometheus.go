package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition of a Registry.
//
// The registry's dotted naming convention "comp.instance.metric" maps
// onto Prometheus families: the component and metric become the family
// name and the instance becomes a label, so
//
//	sender.0.retransmits   -> rrsim_sender_retransmits_total{instance="0"}
//	queue.fwd.occupancy    -> rrsim_queue_occupancy{instance="fwd"}
//	sweep.job_latency_s    -> rrsim_sweep_job_latency_s{quantile=...}
//
// Counters gain the conventional _total suffix; exact and log-bucketed
// histograms are exposed as summaries (quantile series plus _sum and
// _count). Everything is written sorted, so scrapes of an idle registry
// are byte-stable.

// promNamespace prefixes every exposed family.
const promNamespace = "rrsim"

// promSplit translates a dotted registry name into a family name (sans
// namespace/suffix) and an instance label value (empty when the name
// has no instance part).
func promSplit(name string) (family, instance string) {
	parts := strings.Split(name, ".")
	switch len(parts) {
	case 1:
		return promSanitize(parts[0]), ""
	case 2:
		return promSanitize(parts[0] + "_" + parts[1]), ""
	default:
		return promSanitize(parts[0] + "_" + parts[len(parts)-1]),
			strings.Join(parts[1:len(parts)-1], ".")
	}
}

// promSanitize maps a name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], collapsing anything else to '_'.
func promSanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promSample is one exposition line under a family.
type promSample struct {
	suffix string // appended to the family name ("", "_sum", "_count")
	labels string // rendered label block, "" or `{k="v",...}`
	value  float64
	intVal bool
}

type promFamily struct {
	name    string // full family name, namespace included
	typ     string // counter | gauge | summary
	samples []promSample
}

func promLabels(pairs ...[2]string) string {
	var parts []string
	for _, p := range pairs {
		if p[1] == "" {
			continue
		}
		parts = append(parts, fmt.Sprintf(`%s="%s"`, p[0], promEscape(p[1])))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// summaryQuantiles are the quantile series exposed per histogram.
var summaryQuantiles = []struct {
	label string
	p     float64
}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4). Like Snapshot, it may run while publishers
// keep writing: values are read atomically and never block updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := map[string]*promFamily{}
	add := func(name, typ string, s promSample) {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		f.samples = append(f.samples, s)
	}

	for _, tagged := range r.metricNames() {
		kind, name := tagged[:1], tagged[2:]
		family, instance := promSplit(name)
		switch kind {
		case "c":
			add(promNamespace+"_"+family+"_total", "counter", promSample{
				labels: promLabels([2]string{"instance", instance}),
				value:  float64(r.Counter(name)), intVal: true,
			})
		case "g":
			add(promNamespace+"_"+family, "gauge", promSample{
				labels: promLabels([2]string{"instance", instance}),
				value:  r.Gauge(name),
			})
		case "h":
			h := r.Hist(name)
			fam := promNamespace + "_" + family
			for _, q := range summaryQuantiles {
				add(fam, "summary", promSample{
					labels: promLabels([2]string{"instance", instance}, [2]string{"quantile", q.label}),
					value:  h.Quantile(q.p),
				})
			}
			add(fam, "summary", promSample{suffix: "_sum",
				labels: promLabels([2]string{"instance", instance}), value: h.Sum()})
			add(fam, "summary", promSample{suffix: "_count",
				labels: promLabels([2]string{"instance", instance}),
				value:  float64(h.Count()), intVal: true})
		case "l":
			h := r.LogHist(name)
			fam := promNamespace + "_" + family
			for _, q := range summaryQuantiles {
				add(fam, "summary", promSample{
					labels: promLabels([2]string{"instance", instance}, [2]string{"quantile", q.label}),
					value:  h.Quantile(q.p),
				})
			}
			add(fam, "summary", promSample{suffix: "_sum",
				labels: promLabels([2]string{"instance", instance}), value: h.Sum()})
			add(fam, "summary", promSample{suffix: "_count",
				labels: promLabels([2]string{"instance", instance}),
				value:  float64(h.Count()), intVal: true})
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			var err error
			if s.intVal {
				_, err = fmt.Fprintf(w, "%s%s%s %d\n", f.name, s.suffix, s.labels, int64(s.value))
			} else {
				_, err = fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels,
					strconv.FormatFloat(s.value, 'g', -1, 64))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// promSampleLine matches one exposition sample line: a metric name, an
// optional label block, and a value.
var promSampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// promLabelPair matches one label inside a label block.
var promLabelPair = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)

// ValidatePrometheus structurally checks Prometheus text-format output:
// every non-comment line must be a well-formed sample, label blocks must
// parse, values must be numeric, and every sample must belong to a
// family declared by a preceding # TYPE line (directly or via the
// summary _sum/_count suffixes). It is the test-side counterpart of
// WritePrometheus, and what the introspection-server tests scrape
// /metrics through.
func ValidatePrometheus(data []byte) error {
	typed := map[string]string{}
	lineNo := 0
	sawSample := false
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prometheus: line %d: malformed TYPE comment", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("prometheus: line %d: unknown type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("prometheus: line %d: malformed sample %q", lineNo, line)
		}
		name := m[1]
		if m[2] != "" {
			inner := m[2][1 : len(m[2])-1]
			for _, pair := range splitPromLabels(inner) {
				if !promLabelPair.MatchString(pair) {
					return fmt.Errorf("prometheus: line %d: malformed label %q", lineNo, pair)
				}
			}
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64); err != nil &&
			m[3] != "NaN" && m[3] != "+Inf" && m[3] != "-Inf" {
			return fmt.Errorf("prometheus: line %d: bad value %q", lineNo, m[3])
		}
		base := name
		for _, suf := range []string{"_sum", "_count", "_bucket"} {
			if t, ok := typed[strings.TrimSuffix(name, suf)]; ok &&
				strings.HasSuffix(name, suf) && (t == "summary" || t == "histogram") {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("prometheus: line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		sawSample = true
	}
	_ = sawSample // an empty exposition (no metrics yet) is valid
	return nil
}

// splitPromLabels splits a label-block interior on commas that sit
// outside quoted values.
func splitPromLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
