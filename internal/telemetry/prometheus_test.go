package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition byte-for-byte for a
// registry exercising every metric kind and naming shape. Regenerate
// with `go test ./internal/telemetry -run Golden -update` after an
// intentional format change.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Inc("sender.0.retransmits", 4)
	r.Inc("queue.fwd.drops", 2)
	r.Inc("invariant.violations", 1)
	r.Inc("sweep.started", 1)
	r.SetGauge("sender.0.cwnd", 12.5)
	r.SetGauge("queue.fwd.occupancy", 7)
	r.SetGauge("sim.heap_depth", 33)
	for _, v := range []float64{1, 2, 3, 4, 100} {
		r.Observe("queue.fwd.occupancy_hist", v)
	}
	for _, v := range []float64{0.01, 0.02, 0.04} {
		r.ObserveLog("sweep.job_latency_s", v)
	}
	// A hostile instance name: label value needs escaping, family is
	// sanitized.
	r.Inc(`queue.we"ird\x.drops`, 9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("own output fails validation: %v\n%s", err, buf.String())
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestWritePrometheusWhileWriting(t *testing.T) {
	r := NewRegistry()
	r.Inc("queue.fwd.drops", 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			r.Inc("queue.fwd.drops", 1)
			r.SetGauge("sender.0.cwnd", float64(i))
			r.Observe("queue.fwd.occupancy_hist", float64(i%40))
			r.ObserveLog("sweep.job_latency_s", float64(i%7+1))
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidatePrometheus(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, buf.String())
		}
	}
	<-done
}

func TestPromSplit(t *testing.T) {
	cases := []struct {
		name, family, instance string
	}{
		{"violations", "violations", ""},
		{"sweep.started", "sweep_started", ""},
		{"queue.fwd.drops", "queue_drops", "fwd"},
		{"sender.0.sample_cwnd", "sender_sample_cwnd", "0"},
		{"sweep.3.worker_busy_s", "sweep_worker_busy_s", "3"},
		{"a.b.c.d", "a_d", "b.c"},
	}
	for _, c := range cases {
		fam, inst := promSplit(c.name)
		if fam != c.family || inst != c.instance {
			t.Errorf("promSplit(%q) = (%q, %q), want (%q, %q)",
				c.name, fam, inst, c.family, c.instance)
		}
	}
}

func TestValidatePrometheusAccepts(t *testing.T) {
	good := []string{
		"",
		"# TYPE x counter\nx 1\n",
		"# TYPE x_seconds gauge\nx_seconds{instance=\"fwd\"} 1.5e-3\n",
		"# TYPE lat summary\nlat{quantile=\"0.5\"} 2\nlat_sum 10\nlat_count 5\n",
		"# HELP x something\n# TYPE x counter\nx 1\n",
		"# TYPE x gauge\nx NaN\nx{a=\"b\"} +Inf\n",
	}
	for _, g := range good {
		if err := ValidatePrometheus([]byte(g)); err != nil {
			t.Errorf("ValidatePrometheus(%q) = %v, want nil", g, err)
		}
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	bad := map[string]string{
		"no TYPE":          "x 1\n",
		"bad value":        "# TYPE x counter\nx one\n",
		"bad name":         "# TYPE x counter\n1x 1\n",
		"bad label":        "# TYPE x counter\nx{1a=\"b\"} 1\n",
		"unquoted label":   "# TYPE x counter\nx{a=b} 1\n",
		"unknown type":     "# TYPE x histogramme\nx 1\n",
		"truncated TYPE":   "# TYPE x\nx 1\n",
		"suffix untyped":   "# TYPE x counter\nx_sum 1\n",
		"garbage line":     "# TYPE x counter\nx 1\nhello world again\n",
		"missing value":    "# TYPE x counter\nx\n",
		"value not number": "# TYPE x gauge\nx 1.2.3\n",
	}
	for name, b := range bad {
		if err := ValidatePrometheus([]byte(b)); err == nil {
			t.Errorf("%s: ValidatePrometheus(%q) accepted", name, b)
		}
	}
}

func TestPromSanitize(t *testing.T) {
	if got := promSanitize("9lives"); !strings.HasPrefix(got, "_") {
		t.Errorf("leading digit not guarded: %q", got)
	}
	if got := promSanitize(`we"ird\x`); strings.ContainsAny(got, `"\`) {
		t.Errorf("promSanitize left metric-name junk: %q", got)
	}
}
