package telemetry

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

// spinChain schedules a chain of n events, each 1ms after the last, so
// the scheduler processes a known count over a known span of sim time.
func spinChain(t *testing.T, sched *sim.Scheduler, n int) {
	t.Helper()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			if _, err := sched.Schedule(time.Millisecond, tick); err != nil {
				t.Fatalf("schedule: %v", err)
			}
		}
	}
	if _, err := sched.Schedule(0, tick); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sched.RunAll()
	if fired != n {
		t.Fatalf("chain fired %d events, want %d", fired, n)
	}
}

func TestAttachSchedulerProfilePublishes(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := NewRing(0)
	AttachSchedulerProfile(sched, NewBus(ring), 8)
	spinChain(t, sched, 100)

	evs := ring.EventsOf(KSchedProfile)
	if want := 100 / 8; len(evs) != want {
		t.Fatalf("%d profile events for 100 processed at every=8, want %d", len(evs), want)
	}
	var lastSeq int64
	var lastAt sim.Time
	for i, ev := range evs {
		if ev.Comp != CompSim || ev.Flow != NoFlow {
			t.Fatalf("event %d misattributed: %+v", i, ev)
		}
		if ev.Seq != int64(8*(i+1)) {
			t.Fatalf("event %d processed count = %d, want %d", i, ev.Seq, 8*(i+1))
		}
		if ev.Seq <= lastSeq && i > 0 {
			t.Fatalf("processed count not increasing at event %d", i)
		}
		if ev.At < lastAt {
			t.Fatalf("profile sample time regressed at event %d", i)
		}
		// A is the heap depth: the chain keeps at most one event pending.
		if ev.A < 0 || ev.A > 1 {
			t.Fatalf("event %d pending depth %v, want 0 or 1", i, ev.A)
		}
		// B is wall seconds per sim second — nondeterministic, but never
		// negative (sim time only moves forward).
		if ev.B < 0 {
			t.Fatalf("event %d wall-per-sim-sec %v < 0", i, ev.B)
		}
		lastSeq, lastAt = ev.Seq, ev.At
	}
}

func TestAttachSchedulerProfileDefaultInterval(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := NewRing(0)
	// every=0 falls back to 4096 processed events per sample.
	AttachSchedulerProfile(sched, NewBus(ring), 0)
	spinChain(t, sched, 5000)
	evs := ring.EventsOf(KSchedProfile)
	if len(evs) != 1 {
		t.Fatalf("%d profile events for 5000 processed at the default interval, want 1", len(evs))
	}
	if evs[0].Seq != 4096 {
		t.Fatalf("sample at processed=%d, want 4096", evs[0].Seq)
	}
}

func TestAttachSchedulerProfileDisabled(t *testing.T) {
	// A disabled bus must not install the hook at all: the scheduler
	// stays on its fast path and publishes nothing.
	sched := sim.NewScheduler(1)
	AttachSchedulerProfile(sched, NewBus(), 4)
	spinChain(t, sched, 64)

	// Nil bus and nil scheduler are equally inert.
	AttachSchedulerProfile(sched, nil, 4)
	AttachSchedulerProfile(nil, NewBus(NewRing(0)), 4)
	spinChain(t, sched, 64)
}

func TestSchedulerProfileHookRemoval(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := NewRing(0)
	AttachSchedulerProfile(sched, NewBus(ring), 4)
	spinChain(t, sched, 16)
	before := len(ring.EventsOf(KSchedProfile))
	if before == 0 {
		t.Fatal("hook never fired")
	}
	// Clearing the hook stops sampling without disturbing the run.
	sched.SetProfileHook(0, nil)
	spinChain(t, sched, 64)
	if after := len(ring.EventsOf(KSchedProfile)); after != before {
		t.Fatalf("removed hook still fired: %d -> %d events", before, after)
	}
}
