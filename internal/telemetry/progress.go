package telemetry

import (
	"fmt"
	"io"
)

// ProgressSink renders sweep-engine progress events as a single
// carriage-return-updated status line, for interactive stderr feedback
// while a long sweep runs. Events from other components are ignored.
type ProgressSink struct {
	w       io.Writer
	started bool
}

// NewProgressSink returns a sink writing sweep progress to w.
func NewProgressSink(w io.Writer) *ProgressSink { return &ProgressSink{w: w} }

// Emit implements Sink.
func (p *ProgressSink) Emit(ev Event) {
	if ev.Comp != CompSweep {
		return
	}
	switch ev.Kind {
	case KSweepStart:
		fmt.Fprintf(p.w, "%s: %d jobs on %d workers\n", label(ev.Src), int(ev.A), int(ev.B))
		p.started = true
	case KSweepJob:
		fmt.Fprintf(p.w, "\r%d/%d %-40s", int(ev.A), int(ev.B), ev.Src)
	case KSweepStall:
		fmt.Fprintf(p.w, "\rstall: job %d (%s) running %.1fs on worker %d%-10s\n",
			ev.Seq, ev.Src, ev.A, int(ev.B), "")
	case KSweepRetry:
		fmt.Fprintf(p.w, "\rretry: job %d (%s) attempt %d failed, backing off %.2gs%-10s\n",
			ev.Seq, ev.Src, int(ev.A), ev.B, "")
	case KSweepDegraded:
		fmt.Fprintf(p.w, "\rdegraded: job %d (%s) hit its resource budget%-10s\n",
			ev.Seq, ev.Src, "")
	case KSweepDone:
		if p.started {
			fmt.Fprintf(p.w, "\r%s: %d jobs done%-30s\n", label(ev.Src), int(ev.A), "")
			p.started = false
		}
	}
}

func label(src string) string {
	if src == "" {
		return "sweep"
	}
	return src
}
