package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func chromeFixture(t *testing.T) []byte {
	t.Helper()
	spanSink := NewSpanSink()
	seriesSink := NewSeriesSink()
	// One run's events in chronological order: a connection with one RR
	// episode, a queue busy period, and two cwnd samples.
	feed := func(sink Sink) {
		sink.Emit(Event{At: ms(0), Comp: CompSender, Kind: KSend, Flow: 0, Seq: 1000})
		sink.Emit(Event{At: ms(10), Comp: CompQueue, Kind: KEnqueue, Src: "fwd", Flow: NoFlow, A: 1})
		sink.Emit(Event{At: ms(50), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: 12})
		sink.Emit(Event{At: ms(100), Comp: CompRR, Kind: KRecoveryEnter, Flow: 0, A: 16, B: 8})
		sink.Emit(Event{At: ms(150), Comp: CompRR, Kind: KRetreatProbe, Flow: 0, A: 8})
		sink.Emit(Event{At: ms(160), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: 6})
		sink.Emit(Event{At: ms(200), Comp: CompRR, Kind: KActnum, Flow: 0, A: 8, B: 0})
		sink.Emit(Event{At: ms(250), Comp: CompRR, Kind: KActnum, Flow: 0, A: 9, B: 0})
		sink.Emit(Event{At: ms(300), Comp: CompRR, Kind: KRecoveryExit, Flow: 0, A: 9})
		sink.Emit(Event{At: ms(450), Comp: CompLink, Kind: KLinkTx, Src: "fwd", Flow: NoFlow, A: 1000, B: 0})
		sink.Emit(Event{At: ms(500), Comp: CompSender, Kind: KFlowDone, Flow: 0})
	}
	// Feeding twice models the fig5 multi-variant republish: sim time
	// restarts at zero, which rolls the sinks onto a second segment.
	feed(spanSink)
	feed(spanSink)
	feed(seriesSink)
	feed(seriesSink)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spanSink.Spans(), seriesSink.Series()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteChromeTraceValidates(t *testing.T) {
	data := chromeFixture(t)
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, data)
	}
}

func TestChromeTraceContents(t *testing.T) {
	data := chromeFixture(t)
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	var threads []string
	counters := map[string]int{}
	phases := map[string]int{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads = append(threads, ev.Args["name"].(string))
			}
		case "C":
			counters[ev.Name]++
		case "B":
			phases[ev.Name]++
		}
	}
	for _, want := range []string{"seg0 flow0", "seg0 queue fwd", "seg1 flow0", "seg1 queue fwd"} {
		found := false
		for _, th := range threads {
			if th == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing track %q in %v", want, threads)
		}
	}
	if counters["seg0 flow0 cwnd"] != 2 || counters["seg1 flow0 cwnd"] != 2 {
		t.Fatalf("counter samples = %v", counters)
	}
	// Per segment: conn, recovery, retreat, probe, queue-busy.
	for _, kind := range []string{"conn", "recovery", "retreat", "probe", "queue-busy"} {
		if phases[kind] != 2 {
			t.Fatalf("B events for %q = %d, want 2 (one per segment): %v", kind, phases[kind], phases)
		}
	}
}

func TestChromeTraceSegmentOffsetsMonotone(t *testing.T) {
	data := chromeFixture(t)
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	// Map tids to segments via thread_name metadata, then require every
	// segment-1 timestamp to land beyond segment 0's end (500ms of sim
	// time) on the shared timeline.
	seg1 := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "seg1 ") {
				seg1[ev.Tid] = true
			}
		}
	}
	if len(seg1) == 0 {
		t.Fatal("no segment-1 tracks found")
	}
	seg0End := (500 * time.Millisecond).Seconds() * 1e6
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "M" && seg1[ev.Tid] && ev.Ts <= seg0End {
			t.Fatalf("event %d on a seg1 track at ts %g, inside segment 0 (< %g)", i, ev.Ts, seg0End)
		}
	}
}

func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      "]",
		"no events key": `{"foo":1}`,
		"unbalanced":    `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"stray end":     `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"regression": `{"traceEvents":[
			{"name":"x","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"y","ph":"B","ts":3,"pid":1,"tid":1},
			{"name":"y","ph":"E","ts":4,"pid":1,"tid":1},
			{"name":"x","ph":"E","ts":6,"pid":1,"tid":1}]}`,
		"crossed pair": `{"traceEvents":[
			{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"y","ph":"B","ts":2,"pid":1,"tid":1},
			{"name":"x","ph":"E","ts":3,"pid":1,"tid":1},
			{"name":"y","ph":"E","ts":4,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := `{"traceEvents":[
		{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
		{"name":"x","ph":"E","ts":2,"pid":1,"tid":1}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("minimal valid trace rejected: %v", err)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	a := chromeFixture(t)
	b := chromeFixture(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical exports differ byte-wise")
	}
	if !strings.Contains(string(a), `"displayTimeUnit":"ms"`) {
		t.Fatal("missing displayTimeUnit")
	}
}
