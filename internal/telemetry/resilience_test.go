package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// --- the resilience event vocabulary ---

func TestResilienceKindsRoundTripNDJSON(t *testing.T) {
	var buf bytes.Buffer
	nd := NewNDJSONSink(&buf)
	nd.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j3", Flow: NoFlow, Seq: 3, A: 12.5, B: 1})
	nd.Emit(Event{Comp: CompSweep, Kind: KSweepRetry, Src: "j3", Flow: NoFlow, Seq: 3, A: 2, B: 0.2})
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	stall, retry := recs[0], recs[1]
	if stall.Kind != "sweep-stall" || stall.Attr("running_s", 0) != 12.5 || stall.Attr("worker", -1) != 1 {
		t.Fatalf("stall record wrong: %+v", stall)
	}
	if retry.Kind != "sweep-retry" || retry.Attr("attempt", 0) != 2 || retry.Attr("backoff_s", 0) != 0.2 {
		t.Fatalf("retry record wrong: %+v", retry)
	}
	for _, r := range recs {
		if _, ok := r.Event(); !ok {
			t.Fatalf("record %+v does not decode back to an Event", r)
		}
	}
}

// --- /progress materialized view ---

func TestProgressStateTracksStallsAndRetries(t *testing.T) {
	p := NewProgressState()
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStart, Src: "chaos", Flow: NoFlow, A: 4, B: 2})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j1", Flow: NoFlow, Seq: 1, A: 5, B: 0})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j2", Flow: NoFlow, Seq: 2, A: 6, B: 1})

	s := p.Snapshot()
	if len(s.Stalled) != 2 || s.Stalled[0].Job != "j1" || s.Stalled[1].Worker != 1 {
		t.Fatalf("stalled list wrong: %+v", s.Stalled)
	}

	// A repeat stall for the same index refreshes rather than duplicates.
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j1", Flow: NoFlow, Seq: 1, A: 9, B: 0})
	s = p.Snapshot()
	if len(s.Stalled) != 2 || s.Stalled[0].RunningS != 9 {
		t.Fatalf("stall upsert wrong: %+v", s.Stalled)
	}

	// A retry for a stalled job means the wedged attempt was abandoned:
	// it leaves the stalled list and bumps the retry counter.
	p.Emit(Event{Comp: CompSweep, Kind: KSweepRetry, Src: "j1", Flow: NoFlow, Seq: 1, A: 1, B: 0.1})
	s = p.Snapshot()
	if s.Retries != 1 || len(s.Stalled) != 1 || s.Stalled[0].Index != 2 {
		t.Fatalf("retry handling wrong: retries=%d stalled=%+v", s.Retries, s.Stalled)
	}

	// Completion clears the job's stall entry too.
	p.Emit(Event{Comp: CompSweep, Kind: KSweepJob, Src: "j2", Flow: NoFlow, Seq: 2, A: 1, B: 4})
	if s = p.Snapshot(); len(s.Stalled) != 0 {
		t.Fatalf("completed job still listed as stalled: %+v", s.Stalled)
	}

	// Sweep end leaves no stale stall state behind.
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j3", Flow: NoFlow, Seq: 3, A: 2, B: 0})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepDone, Src: "chaos", Flow: NoFlow, A: 4, B: 1.5})
	s = p.Snapshot()
	if len(s.Stalled) != 0 || s.Active {
		t.Fatalf("post-done snapshot wrong: %+v", s)
	}
	if s.Retries != 1 {
		t.Fatalf("retry counter lost at sweep end: %+v", s)
	}
}

// --- rrtrace summary ---

func TestSummarizeCountsRetriesAndStalls(t *testing.T) {
	records := []Record{
		srec(0, CompSweep, KSweepStart, "chaos", NoFlow, 0, map[string]float64{"jobs": 4, "workers": 2}),
		srec(0, CompSweep, KSweepRetry, "j1", NoFlow, 1, map[string]float64{"attempt": 1, "backoff_s": 0.1}),
		srec(0, CompSweep, KSweepStall, "j2", NoFlow, 2, map[string]float64{"running_s": 7, "worker": 0}),
		srec(0, CompSweep, KSweepRetry, "j1", NoFlow, 1, map[string]float64{"attempt": 2, "backoff_s": 0.2}),
		srec(0, CompSweep, KSweepDone, "chaos", NoFlow, 0, map[string]float64{"jobs": 4, "wall_s": 0.5}),
	}
	sum := Summarize(records)
	if len(sum.Sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(sum.Sweeps))
	}
	sw := sum.Sweeps[0]
	if sw.Retries != 2 || sw.Stalls != 1 {
		t.Fatalf("retries=%d stalls=%d, want 2 and 1", sw.Retries, sw.Stalls)
	}
	out := sum.Render()
	if !strings.Contains(out, "resilience: 2 retries, 1 stall events") {
		t.Fatalf("Render missing resilience line:\n%s", out)
	}
}

func TestSummarizeOmitsResilienceLineWhenClean(t *testing.T) {
	records := []Record{
		srec(0, CompSweep, KSweepStart, "fig7", NoFlow, 0, map[string]float64{"jobs": 2, "workers": 1}),
		srec(0, CompSweep, KSweepDone, "fig7", NoFlow, 0, map[string]float64{"jobs": 2, "wall_s": 0.1}),
	}
	if out := Summarize(records).Render(); strings.Contains(out, "resilience") {
		t.Fatalf("clean sweep rendered a resilience line:\n%s", out)
	}
}

// --- /metrics counters ---

func TestMetricsSinkCountsRetriesAndStalls(t *testing.T) {
	m := NewMetricsSink()
	m.Emit(Event{Comp: CompSweep, Kind: KSweepRetry, Src: "j1", Flow: NoFlow, Seq: 1, A: 1, B: 0.1})
	m.Emit(Event{Comp: CompSweep, Kind: KSweepRetry, Src: "j1", Flow: NoFlow, Seq: 1, A: 2, B: 0.2})
	m.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j2", Flow: NoFlow, Seq: 2, A: 8, B: 0})
	if got := m.R.Counter("sweep.retries"); got != 2 {
		t.Fatalf("sweep.retries = %d, want 2", got)
	}
	if got := m.R.Counter("sweep.stalls"); got != 1 {
		t.Fatalf("sweep.stalls = %d, want 1", got)
	}
	// And both survive into the human-readable snapshot.
	snap := m.R.Snapshot()
	for _, want := range []string{"sweep.retries", "sweep.stalls"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
}

// --- live status line ---

func TestProgressSinkRendersStallAndRetry(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressSink(&buf)
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStart, Src: "chaos", Flow: NoFlow, A: 4, B: 2})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepStall, Src: "j1", Flow: NoFlow, Seq: 1, A: 12.3, B: 0})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepRetry, Src: "j1", Flow: NoFlow, Seq: 1, A: 2, B: 0.2})
	p.Emit(Event{Comp: CompSweep, Kind: KSweepDone, Src: "chaos", Flow: NoFlow, A: 4, B: 1})
	out := buf.String()
	for _, want := range []string{
		"stall: job 1 (j1) running 12.3s on worker 0",
		"retry: job 1 (j1) attempt 2 failed, backing off 0.2s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
}
