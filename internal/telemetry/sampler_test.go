package telemetry

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/sim"
)

// fakeGauges is a scripted GaugeSource whose cwnd doubles each sample
// and which reports done after doneAfter samples.
type fakeGauges struct {
	cwnd    float64
	samples int
	doneAt  int
}

func (f *fakeGauges) SampleGauges(emit func(string, float64)) {
	f.samples++
	f.cwnd *= 2
	emit("cwnd", f.cwnd)
	emit("srtt", 0.1)
}

func (f *fakeGauges) Done() bool { return f.samples >= f.doneAt }

func TestSamplerPublishesSeries(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := NewRing(0)
	bus := NewBus(ring)
	s := NewSampler(sched, bus, 10*time.Millisecond)
	src := &fakeGauges{cwnd: 1, doneAt: 3}
	s.AddFlow(0, src)
	s.Start()
	sched.RunAll()

	// Three ticks (stops once the source is done), two gauges each.
	samples := ring.EventsOf(KSample)
	if len(samples) != 6 {
		t.Fatalf("samples = %d, want 6", len(samples))
	}
	if samples[0].At != 10*time.Millisecond || samples[0].Src != "cwnd" || samples[0].A != 2 {
		t.Fatalf("first sample = %+v", samples[0])
	}
	if sched.Now() != 30*time.Millisecond {
		t.Fatalf("sampler dragged the clock to %v", sched.Now())
	}
}

func TestSamplerInstanceGaugePrefix(t *testing.T) {
	sched := sim.NewScheduler(1)
	ring := NewRing(0)
	bus := NewBus(ring)
	s := NewSampler(sched, bus, 10*time.Millisecond)
	s.AddFlow(0, &fakeGauges{cwnd: 1, doneAt: 1})
	s.AddInstance(CompQueue, "fwd", queueGauge{})
	s.Start()
	sched.RunAll()
	var found bool
	for _, ev := range ring.EventsOf(KSample) {
		if ev.Comp == CompQueue && ev.Src == "fwd.qlen" && ev.Flow == NoFlow {
			found = true
		}
	}
	if !found {
		t.Fatal("no instance-prefixed queue sample published")
	}
}

type queueGauge struct{}

func (queueGauge) SampleGauges(emit func(string, float64)) { emit("qlen", 3) }

func TestSamplerNilOnDisabledBus(t *testing.T) {
	sched := sim.NewScheduler(1)
	if s := NewSampler(sched, nil, time.Millisecond); s != nil {
		t.Fatal("sampler on a nil bus should be nil")
	}
	if s := NewSampler(sched, NewBus(), time.Millisecond); s != nil {
		t.Fatal("sampler on an empty bus should be nil")
	}
	// The nil sampler is a no-op at every method.
	var s *Sampler
	s.AddFlow(0, &fakeGauges{})
	s.AddInstance(CompQueue, "fwd", queueGauge{})
	s.Start()
	sched.RunAll()
	if sched.Now() != 0 {
		t.Fatal("nil sampler scheduled work")
	}
}

func TestSeriesSinkCollectsAndSegments(t *testing.T) {
	sink := NewSeriesSink()
	feed := func() {
		sink.Emit(Event{At: ms(10), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: 2})
		sink.Emit(Event{At: ms(20), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: 4})
		sink.Emit(Event{At: ms(20), Comp: CompQueue, Kind: KSample, Src: "fwd.qlen", Flow: NoFlow, A: 1})
	}
	feed()
	feed() // republished run: regression rolls the segment
	series := sink.Series()
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 (2 gauges x 2 segments)", len(series))
	}
	if series[0].Src != "cwnd" || series[0].Seg != 0 || len(series[0].T) != 2 {
		t.Fatalf("first series = %+v", series[0])
	}
	if series[2].Seg != 1 {
		t.Fatalf("second run's series in segment %d, want 1", series[2].Seg)
	}
}

func TestSeriesSinkDownsample(t *testing.T) {
	sink := NewSeriesSink()
	sink.Downsample = 50 * time.Millisecond
	for i := 0; i < 10; i++ {
		sink.Emit(Event{At: ms(10 * i), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: float64(i)})
	}
	sr := sink.Series()[0]
	if len(sr.T) != 2 {
		t.Fatalf("kept %d points, want 2 (t=0 and t=50ms)", len(sr.T))
	}
	if sr.V[1] != 5 {
		t.Fatalf("second kept point = %g, want 5", sr.V[1])
	}
}

func TestSeriesSinkNilSafe(t *testing.T) {
	var sink *SeriesSink
	sink.Emit(Event{Kind: KSample})
	if sink.Series() != nil {
		t.Fatal("nil sink returned series")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	sink := NewSeriesSink()
	sink.Emit(Event{At: ms(10), Comp: CompSender, Kind: KSample, Src: "cwnd", Flow: 0, A: 2.5})
	sink.Emit(Event{At: ms(20), Comp: CompQueue, Kind: KSample, Src: "fwd.qlen", Flow: NoFlow, A: 3})
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, sink.Series()); err != nil {
		t.Fatal(err)
	}
	want := "seg,comp,src,flow,t,value\n" +
		"0,sender,cwnd,0,0.010000000,2.5\n" +
		"0,queue,fwd.qlen,,0.020000000,3\n"
	if sb.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", sb.String(), want)
	}
}
