package telemetry

import (
	"time"

	"rrtcp/internal/sim"
)

// AttachSchedulerProfile installs a profiling hook on the scheduler
// that publishes one KSchedProfile event every `every` processed
// events: total events processed (Seq), current heap depth (A), and
// wall-clock seconds spent per simulated second since the previous
// sample (B; the first sample rates against the attach instant, and B
// is 0 when sim time stood still).
//
// The wall-time attribute is the one intentionally nondeterministic
// value in the event stream — it measures the simulator, not the
// simulation — so tests should assert on Seq/A only.
func AttachSchedulerProfile(sched *sim.Scheduler, bus *Bus, every uint64) {
	if sched == nil || !bus.Enabled() {
		return
	}
	if every == 0 {
		every = 4096
	}
	lastWall := time.Now()
	var lastSim sim.Time
	sched.SetProfileHook(every, func(now sim.Time, processed uint64, pending int) {
		wall := time.Now()
		var perSimSec float64
		if simDelta := now - lastSim; simDelta > 0 {
			perSimSec = wall.Sub(lastWall).Seconds() / simDelta.Seconds()
		}
		lastWall, lastSim = wall, now
		bus.Publish(Event{
			At:   now,
			Comp: CompSim,
			Kind: KSchedProfile,
			Flow: NoFlow,
			Seq:  int64(processed),
			A:    float64(pending),
			B:    perSimSec,
		})
	})
}
