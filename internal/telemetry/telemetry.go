// Package telemetry is the structured observability layer of the
// simulator: a lightweight event bus that the scheduler, the network
// substrate, the TCP senders, and the RR state machine publish typed
// events into, plus the sinks that consume them (NDJSON log writer,
// in-memory ring for tests, metrics aggregation).
//
// The paper's central claims — actnum tracks data in flight more
// accurately than cwnd, back-off happens only in the retreat sub-phase,
// further losses are detected by comparing ndup to actnum — are claims
// about internal state evolution over time; this package makes that
// evolution observable without each experiment growing its own ad-hoc
// sampler.
//
// Design notes:
//
//   - Event is a small value type with fixed slots (two numeric
//     attributes named per kind); publishing allocates nothing.
//   - A nil *Bus, and a Bus with no subscribers, are both valid and
//     publish nothing, so instrumented hot paths cost a nil check when
//     telemetry is off (the "null sink" default).
//   - All publishing happens on the single simulation goroutine; sinks
//     need no locking.
package telemetry

import "rrtcp/internal/sim"

// Component identifies the layer an event originates from.
type Component uint8

// Components, one per instrumented layer.
const (
	CompSim       Component = iota + 1 // the discrete-event scheduler
	CompLink                           // a netem link
	CompQueue                          // a netem queue discipline
	CompLoss                           // a netem loss injector
	CompSender                         // the shared TCP sender path
	CompRecv                           // the TCP receiver
	CompRR                             // the Robust Recovery state machine
	CompFault                          // a fault injector (internal/faults)
	CompInvariant                      // the runtime invariant checker
	CompSweep                          // the parallel sweep engine (internal/sweep)
	CompGuard                          // the overload guard (internal/guard)
	CompTelemetry                      // the telemetry layer itself (BoundedSink drop accounting)

	compSentinel // keep last
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case CompSim:
		return "sim"
	case CompLink:
		return "link"
	case CompQueue:
		return "queue"
	case CompLoss:
		return "loss"
	case CompSender:
		return "sender"
	case CompRecv:
		return "recv"
	case CompRR:
		return "rr"
	case CompFault:
		return "fault"
	case CompInvariant:
		return "invariant"
	case CompSweep:
		return "sweep"
	case CompGuard:
		return "guard"
	case CompTelemetry:
		return "telemetry"
	default:
		return "?"
	}
}

// ParseComponent is the inverse of Component.String; unknown names
// return 0.
func ParseComponent(s string) Component {
	for c := CompSim; c < compSentinel; c++ {
		if c.String() == s {
			return c
		}
	}
	return 0
}

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// Sender-path events.
	KSend       Kind = iota + 1 // data segment first transmission
	KRetransmit                 // data segment retransmission
	KAck                        // cumulative ACK processed at the sender
	KDupAck                     // duplicate ACK processed
	KTimeout                    // retransmission timer expired
	KCwnd                       // congestion-window sample (A=cwnd)
	KFlowDone                   // application transfer completed
	KDeliver                    // in-order data delivered at the receiver

	// Recovery phase transitions (RR and the baseline variants).
	KRecoveryEnter // entered loss recovery; RR: begin retreat (A=cwnd, B=ssthresh)
	KRetreatProbe  // RR retreat→probe transition (A=actnum)
	KRecoveryExit  // left recovery (A=cwnd; RR: cwnd = actnum×MSS)
	KFurtherLoss   // RR detected further loss via ndup<actnum (A=actnum, B=ndup)
	KActnum        // RR actnum/ndup update at an RTT boundary (A=actnum, B=ndup)

	// Network-substrate events.
	KEnqueue // packet accepted by a queue (A=occupancy after)
	KDrop    // packet dropped by a queue or loss module (A=occupancy, B=1 forced)
	KMark    // packet probabilistically dropped/marked by RED (A=occupancy, B=avg)
	KLinkTx  // link began serializing a packet (A=bytes, B=occupancy left behind)

	// Scheduler profiling.
	KSchedProfile // Seq=events processed, A=heap depth, B=wall-sec per sim-sec

	// Fault-injection events (internal/faults and the netem hook points).
	KLinkDown     // link carrier lost (flap begins)
	KLinkUp       // link carrier restored (flap ends)
	KLinkParam    // mid-flow renegotiation (A=bandwidth bps, B=delay seconds)
	KFaultReorder // packet held back for out-of-order delivery (A=extra delay s)
	KFaultDup     // packet duplicated in flight
	KAckCompress  // held ACK batch released back-to-back (A=batch size)

	// Invariant checking.
	KViolation // runtime invariant violated (Src=rule name)

	// Sweep-engine progress. These fire on the sweep's coordinating
	// goroutine, between simulations rather than inside one, so their
	// At field is always zero. KSweepJob arrives in completion order,
	// which is scheduling-dependent: progress streams are exempt from
	// the sweep determinism contract.
	KSweepStart // sweep began (Src=sweep name, A=jobs, B=workers)
	KSweepJob   // one job finished (Src=job name, Seq=job index, A=completed, B=total)
	KSweepDone  // sweep finished (Src=sweep name, A=jobs, B=wall seconds)

	// Periodic gauge sampling (the Sampler). Src names the gauge
	// ("cwnd", "srtt", "qlen", ...); Flow scopes it to a connection or
	// NoFlow for instance gauges; A is the sampled value.
	KSample

	// Sweep-engine performance telemetry. Like the progress kinds these
	// fire on the coordinating goroutine with wall-clock measurements,
	// so they are exempt from the determinism contract.
	KSweepJobTime // one job's wall time (Src=job name, Seq=index, A=wall seconds, B=worker)
	KSweepWorker  // one worker's totals at sweep end (Src=worker index, A=busy seconds, B=jobs run)

	// Sweep-engine resilience telemetry: the harness watching itself.
	// Like the other sweep kinds they fire on the coordinating goroutine
	// with wall-clock measurements, exempt from the determinism
	// contract.
	KSweepStall // an in-flight job exceeded the stall threshold (Src=job name, Seq=index, A=running seconds, B=worker)
	KSweepRetry // a job attempt failed transiently and will be retried (Src=job name, Seq=index, A=attempt, B=backoff seconds)

	// Overload guardrails (internal/guard and the BoundedSink).
	// KOverload fires on the simulation goroutine at the instant a
	// resource budget trips (Src=resource name, A=observed, B=limit).
	// KTelemetryDrops is the BoundedSink's drop accounting marker,
	// injected into its downstream sink so thinned logs say how much is
	// missing (Src=sink label, A=cumulative dropped, B=cumulative kept).
	// KSweepDegraded fires on the sweep coordinator when a job's budget
	// trip is converted into a Degraded result (Src=job name, Seq=index);
	// like the other sweep kinds it is exempt from the determinism
	// contract.
	KOverload
	KTelemetryDrops
	KSweepDegraded

	// Flow lifecycle accounting (the FlowReporter hook in the TCP
	// sender, consumed by flowstats.FlowTable). KFlowStart fires when a
	// sender begins transmitting (Src=variant name, A=application bytes
	// to send, -1 for unbounded). KFlowStats fires alongside KFlowDone
	// when the transfer completes, carrying the per-flow counters the
	// aggregate layer needs without retaining the event stream
	// (Src=variant name, Seq=bytes acknowledged, A=retransmissions,
	// B=timeouts).
	KFlowStart
	KFlowStats

	kindSentinel // keep last
)

// String implements fmt.Stringer; the names are the NDJSON vocabulary.
func (k Kind) String() string {
	switch k {
	case KSend:
		return "send"
	case KRetransmit:
		return "rtx"
	case KAck:
		return "ack"
	case KDupAck:
		return "dupack"
	case KTimeout:
		return "timeout"
	case KCwnd:
		return "cwnd"
	case KFlowDone:
		return "done"
	case KDeliver:
		return "deliver"
	case KRecoveryEnter:
		return "recovery-enter"
	case KRetreatProbe:
		return "retreat-probe"
	case KRecoveryExit:
		return "recovery-exit"
	case KFurtherLoss:
		return "further-loss"
	case KActnum:
		return "actnum"
	case KEnqueue:
		return "enqueue"
	case KDrop:
		return "drop"
	case KMark:
		return "mark"
	case KLinkTx:
		return "link-tx"
	case KSchedProfile:
		return "sched"
	case KLinkDown:
		return "link-down"
	case KLinkUp:
		return "link-up"
	case KLinkParam:
		return "link-param"
	case KFaultReorder:
		return "reorder"
	case KFaultDup:
		return "dup-inject"
	case KAckCompress:
		return "ack-compress"
	case KViolation:
		return "violation"
	case KSweepStart:
		return "sweep-start"
	case KSweepJob:
		return "sweep-job"
	case KSweepDone:
		return "sweep-done"
	case KSample:
		return "sample"
	case KSweepJobTime:
		return "sweep-job-time"
	case KSweepWorker:
		return "sweep-worker"
	case KSweepStall:
		return "sweep-stall"
	case KSweepRetry:
		return "sweep-retry"
	case KOverload:
		return "overload"
	case KTelemetryDrops:
		return "telemetry-drops"
	case KSweepDegraded:
		return "sweep-degraded"
	case KFlowStart:
		return "flow-start"
	case KFlowStats:
		return "flow-done"
	default:
		return "?"
	}
}

// ParseKind is the inverse of Kind.String; unknown names return 0.
func ParseKind(s string) Kind {
	for k := KSend; k < kindSentinel; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// attrNames maps each kind's A and B slots to the NDJSON keys they are
// written under. Empty means the slot is unused for that kind.
func (k Kind) attrNames() (a, b string) {
	switch k {
	case KCwnd:
		return "cwnd", ""
	case KRecoveryEnter:
		return "cwnd", "ssthresh"
	case KRetreatProbe:
		return "actnum", ""
	case KRecoveryExit:
		return "cwnd", ""
	case KFurtherLoss, KActnum:
		return "actnum", "ndup"
	case KEnqueue:
		return "qlen", ""
	case KDrop:
		return "qlen", "forced"
	case KMark:
		return "qlen", "avg"
	case KLinkTx:
		return "bytes", "qlen"
	case KSchedProfile:
		return "pending", "wall_per_sim_s"
	case KLinkParam:
		return "bps", "delay_s"
	case KFaultReorder:
		return "delay_s", ""
	case KAckCompress:
		return "batch", ""
	case KSweepStart:
		return "jobs", "workers"
	case KSweepJob:
		return "completed", "total"
	case KSweepDone:
		return "jobs", "wall_s"
	case KSample:
		return "value", ""
	case KSweepJobTime:
		return "wall_s", "worker"
	case KSweepWorker:
		return "busy_s", "jobs"
	case KSweepStall:
		return "running_s", "worker"
	case KSweepRetry:
		return "attempt", "backoff_s"
	case KOverload:
		return "observed", "limit"
	case KTelemetryDrops:
		return "dropped", "kept"
	case KFlowStart:
		return "bytes", ""
	case KFlowStats:
		return "rtx", "timeouts"
	default:
		return "", ""
	}
}

// NoFlow marks events not scoped to a TCP connection (queues, links,
// the scheduler).
const NoFlow int32 = -1

// Event is one telemetry record. It is a plain value: publishing one
// performs no allocation, and sinks that retain events copy them.
type Event struct {
	// At is the simulated instant of the event.
	At sim.Time
	// Comp is the emitting layer; Src distinguishes instances within it
	// (queue and link names like "fwd", "rev").
	Comp Component
	Kind Kind
	Src  string
	// Flow is the TCP connection the event belongs to, or NoFlow.
	Flow int32
	// Seq is the byte sequence number involved, when meaningful.
	Seq int64
	// A and B carry kind-specific numeric attributes; see attrNames.
	A, B float64
}

// Sink consumes published events. Emit runs on the simulation
// goroutine and must not retain pointers into the event (it is a value,
// so copying it is safe and implicit).
type Sink interface {
	Emit(ev Event)
}

// Bus fans events out to its subscribers. A nil *Bus is valid and
// publishes nothing, which is the default "null" configuration — the
// instrumented hot paths then cost one nil check per event site.
type Bus struct {
	sinks []Sink
	// on caches len(sinks) > 0 so Enabled is a single flag load — the
	// hot-path publish gate instrumented code checks per event.
	on bool
}

// NewBus returns a bus with the given initial subscribers.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	for _, s := range sinks {
		b.Subscribe(s)
	}
	return b
}

// Subscribe adds a sink; nil sinks are ignored.
func (b *Bus) Subscribe(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.sinks = append(b.sinks, s)
	b.on = true
}

// Enabled reports whether publishing reaches any sink; hot paths can
// use it to skip building expensive events.
func (b *Bus) Enabled() bool { return b != nil && b.on }

// Publish delivers ev to every subscriber, in subscription order.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	for _, s := range b.sinks {
		s.Emit(ev)
	}
}

// NullSink discards everything — the explicit form of the default.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(Event) {}

// Ring retains the last Cap events in memory; with Cap <= 0 it retains
// everything. It is the sink tests and in-process inspection use.
type Ring struct {
	// Cap bounds retention; zero or negative means unbounded.
	Cap int

	evs   []Event
	start int // ring head when wrapped
	total uint64
}

// NewRing returns a ring retaining at most cap events (<=0: unbounded).
func NewRing(cap int) *Ring { return &Ring{Cap: cap} }

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.total++
	if r.Cap <= 0 {
		r.evs = append(r.evs, ev)
		return
	}
	if len(r.evs) < r.Cap {
		r.evs = append(r.evs, ev)
		return
	}
	r.evs[r.start] = ev
	r.start = (r.start + 1) % r.Cap
}

// Total reports how many events were published, including evicted ones.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events in publication order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.evs))
	out = append(out, r.evs[r.start:]...)
	out = append(out, r.evs[:r.start]...)
	return out
}

// EventsOf returns the retained events matching the kind, in order.
// It counts matches first and allocates the result exactly once,
// walking the ring segments in place rather than materializing a full
// copy via Events.
func (r *Ring) EventsOf(kind Kind) []Event {
	n := 0
	for i := range r.evs {
		if r.evs[i].Kind == kind {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	for _, ev := range r.evs[r.start:] {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	for _, ev := range r.evs[:r.start] {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}
