package telemetry

import (
	"strings"
	"testing"
)

// rec builds a Record the way DecodeNDJSON would.
func rec(t float64, comp Component, kind Kind, flow int32, attrs map[string]float64) Record {
	if attrs == nil {
		attrs = map[string]float64{}
	}
	return Record{T: t, Comp: comp.String(), Kind: kind.String(), Flow: flow, Attrs: attrs}
}

func TestSummarizeEpisode(t *testing.T) {
	records := []Record{
		rec(0.1, CompSender, KSend, 0, nil),
		rec(1.0, CompRR, KRecoveryEnter, 0, map[string]float64{"cwnd": 13, "ssthresh": 6.5}),
		rec(1.2, CompRR, KRetreatProbe, 0, map[string]float64{"actnum": 4}),
		rec(1.3, CompRR, KFurtherLoss, 0, map[string]float64{"actnum": 4, "ndup": 2}),
		rec(1.5, CompRR, KRecoveryExit, 0, map[string]float64{"cwnd": 5}),
		rec(2.0, CompSender, KFlowDone, 0, nil),
	}
	sum := Summarize(records)
	if len(sum.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(sum.Flows))
	}
	f := sum.Flows[0]
	if !f.Done || f.DoneAt != 2.0 || f.Sends != 1 {
		t.Fatalf("flow summary wrong: %+v", f)
	}
	if len(f.Episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(f.Episodes))
	}
	ep := f.Episodes[0]
	if ep.Start != 1.0 || ep.ProbeAt != 1.2 || ep.End != 1.5 {
		t.Fatalf("episode times wrong: %+v", ep)
	}
	if !almost(ep.RetreatDur(), 0.2) || !almost(ep.ProbeDur(), 0.3) {
		t.Fatalf("durations retreat=%v probe=%v", ep.RetreatDur(), ep.ProbeDur())
	}
	if ep.ExitCwnd != 5 || ep.FurtherLosses != 1 || ep.Timeout {
		t.Fatalf("episode detail wrong: %+v", ep)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestSummarizeTimeoutEndsEpisode(t *testing.T) {
	records := []Record{
		rec(1.0, CompRR, KRecoveryEnter, 0, nil),
		rec(2.0, CompSender, KTimeout, 0, nil),
	}
	sum := Summarize(records)
	ep := sum.Flows[0].Episodes[0]
	if !ep.Timeout || ep.End != 2.0 {
		t.Fatalf("timeout episode wrong: %+v", ep)
	}
}

func TestSummarizeOpenEpisodeAtEOF(t *testing.T) {
	sum := Summarize([]Record{rec(1.0, CompRR, KRecoveryEnter, 0, nil)})
	ep := sum.Flows[0].Episodes[0]
	if ep.End >= 0 || ep.Timeout {
		t.Fatalf("open episode wrong: %+v", ep)
	}
	if !strings.Contains(sum.Render(), "open") {
		t.Fatal("render does not mark open episode")
	}
}

func TestSummarizeQueueDrops(t *testing.T) {
	records := []Record{
		{T: 1, Comp: "queue", Kind: "drop", Src: "fwd", Flow: 0, Attrs: map[string]float64{"forced": 1}},
		{T: 2, Comp: "queue", Kind: "drop", Src: "fwd", Flow: 1, Attrs: map[string]float64{}},
		{T: 3, Comp: "queue", Kind: "mark", Src: "fwd", Flow: 0, Attrs: map[string]float64{}},
		{T: 4, Comp: "loss", Kind: "drop", Src: "inject", Flow: 0, Attrs: map[string]float64{}},
	}
	sum := Summarize(records)
	if len(sum.Queues) != 2 {
		t.Fatalf("queues = %d, want 2", len(sum.Queues))
	}
	// Sorted by comp then src: loss/inject before queue/fwd.
	if sum.Queues[0].Comp != "loss" || sum.Queues[0].Drops != 1 {
		t.Fatalf("loss row wrong: %+v", sum.Queues[0])
	}
	if q := sum.Queues[1]; q.Src != "fwd" || q.Drops != 3 || q.Forced != 1 {
		t.Fatalf("queue row wrong: %+v", q)
	}
}

func TestFilter(t *testing.T) {
	records := []Record{
		rec(1, CompSender, KSend, 0, nil),
		rec(2, CompSender, KSend, 1, nil),
		rec(3, CompRR, KRecoveryEnter, 0, nil),
		rec(4, CompQueue, KDrop, 0, nil),
	}
	if got := Filter(records, FilterOpts{Flow: 0, FlowSet: true}); len(got) != 3 {
		t.Fatalf("flow filter: %d, want 3", len(got))
	}
	if got := Filter(records, FilterOpts{Comp: "rr"}); len(got) != 1 || got[0].Kind != "recovery-enter" {
		t.Fatalf("comp filter wrong: %+v", got)
	}
	if got := Filter(records, FilterOpts{Kind: "send"}); len(got) != 2 {
		t.Fatalf("kind filter: %d, want 2", len(got))
	}
	if got := Filter(records, FilterOpts{From: 2, To: 3}); len(got) != 2 {
		t.Fatalf("time filter: %d, want 2", len(got))
	}
	if got := Filter(records, FilterOpts{}); len(got) != len(records) {
		t.Fatal("empty opts filtered records")
	}
}

func TestTimeline(t *testing.T) {
	records := []Record{
		rec(0, CompSender, KCwnd, 0, map[string]float64{"cwnd": 2}),
		rec(1, CompRR, KRecoveryEnter, 0, map[string]float64{"cwnd": 10}),
		rec(1.5, CompRR, KRetreatProbe, 0, map[string]float64{"actnum": 4}),
		rec(2, CompRR, KRecoveryExit, 0, map[string]float64{"cwnd": 5}),
	}
	out := Timeline(records, 0, 40, 8)
	for _, want := range []string{"flow 0", "*", "+", "r", "p"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Timeline(records, 9, 40, 8), "no cwnd/actnum samples") {
		t.Fatal("empty flow not reported")
	}
}

// The summary learns the flow lifecycle kinds: flow-start carries the
// variant name, flow-done counts completions, and both surface as the
// "flows:" line of the rendering — the only per-flow signal present in
// aggregate-scale logs.
func TestSummarizeFlowLifecycle(t *testing.T) {
	records := []Record{
		{T: 0, Comp: "sender", Kind: "flow-start", Src: "rr", Flow: 0,
			Attrs: map[string]float64{"bytes": 4000}},
		{T: 0, Comp: "sender", Kind: "flow-start", Src: "reno", Flow: 1,
			Attrs: map[string]float64{"bytes": 4000}},
		{T: 1.5, Comp: "sender", Kind: "flow-done", Src: "rr", Flow: 0,
			Attrs: map[string]float64{"rtx": 2, "timeouts": 0}},
	}
	sum := Summarize(records)
	if sum.FlowsStarted != 2 || sum.FlowsCompleted != 1 {
		t.Fatalf("lifecycle counts: started=%d completed=%d", sum.FlowsStarted, sum.FlowsCompleted)
	}
	if len(sum.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(sum.Flows))
	}
	if f := sum.Flows[0]; f.Variant != "rr" || !f.Done || f.DoneAt != 1.5 {
		t.Fatalf("flow 0 summary wrong: %+v", f)
	}
	if f := sum.Flows[1]; f.Variant != "reno" || f.Done {
		t.Fatalf("flow 1 summary wrong: %+v", f)
	}
	if out := sum.Render(); !strings.Contains(out, "flows: 2 started, 1 completed") {
		t.Fatalf("render missing flows line:\n%s", out)
	}
}
