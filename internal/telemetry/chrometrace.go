package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace exports spans and series in the Chrome trace-event
// JSON format, openable directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans become B/E duration events on one thread
// track per (segment, flow) or (segment, queue); span events become
// instants on the same track; series become counter ("C") events, one
// counter per gauge.
//
// The format requires timestamps in microseconds and, per track,
// properly nested B/E pairs in non-decreasing time order in file order.
// The writer emits each track's span forest depth-first with children
// and instants interleaved by begin time, which yields that ordering by
// construction; segments are laid out on a shared timeline with a
// cumulative offset per segment so republished multi-run streams read
// left-to-right.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// chromeTrackKey identifies one horizontal track in the trace.
type chromeTrackKey struct {
	seg  int
	flow int32
	src  string
}

func (k chromeTrackKey) name() string {
	if k.flow != NoFlow {
		return fmt.Sprintf("seg%d flow%d", k.seg, k.flow)
	}
	return fmt.Sprintf("seg%d queue %s", k.seg, k.src)
}

// WriteChromeTrace writes the trace JSON for the given spans and
// series. Either argument may be empty.
func WriteChromeTrace(w io.Writer, spans []*Span, series []*Series) error {
	// Per-segment time offsets (µs): segment k starts where segment
	// k−1 ended, plus a 1 ms gap, so the concatenated runs share one
	// monotone timeline.
	segEnd := map[int]float64{}
	maxSeg := 0
	for _, sp := range spans {
		if us := sp.End.Seconds() * 1e6; us > segEnd[sp.Seg] {
			segEnd[sp.Seg] = us
		}
		if sp.Seg > maxSeg {
			maxSeg = sp.Seg
		}
	}
	for _, sr := range series {
		if sr.Seg > maxSeg {
			maxSeg = sr.Seg
		}
		if n := len(sr.T); n > 0 {
			if us := sr.T[n-1] * 1e6; us > segEnd[sr.Seg] {
				segEnd[sr.Seg] = us
			}
		}
	}
	segOff := make([]float64, maxSeg+1)
	for seg := 1; seg <= maxSeg; seg++ {
		segOff[seg] = segOff[seg-1] + segEnd[seg-1] + 1000
	}

	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "rrtcp"},
	})

	// Group spans into tracks, preserving open order within a track.
	children := make(map[int][]*Span)
	trackRoots := make(map[chromeTrackKey][]*Span)
	var trackOrder []chromeTrackKey
	for _, sp := range spans {
		if sp.Parent >= 0 {
			children[sp.Parent] = append(children[sp.Parent], sp)
			continue
		}
		key := chromeTrackKey{seg: sp.Seg, flow: sp.Flow, src: sp.Src}
		if _, ok := trackRoots[key]; !ok {
			trackOrder = append(trackOrder, key)
		}
		trackRoots[key] = append(trackRoots[key], sp)
	}

	tid := 0
	for _, key := range trackOrder {
		tid++
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": key.name()},
		})
		off := segOff[key.seg]
		for _, root := range trackRoots[key] {
			evs = appendSpanTree(evs, root, children, tid, off)
		}
	}

	// Series as counter events; counter names carry the segment, flow,
	// and gauge so Perfetto shows one counter lane per series. All
	// counters share one track (tid 0), so the events from different
	// series must be merged into a single non-decreasing timeline; the
	// stable sort keeps the per-series order (already ascending) and
	// breaks ties by series position, which is deterministic.
	var counters []chromeEvent
	for _, sr := range series {
		name := fmt.Sprintf("seg%d %s", sr.Seg, sr.Src)
		if sr.Flow != NoFlow {
			name = fmt.Sprintf("seg%d flow%d %s", sr.Seg, sr.Flow, sr.Src)
		}
		off := segOff[sr.Seg]
		for i := range sr.T {
			counters = append(counters, chromeEvent{
				Name: name, Ph: "C", Pid: chromePid,
				Ts:   off + sr.T[i]*1e6,
				Args: map[string]any{"value": sr.V[i]},
			})
		}
	}
	sort.SliceStable(counters, func(i, j int) bool { return counters[i].Ts < counters[j].Ts })
	evs = append(evs, counters...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace structurally checks trace JSON produced by
// WriteChromeTrace (or any trace-event file): the top-level object must
// carry a traceEvents array, and per (pid, tid) the duration events
// must appear in non-decreasing time order with properly nested,
// balanced B/E pairs — the conditions under which Perfetto renders the
// file without dropping slices.
func ValidateChromeTrace(data []byte) error {
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("chrometrace: %w", err)
	}
	if tr.TraceEvents == nil {
		return fmt.Errorf("chrometrace: no traceEvents array")
	}
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	lastTs := map[track]float64{}
	for i, ev := range tr.TraceEvents {
		k := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			continue
		case "B", "E", "i", "C":
			if prev, ok := lastTs[k]; ok && ev.Ts < prev {
				return fmt.Errorf("chrometrace: event %d (%s %q): ts %g regresses below %g on pid=%d tid=%d",
					i, ev.Ph, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
			}
			lastTs[k] = ev.Ts
		default:
			return fmt.Errorf("chrometrace: event %d: unknown phase %q", i, ev.Ph)
		}
		switch ev.Ph {
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("chrometrace: event %d: E %q with no open B on pid=%d tid=%d", i, ev.Name, ev.Pid, ev.Tid)
			}
			if top := st[len(st)-1]; ev.Name != "" && top != ev.Name {
				return fmt.Errorf("chrometrace: event %d: E %q closes B %q", i, ev.Name, top)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("chrometrace: %d unclosed B event(s) on pid=%d tid=%d", len(st), k.pid, k.tid)
		}
	}
	return nil
}

// appendSpanTree emits one span subtree: B, then children and instant
// events interleaved by time, then E. Child intervals are clamped to
// the parent's so the B/E pairs nest even if a child out-lived its
// parent (an open child at segment roll).
func appendSpanTree(evs []chromeEvent, sp *Span, children map[int][]*Span, tid int, off float64) []chromeEvent {
	begin := off + sp.Begin.Seconds()*1e6
	end := off + sp.End.Seconds()*1e6
	if end < begin {
		end = begin
	}
	args := make(map[string]any, len(sp.Attrs)+1)
	for k, v := range sp.Attrs {
		args[k] = v
	}
	if sp.Open {
		args["open"] = true
	}
	if len(args) == 0 {
		args = nil
	}
	evs = append(evs, chromeEvent{
		Name: sp.Kind.String(), Ph: "B", Ts: begin, Pid: chromePid, Tid: tid, Args: args,
	})

	// Merge children and instants into one time-ordered sequence.
	type item struct {
		at    float64
		child *Span
		inst  *SpanEvent
	}
	items := make([]item, 0, len(children[sp.ID])+len(sp.Events))
	for _, c := range children[sp.ID] {
		items = append(items, item{at: off + c.Begin.Seconds()*1e6, child: c})
	}
	for i := range sp.Events {
		items = append(items, item{at: off + sp.Events[i].At.Seconds()*1e6, inst: &sp.Events[i]})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].at < items[j].at })

	for _, it := range items {
		if it.child != nil {
			sub := *it.child
			if b := off + sub.Begin.Seconds()*1e6; b < begin {
				sub.Begin = sp.Begin
			}
			if e := off + sub.End.Seconds()*1e6; e > end {
				sub.End = sp.End
			}
			evs = appendSpanTree(evs, &sub, children, tid, off)
			continue
		}
		ts := it.at
		if ts < begin {
			ts = begin
		}
		if ts > end {
			ts = end
		}
		evs = append(evs, chromeEvent{
			Name: it.inst.Name, Ph: "i", Ts: ts, Pid: chromePid, Tid: tid, S: "t",
			Args: map[string]any{"a": it.inst.A, "b": it.inst.B},
		})
	}

	return append(evs, chromeEvent{
		Name: sp.Kind.String(), Ph: "E", Ts: end, Pid: chromePid, Tid: tid,
	})
}
