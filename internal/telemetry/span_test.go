package telemetry

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

// rrEpisode publishes a canonical single-loss RR episode for flow 0:
// send → recovery-enter (retreat) → retreat-probe → actnum ticks →
// recovery-exit → done.
func rrEpisode(sink Sink) {
	emit := func(ev Event) { sink.Emit(ev) }
	emit(Event{At: ms(0), Comp: CompSender, Kind: KSend, Flow: 0, Seq: 1000})
	emit(Event{At: ms(100), Comp: CompRR, Kind: KRecoveryEnter, Flow: 0, A: 16, B: 8})
	emit(Event{At: ms(150), Comp: CompRR, Kind: KRetreatProbe, Flow: 0, A: 8})
	emit(Event{At: ms(200), Comp: CompRR, Kind: KActnum, Flow: 0, A: 8, B: 0})
	emit(Event{At: ms(250), Comp: CompRR, Kind: KActnum, Flow: 0, A: 9, B: 0})
	emit(Event{At: ms(300), Comp: CompRR, Kind: KRecoveryExit, Flow: 0, A: 9})
	emit(Event{At: ms(500), Comp: CompSender, Kind: KFlowDone, Flow: 0})
}

func spansOf(all []*Span, kind SpanKind) []*Span {
	var out []*Span
	for _, sp := range all {
		if sp.Kind == kind {
			out = append(out, sp)
		}
	}
	return out
}

func TestSpanSinkAssemblesRREpisode(t *testing.T) {
	sink := NewSpanSink()
	rrEpisode(sink)
	spans := sink.Spans()

	conns := spansOf(spans, SpanConn)
	if len(conns) != 1 {
		t.Fatalf("conn spans = %d, want 1", len(conns))
	}
	conn := conns[0]
	if conn.Begin != ms(0) || conn.End != ms(500) || conn.Open {
		t.Fatalf("conn span = %+v", conn)
	}

	recs := spansOf(spans, SpanRecovery)
	if len(recs) != 1 {
		t.Fatalf("recovery spans = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Parent != conn.ID {
		t.Fatalf("recovery parent = %d, want conn %d", rec.Parent, conn.ID)
	}
	if rec.Begin != ms(100) || rec.End != ms(300) || rec.Open {
		t.Fatalf("recovery span = %+v", rec)
	}
	if rec.Attrs["enter_cwnd"] != 16 || rec.Attrs["ssthresh"] != 8 || rec.Attrs["exit_cwnd"] != 9 {
		t.Fatalf("recovery attrs = %v", rec.Attrs)
	}

	retreats := spansOf(spans, SpanRetreat)
	probes := spansOf(spans, SpanProbe)
	if len(retreats) != 1 || len(probes) != 1 {
		t.Fatalf("retreat/probe = %d/%d, want 1/1", len(retreats), len(probes))
	}
	if retreats[0].Parent != rec.ID || probes[0].Parent != rec.ID {
		t.Fatal("sub-phases not parented to the recovery span")
	}
	if retreats[0].Begin != ms(100) || retreats[0].End != ms(150) {
		t.Fatalf("retreat = %v..%v", retreats[0].Begin, retreats[0].End)
	}
	if probes[0].Begin != ms(150) || probes[0].End != ms(300) {
		t.Fatalf("probe = %v..%v", probes[0].Begin, probes[0].End)
	}
	if probes[0].Attrs["actnum"] != 8 {
		t.Fatalf("probe attrs = %v", probes[0].Attrs)
	}
	// The actnum instants land inside the probe sub-phase, where they
	// happened.
	if len(probes[0].Events) != 2 || probes[0].Events[0].Name != "actnum" {
		t.Fatalf("probe events = %+v", probes[0].Events)
	}
}

func TestSpanSinkBaselineEpisodeHasNoSubPhases(t *testing.T) {
	sink := NewSpanSink()
	sink.Emit(Event{At: ms(0), Comp: CompSender, Kind: KSend, Flow: 0})
	sink.Emit(Event{At: ms(100), Comp: CompSender, Kind: KRecoveryEnter, Flow: 0, A: 16, B: 8})
	sink.Emit(Event{At: ms(200), Comp: CompSender, Kind: KRecoveryExit, Flow: 0, A: 8})
	spans := sink.Spans()
	if n := len(spansOf(spans, SpanRecovery)); n != 1 {
		t.Fatalf("recovery spans = %d, want 1", n)
	}
	if n := len(spansOf(spans, SpanRetreat)) + len(spansOf(spans, SpanProbe)); n != 0 {
		t.Fatalf("baseline episode grew %d sub-phase spans, want 0", n)
	}
}

func TestSpanSinkFurtherLoss(t *testing.T) {
	sink := NewSpanSink()
	sink.Emit(Event{At: ms(100), Comp: CompRR, Kind: KRecoveryEnter, Flow: 0, A: 16, B: 8})
	sink.Emit(Event{At: ms(150), Comp: CompRR, Kind: KRetreatProbe, Flow: 0, A: 8})
	sink.Emit(Event{At: ms(180), Comp: CompRR, Kind: KFurtherLoss, Flow: 0, A: 7, B: 2})
	sink.Emit(Event{At: ms(220), Comp: CompRR, Kind: KFurtherLoss, Flow: 0, A: 5, B: 1})
	sink.Emit(Event{At: ms(400), Comp: CompRR, Kind: KRecoveryExit, Flow: 0, A: 5})
	rec := spansOf(sink.Spans(), SpanRecovery)[0]
	if rec.Attrs["further_losses"] != 2 {
		t.Fatalf("further_losses = %v, want 2", rec.Attrs["further_losses"])
	}
	probe := spansOf(sink.Spans(), SpanProbe)[0]
	if len(probe.Events) != 2 || probe.Events[1].Name != "further-loss" || probe.Events[1].A != 5 {
		t.Fatalf("events = %+v", probe.Events)
	}
}

func TestSpanSinkQueueBusyPeriod(t *testing.T) {
	sink := NewSpanSink()
	sink.Emit(Event{At: ms(10), Comp: CompQueue, Kind: KEnqueue, Src: "fwd", Flow: NoFlow, A: 1})
	sink.Emit(Event{At: ms(20), Comp: CompQueue, Kind: KEnqueue, Src: "fwd", Flow: NoFlow, A: 2})
	sink.Emit(Event{At: ms(30), Comp: CompLink, Kind: KLinkTx, Src: "fwd", Flow: NoFlow, A: 1000, B: 1})
	sink.Emit(Event{At: ms(40), Comp: CompLink, Kind: KLinkTx, Src: "fwd", Flow: NoFlow, A: 1000, B: 0})
	sink.Emit(Event{At: ms(60), Comp: CompQueue, Kind: KEnqueue, Src: "fwd", Flow: NoFlow, A: 1})
	spans := spansOf(sink.Spans(), SpanQueueBusy)
	if len(spans) != 2 {
		t.Fatalf("busy periods = %d, want 2", len(spans))
	}
	if spans[0].Begin != ms(10) || spans[0].End != ms(40) || spans[0].Open {
		t.Fatalf("first busy period = %+v", spans[0])
	}
	if spans[1].Begin != ms(60) || !spans[1].Open {
		t.Fatalf("second busy period = %+v", spans[1])
	}
}

func TestSpanSinkSegmentsOnTimeRegression(t *testing.T) {
	sink := NewSpanSink()
	rrEpisode(sink)
	rrEpisode(sink) // republished second run: time restarts at 0
	spans := sink.Spans()
	recs := spansOf(spans, SpanRecovery)
	if len(recs) != 2 {
		t.Fatalf("recovery spans = %d, want 2", len(recs))
	}
	if recs[0].Seg != 0 || recs[1].Seg != 1 {
		t.Fatalf("segments = %d/%d, want 0/1", recs[0].Seg, recs[1].Seg)
	}
	if recs[1].Open {
		t.Fatal("second segment's episode should be closed")
	}
}

func TestSpanSinkIgnoresSweepProgress(t *testing.T) {
	sink := NewSpanSink()
	sink.Emit(Event{At: ms(100), Comp: CompSender, Kind: KSend, Flow: 0})
	// Progress events carry At=0; they must not roll the segment.
	sink.Emit(Event{At: 0, Comp: CompSweep, Kind: KSweepJob, Flow: NoFlow})
	sink.Emit(Event{At: ms(200), Comp: CompSender, Kind: KFlowDone, Flow: 0})
	spans := sink.Spans()
	if len(spans) != 1 || spans[0].Seg != 0 || spans[0].Open {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestSpanSinkNilSafe(t *testing.T) {
	var sink *SpanSink
	sink.Emit(Event{At: ms(1), Comp: CompSender, Kind: KSend})
	if sink.Spans() != nil {
		t.Fatal("nil sink returned spans")
	}
}

func TestRenderSpansShape(t *testing.T) {
	sink := NewSpanSink()
	rrEpisode(sink)
	out := RenderSpans(sink.Spans())
	for _, want := range []string{"segment 0", "conn flow=0", "recovery flow=0", "retreat", "probe", "enter_cwnd=16", "@0.200000 actnum"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAssembleSpansFromRecords(t *testing.T) {
	ring := NewRing(0)
	sinks := NewBus(ring)
	rrEpisode(busAdapter{sinks})
	var sb strings.Builder
	nd := NewNDJSONSink(&sb)
	for _, ev := range ring.Events() {
		nd.Emit(ev)
	}
	nd.Flush()
	records, err := DecodeNDJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	spans := AssembleSpans(records)
	if len(spansOf(spans, SpanRecovery)) != 1 || len(spansOf(spans, SpanProbe)) != 1 {
		t.Fatalf("offline assembly differs: %s", RenderSpans(spans))
	}
}

// busAdapter lets the helper publish through a bus as if it were a sink.
type busAdapter struct{ b *Bus }

func (a busAdapter) Emit(ev Event) { a.b.Publish(ev) }

func TestRecordEventRoundTrip(t *testing.T) {
	in := Event{At: ms(1234), Comp: CompRR, Kind: KActnum, Flow: 3, Seq: 9000, A: 7, B: 2}
	var sb strings.Builder
	nd := NewNDJSONSink(&sb)
	nd.Emit(in)
	nd.Flush()
	recs, err := DecodeNDJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	out, ok := recs[0].Event()
	if !ok {
		t.Fatal("Event() rejected a round-tripped record")
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, ok := (Record{Comp: "martian", Kind: "ack"}).Event(); ok {
		t.Fatal("unknown component accepted")
	}
}

func BenchmarkRingEventsOf(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 4096; i++ {
		kind := KSend
		if i%8 == 0 {
			kind = KDrop
		}
		r.Emit(Event{At: sim.Time(i), Kind: kind})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.EventsOf(KDrop); len(got) != 512 {
			b.Fatalf("matches = %d", len(got))
		}
	}
}
