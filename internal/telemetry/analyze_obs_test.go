package telemetry

import (
	"strings"
	"testing"
)

// srec builds a Record with a source instance, the way DecodeNDJSON
// produces them for sampler/sweep/scheduler events.
func srec(t float64, comp Component, kind Kind, src string, flow int32, seq int64, attrs map[string]float64) Record {
	if attrs == nil {
		attrs = map[string]float64{}
	}
	return Record{T: t, Comp: comp.String(), Kind: kind.String(), Src: src, Flow: flow, Seq: seq, Attrs: attrs}
}

func TestSummarizeSamples(t *testing.T) {
	records := []Record{
		srec(0.1, CompSender, KSample, "cwnd", 0, 0, map[string]float64{"value": 4}),
		srec(0.2, CompSender, KSample, "cwnd", 0, 0, map[string]float64{"value": 8}),
		srec(0.3, CompSender, KSample, "cwnd", 0, 0, map[string]float64{"value": 6}),
		srec(0.1, CompSender, KSample, "cwnd", 1, 0, map[string]float64{"value": 2}),
		srec(0.1, CompQueue, KSample, "qlen", NoFlow, 0, map[string]float64{"value": 11}),
	}
	sum := Summarize(records)

	// Sample events must not fabricate per-flow TCP rows.
	if len(sum.Flows) != 0 {
		t.Errorf("sample-only log produced %d flow rows, want 0", len(sum.Flows))
	}
	if len(sum.Samples) != 3 {
		t.Fatalf("sample series = %d, want 3: %+v", len(sum.Samples), sum.Samples)
	}
	// Sorted by comp, src, flow: queue/qlen before sender/cwnd.
	q := sum.Samples[0]
	if q.Comp != "queue" || q.Src != "qlen" || q.N != 1 || q.Last != 11 {
		t.Errorf("queue series wrong: %+v", q)
	}
	s0 := sum.Samples[1]
	if s0.Flow != 0 || s0.N != 3 || s0.Min != 4 || s0.Max != 8 || s0.Last != 6 {
		t.Errorf("flow-0 cwnd series wrong: %+v", s0)
	}

	out := sum.Render()
	if !strings.Contains(out, "sampled series:") || !strings.Contains(out, "cwnd") {
		t.Errorf("Render missing sample table:\n%s", out)
	}
}

func TestSummarizeSweep(t *testing.T) {
	records := []Record{
		srec(0, CompSweep, KSweepStart, "chaos", NoFlow, 0, map[string]float64{"jobs": 4, "workers": 2}),
		srec(0, CompSweep, KSweepJobTime, "j0", NoFlow, 0, map[string]float64{"wall_s": 0.1, "worker": 0}),
		srec(0, CompSweep, KSweepJob, "j0", NoFlow, 0, map[string]float64{"completed": 1, "total": 4}),
		srec(0, CompSweep, KSweepJobTime, "j1", NoFlow, 1, map[string]float64{"wall_s": 0.3, "worker": 1}),
		srec(0, CompSweep, KSweepJob, "j1", NoFlow, 1, map[string]float64{"completed": 2, "total": 4}),
		srec(0, CompSweep, KSweepJobTime, "j2", NoFlow, 2, map[string]float64{"wall_s": 0.2, "worker": 0}),
		srec(0, CompSweep, KSweepJob, "j2", NoFlow, 2, map[string]float64{"completed": 3, "total": 4}),
		srec(0, CompSweep, KSweepJobTime, "j3", NoFlow, 3, map[string]float64{"wall_s": 0.2, "worker": 1}),
		srec(0, CompSweep, KSweepJob, "j3", NoFlow, 3, map[string]float64{"completed": 4, "total": 4}),
		srec(0, CompSweep, KSweepWorker, "0", NoFlow, 0, map[string]float64{"busy_s": 0.3, "jobs": 2}),
		srec(0, CompSweep, KSweepWorker, "1", NoFlow, 0, map[string]float64{"busy_s": 0.5, "jobs": 2}),
		srec(0, CompSweep, KSweepDone, "chaos", NoFlow, 0, map[string]float64{"jobs": 4, "wall_s": 0.45}),
	}
	sum := Summarize(records)
	if len(sum.Sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(sum.Sweeps))
	}
	sw := sum.Sweeps[0]
	if sw.Name != "chaos" || sw.Jobs != 4 || sw.Workers != 2 || !sw.Done {
		t.Errorf("sweep identity wrong: %+v", sw)
	}
	if sw.Completed != 4 || !almost(sw.WallS, 0.45) {
		t.Errorf("sweep totals wrong: %+v", sw)
	}
	if sw.JobTimeN != 4 || !almost(sw.JobTimeMeanS, 0.2) || !almost(sw.JobTimeMaxS, 0.3) {
		t.Errorf("job-time stats wrong: %+v", sw)
	}
	if len(sw.PerWorker) != 2 || sw.PerWorker[0].Jobs != 2 || !almost(sw.PerWorker[1].BusyS, 0.5) {
		t.Errorf("per-worker stats wrong: %+v", sw.PerWorker)
	}

	out := sum.Render()
	for _, want := range []string{"sweep chaos: 4 jobs on 2 workers", "job wall: n=4", "worker 1: 2 jobs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeSweepTruncatedLog(t *testing.T) {
	records := []Record{
		srec(0, CompSweep, KSweepStart, "big", NoFlow, 0, map[string]float64{"jobs": 100, "workers": 8}),
		srec(0, CompSweep, KSweepJob, "j0", NoFlow, 0, map[string]float64{"completed": 7, "total": 100}),
	}
	sum := Summarize(records)
	if len(sum.Sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(sum.Sweeps))
	}
	sw := sum.Sweeps[0]
	if sw.Done || sw.Completed != 7 || sw.Jobs != 100 {
		t.Errorf("truncated sweep wrong: %+v", sw)
	}
	if !strings.Contains(sum.Render(), "mid-sweep at 7/100") {
		t.Errorf("Render missing truncation notice:\n%s", sum.Render())
	}
}

func TestSummarizeSchedProfile(t *testing.T) {
	records := []Record{
		srec(0.5, CompSim, KSchedProfile, "", NoFlow, 50000, map[string]float64{"pending": 12}),
		srec(1.0, CompSim, KSchedProfile, "", NoFlow, 100000, map[string]float64{"pending": 40}),
		srec(1.5, CompSim, KSchedProfile, "", NoFlow, 150000, map[string]float64{"pending": 9}),
	}
	sum := Summarize(records)
	if sum.Sched.Profiles != 3 || sum.Sched.Events != 150000 || sum.Sched.MaxPending != 40 {
		t.Errorf("sched stats wrong: %+v", sum.Sched)
	}
	if len(sum.Flows) != 0 {
		t.Errorf("sched events fabricated flow rows: %+v", sum.Flows)
	}
	if !strings.Contains(sum.Render(), "scheduler: 3 profile samples, 150000 events processed, peak heap 40") {
		t.Errorf("Render missing scheduler line:\n%s", sum.Render())
	}
}
