package telemetry

import (
	"fmt"

	"rrtcp/internal/sim"
)

// DropPolicy selects what a BoundedSink does with events past its
// budget.
type DropPolicy uint8

const (
	// DropNewest forwards the first MaxEvents events and drops
	// everything after — the log keeps the run's head, where setup and
	// early dynamics live.
	DropNewest DropPolicy = iota
	// SampleOneInK forwards the first MaxEvents events and then every
	// K-th event — the log thins to a sketch of the tail instead of
	// going silent.
	SampleOneInK
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case SampleOneInK:
		return "sample-1-in-k"
	default:
		return fmt.Sprintf("DropPolicy(%d)", int(p))
	}
}

// ParseDropPolicy is the inverse of DropPolicy.String.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "drop-newest":
		return DropNewest, nil
	case "sample-1-in-k", "sample":
		return SampleOneInK, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown drop policy %q", s)
	}
}

// BoundedConfig parameterizes a BoundedSink.
type BoundedConfig struct {
	// MaxEvents is the budget of events forwarded before Policy engages.
	// Zero disables bounding entirely (pure pass-through).
	MaxEvents uint64
	// Policy selects the over-budget behavior.
	Policy DropPolicy
	// K is the SampleOneInK modulus; zero selects 16.
	K uint64
	// Src labels this sink's drop-marker events (the "src" field of the
	// telemetry-drops lines); empty selects "bounded".
	Src string
	// MarkEvery is the cadence (in dropped events) of drop-marker
	// injection after the first; zero selects 8192. The first drop is
	// always marked, so a reader knows immediately that the stream is
	// thinned.
	MarkEvery uint64
}

// BoundedSink wraps another sink with an explicit event budget and drop
// policy, so telemetry under overload thins predictably instead of
// ballooning. Drops are accounted two ways: Dropped/Kept counters read
// in-process, and "telemetry-drops" marker events injected into the
// downstream sink (cumulative counts), which flow into NDJSON logs,
// rrtrace summary, and — through a MetricsSink — the Registry and
// /metrics.
//
// The decision to keep or drop depends only on the event count and the
// policy, never on wall time, so a bounded stream is as deterministic
// as its input.
type BoundedSink struct {
	inner Sink
	cfg   BoundedConfig

	seen, kept, dropped uint64
}

// NewBoundedSink wraps inner with the given budget and policy.
func NewBoundedSink(inner Sink, cfg BoundedConfig) *BoundedSink {
	if cfg.K == 0 {
		cfg.K = 16
	}
	if cfg.Src == "" {
		cfg.Src = "bounded"
	}
	if cfg.MarkEvery == 0 {
		cfg.MarkEvery = 8192
	}
	return &BoundedSink{inner: inner, cfg: cfg}
}

// Emit implements Sink.
func (b *BoundedSink) Emit(ev Event) {
	b.seen++
	if b.cfg.MaxEvents == 0 || b.seen <= b.cfg.MaxEvents {
		b.kept++
		b.inner.Emit(ev)
		return
	}
	if b.cfg.Policy == SampleOneInK && (b.seen-b.cfg.MaxEvents)%b.cfg.K == 0 {
		b.kept++
		b.inner.Emit(ev)
		return
	}
	b.dropped++
	if b.dropped == 1 || b.dropped%b.cfg.MarkEvery == 0 {
		b.mark(ev.At)
	}
}

// mark injects a cumulative drop-accounting event downstream.
func (b *BoundedSink) mark(at sim.Time) {
	b.inner.Emit(Event{
		At:   at,
		Comp: CompTelemetry,
		Kind: KTelemetryDrops,
		Src:  b.cfg.Src,
		Flow: NoFlow,
		A:    float64(b.dropped),
		B:    float64(b.kept),
	})
}

// Finalize injects a final drop marker carrying the totals, stamped at
// the given sim time — call it when the run ends so the log's last word
// on drops is exact. It emits nothing when nothing was dropped.
func (b *BoundedSink) Finalize(at sim.Time) {
	if b.dropped > 0 {
		b.mark(at)
	}
}

// Seen reports the number of events offered to the sink.
func (b *BoundedSink) Seen() uint64 { return b.seen }

// Kept reports the number of events forwarded downstream (drop markers
// not included).
func (b *BoundedSink) Kept() uint64 { return b.kept }

// Dropped reports the number of events the policy discarded.
func (b *BoundedSink) Dropped() uint64 { return b.dropped }
