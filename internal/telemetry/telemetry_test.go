package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus claims to be enabled")
	}
	b.Publish(Event{Kind: KSend}) // must not panic
	b.Subscribe(NullSink{})       // must not panic
}

func TestEmptyBusDisabled(t *testing.T) {
	b := NewBus()
	if b.Enabled() {
		t.Fatal("empty bus claims to be enabled")
	}
	b.Subscribe(nil)
	if b.Enabled() {
		t.Fatal("nil sink counted as a subscriber")
	}
	b.Subscribe(NullSink{})
	if !b.Enabled() {
		t.Fatal("bus with a sink reports disabled")
	}
}

func TestBusFanOut(t *testing.T) {
	r1, r2 := NewRing(0), NewRing(0)
	b := NewBus(r1, r2)
	b.Publish(Event{Kind: KSend, Flow: 3})
	if r1.Total() != 1 || r2.Total() != 1 {
		t.Fatalf("fan-out totals %d/%d, want 1/1", r1.Total(), r2.Total())
	}
	if got := r1.Events()[0].Flow; got != 3 {
		t.Fatalf("event flow %d, want 3", got)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KSend, Seq: int64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total %d, want 5", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
}

func TestRingEventsOf(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{Kind: KSend})
	r.Emit(Event{Kind: KDrop})
	r.Emit(Event{Kind: KSend})
	if got := len(r.EventsOf(KSend)); got != 2 {
		t.Fatalf("EventsOf(KSend) = %d, want 2", got)
	}
	if got := len(r.EventsOf(KTimeout)); got != 0 {
		t.Fatalf("EventsOf(KTimeout) = %d, want 0", got)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KSend; k < kindSentinel; k++ {
		name := k.String()
		if name == "?" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := ParseKind(name); got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", name, got, k)
		}
	}
	if ParseKind("bogus") != 0 {
		t.Fatal("bogus kind parsed")
	}
}

func TestComponentNamesRoundTrip(t *testing.T) {
	for c := CompSim; c <= CompRR; c++ {
		name := c.String()
		if name == "?" {
			t.Fatalf("component %d has no name", c)
		}
		if got := ParseComponent(name); got != c {
			t.Fatalf("ParseComponent(%q) = %v, want %v", name, got, c)
		}
	}
	if ParseComponent("bogus") != 0 {
		t.Fatal("bogus component parsed")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	events := []Event{
		{At: 1500 * time.Millisecond, Comp: CompRR, Kind: KRecoveryEnter, Flow: 0, Seq: 60000, A: 13.6, B: 6.5},
		{At: 2 * time.Second, Comp: CompQueue, Kind: KDrop, Src: "fwd", Flow: 1, Seq: 1000, A: 8, B: 1},
		{At: 3 * time.Second, Comp: CompSim, Kind: KSchedProfile, Flow: NoFlow, Seq: 4096, A: 12, B: 0.001},
	}
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Every line must be valid JSON on its own.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i+1, err, line)
		}
	}

	recs, err := DecodeNDJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(recs) != len(events) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(events))
	}
	r := recs[0]
	if r.T != 1.5 || r.Comp != "rr" || r.Kind != "recovery-enter" || r.Flow != 0 || r.Seq != 60000 {
		t.Fatalf("record 0 fields wrong: %+v", r)
	}
	if r.Attr("cwnd", 0) != 13.6 || r.Attr("ssthresh", 0) != 6.5 {
		t.Fatalf("record 0 attrs wrong: %v", r.Attrs)
	}
	if r.Attr("missing", 42) != 42 {
		t.Fatal("Attr default not returned")
	}
	if recs[1].Src != "fwd" || recs[1].Attr("forced", 0) != 1 {
		t.Fatalf("record 1 wrong: %+v", recs[1])
	}
	if recs[2].Flow != NoFlow {
		t.Fatalf("flowless event decoded with flow %d", recs[2].Flow)
	}
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	sink.Emit(Event{At: time.Second, Comp: CompRR, Kind: KActnum, Flow: 0, Seq: 61000, A: 4, B: 3})
	sink.Close()
	orig := buf.String()

	recs, err := DecodeNDJSON(strings.NewReader(orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	out, err := json.Marshal(recs[0])
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	again, err := DecodeNDJSON(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if len(again) != 1 || again[0].Kind != "actnum" || again[0].Attr("actnum", 0) != 4 || again[0].Attr("ndup", 0) != 3 {
		t.Fatalf("round trip lost data: %+v", again)
	}
}

func TestDecodeNDJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeNDJSON(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeNDJSON(strings.NewReader(`{"t":1}` + "\n")); err == nil {
		t.Fatal("kind-less record accepted")
	}
	recs, err := DecodeNDJSON(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank input: recs=%d err=%v", len(recs), err)
	}
}

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	r.Inc("a.count", 2)
	r.Inc("a.count", 3)
	if r.Counter("a.count") != 5 {
		t.Fatalf("counter = %d", r.Counter("a.count"))
	}
	r.SetGauge("g", 7.5)
	if r.Gauge("g") != 7.5 {
		t.Fatalf("gauge = %v", r.Gauge("g"))
	}
	r.Observe("h", 1)
	r.Observe("h", 3)
	h := r.Hist("h")
	if h == nil || h.Count() != 2 || h.Mean() != 2 || h.Max() != 3 {
		t.Fatalf("hist wrong: %+v", h)
	}
	snap := r.Snapshot()
	for _, want := range []string{"a.count", "g", "h"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
	if snap != r.Snapshot() {
		t.Fatal("snapshot not deterministic")
	}
}

func TestMetricsSinkAggregates(t *testing.T) {
	ms := NewMetricsSink()
	bus := NewBus(ms)
	bus.Publish(Event{Comp: CompSender, Kind: KSend, Flow: 0})
	bus.Publish(Event{Comp: CompSender, Kind: KRetransmit, Flow: 0})
	bus.Publish(Event{Comp: CompSender, Kind: KTimeout, Flow: 0})
	bus.Publish(Event{Comp: CompSender, Kind: KRecoveryEnter, Flow: 0})
	bus.Publish(Event{Comp: CompQueue, Kind: KEnqueue, Src: "fwd", Flow: 0, A: 3})
	bus.Publish(Event{Comp: CompQueue, Kind: KDrop, Src: "fwd", Flow: 0, A: 8, B: 1})
	bus.Publish(Event{Comp: CompLoss, Kind: KDrop, Src: "inject", Flow: 0})
	bus.Publish(Event{Comp: CompLink, Kind: KLinkTx, Src: "fwd", Flow: 0, A: 1000})

	checks := map[string]uint64{
		"sender.0.data_sent":        1,
		"sender.0.retransmits":      1,
		"sender.0.timeouts":         1,
		"sender.0.fast_retransmits": 1,
		"queue.fwd.enqueued":        1,
		"queue.fwd.drops":           1,
		"loss.inject.drops":         1,
		"link.fwd.tx_packets":       1,
	}
	for name, want := range checks {
		if got := ms.R.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if got := ms.R.Counter("link.fwd.tx_bytes"); got != 1000 {
		t.Fatalf("tx_bytes = %d, want 1000", got)
	}
	if got := ms.R.Gauge("queue.fwd.occupancy"); got != 3 {
		t.Fatalf("occupancy gauge = %v, want 3", got)
	}
}
