package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
)

// Registry is a flat, name-keyed metrics store: counters, gauges, and
// histograms. Names are dotted paths keyed by component and instance,
// e.g. "queue.fwd.drops", "sender.0.retransmits", "link.fwd.tx_bytes".
// Everything runs on the single simulation goroutine, so there is no
// locking; Snapshot produces a deterministic (sorted) view.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Histogram
	logHists map[string]*stats.LogHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		logHists: make(map[string]*stats.LogHistogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta uint64) { r.counters[name] += delta }

// Counter returns the named counter's value.
func (r *Registry) Counter(name string) uint64 { return r.counters[name] }

// SetGauge records the latest value of a quantity.
func (r *Registry) SetGauge(name string, v float64) { r.gauges[name] = v }

// Gauge returns the named gauge's latest value.
func (r *Registry) Gauge(name string) float64 { return r.gauges[name] }

// Observe appends a sample to the named histogram, creating it on
// first use.
func (r *Registry) Observe(name string, v float64) {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(v)
}

// Hist returns the named histogram, or nil.
func (r *Registry) Hist(name string) *Histogram { return r.hists[name] }

// ObserveLog appends a sample to the named log-bucketed histogram,
// creating it on first use. Unlike Observe it retains no raw samples,
// so it is the right shape for unbounded streams — episode durations
// over a long sweep, per-job wall latencies.
func (r *Registry) ObserveLog(name string, v float64) {
	h := r.logHists[name]
	if h == nil {
		h = stats.NewLogHistogram()
		r.logHists[name] = h
	}
	h.Observe(v)
}

// LogHist returns the named log-bucketed histogram, or nil.
func (r *Registry) LogHist(name string) *stats.LogHistogram { return r.logHists[name] }

// Histogram retains raw samples and summarizes them through
// internal/stats (mean, percentiles). Event volumes here are bounded
// by run length, so exact percentiles are affordable; a sketch can
// replace the sample slice if that changes.
type Histogram struct {
	samples []float64
}

// Observe appends one sample.
func (h *Histogram) Observe(v float64) { h.samples = append(h.samples, v) }

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 { return stats.Mean(h.samples) }

// Quantile returns the p-th percentile (0..100) of the samples.
func (h *Histogram) Quantile(p float64) float64 { return stats.Percentile(h.samples, p) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return stats.Max(h.samples) }

// Snapshot renders every metric, sorted by name, as "name value" lines
// — a deterministic dump for tests and the rrsim -metrics flag.
func (r *Registry) Snapshot() string {
	var names []string
	for n := range r.counters {
		names = append(names, "c "+n)
	}
	for n := range r.gauges {
		names = append(names, "g "+n)
	}
	for n := range r.hists {
		names = append(names, "h "+n)
	}
	for n := range r.logHists {
		names = append(names, "l "+n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, tagged := range names {
		kind, name := tagged[:1], tagged[2:]
		switch kind {
		case "c":
			fmt.Fprintf(&b, "%-40s %d\n", name, r.counters[name])
		case "g":
			fmt.Fprintf(&b, "%-40s %g\n", name, r.gauges[name])
		case "h":
			h := r.hists[name]
			fmt.Fprintf(&b, "%-40s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
				name, h.Count(), h.Mean(), h.Quantile(50), h.Quantile(99), h.Max())
		case "l":
			h := r.logHists[name]
			fmt.Fprintf(&b, "%-40s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
				name, h.Count(), h.Mean(), h.Quantile(50), h.Quantile(99), h.Max())
		}
	}
	return b.String()
}

// MetricsSink aggregates the event stream into a Registry — the
// bus-native way to get per-queue drop/occupancy, per-link utilization,
// and per-sender recovery counters without touching the publishers.
type MetricsSink struct {
	R *Registry

	// recEnter remembers each flow's open recovery-enter time so exit
	// can feed the episode-duration distribution.
	recEnter map[int32]sim.Time
}

// NewMetricsSink returns a sink feeding a fresh registry.
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{R: NewRegistry(), recEnter: make(map[int32]sim.Time)}
}

// Emit implements Sink.
func (m *MetricsSink) Emit(ev Event) {
	switch ev.Kind {
	case KSend:
		m.R.Inc(flowKey("sender", ev.Flow, "data_sent"), 1)
	case KRetransmit:
		m.R.Inc(flowKey("sender", ev.Flow, "retransmits"), 1)
	case KTimeout:
		m.R.Inc(flowKey("sender", ev.Flow, "timeouts"), 1)
	case KRecoveryEnter:
		m.R.Inc(flowKey("sender", ev.Flow, "fast_retransmits"), 1)
		if m.recEnter != nil {
			m.recEnter[ev.Flow] = ev.At
		}
	case KRecoveryExit:
		if m.recEnter != nil {
			if enter, ok := m.recEnter[ev.Flow]; ok {
				m.R.ObserveLog(flowKey("sender", ev.Flow, "episode_s"), (ev.At - enter).Seconds())
				delete(m.recEnter, ev.Flow)
			}
		}
	case KFurtherLoss:
		m.R.Inc(flowKey("sender", ev.Flow, "further_losses"), 1)
	case KCwnd:
		m.R.SetGauge(flowKey("sender", ev.Flow, "cwnd"), ev.A)
	case KEnqueue:
		m.R.Inc(srcKey("queue", ev.Src, "enqueued"), 1)
		m.R.SetGauge(srcKey("queue", ev.Src, "occupancy"), ev.A)
		m.R.Observe(srcKey("queue", ev.Src, "occupancy_hist"), ev.A)
	case KDrop:
		m.R.Inc(srcKey(ev.Comp.String(), ev.Src, "drops"), 1)
	case KMark:
		m.R.Inc(srcKey("queue", ev.Src, "early_drops"), 1)
	case KLinkTx:
		m.R.Inc(srcKey("link", ev.Src, "tx_packets"), 1)
		m.R.Inc(srcKey("link", ev.Src, "tx_bytes"), uint64(ev.A))
	case KLinkDown:
		m.R.Inc(srcKey("link", ev.Src, "flaps"), 1)
	case KLinkParam:
		m.R.Inc(srcKey("link", ev.Src, "renegotiations"), 1)
	case KFaultReorder:
		m.R.Inc(srcKey("fault", ev.Src, "reordered"), 1)
	case KFaultDup:
		m.R.Inc(srcKey("fault", ev.Src, "duplicated"), 1)
	case KAckCompress:
		m.R.Inc(srcKey("fault", ev.Src, "ack_batches"), 1)
	case KViolation:
		m.R.Inc("invariant.violations", 1)
	case KSchedProfile:
		m.R.SetGauge("sim.events_processed", float64(ev.Seq))
		m.R.SetGauge("sim.heap_depth", ev.A)
		m.R.Observe("sim.heap_depth_hist", ev.A)
		if ev.B > 0 {
			m.R.SetGauge("sim.wall_per_sim_s", ev.B)
		}
	case KSample:
		if ev.Flow != NoFlow {
			m.R.SetGauge(flowKey("sender", ev.Flow, "sample."+ev.Src), ev.A)
		} else {
			m.R.SetGauge(ev.Comp.String()+"."+ev.Src+".sample", ev.A)
		}
	case KSweepJobTime:
		m.R.ObserveLog("sweep.job_latency_s", ev.A)
	case KSweepWorker:
		m.R.SetGauge(srcKey("sweep.worker", ev.Src, "busy_s"), ev.A)
		m.R.SetGauge(srcKey("sweep.worker", ev.Src, "jobs"), ev.B)
	case KSweepDone:
		if ev.B > 0 {
			m.R.SetGauge("sweep.wall_s", ev.B)
		}
	}
}

func flowKey(comp string, flow int32, metric string) string {
	return fmt.Sprintf("%s.%d.%s", comp, flow, metric)
}

func srcKey(comp, src, metric string) string {
	if src == "" {
		src = "?"
	}
	return comp + "." + src + "." + metric
}
