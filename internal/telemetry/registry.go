package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
)

// Registry is a flat, name-keyed metrics store: counters, gauges, and
// histograms. Names are dotted paths keyed by component and instance,
// e.g. "queue.fwd.drops", "sender.0.retransmits", "link.fwd.tx_bytes";
// WritePrometheus translates that convention into Prometheus families
// with an "instance" label.
//
// The registry is safe for concurrent use, with reads that never block
// publishers: counter and gauge updates are atomic operations on
// per-metric cells, so Snapshot (and a live /metrics scrape) observes
// them with plain atomic loads while a simulation keeps publishing.
// The registry-wide lock is taken in write mode only when a metric name
// is seen for the first time; histogram observations and reads
// serialize on a per-histogram mutex (they aggregate multi-word state).
// A single-goroutine simulation pays only uncontended atomics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Uint64
	gauges   map[string]*atomic.Uint64 // math.Float64bits encoded
	hists    map[string]*Histogram
	logHists map[string]*lockedLogHist
}

// lockedLogHist guards a stats.LogHistogram (fixed-size value type)
// against concurrent Observe/read; the value embeds directly so a
// snapshot is a plain struct copy under the lock.
type lockedLogHist struct {
	mu sync.Mutex
	h  stats.LogHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomic.Uint64),
		gauges:   make(map[string]*atomic.Uint64),
		hists:    make(map[string]*Histogram),
		logHists: make(map[string]*lockedLogHist),
	}
}

// counterCell resolves (creating on first use) the named counter cell.
func (r *Registry) counterCell(name string) *atomic.Uint64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(atomic.Uint64)
		r.counters[name] = c
	}
	return c
}

// gaugeCell resolves (creating on first use) the named gauge cell.
func (r *Registry) gaugeCell(name string) *atomic.Uint64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(atomic.Uint64)
		r.gauges[name] = g
	}
	return g
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta uint64) { r.counterCell(name).Add(delta) }

// Counter returns the named counter's value (0 when absent).
func (r *Registry) Counter(name string) uint64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// SetGauge records the latest value of a quantity.
func (r *Registry) SetGauge(name string, v float64) {
	r.gaugeCell(name).Store(math.Float64bits(v))
}

// Gauge returns the named gauge's latest value (0 when absent).
func (r *Registry) Gauge(name string) float64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.Load())
}

// CounterVar is a resolved handle on one counter: hot paths that would
// otherwise pay a map lookup per increment resolve the handle once and
// then Add is a single atomic operation.
type CounterVar struct{ v *atomic.Uint64 }

// Add increments the counter.
func (c CounterVar) Add(delta uint64) { c.v.Add(delta) }

// Value reads the counter.
func (c CounterVar) Value() uint64 { return c.v.Load() }

// GaugeVar is a resolved handle on one gauge.
type GaugeVar struct{ v *atomic.Uint64 }

// Set stores the gauge value.
func (g GaugeVar) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g GaugeVar) Value() float64 { return math.Float64frombits(g.v.Load()) }

// CounterVarOf resolves a live handle on the named counter.
func (r *Registry) CounterVarOf(name string) CounterVar { return CounterVar{r.counterCell(name)} }

// GaugeVarOf resolves a live handle on the named gauge.
func (r *Registry) GaugeVarOf(name string) GaugeVar { return GaugeVar{r.gaugeCell(name)} }

// Observe appends a sample to the named histogram, creating it on
// first use.
func (r *Registry) Observe(name string, v float64) {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h == nil {
		r.mu.Lock()
		if h = r.hists[name]; h == nil {
			h = &Histogram{}
			r.hists[name] = h
		}
		r.mu.Unlock()
	}
	h.Observe(v)
}

// Hist returns the named histogram, or nil. The histogram's own methods
// are safe for concurrent use.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hists[name]
}

// ObserveLog appends a sample to the named log-bucketed histogram,
// creating it on first use. Unlike Observe it retains no raw samples,
// so it is the right shape for unbounded streams — episode durations
// over a long sweep, per-job wall latencies.
func (r *Registry) ObserveLog(name string, v float64) {
	r.mu.RLock()
	l := r.logHists[name]
	r.mu.RUnlock()
	if l == nil {
		r.mu.Lock()
		if l = r.logHists[name]; l == nil {
			l = &lockedLogHist{}
			r.logHists[name] = l
		}
		r.mu.Unlock()
	}
	l.mu.Lock()
	l.h.Observe(v)
	l.mu.Unlock()
}

// LogHist returns a point-in-time copy of the named log-bucketed
// histogram, or nil. Returning a copy keeps readers decoupled from
// concurrent Observe calls.
func (r *Registry) LogHist(name string) *stats.LogHistogram {
	r.mu.RLock()
	l := r.logHists[name]
	r.mu.RUnlock()
	if l == nil {
		return nil
	}
	l.mu.Lock()
	cp := l.h
	l.mu.Unlock()
	return &cp
}

// Histogram retains raw samples and summarizes them through
// internal/stats (mean, percentiles). Event volumes here are bounded
// by run length, so exact percentiles are affordable; a sketch can
// replace the sample slice if that changes. All methods are safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
}

// Observe appends one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sample sum.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Mean(h.samples)
}

// Quantile returns the p-th percentile (0..100) of the samples.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Percentile(h.samples, p)
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Max(h.samples)
}

// metricNames returns every metric name tagged by kind, sorted — the
// shared iteration order of Snapshot and WritePrometheus.
func (r *Registry) metricNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.logHists))
	for n := range r.counters {
		names = append(names, "c "+n)
	}
	for n := range r.gauges {
		names = append(names, "g "+n)
	}
	for n := range r.hists {
		names = append(names, "h "+n)
	}
	for n := range r.logHists {
		names = append(names, "l "+n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot renders every metric, sorted by name, as "name value" lines
// — a deterministic dump for tests and the rrsim -metrics flag. It is
// safe to call while the registry is being written: values are read
// with atomic loads, so concurrent publishers are never blocked.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	for _, tagged := range r.metricNames() {
		kind, name := tagged[:1], tagged[2:]
		switch kind {
		case "c":
			fmt.Fprintf(&b, "%-40s %d\n", name, r.Counter(name))
		case "g":
			fmt.Fprintf(&b, "%-40s %g\n", name, r.Gauge(name))
		case "h":
			h := r.Hist(name)
			fmt.Fprintf(&b, "%-40s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
				name, h.Count(), h.Mean(), h.Quantile(50), h.Quantile(99), h.Max())
		case "l":
			h := r.LogHist(name)
			fmt.Fprintf(&b, "%-40s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
				name, h.Count(), h.Mean(), h.Quantile(50), h.Quantile(99), h.Max())
		}
	}
	return b.String()
}

// MetricsSink aggregates the event stream into a Registry — the
// bus-native way to get per-queue drop/occupancy, per-link utilization,
// and per-sender recovery counters without touching the publishers.
// The registry may be read (Snapshot, WritePrometheus, a live /metrics
// scrape) while the sink keeps emitting; Emit itself follows the usual
// sink contract and runs on one goroutine at a time.
type MetricsSink struct {
	R *Registry

	// recEnter remembers each flow's open recovery-enter time so exit
	// can feed the episode-duration distribution.
	recEnter map[int32]sim.Time
}

// NewMetricsSink returns a sink feeding a fresh registry.
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{R: NewRegistry(), recEnter: make(map[int32]sim.Time)}
}

// Emit implements Sink.
func (m *MetricsSink) Emit(ev Event) {
	switch ev.Kind {
	case KSend:
		m.R.Inc(flowKey("sender", ev.Flow, "data_sent"), 1)
	case KRetransmit:
		m.R.Inc(flowKey("sender", ev.Flow, "retransmits"), 1)
	case KTimeout:
		m.R.Inc(flowKey("sender", ev.Flow, "timeouts"), 1)
	case KRecoveryEnter:
		m.R.Inc(flowKey("sender", ev.Flow, "fast_retransmits"), 1)
		if m.recEnter != nil {
			m.recEnter[ev.Flow] = ev.At
		}
	case KRecoveryExit:
		if m.recEnter != nil {
			if enter, ok := m.recEnter[ev.Flow]; ok {
				m.R.ObserveLog(flowKey("sender", ev.Flow, "episode_s"), (ev.At - enter).Seconds())
				delete(m.recEnter, ev.Flow)
			}
		}
	case KFurtherLoss:
		m.R.Inc(flowKey("sender", ev.Flow, "further_losses"), 1)
	case KCwnd:
		m.R.SetGauge(flowKey("sender", ev.Flow, "cwnd"), ev.A)
	case KEnqueue:
		m.R.Inc(srcKey("queue", ev.Src, "enqueued"), 1)
		m.R.SetGauge(srcKey("queue", ev.Src, "occupancy"), ev.A)
		m.R.Observe(srcKey("queue", ev.Src, "occupancy_hist"), ev.A)
	case KDrop:
		m.R.Inc(srcKey(ev.Comp.String(), ev.Src, "drops"), 1)
	case KMark:
		m.R.Inc(srcKey("queue", ev.Src, "early_drops"), 1)
	case KLinkTx:
		m.R.Inc(srcKey("link", ev.Src, "tx_packets"), 1)
		m.R.Inc(srcKey("link", ev.Src, "tx_bytes"), uint64(ev.A))
	case KLinkDown:
		m.R.Inc(srcKey("link", ev.Src, "flaps"), 1)
	case KLinkParam:
		m.R.Inc(srcKey("link", ev.Src, "renegotiations"), 1)
	case KFaultReorder:
		m.R.Inc(srcKey("fault", ev.Src, "reordered"), 1)
	case KFaultDup:
		m.R.Inc(srcKey("fault", ev.Src, "duplicated"), 1)
	case KAckCompress:
		m.R.Inc(srcKey("fault", ev.Src, "ack_batches"), 1)
	case KViolation:
		m.R.Inc("invariant.violations", 1)
	case KSchedProfile:
		m.R.SetGauge("sim.events_processed", float64(ev.Seq))
		m.R.SetGauge("sim.heap_depth", ev.A)
		m.R.Observe("sim.heap_depth_hist", ev.A)
		if ev.B > 0 {
			m.R.SetGauge("sim.wall_per_sim_s", ev.B)
		}
	case KSample:
		// Gauge names join with '_' (not '.') so the dotted path keeps
		// its comp.instance.metric shape for Prometheus translation.
		if ev.Flow != NoFlow {
			m.R.SetGauge(flowKey("sender", ev.Flow, "sample_"+ev.Src), ev.A)
		} else {
			m.R.SetGauge(srcKey(ev.Comp.String(), ev.Src, "sample"), ev.A)
		}
	case KSweepJobTime:
		m.R.ObserveLog("sweep.job_latency_s", ev.A)
	case KSweepStart:
		m.R.Inc("sweep.started", 1)
		m.R.SetGauge("sweep.jobs_total", ev.A)
		m.R.SetGauge("sweep.workers", ev.B)
	case KSweepJob:
		m.R.SetGauge("sweep.jobs_completed", ev.A)
	case KSweepRetry:
		m.R.Inc("sweep.retries", 1)
	case KSweepStall:
		m.R.Inc("sweep.stalls", 1)
	case KSweepWorker:
		m.R.SetGauge(srcKey("sweep", ev.Src, "worker_busy_s"), ev.A)
		m.R.SetGauge(srcKey("sweep", ev.Src, "worker_jobs"), ev.B)
	case KSweepDegraded:
		m.R.Inc("sweep.degraded", 1)
	case KSweepDone:
		m.R.Inc("sweep.finished", 1)
		if ev.B > 0 {
			m.R.SetGauge("sweep.wall_s", ev.B)
		}
	case KOverload:
		m.R.Inc("guard.overloads", 1)
		m.R.Inc(srcKey("guard", ev.Src, "trips"), 1)
	case KTelemetryDrops:
		// Cumulative counts ride the event, so the gauges always show the
		// sink's latest accounting.
		m.R.SetGauge(srcKey("telemetry", ev.Src, "dropped_events"), ev.A)
		m.R.SetGauge(srcKey("telemetry", ev.Src, "kept_events"), ev.B)
	case KFlowStart:
		m.R.Inc(srcKey("flows", ev.Src, "started"), 1)
	case KFlowStats:
		m.R.Inc(srcKey("flows", ev.Src, "completed"), 1)
		m.R.ObserveLog(srcKey("flows", ev.Src, "rtx"), ev.A)
	}
}

func flowKey(comp string, flow int32, metric string) string {
	return fmt.Sprintf("%s.%d.%s", comp, flow, metric)
}

func srcKey(comp, src, metric string) string {
	if src == "" {
		src = "?"
	}
	return comp + "." + src + "." + metric
}
