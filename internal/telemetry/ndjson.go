package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"rrtcp/internal/sim"
)

// NDJSONSink streams events as newline-delimited JSON, one object per
// line, suitable for tailing and for cmd/rrtrace. Encoding is hand
// rolled (append-based, no reflection) so an enabled log costs little
// beyond the I/O itself.
//
// Line shape:
//
//	{"t":1.234567890,"comp":"rr","kind":"actnum","flow":0,"seq":61000,"actnum":4,"ndup":3}
//
// "src" appears for instance-scoped components (queues, links, loss
// modules); "flow" is omitted for events not tied to a connection; the
// last one or two keys are the kind-specific attributes of Event.A/B.
type NDJSONSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewNDJSONSink wraps w in a buffered NDJSON event writer. Call Close
// (or Flush) before reading the output.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: bufio.NewWriterSize(w, 64<<10), buf: make([]byte, 0, 256)}
}

// Emit implements Sink.
func (n *NDJSONSink) Emit(ev Event) {
	if n.err != nil {
		return
	}
	b := n.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.At.Seconds(), 'f', 9, 64)
	b = append(b, `,"comp":"`...)
	b = append(b, ev.Comp.String()...)
	b = append(b, `","kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Src != "" {
		b = append(b, `,"src":`...)
		b = appendJSONString(b, ev.Src)
	}
	if ev.Flow != NoFlow {
		b = append(b, `,"flow":`...)
		b = strconv.AppendInt(b, int64(ev.Flow), 10)
	}
	if ev.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, ev.Seq, 10)
	}
	aName, bName := ev.Kind.attrNames()
	if aName != "" {
		b = append(b, ',', '"')
		b = append(b, aName...)
		b = append(b, `":`...)
		b = appendJSONFloat(b, ev.A)
	}
	if bName != "" {
		b = append(b, ',', '"')
		b = append(b, bName...)
		b = append(b, `":`...)
		b = appendJSONFloat(b, ev.B)
	}
	b = append(b, '}', '\n')
	n.buf = b
	if _, err := n.w.Write(b); err != nil {
		n.err = err
	}
}

// appendJSONString appends s as a JSON string; instance names are plain
// ASCII identifiers, so the fast path just quotes, falling back to
// encoding/json for anything that needs escaping.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat writes integral values without a decimal point (the
// common case: occupancies, counts) and everything else compactly.
func appendJSONFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Flush pushes buffered lines to the underlying writer.
func (n *NDJSONSink) Flush() error {
	if n.err != nil {
		return n.err
	}
	return n.w.Flush()
}

// Close flushes; the underlying writer's lifetime belongs to the caller.
func (n *NDJSONSink) Close() error { return n.Flush() }

// Err returns the first write error encountered, if any.
func (n *NDJSONSink) Err() error { return n.err }

// Record is one decoded NDJSON line — the read-side counterpart of
// Event, with the kind-specific attributes restored into a map. It is
// what cmd/rrtrace operates on.
type Record struct {
	T     float64            // sim-time in seconds
	Comp  string             // component name
	Kind  string             // event kind name
	Src   string             // instance label, if any
	Flow  int32              // NoFlow when absent
	Seq   int64              //
	Attrs map[string]float64 // kind-specific attributes ("cwnd", "actnum", ...)
}

// Event converts a decoded record back into the bus event it was
// written from, restoring A/B from the kind's attribute names. The
// second return is false when the component or kind name is not part of
// the current vocabulary (a log from a newer build, or foreign JSON
// that happened to parse).
func (r Record) Event() (Event, bool) {
	comp := ParseComponent(r.Comp)
	kind := ParseKind(r.Kind)
	if comp == 0 || kind == 0 {
		return Event{}, false
	}
	ev := Event{
		At:   sim.Time(math.Round(r.T * 1e9)),
		Comp: comp,
		Kind: kind,
		Src:  r.Src,
		Flow: r.Flow,
		Seq:  r.Seq,
	}
	aName, bName := kind.attrNames()
	if aName != "" {
		ev.A = r.Attrs[aName]
	}
	if bName != "" {
		ev.B = r.Attrs[bName]
	}
	return ev, true
}

// Attr returns a named attribute, or def when absent.
func (r Record) Attr(name string, def float64) float64 {
	if v, ok := r.Attrs[name]; ok {
		return v
	}
	return def
}

// MarshalJSON reproduces the NDJSONSink line shape, so filtered records
// re-emitted by rrtrace remain valid input for DecodeNDJSON.
func (r Record) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 128)
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, r.T, 'f', 9, 64)
	b = append(b, `,"comp":`...)
	b = appendJSONString(b, r.Comp)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, r.Kind)
	if r.Src != "" {
		b = append(b, `,"src":`...)
		b = appendJSONString(b, r.Src)
	}
	if r.Flow != NoFlow {
		b = append(b, `,"flow":`...)
		b = strconv.AppendInt(b, int64(r.Flow), 10)
	}
	if r.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, r.Seq, 10)
	}
	names := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		b = append(b, ',')
		b = appendJSONString(b, k)
		b = append(b, ':')
		b = appendJSONFloat(b, r.Attrs[k])
	}
	return append(b, '}'), nil
}

// DecodeStats reports what a lenient decode pass saw.
type DecodeStats struct {
	// Lines counts non-blank input lines.
	Lines int
	// Skipped counts malformed lines that were dropped.
	Skipped int
	// FirstErr describes the first malformed line, for diagnostics.
	FirstErr error
}

// DecodeNDJSON parses an event log produced by NDJSONSink. Blank lines
// are skipped; a malformed line aborts with its line number. Use
// DecodeNDJSONLenient for logs that may be truncated or interleaved
// with foreign output.
func DecodeNDJSON(r io.Reader) ([]Record, error) {
	out, stats, err := DecodeNDJSONLenient(r)
	if err != nil {
		return nil, err
	}
	if stats.Skipped > 0 {
		return nil, stats.FirstErr
	}
	return out, nil
}

// maxDecodeLine caps how much of a single input line the lenient
// decoder buffers. No line NDJSONSink writes comes near it; a line that
// exceeds it (foreign output, binary garbage) is skipped and counted
// like any other malformed line rather than aborting the decode.
const maxDecodeLine = 1 << 20

// DecodeNDJSONLenient parses an event log, skipping and counting
// malformed lines instead of aborting — the behavior cmd/rrtrace needs
// for logs truncated mid-line (a killed run) or polluted by interleaved
// stderr. Lines longer than maxDecodeLine are likewise skipped and
// counted, not treated as fatal. The returned error covers only
// I/O-level failures; parse problems are reported through DecodeStats.
func DecodeNDJSONLenient(r io.Reader) ([]Record, DecodeStats, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []Record
	var stats DecodeStats
	lineNo := 0
	skip := func(lineNo int, err error) {
		stats.Skipped++
		if stats.FirstErr == nil {
			stats.FirstErr = fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
	}
	var buf []byte    // current line, accumulated across ReadSlice calls
	overlong := false // current line already past maxDecodeLine
	var readErr error // terminal I/O error, reported after the last line
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == bufio.ErrBufferFull {
			if len(buf) > maxDecodeLine {
				// Stop accumulating a runaway line; remember to skip it
				// when its newline finally arrives.
				buf = buf[:0]
				overlong = true
			}
			continue
		}
		atEOF := err != nil
		if atEOF && err != io.EOF {
			readErr = err
		}
		line := bytes.TrimSpace(buf)
		wasOverlong := overlong || len(buf) > maxDecodeLine
		buf, overlong = buf[:0], false
		if len(line) == 0 && !wasOverlong {
			if atEOF {
				break
			}
			continue
		}
		lineNo++
		stats.Lines++
		if wasOverlong {
			skip(lineNo, fmt.Errorf("line exceeds %d-byte cap", maxDecodeLine))
			if atEOF {
				break
			}
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			skip(lineNo, err)
			continue
		}
		rec := Record{Flow: NoFlow, Attrs: map[string]float64{}}
		for k, v := range raw {
			switch k {
			case "t":
				rec.T, _ = v.(float64)
			case "comp":
				rec.Comp, _ = v.(string)
			case "kind":
				rec.Kind, _ = v.(string)
			case "src":
				rec.Src, _ = v.(string)
			case "flow":
				if f, ok := v.(float64); ok {
					rec.Flow = int32(f)
				}
			case "seq":
				if f, ok := v.(float64); ok {
					rec.Seq = int64(f)
				}
			default:
				if f, ok := v.(float64); ok {
					rec.Attrs[k] = f
				}
			}
		}
		if rec.Kind == "" {
			skip(lineNo, fmt.Errorf("missing \"kind\""))
			continue
		}
		out = append(out, rec)
		if atEOF {
			break
		}
	}
	if readErr != nil {
		return out, stats, fmt.Errorf("telemetry: read: %w", readErr)
	}
	return out, stats, nil
}
