package telemetry

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeLenientSkipsOverlongLines(t *testing.T) {
	long := strings.Repeat("x", maxDecodeLine+4096)
	input := `{"t":0.1,"comp":"sender","kind":"cwnd","flow":0,"cwnd":2}` + "\n" +
		long + "\n" +
		`{"t":0.2,"comp":"sender","kind":"cwnd","flow":0,"cwnd":3}` + "\n"
	out, stats, err := DecodeNDJSONLenient(strings.NewReader(input))
	if err != nil {
		t.Fatalf("overlong line treated as I/O failure: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want the 2 good lines", len(out))
	}
	if out[0].Attrs["cwnd"] != 2 || out[1].Attrs["cwnd"] != 3 {
		t.Fatalf("wrong records survived: %+v", out)
	}
	if stats.Lines != 3 || stats.Skipped != 1 {
		t.Fatalf("stats = %+v, want 3 lines with 1 skipped", stats)
	}
	if stats.FirstErr == nil || !strings.Contains(stats.FirstErr.Error(), "exceeds") {
		t.Fatalf("FirstErr = %v, want the over-cap diagnostic", stats.FirstErr)
	}
}

func TestDecodeLenientOverlongLineAtEOF(t *testing.T) {
	// A runaway final line with no trailing newline (truncated log).
	input := `{"t":0.1,"comp":"sender","kind":"cwnd","flow":0,"cwnd":2}` + "\n" +
		strings.Repeat("y", maxDecodeLine+100)
	out, stats, err := DecodeNDJSONLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || stats.Skipped != 1 {
		t.Fatalf("got %d records, %d skipped; want 1 record and the tail skipped", len(out), stats.Skipped)
	}
}

// failAfterReader yields its payload, then a non-EOF error.
type failAfterReader struct {
	data []byte
	err  error
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func TestDecodeLenientStillReportsRealIOErrors(t *testing.T) {
	ioErr := errors.New("disk on fire")
	r := &failAfterReader{
		data: []byte(`{"t":0.1,"comp":"sender","kind":"cwnd","flow":0,"cwnd":2}` + "\n"),
		err:  ioErr,
	}
	out, _, err := DecodeNDJSONLenient(r)
	if !errors.Is(err, ioErr) {
		t.Fatalf("err = %v, want the underlying I/O error", err)
	}
	if len(out) != 1 {
		t.Fatalf("lost the %d complete lines read before the failure", 1)
	}
}
