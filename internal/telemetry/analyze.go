package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the read-side analysis cmd/rrtrace is built on: recovery
// episode extraction, per-queue drop accounting, record filtering, and
// an ASCII timeline of one flow's cwnd/actnum/phase evolution.

// Episode is one recovery pass through the RR (or baseline) state
// machine, reconstructed from phase-transition events.
type Episode struct {
	Flow    int32
	Start   float64 // recovery-enter time (s)
	ProbeAt float64 // retreat→probe flip time (s); <0 if never reached
	End     float64 // recovery-exit time (s); <0 if cut short (timeout/EOF)
	// ExitCwnd is the hand-off window at exit (RR: actnum×MSS in packets).
	ExitCwnd float64
	// FurtherLosses counts ndup<actnum detections inside the episode.
	FurtherLosses int
	// Timeout reports the episode ended in a retransmission timeout
	// rather than a clean exit.
	Timeout bool
}

// RetreatDur is the retreat sub-phase duration in seconds (0 when the
// probe flip never happened).
func (e Episode) RetreatDur() float64 {
	if e.ProbeAt < 0 {
		if e.End >= 0 {
			return e.End - e.Start
		}
		return 0
	}
	return e.ProbeAt - e.Start
}

// ProbeDur is the probe sub-phase duration in seconds.
func (e Episode) ProbeDur() float64 {
	if e.ProbeAt < 0 || e.End < 0 {
		return 0
	}
	return e.End - e.ProbeAt
}

// FlowSummary aggregates one flow's events.
type FlowSummary struct {
	Flow        int32
	Variant     string // from the flow-start lifecycle event, "" in older logs
	Sends       int
	Retransmits int
	Timeouts    int
	DupAcks     int
	Done        bool
	DoneAt      float64
	Episodes    []Episode
}

// QueueDrops is the drop count of one queue/loss instance.
type QueueDrops struct {
	Comp   string
	Src    string
	Drops  int
	Forced int // KDrop events with forced=1 (queue overflow vs RED early)
}

// SampleStats aggregates one sampled gauge series ("sample" events from
// the periodic Sampler): the series identity plus count and range.
type SampleStats struct {
	Comp string
	Src  string // gauge name (cwnd, srtt, qlen, ...)
	Flow int32  // NoFlow for flowless sources (queues)
	N    int
	Min  float64
	Max  float64
	Last float64
}

// sampleKey identifies one sampled series.
type sampleKey struct {
	comp, src string
	flow      int32
}

// WorkerStats is one worker's end-of-sweep totals from a sweep-worker
// event.
type WorkerStats struct {
	Worker int
	Jobs   int
	BusyS  float64
}

// SweepStats aggregates one sweep's progress and timing stream
// (sweep-start/sweep-job/sweep-job-time/sweep-worker/sweep-done).
type SweepStats struct {
	Name      string
	Jobs      int
	Completed int // jobs finished by the last event in the log
	Workers   int
	WallS     float64 // from sweep-done; 0 when the log ends mid-sweep
	Done      bool
	// Per-job wall-latency distribution from sweep-job-time events.
	JobTimeN     int
	JobTimeMeanS float64
	JobTimeMaxS  float64
	PerWorker    []WorkerStats // sorted by worker index
	// Resilience counters: transient-failure retries, hung-job stall
	// detections, and budget-tripped jobs converted into Degraded
	// results, published by the sweep engine's harness telemetry
	// (sweep-retry / sweep-stall / sweep-degraded).
	Retries  int
	Stalls   int
	Degraded int
}

// OverloadStats aggregates one resource's guard "overload" events: how
// often the budget tripped and the last observed/limit pair.
type OverloadStats struct {
	Resource string
	Trips    int
	Observed float64 // last trip's observed value
	Limit    float64
}

// TelemetryDropStats is the final drop accounting of one bounded sink
// ("telemetry-drops" markers carry cumulative counts, so the last one
// in the log is the total).
type TelemetryDropStats struct {
	Src     string
	Dropped float64
	Kept    float64
}

// SchedStats aggregates scheduler self-profiling ("sched") events.
type SchedStats struct {
	Profiles   int
	Events     int64   // processed count at the last profile event
	MaxPending float64 // peak event-heap depth observed
}

// LogSummary is the full analysis of an event log.
type LogSummary struct {
	From, To float64
	Events   int
	// FlowsStarted / FlowsCompleted count the flow-start / flow-done
	// lifecycle events — at scale the log may carry only those (plus
	// aggregates) rather than the full per-flow streams.
	FlowsStarted   int
	FlowsCompleted int
	Flows          []FlowSummary        // sorted by flow id
	Queues         []QueueDrops         // sorted by comp then src
	Samples        []SampleStats        // sorted by comp, src, flow
	Sweeps         []SweepStats         // in log order
	Overload       []OverloadStats      // sorted by resource
	Drops          []TelemetryDropStats // sorted by src
	Sched          SchedStats
}

// Summarize reconstructs per-flow recovery episodes and per-queue drop
// counts from a decoded event log.
func Summarize(records []Record) LogSummary {
	sum := LogSummary{Events: len(records)}
	flows := map[int32]*FlowSummary{}
	open := map[int32]*Episode{} // in-progress episode per flow
	drops := map[[2]string]*QueueDrops{}
	samples := map[sampleKey]*SampleStats{}
	overloads := map[string]*OverloadStats{}
	tdrops := map[string]*TelemetryDropStats{}
	var curSweep *SweepStats // open sweep, appended to sum.Sweeps on done/EOF

	flowOf := func(id int32) *FlowSummary {
		f := flows[id]
		if f == nil {
			f = &FlowSummary{Flow: id, DoneAt: -1}
			flows[id] = f
		}
		return f
	}
	sweepOf := func(name string) *SweepStats {
		if curSweep == nil {
			curSweep = &SweepStats{Name: name}
		}
		return curSweep
	}

	for i, r := range records {
		if i == 0 || r.T < sum.From {
			sum.From = r.T
		}
		if r.T > sum.To {
			sum.To = r.T
		}
		switch r.Kind {
		case KDrop.String():
			key := [2]string{r.Comp, r.Src}
			d := drops[key]
			if d == nil {
				d = &QueueDrops{Comp: r.Comp, Src: r.Src}
				drops[key] = d
			}
			d.Drops++
			if r.Attr("forced", 0) != 0 {
				d.Forced++
			}
			continue
		case KMark.String():
			key := [2]string{r.Comp, r.Src}
			d := drops[key]
			if d == nil {
				d = &QueueDrops{Comp: r.Comp, Src: r.Src}
				drops[key] = d
			}
			d.Drops++
			continue
		case KSample.String():
			key := sampleKey{r.Comp, r.Src, r.Flow}
			s := samples[key]
			if s == nil {
				s = &SampleStats{Comp: r.Comp, Src: r.Src, Flow: r.Flow}
				samples[key] = s
			}
			v := r.Attr("value", 0)
			if s.N == 0 || v < s.Min {
				s.Min = v
			}
			if s.N == 0 || v > s.Max {
				s.Max = v
			}
			s.N++
			s.Last = v
			continue
		case KSchedProfile.String():
			sum.Sched.Profiles++
			if r.Seq > sum.Sched.Events {
				sum.Sched.Events = r.Seq
			}
			if p := r.Attr("pending", 0); p > sum.Sched.MaxPending {
				sum.Sched.MaxPending = p
			}
			continue
		case KSweepStart.String():
			if curSweep != nil {
				sum.Sweeps = append(sum.Sweeps, *curSweep)
			}
			curSweep = &SweepStats{
				Name:    r.Src,
				Jobs:    int(r.Attr("jobs", 0)),
				Workers: int(r.Attr("workers", 0)),
			}
			continue
		case KSweepJob.String():
			s := sweepOf("")
			s.Completed = int(r.Attr("completed", 0))
			if s.Jobs == 0 {
				s.Jobs = int(r.Attr("total", 0))
			}
			continue
		case KSweepJobTime.String():
			s := sweepOf("")
			w := r.Attr("wall_s", 0)
			s.JobTimeMeanS += w // sum here; divided by N after the loop
			s.JobTimeN++
			if w > s.JobTimeMaxS {
				s.JobTimeMaxS = w
			}
			continue
		case KSweepRetry.String():
			sweepOf("").Retries++
			continue
		case KSweepStall.String():
			sweepOf("").Stalls++
			continue
		case KSweepDegraded.String():
			sweepOf("").Degraded++
			continue
		case KOverload.String():
			o := overloads[r.Src]
			if o == nil {
				o = &OverloadStats{Resource: r.Src}
				overloads[r.Src] = o
			}
			o.Trips++
			o.Observed = r.Attr("observed", 0)
			o.Limit = r.Attr("limit", 0)
			continue
		case KTelemetryDrops.String():
			d := tdrops[r.Src]
			if d == nil {
				d = &TelemetryDropStats{Src: r.Src}
				tdrops[r.Src] = d
			}
			// Cumulative counters: the latest marker supersedes.
			d.Dropped = r.Attr("dropped", 0)
			d.Kept = r.Attr("kept", 0)
			continue
		case KSweepWorker.String():
			s := sweepOf("")
			if w, ok := atoiSafe(r.Src); ok {
				s.PerWorker = append(s.PerWorker, WorkerStats{
					Worker: w,
					Jobs:   int(r.Attr("jobs", 0)),
					BusyS:  r.Attr("busy_s", 0),
				})
			}
			continue
		case KSweepDone.String():
			s := sweepOf(r.Src)
			if s.Name == "" {
				s.Name = r.Src
			}
			if j := int(r.Attr("jobs", 0)); j > 0 {
				s.Jobs = j
				s.Completed = j
			}
			s.WallS = r.Attr("wall_s", 0)
			s.Done = true
			sum.Sweeps = append(sum.Sweeps, *s)
			curSweep = nil
			continue
		}
		if r.Flow == NoFlow {
			continue
		}
		f := flowOf(r.Flow)
		switch r.Kind {
		case KSend.String():
			f.Sends++
		case KRetransmit.String():
			f.Retransmits++
		case KDupAck.String():
			f.DupAcks++
		case KTimeout.String():
			f.Timeouts++
			if ep := open[r.Flow]; ep != nil {
				ep.Timeout = true
				ep.End = r.T
				f.Episodes = append(f.Episodes, *ep)
				delete(open, r.Flow)
			}
		case KFlowDone.String():
			f.Done = true
			f.DoneAt = r.T
		case KFlowStart.String():
			sum.FlowsStarted++
			f.Variant = r.Src
		case KFlowStats.String():
			sum.FlowsCompleted++
			if f.Variant == "" {
				f.Variant = r.Src
			}
			f.Done = true
			if f.DoneAt < 0 {
				f.DoneAt = r.T
			}
		case KRecoveryEnter.String():
			open[r.Flow] = &Episode{Flow: r.Flow, Start: r.T, ProbeAt: -1, End: -1}
		case KRetreatProbe.String():
			if ep := open[r.Flow]; ep != nil && ep.ProbeAt < 0 {
				ep.ProbeAt = r.T
			}
		case KFurtherLoss.String():
			if ep := open[r.Flow]; ep != nil {
				ep.FurtherLosses++
			}
		case KRecoveryExit.String():
			if ep := open[r.Flow]; ep != nil {
				ep.End = r.T
				ep.ExitCwnd = r.Attr("cwnd", 0)
				f.Episodes = append(f.Episodes, *ep)
				delete(open, r.Flow)
			}
		}
	}
	// Episodes still open at EOF are reported with End < 0.
	for id, ep := range open {
		flowOf(id).Episodes = append(flowOf(id).Episodes, *ep)
	}

	for _, f := range flows {
		sort.Slice(f.Episodes, func(i, j int) bool { return f.Episodes[i].Start < f.Episodes[j].Start })
		sum.Flows = append(sum.Flows, *f)
	}
	sort.Slice(sum.Flows, func(i, j int) bool { return sum.Flows[i].Flow < sum.Flows[j].Flow })
	for _, d := range drops {
		sum.Queues = append(sum.Queues, *d)
	}
	sort.Slice(sum.Queues, func(i, j int) bool {
		if sum.Queues[i].Comp != sum.Queues[j].Comp {
			return sum.Queues[i].Comp < sum.Queues[j].Comp
		}
		return sum.Queues[i].Src < sum.Queues[j].Src
	})
	for _, s := range samples {
		sum.Samples = append(sum.Samples, *s)
	}
	sort.Slice(sum.Samples, func(i, j int) bool {
		a, b := sum.Samples[i], sum.Samples[j]
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Flow < b.Flow
	})
	for _, o := range overloads {
		sum.Overload = append(sum.Overload, *o)
	}
	sort.Slice(sum.Overload, func(i, j int) bool { return sum.Overload[i].Resource < sum.Overload[j].Resource })
	for _, d := range tdrops {
		sum.Drops = append(sum.Drops, *d)
	}
	sort.Slice(sum.Drops, func(i, j int) bool { return sum.Drops[i].Src < sum.Drops[j].Src })
	if curSweep != nil { // log ended mid-sweep
		sum.Sweeps = append(sum.Sweeps, *curSweep)
	}
	for i := range sum.Sweeps {
		s := &sum.Sweeps[i]
		if s.JobTimeN > 0 {
			s.JobTimeMeanS /= float64(s.JobTimeN)
		}
		sort.Slice(s.PerWorker, func(a, b int) bool { return s.PerWorker[a].Worker < s.PerWorker[b].Worker })
	}
	return sum
}

// Render formats the summary as the tables rrtrace prints.
func (s LogSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events over %.3fs..%.3fs\n", s.Events, s.From, s.To)
	if s.FlowsStarted > 0 || s.FlowsCompleted > 0 {
		fmt.Fprintf(&b, "flows: %d started, %d completed\n", s.FlowsStarted, s.FlowsCompleted)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s %-6s %-5s %-9s %-8s %-9s %s\n",
		"flow", "sends", "rtx", "timeouts", "dupacks", "episodes", "done")
	for _, f := range s.Flows {
		done := "-"
		if f.Done {
			done = fmt.Sprintf("%.3fs", f.DoneAt)
		}
		fmt.Fprintf(&b, "%-5d %-6d %-5d %-9d %-8d %-9d %s\n",
			f.Flow, f.Sends, f.Retransmits, f.Timeouts, f.DupAcks, len(f.Episodes), done)
	}
	b.WriteByte('\n')
	any := false
	for _, f := range s.Flows {
		for i, ep := range f.Episodes {
			if !any {
				fmt.Fprintf(&b, "%-5s %-3s %-9s %-11s %-11s %-9s %-8s %s\n",
					"flow", "ep", "enter", "retreat", "probe", "further", "exitcwnd", "end")
				any = true
			}
			end := "open"
			switch {
			case ep.Timeout:
				end = "timeout"
			case ep.End >= 0:
				end = "exit"
			}
			probe := "-"
			if ep.ProbeAt >= 0 {
				probe = fmt.Sprintf("%.3fs", ep.ProbeDur())
			}
			fmt.Fprintf(&b, "%-5d %-3d %-9s %-11s %-11s %-9d %-8.1f %s\n",
				f.Flow, i+1, fmt.Sprintf("%.3fs", ep.Start),
				fmt.Sprintf("%.3fs", ep.RetreatDur()), probe,
				ep.FurtherLosses, ep.ExitCwnd, end)
		}
	}
	if !any {
		b.WriteString("no recovery episodes\n")
	}
	b.WriteByte('\n')
	if len(s.Queues) == 0 {
		b.WriteString("no drops recorded\n")
	} else {
		fmt.Fprintf(&b, "%-8s %-10s %-7s %s\n", "comp", "src", "drops", "forced")
		for _, q := range s.Queues {
			fmt.Fprintf(&b, "%-8s %-10s %-7d %d\n", q.Comp, q.Src, q.Drops, q.Forced)
		}
	}
	if len(s.Samples) > 0 {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "sampled series:\n%-8s %-10s %-5s %-7s %-10s %-10s %s\n",
			"comp", "gauge", "flow", "n", "min", "max", "last")
		for _, sm := range s.Samples {
			flow := "-"
			if sm.Flow != NoFlow {
				flow = fmt.Sprintf("%d", sm.Flow)
			}
			fmt.Fprintf(&b, "%-8s %-10s %-5s %-7d %-10.4g %-10.4g %.4g\n",
				sm.Comp, sm.Src, flow, sm.N, sm.Min, sm.Max, sm.Last)
		}
	}
	for _, sw := range s.Sweeps {
		b.WriteByte('\n')
		state := fmt.Sprintf("(log ended mid-sweep at %d/%d)", sw.Completed, sw.Jobs)
		if sw.Done {
			state = fmt.Sprintf("in %.3fs", sw.WallS)
		}
		fmt.Fprintf(&b, "sweep %s: %d jobs on %d workers %s\n",
			label(sw.Name), sw.Jobs, sw.Workers, state)
		if sw.JobTimeN > 0 {
			fmt.Fprintf(&b, "  job wall: n=%d mean=%.4fs max=%.4fs\n",
				sw.JobTimeN, sw.JobTimeMeanS, sw.JobTimeMaxS)
		}
		if sw.Retries > 0 || sw.Stalls > 0 || sw.Degraded > 0 {
			fmt.Fprintf(&b, "  resilience: %d retries, %d stall events, %d degraded\n",
				sw.Retries, sw.Stalls, sw.Degraded)
		}
		for _, w := range sw.PerWorker {
			fmt.Fprintf(&b, "  worker %d: %d jobs, %.4fs busy\n", w.Worker, w.Jobs, w.BusyS)
		}
	}
	if len(s.Overload) > 0 {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "overload trips:\n%-12s %-6s %-14s %s\n", "resource", "trips", "observed", "limit")
		for _, o := range s.Overload {
			fmt.Fprintf(&b, "%-12s %-6d %-14.6g %.6g\n", o.Resource, o.Trips, o.Observed, o.Limit)
		}
	}
	if len(s.Drops) > 0 {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "telemetry drops:\n%-12s %-12s %s\n", "sink", "dropped", "kept")
		for _, d := range s.Drops {
			fmt.Fprintf(&b, "%-12s %-12.0f %.0f\n", d.Src, d.Dropped, d.Kept)
		}
	}
	if s.Sched.Profiles > 0 {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "scheduler: %d profile samples, %d events processed, peak heap %d\n",
			s.Sched.Profiles, s.Sched.Events, int64(s.Sched.MaxPending))
	}
	return b.String()
}

// FilterOpts selects records; zero values mean "no constraint".
type FilterOpts struct {
	Flow     int32 // NoFlow matches everything (use FlowSet for flow 0 etc.)
	FlowSet  bool
	Comp     string
	Kind     string
	From, To float64 // To==0 means unbounded
}

// Filter returns the records matching every set constraint, in order.
func Filter(records []Record, opts FilterOpts) []Record {
	var out []Record
	for _, r := range records {
		if opts.FlowSet && r.Flow != opts.Flow {
			continue
		}
		if opts.Comp != "" && r.Comp != opts.Comp {
			continue
		}
		if opts.Kind != "" && r.Kind != opts.Kind {
			continue
		}
		if r.T < opts.From {
			continue
		}
		if opts.To > 0 && r.T > opts.To {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Timeline renders one flow's congestion state over time as ASCII:
// '*' = cwnd samples, '+' = actnum samples, and a phase strip beneath
// the plot ('r' retreat, 'p' probe, '.' open / outside recovery).
func Timeline(records []Record, flow int32, width, height int) string {
	if width < 8 {
		width = 72
	}
	if height < 4 {
		height = 16
	}
	type pt struct {
		t, v float64
		mark byte
	}
	var pts []pt
	var minT, maxT, maxV float64
	first := true
	// Phase boundaries for the strip.
	type flip struct {
		t     float64
		phase byte
	}
	var flips []flip
	for _, r := range records {
		if r.Flow != flow {
			continue
		}
		switch r.Kind {
		case KCwnd.String(), KRecoveryEnter.String(), KRecoveryExit.String():
			pts = append(pts, pt{r.T, r.Attr("cwnd", 0), '*'})
		case KActnum.String(), KRetreatProbe.String():
			pts = append(pts, pt{r.T, r.Attr("actnum", 0), '+'})
		default:
			continue
		}
		switch r.Kind {
		case KRecoveryEnter.String():
			flips = append(flips, flip{r.T, 'r'})
		case KRetreatProbe.String():
			flips = append(flips, flip{r.T, 'p'})
		case KRecoveryExit.String():
			flips = append(flips, flip{r.T, '.'})
		}
		p := pts[len(pts)-1]
		if first {
			minT, maxT, maxV = p.t, p.t, p.v
			first = false
		}
		if p.t < minT {
			minT = p.t
		}
		if p.t > maxT {
			maxT = p.t
		}
		if p.v > maxV {
			maxV = p.v
		}
	}
	if len(pts) == 0 {
		return fmt.Sprintf("flow %d: no cwnd/actnum samples\n", flow)
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == 0 {
		maxV = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		x := int((p.t - minT) / (maxT - minT) * float64(width-1))
		y := int(p.v / maxV * float64(height-1))
		if y > height-1 {
			y = height - 1
		}
		row := grid[height-1-y]
		// actnum wins over cwnd when both land on a cell: the recovery
		// control variable is the interesting one.
		if row[x] != '+' {
			row[x] = p.mark
		}
	}
	strip := []byte(strings.Repeat(".", width))
	phase := byte('.')
	fi := 0
	for x := 0; x < width; x++ {
		t := minT + (maxT-minT)*float64(x)/float64(width-1)
		for fi < len(flips) && flips[fi].t <= t {
			phase = flips[fi].phase
			fi++
		}
		strip[x] = phase
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flow %d  cwnd(*)/actnum(+) 0..%.1f pkts  %.3fs..%.3fs\n", flow, maxV, minT, maxT)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.Write(strip)
	b.WriteString("\nphase: r=retreat p=probe .=open\n")
	return b.String()
}
