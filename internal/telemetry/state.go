package telemetry

import (
	"sync"
	"time"
)

// ProgressState is a concurrency-safe materialized view of the sweep
// progress stream (KSweepStart/KSweepJob/KSweepJobTime/KSweepWorker/
// KSweepDone): the sink the introspection server's /progress endpoint
// reads. Emit follows the usual sink contract (one goroutine at a
// time, the sweep coordinator); Snapshot may be called concurrently
// from any goroutine — typically an HTTP handler — so the state locks
// where the event-bus sinks normally need not.
type ProgressState struct {
	mu    sync.Mutex
	snap  ProgressSnapshot
	start time.Time // wall clock at KSweepStart, for live elapsed time
}

// StalledJob is one in-flight job currently past the sweep engine's
// stall threshold — the /progress view of a KSweepStall event. A job
// leaves the list when it completes (KSweepJob for its index).
type StalledJob struct {
	// Job names the stuck job; Index is its position in the job list.
	Job   string `json:"job"`
	Index int    `json:"index"`
	// Worker is the worker the attempt is wedged on.
	Worker int `json:"worker"`
	// RunningS is how long the attempt had been running at the last
	// stall event.
	RunningS float64 `json:"running_s"`
}

// WorkerProgress is one worker's accumulated share of a sweep.
type WorkerProgress struct {
	// Jobs counts jobs the worker has finished.
	Jobs int `json:"jobs"`
	// BusyS is wall-clock seconds the worker spent inside jobs.
	BusyS float64 `json:"busy_s"`
}

// ProgressSnapshot is a point-in-time copy of sweep progress, shaped
// for JSON.
type ProgressSnapshot struct {
	// Active reports whether a sweep is currently running.
	Active bool `json:"active"`
	// Sweep is the running (or last finished) sweep's name.
	Sweep string `json:"sweep,omitempty"`
	// Jobs and Workers are the sweep's totals from KSweepStart.
	Jobs    int `json:"jobs"`
	Workers int `json:"workers"`
	// Completed counts finished jobs so far.
	Completed int `json:"completed"`
	// LastJob names the most recently finished job; LastIndex is its
	// position in the job list.
	LastJob   string `json:"last_job,omitempty"`
	LastIndex int    `json:"last_index"`
	// WallS is elapsed wall seconds: live while Active, final after.
	WallS float64 `json:"wall_s"`
	// JobWallMeanS / JobWallMaxS summarize per-job wall latency.
	JobWallMeanS float64 `json:"job_wall_mean_s"`
	JobWallMaxS  float64 `json:"job_wall_max_s"`
	// PerWorker is indexed by worker id.
	PerWorker []WorkerProgress `json:"per_worker,omitempty"`
	// Retries counts job attempts that failed transiently and were
	// re-executed (KSweepRetry events).
	Retries int `json:"retries,omitempty"`
	// Degraded counts jobs whose resource-budget trips were converted
	// into Degraded results (KSweepDegraded events).
	Degraded int `json:"degraded,omitempty"`
	// Stalled lists in-flight jobs currently past the stall threshold,
	// in stall-event order.
	Stalled []StalledJob `json:"stalled,omitempty"`
	// SweepsDone counts completed sweeps over the process lifetime
	// (rrsim all runs several back to back).
	SweepsDone int `json:"sweeps_done"`

	jobWallSum float64
	jobWallN   int
}

// NewProgressState returns an empty state, ready to subscribe to the
// sweep's progress bus.
func NewProgressState() *ProgressState { return &ProgressState{} }

// Emit implements Sink.
func (p *ProgressState) Emit(ev Event) {
	if p == nil || ev.Comp != CompSweep {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case KSweepStart:
		done := p.snap.SweepsDone
		p.snap = ProgressSnapshot{
			Active:     true,
			Sweep:      ev.Src,
			Jobs:       int(ev.A),
			Workers:    int(ev.B),
			LastIndex:  -1,
			SweepsDone: done,
			PerWorker:  make([]WorkerProgress, int(ev.B)),
		}
		p.start = time.Now()
	case KSweepJob:
		p.snap.Completed = int(ev.A)
		p.snap.LastJob = ev.Src
		p.snap.LastIndex = int(ev.Seq)
		p.dropStalled(int(ev.Seq))
	case KSweepJobTime:
		p.snap.jobWallSum += ev.A
		p.snap.jobWallN++
		if ev.A > p.snap.JobWallMaxS {
			p.snap.JobWallMaxS = ev.A
		}
		if w := int(ev.B); w >= 0 && w < len(p.snap.PerWorker) {
			p.snap.PerWorker[w].Jobs++
			p.snap.PerWorker[w].BusyS += ev.A
		}
	case KSweepWorker:
		// Authoritative end-of-sweep totals; Src is the worker index.
		if w, ok := atoiSafe(ev.Src); ok && w >= 0 && w < len(p.snap.PerWorker) {
			p.snap.PerWorker[w] = WorkerProgress{Jobs: int(ev.B), BusyS: ev.A}
		}
	case KSweepStall:
		// Upsert by index: repeated stall events for the same wedged
		// attempt refresh the running time instead of duplicating.
		idx := int(ev.Seq)
		for i := range p.snap.Stalled {
			if p.snap.Stalled[i].Index == idx {
				p.snap.Stalled[i].RunningS = ev.A
				p.snap.Stalled[i].Worker = int(ev.B)
				return
			}
		}
		p.snap.Stalled = append(p.snap.Stalled, StalledJob{
			Job: ev.Src, Index: idx, Worker: int(ev.B), RunningS: ev.A,
		})
	case KSweepRetry:
		p.snap.Retries++
		// The wedged attempt was abandoned; the job is live again.
		p.dropStalled(int(ev.Seq))
	case KSweepDegraded:
		p.snap.Degraded++
		p.dropStalled(int(ev.Seq))
	case KSweepDone:
		p.snap.Active = false
		p.snap.Completed = int(ev.A)
		p.snap.Stalled = nil
		if ev.B > 0 {
			p.snap.WallS = ev.B
		} else if !p.start.IsZero() {
			p.snap.WallS = time.Since(p.start).Seconds()
		}
		p.snap.SweepsDone++
	}
}

// dropStalled removes the stalled entry for a job index, if present.
// Callers hold p.mu.
func (p *ProgressState) dropStalled(index int) {
	for i := range p.snap.Stalled {
		if p.snap.Stalled[i].Index == index {
			p.snap.Stalled = append(p.snap.Stalled[:i], p.snap.Stalled[i+1:]...)
			return
		}
	}
}

// Snapshot returns a copy of the current state; safe to call from any
// goroutine while the sweep keeps publishing.
func (p *ProgressState) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.snap
	s.PerWorker = append([]WorkerProgress(nil), p.snap.PerWorker...)
	if len(p.snap.Stalled) > 0 {
		s.Stalled = append([]StalledJob(nil), p.snap.Stalled...)
	}
	if s.Active && !p.start.IsZero() {
		s.WallS = time.Since(p.start).Seconds()
	}
	if s.jobWallN > 0 {
		s.JobWallMeanS = s.jobWallSum / float64(s.jobWallN)
	}
	return s
}

// atoiSafe parses a small non-negative decimal without strconv's error
// allocation on the hot path.
func atoiSafe(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<24 {
			return 0, false
		}
	}
	return n, true
}
