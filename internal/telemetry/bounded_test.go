package telemetry

import (
	"testing"

	"rrtcp/internal/sim"
)

// capture is a sink recording everything forwarded to it.
type capture struct{ events []Event }

func (c *capture) Emit(ev Event) { c.events = append(c.events, ev) }

func emitN(b *BoundedSink, n int) {
	for i := 0; i < n; i++ {
		b.Emit(Event{At: sim.Time(i), Comp: CompSender, Kind: KCwnd, Flow: 0, A: float64(i)})
	}
}

// payload filters out the sink's own drop markers.
func payload(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind != KTelemetryDrops {
			out = append(out, ev)
		}
	}
	return out
}

func TestBoundedSinkZeroBudgetPassesThrough(t *testing.T) {
	var inner capture
	b := NewBoundedSink(&inner, BoundedConfig{})
	emitN(b, 50)
	if len(inner.events) != 50 || b.Kept() != 50 || b.Dropped() != 0 {
		t.Fatalf("pass-through broke: %d forwarded, kept=%d dropped=%d",
			len(inner.events), b.Kept(), b.Dropped())
	}
}

func TestBoundedSinkDropNewest(t *testing.T) {
	var inner capture
	b := NewBoundedSink(&inner, BoundedConfig{MaxEvents: 5, Policy: DropNewest})
	emitN(b, 20)
	kept := payload(inner.events)
	if len(kept) != 5 {
		t.Fatalf("forwarded %d payload events, want the first 5", len(kept))
	}
	for i, ev := range kept {
		if ev.A != float64(i) {
			t.Fatalf("kept event %d has A=%g; DropNewest must keep the head in order", i, ev.A)
		}
	}
	if b.Seen() != 20 || b.Kept() != 5 || b.Dropped() != 15 {
		t.Fatalf("accounting seen=%d kept=%d dropped=%d, want 20/5/15", b.Seen(), b.Kept(), b.Dropped())
	}
}

func TestBoundedSinkSampleOneInK(t *testing.T) {
	var inner capture
	b := NewBoundedSink(&inner, BoundedConfig{MaxEvents: 4, Policy: SampleOneInK, K: 2})
	emitN(b, 10)
	// Head 0..3 kept; overflow events 4..9 are positions 1..6 past the
	// budget, and every 2nd one (positions 2, 4, 6 = events 5, 7, 9) is
	// sampled through.
	var got []float64
	for _, ev := range payload(inner.events) {
		got = append(got, ev.A)
	}
	want := []float64{0, 1, 2, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %v, want %v", got, want)
		}
	}
	if b.Kept() != 7 || b.Dropped() != 3 {
		t.Fatalf("accounting kept=%d dropped=%d, want 7/3", b.Kept(), b.Dropped())
	}
}

func TestBoundedSinkMarksFirstDropAndFinalize(t *testing.T) {
	var inner capture
	b := NewBoundedSink(&inner, BoundedConfig{MaxEvents: 2, Policy: DropNewest, Src: "cell0"})
	emitN(b, 6)
	var marks []Event
	for _, ev := range inner.events {
		if ev.Kind == KTelemetryDrops {
			marks = append(marks, ev)
		}
	}
	if len(marks) != 1 {
		t.Fatalf("%d drop markers before Finalize, want exactly the first-drop marker", len(marks))
	}
	if marks[0].Src != "cell0" || marks[0].A != 1 || marks[0].B != 2 {
		t.Fatalf("first marker = %+v, want src cell0, dropped=1, kept=2", marks[0])
	}
	b.Finalize(sim.Time(99))
	last := inner.events[len(inner.events)-1]
	if last.Kind != KTelemetryDrops || last.At != sim.Time(99) || last.A != 4 || last.B != 2 {
		t.Fatalf("final marker = %+v, want totals dropped=4 kept=2 at t=99", last)
	}
	// Nothing dropped, nothing finalized.
	var quiet capture
	q := NewBoundedSink(&quiet, BoundedConfig{MaxEvents: 100})
	emitN(q, 3)
	q.Finalize(0)
	if len(payload(quiet.events)) != 3 || len(quiet.events) != 3 {
		t.Fatalf("clean sink emitted a spurious drop marker: %v", quiet.events)
	}
}

func TestBoundedSinkIsDeterministic(t *testing.T) {
	run := func() []Event {
		var inner capture
		b := NewBoundedSink(&inner, BoundedConfig{MaxEvents: 7, Policy: SampleOneInK, K: 3})
		emitN(b, 100)
		b.Finalize(sim.Time(100))
		return inner.events
	}
	a, c := run(), run()
	if len(a) != len(c) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestParseDropPolicyRoundTrips(t *testing.T) {
	for _, p := range []DropPolicy{DropNewest, SampleOneInK} {
		got, err := ParseDropPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseDropPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
