package flowstats

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// ev builds a flow-scoped sender event at t (seconds).
func ev(t float64, kind telemetry.Kind, flow int32, variant string, seq int64, a, b float64) telemetry.Event {
	return telemetry.Event{
		At:   sim.Time(t * 1e9),
		Comp: telemetry.CompSender,
		Kind: kind,
		Src:  variant,
		Flow: flow,
		Seq:  seq,
		A:    a,
		B:    b,
	}
}

func start(t float64, flow int32, variant string, bytes int64) telemetry.Event {
	return ev(t, telemetry.KFlowStart, flow, variant, bytes, float64(bytes), 0)
}

func done(t float64, flow int32, variant string, acked int64, rtx, timeouts float64) telemetry.Event {
	return ev(t, telemetry.KFlowStats, flow, variant, acked, rtx, timeouts)
}

func ack(t float64, flow int32, seq int64) telemetry.Event {
	return ev(t, telemetry.KAck, flow, "", seq, 0, 0)
}

func emitAll(t *FlowTable, evs []telemetry.Event) {
	for _, e := range evs {
		t.Emit(e)
	}
}

// Aggregation: lifecycle events fold into per-variant counts, FCT,
// goodput, and retransmission load, with variants reported in sorted
// order regardless of arrival order.
func TestFlowTableAggregation(t *testing.T) {
	tab := New(Config{})
	emitAll(tab, []telemetry.Event{
		start(0, 0, "rr", 1e6),
		start(0, 1, "reno", 1e6),
		ev(0.1, telemetry.KRecoveryEnter, 0, "rr", 0, 0, 0),
		done(2.0, 0, "rr", 1_000_000, 3, 1),
		done(4.0, 1, "reno", 500_000, 7, 2),
		start(5.0, 2, "rr", 1e6), // still live at the end
	})
	tab.Finalize()

	s := tab.Summary()
	if s.Started != 3 || s.Completed != 2 || s.Live != 1 {
		t.Fatalf("counts: started=%d completed=%d live=%d", s.Started, s.Completed, s.Live)
	}
	if len(s.Variants) != 2 || s.Variants[0].Variant != "reno" || s.Variants[1].Variant != "rr" {
		t.Fatalf("variants not sorted: %+v", s.Variants)
	}
	reno, rr := &s.Variants[0], &s.Variants[1]

	if rr.Started != 2 || rr.Completed != 1 || rr.Episodes != 1 || rr.Timeouts != 1 {
		t.Fatalf("rr agg: %+v", rr)
	}
	if rr.BytesAcked != 1_000_000 {
		t.Fatalf("rr bytesAcked = %d", rr.BytesAcked)
	}
	// FCT and goodput means are exact (histogram sums, not buckets):
	// flow 0 completed in 2s moving 1e6 bytes = 4e6 bit/s.
	if got := rr.FCT.Mean(); got != 2.0 {
		t.Fatalf("rr FCT mean = %v, want 2", got)
	}
	if got := rr.Goodput.Mean(); got != 4e6 {
		t.Fatalf("rr goodput mean = %v, want 4e6", got)
	}
	if got := rr.Rtx.Mean(); got != 3 {
		t.Fatalf("rr rtx mean = %v, want 3", got)
	}
	if got := reno.FCT.Mean(); got != 4.0 {
		t.Fatalf("reno FCT mean = %v, want 4", got)
	}
	if got := reno.Goodput.Mean(); got != 1e6 {
		t.Fatalf("reno goodput mean = %v, want 1e6", got)
	}

	// Quantiles are log-bucketed approximations of the single sample.
	r := s.Report()
	if p50 := r.Variants[1].FCTP50S; math.Abs(p50-2.0) > 0.4 {
		t.Fatalf("rr fct p50 = %v, want ~2", p50)
	}

	// Robustness: duplicate starts and completions of unknown flows are
	// ignored rather than corrupting counts.
	tab.Emit(start(6.0, 2, "rr", 1e6))
	tab.Emit(done(6.0, 99, "rr", 1, 0, 0))
	s = tab.Summary()
	if s.Started != 3 || s.Completed != 2 {
		t.Fatalf("after junk events: started=%d completed=%d", s.Started, s.Completed)
	}
}

// The seeded reservoir must sample the same flows for the same seed and
// stream, cap at K, and retain event detail for sampled flows only.
func TestFlowTableReservoirDeterministic(t *testing.T) {
	const n, k = 100, 4
	stream := func() []telemetry.Event {
		var evs []telemetry.Event
		for i := 0; i < n; i++ {
			variant := "rr"
			if i%2 == 1 {
				variant = "reno"
			}
			at := float64(i) * 0.01
			evs = append(evs,
				start(at, int32(i), variant, 1000),
				ack(at+0.001, int32(i), 500),
				done(at+0.005, int32(i), variant, 1000, 0, 0),
			)
		}
		return evs
	}

	ids := func(seed int64) []int32 {
		tab := New(Config{Exemplars: k, Seed: seed})
		emitAll(tab, stream())
		tab.Finalize()
		exs := tab.Exemplars()
		if len(exs) > k {
			t.Fatalf("seed %d: %d exemplars, cap %d", seed, len(exs), k)
		}
		out := make([]int32, len(exs))
		for i, ex := range exs {
			if ex.Ring == nil || len(ex.Ring.Events()) == 0 {
				t.Fatalf("seed %d: exemplar %d has no retained events", seed, ex.Flow)
			}
			// The ring opens with the flow's own start event.
			if first := ex.Ring.Events()[0]; first.Kind != telemetry.KFlowStart || first.Flow != ex.Flow {
				t.Fatalf("seed %d: exemplar %d ring starts with %v/flow %d",
					seed, ex.Flow, first.Kind, first.Flow)
			}
			out[i] = ex.Flow
		}
		return out
	}

	a, b := ids(42), ids(42)
	if len(a) != k {
		t.Fatalf("reservoir not full: %d of %d", len(a), k)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := ids(43)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatalf("seeds 42 and 43 sampled identical flows %v — reservoir ignores seed", a)
	}

	// Exemplars: 0 keeps aggregates only and retains nothing.
	tab := New(Config{})
	emitAll(tab, stream())
	if got := tab.Exemplars(); len(got) != 0 {
		t.Fatalf("K=0 retained %d exemplars", len(got))
	}
}

// Fairness windows: equal per-window goodput scores 1, a 100/300 split
// scores Jain = 0.8, and idle windows contribute no sample.
func TestFlowTableFairnessWindows(t *testing.T) {
	tab := New(Config{})
	emitAll(tab, []telemetry.Event{
		start(0, 0, "rr", 0),
		start(0, 1, "rr", 0),
		ack(0.5, 0, 100),
		ack(0.5, 1, 300),
		// Crossing t=1s closes the first window with shares 100/300.
		ack(1.5, 0, 200),
		ack(1.5, 1, 400),
		// Crossing t=2s closes the second with shares 100/100 -> 1.0.
		done(2.5, 0, "rr", 200, 0, 0),
		done(2.5, 1, "rr", 400, 0, 0),
	})
	tab.Finalize()

	s := tab.Summary()
	if got := s.Overall.Count(); got != 2 {
		t.Fatalf("closed %d overall windows, want 2", got)
	}
	// (100+300)^2 / (2 * (100^2+300^2)) = 0.8
	if got := s.Overall.Min(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("unequal window Jain = %v, want 0.8", got)
	}
	if got := s.Overall.Max(); got != 1.0 {
		t.Fatalf("equal window Jain = %v, want 1", got)
	}
	if s.LastFairness != 1.0 {
		t.Fatalf("last fairness = %v, want 1 (second window)", s.LastFairness)
	}
	if len(s.Variants) != 1 || s.Variants[0].Fairness.Count() != 2 {
		t.Fatalf("per-variant fairness samples: %+v", s.Variants)
	}

	// A long idle stretch is fast-forwarded, not scored window by
	// window: restarting activity at t=100 must not add samples for the
	// ~97 empty windows in between.
	emitAll(tab, []telemetry.Event{
		start(100, 2, "rr", 0),
		start(100, 3, "rr", 0),
		ack(100.5, 2, 50),
		ack(100.5, 3, 50),
		ack(101.5, 2, 60),
	})
	tab.Finalize()
	s = tab.Summary()
	if got := s.Overall.Count(); got != 3 {
		t.Fatalf("after idle gap: %d windows, want 3", got)
	}
}

// Replaying the NDJSON serialization of a stream must reproduce the
// live table byte for byte — the `rrtrace flows` contract.
func TestFromRecordsMatchesLive(t *testing.T) {
	cfg := Config{Exemplars: 2, Seed: 7}
	live := New(cfg)
	var buf bytes.Buffer
	nd := telemetry.NewNDJSONSink(&buf)
	bus := telemetry.NewBus(live, nd)

	for i := int32(0); i < 20; i++ {
		variant := "rr"
		if i%3 == 0 {
			variant = "reno"
		}
		at := float64(i) * 0.2
		bus.Publish(start(at, i, variant, 4000))
		bus.Publish(ack(at+0.1, i, 2000))
		bus.Publish(done(at+0.3, i, variant, 4000, float64(i%4), float64(i%2)))
	}
	live.Finalize()
	if err := nd.Close(); err != nil {
		t.Fatalf("flush ndjson: %v", err)
	}

	records, err := telemetry.DecodeNDJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	replay := FromRecords(records, cfg)

	if got, want := replay.Report().Render(), live.Report().Render(); got != want {
		t.Fatalf("replay diverges from live table:\n--- replay\n%s--- live\n%s", got, want)
	}
	if got, want := len(replay.Exemplars()), len(live.Exemplars()); got != want {
		t.Fatalf("replay exemplars = %d, live = %d", got, want)
	}
}

// A concatenation of per-job streams (timestamps restarting at zero
// between segments) must reproduce the job tables' merged summary —
// what makes `rrtrace flows` agree with a sweep's in-run report.
func TestFromRecordsSegmentedStream(t *testing.T) {
	segment := func(bytesA, bytesB int64) []telemetry.Event {
		return []telemetry.Event{
			start(0, 0, "rr", bytesA),
			start(0, 1, "reno", bytesB),
			ack(0.5, 0, bytesA/2),
			ack(0.5, 1, bytesB/2),
			ack(1.2, 0, bytesA), // closes the first fairness window
			done(1.5, 0, "rr", bytesA, 1, 0),
			done(1.5, 1, "reno", bytesB, 2, 1),
		}
	}
	segA, segB := segment(1000, 3000), segment(2000, 2000)

	jobSummary := func(evs []telemetry.Event) Summary {
		tab := New(Config{})
		emitAll(tab, evs)
		tab.Finalize()
		return tab.Summary()
	}
	merged := jobSummary(segA)
	merged.Merge(jobSummary(segB))

	concat := New(Config{})
	emitAll(concat, append(append([]telemetry.Event{}, segA...), segB...))
	concat.Finalize()

	if got, want := concat.Summary().Report().Render(), merged.Report().Render(); got != want {
		t.Fatalf("concatenated replay != merged job summaries:\n--- concat\n%s--- merged\n%s", got, want)
	}
}

// Summary merge keeps variants sorted and folds disjoint and shared
// variants; merging a summary into an empty one is the identity.
func TestSummaryMerge(t *testing.T) {
	mk := func(variant string, completed uint64) Summary {
		tab := New(Config{})
		for i := uint64(0); i < completed; i++ {
			tab.Emit(start(float64(i), int32(i), variant, 100))
			tab.Emit(done(float64(i)+0.5, int32(i), variant, 100, 0, 0))
		}
		tab.Finalize()
		return tab.Summary()
	}
	var s Summary
	s.Merge(mk("rr", 2))
	s.Merge(mk("cubic", 1))
	s.Merge(mk("rr", 3))
	if s.Started != 6 || s.Completed != 6 {
		t.Fatalf("merged counts: %+v", s)
	}
	if len(s.Variants) != 2 || s.Variants[0].Variant != "cubic" || s.Variants[1].Variant != "rr" {
		t.Fatalf("merged variants: %+v", s.Variants)
	}
	if s.Variants[1].Completed != 5 || s.Variants[1].FCT.Count() != 5 {
		t.Fatalf("rr merged: %+v", s.Variants[1])
	}
}

// A nil table renders as a zero report, so callers can serve /flows
// unconditionally.
func TestNilTableReport(t *testing.T) {
	var tab *FlowTable
	r := tab.Report()
	if r.Started != 0 || len(r.Variants) != 0 {
		t.Fatalf("nil table report: %+v", r)
	}
}

// The steady-state path — ACKs for a live, non-exemplar flow published
// through a bus with the table subscribed — must not allocate. This is
// the sender hot path's budget with flow analytics enabled.
func TestFlowTableHotPathAllocs(t *testing.T) {
	tab := New(Config{})
	bus := telemetry.NewBus(tab)
	bus.Publish(start(0, 0, "rr", 1e9))

	seq := int64(0)
	at := 0.001
	allocs := testing.AllocsPerRun(1000, func() {
		seq += 100
		at += 1e-6 // stays inside the first fairness window
		bus.Publish(ack(at, 0, seq))
	})
	if allocs != 0 {
		t.Fatalf("hot-path Emit allocates %v per event, want 0", allocs)
	}
}

// Ten-thousand-flow smoke: Poisson arrivals across three variants feed
// one table whose retained state stays O(K + variants) — the reservoir
// holds exactly K exemplar rings while every other flow leaves only
// aggregate histogram weight behind — and the report still carries FCT
// quantiles, goodput, and per-variant fairness. The run is repeated to
// pin byte-determinism of the rendering.
func TestTenThousandFlowPoissonSmoke(t *testing.T) {
	const flows, k = 10000, 8
	variants := []string{"rr", "reno", "sack"}

	run := func() (*FlowTable, string) {
		tab := New(Config{Exemplars: k, Seed: 99})
		rng := rand.New(rand.NewSource(1))
		at := 0.0
		live := 0
		for i := 0; i < flows; i++ {
			at += rng.ExpFloat64() * 0.01 // Poisson arrivals, mean 100 flows/s
			variant := variants[i%len(variants)]
			bytes := int64(2000 + rng.Intn(100_000))
			dur := 0.05 + rng.ExpFloat64()*0.5
			tab.Emit(start(at, int32(i), variant, bytes))
			tab.Emit(ack(at+dur/2, int32(i), bytes/2))
			tab.Emit(done(at+dur, int32(i), variant, bytes, float64(rng.Intn(5)), float64(rng.Intn(2))))
			live++
		}
		tab.Finalize()
		return tab, tab.Report().Render()
	}

	tab, render := run()
	s := tab.Summary()
	if s.Started != flows || s.Completed != flows || s.Live != 0 {
		t.Fatalf("counts: %+v", s)
	}
	if len(s.Variants) != len(variants) {
		t.Fatalf("%d variant aggregates, want %d", len(s.Variants), len(variants))
	}
	for _, v := range s.Variants {
		if v.Completed == 0 || v.FCT.Count() != v.Completed || v.Goodput.Count() != v.Completed {
			t.Fatalf("variant %s aggregates incomplete: %+v", v.Variant, v)
		}
	}
	r := s.Report()
	for _, v := range r.Variants {
		if !(v.FCTP50S > 0 && v.FCTP50S <= v.FCTP90S && v.FCTP90S <= v.FCTP99S) {
			t.Fatalf("variant %s FCT quantiles not ordered: %+v", v.Variant, v)
		}
		if v.GoodputMean <= 0 {
			t.Fatalf("variant %s goodput mean %v", v.Variant, v.GoodputMean)
		}
		if v.Fairness <= 0 || v.Fairness > 1 {
			t.Fatalf("variant %s fairness %v outside (0,1]", v.Variant, v.Fairness)
		}
	}
	if r.Fairness <= 0 || r.Fairness > 1 {
		t.Fatalf("overall fairness %v outside (0,1]", r.Fairness)
	}

	// Retention really is O(K + variants): exactly K exemplar rings,
	// each bounded by the ring cap, and nothing else holds events.
	exs := tab.Exemplars()
	if len(exs) != k {
		t.Fatalf("%d exemplars retained, want %d", len(exs), k)
	}
	retained := 0
	for _, ex := range exs {
		n := len(ex.Ring.Events())
		if n == 0 || n > DefaultExemplarRing {
			t.Fatalf("exemplar %d ring holds %d events (cap %d)", ex.Flow, n, DefaultExemplarRing)
		}
		retained += n
	}
	if max := k * DefaultExemplarRing; retained > max {
		t.Fatalf("retained %d events, reservoir bound is %d", retained, max)
	}

	// Determinism: the same stream renders byte-identically.
	if _, again := run(); again != render {
		t.Fatalf("10k-flow report not deterministic:\n--- first\n%s--- second\n%s", render, again)
	}
}

// The steady-state cost of the analytics layer: one ACK folded into a
// live, non-exemplar flow. This is the per-event price every sender
// pays with a FlowTable subscribed.
func BenchmarkFlowTableEmit(b *testing.B) {
	tab := New(Config{})
	tab.Emit(start(0, 0, "rr", 1e12))
	e := ack(0.0005, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = int64(i)
		tab.Emit(e)
	}
}

// Full lifecycle churn: flows starting and completing through the
// reservoir, the path a high-arrival-rate workload exercises.
func BenchmarkFlowTableLifecycle(b *testing.B) {
	tab := New(Config{Exemplars: 8, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int32(i % 1024)
		at := float64(i) * 1e-6
		tab.Emit(start(at, id, "rr", 1000))
		tab.Emit(done(at, id, "rr", 1000, 1, 0))
	}
}
