package flowstats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// VariantStats is one variant's row of a FlowReport: the headline
// numbers computed from its Agg, shaped for JSON (the /flows
// endpoint), text rendering, and CSV.
type VariantStats struct {
	Variant     string  `json:"variant"`
	Started     uint64  `json:"started"`
	Completed   uint64  `json:"completed"`
	FCTP50S     float64 `json:"fctP50s"`
	FCTP90S     float64 `json:"fctP90s"`
	FCTP99S     float64 `json:"fctP99s"`
	GoodputMean float64 `json:"goodputMeanBps"`
	RtxMean     float64 `json:"rtxMean"`
	Timeouts    uint64  `json:"timeouts"`
	Episodes    uint64  `json:"episodes"`
	Fairness    float64 `json:"fairnessMean"`
}

// Report is the rendered form of a Summary: per-variant FCT quantiles,
// goodput, retransmission load, and windowed Jain fairness. It is what
// /flows serves, what `rrtrace flows` prints, and what experiments
// attach to their results.
type Report struct {
	Live      uint64 `json:"live"`
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Exemplars int    `json:"exemplars"`
	// Fairness is the mean windowed Jain index across all flows;
	// LastFairness the most recently closed window (live view).
	Fairness     float64        `json:"fairnessMean"`
	LastFairness float64        `json:"lastFairness"`
	Variants     []VariantStats `json:"variants"`
}

// Report computes the headline numbers from a summary.
func (s Summary) Report() Report {
	r := Report{
		Live:         s.Live,
		Started:      s.Started,
		Completed:    s.Completed,
		Exemplars:    s.Exemplars,
		LastFairness: s.LastFairness,
	}
	if s.Overall.Count() > 0 {
		r.Fairness = s.Overall.Mean()
	}
	for i := range s.Variants {
		a := &s.Variants[i]
		vs := VariantStats{
			Variant:   a.Variant,
			Started:   a.Started,
			Completed: a.Completed,
			FCTP50S:   a.FCT.Quantile(50),
			FCTP90S:   a.FCT.Quantile(90),
			FCTP99S:   a.FCT.Quantile(99),
			RtxMean:   a.Rtx.Mean(),
			Timeouts:  a.Timeouts,
			Episodes:  a.Episodes,
		}
		vs.GoodputMean = a.Goodput.Mean()
		if a.Fairness.Count() > 0 {
			vs.Fairness = a.Fairness.Mean()
		}
		r.Variants = append(r.Variants, vs)
	}
	return r
}

// Report snapshots the table and computes its report in one step.
// A nil table yields a zero report, so the obs server can serve /flows
// unconditionally.
func (t *FlowTable) Report() Report {
	if t == nil {
		return Report{}
	}
	return t.Summary().Report()
}

// fmtSeconds renders a duration in seconds with stable precision.
func fmtSeconds(s float64) string {
	if s == 0 {
		return "-"
	}
	if s < 1 {
		return strconv.FormatFloat(s*1e3, 'f', 1, 64) + "ms"
	}
	return strconv.FormatFloat(s, 'f', 2, 64) + "s"
}

// fmtBps renders a bit rate with stable precision.
func fmtBps(bps float64) string {
	switch {
	case bps == 0:
		return "-"
	case bps >= 1e6:
		return strconv.FormatFloat(bps/1e6, 'f', 2, 64) + "Mbps"
	case bps >= 1e3:
		return strconv.FormatFloat(bps/1e3, 'f', 1, 64) + "Kbps"
	default:
		return strconv.FormatFloat(bps, 'f', 0, 64) + "bps"
	}
}

// Render formats the report as an aligned text table. The output is a
// pure function of the report values, so byte-identical summaries
// render byte-identically.
func (r Report) Render() string {
	header := []string{"variant", "flows", "fct p50", "p90", "p99",
		"goodput", "rtx/flow", "timeouts", "fairness"}
	rows := [][]string{header}
	for _, v := range r.Variants {
		rows = append(rows, []string{
			v.Variant,
			fmt.Sprintf("%d/%d", v.Completed, v.Started),
			fmtSeconds(v.FCTP50S),
			fmtSeconds(v.FCTP90S),
			fmtSeconds(v.FCTP99S),
			fmtBps(v.GoodputMean),
			strconv.FormatFloat(v.RtxMean, 'f', 2, 64),
			strconv.FormatUint(v.Timeouts, 10),
			strconv.FormatFloat(v.Fairness, 'f', 3, 64),
		})
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Flow report: %d started, %d completed, %d live",
		r.Started, r.Completed, r.Live)
	if r.Exemplars > 0 {
		fmt.Fprintf(&b, ", %d exemplars", r.Exemplars)
	}
	if r.Fairness > 0 {
		fmt.Fprintf(&b, ", fairness %s", strconv.FormatFloat(r.Fairness, 'f', 3, 64))
	}
	b.WriteByte('\n')
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteCSV writes the per-variant rows as CSV with a header line.
func (r Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "started", "completed",
		"fct_p50_s", "fct_p90_s", "fct_p99_s", "goodput_mean_bps",
		"rtx_mean", "timeouts", "episodes", "fairness_mean"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, v := range r.Variants {
		if err := cw.Write([]string{
			v.Variant,
			strconv.FormatUint(v.Started, 10),
			strconv.FormatUint(v.Completed, 10),
			f(v.FCTP50S), f(v.FCTP90S), f(v.FCTP99S),
			f(v.GoodputMean), f(v.RtxMean),
			strconv.FormatUint(v.Timeouts, 10),
			strconv.FormatUint(v.Episodes, 10),
			f(v.Fairness),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
