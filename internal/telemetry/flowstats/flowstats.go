// Package flowstats is the flow-scale analytics layer: a telemetry
// sink that turns the event bus into flow-level results at any flow
// count. Where the per-flow FlowTrace rings retain every event of every
// connection (O(events) memory, fine for paper-scale dumbbells), a
// FlowTable keeps O(1) aggregate state per live flow and folds
// completed flows into per-variant log-bucketed histograms of flow
// completion time, goodput, and retransmissions — plus a seeded
// reservoir of K "exemplar" flows that do retain full event detail, so
// a million-flow run still yields a handful of fully-inspectable
// connections.
//
// The inputs are the sender's flow lifecycle events (KFlowStart /
// KFlowStats, which carry the variant name in Src) plus the ordinary
// ACK stream for goodput tracking; everything the table needs rides
// the events themselves, so it works equally over a live bus or over
// decoded NDJSON (FromRecords).
//
// Unlike most sinks, a FlowTable is safe for concurrent use: Emit
// takes an internal mutex so the obs server's /flows endpoint can
// snapshot it mid-run, and parallel sweep jobs may share one live
// table for monitoring. The deterministic reduction path is different:
// each job owns a private table and the per-variant aggregates merge
// in job order (Summary.Merge), which is byte-identical at any worker
// count because histogram merging is exact.
package flowstats

import (
	"sort"
	"sync"

	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
	"rrtcp/internal/telemetry"
)

// DefaultWindow is the fairness-window length when Config.Window is
// zero: one simulated second of goodput per Jain-index sample.
const DefaultWindow = sim.Time(1e9)

// DefaultExemplarRing bounds each exemplar flow's retained event ring
// when Config.ExemplarRing is zero.
const DefaultExemplarRing = 512

// Config parameterizes a FlowTable.
type Config struct {
	// Exemplars is K, the reservoir size: how many flows retain full
	// event detail. Zero keeps aggregates only.
	Exemplars int
	// ExemplarRing caps each exemplar's event ring (<=0: DefaultExemplarRing).
	ExemplarRing int
	// Seed drives the reservoir's RNG; the same seed over the same
	// event stream always samples the same flows.
	Seed int64
	// Window is the Jain-fairness window in simulated time
	// (<=0: DefaultWindow).
	Window sim.Time
	// Registry, when non-nil, mirrors the table's headline numbers as
	// live gauges (flows.all.live, flows.all.completed,
	// flows.all.fairness) and per-variant log histograms
	// (flows.<variant>.fct_s, .goodput_bps, .rtx) for /metrics.
	Registry *telemetry.Registry
}

// Agg is the constant-size aggregate state of one variant. All
// sample-bearing fields are log-bucketed histograms, so the memory
// cost is independent of flow count and two Aggs merge exactly.
type Agg struct {
	Variant    string             `json:"variant"`
	Started    uint64             `json:"started"`
	Completed  uint64             `json:"completed"`
	Timeouts   uint64             `json:"timeouts"`
	Episodes   uint64             `json:"episodes"`
	BytesAcked int64              `json:"bytesAcked"`
	FCT        stats.LogHistogram `json:"fct"`      // completion time, seconds
	Goodput    stats.LogHistogram `json:"goodput"`  // per-flow goodput, bits/sec
	Rtx        stats.LogHistogram `json:"rtx"`      // retransmissions per flow
	Fairness   stats.LogHistogram `json:"fairness"` // per-window Jain index

	// Fairness-window scratch, reset every window close.
	wN     int
	wSum   float64
	wSumSq float64
}

// Merge folds o into a. Counts and histogram buckets add exactly, so
// merging is associative and order-independent in value (the repo's
// sweeps still merge in job order for byte-identical rendering).
func (a *Agg) Merge(o *Agg) {
	a.Started += o.Started
	a.Completed += o.Completed
	a.Timeouts += o.Timeouts
	a.Episodes += o.Episodes
	a.BytesAcked += o.BytesAcked
	a.FCT.Merge(&o.FCT)
	a.Goodput.Merge(&o.Goodput)
	a.Rtx.Merge(&o.Rtx)
	a.Fairness.Merge(&o.Fairness)
}

// liveFlow is the O(1) per-live-flow state.
type liveFlow struct {
	active     bool
	variant    string
	startAt    sim.Time
	acked      int64 // cumulative-ACK high-water
	windowBase int64 // acked at the current fairness-window start
	ring       *telemetry.Ring
	agg        *Agg
}

// Exemplar is one reservoir-sampled flow retaining full event detail.
type Exemplar struct {
	Flow    int32
	Variant string
	StartAt sim.Time
	Ring    *telemetry.Ring
}

// FlowTable implements telemetry.Sink. See the package comment for the
// memory and concurrency contract.
type FlowTable struct {
	mu  sync.Mutex
	cfg Config

	live      []liveFlow // dense, indexed by flow id
	liveCount int
	started   uint64
	completed uint64

	aggs map[string]*Agg

	// Reservoir sampling (Algorithm R) over flow-start order.
	rng       uint64
	seen      uint64
	exemplars []*Exemplar

	// Fairness windowing, driven by event timestamps.
	windowEnd sim.Time
	lastAt    sim.Time           // latest event timestamp seen
	fairness  float64            // last closed overall window
	overall   stats.LogHistogram // all closed overall windows

	gLive, gCompleted, gFairness telemetry.GaugeVar
	hasGauges                    bool
}

var _ telemetry.Sink = (*FlowTable)(nil)

// New returns an empty FlowTable.
func New(cfg Config) *FlowTable {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.ExemplarRing <= 0 {
		cfg.ExemplarRing = DefaultExemplarRing
	}
	t := &FlowTable{
		cfg:  cfg,
		aggs: make(map[string]*Agg),
		rng:  splitmixSeed(cfg.Seed),
	}
	if cfg.Registry != nil {
		t.gLive = cfg.Registry.GaugeVarOf("flows.all.live")
		t.gCompleted = cfg.Registry.GaugeVarOf("flows.all.completed")
		t.gFairness = cfg.Registry.GaugeVarOf("flows.all.fairness")
		t.hasGauges = true
	}
	return t
}

// splitmixSeed whitens the user seed so seeds 0,1,2... give unrelated
// streams (the same construction internal/sweep uses for job seeds).
func splitmixSeed(seed int64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the splitmix64 state.
func (t *FlowTable) next() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Emit implements telemetry.Sink. For flows not in the exemplar
// reservoir the steady-state path (ACKs, sends, window samples)
// performs no allocation; allocations happen only at flow start (table
// growth, first sight of a variant) and for exemplar rings.
func (t *FlowTable) Emit(ev telemetry.Event) {
	if ev.Flow == telemetry.NoFlow {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	switch {
	case ev.At < t.lastAt:
		// Timestamps rewound: a new stream segment. A sweep republishes
		// each job's private capture in job order, every segment starting
		// over at t=0 — score the fairness accounting at the previous
		// segment's end and re-base the window clock on the new timeline,
		// so a replay of the concatenated stream reproduces the per-job
		// tables it was merged from.
		t.rollSegment()
		t.lastAt = ev.At
	case ev.At > t.lastAt:
		t.lastAt = ev.At
	}
	if t.windowEnd != 0 && ev.At >= t.windowEnd {
		t.closeWindows(ev.At)
	}

	switch ev.Kind {
	case telemetry.KFlowStart:
		t.onStart(ev)
	case telemetry.KFlowStats:
		t.onDone(ev)
	case telemetry.KAck:
		if lf := t.flow(ev.Flow); lf != nil {
			if ev.Seq > lf.acked {
				lf.acked = ev.Seq
			}
			if lf.ring != nil {
				lf.ring.Emit(ev)
			}
		}
	case telemetry.KRecoveryEnter:
		if lf := t.flow(ev.Flow); lf != nil {
			lf.agg.Episodes++
			if lf.ring != nil {
				lf.ring.Emit(ev)
			}
		}
	default:
		if lf := t.flow(ev.Flow); lf != nil && lf.ring != nil {
			lf.ring.Emit(ev)
		}
	}
}

// flow returns the live state for id, or nil.
func (t *FlowTable) flow(id int32) *liveFlow {
	if id < 0 || int(id) >= len(t.live) {
		return nil
	}
	lf := &t.live[id]
	if !lf.active {
		return nil
	}
	return lf
}

// agg resolves (creating on first sight) the variant's aggregate.
func (t *FlowTable) agg(variant string) *Agg {
	a := t.aggs[variant]
	if a == nil {
		a = &Agg{Variant: variant}
		t.aggs[variant] = a
	}
	return a
}

func (t *FlowTable) onStart(ev telemetry.Event) {
	if int(ev.Flow) >= len(t.live) {
		grown := make([]liveFlow, ev.Flow+1)
		copy(grown, t.live)
		t.live = grown
	}
	lf := &t.live[ev.Flow]
	if lf.active {
		return // duplicate start
	}
	*lf = liveFlow{
		active:  true,
		variant: ev.Src,
		startAt: ev.At,
		agg:     t.agg(ev.Src),
	}
	lf.agg.Started++
	t.started++
	t.liveCount++
	if t.windowEnd == 0 {
		t.windowEnd = ev.At + t.cfg.Window
	}
	t.sample(lf, ev)
	if t.hasGauges {
		t.gLive.Set(float64(t.liveCount))
	}
}

// sample runs the reservoir-admission decision for a newly started
// flow (Algorithm R over flow-start order).
func (t *FlowTable) sample(lf *liveFlow, ev telemetry.Event) {
	k := uint64(t.cfg.Exemplars)
	if k == 0 {
		t.seen++
		return
	}
	var slot uint64
	if t.seen < k {
		slot = t.seen
		t.exemplars = append(t.exemplars, nil)
	} else {
		slot = t.next() % (t.seen + 1)
		if slot >= k {
			t.seen++
			return
		}
		// Evict the previous occupant: if it is still live, stop
		// recording its detail.
		if old := t.exemplars[slot]; old != nil {
			if prev := t.flow(old.Flow); prev != nil && prev.ring == old.Ring {
				prev.ring = nil
			}
		}
	}
	t.seen++
	ex := &Exemplar{
		Flow:    ev.Flow,
		Variant: ev.Src,
		StartAt: ev.At,
		Ring:    telemetry.NewRing(t.cfg.ExemplarRing),
	}
	ex.Ring.Emit(ev)
	t.exemplars[slot] = ex
	lf.ring = ex.Ring
}

func (t *FlowTable) onDone(ev telemetry.Event) {
	lf := t.flow(ev.Flow)
	if lf == nil {
		return
	}
	if lf.ring != nil {
		lf.ring.Emit(ev)
	}
	a := lf.agg
	a.Completed++
	a.Timeouts += uint64(ev.B)
	a.BytesAcked += ev.Seq
	a.Rtx.Observe(ev.A)
	fct := (ev.At - lf.startAt).Seconds()
	a.FCT.Observe(fct)
	var goodput float64
	if fct > 0 {
		goodput = float64(ev.Seq) * 8 / fct
		a.Goodput.Observe(goodput)
	} else {
		a.Goodput.Observe(0)
	}
	t.completed++
	t.liveCount--
	*lf = liveFlow{}
	if t.hasGauges {
		t.gLive.Set(float64(t.liveCount))
		t.gCompleted.Set(float64(t.completed))
		r := t.cfg.Registry
		r.ObserveLog("flows."+a.Variant+".fct_s", fct)
		r.ObserveLog("flows."+a.Variant+".goodput_bps", goodput)
		r.ObserveLog("flows."+a.Variant+".rtx", ev.A)
	}
}

// closeWindows folds every fairness window that ended at or before now.
// Windows in which no flow moved bytes produce no sample.
func (t *FlowTable) closeWindows(now sim.Time) {
	for t.windowEnd != 0 && now >= t.windowEnd {
		if t.liveCount == 0 {
			// Fast-forward over an idle gap in one step.
			gap := now - t.windowEnd
			t.windowEnd += (gap/t.cfg.Window + 1) * t.cfg.Window
			return
		}
		var n int
		var sum, sumSq float64
		for i := range t.live {
			lf := &t.live[i]
			if !lf.active || lf.startAt >= t.windowEnd {
				continue
			}
			x := float64(lf.acked - lf.windowBase)
			n++
			sum += x
			sumSq += x * x
			lf.windowBase = lf.acked
			if a := lf.agg; a != nil {
				a.wN++
				a.wSum += x
				a.wSumSq += x * x
			}
		}
		if sum > 0 {
			t.fairness = jain(n, sum, sumSq)
			t.overall.Observe(t.fairness)
			if t.hasGauges {
				t.gFairness.Set(t.fairness)
			}
		}
		for _, a := range t.aggs {
			if a.wSum > 0 {
				a.Fairness.Observe(jain(a.wN, a.wSum, a.wSumSq))
			}
			a.wN, a.wSum, a.wSumSq = 0, 0, 0
		}
		t.windowEnd += t.cfg.Window
	}
}

// rollSegment ends the previous stream segment: pending fairness
// windows close at the last time seen, the window clock re-bases on the
// next event, and slots of flows whose stream ended mid-transfer are
// released for the new timeline. Those flows can never complete, so
// they stay counted live — matching the sum of the per-job tables a
// sweep's merged summary is built from.
func (t *FlowTable) rollSegment() {
	if t.windowEnd != 0 {
		t.closeWindows(t.lastAt)
	}
	t.windowEnd = 0
	for i := range t.live {
		if t.live[i].active {
			t.live[i] = liveFlow{}
		}
	}
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over n shares.
func jain(n int, sum, sumSq float64) float64 {
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Flush closes any fairness window still open at now — call it when
// the simulation ends so the final partial activity is scored.
func (t *FlowTable) Flush(now sim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.windowEnd != 0 && now >= t.windowEnd {
		t.closeWindows(now)
	}
}

// Finalize flushes fairness windows up to the latest event timestamp
// the table has seen — the end-of-run form of Flush for callers that
// do not track simulated time themselves.
func (t *FlowTable) Finalize() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.windowEnd != 0 && t.lastAt >= t.windowEnd {
		t.closeWindows(t.lastAt)
	}
}

// Exemplars returns the reservoir-sampled flows, ordered by slot. The
// rings are live views; callers inspecting them after the simulation
// ended may read them directly.
func (t *FlowTable) Exemplars() []*Exemplar {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Exemplar, 0, len(t.exemplars))
	for _, ex := range t.exemplars {
		if ex != nil {
			out = append(out, ex)
		}
	}
	return out
}

// Summary is the JSON-serializable, mergeable snapshot of a FlowTable:
// what sweep jobs return and what merged experiment results carry. It
// round-trips through encoding/json (the checkpoint journal path)
// without losing histogram buckets.
type Summary struct {
	Live      uint64 `json:"live"`
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Exemplars int    `json:"exemplars"`
	// LastFairness is the most recently closed overall window's Jain
	// index; Overall accumulates every closed window.
	LastFairness float64            `json:"lastFairness"`
	Overall      stats.LogHistogram `json:"overallFairness"`
	// Variants holds the per-variant aggregates, sorted by name.
	Variants []Agg `json:"variants"`
}

// Summary snapshots the table. Safe to call while publishers emit.
func (t *FlowTable) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{
		Live:         uint64(t.liveCount),
		Started:      t.started,
		Completed:    t.completed,
		LastFairness: t.fairness,
		Overall:      t.overall,
	}
	for _, ex := range t.exemplars {
		if ex != nil {
			s.Exemplars++
		}
	}
	names := make([]string, 0, len(t.aggs))
	for name := range t.aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Variants = append(s.Variants, *t.aggs[name])
	}
	return s
}

// Merge folds o into s, keeping Variants sorted. Merging job summaries
// in job order yields byte-identical reports at any worker count.
func (s *Summary) Merge(o Summary) {
	s.Live += o.Live
	s.Started += o.Started
	s.Completed += o.Completed
	s.Exemplars += o.Exemplars
	if o.Overall.Count() > 0 {
		s.LastFairness = o.LastFairness
	}
	s.Overall.Merge(&o.Overall)
	for i := range o.Variants {
		ov := &o.Variants[i]
		idx := sort.Search(len(s.Variants), func(j int) bool {
			return s.Variants[j].Variant >= ov.Variant
		})
		if idx < len(s.Variants) && s.Variants[idx].Variant == ov.Variant {
			s.Variants[idx].Merge(ov)
			continue
		}
		s.Variants = append(s.Variants, Agg{})
		copy(s.Variants[idx+1:], s.Variants[idx:])
		s.Variants[idx] = *ov
	}
}

// FromRecords replays decoded NDJSON records through a fresh table —
// how `rrtrace flows` reconstructs the same numbers the live /flows
// endpoint serves.
func FromRecords(records []telemetry.Record, cfg Config) *FlowTable {
	t := New(cfg)
	for i := range records {
		if ev, ok := records[i].Event(); ok {
			t.Emit(ev)
		}
	}
	t.Finalize()
	return t
}
