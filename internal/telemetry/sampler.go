package telemetry

import (
	"io"
	"strconv"

	"rrtcp/internal/sim"
)

// GaugeSource is anything that can report named instantaneous gauges —
// the TCP sender (cwnd, ssthresh, srtt, rto, flight, actnum) and the
// queue disciplines (occupancy) implement it. The emit callback is
// invoked once per gauge per sample tick.
type GaugeSource interface {
	SampleGauges(emit func(gauge string, v float64))
}

// Sampler publishes periodic KSample events for a set of gauge sources
// on a fixed sim-time interval. The samples ride the same bus as the
// point events, so everything downstream of the bus — NDJSON logs, the
// ring-republish pattern that keeps parallel fig5 runs byte-identical,
// the SeriesSink — handles series without special cases.
//
// A nil *Sampler is a valid no-op: NewSampler returns nil when the bus
// is disabled, so callers attach unconditionally and pay nothing when
// telemetry is off.
type Sampler struct {
	sched *sim.Scheduler
	bus   *Bus
	every sim.Time
	timer *sim.Timer

	flows []samplerFlow
	insts []samplerInst
}

type samplerFlow struct {
	flow int32
	src  GaugeSource
}

type samplerInst struct {
	comp  Component
	label string
	src   GaugeSource
}

// NewSampler returns a sampler ticking every `every` of sim time, or
// nil when the bus is disabled or the interval is not positive.
func NewSampler(sched *sim.Scheduler, bus *Bus, every sim.Time) *Sampler {
	if sched == nil || !bus.Enabled() || every <= 0 {
		return nil
	}
	return &Sampler{sched: sched, bus: bus, every: every}
}

// AddFlow registers a connection-scoped source; its gauges are
// published with the given flow id and the gauge name as Src.
func (s *Sampler) AddFlow(flow int32, src GaugeSource) {
	if s == nil || src == nil {
		return
	}
	s.flows = append(s.flows, samplerFlow{flow: flow, src: src})
}

// AddInstance registers an instance-scoped source (a queue); gauges are
// published with NoFlow and Src = "<label>.<gauge>".
func (s *Sampler) AddInstance(comp Component, label string, src GaugeSource) {
	if s == nil || src == nil {
		return
	}
	s.insts = append(s.insts, samplerInst{comp: comp, label: label, src: src})
}

// Start schedules the first tick one interval from now. Ticking stops
// once every registered flow source that exposes Done() reports done,
// so the sampler never drags a finished run to the horizon.
func (s *Sampler) Start() {
	if s == nil || len(s.flows)+len(s.insts) == 0 {
		return
	}
	s.schedule()
}

func (s *Sampler) schedule() {
	if s.timer == nil {
		s.timer = s.sched.NewTimer(s.tick)
	}
	s.timer.Reset(s.every)
}

func (s *Sampler) tick() {
	now := s.sched.Now()
	for _, f := range s.flows {
		f.src.SampleGauges(func(gauge string, v float64) {
			s.bus.Publish(Event{At: now, Comp: CompSender, Kind: KSample, Src: gauge, Flow: f.flow, A: v})
		})
	}
	for _, in := range s.insts {
		in.src.SampleGauges(func(gauge string, v float64) {
			s.bus.Publish(Event{At: now, Comp: in.comp, Kind: KSample, Src: in.label + "." + gauge, Flow: NoFlow, A: v})
		})
	}
	if s.done() {
		return
	}
	s.schedule()
}

// done reports whether every flow source that can report completion has
// completed. Instance sources (queues) never keep a sampler alive on
// their own.
func (s *Sampler) done() bool {
	if len(s.flows) == 0 {
		return true
	}
	for _, f := range s.flows {
		d, ok := f.src.(interface{ Done() bool })
		if !ok || !d.Done() {
			return false
		}
	}
	return true
}

// Series is one sampled gauge's time series within one stream segment.
type Series struct {
	Comp Component
	// Src is the gauge label: plain ("cwnd") for flow gauges,
	// instance-prefixed ("fwd.qlen") for instance gauges.
	Src  string
	Flow int32
	Seg  int
	T    []float64 // sample times, seconds
	V    []float64 // sampled values
}

// SeriesSink collects KSample events into per-gauge series. Like
// SpanSink it detects sim-time regression and rolls to a new segment,
// so multi-run republished streams produce one series set per run.
// A nil *SeriesSink is a valid no-op.
type SeriesSink struct {
	// Downsample, when positive, keeps at most one point per series
	// per that much sim time (the first one); extra samples are
	// dropped. Zero keeps everything.
	Downsample sim.Time

	series []*Series
	idx    map[seriesKey]*Series
	last   sim.Time
	any    bool
	seg    int
}

type seriesKey struct {
	comp Component
	src  string
	flow int32
	seg  int
}

// NewSeriesSink returns an empty series collector.
func NewSeriesSink() *SeriesSink {
	return &SeriesSink{idx: make(map[seriesKey]*Series)}
}

// Emit implements Sink; only KSample events are retained.
func (s *SeriesSink) Emit(ev Event) {
	if s == nil {
		return
	}
	if ev.Comp == CompSweep {
		return
	}
	if s.any && ev.At < s.last {
		s.seg++
	}
	s.any = true
	s.last = ev.At
	if ev.Kind != KSample {
		return
	}
	key := seriesKey{comp: ev.Comp, src: ev.Src, flow: ev.Flow, seg: s.seg}
	sr := s.idx[key]
	if sr == nil {
		sr = &Series{Comp: ev.Comp, Src: ev.Src, Flow: ev.Flow, Seg: s.seg}
		s.idx[key] = sr
		s.series = append(s.series, sr)
	}
	if s.Downsample > 0 && len(sr.T) > 0 {
		if ev.At.Seconds()-sr.T[len(sr.T)-1] < s.Downsample.Seconds() {
			return
		}
	}
	sr.T = append(sr.T, ev.At.Seconds())
	sr.V = append(sr.V, ev.A)
}

// Series returns the collected series in first-sample order.
func (s *SeriesSink) Series() []*Series {
	if s == nil {
		return nil
	}
	return s.series
}

// AssembleSeries runs decoded NDJSON records through a SeriesSink —
// the offline (rrtrace) path to the same collection the live sink
// performs.
func AssembleSeries(records []Record) []*Series {
	sink := NewSeriesSink()
	for _, rec := range records {
		if ev, ok := rec.Event(); ok {
			sink.Emit(ev)
		}
	}
	return sink.Series()
}

// WriteSeriesCSV writes series in long form — one row per sample —
// with a fixed header, deterministic for identical input:
//
//	seg,comp,src,flow,t,value
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	if _, err := io.WriteString(w, "seg,comp,src,flow,t,value\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for _, sr := range series {
		flow := ""
		if sr.Flow != NoFlow {
			flow = strconv.FormatInt(int64(sr.Flow), 10)
		}
		for i := range sr.T {
			buf = buf[:0]
			buf = strconv.AppendInt(buf, int64(sr.Seg), 10)
			buf = append(buf, ',')
			buf = append(buf, sr.Comp.String()...)
			buf = append(buf, ',')
			buf = append(buf, sr.Src...)
			buf = append(buf, ',')
			buf = append(buf, flow...)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, sr.T[i], 'f', 9, 64)
			buf = append(buf, ',')
			buf = appendJSONFloat(buf, sr.V[i])
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
