package sweep

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the sweep engine's crash-safety layer: a checkpoint
// journal of completed job results. The engine appends one NDJSON
// record per finished job and, on resume, pre-fills the results slice
// from the journal so only the jobs that never completed re-execute.
// Because results merge in job-index order regardless of which run
// computed them, a resumed sweep's output is byte-identical to an
// uninterrupted one — the determinism contract survives a kill -9.
//
// Journals live in a content-addressed directory: the sweep identity
// (experiment name, master seed, and every job's name and resolved
// seed) hashes to a key, and the journal sits under
// <dir>/sweep-<name>-<key>/. A resumed run that changed anything about
// the job list lands in a different directory and starts fresh instead
// of merging records from a different sweep.

// journalRecord is one NDJSON line: a completed job keyed by
// (index, name, seed) with its result as raw JSON.
type journalRecord struct {
	Job    int             `json:"job"`
	Name   string          `json:"name,omitempty"`
	Seed   int64           `json:"seed"`
	Result json.RawMessage `json:"result"`
}

// journalMeta is the human-readable sidecar written next to the
// journal, describing the sweep the records belong to.
type journalMeta struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Jobs       int    `json:"jobs"`
	Key        string `json:"key"`
}

// SweepKey returns the content hash identifying a sweep for
// checkpointing: a SHA-256 over the sweep name, master seed, job
// count, and every job's name and resolved seed, truncated to 16 hex
// digits. Jobs with Seed == 0 hash their derived seed, so the key is
// independent of whether derivation already happened.
func SweepKey(name string, seed int64, jobs []Job) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n%d\n", name, seed, len(jobs))
	for i, j := range jobs {
		s := j.Seed
		if s == 0 {
			s = DeriveSeed(seed, i)
		}
		fmt.Fprintf(h, "%d %q %d\n", i, j.Name, s)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Journal is a sweep checkpoint: an append-only NDJSON log of
// completed job results under a content-addressed directory. Open one
// with OpenJournal, hand it to Run via Config.Checkpoint, and Close it
// after the sweep. All methods are nil-safe, and the engine only
// touches the journal from its coordinating goroutine.
type Journal struct {
	dir    string
	path   string
	key    string
	f      *os.File
	w      *bufio.Writer
	decode func([]byte) (any, error)
	// restored maps job index to its decoded result from a previous
	// run's records.
	restored map[int]any
	seeds    map[int]int64 // resolved seed per index, for key validation
	skipped  int           // malformed or mismatched records dropped on load
}

// OpenJournal opens (resume == true) or creates afresh (resume ==
// false) the checkpoint journal for the sweep identified by (cfg.Name,
// cfg.Seed, jobs) under dir. decode reconstructs one job's concrete
// result value from its stored JSON — it must invert json.Marshal of
// whatever Job.Run returns, or resumed results will not satisfy the
// experiment's Reduce.
//
// On resume, records from a previous run are loaded leniently: a
// truncated final line (the usual scar of a killed process) or a
// record whose seed no longer matches is skipped, not fatal, and the
// corresponding job simply re-executes.
func OpenJournal(dir string, cfg Config, jobs []Job, resume bool, decode func([]byte) (any, error)) (*Journal, error) {
	if decode == nil {
		return nil, fmt.Errorf("sweep: journal needs a result decoder")
	}
	key := SweepKey(cfg.Name, cfg.Seed, jobs)
	name := cfg.Name
	if name == "" {
		name = "sweep"
	}
	jdir := filepath.Join(dir, fmt.Sprintf("sweep-%s-%s", name, key))
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: journal dir: %w", err)
	}
	j := &Journal{
		dir:      jdir,
		path:     filepath.Join(jdir, "journal.ndjson"),
		key:      key,
		decode:   decode,
		restored: map[int]any{},
		seeds:    make(map[int]int64, len(jobs)),
	}
	for i, job := range jobs {
		s := job.Seed
		if s == 0 {
			s = DeriveSeed(cfg.Seed, i)
		}
		j.seeds[i] = s
	}
	if resume {
		if err := j.load(len(jobs)); err != nil {
			return nil, err
		}
	}
	meta, err := json.MarshalIndent(journalMeta{
		Experiment: cfg.Name, Seed: cfg.Seed, Jobs: len(jobs), Key: key,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: journal meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(jdir, "meta.json"), append(meta, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("sweep: journal meta: %w", err)
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(j.path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64<<10)
	return j, nil
}

// load reads a previous run's records. Malformed lines (a process
// killed mid-write leaves at most one) and records that no longer
// match the job list are counted in skipped and dropped.
func (j *Journal) load(n int) error {
	data, err := os.ReadFile(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // nothing to resume; valid first run with -resume
		}
		return fmt.Errorf("sweep: read journal: %w", err)
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			j.skipped++
			continue
		}
		if rec.Job < 0 || rec.Job >= n || j.seeds[rec.Job] != rec.Seed {
			j.skipped++
			continue
		}
		res, err := j.decode(rec.Result)
		if err != nil {
			j.skipped++
			continue
		}
		j.restored[rec.Job] = res
	}
	return nil
}

// Dir returns the content-addressed directory the journal lives in.
func (j *Journal) Dir() string {
	if j == nil {
		return ""
	}
	return j.dir
}

// Key returns the sweep's content hash.
func (j *Journal) Key() string {
	if j == nil {
		return ""
	}
	return j.key
}

// Restored returns the decoded result for a job completed by a
// previous run, if the journal holds one.
func (j *Journal) Restored(index int) (any, bool) {
	if j == nil {
		return nil, false
	}
	res, ok := j.restored[index]
	return res, ok
}

// RestoredCount reports how many jobs a resume will skip.
func (j *Journal) RestoredCount() int {
	if j == nil {
		return 0
	}
	return len(j.restored)
}

// Skipped reports how many records were dropped on load (truncated
// tail, foreign or stale entries).
func (j *Journal) Skipped() int {
	if j == nil {
		return 0
	}
	return j.skipped
}

// Append journals one completed job. The record is flushed to the OS
// immediately so a killed process loses at most the line being
// written — which load skips on the next resume. Results restored from
// a previous run are not re-journaled.
func (j *Journal) Append(index int, name string, seed int64, result any) error {
	if j == nil {
		return nil
	}
	if _, ok := j.restored[index]; ok {
		return nil
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("sweep: journal job %d: %w", index, err)
	}
	line, err := json.Marshal(journalRecord{Job: index, Name: name, Seed: seed, Result: raw})
	if err != nil {
		return fmt.Errorf("sweep: journal job %d: %w", index, err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: journal job %d: %w", index, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sweep: journal flush: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file. Safe on nil and after a
// prior Close.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
