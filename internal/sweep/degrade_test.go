package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
)

// budgetErr is a minimal Degraded-marked error, standing in for
// guard.OverloadError / invariant.StallError without the import.
type budgetErr struct{ resource string }

func (e *budgetErr) Error() string  { return fmt.Sprintf("%s budget exceeded", e.resource) }
func (e *budgetErr) Degraded() bool { return true }

func TestIsDegradedWalksWrapChains(t *testing.T) {
	base := &budgetErr{resource: "events"}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain failure"), false},
		{base, true},
		{fmt.Errorf("cell 3: %w", base), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", base)), true},
	}
	for _, c := range cases {
		if got := IsDegraded(c.err); got != c.want {
			t.Fatalf("IsDegraded(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestSweepConvertsDegradedJobsToResults(t *testing.T) {
	var events []telemetry.Event
	bus := telemetry.NewBus(sinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	attempts := 0
	jobs := []Job{
		spinJob(10),
		{Name: "blown", Run: func(seed int64) (any, error) {
			attempts++
			return nil, fmt.Errorf("cell wrap: %w", &budgetErr{resource: "events"})
		}},
		spinJob(20),
	}
	results, err := Run(Config{
		Name: "t", Seed: 3, Workers: 1, Telemetry: bus,
		Retry: RetryPolicy{MaxAttempts: 4, Sleep: func(d time.Duration) {}},
	}, jobs)
	if err != nil {
		t.Fatalf("a degraded job must not fail the sweep: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("degraded job ran %d times; budget trips are deterministic and must not retry", attempts)
	}
	deg, ok := results[1].(Degraded)
	if !ok {
		t.Fatalf("results[1] = %T, want Degraded", results[1])
	}
	if deg.Job != "blown" || deg.Index != 1 || !IsDegraded(deg.Err) {
		t.Fatalf("Degraded = %+v", deg)
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("healthy jobs around the degraded one lost their results")
	}
	var seen int
	for _, ev := range events {
		if ev.Kind == telemetry.KSweepDegraded {
			seen++
			if ev.Src != "blown" || ev.Seq != 1 {
				t.Fatalf("degrade event = %+v, want src blown seq 1", ev)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("%d sweep-degraded events published, want 1", seen)
	}
}

func TestDegradedJobsAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		spinJob(10),
		{Name: "blown", Run: func(seed int64) (any, error) {
			return nil, &budgetErr{resource: "sim-time"}
		}},
	}
	cfg := Config{Name: "t", Seed: 5, Workers: 1}
	decode := func(data []byte) (any, error) {
		var v int64
		_, err := fmt.Sscan(string(data), &v)
		return v, err
	}
	journal, err := OpenJournal(dir, cfg, jobs, false, decode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = journal
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	journal.Close()

	// Resume: the healthy job restores, the degraded one must re-run
	// (and deterministically re-degrade).
	reran := false
	jobs[1].Run = func(seed int64) (any, error) {
		reran = true
		return nil, &budgetErr{resource: "sim-time"}
	}
	journal, err = OpenJournal(dir, cfg, jobs, true, decode)
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	if journal.RestoredCount() != 1 {
		t.Fatalf("restored %d jobs, want only the healthy one", journal.RestoredCount())
	}
	cfg.Checkpoint = journal
	results, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reran {
		t.Fatal("degraded job was restored from the journal instead of re-running")
	}
	if _, ok := results[1].(Degraded); !ok {
		t.Fatalf("resumed results[1] = %T, want Degraded", results[1])
	}
}

func TestPartitionDegraded(t *testing.T) {
	d := Degraded{Job: "x", Index: 1}
	clean, degraded := PartitionDegraded([]any{int64(1), d, int64(2)})
	if len(clean) != 3 || clean[0] != int64(1) || clean[1] != nil || clean[2] != int64(2) {
		t.Fatalf("clean = %v, want positions preserved with nil at the degraded index", clean)
	}
	if len(degraded) != 1 || degraded[0].Job != "x" {
		t.Fatalf("degraded = %+v", degraded)
	}
}

func TestDegradedString(t *testing.T) {
	d := Degraded{Job: "cell3", Index: 3, Seed: 42, Err: &budgetErr{resource: "events"}}
	s := d.String()
	if !strings.Contains(s, "cell3") || !strings.Contains(s, "events budget exceeded") {
		t.Fatalf("String() = %q", s)
	}
}
