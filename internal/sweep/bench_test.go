package sweep

import (
	"fmt"
	"testing"
)

// benchmarkEngine measures the engine on CPU-bound synthetic jobs. On a
// multi-core machine the parallel variants should approach linear
// speedup; on a single core they degenerate to sequential plus a small
// coordination cost.
func benchmarkEngine(b *testing.B, workers int) {
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = spinJob(20000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Name: "bench", Seed: 1, Workers: workers}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { benchmarkEngine(b, workers) })
	}
}
