package sweep

import (
	"errors"
	"fmt"
)

// Graceful degradation: a job that trips a resource budget
// (internal/guard's *OverloadError, or anything else carrying the
// structural Degraded marker) is neither a deterministic simulation
// failure nor a transient environmental one — it is a *reportable
// outcome*. Re-running it reproduces the same trip (the deterministic
// budgets are functions of the seed), so retry is waste; failing the
// whole sweep over it defeats the point of budgets, which is to let a
// scale experiment survive its pathological cells. The engine therefore
// converts such jobs into Degraded results: the sweep completes, Reduce
// sees every index, and the report says which cells degraded and why.

// degrader is the structural marker for budget-tripped errors,
// discovered on the Unwrap chain exactly like the transienter taxonomy
// in retry.go.
type degrader interface{ Degraded() bool }

// IsDegraded reports whether err carries the Degraded marker anywhere
// in its Unwrap chain — a resource-budget trip that should become a
// Degraded result rather than a sweep failure. Degraded errors are
// never retried, even if something in the chain also claims to be
// transient: the budget trip is deterministic in the seed.
func IsDegraded(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if d, ok := e.(degrader); ok {
			return d.Degraded()
		}
	}
	return false
}

// Degraded is the result slot of a job whose error carried the
// Degraded marker: the sweep records it in results[index] (in place of
// the job's normal result), publishes a KSweepDegraded event, and does
// NOT count the job as failed. A Reduce that may see budgets must
// handle this type; PartitionDegraded is the usual first step.
//
// Degraded results are not checkpointed: on resume the job re-runs and
// — the deterministic budgets being functions of the seed — degrades
// identically, so the resumed output stays byte-identical anyway.
type Degraded struct {
	// Job names the degraded job; Index is its position in the job
	// list; Seed is the seed it ran under.
	Job   string `json:"job"`
	Index int    `json:"index"`
	Seed  int64  `json:"seed"`
	// Err is the error carrying the Degraded marker (typically wrapping
	// a *guard.OverloadError); errors.As digs the typed cause out.
	Err error `json:"-"`
}

// String summarizes the degradation.
func (d Degraded) String() string {
	return fmt.Sprintf("job %d (%s) degraded: %v", d.Index, d.Job, d.Err)
}

// PartitionDegraded splits a sweep's results into the clean results
// (with nil at degraded or failed indices, preserving positions) and
// the degraded entries in index order.
func PartitionDegraded(results []any) (clean []any, degraded []Degraded) {
	clean = make([]any, len(results))
	for i, r := range results {
		if d, ok := r.(Degraded); ok {
			degraded = append(degraded, d)
			continue
		}
		clean[i] = r
	}
	return clean, degraded
}
