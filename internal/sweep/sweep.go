// Package sweep is the parallel execution engine for parameter sweeps:
// it fans independent deterministic simulation runs out across a pool
// of worker goroutines while keeping the merged results bit-identical
// to sequential execution.
//
// Every evaluation in the paper is a sweep of independent runs — the
// Figure 7 loss-rate grid, the Table 5 scenario matrix, the chaos rig's
// seeded fault schedules — and each run owns its entire world: its own
// sim.Scheduler, its own telemetry bus, its own invariant checker.
// Nothing is shared between jobs, so running them concurrently cannot
// change what any single job computes. The engine's one obligation is
// to keep the *aggregate* deterministic too, which it does by merging
// results in job-index order regardless of completion order and by
// reporting the lowest-indexed error when several jobs fail.
//
// Determinism contract:
//
//   - A job must be self-contained: it builds its own scheduler (from
//     the seed the engine hands it) and must not touch global mutable
//     state or any structure shared with another job.
//   - Run returns results indexed exactly like the jobs slice; output
//     derived from that slice is byte-identical at any worker count,
//     including 1.
//   - Seeds are fixed before execution starts: a job's seed is its Seed
//     field, or DeriveSeed(cfg.Seed, index) when the field is zero —
//     never anything drawn during execution.
//
// Progress events (telemetry.KSweepStart/KSweepJob/KSweepDone) and the
// engine's performance telemetry (KSweepJobTime per job, KSweepWorker
// per worker, wall seconds on KSweepDone) are published on the
// coordinating goroutine only, in completion order; they exist for
// interactive feedback and engine profiling and are the one output of a
// sweep that is *not* covered by the determinism contract.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rrtcp/internal/telemetry"
)

// Job is one independent unit of a sweep: a self-contained simulation
// run identified by its position in the jobs slice.
type Job struct {
	// Name labels the job in progress events and error messages.
	Name string
	// Seed drives the job's scheduler. Zero means "derive": the engine
	// fills it with DeriveSeed(Config.Seed, index) before execution.
	Seed int64
	// Run executes the job with the resolved seed and returns its
	// result. It runs on a worker goroutine and must not share mutable
	// state with any other job.
	Run func(seed int64) (any, error)
}

// Config parameterizes one Run call.
type Config struct {
	// Name labels the sweep in progress events and error messages.
	Name string
	// Seed is the sweep master seed, used to derive per-job seeds for
	// jobs that do not pin their own.
	Seed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. One worker
	// executes the jobs sequentially on the calling goroutine.
	Workers int
	// Telemetry, when non-nil, receives sweep progress events. They are
	// published from the coordinating goroutine only, so the bus must
	// not be shared with a concurrently running simulation.
	Telemetry *telemetry.Bus
}

// DeriveSeed returns the deterministic seed for the job at index under
// the sweep master seed, via a splitmix64-style derivation: the index
// steps a Weyl sequence from the master seed and the splitmix64
// finalizer scrambles it. Nearby (seed, index) pairs therefore yield
// statistically independent streams, and the mapping is stable across
// runs, platforms, and worker counts.
func DeriveSeed(seed int64, index int) int64 {
	z := uint64(seed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Run executes the jobs across the configured worker pool and returns
// their results in job-index order. All jobs run even if some fail; the
// returned error is the one from the lowest-indexed failing job, so the
// error surface is as deterministic as the results.
func Run(cfg Config, jobs []Job) ([]any, error) {
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	seeds := make([]int64, n)
	for i, j := range jobs {
		seeds[i] = j.Seed
		if seeds[i] == 0 {
			seeds[i] = DeriveSeed(cfg.Seed, i)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepStart,
		Src: cfg.Name, Flow: telemetry.NoFlow,
		A: float64(n), B: float64(workers),
	})

	results := make([]any, n)
	errs := make([]error, n)

	// Wall-clock performance telemetry: per-job latency and per-worker
	// busy time. Like the progress kinds, these are measurements of the
	// engine itself — inherently nondeterministic — and ride the same
	// coordinator-only progress bus, exempt from the determinism
	// contract. Timing is gated on an enabled bus so a silent sweep
	// pays nothing.
	timed := cfg.Telemetry.Enabled()
	var (
		jobWall    []float64 // seconds, indexed by job; written before the job's done-send
		jobWorker  []int     // worker that ran the job
		workerBusy = make([]float64, workers)
		workerJobs = make([]uint64, workers)
		sweepStart time.Time
	)
	if timed {
		jobWall = make([]float64, n)
		jobWorker = make([]int, n)
		sweepStart = time.Now()
	}

	if workers == 1 {
		for i := range jobs {
			if timed {
				start := time.Now()
				results[i], errs[i] = runJob(jobs[i], seeds[i])
				jobWall[i] = time.Since(start).Seconds()
			} else {
				results[i], errs[i] = runJob(jobs[i], seeds[i])
			}
			publishJob(cfg, jobs[i].Name, i, i+1, n)
			if timed {
				publishJobTime(cfg, jobs[i].Name, i, jobWall[i], 0)
				workerBusy[0] += jobWall[i]
				workerJobs[0]++
			}
		}
	} else {
		idx := make(chan int)
		done := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range idx {
					if timed {
						start := time.Now()
						results[i], errs[i] = runJob(jobs[i], seeds[i])
						jobWall[i] = time.Since(start).Seconds()
						jobWorker[i] = w
					} else {
						results[i], errs[i] = runJob(jobs[i], seeds[i])
					}
					done <- i
				}
			}(w)
		}
		go func() {
			for i := range jobs {
				idx <- i
			}
			close(idx)
		}()
		// The coordinator drains exactly one completion per job; the
		// channel receives order writes of results[i]/errs[i] before the
		// reads below.
		for completed := 1; completed <= n; completed++ {
			i := <-done
			publishJob(cfg, jobs[i].Name, i, completed, n)
			if timed {
				publishJobTime(cfg, jobs[i].Name, i, jobWall[i], jobWorker[i])
				workerBusy[jobWorker[i]] += jobWall[i]
				workerJobs[jobWorker[i]]++
			}
		}
		wg.Wait()
	}

	var sweepWall float64
	if timed {
		sweepWall = time.Since(sweepStart).Seconds()
		for w := 0; w < workers; w++ {
			cfg.Telemetry.Publish(telemetry.Event{
				Comp: telemetry.CompSweep, Kind: telemetry.KSweepWorker,
				Src: fmt.Sprintf("%d", w), Flow: telemetry.NoFlow,
				A: workerBusy[w], B: float64(workerJobs[w]),
			})
		}
	}
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepDone,
		Src: cfg.Name, Flow: telemetry.NoFlow, A: float64(n), B: sweepWall,
	})

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep %s: job %d (%s): %w", cfg.Name, i, jobs[i].Name, err)
		}
	}
	return results, nil
}

func publishJob(cfg Config, name string, index, completed, total int) {
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepJob,
		Src: name, Flow: telemetry.NoFlow, Seq: int64(index),
		A: float64(completed), B: float64(total),
	})
}

func publishJobTime(cfg Config, name string, index int, wall float64, worker int) {
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepJobTime,
		Src: name, Flow: telemetry.NoFlow, Seq: int64(index),
		A: wall, B: float64(worker),
	})
}

// runJob executes one job, converting a panic into an error so a broken
// job cannot deadlock the pool.
func runJob(j Job, seed int64) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return j.Run(seed)
}

// Collect converts a sweep's []any results into their concrete type,
// failing on the first mismatch. It is the typed bridge between Run and
// an experiment's Reduce step.
func Collect[T any](results []any) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		v, ok := r.(T)
		if !ok {
			return nil, fmt.Errorf("sweep: result %d is %T, want %T", i, r, out[i])
		}
		out[i] = v
	}
	return out, nil
}
