// Package sweep is the parallel execution engine for parameter sweeps:
// it fans independent deterministic simulation runs out across a pool
// of worker goroutines while keeping the merged results bit-identical
// to sequential execution.
//
// Every evaluation in the paper is a sweep of independent runs — the
// Figure 7 loss-rate grid, the Table 5 scenario matrix, the chaos rig's
// seeded fault schedules — and each run owns its entire world: its own
// sim.Scheduler, its own telemetry bus, its own invariant checker.
// Nothing is shared between jobs, so running them concurrently cannot
// change what any single job computes. The engine's one obligation is
// to keep the *aggregate* deterministic too, which it does by merging
// results in job-index order regardless of completion order and by
// reporting failures lowest-index-first.
//
// Determinism contract:
//
//   - A job must be self-contained: it builds its own scheduler (from
//     the seed the engine hands it) and must not touch global mutable
//     state or any structure shared with another job.
//   - Run returns results indexed exactly like the jobs slice; output
//     derived from that slice is byte-identical at any worker count,
//     including 1.
//   - Seeds are fixed before execution starts: a job's seed is its Seed
//     field, or DeriveSeed(cfg.Seed, index) when the field is zero —
//     never anything drawn during execution.
//
// Around that contract sits a fault-tolerance layer, all of it opt-in
// via Config and none of it able to change what a successful job
// computes: Context cancels dispatch and drains in-flight work,
// JobTimeout bounds each attempt's wall clock, Retry re-runs
// transiently failed attempts with capped exponential backoff (see
// retry.go for the transient/deterministic error taxonomy), StallAfter
// arms a watchdog that reports hung jobs, and Checkpoint journals
// completed results so an interrupted sweep resumes instead of
// restarting (see checkpoint.go). Orthogonal to all of these, a job
// whose error carries the structural Degraded marker (an
// internal/guard resource-budget trip) is converted into a Degraded
// result instead of a failure, so a sweep at hostile scale completes
// and reports its pathological cells rather than dying on them (see
// degrade.go).
//
// Progress events (telemetry.KSweepStart/KSweepJob/KSweepDone), the
// resilience kinds (KSweepStall, KSweepRetry), and the engine's
// performance telemetry (KSweepJobTime per job, KSweepWorker per
// worker, wall seconds on KSweepDone) are published on the
// coordinating goroutine only, in completion order; they exist for
// interactive feedback and engine profiling and are the one output of a
// sweep that is *not* covered by the determinism contract.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rrtcp/internal/telemetry"
)

// Job is one independent unit of a sweep: a self-contained simulation
// run identified by its position in the jobs slice.
type Job struct {
	// Name labels the job in progress events and error messages.
	Name string
	// Seed drives the job's scheduler. Zero means "derive": the engine
	// fills it with DeriveSeed(Config.Seed, index) before execution.
	Seed int64
	// Run executes the job with the resolved seed and returns its
	// result. It runs on a worker goroutine and must not share mutable
	// state with any other job.
	Run func(seed int64) (any, error)
}

// Config parameterizes one Run call. The zero value of every
// resilience field means "off": no cancellation, no deadline, no
// retry, no watchdog, no checkpoint — the engine then behaves exactly
// like a plain worker pool.
type Config struct {
	// Name labels the sweep in progress events and error messages.
	Name string
	// Seed is the sweep master seed, used to derive per-job seeds for
	// jobs that do not pin their own.
	Seed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Telemetry, when non-nil, receives sweep progress events. They are
	// published from the coordinating goroutine only, so the bus must
	// not be shared with a concurrently running simulation.
	Telemetry *telemetry.Bus
	// Context, when non-nil, cancels the sweep: after cancellation no
	// new jobs are dispatched, in-flight jobs drain to completion, and
	// Run returns the partial results together with an error wrapping
	// context.Cause. A nil Context never cancels.
	Context context.Context
	// JobTimeout, when positive, bounds each job attempt's wall-clock
	// time. An attempt that overruns fails with a *TimeoutError
	// (transient, so it retries under a Retry policy); the attempt's
	// goroutine is abandoned, not killed — see attemptJob.
	JobTimeout time.Duration
	// StallAfter, when positive, arms a wall-clock watchdog: any job
	// in flight longer than this is reported once via a KSweepStall
	// event (surfaced on /progress and by rrtrace summary) without
	// being interrupted. It is the harness-level analogue of the
	// sim-time invariant.StartWatchdog.
	StallAfter time.Duration
	// Retry re-executes transiently failed jobs (panics, timeouts,
	// injected faults) with capped exponential backoff. Deterministic
	// simulation errors are never retried. The zero value disables
	// retry.
	Retry RetryPolicy
	// FaultInjector, when non-nil, is consulted before every attempt
	// and can fail it with an injected environmental fault — the chaos
	// hook for testing the engine's own retry path. Use
	// NewFaultInjector for a deterministic seeded injector.
	FaultInjector func(index, attempt int) error
	// Checkpoint, when non-nil, journals each completed job's result
	// and pre-fills results restored by OpenJournal, so an interrupted
	// sweep resumes where it stopped. The engine touches the journal
	// only from the coordinating goroutine.
	Checkpoint *Journal
}

// DeriveSeed returns the deterministic seed for the job at index under
// the sweep master seed, via a splitmix64-style derivation: the index
// steps a Weyl sequence from the master seed and the splitmix64
// finalizer scrambles it. Nearby (seed, index) pairs therefore yield
// statistically independent streams, and the mapping is stable across
// runs, platforms, and worker counts.
func DeriveSeed(seed int64, index int) int64 {
	z := uint64(seed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// sweepMsg is a notification from a worker or the watchdog to the
// coordinating goroutine, which owns all telemetry publishing and the
// checkpoint journal.
type sweepMsg struct {
	kind    msgKind
	index   int
	name    string
	worker  int
	attempt int           // msgRetry: the attempt that just failed
	backoff time.Duration // msgRetry: delay before the next attempt
	running float64       // msgStall: seconds in flight
}

type msgKind int

const (
	msgDone msgKind = iota
	msgRetry
	msgStall
)

// Run executes the jobs across the configured worker pool and returns
// their results in job-index order. All dispatched jobs run to
// completion even if some fail; the returned error joins (via
// errors.Join, so errors.Is/As see through it) the cancellation cause
// first, then per-job failures lowest-index-first. The results slice
// is always returned — on error it holds the partial results, with nil
// at failed or never-dispatched indices.
func Run(cfg Config, jobs []Job) ([]any, error) {
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	seeds := make([]int64, n)
	for i, j := range jobs {
		seeds[i] = j.Seed
		if seeds[i] == 0 {
			seeds[i] = DeriveSeed(cfg.Seed, i)
		}
	}

	results := make([]any, n)
	errs := make([]error, n)
	finished := make([]bool, n) // completed this run or restored from checkpoint

	// Checkpoint pre-fill: jobs a previous run already completed are
	// restored, not re-executed. Because results merge by index, the
	// final output cannot tell which run computed which job.
	pending := make([]int, 0, n)
	for i := range jobs {
		if res, ok := cfg.Checkpoint.Restored(i); ok {
			results[i] = res
			finished[i] = true
			continue
		}
		pending = append(pending, i)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}

	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepStart,
		Src: cfg.Name, Flow: telemetry.NoFlow,
		A: float64(n), B: float64(workers),
	})

	// Wall-clock performance telemetry: per-job latency and per-worker
	// busy time. Like the progress kinds, these are measurements of the
	// engine itself — inherently nondeterministic — and ride the same
	// coordinator-only progress bus, exempt from the determinism
	// contract. Timing is gated on an enabled bus so a silent sweep
	// pays nothing.
	timed := cfg.Telemetry.Enabled()
	var (
		jobWall    []float64 // seconds, indexed by job; written before the job's done-send
		jobWorker  []int     // worker that ran the job
		workerBusy = make([]float64, workers)
		workerJobs = make([]uint64, workers)
		sweepStart time.Time
	)
	if timed {
		jobWall = make([]float64, n)
		jobWorker = make([]int, n)
		sweepStart = time.Now()
	}

	completed := n - len(pending)
	var journalErr error

	if len(pending) > 0 {
		msgc := make(chan sweepMsg)
		idx := make(chan int)

		var track *inflightTracker
		if cfg.StallAfter > 0 {
			track = &inflightTracker{slots: make([]inflightSlot, workers)}
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				notify := func(m sweepMsg) { msgc <- m }
				for i := range idx {
					track.begin(w, i, jobs[i].Name)
					var start time.Time
					if timed {
						start = time.Now()
					}
					results[i], errs[i] = executeJob(ctx, cfg, jobs[i], i, seeds[i], notify)
					if timed {
						jobWall[i] = time.Since(start).Seconds()
						jobWorker[i] = w
					}
					track.end(w)
					msgc <- sweepMsg{kind: msgDone, index: i}
				}
			}(w)
		}

		// Dispatcher: feeds pending indices until done or canceled.
		// Cancellation stops dispatch; jobs already handed to workers
		// drain normally. The explicit ctx.Err check matters: when a
		// worker is ready AND the context is already canceled, select
		// would pick between the two arms at random, occasionally
		// dispatching a job under a pre-canceled context.
		go func() {
			defer close(idx)
			for _, i := range pending {
				if ctx.Err() != nil {
					return
				}
				select {
				case idx <- i:
				case <-ctx.Done():
					return
				}
			}
		}()

		// Every worker send on msgc is unbuffered and precedes the
		// worker's exit, so once wg.Wait returns all worker messages
		// have been received: closing workersDone cannot strand one.
		workersDone := make(chan struct{})
		go func() {
			wg.Wait()
			close(workersDone)
		}()

		// Hung-job watchdog: scans in-flight slots on a wall-clock
		// ticker and reports each stalled job once, routed through the
		// coordinator so telemetry publishing stays single-goroutine.
		// The select against stopWatch means a pending stall report
		// cannot deadlock shutdown.
		var stopWatch, watchDone chan struct{}
		if track != nil {
			stopWatch = make(chan struct{})
			watchDone = make(chan struct{})
			interval := cfg.StallAfter / 4
			if interval < 10*time.Millisecond {
				interval = 10 * time.Millisecond
			}
			if interval > time.Second {
				interval = time.Second
			}
			go func() {
				defer close(watchDone)
				t := time.NewTicker(interval)
				defer t.Stop()
				for {
					select {
					case <-stopWatch:
						return
					case now := <-t.C:
						for _, m := range track.stalled(now, cfg.StallAfter) {
							select {
							case msgc <- m:
							case <-stopWatch:
								return
							}
						}
					}
				}
			}()
		}

		// Coordinator: the only goroutine that publishes telemetry or
		// appends to the journal. Each done-receive happens after the
		// worker's writes of results[i]/errs[i], so the reads below are
		// ordered.
	loop:
		for {
			select {
			case m := <-msgc:
				switch m.kind {
				case msgDone:
					completed++
					i := m.index
					finished[i] = true
					publishJob(cfg, jobs[i].Name, i, completed, n)
					if timed {
						publishJobTime(cfg, jobs[i].Name, i, jobWall[i], jobWorker[i])
						workerBusy[jobWorker[i]] += jobWall[i]
						workerJobs[jobWorker[i]]++
					}
					switch {
					case errs[i] == nil:
						if jerr := cfg.Checkpoint.Append(i, jobs[i].Name, seeds[i], results[i]); jerr != nil && journalErr == nil {
							journalErr = jerr
						}
					case IsDegraded(errs[i]):
						// Budget trip: the job completed by degrading, not
						// by failing. Record the Degraded result, clear the
						// error (so the sweep succeeds), and skip the
						// journal — on resume the job re-runs and degrades
						// identically, since deterministic budgets are
						// functions of the seed.
						results[i] = Degraded{Job: jobs[i].Name, Index: i, Seed: seeds[i], Err: errs[i]}
						errs[i] = nil
						cfg.Telemetry.Publish(telemetry.Event{
							Comp: telemetry.CompSweep, Kind: telemetry.KSweepDegraded,
							Src: jobs[i].Name, Flow: telemetry.NoFlow, Seq: int64(i),
						})
					}
				case msgRetry:
					cfg.Telemetry.Publish(telemetry.Event{
						Comp: telemetry.CompSweep, Kind: telemetry.KSweepRetry,
						Src: m.name, Flow: telemetry.NoFlow, Seq: int64(m.index),
						A: float64(m.attempt), B: m.backoff.Seconds(),
					})
				case msgStall:
					cfg.Telemetry.Publish(telemetry.Event{
						Comp: telemetry.CompSweep, Kind: telemetry.KSweepStall,
						Src: m.name, Flow: telemetry.NoFlow, Seq: int64(m.index),
						A: m.running, B: float64(m.worker),
					})
				}
			case <-workersDone:
				break loop
			}
		}
		if stopWatch != nil {
			close(stopWatch)
			<-watchDone
		}
	}

	var sweepWall float64
	if timed {
		sweepWall = time.Since(sweepStart).Seconds()
		for w := 0; w < workers; w++ {
			cfg.Telemetry.Publish(telemetry.Event{
				Comp: telemetry.CompSweep, Kind: telemetry.KSweepWorker,
				Src: fmt.Sprintf("%d", w), Flow: telemetry.NoFlow,
				A: workerBusy[w], B: float64(workerJobs[w]),
			})
		}
	}
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepDone,
		Src: cfg.Name, Flow: telemetry.NoFlow, A: float64(completed), B: sweepWall,
	})

	// Error assembly: cancellation first (only when it actually cut the
	// sweep short), then per-job failures lowest-index-first, then any
	// journal write failure. errors.Join keeps every cause reachable by
	// errors.Is/As.
	var fail []error
	if ctx.Err() != nil {
		skipped := 0
		for i := range finished {
			if !finished[i] {
				skipped++
			}
		}
		if skipped > 0 {
			fail = append(fail, fmt.Errorf("sweep %s: canceled with %d of %d jobs unfinished: %w",
				cfg.Name, skipped, n, context.Cause(ctx)))
		}
	}
	for i, err := range errs {
		if err != nil {
			fail = append(fail, fmt.Errorf("sweep %s: job %d (%s): %w", cfg.Name, i, jobs[i].Name, err))
		}
	}
	if journalErr != nil {
		fail = append(fail, journalErr)
	}
	return results, errors.Join(fail...)
}

// executeJob runs one job through the retry policy: transient failures
// (panics, deadline overruns, injected faults) back off and retry up to
// Retry.MaxAttempts; deterministic simulation errors return
// immediately. Cancellation stops further retries but never interrupts
// an attempt in progress.
func executeJob(ctx context.Context, cfg Config, j Job, index int, seed int64, notify func(sweepMsg)) (any, error) {
	max := cfg.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; ; attempt++ {
		res, err := attemptJob(cfg, j, index, seed, attempt)
		if err == nil {
			return res, nil
		}
		if attempt >= max || IsDegraded(err) || !Transient(err) || ctx.Err() != nil {
			return nil, err
		}
		backoff := cfg.Retry.Backoff(attempt)
		notify(sweepMsg{kind: msgRetry, index: index, name: j.Name, attempt: attempt, backoff: backoff})
		cfg.Retry.sleep(ctx, backoff)
	}
}

// attemptJob makes one attempt: the fault injector gets first refusal,
// then the job runs — under a wall-clock deadline when JobTimeout is
// set. A simulation run cannot be preempted (the sim API is
// synchronous), so a timed-out attempt's goroutine is abandoned: it
// keeps the CPU until its sim finishes, then delivers into a buffered
// channel nobody reads and becomes garbage. That leak is deliberate —
// bounded by MaxAttempts per job — and the price of a deadline over
// uninterruptible work.
func attemptJob(cfg Config, j Job, index int, seed int64, attempt int) (any, error) {
	if cfg.FaultInjector != nil {
		if ferr := cfg.FaultInjector(index, attempt); ferr != nil {
			return nil, &FaultError{Err: ferr}
		}
	}
	if cfg.JobTimeout <= 0 {
		return runJob(j, seed)
	}
	type outcome struct {
		res any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runJob(j, seed)
		ch <- outcome{res, err}
	}()
	t := time.NewTimer(cfg.JobTimeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-t.C:
		return nil, &TimeoutError{Job: j.Name, Index: index, After: cfg.JobTimeout}
	}
}

// inflightTracker records which job each worker is running and since
// when, for the stall watchdog. Methods are nil-safe so the hot path
// can call them unconditionally.
type inflightTracker struct {
	mu    sync.Mutex
	slots []inflightSlot
}

type inflightSlot struct {
	active   bool
	index    int
	name     string
	start    time.Time
	reported bool
}

func (t *inflightTracker) begin(w, index int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slots[w] = inflightSlot{active: true, index: index, name: name, start: time.Now()}
	t.mu.Unlock()
}

func (t *inflightTracker) end(w int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slots[w].active = false
	t.mu.Unlock()
}

// stalled returns one message per newly stalled job: in flight at
// least `after` and not yet reported for this occupancy.
func (t *inflightTracker) stalled(now time.Time, after time.Duration) []sweepMsg {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []sweepMsg
	for w := range t.slots {
		s := &t.slots[w]
		if !s.active || s.reported {
			continue
		}
		if running := now.Sub(s.start); running >= after {
			s.reported = true
			out = append(out, sweepMsg{
				kind: msgStall, index: s.index, name: s.name,
				worker: w, running: running.Seconds(),
			})
		}
	}
	return out
}

func publishJob(cfg Config, name string, index, completed, total int) {
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepJob,
		Src: name, Flow: telemetry.NoFlow, Seq: int64(index),
		A: float64(completed), B: float64(total),
	})
}

func publishJobTime(cfg Config, name string, index int, wall float64, worker int) {
	cfg.Telemetry.Publish(telemetry.Event{
		Comp: telemetry.CompSweep, Kind: telemetry.KSweepJobTime,
		Src: name, Flow: telemetry.NoFlow, Seq: int64(index),
		A: wall, B: float64(worker),
	})
}

// Collect converts a sweep's []any results into their concrete type,
// failing on the first mismatch. It is the typed bridge between Run and
// an experiment's Reduce step.
func Collect[T any](results []any) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		v, ok := r.(T)
		if !ok {
			return nil, fmt.Errorf("sweep: result %d is %T, want %T", i, r, out[i])
		}
		out[i] = v
	}
	return out, nil
}
