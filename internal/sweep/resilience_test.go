package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
)

// --- retry policy and error taxonomy ---

func TestBackoffCappedExponential(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero knobs resolve to the defaults.
	var zero RetryPolicy
	if got := zero.Backoff(1); got != DefaultBaseBackoff {
		t.Fatalf("zero-policy Backoff(1) = %v, want %v", got, DefaultBaseBackoff)
	}
	// Deep attempts must not overflow into negative durations.
	if got := zero.Backoff(200); got != DefaultMaxBackoff {
		t.Fatalf("zero-policy Backoff(200) = %v, want cap %v", got, DefaultMaxBackoff)
	}
}

func TestTransientClassification(t *testing.T) {
	deterministic := errors.New("cwnd invariant violated")
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{deterministic, false},
		{fmt.Errorf("wrapped: %w", deterministic), false},
		{&PanicError{Value: "boom"}, true},
		{&TimeoutError{Job: "j", Index: 3, After: time.Second}, true},
		{&FaultError{Err: errors.New("injected")}, true},
		{fmt.Errorf("job 3: %w", &TimeoutError{}), true},
	}
	for i, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Fatalf("case %d: Transient(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestRunRetriesTransientFailures(t *testing.T) {
	// Jobs 1 and 3 fail transiently on their first two attempts and then
	// succeed; the sweep must complete with the same results a clean run
	// produces, publishing one KSweepRetry event per failed attempt.
	var backoffs []time.Duration
	ring := telemetry.NewRing(0)
	attempts := make([]atomic.Int32, 4)
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("j%d", i),
			Run: func(seed int64) (any, error) {
				n := attempts[i].Add(1)
				if (i == 1 || i == 3) && n <= 2 {
					return nil, &FaultError{Err: fmt.Errorf("flake %d", n)}
				}
				return seed, nil
			},
		}
	}
	res, err := Run(Config{
		Name: "retry", Seed: 5, Workers: 2, Telemetry: telemetry.NewBus(ring),
		Retry: RetryPolicy{MaxAttempts: 3, Sleep: func(d time.Duration) { backoffs = append(backoffs, d) }},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if res[i].(int64) != DeriveSeed(5, i) {
			t.Fatalf("result %d = %v after retries, want derived seed", i, res[i])
		}
	}
	retries := ring.EventsOf(telemetry.KSweepRetry)
	if len(retries) != 4 {
		t.Fatalf("%d retry events, want 4 (2 jobs x 2 failed attempts)", len(retries))
	}
	for _, ev := range retries {
		if ev.Seq != 1 && ev.Seq != 3 {
			t.Fatalf("retry event for job %d, want 1 or 3", ev.Seq)
		}
		if ev.B <= 0 {
			t.Fatalf("retry event backoff %v, want > 0", ev.B)
		}
	}
	// The Sleep hook observed the deterministic backoff ladder. Order
	// across jobs is scheduling-dependent; per-attempt values are not.
	if len(backoffs) != 4 {
		t.Fatalf("%d backoff sleeps, want 4", len(backoffs))
	}
	first, second := 0, 0
	for _, d := range backoffs {
		switch d {
		case DefaultBaseBackoff:
			first++
		case 2 * DefaultBaseBackoff:
			second++
		default:
			t.Fatalf("unexpected backoff %v", d)
		}
	}
	if first != 2 || second != 2 {
		t.Fatalf("backoff ladder = %v, want two first-step and two second-step delays", backoffs)
	}
}

func TestRunNeverRetriesDeterministicErrors(t *testing.T) {
	var attempts atomic.Int32
	boom := errors.New("deterministic sim error")
	jobs := []Job{{Name: "det", Run: func(int64) (any, error) {
		attempts.Add(1)
		return nil, boom
	}}}
	_, err := Run(Config{Name: "det", Workers: 1, Retry: RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the job error", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("deterministic failure attempted %d times, want 1", n)
	}
}

func TestRunRetriesExhaustSurfaceLastError(t *testing.T) {
	var attempts atomic.Int32
	jobs := []Job{{Name: "always-flaky", Run: func(int64) (any, error) {
		return nil, &FaultError{Err: fmt.Errorf("attempt %d", attempts.Add(1))}
	}}}
	_, err := Run(Config{Name: "exhaust", Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}}, jobs)
	if err == nil || !strings.Contains(err.Error(), "attempt 3") {
		t.Fatalf("got %v, want the final attempt's error", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("%d attempts, want MaxAttempts=3", n)
	}
}

// --- wall-clock deadlines and the stall watchdog ---

func TestRunJobTimeoutRetriesAndSucceeds(t *testing.T) {
	var attempts atomic.Int32
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{{Name: "slow-once", Run: func(seed int64) (any, error) {
		if attempts.Add(1) == 1 {
			<-release // first attempt hangs until the test ends
		}
		return seed, nil
	}}}
	ring := telemetry.NewRing(0)
	res, err := Run(Config{
		Name: "deadline", Seed: 3, Workers: 1, Telemetry: telemetry.NewBus(ring),
		JobTimeout: 30 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != DeriveSeed(3, 0) {
		t.Fatalf("result %v, want derived seed", res[0])
	}
	if n := len(ring.EventsOf(telemetry.KSweepRetry)); n != 1 {
		t.Fatalf("%d retry events, want 1 (the timed-out attempt)", n)
	}
}

func TestRunJobTimeoutExhaustedIsTimeoutError(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{{Name: "wedged", Run: func(int64) (any, error) {
		<-release
		return nil, nil
	}}}
	_, err := Run(Config{Name: "deadline", Workers: 1, JobTimeout: 20 * time.Millisecond}, jobs)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want a *TimeoutError", err)
	}
	if te.Index != 0 || te.Job != "wedged" || te.After != 20*time.Millisecond {
		t.Fatalf("timeout error %+v mislabeled", te)
	}
}

func TestRunWatchdogReportsStalledJobs(t *testing.T) {
	gate := make(chan struct{})
	jobs := []Job{
		{Name: "stuck", Run: func(int64) (any, error) { <-gate; return 1, nil }},
		{Name: "quick", Run: func(int64) (any, error) { return 2, nil }},
	}
	ring := telemetry.NewRing(0)
	done := make(chan struct{})
	go func() {
		// Release the stuck job once the watchdog has had several
		// chances to observe it past the threshold.
		time.Sleep(150 * time.Millisecond)
		close(gate)
		close(done)
	}()
	if _, err := Run(Config{
		Name: "watch", Workers: 2, Telemetry: telemetry.NewBus(ring),
		StallAfter: 40 * time.Millisecond,
	}, jobs); err != nil {
		t.Fatal(err)
	}
	<-done
	stalls := ring.EventsOf(telemetry.KSweepStall)
	if len(stalls) != 1 {
		t.Fatalf("%d stall events, want exactly 1 (reported once per occupancy)", len(stalls))
	}
	ev := stalls[0]
	if ev.Src != "stuck" || ev.Seq != 0 {
		t.Fatalf("stall event %+v, want job 0 (stuck)", ev)
	}
	if ev.A < 0.04 {
		t.Fatalf("stall reported %.3fs in flight, want >= threshold", ev.A)
	}
}

// --- panics ---

func TestRunPanicNil(t *testing.T) {
	jobs := []Job{{Name: "nil-panic", Run: func(int64) (any, error) { panic(nil) }}}
	_, err := Run(Config{Workers: 1}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want a *PanicError", err)
	}
	if _, ok := pe.Value.(*runtime.PanicNilError); !ok {
		t.Fatalf("panic(nil) surfaced as %T (%v), want *runtime.PanicNilError", pe.Value, pe.Value)
	}
}

func TestRunPanicCarriesStack(t *testing.T) {
	jobs := []Job{{Name: "explodes", Run: func(int64) (any, error) { panic("kaboom") }}}
	_, err := Run(Config{Workers: 1}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want a *PanicError", err)
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("panic error lacks value or stack snippet:\n%v", err)
	}
	if len(pe.Stack) > 2048+128 {
		t.Fatalf("stack snippet %d bytes, want truncated near 2048", len(pe.Stack))
	}
}

// --- partial results and multi-error reporting ---

func TestRunReturnsPartialResultsWithJoinedErrors(t *testing.T) {
	boom1, boom2 := errors.New("boom-1"), errors.New("boom-2")
	jobs := []Job{
		{Name: "ok-0", Run: func(int64) (any, error) { return 10, nil }},
		{Name: "bad-1", Run: func(int64) (any, error) { return nil, boom1 }},
		{Name: "ok-2", Run: func(int64) (any, error) { return 30, nil }},
		{Name: "bad-3", Run: func(int64) (any, error) { return nil, boom2 }},
	}
	for _, workers := range []int{1, 4} {
		res, err := Run(Config{Name: "partial", Workers: workers}, jobs)
		if !errors.Is(err, boom1) || !errors.Is(err, boom2) {
			t.Fatalf("workers=%d: joined error %v must carry both failures", workers, err)
		}
		// Lowest index first in the rendered message.
		msg := err.Error()
		if strings.Index(msg, "bad-1") > strings.Index(msg, "bad-3") {
			t.Fatalf("workers=%d: errors not lowest-index-first:\n%s", workers, msg)
		}
		if res == nil || res[0] != 10 || res[2] != 30 {
			t.Fatalf("workers=%d: partial results %v, want successes preserved", workers, res)
		}
		if res[1] != nil || res[3] != nil {
			t.Fatalf("workers=%d: failed slots %v, want nil", workers, res)
		}
	}
}

// --- cancellation ---

func TestRunCancellationDrainsAndReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := make(chan struct{})
	started := make(chan int, 8)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(seed int64) (any, error) {
			started <- i
			<-gate
			return seed, nil
		}}
	}
	errc := make(chan error, 1)
	resc := make(chan []any, 1)
	go func() {
		res, err := Run(Config{Name: "cancel", Seed: 9, Workers: 2, Context: ctx}, jobs)
		resc <- res
		errc <- err
	}()
	// Wait for both workers to hold a job, cancel dispatch, then let the
	// in-flight pair drain.
	a, b := <-started, <-started
	cancel()
	close(gate)
	res, err := <-resc, <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "6 of 8 jobs unfinished") {
		t.Fatalf("error %q does not report the partial coverage", err)
	}
	// The two in-flight jobs drained to completion; nothing else ran.
	finished := 0
	for i, r := range res {
		if r != nil {
			finished++
			if i != a && i != b {
				t.Fatalf("job %d has a result but was never started (started %d, %d)", i, a, b)
			}
			if r.(int64) != DeriveSeed(9, i) {
				t.Fatalf("drained job %d result %v, want derived seed", i, r)
			}
		}
	}
	if finished != 2 {
		t.Fatalf("%d jobs finished after cancel, want the 2 in flight", finished)
	}
}

func TestRunCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := []Job{{Name: "never", Run: func(int64) (any, error) { ran.Add(1); return 1, nil }}}
	res, err := Run(Config{Name: "pre-canceled", Workers: 1, Context: ctx}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("job ran %d times under a pre-canceled context", n)
	}
	if res == nil || res[0] != nil {
		t.Fatalf("results %v, want an all-nil slice", res)
	}
}

// --- fault injection: chaos-testing the retry path itself ---

func TestRunFaultInjectorExercisesRetries(t *testing.T) {
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = spinJob(40 + i)
	}
	clean, err := Run(Config{Name: "fi", Seed: 11, Workers: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ring := telemetry.NewRing(0)
	faulty, err := Run(Config{
		Name: "fi", Seed: 11, Workers: 4, Telemetry: telemetry.NewBus(ring),
		Retry:         RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}},
		FaultInjector: NewFaultInjector(42, 0.4),
	}, jobs)
	if err != nil {
		t.Fatalf("sweep under 40%% injected faults failed: %v", err)
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("result %d differs under fault injection: %v vs %v", i, faulty[i], clean[i])
		}
	}
	if n := len(ring.EventsOf(telemetry.KSweepRetry)); n == 0 {
		t.Fatal("a 40% fault rate produced no retry events")
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	a, b := NewFaultInjector(7, 0.5), NewFaultInjector(7, 0.5)
	fired := 0
	for i := 0; i < 64; i++ {
		for attempt := 1; attempt <= 3; attempt++ {
			ea, eb := a(i, attempt), b(i, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("injector not deterministic at (%d,%d)", i, attempt)
			}
			if ea != nil {
				fired++
			}
		}
	}
	if fired == 0 || fired == 64*3 {
		t.Fatalf("rate-0.5 injector fired %d/192 times; want a nontrivial fraction", fired)
	}
}

// --- checkpoint journal ---

// sinkFunc adapts a closure to telemetry.Sink for test hooks.
type sinkFunc func(telemetry.Event)

func (f sinkFunc) Emit(ev telemetry.Event) { f(ev) }

// decodeInt64 inverts json.Marshal of the int64 results the test jobs
// return.
func decodeInt64(data []byte) (any, error) {
	var v int64
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func seedJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(seed int64) (any, error) { return seed, nil }}
	}
	return jobs
}

func TestSweepKeyContentAddressing(t *testing.T) {
	jobs := seedJobs(4)
	base := SweepKey("exp", 7, jobs)
	if base != SweepKey("exp", 7, seedJobs(4)) {
		t.Fatal("key not stable for identical sweeps")
	}
	if base == SweepKey("exp", 8, jobs) {
		t.Fatal("key ignores the master seed")
	}
	if base == SweepKey("other", 7, jobs) {
		t.Fatal("key ignores the sweep name")
	}
	if base == SweepKey("exp", 7, seedJobs(5)) {
		t.Fatal("key ignores the job count")
	}
	renamed := seedJobs(4)
	renamed[2].Name = "renamed"
	if base == SweepKey("exp", 7, renamed) {
		t.Fatal("key ignores job names")
	}
	pinned := seedJobs(4)
	pinned[1].Seed = 1234
	if base == SweepKey("exp", 7, pinned) {
		t.Fatal("key ignores pinned job seeds")
	}
	// Pinning a job to its derived seed is the same sweep.
	derived := seedJobs(4)
	derived[1].Seed = DeriveSeed(7, 1)
	if base != SweepKey("exp", 7, derived) {
		t.Fatal("key distinguishes derived from explicitly pinned derived seeds")
	}
}

func TestJournalResumeProducesIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "ckpt", Seed: 21, Workers: 2}
	jobs := seedJobs(10)

	baseline, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}

	// First run: canceled after the first few completions, journaling
	// what finished.
	j1, err := OpenJournal(dir, cfg, jobs, false, decodeInt64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ring := telemetry.NewRing(0)
	bus := telemetry.NewBus(ring, sinkFunc(func(ev telemetry.Event) {
		if ev.Kind == telemetry.KSweepJob && ev.A >= 3 {
			cancel()
		}
	}))
	c1 := cfg
	c1.Context = ctx
	c1.Telemetry = bus
	c1.Checkpoint = j1
	_, err = Run(c1, jobs)
	cancel()
	if cerr := j1.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want cancellation", err)
	}

	// Second run: resume. Restored jobs must not re-execute, and the
	// merged output must equal the uninterrupted baseline at a different
	// worker count.
	for _, workers := range []int{1, 4} {
		j2, err := OpenJournal(dir, cfg, jobs, true, decodeInt64)
		if err != nil {
			t.Fatal(err)
		}
		if j2.RestoredCount() < 3 {
			t.Fatalf("resume restored %d jobs, want >= 3", j2.RestoredCount())
		}
		c2 := cfg
		c2.Workers = workers
		c2.Checkpoint = j2
		res, err := Run(c2, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if cerr := j2.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		for i := range baseline {
			if res[i] != baseline[i] {
				t.Fatalf("workers=%d: resumed result %d = %v, baseline %v", workers, i, res[i], baseline[i])
			}
		}
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "trunc", Seed: 5, Workers: 1}
	jobs := seedJobs(4)
	j, err := OpenJournal(dir, cfg, jobs, false, decodeInt64)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Checkpoint = j
	if _, err := Run(c, jobs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: chop the final record in half.
	path := filepath.Join(j.Dir(), "journal.ndjson")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, cfg, jobs, true, decodeInt64)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.RestoredCount() != 3 || j2.Skipped() != 1 {
		t.Fatalf("restored %d, skipped %d; want 3 restored, 1 skipped", j2.RestoredCount(), j2.Skipped())
	}
	c2 := cfg
	c2.Checkpoint = j2
	res, err := Run(c2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if res[i].(int64) != DeriveSeed(5, i) {
			t.Fatalf("post-truncation result %d = %v", i, res[i])
		}
	}
}

func TestJournalRejectsForeignRecords(t *testing.T) {
	dir := t.TempDir()
	jobs := seedJobs(3)
	cfgA := Config{Name: "exp", Seed: 1, Workers: 1}
	j, err := OpenJournal(dir, cfgA, jobs, false, decodeInt64)
	if err != nil {
		t.Fatal(err)
	}
	c := cfgA
	c.Checkpoint = j
	if _, err := Run(c, jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A different master seed is a different sweep: it must land in its
	// own directory and restore nothing.
	cfgB := Config{Name: "exp", Seed: 2, Workers: 1}
	j2, err := OpenJournal(dir, cfgB, jobs, true, decodeInt64)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Dir() == j.Dir() {
		t.Fatal("different sweeps share a journal directory")
	}
	if j2.RestoredCount() != 0 {
		t.Fatalf("foreign journal restored %d jobs", j2.RestoredCount())
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if _, ok := j.Restored(0); ok {
		t.Fatal("nil journal restored a result")
	}
	if j.RestoredCount() != 0 || j.Skipped() != 0 || j.Dir() != "" || j.Key() != "" {
		t.Fatal("nil journal accessors not zero")
	}
	if err := j.Append(0, "x", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
