package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rrtcp/internal/telemetry"
)

// TestProgressSinkConcurrentWorkers checks the interactive status line
// stays coherent when jobs finish on four workers: progress events are
// published from the coordinating goroutine only, so the rendered
// stream must contain exactly one header, one status update per job,
// and one final summary line — no interleaving artifacts.
func TestProgressSinkConcurrentWorkers(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewProgressSink(&buf)
	bus := telemetry.NewBus(sink)

	const n = 24
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("case-%02d", i),
			Run:  func(seed int64) (any, error) { return seed, nil },
		}
	}
	if _, err := Run(Config{Name: "progress", Workers: 4, Telemetry: bus}, jobs); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.HasPrefix(out, fmt.Sprintf("progress: %d jobs on 4 workers\n", n)) {
		t.Errorf("missing or wrong header:\n%q", out)
	}
	if !strings.Contains(out, fmt.Sprintf("progress: %d jobs done", n)) {
		t.Errorf("missing final summary:\n%q", out)
	}
	// One CR-prefixed update per job plus the final line's CR.
	if got := strings.Count(out, "\r"); got != n+1 {
		t.Errorf("status updates = %d, want %d", got, n+1)
	}
	// Every update reports a monotonically increasing completed count.
	last := 0
	for _, seg := range strings.Split(out, "\r")[1:] {
		var done, total int
		if _, err := fmt.Sscanf(seg, "%d/%d", &done, &total); err != nil {
			continue // the final "name: N jobs done" segment
		}
		if done < last || total != n {
			t.Errorf("non-monotone or mistotaled update %q (prev %d)", seg, last)
		}
		last = done
	}
	if last != n {
		t.Errorf("last streamed count = %d, want %d", last, n)
	}
}

// TestProgressStateConcurrentWorkers runs the same sweep against the
// materialized ProgressState view and checks the end-of-sweep
// accounting: per-worker jobs must sum to the job count, busy time and
// wall time must be coherent, and the latency stats populated.
func TestProgressStateConcurrentWorkers(t *testing.T) {
	ps := telemetry.NewProgressState()
	bus := telemetry.NewBus(ps)

	const n, workers = 24, 4
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("case-%02d", i),
			Run: func(seed int64) (any, error) {
				s := 0
				for k := 0; k < 2000; k++ {
					s += k
				}
				return s, nil
			},
		}
	}
	if _, err := Run(Config{Name: "state", Workers: workers, Telemetry: bus}, jobs); err != nil {
		t.Fatal(err)
	}

	snap := ps.Snapshot()
	if snap.Active {
		t.Error("sweep still active after Run returned")
	}
	if snap.Sweep != "state" || snap.Jobs != n || snap.Workers != workers || snap.Completed != n {
		t.Errorf("snapshot totals off: %+v", snap)
	}
	if len(snap.PerWorker) != workers {
		t.Fatalf("PerWorker len = %d, want %d", len(snap.PerWorker), workers)
	}
	sum := 0
	for w, p := range snap.PerWorker {
		if p.Jobs < 0 || p.BusyS < 0 {
			t.Errorf("worker %d has negative accounting: %+v", w, p)
		}
		sum += p.Jobs
	}
	if sum != n {
		t.Errorf("per-worker jobs sum to %d, want %d", sum, n)
	}
	if snap.JobWallMeanS < 0 || snap.JobWallMaxS < snap.JobWallMeanS {
		t.Errorf("job wall stats incoherent: mean=%v max=%v", snap.JobWallMeanS, snap.JobWallMaxS)
	}
	if snap.WallS <= 0 {
		t.Errorf("wall time not recorded: %v", snap.WallS)
	}
	if snap.SweepsDone != 1 {
		t.Errorf("SweepsDone = %d, want 1", snap.SweepsDone)
	}
}

// TestMetricsSinkSweepLifecycle checks the registry-side view of a
// sweep: lifecycle counters, totals gauges, and the per-worker metrics
// the engine publishes at the end.
func TestMetricsSinkSweepLifecycle(t *testing.T) {
	sink := telemetry.NewMetricsSink()
	bus := telemetry.NewBus(sink)

	const n, workers = 9, 3
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Run: func(seed int64) (any, error) { return nil, nil }}
	}
	if _, err := Run(Config{Name: "metrics", Workers: workers, Telemetry: bus}, jobs); err != nil {
		t.Fatal(err)
	}

	r := sink.R
	if got := r.Counter("sweep.started"); got != 1 {
		t.Errorf("sweep.started = %d, want 1", got)
	}
	if got := r.Counter("sweep.finished"); got != 1 {
		t.Errorf("sweep.finished = %d, want 1", got)
	}
	if got := r.Gauge("sweep.jobs_total"); got != n {
		t.Errorf("sweep.jobs_total = %v, want %d", got, n)
	}
	if got := r.Gauge("sweep.jobs_completed"); got != n {
		t.Errorf("sweep.jobs_completed = %v, want %d", got, n)
	}
	if got := r.Gauge("sweep.workers"); got != workers {
		t.Errorf("sweep.workers = %v, want %d", got, workers)
	}
	if h := r.LogHist("sweep.job_latency_s"); h == nil || h.Count() != n {
		t.Errorf("sweep.job_latency_s missing or miscounted: %v", h)
	}
	var workerJobs float64
	for w := 0; w < workers; w++ {
		workerJobs += r.Gauge(fmt.Sprintf("sweep.%d.worker_jobs", w))
	}
	if int(workerJobs) != n {
		t.Errorf("per-worker job gauges sum to %v, want %d", workerJobs, n)
	}
}
