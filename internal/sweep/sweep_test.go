package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// spinJob simulates a small deterministic workload: a scheduler seeded
// from the engine-resolved seed processes a chain of events and the
// result folds the seed into every firing.
func spinJob(events int) Job {
	return Job{
		Name: fmt.Sprintf("spin-%d", events),
		Run: func(seed int64) (any, error) {
			sched := sim.NewScheduler(seed)
			acc := seed
			var tick func()
			fired := 0
			tick = func() {
				acc = acc*6364136223846793005 + 1442695040888963407
				fired++
				if fired < events {
					if _, err := sched.Schedule(1, tick); err != nil {
						panic(err)
					}
				}
			}
			if _, err := sched.Schedule(0, tick); err != nil {
				return nil, err
			}
			sched.RunAll()
			return acc, nil
		},
	}
}

func TestRunOrdersResultsByJobIndex(t *testing.T) {
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = spinJob(50 + i)
	}
	seq, err := Run(Config{Name: "t", Seed: 7, Workers: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9} {
		par, err := Run(Config{Name: "t", Seed: 7, Workers: workers}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: result %d = %v, sequential %v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestRunDerivesSeedsWhenUnset(t *testing.T) {
	var got [4]int64
	jobs := make([]Job, len(got))
	for i := range jobs {
		jobs[i] = Job{Run: func(seed int64) (any, error) { return seed, nil }}
	}
	res, err := Run(Config{Seed: 99, Workers: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := DeriveSeed(99, i)
		if res[i].(int64) != want {
			t.Fatalf("job %d seed %d, want DeriveSeed(99,%d)=%d", i, res[i], i, want)
		}
	}
	// A pinned seed wins over derivation.
	pinned := []Job{{Seed: 1234, Run: func(seed int64) (any, error) { return seed, nil }}}
	res, err = Run(Config{Seed: 99, Workers: 1}, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 1234 {
		t.Fatalf("pinned seed not honored: got %v", res[0])
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 256; i++ {
			s := DeriveSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d index=%d", seed, i)
			}
			seen[s] = true
		}
	}
	// Stable across calls (the determinism contract hangs off this).
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("derivation not stable")
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Name: "ok", Run: func(int64) (any, error) { return 1, nil }},
		{Name: "first-bad", Run: func(int64) (any, error) { return nil, boom }},
		{Name: "second-bad", Run: func(int64) (any, error) { return nil, errors.New("later") }},
	}
	for _, workers := range []int{1, 3} {
		_, err := Run(Config{Name: "errs", Workers: workers}, jobs)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want the job-1 error", workers, err)
		}
		if !strings.Contains(err.Error(), "first-bad") {
			t.Fatalf("workers=%d: error %q does not name the failing job", workers, err)
		}
	}
}

func TestRunRecoversJobPanic(t *testing.T) {
	jobs := []Job{
		{Name: "fine", Run: func(int64) (any, error) { return 1, nil }},
		{Name: "explodes", Run: func(int64) (any, error) { panic("kaboom") }},
	}
	for _, workers := range []int{1, 2} {
		_, err := Run(Config{Workers: workers}, jobs)
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: panic not surfaced as error: %v", workers, err)
		}
	}
}

func TestRunEmptyJobs(t *testing.T) {
	res, err := Run(Config{}, nil)
	if err != nil || res != nil {
		t.Fatalf("empty sweep: %v, %v", res, err)
	}
}

func TestRunPublishesProgress(t *testing.T) {
	ring := telemetry.NewRing(0)
	bus := telemetry.NewBus(ring)
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(int64) (any, error) { return nil, nil }}
	}
	if _, err := Run(Config{Name: "prog", Workers: 2, Telemetry: bus}, jobs); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if evs[0].Kind != telemetry.KSweepStart || evs[0].Src != "prog" {
		t.Fatalf("first event %+v, want sweep-start", evs[0])
	}
	if last := evs[len(evs)-1]; last.Kind != telemetry.KSweepDone {
		t.Fatalf("last event %+v, want sweep-done", last)
	}
	if n := len(ring.EventsOf(telemetry.KSweepStart)); n != 1 {
		t.Fatalf("%d sweep-start events, want 1", n)
	}
	progress := ring.EventsOf(telemetry.KSweepJob)
	if len(progress) != len(jobs) {
		t.Fatalf("%d sweep-job events, want %d", len(progress), len(jobs))
	}
	seenIdx := map[int64]bool{}
	for _, ev := range progress {
		if ev.B != float64(len(jobs)) {
			t.Fatalf("job event total %v, want %d", ev.B, len(jobs))
		}
		seenIdx[ev.Seq] = true
	}
	if len(seenIdx) != len(jobs) {
		t.Fatalf("job events cover %d indices, want %d", len(seenIdx), len(jobs))
	}
}

func TestRunPublishesEngineTiming(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ring := telemetry.NewRing(0)
		bus := telemetry.NewBus(ring)
		jobs := make([]Job, 6)
		for i := range jobs {
			jobs[i] = spinJob(200 + i)
		}
		if _, err := Run(Config{Name: "perf", Workers: workers, Telemetry: bus}, jobs); err != nil {
			t.Fatal(err)
		}
		times := ring.EventsOf(telemetry.KSweepJobTime)
		if len(times) != len(jobs) {
			t.Fatalf("workers=%d: %d job-time events, want %d", workers, len(times), len(jobs))
		}
		seen := map[int64]bool{}
		for _, ev := range times {
			if ev.A < 0 {
				t.Fatalf("negative job wall time %v", ev.A)
			}
			if int(ev.B) < 0 || int(ev.B) >= workers {
				t.Fatalf("workers=%d: job on worker %v", workers, ev.B)
			}
			seen[ev.Seq] = true
		}
		if len(seen) != len(jobs) {
			t.Fatalf("job-time events cover %d indices, want %d", len(seen), len(jobs))
		}
		wk := ring.EventsOf(telemetry.KSweepWorker)
		if len(wk) != workers {
			t.Fatalf("%d worker events, want %d", len(wk), workers)
		}
		var jobsRun float64
		for _, ev := range wk {
			jobsRun += ev.B
		}
		if int(jobsRun) != len(jobs) {
			t.Fatalf("worker events account for %v jobs, want %d", jobsRun, len(jobs))
		}
		done := ring.EventsOf(telemetry.KSweepDone)
		if len(done) != 1 || done[0].B <= 0 {
			t.Fatalf("sweep-done = %+v, want one event with wall seconds", done)
		}
	}
}

func TestRunSilentBusSkipsTiming(t *testing.T) {
	// With no telemetry configured the engine must not publish (or
	// measure) anything — exercised via a bus with no sinks.
	jobs := []Job{spinJob(10)}
	if _, err := Run(Config{Name: "quiet", Workers: 1, Telemetry: telemetry.NewBus()}, jobs); err != nil {
		t.Fatal(err)
	}
}

func TestCollect(t *testing.T) {
	out, err := Collect[int]([]any{1, 2, 3})
	if err != nil || len(out) != 3 || out[2] != 3 {
		t.Fatalf("collect: %v, %v", out, err)
	}
	if _, err := Collect[int]([]any{1, "two"}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}
