package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// This file is the sweep engine's failure taxonomy and retry policy.
//
// A failed job is one of two very different things. A *deterministic*
// failure is a property of the simulation itself — the job returned an
// error computed from its seed, and re-running it reproduces the same
// error byte for byte (that reproducibility is the whole point of the
// chaos rig). Retrying it burns wall time to learn nothing. An
// *environmental* failure belongs to the harness or the machine: a
// wall-clock deadline fired, a worker panicked under memory pressure,
// a fault injected into the harness for chaos-testing the harness. Those
// are worth retrying, with capped exponential backoff so a struggling
// machine is not hammered — the lineage here is Jain's analysis of
// diverging retransmission-timeout policies: naive linear retry under
// sustained overload never converges, while exponential backoff with a
// cap does.
//
// The classifier is structural, not string-matching: environmental
// failures are wrapped in types implementing `Transient() bool`, and
// Transient walks the Unwrap chain looking for one. An error a job
// returns normally never carries the marker, so it is deterministic by
// construction.

// RetryPolicy governs re-execution of transiently failed jobs. The
// zero value disables retry (every job gets exactly one attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job, including
	// the first; values <= 1 disable retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// subsequent retry. Zero selects the 100ms default.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero selects the 5s
	// default.
	MaxBackoff time.Duration
	// Sleep, when non-nil, replaces the engine's context-aware sleep
	// between attempts — a test hook for observing (and skipping) the
	// backoff delays.
	Sleep func(time.Duration)
}

// Default backoff parameters, applied when the policy enables retry
// but leaves the knobs zero.
const (
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// withDefaults resolves the zero knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	return p
}

// Backoff returns the capped exponential delay scheduled after the
// n-th failed attempt (1-based): BaseBackoff << (n-1), clamped to
// MaxBackoff. The sequence is deterministic — no jitter — because sweep
// workers retry independent jobs, not a shared resource, so the
// thundering-herd argument for jitter does not apply and determinism
// keeps the harness debuggable.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// sleep waits out a backoff delay, returning early when ctx is
// canceled. The Sleep hook, when set, replaces the wait entirely.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// transienter is the structural marker separating environmental
// failures (retryable) from deterministic simulation errors (never
// retried).
type transienter interface{ Transient() bool }

// Transient reports whether err is an environmental failure worth
// retrying: a harness deadline (TimeoutError), a recovered panic
// (PanicError), an injected harness fault (FaultError), or anything
// else in the Unwrap chain implementing `Transient() bool`. Errors a
// job returns normally are deterministic simulation outcomes and are
// never transient.
func Transient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(transienter); ok {
			return t.Transient()
		}
	}
	return false
}

// PanicError is a panic recovered from a job, carrying the panic value
// and a stack snippet for repro bundles. A nil panic — panic(nil) — is
// represented by a *runtime.PanicNilError value, never by a bare nil,
// so the message stays diagnosable.
type PanicError struct {
	// Value is what the job passed to panic.
	Value any
	// Stack is a truncated goroutine stack captured at recovery.
	Stack []byte
}

// Error includes the panic value and the stack snippet.
func (e *PanicError) Error() string {
	if len(e.Stack) == 0 {
		return fmt.Sprintf("job panicked: %v", e.Value)
	}
	return fmt.Sprintf("job panicked: %v\n%s", e.Value, e.Stack)
}

// Transient marks panics as environmental: a deterministic panic will
// exhaust its attempts and surface anyway, while a pressure-induced one
// (OOM-adjacent allocation failure, runtime wobble) gets a second
// chance.
func (e *PanicError) Transient() bool { return true }

// TimeoutError reports a job attempt that exceeded the sweep's
// per-job wall-clock deadline (Config.JobTimeout).
type TimeoutError struct {
	// Job names the job; Index is its position in the job list.
	Job   string
	Index int
	// After is the deadline that fired.
	After time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	// The sweep's error wrapper already names the job and index.
	return fmt.Sprintf("exceeded the %v wall-clock deadline", e.After)
}

// Transient marks deadline overruns as environmental: the simulation
// under the job is bounded in *simulated* time, so a wall-clock overrun
// means the machine (or a harness bug), not the sim, wedged.
func (e *TimeoutError) Transient() bool { return true }

// FaultError wraps an error produced by Config.FaultInjector — a
// deliberately injected environmental failure used to chaos-test the
// retry path itself.
type FaultError struct{ Err error }

// Error implements error.
func (e *FaultError) Error() string { return "injected harness fault: " + e.Err.Error() }

// Unwrap exposes the injected cause.
func (e *FaultError) Unwrap() error { return e.Err }

// Transient marks injected faults as environmental by definition.
func (e *FaultError) Transient() bool { return true }

// NewFaultInjector returns a deterministic fault injector for
// Config.FaultInjector: each (index, attempt) pair fails with
// probability rate, decided by a splitmix64 hash of (seed, index,
// attempt) so the failure pattern is stable across runs and worker
// counts. Use it to chaos-test the engine's own retry path.
func NewFaultInjector(seed int64, rate float64) func(index, attempt int) error {
	return func(index, attempt int) error {
		z := uint64(seed)
		z += (uint64(index) + 1) * 0x9E3779B97F4A7C15
		z += (uint64(attempt) + 1) * 0xD1B54A32D192ED03
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if float64(z>>11)/float64(1<<53) < rate {
			return fmt.Errorf("seeded fault (job %d, attempt %d)", index, attempt)
		}
		return nil
	}
}

// stackSnippet captures the current goroutine stack, truncated at the
// first line boundary past limit bytes — enough frames to locate a
// panic without flooding a repro bundle.
func stackSnippet(limit int) []byte {
	s := debug.Stack()
	if len(s) <= limit {
		return s
	}
	if i := bytes.IndexByte(s[limit:], '\n'); i >= 0 {
		s = s[:limit+i]
	} else {
		s = s[:limit]
	}
	return append(s, []byte("\n... (stack truncated)")...)
}

// runJob executes one job attempt, converting a panic into a
// *PanicError (stack snippet included) so a broken job cannot deadlock
// the pool. panic(nil) is normalized to *runtime.PanicNilError rather
// than surfacing as a misleading "<nil>".
func runJob(j Job, seed int64) (res any, err error) {
	returned := false
	defer func() {
		if returned {
			return
		}
		r := recover()
		if r == nil {
			// Only reachable under GODEBUG=panicnil=1, where recover
			// hands panic(nil) back as a literal nil.
			r = new(runtime.PanicNilError)
		}
		res, err = nil, &PanicError{Value: r, Stack: stackSnippet(2048)}
	}()
	res, err = j.Run(seed)
	returned = true
	return res, err
}
