package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// Figure5Config parameterizes the drop-tail burst-loss experiment
// (paper §3.2, Table 3, Figure 5): a flow with a limited amount of data
// loses a burst of packets within one window and we measure the
// effective throughput of each recovery scheme.
type Figure5Config struct {
	// Drops is the number of packets lost within one window (the paper
	// plots 3 and 6).
	Drops int `json:"drops"`
	// FirstDropPacket is the packet number of the first loss. The
	// default (60) falls where congestion avoidance has grown the
	// window to ~15-16 packets, matching the paper's loss placement
	// ("bursty packet losses occur after cwnd reaches 16").
	FirstDropPacket int `json:"firstDropPacket"`
	// TransferPackets is flow 1's limited amount of data, in packets.
	TransferPackets int `json:"transferPackets"`
	// Variants to compare; defaults to the paper's four.
	Variants []workload.Kind `json:"variants"`
	// Seed for the scheduler (the scenario itself is deterministic).
	Seed int64 `json:"seed"`
	// Telemetry, when non-nil, receives structured events from every
	// variant's run: flow events plus the instrumented bottleneck links,
	// queues, and loss injector. Under a parallel sweep each run records
	// into a private buffer and the streams are republished here in
	// variant order, so the NDJSON output stays deterministic.
	Telemetry *telemetry.Bus `json:"-"`
	// SampleEvery sets the gauge-sampling interval for the periodic
	// Sampler (cwnd, ssthresh, srtt, rto, flight, actnum, bottleneck
	// occupancy) when Telemetry is enabled. Defaults to 10ms.
	SampleEvery sim.Time `json:"-"`
	// FlowStats enables the aggregate flow-analytics layer: each job
	// folds its flow lifecycle events into a flowstats.FlowTable and the
	// result carries the merged Summary (see FlowReport). Aggregation is
	// per-job and merged in variant order, so the report is byte-identical
	// at any worker count.
	FlowStats bool `json:"flowStats,omitempty"`
	// FlowExemplars caps the reservoir of exemplar flows each job's
	// table retains in full detail (0: aggregates only).
	FlowExemplars int `json:"flowExemplars,omitempty"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *Figure5Config) fillDefaults() {
	if c.Drops <= 0 {
		c.Drops = 3
	}
	if c.FirstDropPacket <= 0 {
		c.FirstDropPacket = 60
	}
	if c.TransferPackets <= 0 {
		c.TransferPackets = 150
	}
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.Tahoe, workload.NewReno, workload.SACK, workload.RR}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Millisecond
	}
}

// DropPacketNumbers returns the packet numbers lost within the window:
// pairs separated by single survivors starting at FirstDropPacket,
// echoing the paper's Figure 3 illustration (packets 4, 5, 7, 8 lost
// from one window).
func (c *Figure5Config) DropPacketNumbers() []int64 {
	c.fillDefaults()
	out := make([]int64, 0, c.Drops)
	for i := 0; i < c.Drops; i++ {
		out = append(out, int64(c.FirstDropPacket)+int64(i)+int64(i/2))
	}
	return out
}

// Figure5Row is the outcome for one variant.
type Figure5Row struct {
	Variant workload.Kind `json:"variant"`
	// TransferDelay is the time to complete the limited transfer.
	TransferDelay sim.Time `json:"transferDelayNs"`
	// GoodputBps is the effective throughput over the whole transfer.
	GoodputBps float64 `json:"goodputBps"`
	// RecoveryGoodputBps is the effective throughput measured across
	// the congestion-recovery period only, the paper's Figure 5 metric.
	RecoveryGoodputBps float64 `json:"recoveryGoodputBps"`
	// Timeouts counts coarse retransmission timeouts suffered.
	Timeouts uint64 `json:"timeouts"`
	// Retransmits counts retransmitted segments.
	Retransmits uint64 `json:"retransmits"`
	// Finished reports whether the transfer completed within the horizon.
	Finished bool `json:"finished"`
}

// Figure5Result aggregates one drop-count scenario.
type Figure5Result struct {
	Config Figure5Config `json:"config"`
	Rows   []Figure5Row  `json:"rows"`
	// Flows is the merged flow-analytics summary across variants, set
	// when Config.FlowStats is on.
	Flows *flowstats.Summary `json:"flows,omitempty"`
}

// FlowReport computes the flow-analytics report, or a zero report when
// flow stats were not enabled.
func (r *Figure5Result) FlowReport() flowstats.Report {
	if r.Flows == nil {
		return flowstats.Report{}
	}
	return r.Flows.Report()
}

// Figure5 runs the burst-loss comparison for one drop count.
//
// The paper tuned background traffic against an 8-packet buffer purely
// to make flow 1 lose exactly 3 (or 6) packets within a window; we pin
// the identical pattern with a deterministic per-sequence loss injector
// on an otherwise clean path (see DESIGN.md §3).
func Figure5(cfg Figure5Config) (*Figure5Result, error) {
	res, err := Run(NewFigure5Experiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*Figure5Result), nil
}

// Figure5Experiment adapts the burst-loss comparison to the Experiment
// interface: one job per variant. When the config carries a telemetry
// bus, each job captures its event stream into a private ring and
// Reduce republishes the streams in variant order — the bus itself is
// never touched from a worker goroutine.
type Figure5Experiment struct {
	cfg Figure5Config
}

// NewFigure5Experiment fills defaults and returns the experiment.
func NewFigure5Experiment(cfg Figure5Config) *Figure5Experiment {
	cfg.fillDefaults()
	return &Figure5Experiment{cfg: cfg}
}

// Name implements Experiment.
func (e *Figure5Experiment) Name() string { return "fig5" }

// figure5Out is one variant's outcome plus its captured event stream
// and, when flow analytics are on, the variant's flow summary.
type figure5Out struct {
	Row    Figure5Row
	Events []telemetry.Event
	Flow   *flowstats.Summary `json:",omitempty"`
}

// DecodeResult implements ResultCodec: it reconstructs one job's
// figure5Out from a checkpoint-journal record, so an interrupted fig5
// sweep can resume. The captured event stream rides along, which is
// why a resumed run's republished NDJSON telemetry stays byte-identical
// to an uninterrupted one.
func (e *Figure5Experiment) DecodeResult(data []byte) (any, error) {
	var out figure5Out
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("figure 5: decode checkpointed result: %w", err)
	}
	return out, nil
}

// Jobs implements Experiment.
func (e *Figure5Experiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	capture := cfg.Telemetry.Enabled()
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		jobs = append(jobs, sweep.Job{
			Name: kind.String(),
			Seed: cfg.Seed,
			Run: func(int64) (any, error) {
				var ring *telemetry.Ring
				var table *flowstats.FlowTable
				var sinks []telemetry.Sink
				if capture {
					ring = telemetry.NewRing(0)
					sinks = append(sinks, ring)
				}
				if cfg.FlowStats {
					table = flowstats.New(flowstats.Config{
						Exemplars: cfg.FlowExemplars,
						Seed:      cfg.Seed,
					})
					sinks = append(sinks, table)
				}
				var bus *telemetry.Bus
				if len(sinks) > 0 {
					bus = telemetry.NewBus(sinks...)
				}
				row, err := figure5Run(cfg, kind, bus)
				if err != nil {
					return nil, fmt.Errorf("figure 5 (%v): %w", kind, err)
				}
				out := figure5Out{Row: row}
				if ring != nil {
					out.Events = ring.Events()
				}
				if table != nil {
					table.Finalize()
					s := table.Summary()
					out.Flow = &s
				}
				return out, nil
			},
		})
	}
	return jobs, nil
}

// Reduce implements Experiment: it collects the rows in variant order
// and forwards each job's captured events to the configured bus.
func (e *Figure5Experiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[figure5Out](results)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Config: e.cfg}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.Row)
		for _, ev := range out.Events {
			e.cfg.Telemetry.Publish(ev)
		}
		if out.Flow != nil {
			if res.Flows == nil {
				res.Flows = &flowstats.Summary{}
			}
			res.Flows.Merge(*out.Flow)
		}
	}
	return res, nil
}

func figure5Run(cfg Figure5Config, kind workload.Kind, bus *telemetry.Bus) (Figure5Row, error) {
	sched := sim.NewScheduler(cfg.Seed)
	loss := netem.NewSeqLoss(nil)
	mss := int64(tcp.DefaultMSS)
	for _, pk := range cfg.DropPacketNumbers() {
		loss.Drop(0, pk*mss)
	}

	// Paper Table 3: 8-packet bottleneck buffer. The receiver window is
	// sized to BDP (~10 packets) + buffer so the flow can fill the pipe
	// without organic drops: the engineered SeqLoss pattern is then the
	// only loss event, exactly as the paper's tuned background traffic
	// arranged (DESIGN.md §3).
	dcfg := netem.PaperDropTailConfig(1)
	dcfg.Loss = loss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return Figure5Row{}, err
	}
	if bus.Enabled() {
		d.Instrument(bus)
		telemetry.AttachSchedulerProfile(sched, bus, 4096)
	}

	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:            kind,
		Bytes:           int64(cfg.TransferPackets) * mss,
		Window:          18,
		InitialSSThresh: 9,
		Telemetry:       bus,
	})
	if err != nil {
		return Figure5Row{}, err
	}
	if bus.Enabled() {
		sampler := telemetry.NewSampler(sched, bus, cfg.SampleEvery)
		sampler.AddFlow(0, flow.Sender)
		sampler.AddInstance(telemetry.CompQueue, "fwd", d.BottleneckQueue())
		sampler.Start()
	}

	const horizon = 60 * time.Second
	sched.Run(horizon)

	row := Figure5Row{
		Variant:     kind,
		Timeouts:    flow.Trace.Timeouts,
		Retransmits: flow.Trace.Retransmits,
	}
	if delay, ok := flow.Trace.TransferDelay(); ok {
		row.Finished = true
		row.TransferDelay = delay
		row.GoodputBps = float64(cfg.TransferPackets) * float64(mss) * 8 / delay.Seconds()
	}
	// Recovery-period goodput: from entering fast retransmit to the
	// end of the transfer (the tail of the transfer is dominated by how
	// well the variant recovers).
	if recs := flow.Trace.SamplesOf(trace.EvRecovery); len(recs) > 0 && row.Finished {
		_, doneAt := flow.Trace.Finished()
		row.RecoveryGoodputBps = flow.Trace.GoodputBps(recs[0].At, doneAt)
	}
	return row, nil
}

// figure5TraceRun repeats one run and returns the raw trace samples,
// for diagnostics and tests.
func figure5TraceRun(cfg Figure5Config, kind workload.Kind) ([]trace.Sample, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler(cfg.Seed)
	loss := netem.NewSeqLoss(nil)
	mss := int64(tcp.DefaultMSS)
	for _, pk := range cfg.DropPacketNumbers() {
		loss.Drop(0, pk*mss)
	}
	dcfg := netem.PaperDropTailConfig(1)
	dcfg.Loss = loss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return nil, err
	}
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:            kind,
		Bytes:           int64(cfg.TransferPackets) * mss,
		Window:          18,
		InitialSSThresh: 9,
	})
	if err != nil {
		return nil, err
	}
	sched.Run(60 * time.Second)
	return flow.Trace.Samples(), nil
}

// Render returns the Figure 5 result as a text table.
func (r *Figure5Result) Render() string {
	t := Table{
		Title: fmt.Sprintf("Figure 5: effective throughput, %d packet losses in one window (drop-tail)",
			r.Config.Drops),
		Header: []string{"variant", "transfer delay", "goodput", "recovery goodput", "timeouts", "rtx"},
	}
	for _, row := range r.Rows {
		delay := "DNF"
		goodput := "-"
		rec := "-"
		if row.Finished {
			delay = fmt.Sprintf("%.3fs", row.TransferDelay.Seconds())
			goodput = kbps(row.GoodputBps)
			rec = kbps(row.RecoveryGoodputBps)
		}
		t.AddRow(row.Variant.String(), delay, goodput, rec,
			fmt.Sprintf("%d", row.Timeouts), fmt.Sprintf("%d", row.Retransmits))
	}
	if r.Flows != nil {
		return t.String() + "\n" + r.Flows.Report().Render()
	}
	return t.String()
}

// Row returns the row for a variant, if present.
func (r *Figure5Result) Row(kind workload.Kind) (Figure5Row, bool) {
	for _, row := range r.Rows {
		if row.Variant == kind {
			return row, true
		}
	}
	return Figure5Row{}, false
}
