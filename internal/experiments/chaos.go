package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rrtcp/internal/faults"
	"rrtcp/internal/invariant"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
	"rrtcp/internal/workload"
)

// ChaosCase is one fully self-describing chaos run: a variant, a seed,
// a transfer, and a fault plan. Because every random draw inside the
// run derives from Seed and the plan is embedded, a ChaosCase replays
// bit-identically — it is the unit a repro bundle stores.
type ChaosCase struct {
	Variant string          `json:"variant"`
	Seed    int64           `json:"seed"`
	Bytes   int64           `json:"bytes"`
	Horizon faults.Duration `json:"horizon"`
	Plan    faults.PlanSpec `json:"plan"`
	// Breakage selects a deliberately broken sender for checker
	// self-tests: "" (healthy), "wedge" (stops transmitting mid-flow),
	// or "actnum" (reports an impossible in-flight measure).
	Breakage string `json:"breakage,omitempty"`
}

// ChaosOutcome is what one case produced.
type ChaosOutcome struct {
	// Finished reports whether the transfer completed inside the horizon.
	Finished bool `json:"finished"`
	// Violations holds every invariant breach the checker detected.
	Violations []invariant.Violation `json:"violations,omitempty"`
	// Events is the tail of the run's event stream (the repro ring).
	Events []telemetry.Event `json:"-"`
}

// brokenWedge wraps a healthy strategy but, once the transfer passes
// the wedge point, consumes every new ACK without ever transmitting
// again: the flight drains, the retransmission timer is never re-armed,
// and the connection silently deadlocks. The invariant checker's
// watchdog must flag it as "stall-no-timer".
type brokenWedge struct {
	inner   tcp.Strategy
	wedgeAt int64
}

func (b *brokenWedge) Name() string { return b.inner.Name() + "+wedge" }

func (b *brokenWedge) OnAck(s *tcp.Sender, ev tcp.AckEvent) {
	if !ev.IsDup && s.SndUna() >= b.wedgeAt {
		s.AdvanceUna(ev.AckNo)
		return
	}
	b.inner.OnAck(s, ev)
}

func (b *brokenWedge) OnTimeout(s *tcp.Sender) { b.inner.OnTimeout(s) }

// newBreakage builds the deliberately broken strategy for a case, or
// nil for a healthy run.
func newBreakage(c ChaosCase, healthy tcp.Strategy) (tcp.Strategy, error) {
	switch c.Breakage {
	case "":
		return nil, nil
	case "wedge":
		return &brokenWedge{inner: healthy, wedgeAt: c.Bytes / 2}, nil
	case "actnum":
		return &liarStrategy{Strategy: healthy}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown breakage %q", c.Breakage)
	}
}

// liarStrategy delegates all behavior but implements the checker's
// RecoveryProbe with an impossible Actnum.
type liarStrategy struct {
	tcp.Strategy
}

func (l *liarStrategy) InRecovery() bool { return true }
func (l *liarStrategy) InProbe() bool    { return false }
func (l *liarStrategy) Actnum() int      { return -1 }
func (l *liarStrategy) Ndup() int        { return 0 }

// RunChaosCase executes one case and reports what happened. The run is
// deterministic in the case value: identical inputs produce identical
// outcomes, which is what makes repro bundles replayable.
func RunChaosCase(c ChaosCase) (*ChaosOutcome, error) {
	return runChaosCase(c, nil)
}

// runChaosCase is RunChaosCase with extra telemetry sinks subscribed to
// the run's private bus — the hook the chaos sweep uses to fold flow
// lifecycle events into a per-case flowstats table.
func runChaosCase(c ChaosCase, extra []telemetry.Sink) (*ChaosOutcome, error) {
	kind, err := workload.ParseKind(c.Variant)
	if err != nil {
		return nil, err
	}
	if c.Bytes <= 0 {
		return nil, fmt.Errorf("chaos: transfer size must be positive, got %d", c.Bytes)
	}
	if c.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: horizon must be positive, got %v", time.Duration(c.Horizon))
	}

	sched := sim.NewScheduler(c.Seed)
	ring := telemetry.NewRing(512)
	bus := telemetry.NewBus(ring)
	for _, s := range extra {
		bus.Subscribe(s)
	}
	checker := invariant.NewChecker(sched, bus)
	bus.Subscribe(checker)
	// Stop the run at the first violation so the ring tail ends at the
	// failure, making bundles maximally informative.
	checker.OnViolation = func(invariant.Violation) { sched.Stop() }

	dcfg := netem.PaperDropTailConfig(1)
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return nil, err
	}
	d.Instrument(bus)

	spec := workload.FlowSpec{
		Kind:      kind,
		Bytes:     c.Bytes,
		Window:    64,
		Telemetry: bus,
		OnDone:    func() { sched.Stop() },
	}
	if c.Breakage != "" {
		healthy, err := spec.NewStrategy()
		if err != nil {
			return nil, err
		}
		broken, err := newBreakage(c, healthy)
		if err != nil {
			return nil, err
		}
		spec.Strategy = broken
	}
	flow, err := workload.Install(sched, d, 0, spec)
	if err != nil {
		return nil, err
	}
	checker.WatchSender(flow.Sender)
	if err := checker.StartWatchdog(0, 0, 0); err != nil {
		return nil, err
	}

	if err := c.Plan.Apply(sched, d, sched.DeriveRand("faults"), bus); err != nil {
		return nil, err
	}

	sched.Run(c.Horizon.D())
	return &ChaosOutcome{
		Finished:   flow.Sender.Done(),
		Violations: checker.Violations(),
		Events:     ring.Events(),
	}, nil
}

// ChaosConfig parameterizes a chaos sweep: N seeded-random fault
// schedules, each run against every variant.
type ChaosConfig struct {
	// Schedules is the number of random fault schedules (default 100).
	Schedules int `json:"schedules"`
	// Seed drives schedule generation and per-case seeds (default 1).
	Seed int64 `json:"seed"`
	// Variants to sweep (default: all).
	Variants []workload.Kind `json:"variants"`
	// Bytes is the per-flow transfer size (default 200 kB).
	Bytes int64 `json:"bytes"`
	// Horizon bounds each run in simulated time (default 120 s).
	Horizon sim.Time `json:"horizonNs"`
	// BundleDir, when set, receives a repro bundle per violating case.
	BundleDir string `json:"bundleDir,omitempty"`
	// FlowStats enables the aggregate flow-analytics layer: each case
	// folds its flow lifecycle events into a flowstats.FlowTable and the
	// result carries the merged Summary (see FlowReport), byte-identical
	// at any worker count.
	FlowStats bool `json:"flowStats,omitempty"`
	// FlowExemplars caps the reservoir of exemplar flows each case's
	// table retains in full detail (0: aggregates only).
	FlowExemplars int `json:"flowExemplars,omitempty"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *ChaosConfig) fillDefaults() {
	if c.Schedules <= 0 {
		c.Schedules = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Variants) == 0 {
		c.Variants = workload.Kinds()
	}
	if c.Bytes <= 0 {
		c.Bytes = 200 * 1000
	}
	if c.Horizon <= 0 {
		c.Horizon = 120 * time.Second
	}
}

// ChaosVariantStats aggregates one variant's results across schedules.
type ChaosVariantStats struct {
	Variant  workload.Kind `json:"variant"`
	Runs     int           `json:"runs"`
	Finished int           `json:"finished"`
	Violated int           `json:"violated"`
}

// ChaosFailure pairs a violating case with its first violation (and the
// bundle path, when bundles are enabled).
type ChaosFailure struct {
	Case      ChaosCase           `json:"case"`
	Violation invariant.Violation `json:"violation"`
	Bundle    string              `json:"bundle,omitempty"`
}

// ChaosResult is the full sweep outcome.
type ChaosResult struct {
	Config   ChaosConfig         `json:"config"`
	Stats    []ChaosVariantStats `json:"stats"`
	Failures []ChaosFailure      `json:"failures,omitempty"`
	// Flows is the merged flow-analytics summary across cases, set when
	// Config.FlowStats is on.
	Flows *flowstats.Summary `json:"flows,omitempty"`
}

// FlowReport computes the flow-analytics report, or a zero report when
// flow stats were not enabled.
func (r *ChaosResult) FlowReport() flowstats.Report {
	if r.Flows == nil {
		return flowstats.Report{}
	}
	return r.Flows.Report()
}

// Violated reports the total number of violating runs.
func (r *ChaosResult) Violated() int { return len(r.Failures) }

// Chaos sweeps seeded-random fault schedules across the TCP variants,
// watching every run with the invariant checker. Each schedule is
// generated once and run against every variant, so a violation isolates
// to the variant rather than the weather.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	res, err := Run(NewChaosExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*ChaosResult), nil
}

// ChaosExperiment adapts the chaos sweep to the Experiment interface.
// Every case — the fault plan and the case seed — is drawn from the
// master randomness up front, during construction, so the job list is
// fixed before any worker starts and the sweep stays deterministic at
// any worker count. One job per (schedule, variant) case.
type ChaosExperiment struct {
	cfg   ChaosConfig
	cases []ChaosCase
}

// NewChaosExperiment fills defaults, generates every case, and returns
// the experiment.
func NewChaosExperiment(cfg ChaosConfig) *ChaosExperiment {
	cfg.fillDefaults()
	master := rand.New(rand.NewSource(cfg.Seed))
	dcfg := netem.PaperDropTailConfig(1)
	e := &ChaosExperiment{cfg: cfg}
	for s := 0; s < cfg.Schedules; s++ {
		plan := faults.RandomPlanSpec(master, cfg.Horizon, dcfg)
		caseSeed := master.Int63()
		for _, v := range cfg.Variants {
			e.cases = append(e.cases, ChaosCase{
				Variant: v.String(),
				Seed:    caseSeed,
				Bytes:   cfg.Bytes,
				Horizon: faults.Duration(cfg.Horizon),
				Plan:    plan,
			})
		}
	}
	return e
}

// Name implements Experiment.
func (e *ChaosExperiment) Name() string { return "chaos" }

// chaosOut is one case's outcome; the event tail is kept only for
// violating runs, where a bundle may need it.
type chaosOut struct {
	Finished   bool
	Violations []invariant.Violation
	Events     []telemetry.Event
	Flow       *flowstats.Summary `json:",omitempty"`
}

// DecodeResult implements ResultCodec: it reconstructs one job's
// chaosOut from a checkpoint-journal record, so an interrupted chaos
// sweep can resume. chaosOut round-trips through JSON exactly —
// invariant.Violation and telemetry.Event are both plain exported-field
// structs — which is what keeps the resumed reduce byte-identical.
func (e *ChaosExperiment) DecodeResult(data []byte) (any, error) {
	var out chaosOut
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("chaos: decode checkpointed result: %w", err)
	}
	return out, nil
}

// Jobs implements Experiment.
func (e *ChaosExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	variants := len(cfg.Variants)
	jobs := make([]sweep.Job, len(e.cases))
	for i, c := range e.cases {
		jobs[i] = sweep.Job{
			Name: fmt.Sprintf("s%d %s", i/variants, c.Variant),
			Seed: c.Seed,
			Run: func(int64) (any, error) {
				var table *flowstats.FlowTable
				var extra []telemetry.Sink
				if cfg.FlowStats {
					table = flowstats.New(flowstats.Config{
						Exemplars: cfg.FlowExemplars,
						Seed:      c.Seed,
					})
					extra = append(extra, table)
				}
				out, err := runChaosCase(c, extra)
				if err != nil {
					return nil, fmt.Errorf("chaos: schedule %d, %s: %w", i/variants, c.Variant, err)
				}
				o := chaosOut{Finished: out.Finished, Violations: out.Violations}
				if len(out.Violations) > 0 {
					o.Events = out.Events
				}
				if table != nil {
					table.Finalize()
					s := table.Summary()
					o.Flow = &s
				}
				return o, nil
			},
		}
	}
	return jobs, nil
}

// Reduce implements Experiment: per-variant stats accumulate in case
// order and repro bundles are written sequentially here, never from a
// worker goroutine.
func (e *ChaosExperiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[chaosOut](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &ChaosResult{Config: cfg}
	stats := make([]ChaosVariantStats, len(cfg.Variants))
	for i, v := range cfg.Variants {
		stats[i] = ChaosVariantStats{Variant: v}
	}
	for idx, out := range outs {
		i := idx % len(cfg.Variants)
		c := e.cases[idx]
		stats[i].Runs++
		if out.Finished {
			stats[i].Finished++
		}
		if out.Flow != nil {
			if res.Flows == nil {
				res.Flows = &flowstats.Summary{}
			}
			res.Flows.Merge(*out.Flow)
		}
		if len(out.Violations) > 0 {
			stats[i].Violated++
			f := ChaosFailure{Case: c, Violation: out.Violations[0]}
			if cfg.BundleDir != "" {
				path, err := WriteBundle(cfg.BundleDir, &Bundle{
					Case:      c,
					Violation: out.Violations[0],
					Events:    out.Events,
				})
				if err != nil {
					return nil, err
				}
				f.Bundle = path
			}
			res.Failures = append(res.Failures, f)
		}
	}
	res.Stats = stats
	return res, nil
}

// Render formats the sweep as a table.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep: %d schedules x %d variants (seed %d, %v horizon, %d-byte transfers)\n",
		r.Config.Schedules, len(r.Config.Variants), r.Config.Seed, r.Config.Horizon, r.Config.Bytes)
	fmt.Fprintf(&b, "%-10s %8s %10s %10s\n", "variant", "runs", "finished", "violated")
	for _, st := range r.Stats {
		fmt.Fprintf(&b, "%-10s %8d %10d %10d\n", st.Variant, st.Runs, st.Finished, st.Violated)
	}
	if len(r.Failures) == 0 {
		fmt.Fprintf(&b, "no invariant violations\n")
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "VIOLATION %s seed=%d: %s", f.Case.Variant, f.Case.Seed, f.Violation)
		if f.Bundle != "" {
			fmt.Fprintf(&b, " (bundle: %s)", f.Bundle)
		}
		b.WriteByte('\n')
	}
	if r.Flows != nil {
		b.WriteByte('\n')
		b.WriteString(r.Flows.Report().Render())
	}
	return b.String()
}

// Bundle is a replayable record of an invariant violation: the exact
// case (variant, seed, plan — everything the run's determinism hangs
// off), the violation it produced, and the tail of the event stream
// leading up to it.
type Bundle struct {
	Case      ChaosCase           `json:"case"`
	Violation invariant.Violation `json:"violation"`
	Events    []telemetry.Event   `json:"events"`
}

// WriteBundle stores a bundle as JSON under dir, named by variant and
// seed, creating the directory as needed. It returns the file path.
func WriteBundle(dir string, b *Bundle) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: bundle dir: %w", err)
	}
	name := fmt.Sprintf("chaos-%s-%d.json", b.Case.Variant, b.Case.Seed)
	if b.Case.Breakage != "" {
		name = fmt.Sprintf("chaos-%s-%s-%d.json", b.Case.Variant, b.Case.Breakage, b.Case.Seed)
	}
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: encode bundle: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("chaos: write bundle: %w", err)
	}
	return path, nil
}

// LoadBundle reads a bundle written by WriteBundle.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: read bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("chaos: decode bundle %s: %w", path, err)
	}
	return &b, nil
}

// ReplayBundle re-runs a bundle's case and verifies the stored
// violation reproduces: same rule, same flow, same simulated instant.
// It returns the fresh outcome.
func ReplayBundle(b *Bundle) (*ChaosOutcome, error) {
	out, err := RunChaosCase(b.Case)
	if err != nil {
		return nil, err
	}
	if len(out.Violations) == 0 {
		return out, fmt.Errorf("chaos: replay produced no violation (stored: %s)", b.Violation)
	}
	got := out.Violations[0]
	want := b.Violation
	if got.Rule != want.Rule || got.Flow != want.Flow || got.At != want.At {
		return out, fmt.Errorf("chaos: replay diverged: got %s, stored %s", got, want)
	}
	return out, nil
}
