package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/workload"
)

// BurstyConfig parameterizes the correlated-loss sweep. The paper's
// motivation is that Internet losses arrive in bursts (its [18]); this
// experiment holds the mean loss rate fixed and sweeps the mean burst
// length with a Gilbert-Elliott channel, exposing how each recovery
// scheme degrades as the same number of losses clump together — the
// regime RR was designed for.
type BurstyConfig struct {
	// MeanLossRate is the stationary drop probability (default 0.02).
	MeanLossRate float64 `json:"meanLossRate"`
	// BurstLengths to sweep (mean packets per loss burst).
	BurstLengths []float64 `json:"burstLengths"`
	// Variants to compare.
	Variants []workload.Kind `json:"variants"`
	// Duration of each run.
	Duration sim.Time `json:"durationNs"`
	// Seeds to average over.
	Seeds []int64 `json:"seeds"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *BurstyConfig) fillDefaults() {
	if c.MeanLossRate <= 0 {
		c.MeanLossRate = 0.02
	}
	if len(c.BurstLengths) == 0 {
		c.BurstLengths = []float64{1, 2, 4, 8}
	}
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.NewReno, workload.SACK, workload.RR}
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4}
	}
}

// BurstyPoint is one (variant, burst length) measurement.
type BurstyPoint struct {
	Variant workload.Kind `json:"variant"`
	// BurstLength is the configured mean loss-burst length in packets.
	BurstLength float64 `json:"burstLength"`
	// GoodputBps is the mean steady-state goodput.
	GoodputBps float64 `json:"goodputBps"`
	// Timeouts is the mean coarse-timeout count per run.
	Timeouts float64 `json:"timeouts"`
}

// BurstyResult is the full sweep.
type BurstyResult struct {
	Config BurstyConfig  `json:"config"`
	Points []BurstyPoint `json:"points"`
}

// Bursty runs the sweep on the Figure 7 fixed-RTT topology so goodput
// differences come only from the loss process and the recovery scheme.
func Bursty(cfg BurstyConfig) (*BurstyResult, error) {
	res, err := Run(NewBurstyExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*BurstyResult), nil
}

// BurstyExperiment adapts the correlated-loss sweep to the Experiment
// interface: one job per (variant, burst length, seed) cell.
type BurstyExperiment struct {
	cfg BurstyConfig
}

// NewBurstyExperiment fills defaults and returns the experiment.
func NewBurstyExperiment(cfg BurstyConfig) *BurstyExperiment {
	cfg.fillDefaults()
	return &BurstyExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *BurstyExperiment) Name() string { return "bursty" }

// burstyOut is one (variant, burst, seed) run's raw measurement.
type burstyOut struct {
	GoodputBps float64
	Timeouts   uint64
}

// Jobs implements Experiment.
func (e *BurstyExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		for _, burst := range cfg.BurstLengths {
			for _, seed := range cfg.Seeds {
				jobs = append(jobs, sweep.Job{
					Name: fmt.Sprintf("%v L=%g seed=%d", kind, burst, seed),
					Seed: seed,
					Run: func(seed int64) (any, error) {
						gp, to, err := burstyRun(cfg, kind, burst, seed)
						if err != nil {
							return nil, fmt.Errorf("bursty (%v, L=%g): %w", kind, burst, err)
						}
						return burstyOut{GoodputBps: gp, Timeouts: to}, nil
					},
				})
			}
		}
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *BurstyExperiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[burstyOut](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &BurstyResult{Config: cfg}
	i := 0
	for _, kind := range cfg.Variants {
		for _, burst := range cfg.BurstLengths {
			var goodputSum, timeoutSum float64
			for range cfg.Seeds {
				goodputSum += outs[i].GoodputBps
				timeoutSum += float64(outs[i].Timeouts)
				i++
			}
			n := float64(len(cfg.Seeds))
			res.Points = append(res.Points, BurstyPoint{
				Variant:     kind,
				BurstLength: burst,
				GoodputBps:  goodputSum / n,
				Timeouts:    timeoutSum / n,
			})
		}
	}
	return res, nil
}

func burstyRun(cfg BurstyConfig, kind workload.Kind, burst float64, seed int64) (float64, uint64, error) {
	sched := sim.NewScheduler(seed)
	// Gilbert parameters for mean rate r and mean burst length L (with
	// PDropBad = 1): PBadToGood = 1/L, PGoodToBad = r/(L·(1−r)).
	r := cfg.MeanLossRate
	pB2G := 1 / burst
	pG2B := r * pB2G / (1 - r)
	loss := netem.NewGilbertLoss(pG2B, pB2G, 1.0, sched.Rand(), nil)

	sideDelay := 1 * time.Millisecond
	dcfg := netem.DumbbellConfig{
		Flows:           1,
		BottleneckBps:   10e6,
		BottleneckDelay: 98 * time.Millisecond,
		SideBps:         100e6,
		SideDelay:       sideDelay,
		ForwardQueue:    netem.Must(netem.NewDropTail(1000)),
		Loss:            loss,
	}
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return 0, 0, err
	}
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:   kind,
		Bytes:  tcp.Infinite,
		Window: 64,
	})
	if err != nil {
		return 0, 0, err
	}
	sched.Run(cfg.Duration)
	return flow.Trace.GoodputBps(5*time.Second, cfg.Duration), flow.Trace.Timeouts, nil
}

// Render returns the sweep as a table: one row per burst length, one
// goodput column per variant.
func (r *BurstyResult) Render() string {
	t := Table{
		Title: fmt.Sprintf("Bursty (Gilbert) loss at fixed mean rate %.1f%%: goodput vs burst length",
			r.Config.MeanLossRate*100),
		Header: []string{"burst len"},
	}
	for _, k := range r.Config.Variants {
		t.Header = append(t.Header, k.String(), k.String()+" TOs")
	}
	for _, burst := range r.Config.BurstLengths {
		row := []string{fmt.Sprintf("%.0f", burst)}
		for _, k := range r.Config.Variants {
			for _, pt := range r.Points {
				if pt.Variant == k && pt.BurstLength == burst {
					row = append(row, kbps(pt.GoodputBps), fmt.Sprintf("%.1f", pt.Timeouts))
				}
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Point returns the measurement for (variant, burst length).
func (r *BurstyResult) Point(kind workload.Kind, burst float64) (BurstyPoint, bool) {
	for _, pt := range r.Points {
		if pt.Variant == kind && pt.BurstLength == burst {
			return pt, true
		}
	}
	return BurstyPoint{}, false
}
