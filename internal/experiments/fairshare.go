package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/workload"
)

// FairShareConfig parameterizes the §2.3 fair-share experiment. The
// paper asserts: "if a fair share is given to each flow at the routers,
// the loss probability of an ACK packet should be much smaller than
// that of a data packet", because a 40-byte ACK stream consumes far
// less than a 1000-byte data stream. We congest the reverse (ACK) path
// with a constant-bit-rate data flow and compare a FIFO drop-tail
// gateway against a deficit-round-robin fair queue.
type FairShareConfig struct {
	// Variant of the measured TCP flow.
	Variant workload.Kind `json:"variant"`
	// TransferPackets is the forward transfer size in packets.
	TransferPackets int `json:"transferPackets"`
	// CBRFraction is the reverse-path background load as a fraction of
	// the reverse bottleneck rate (default 1.25 — overload, so a FIFO
	// gateway must drop a share of everything including ACKs).
	CBRFraction float64 `json:"cbrFraction"`
	// ReverseBuffer is the reverse gateway buffer in packets.
	ReverseBuffer int `json:"reverseBuffer"`
	// Horizon caps each run.
	Horizon sim.Time `json:"horizonNs"`
	// Seed drives the scheduler.
	Seed int64 `json:"seed"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *FairShareConfig) fillDefaults() {
	if c.Variant == 0 {
		c.Variant = workload.RR
	}
	if c.TransferPackets <= 0 {
		c.TransferPackets = 200
	}
	if c.CBRFraction <= 0 {
		c.CBRFraction = 1.25
	}
	if c.ReverseBuffer <= 0 {
		c.ReverseBuffer = 10
	}
	if c.Horizon <= 0 {
		c.Horizon = 300 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FairShareRow is one gateway discipline's outcome.
type FairShareRow struct {
	Discipline string `json:"discipline"`
	// AckLossRate is the fraction of receiver-generated ACKs that never
	// reached the sender.
	AckLossRate float64 `json:"ackLossRate"`
	// TransferDelay is the forward transfer's completion time.
	TransferDelay sim.Time `json:"transferDelayNs"`
	// Timeouts counts the sender's coarse timeouts.
	Timeouts uint64 `json:"timeouts"`
	// Finished reports completion within the horizon.
	Finished bool `json:"finished"`
}

// FairShareResult compares FIFO and DRR on the reverse path.
type FairShareResult struct {
	Config FairShareConfig `json:"config"`
	Rows   []FairShareRow  `json:"rows"`
}

// FairShare runs the experiment once per gateway discipline.
func FairShare(cfg FairShareConfig) (*FairShareResult, error) {
	res, err := Run(NewFairShareExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*FairShareResult), nil
}

// FairShareExperiment adapts the gateway comparison to the Experiment
// interface: one job per reverse-path discipline.
type FairShareExperiment struct {
	cfg FairShareConfig
}

// NewFairShareExperiment fills defaults and returns the experiment.
func NewFairShareExperiment(cfg FairShareConfig) *FairShareExperiment {
	cfg.fillDefaults()
	return &FairShareExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *FairShareExperiment) Name() string { return "fairshare" }

// Jobs implements Experiment.
func (e *FairShareExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, disc := range []string{"fifo", "drr"} {
		jobs = append(jobs, sweep.Job{
			Name: disc,
			Seed: cfg.Seed,
			Run: func(seed int64) (any, error) {
				row, err := fairShareRun(cfg, disc, seed)
				if err != nil {
					return nil, fmt.Errorf("fair share (%s): %w", disc, err)
				}
				return row, nil
			},
		})
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *FairShareExperiment) Reduce(results []any) (Renderable, error) {
	rows, err := sweep.Collect[FairShareRow](results)
	if err != nil {
		return nil, err
	}
	return &FairShareResult{Config: e.cfg, Rows: rows}, nil
}

func fairShareRun(cfg FairShareConfig, disc string, seed int64) (FairShareRow, error) {
	sched := sim.NewScheduler(seed)
	dcfg := netem.PaperDropTailConfig(1)
	// Keep the forward path loss-free so the only impairment is the
	// congested ACK path.
	dcfg.ForwardQueue = netem.Must(netem.NewDropTail(100))
	switch disc {
	case "drr":
		dcfg.ReverseQueue = netem.Must(netem.NewDRR(500, cfg.ReverseBuffer))
	default:
		dcfg.ReverseQueue = netem.Must(netem.NewDropTail(cfg.ReverseBuffer))
	}
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return FairShareRow{}, err
	}

	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:   cfg.Variant,
		Bytes:  int64(cfg.TransferPackets) * 1000,
		Window: 18,
	})
	if err != nil {
		return FairShareRow{}, err
	}

	// Background data saturating the reverse bottleneck. Flow ID 1000
	// has no route at R1's demux, so the packets vanish after consuming
	// reverse bandwidth and buffer — pure cross traffic.
	cbr := netem.NewCBR(sched, 1000, cfg.CBRFraction*dcfg.BottleneckBps, 1000, d.ReverseLink())
	if err := cbr.Start(0); err != nil {
		return FairShareRow{}, err
	}

	sched.Run(cfg.Horizon)

	row := FairShareRow{Discipline: disc, Timeouts: flow.Trace.Timeouts}
	// Without delayed ACKs the receiver emits exactly one ACK per data
	// segment it processes.
	acksSent := float64(flow.Receiver.Segments)
	acksGot := float64(len(flow.Trace.SamplesOf(ackRecvKind)))
	if acksSent > 0 {
		row.AckLossRate = 1 - acksGot/acksSent
		if row.AckLossRate < 0 {
			row.AckLossRate = 0
		}
	}
	if delay, ok := flow.Trace.TransferDelay(); ok {
		row.Finished = true
		row.TransferDelay = delay
	}
	return row, nil
}

// Render returns the comparison as a text table.
func (r *FairShareResult) Render() string {
	t := Table{
		Title: fmt.Sprintf("§2.3 fair share: %s transfer with the ACK path saturated by CBR cross-traffic",
			r.Config.Variant),
		Header: []string{"reverse gateway", "ACK loss", "transfer delay", "timeouts"},
	}
	for _, row := range r.Rows {
		delay := "DNF"
		if row.Finished {
			delay = fmt.Sprintf("%.3fs", row.TransferDelay.Seconds())
		}
		t.AddRow(row.Discipline, fmt.Sprintf("%.1f%%", row.AckLossRate*100),
			delay, fmt.Sprintf("%d", row.Timeouts))
	}
	return t.String()
}

// Row returns the outcome for a discipline name.
func (r *FairShareResult) Row(disc string) (FairShareRow, bool) {
	for _, row := range r.Rows {
		if row.Discipline == disc {
			return row, true
		}
	}
	return FairShareRow{}, false
}
