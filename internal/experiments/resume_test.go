package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/workload"
)

// cancelAfter returns a context plus a telemetry sink that cancels it
// once n sweep jobs have completed — a seeded, reproducible stand-in
// for killing the process mid-sweep. The sink runs on the sweep's
// coordinating goroutine, so the cut point is the same every run at
// workers=1 and varies only in which in-flight jobs drain at higher
// counts (which the checkpoint journal absorbs either way).
func cancelAfter(n int) (context.Context, telemetry.Sink) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, cancelSink(func(ev telemetry.Event) {
		if ev.Kind == telemetry.KSweepJob && ev.A >= float64(n) {
			cancel()
		}
	})
}

type cancelSink func(telemetry.Event)

func (f cancelSink) Emit(ev telemetry.Event) { f(ev) }

// assertResumeIdentical is the crash-recovery contract: interrupt a
// checkpointed sweep mid-flight, resume it, and the reduced output must
// be byte-identical to an uninterrupted run — at any worker count.
func assertResumeIdentical(t *testing.T, build func() Experiment, cutAfter int) {
	t.Helper()
	baseRender, baseJSON := runAt(t, build, 1)
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		ctx, sink := cancelAfter(cutAfter)
		_, err := Run(build(), RunOptions{
			Parallel:      workers,
			Context:       ctx,
			Progress:      telemetry.NewBus(sink),
			CheckpointDir: dir,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: interrupted run returned %v, want cancellation", workers, err)
		}

		var restored int
		res, err := Run(build(), RunOptions{
			Parallel:      workers,
			CheckpointDir: dir,
			Resume:        true,
			OnCheckpoint:  func(_ string, r, _ int) { restored = r },
		})
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if restored < cutAfter {
			t.Fatalf("workers=%d: resume restored %d jobs, want >= %d", workers, restored, cutAfter)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if res.Render() != baseRender {
			t.Fatalf("workers=%d: resumed rendering differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
				workers, baseRender, res.Render())
		}
		if string(b) != baseJSON {
			t.Fatalf("workers=%d: resumed JSON differs from uninterrupted run", workers)
		}
	}
}

func TestChaosResumeByteIdentical(t *testing.T) {
	assertResumeIdentical(t, func() Experiment {
		return NewChaosExperiment(ChaosConfig{
			Schedules: 3,
			Seed:      5,
			Variants:  []workload.Kind{workload.SACK, workload.RR, workload.FACK},
			Bytes:     50 * 1000,
			Horizon:   30 * time.Second,
		})
	}, 3)
}

// TestFigure5ResumeTelemetryByteIdentical extends the crash-recovery
// contract to the republished event stream: because each job's captured
// events are journaled inside its result, a resumed figure-5 run must
// emit the same NDJSON telemetry, byte for byte, as an uninterrupted
// one.
func TestFigure5ResumeTelemetryByteIdentical(t *testing.T) {
	variants := []workload.Kind{workload.NewReno, workload.RR, workload.FACK}
	capture := func(run func(e Experiment) error) (string, error) {
		var buf bytes.Buffer
		nd := telemetry.NewNDJSONSink(&buf)
		e := NewFigure5Experiment(Figure5Config{Variants: variants, Telemetry: telemetry.NewBus(nd)})
		err := run(e)
		if cerr := nd.Close(); cerr != nil {
			t.Fatalf("close sink: %v", cerr)
		}
		return buf.String(), err
	}

	// Uninterrupted baseline.
	var baseRender string
	baseEvents, err := capture(func(e Experiment) error {
		res, err := Run(e, RunOptions{Parallel: 1})
		if err == nil {
			baseRender = res.Render()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if baseEvents == "" {
		t.Fatal("baseline run emitted no telemetry")
	}

	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		// Interrupted run: its Reduce never executes, so its own stream
		// is irrelevant; what matters is the journal it leaves.
		ctx, sink := cancelAfter(1)
		_, err := capture(func(e Experiment) error {
			_, err := Run(e, RunOptions{
				Parallel:      workers,
				Context:       ctx,
				Progress:      telemetry.NewBus(sink),
				CheckpointDir: dir,
			})
			return err
		})
		// With more workers than remaining jobs everything is already in
		// flight when the cancel fires, and draining cleanly means the
		// sweep completes — also a valid crash point to resume from.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: interrupted run returned %v, want cancellation or completion", workers, err)
		}

		var resRender string
		resEvents, err := capture(func(e Experiment) error {
			res, err := Run(e, RunOptions{
				Parallel:      workers,
				CheckpointDir: dir,
				Resume:        true,
			})
			if err == nil {
				resRender = res.Render()
			}
			return err
		})
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if resRender != baseRender {
			t.Fatalf("workers=%d: resumed rendering differs from baseline", workers)
		}
		if resEvents != baseEvents {
			t.Fatalf("workers=%d: resumed NDJSON telemetry differs from baseline", workers)
		}
	}
}

// TestRetryTelemetryVisibleInSummary drives the acceptance path for the
// retry harness: a sweep under injected environmental faults completes
// with correct results, and the KSweepRetry events land in the NDJSON
// progress stream where rrtrace's Summarize surfaces them.
func TestRetryTelemetryVisibleInSummary(t *testing.T) {
	build := func() Experiment {
		return NewFigure5Experiment(Figure5Config{
			Variants: []workload.Kind{workload.NewReno, workload.RR},
		})
	}
	baseRender, baseJSON := runAt(t, build, 2)

	var buf bytes.Buffer
	nd := telemetry.NewNDJSONSink(&buf)
	res, err := Run(build(), RunOptions{
		Parallel:      2,
		Progress:      telemetry.NewBus(nd),
		Retry:         sweep.RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}},
		FaultInjector: sweep.NewFaultInjector(9, 0.5),
	})
	if err != nil {
		t.Fatalf("sweep under injected faults: %v", err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Render() != baseRender {
		t.Fatal("fault injection changed the experiment's output")
	}
	b, _ := json.Marshal(res)
	if string(b) != baseJSON {
		t.Fatal("fault injection changed the experiment's JSON")
	}

	recs, err := telemetry.DecodeNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := telemetry.Summarize(recs)
	if len(sum.Sweeps) != 1 || sum.Sweeps[0].Retries == 0 {
		t.Fatalf("summary did not count retries: %+v", sum.Sweeps)
	}
	if !bytes.Contains([]byte(sum.Render()), []byte("resilience:")) {
		t.Fatalf("summary render missing the resilience line:\n%s", sum.Render())
	}
}

// TestRunCheckpointRequiresCodec pins the failure mode for experiments
// that cannot round-trip their results.
func TestRunCheckpointRequiresCodec(t *testing.T) {
	e := NewFigure6Experiment(Figure6Config{})
	_, err := Run(e, RunOptions{CheckpointDir: t.TempDir()})
	if err == nil || !containsAll(err.Error(), "fig6", "checkpoint") {
		t.Fatalf("got %v, want a no-codec error naming the experiment", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !bytes.Contains([]byte(s), []byte(sub)) {
			return false
		}
	}
	return true
}
