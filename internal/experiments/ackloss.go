package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/workload"
)

// AckLossConfig parameterizes the Section 2.3 robustness scenario: the
// paper argues RR degrades only linearly when ACK losses falsely signal
// further data losses, while New-Reno's ACK-clocked recovery stalls.
// We run the Figure 5 burst-loss transfer with additional uniform ACK
// losses on the reverse path.
type AckLossConfig struct {
	// AckLossRates to sweep.
	AckLossRates []float64 `json:"ackLossRates"`
	// Drops within the data window (as in Figure 5).
	Drops int `json:"drops"`
	// Variants to compare.
	Variants []workload.Kind `json:"variants"`
	// TransferPackets is the flow's limited data, in packets.
	TransferPackets int `json:"transferPackets"`
	// Seeds to average over.
	Seeds []int64 `json:"seeds"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *AckLossConfig) fillDefaults() {
	if len(c.AckLossRates) == 0 {
		c.AckLossRates = []float64{0, 0.05, 0.1, 0.2}
	}
	if c.Drops <= 0 {
		c.Drops = 3
	}
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.NewReno, workload.SACK, workload.RR}
	}
	if c.TransferPackets <= 0 {
		c.TransferPackets = 100
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
}

// AckLossPoint is one (variant, ACK-loss rate) measurement.
type AckLossPoint struct {
	Variant workload.Kind `json:"variant"`
	// AckLossRate is the reverse-path uniform drop probability.
	AckLossRate float64 `json:"ackLossRate"`
	// MeanDelay is the mean transfer delay across seeds (finished runs).
	MeanDelay sim.Time `json:"meanDelayNs"`
	// MeanTimeouts is the mean coarse-timeout count.
	MeanTimeouts float64 `json:"meanTimeouts"`
	// Completed counts runs that finished within the horizon.
	Completed int `json:"completed"`
	// Runs is the number of seeds attempted.
	Runs int `json:"runs"`
}

// AckLossResult is the full sweep.
type AckLossResult struct {
	Config AckLossConfig  `json:"config"`
	Points []AckLossPoint `json:"points"`
}

// AckLoss runs the ACK-loss robustness sweep.
func AckLoss(cfg AckLossConfig) (*AckLossResult, error) {
	res, err := Run(NewAckLossExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*AckLossResult), nil
}

// AckLossExperiment adapts the ACK-loss sweep to the Experiment
// interface: one job per (variant, ACK-loss rate, seed) cell.
type AckLossExperiment struct {
	cfg AckLossConfig
}

// NewAckLossExperiment fills defaults and returns the experiment.
func NewAckLossExperiment(cfg AckLossConfig) *AckLossExperiment {
	cfg.fillDefaults()
	return &AckLossExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *AckLossExperiment) Name() string { return "ackloss" }

// ackLossOut is one (variant, rate, seed) run's raw measurement.
type ackLossOut struct {
	Delay    sim.Time
	Timeouts uint64
	Finished bool
}

// Jobs implements Experiment.
func (e *AckLossExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		for _, rate := range cfg.AckLossRates {
			for _, seed := range cfg.Seeds {
				jobs = append(jobs, sweep.Job{
					Name: fmt.Sprintf("%v ackloss=%g seed=%d", kind, rate, seed),
					Seed: seed,
					Run: func(seed int64) (any, error) {
						delay, timeouts, finished, err := ackLossRun(cfg, kind, rate, seed)
						if err != nil {
							return nil, fmt.Errorf("ack loss (%v, %g): %w", kind, rate, err)
						}
						return ackLossOut{Delay: delay, Timeouts: timeouts, Finished: finished}, nil
					},
				})
			}
		}
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *AckLossExperiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[ackLossOut](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &AckLossResult{Config: cfg}
	i := 0
	for _, kind := range cfg.Variants {
		for _, rate := range cfg.AckLossRates {
			pt := AckLossPoint{Variant: kind, AckLossRate: rate, Runs: len(cfg.Seeds)}
			var delaySum sim.Time
			var timeoutSum float64
			for range cfg.Seeds {
				out := outs[i]
				i++
				timeoutSum += float64(out.Timeouts)
				if out.Finished {
					pt.Completed++
					delaySum += out.Delay
				}
			}
			if pt.Completed > 0 {
				pt.MeanDelay = delaySum / sim.Time(pt.Completed)
			}
			pt.MeanTimeouts = timeoutSum / float64(len(cfg.Seeds))
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func ackLossRun(cfg AckLossConfig, kind workload.Kind, rate float64, seed int64) (sim.Time, uint64, bool, error) {
	sched := sim.NewScheduler(seed)
	dataLoss := netem.NewSeqLoss(nil)
	const mss = int64(1000)
	for i := 0; i < cfg.Drops; i++ {
		dataLoss.Drop(0, (35+int64(i))*mss)
	}
	dcfg := netem.PaperDropTailConfig(1)
	dcfg.ForwardQueue = netem.Must(netem.NewDropTail(100))
	dcfg.Loss = dataLoss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return 0, 0, false, err
	}
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:   kind,
		Bytes:  int64(cfg.TransferPackets) * mss,
		Window: 64,
	})
	if err != nil {
		return 0, 0, false, err
	}
	// Interpose the ACK dropper between the receiver and its uplink.
	ackLoss := netem.NewUniformLoss(rate, sched.Rand(), d.ReceiverPort(0))
	ackLoss.DropAcks = true
	flow.Receiver.SetOutput(ackLoss)

	sched.Run(120 * time.Second)
	delay, ok := flow.Trace.TransferDelay()
	return delay, flow.Trace.Timeouts, ok, nil
}

// Render returns the sweep as a text table.
func (r *AckLossResult) Render() string {
	t := Table{
		Title:  fmt.Sprintf("Section 2.3: ACK-loss robustness (%d data drops in one window)", r.Config.Drops),
		Header: []string{"variant", "ack loss", "mean delay", "mean timeouts", "completed"},
	}
	for _, pt := range r.Points {
		delay := "DNF"
		if pt.Completed > 0 {
			delay = fmt.Sprintf("%.3fs", pt.MeanDelay.Seconds())
		}
		t.AddRow(pt.Variant.String(), fmt.Sprintf("%.0f%%", pt.AckLossRate*100),
			delay, fmt.Sprintf("%.1f", pt.MeanTimeouts),
			fmt.Sprintf("%d/%d", pt.Completed, pt.Runs))
	}
	return t.String()
}
