package experiments

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// The tests in this file assert the *shape* of the paper's results:
// who wins, who times out, where the crossovers fall. Absolute numbers
// are environment-specific (DESIGN.md §4).

func TestFigure5ThreeDropsShape(t *testing.T) {
	res, err := Figure5(Figure5Config{Drops: 3})
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := res.Row(workload.RR)
	sack, _ := res.Row(workload.SACK)
	newreno, _ := res.Row(workload.NewReno)
	tahoe, _ := res.Row(workload.Tahoe)
	for _, row := range res.Rows {
		if !row.Finished {
			t.Fatalf("%v did not finish", row.Variant)
		}
		if row.Timeouts != 0 {
			t.Fatalf("%v timed out on a 3-packet burst", row.Variant)
		}
	}
	// RR and SACK clearly outperform New-Reno and Tahoe is no better
	// than the rest (paper Figure 5, left).
	if rr.GoodputBps <= newreno.GoodputBps {
		t.Fatalf("RR (%.0f) not above New-Reno (%.0f)", rr.GoodputBps, newreno.GoodputBps)
	}
	if sack.GoodputBps <= newreno.GoodputBps {
		t.Fatalf("SACK (%.0f) not above New-Reno (%.0f)", sack.GoodputBps, newreno.GoodputBps)
	}
	// RR performs at least as well as SACK within a small tolerance
	// ("achieves at least as much performance improvements as SACK").
	if rr.GoodputBps < sack.GoodputBps*0.97 {
		t.Fatalf("RR (%.0f) more than 3%% below SACK (%.0f)", rr.GoodputBps, sack.GoodputBps)
	}
	if tahoe.GoodputBps > rr.GoodputBps {
		t.Fatalf("Tahoe (%.0f) above RR (%.0f)", tahoe.GoodputBps, rr.GoodputBps)
	}
}

func TestFigure5SixDropsShape(t *testing.T) {
	res, err := Figure5(Figure5Config{Drops: 6})
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := res.Row(workload.RR)
	sack, _ := res.Row(workload.SACK)
	newreno, _ := res.Row(workload.NewReno)
	tahoe, _ := res.Row(workload.Tahoe)
	if rr.Timeouts != 0 {
		t.Fatal("RR timed out on a 6-packet burst")
	}
	// Paper Figure 5 (right): Tahoe is more robust than New-Reno under
	// heavy burst loss; RR stays at least on par with SACK.
	if tahoe.GoodputBps <= newreno.GoodputBps {
		t.Fatalf("Tahoe (%.0f) not above New-Reno (%.0f) at 6 drops",
			tahoe.GoodputBps, newreno.GoodputBps)
	}
	if rr.GoodputBps <= newreno.GoodputBps {
		t.Fatalf("RR (%.0f) not above New-Reno (%.0f)", rr.GoodputBps, newreno.GoodputBps)
	}
	if rr.GoodputBps < sack.GoodputBps*0.97 {
		t.Fatalf("RR (%.0f) more than 3%% below SACK (%.0f)", rr.GoodputBps, sack.GoodputBps)
	}
}

func TestFigure5HeavyBurstRRWinsOutright(t *testing.T) {
	// Beyond half the window the classic SACK pipe stalls into a
	// timeout while RR keeps its ACK clock — the robustness headline.
	res, err := Figure5(Figure5Config{Drops: 8})
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := res.Row(workload.RR)
	sack, _ := res.Row(workload.SACK)
	if rr.Timeouts != 0 {
		t.Fatal("RR timed out at 8 drops")
	}
	if sack.Timeouts == 0 {
		t.Skip("classic SACK did not stall at this window; heavier burst needed")
	}
	if rr.GoodputBps <= sack.GoodputBps {
		t.Fatalf("RR (%.0f) not above stalled SACK (%.0f)", rr.GoodputBps, sack.GoodputBps)
	}
}

func TestFigure5DropPattern(t *testing.T) {
	cfg := Figure5Config{Drops: 6}
	pkts := cfg.DropPacketNumbers()
	if len(pkts) != 6 {
		t.Fatalf("%d drops, want 6", len(pkts))
	}
	// Pairs with single-packet gaps, like the paper's 4,5,7,8 example.
	want := []int64{60, 61, 63, 64, 66, 67}
	for i := range want {
		if pkts[i] != want[i] {
			t.Fatalf("pattern %v, want %v", pkts, want)
		}
	}
}

func TestFigure5Render(t *testing.T) {
	res, err := Figure5(Figure5Config{Drops: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"tahoe", "newreno", "sack", "rr", "3 packet losses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(Figure6Config{})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := res.Panel(workload.RR)
	if !ok {
		t.Fatal("no RR panel")
	}
	newreno, _ := res.Panel(workload.NewReno)
	sack, _ := res.Panel(workload.SACK)
	// Paper Figure 6: RR achieves the highest effective throughput
	// under RED. Flow-1 goodput is noisy even averaged, so assert the
	// robust half of the claim on the aggregate and require flow 1 to
	// be at least competitive.
	if rr.AggregateGoodputBps <= newreno.AggregateGoodputBps ||
		rr.AggregateGoodputBps <= sack.AggregateGoodputBps {
		t.Fatalf("RR aggregate %.0f not highest (newreno %.0f, sack %.0f)",
			rr.AggregateGoodputBps, newreno.AggregateGoodputBps, sack.AggregateGoodputBps)
	}
	if rr.Flow0GoodputBps < 0.85*newreno.Flow0GoodputBps {
		t.Fatalf("RR flow-1 goodput %.0f far below New-Reno %.0f",
			rr.Flow0GoodputBps, newreno.Flow0GoodputBps)
	}
	if len(rr.Flow0Seq) == 0 {
		t.Fatal("no sequence trace for the plot")
	}
}

func TestFigure6RenderIncludesPlots(t *testing.T) {
	res, err := Figure6(Figure6Config{Seeds: []int64{42}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "sequence plot (rr)") {
		t.Fatalf("render missing RR plot:\n%s", out)
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(Figure7Config{
		LossRates: []float64{0.001, 0.01, 0.1},
		Duration:  40 * time.Second,
		Seeds:     []int64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []workload.Kind{workload.SACK, workload.RR} {
		low, _ := res.Point(kind, 0.001)
		mid, _ := res.Point(kind, 0.01)
		high, _ := res.Point(kind, 0.1)
		// Windows decrease with loss rate.
		if !(low.Window > mid.Window && mid.Window > high.Window) {
			t.Fatalf("%v window not decreasing: %v %v %v", kind, low.Window, mid.Window, high.Window)
		}
		// At moderate loss the measurement tracks the model within ~35%.
		if r := mid.Window / mid.ModelWindow; r < 0.65 || r > 1.35 {
			t.Fatalf("%v window/model = %v at p=0.01", kind, r)
		}
		// At heavy loss, timeouts push the window well below the bound
		// (the paper's stated deviation).
		if high.Window > 0.7*high.ModelWindow {
			t.Fatalf("%v window %v did not fall below the bound %v at p=0.1",
				kind, high.Window, high.ModelWindow)
		}
		if high.Timeouts == 0 {
			t.Fatalf("%v reported no timeouts at p=0.1", kind)
		}
	}
}

func TestFigure7RRMatchesSACKFitness(t *testing.T) {
	res, err := Figure7(Figure7Config{
		LossRates: []float64{0.005},
		Duration:  60 * time.Second,
		Seeds:     []int64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := res.Point(workload.RR, 0.005)
	sack, _ := res.Point(workload.SACK, 0.005)
	// "RR achieves the same level of fitness to the model as SACK."
	if r := rr.Window / sack.Window; r < 0.85 || r > 1.15 {
		t.Fatalf("RR/SACK window ratio %v, want ~1", r)
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(Table5Config{})
	if err != nil {
		t.Fatal(err)
	}
	renoReno, _ := res.Row(workload.Reno, workload.Reno)
	rrReno, _ := res.Row(workload.RR, workload.Reno)
	renoRR, _ := res.Row(workload.Reno, workload.RR)
	for _, row := range res.Rows {
		if !row.Finished {
			t.Fatalf("case %q did not finish", row.Case.Label)
		}
	}
	// Paper Table 5: an RR background does NOT hurt a Reno target (it
	// helps, via reduced synchronization) ...
	if rrReno.TransferDelay > renoReno.TransferDelay*11/10 {
		t.Fatalf("RR background hurt the Reno target: %.1fs vs %.1fs",
			rrReno.TransferDelay.Seconds(), renoReno.TransferDelay.Seconds())
	}
	// ... and a single RR flow against Reno background beats the all-
	// Reno baseline without starving anyone.
	if renoRR.TransferDelay >= renoReno.TransferDelay {
		t.Fatalf("RR target (%.1fs) not faster than the Reno baseline (%.1fs)",
			renoRR.TransferDelay.Seconds(), renoReno.TransferDelay.Seconds())
	}
}

func TestTable5Render(t *testing.T) {
	res, err := Table5(Table5Config{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Reno bg / RR target") {
		t.Fatalf("render missing case labels:\n%s", out)
	}
}

func TestAckLossShape(t *testing.T) {
	res, err := AckLoss(AckLossConfig{
		AckLossRates: []float64{0, 0.1},
		Seeds:        []int64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rr0, rr10 AckLossPoint
	for _, pt := range res.Points {
		if pt.Variant == workload.RR && pt.AckLossRate == 0 {
			rr0 = pt
		}
		if pt.Variant == workload.RR && pt.AckLossRate == 0.1 {
			rr10 = pt
		}
	}
	if rr0.Completed != rr0.Runs {
		t.Fatal("RR did not complete without ACK loss")
	}
	// Paper §2.3: rare ACK losses cause only a slight effect.
	if rr10.Completed != rr10.Runs {
		t.Fatal("RR failed to complete under 10% ACK loss")
	}
	if rr10.MeanDelay > rr0.MeanDelay*2 {
		t.Fatalf("10%% ACK loss more than doubled RR's delay: %v vs %v",
			rr10.MeanDelay, rr0.MeanDelay)
	}
}

func TestAblationShape(t *testing.T) {
	res, err := Ablation(3)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]AblationRow, len(res.Rows))
	for _, row := range res.Rows {
		byLabel[row.Variant.Label] = row
		if !row.Finished {
			t.Fatalf("%q did not finish", row.Variant.Label)
		}
	}
	pub := byLabel["rr (published)"]
	noDetect := byLabel["no further-loss detection"]
	bigAck := byLabel["exit to ssthresh (big ACK)"]
	// Further-loss detection must pay for itself.
	if noDetect.TransferDelay <= pub.TransferDelay {
		t.Fatalf("disabling further-loss detection did not hurt: %v vs %v",
			noDetect.TransferDelay, pub.TransferDelay)
	}
	// The ssthresh exit reintroduces a burst at least as large as the
	// published hand-off's.
	if bigAck.ExitBurst < pub.ExitBurst {
		t.Fatalf("ssthresh exit burst %d below published %d", bigAck.ExitBurst, pub.ExitBurst)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "t",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("x", "y")
	tbl.AddRow("longer", "z")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a") || !strings.Contains(lines[1], "bb") {
		t.Fatalf("header wrong: %q", lines[1])
	}
}

func TestFairShareShape(t *testing.T) {
	res, err := FairShare(FairShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fifo, _ := res.Row("fifo")
	drr, _ := res.Row("drr")
	if !fifo.Finished || !drr.Finished {
		t.Fatal("transfers did not finish")
	}
	// §2.3's claim: with per-flow fair sharing the ACK flow's loss
	// probability is far smaller than under FIFO sharing.
	if drr.AckLossRate > fifo.AckLossRate/5 {
		t.Fatalf("DRR ack loss %.1f%% not far below FIFO %.1f%%",
			drr.AckLossRate*100, fifo.AckLossRate*100)
	}
	if fifo.AckLossRate < 0.05 {
		t.Fatalf("FIFO ack loss %.1f%% too low for the scenario to be meaningful",
			fifo.AckLossRate*100)
	}
	if drr.TransferDelay > fifo.TransferDelay {
		t.Fatal("fair queueing did not speed up the ACK-starved transfer")
	}
}

func TestTwoWayShape(t *testing.T) {
	res, err := TwoWay(TwoWayConfig{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := res.Row(workload.RR)
	newreno, _ := res.Row(workload.NewReno)
	if rr.Completed != rr.Runs || newreno.Completed != newreno.Runs {
		t.Fatal("two-way transfers did not complete")
	}
	// RR's recovery must stay at least competitive when real two-way
	// traffic interleaves with its ACK clock.
	if rr.MeanDelay > newreno.MeanDelay*11/10 {
		t.Fatalf("RR (%.2fs) more than 10%% behind New-Reno (%.2fs) under two-way traffic",
			rr.MeanDelay.Seconds(), newreno.MeanDelay.Seconds())
	}
}

func TestSmoothStartShape(t *testing.T) {
	res, err := SmoothStart(SmoothStartConfig{})
	if err != nil {
		t.Fatal(err)
	}
	classic, _ := res.Row(false)
	smooth, _ := res.Row(true)
	if !classic.Finished || !smooth.Finished {
		t.Fatal("transfers did not finish")
	}
	if classic.SlowStartDrops == 0 {
		t.Fatal("classic slow start did not overshoot; the scenario is too gentle")
	}
	// The companion work's claim: the refinement softens the overshoot.
	if smooth.SlowStartDrops >= classic.SlowStartDrops {
		t.Fatalf("smooth-start drops %d not below classic %d",
			smooth.SlowStartDrops, classic.SlowStartDrops)
	}
	if smooth.TransferDelay > classic.TransferDelay*11/10 {
		t.Fatalf("smooth-start cost too much: %v vs %v",
			smooth.TransferDelay, classic.TransferDelay)
	}
}

func TestFigure7DelayedAckFitsOwnConstant(t *testing.T) {
	res, err := Figure7(Figure7Config{
		LossRates:  []float64{0.005},
		Duration:   60 * time.Second,
		Seeds:      []int64{1, 2},
		DelayedAck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := res.Point(workload.SACK, 0.005)
	// With delayed ACKs the model constant is sqrt(3/4): the bound at
	// p=0.005 drops to ~12.2 packets and the measurement must sit near
	// it, clearly below the ACK-every-packet bound (~17.3).
	if pt.ModelWindow > 13 {
		t.Fatalf("model window %v; delayed-ACK constant not applied", pt.ModelWindow)
	}
	if r := pt.Window / pt.ModelWindow; r < 0.6 || r > 1.6 {
		t.Fatalf("window/model = %v under delayed ACKs", r)
	}
}

func TestBurstyShape(t *testing.T) {
	res, err := Bursty(BurstyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// At heavy burstiness (mean burst 8 packets at the same 2% rate),
	// RR's single-signal burst handling must clearly beat New-Reno —
	// the paper's core thesis under a realistic correlated-loss channel.
	rr8, _ := res.Point(workload.RR, 8)
	nr8, _ := res.Point(workload.NewReno, 8)
	sack8, _ := res.Point(workload.SACK, 8)
	if rr8.GoodputBps < 1.5*nr8.GoodputBps {
		t.Fatalf("RR (%.0f) not ≥1.5× New-Reno (%.0f) at burst 8", rr8.GoodputBps, nr8.GoodputBps)
	}
	if rr8.GoodputBps < sack8.GoodputBps {
		t.Fatalf("RR (%.0f) below SACK (%.0f) at burst 8", rr8.GoodputBps, sack8.GoodputBps)
	}
	// At burst 1 the channel is effectively i.i.d. and the schemes are
	// within a band of each other.
	rr1, _ := res.Point(workload.RR, 1)
	nr1, _ := res.Point(workload.NewReno, 1)
	if r := rr1.GoodputBps / nr1.GoodputBps; r < 0.8 || r > 1.25 {
		t.Fatalf("burst-1 ratio rr/newreno = %v, want ~1", r)
	}
}

func TestFigure5TraceRunShowsRRPhases(t *testing.T) {
	samples, err := figure5TraceRun(Figure5Config{Drops: 3}, workload.RR)
	if err != nil {
		t.Fatal(err)
	}
	var sawRecovery, sawProbe, sawExit bool
	for _, s := range samples {
		switch s.Kind {
		case trace.EvRecovery:
			sawRecovery = true
		case trace.EvPhaseFlip:
			sawProbe = true
		case trace.EvExit:
			sawExit = true
		}
	}
	if !sawRecovery || !sawProbe || !sawExit {
		t.Fatalf("RR trace missing phases: recovery=%t probe=%t exit=%t",
			sawRecovery, sawProbe, sawExit)
	}
}
