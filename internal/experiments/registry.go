package experiments

import (
	"context"
	"fmt"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/workload"
)

// Renderable is what every experiment ultimately produces: a structured
// result (JSON-encodable) with a paper-style text rendering.
type Renderable interface {
	Render() string
}

// Experiment is the unified sweep-shaped interface every runner in this
// package implements: an experiment names itself, expands into a flat
// list of independent sweep jobs, and reduces the job results — handed
// back in job-index order — into its figure or table. Because Reduce
// sees results in the same order at any worker count, an experiment's
// output is byte-identical whether the jobs ran sequentially or across
// a pool.
type Experiment interface {
	Name() string
	Jobs() ([]sweep.Job, error)
	Reduce(results []any) (Renderable, error)
}

// Options carries the CLI-facing knobs shared across experiments. Each
// builder maps the fields it understands onto its config and ignores
// the rest; zero values always mean "experiment default".
type Options struct {
	// Seed overrides the experiment's primary seed.
	Seed int64
	// Runs scales repetition where an experiment has a single count
	// (chaos: fault schedules).
	Runs int
	// Drops is the burst size for the engineered-loss experiments
	// (fig5, ablation).
	Drops int
	// Quick shrinks long sweeps for fast runs (fig7).
	Quick bool
	// DelayedAck runs receivers with RFC 1122 delayed ACKs (fig7).
	DelayedAck bool
	// Variants restricts the TCP variants under test.
	Variants []workload.Kind
	// Bytes is the per-flow transfer size (chaos).
	Bytes int64
	// Horizon bounds each run in simulated time (chaos).
	Horizon sim.Time
	// BundleDir receives violation repro bundles (chaos).
	BundleDir string
	// Telemetry receives structured events from experiments that stream
	// them (fig5, stress).
	Telemetry *telemetry.Bus
	// Cells and Flows size the stress soak: independent simulation
	// cells, and concurrent flows per cell.
	Cells int
	Flows int
	// MaxEvents / MaxWall / MaxHeapBytes are the per-cell guard budgets
	// for the stress soak; zero disables each.
	MaxEvents    uint64
	MaxWall      time.Duration
	MaxHeapBytes uint64
	// FlowStats enables the aggregate flow-analytics layer where an
	// experiment supports it (fig5, chaos, stress); FlowExemplars caps
	// the reservoir of fully-detailed exemplar flows.
	FlowStats     bool
	FlowExemplars int
}

// Builder constructs an Experiment from shared options.
type Builder func(Options) (Experiment, error)

// Registration is one named experiment in the registry.
type Registration struct {
	// Name is the CLI subcommand.
	Name string
	// Desc is a one-line description for usage text.
	Desc string
	// Build constructs the experiment.
	Build Builder
}

// registry holds every experiment in canonical (paper) order; rrsim
// derives its dispatch table and usage text from it.
var registry = []Registration{
	{"fig5", "Figure 5: drop-tail burst-loss throughput", func(o Options) (Experiment, error) {
		return NewFigure5Experiment(Figure5Config{
			Drops: o.Drops, Seed: o.Seed, Variants: o.Variants, Telemetry: o.Telemetry,
			FlowStats: o.FlowStats, FlowExemplars: o.FlowExemplars,
		}), nil
	}},
	{"fig6", "Figure 6: RED-gateway sequence traces", func(o Options) (Experiment, error) {
		return NewFigure6Experiment(Figure6Config{Seed: o.Seed, Variants: o.Variants}), nil
	}},
	{"fig7", "Figure 7: square-root-model fitness", func(o Options) (Experiment, error) {
		cfg := Figure7Config{DelayedAck: o.DelayedAck, Variants: o.Variants}
		if o.Quick {
			cfg.LossRates = []float64{0.001, 0.01, 0.05, 0.1}
			cfg.Duration = 30 * time.Second
			cfg.Seeds = []int64{1}
		}
		return NewFigure7Experiment(cfg), nil
	}},
	{"table5", "Table 5: fairness matrix", func(o Options) (Experiment, error) {
		return NewTable5Experiment(Table5Config{Seed: o.Seed}), nil
	}},
	{"ackloss", "§2.3 ACK-loss robustness sweep", func(o Options) (Experiment, error) {
		return NewAckLossExperiment(AckLossConfig{Variants: o.Variants}), nil
	}},
	{"fairshare", "§2.3 fair-share gateways (FIFO vs DRR)", func(o Options) (Experiment, error) {
		return NewFairShareExperiment(FairShareConfig{Seed: o.Seed}), nil
	}},
	{"twoway", "two-way traffic extension", func(o Options) (Experiment, error) {
		return NewTwoWayExperiment(TwoWayConfig{Variants: o.Variants}), nil
	}},
	{"smoothstart", "slow-start overshoot vs Smooth-start [21]", func(o Options) (Experiment, error) {
		return NewSmoothStartExperiment(SmoothStartConfig{Seed: o.Seed}), nil
	}},
	{"bursty", "Gilbert-Elliott correlated-loss sweep", func(o Options) (Experiment, error) {
		return NewBurstyExperiment(BurstyConfig{Variants: o.Variants}), nil
	}},
	{"ablation", "RR design-choice ablations", func(o Options) (Experiment, error) {
		return NewAblationExperiment(o.Drops), nil
	}},
	{"chaos", "seeded-random fault sweep under invariant checking", func(o Options) (Experiment, error) {
		return NewChaosExperiment(ChaosConfig{
			Schedules: o.Runs, Seed: o.Seed, Variants: o.Variants,
			Bytes: o.Bytes, Horizon: o.Horizon, BundleDir: o.BundleDir,
			FlowStats: o.FlowStats, FlowExemplars: o.FlowExemplars,
		}), nil
	}},
	{"stress", "overload soak: many-flow cells under chaos, budgets, and graceful degradation", func(o Options) (Experiment, error) {
		return NewStressExperiment(StressConfig{
			Cells: o.Cells, Flows: o.Flows, Seed: o.Seed, Bytes: o.Bytes,
			Horizon: o.Horizon, Variants: o.Variants, Telemetry: o.Telemetry,
			MaxEvents: o.MaxEvents, MaxWall: o.MaxWall, MaxHeapBytes: o.MaxHeapBytes,
			FlowStats: o.FlowStats, FlowExemplars: o.FlowExemplars,
		}), nil
	}},
}

// Experiments returns the registry in canonical order.
func Experiments() []Registration {
	return append([]Registration(nil), registry...)
}

// Build constructs the named experiment from shared options.
func Build(name string, o Options) (Experiment, error) {
	for _, r := range registry {
		if r.Name == name {
			return r.Build(o)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", name)
}

// RunOptions parameterizes experiment execution, as opposed to the
// experiment definition itself. The zero value of every resilience
// field means "off", matching sweep.Config.
type RunOptions struct {
	// Parallel bounds the sweep worker pool; <= 0 means GOMAXPROCS and
	// 1 forces sequential execution. The result is byte-identical
	// either way.
	Parallel int
	// Progress, when non-nil, receives the sweep's progress events
	// (telemetry.KSweepStart/KSweepJob/KSweepDone, and the resilience
	// kinds KSweepStall/KSweepRetry).
	Progress *telemetry.Bus
	// Context, when non-nil, cancels the sweep: dispatch stops,
	// in-flight jobs drain, and Run returns an error wrapping
	// context.Cause. Completed jobs are still journaled when a
	// checkpoint is active, so a canceled run can be resumed.
	Context context.Context
	// JobTimeout bounds each job attempt's wall-clock time; overruns
	// are transient and retried under Retry.
	JobTimeout time.Duration
	// StallAfter arms the sweep's hung-job watchdog.
	StallAfter time.Duration
	// Retry re-executes transiently failed jobs with capped
	// exponential backoff.
	Retry sweep.RetryPolicy
	// FaultInjector injects environmental faults per (job, attempt) —
	// the chaos hook for exercising the retry path.
	FaultInjector func(index, attempt int) error
	// CheckpointDir, when non-empty, journals completed job results
	// under this directory (content-addressed per sweep identity). The
	// experiment must implement ResultCodec.
	CheckpointDir string
	// Resume restores results journaled by a previous interrupted run
	// instead of starting the checkpoint afresh.
	Resume bool
	// OnCheckpoint, when non-nil, is told where the journal lives and
	// what a resume restored, before the sweep starts.
	OnCheckpoint func(dir string, restored, skipped int)
}

// ResultCodec is implemented by experiments whose job results survive a
// JSON round-trip: DecodeResult must invert json.Marshal of whatever
// the experiment's jobs return, reconstructing the concrete value its
// Reduce expects. Only such experiments can be checkpointed and
// resumed.
type ResultCodec interface {
	DecodeResult(data []byte) (any, error)
}

// Run executes an experiment end to end: expand jobs, sweep them across
// the worker pool, reduce the ordered results. With CheckpointDir set
// the sweep journals completed jobs and, with Resume, skips jobs a
// previous run already finished — the reduced output stays
// byte-identical to an uninterrupted run.
func Run(e Experiment, opt RunOptions) (Renderable, error) {
	jobs, err := e.Jobs()
	if err != nil {
		return nil, err
	}
	cfg := sweep.Config{
		Name:          e.Name(),
		Workers:       opt.Parallel,
		Telemetry:     opt.Progress,
		Context:       opt.Context,
		JobTimeout:    opt.JobTimeout,
		StallAfter:    opt.StallAfter,
		Retry:         opt.Retry,
		FaultInjector: opt.FaultInjector,
	}
	if opt.CheckpointDir != "" {
		codec, ok := e.(ResultCodec)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support checkpointing (no result codec)", e.Name())
		}
		journal, err := sweep.OpenJournal(opt.CheckpointDir, cfg, jobs, opt.Resume, codec.DecodeResult)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
		if opt.OnCheckpoint != nil {
			opt.OnCheckpoint(journal.Dir(), journal.RestoredCount(), journal.Skipped())
		}
		cfg.Checkpoint = journal
	}
	results, err := sweep.Run(cfg, jobs)
	if err != nil {
		return nil, err
	}
	return e.Reduce(results)
}
