package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// Figure6Config parameterizes the RED-gateway experiment (paper §3.3,
// Table 4, Figure 6): ten flows of the same variant share a RED
// bottleneck under heavy congestion and the first flow's sequence-
// number trace is plotted.
type Figure6Config struct {
	// Variants to compare; defaults to the paper's three panels
	// (New-Reno, SACK, RR).
	Variants []workload.Kind `json:"variants"`
	// Flows sharing the bottleneck (paper: 10).
	Flows int `json:"flows"`
	// Duration of the simulation (paper: 6 s).
	Duration sim.Time `json:"durationNs"`
	// Seed for RED's random drops in the run whose trace is plotted.
	Seed int64 `json:"seed"`
	// Seeds, when longer than one entry, are averaged over for the
	// throughput columns (the trace still comes from Seed). RED's
	// random drops make any single 6-second window noisy.
	Seeds []int64 `json:"seeds"`
	// RED overrides the Table 4 gateway parameters when non-nil.
	RED *netem.REDConfig `json:"red,omitempty"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *Figure6Config) fillDefaults() {
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.NewReno, workload.SACK, workload.RR}
	}
	if c.Flows <= 0 {
		c.Flows = 10
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{c.Seed, 43, 44, 45, 46, 47, 48, 49}
	}
}

// Figure6Panel is the outcome for one variant: the first flow's
// sequence trace and throughput, plus aggregate statistics.
type Figure6Panel struct {
	Variant workload.Kind `json:"variant"`
	// Flow0Seq is the (time, packet number) send/retransmit series of
	// the first flow — the paper's sequence plot.
	Flow0Seq []trace.Point `json:"flow0Seq"`
	// Flow0GoodputBps is the first flow's effective throughput over
	// the run.
	Flow0GoodputBps float64 `json:"flow0GoodputBps"`
	// Flow0Packets is the highest packet number the first flow had
	// acknowledged by the end of the run.
	Flow0Packets int64 `json:"flow0Packets"`
	// Flow0Timeouts is the first flow's mean coarse-timeout count.
	Flow0Timeouts float64 `json:"flow0Timeouts"`
	// AggregateGoodputBps sums goodput across all flows.
	AggregateGoodputBps float64 `json:"aggregateGoodputBps"`
	// REDEarlyDrops / REDForcedDrops report gateway drop behaviour.
	REDEarlyDrops  uint64 `json:"redEarlyDrops"`
	REDForcedDrops uint64 `json:"redForcedDrops"`
	// BottleneckUtilization is the mean fraction of the bottleneck's
	// capacity in use — the paper claims RR keeps it highest by probing
	// the new equilibrium while recovering.
	BottleneckUtilization float64 `json:"bottleneckUtilization"`
}

// Figure6Result holds all panels.
type Figure6Result struct {
	Config Figure6Config  `json:"config"`
	Panels []Figure6Panel `json:"panels"`
}

// Figure6 runs the RED scenario once per variant and seed. All flows
// in one run use the same recovery scheme, as in the paper. The first
// five flows start at t=0 and a new flow starts every 0.5 s afterwards;
// all flows have infinite data. Throughput columns are means across
// seeds; the sequence plot comes from the primary seed.
func Figure6(cfg Figure6Config) (*Figure6Result, error) {
	res, err := Run(NewFigure6Experiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*Figure6Result), nil
}

// Figure6Experiment adapts the RED scenario to the Experiment
// interface: one job per (variant, seed) run.
type Figure6Experiment struct {
	cfg Figure6Config
}

// NewFigure6Experiment fills defaults and returns the experiment.
func NewFigure6Experiment(cfg Figure6Config) *Figure6Experiment {
	cfg.fillDefaults()
	return &Figure6Experiment{cfg: cfg}
}

// Name implements Experiment.
func (e *Figure6Experiment) Name() string { return "fig6" }

// Jobs implements Experiment.
func (e *Figure6Experiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		for _, seed := range cfg.Seeds {
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("%v seed=%d", kind, seed),
				Seed: seed,
				Run: func(seed int64) (any, error) {
					panel, err := figure6Run(cfg, kind, seed)
					if err != nil {
						return nil, fmt.Errorf("figure 6 (%v): %w", kind, err)
					}
					return panel, nil
				},
			})
		}
	}
	return jobs, nil
}

// Reduce implements Experiment: throughput columns average across the
// seeds; the sequence plot comes from the primary seed's run.
func (e *Figure6Experiment) Reduce(results []any) (Renderable, error) {
	panels, err := sweep.Collect[Figure6Panel](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &Figure6Result{Config: cfg}
	i := 0
	for range cfg.Variants {
		var agg Figure6Panel
		for si, seed := range cfg.Seeds {
			panel := panels[i]
			i++
			if seed == cfg.Seed || (si == 0 && agg.Flow0Seq == nil) {
				agg.Flow0Seq = panel.Flow0Seq
			}
			agg.Variant = panel.Variant
			agg.Flow0GoodputBps += panel.Flow0GoodputBps
			agg.Flow0Packets += panel.Flow0Packets
			agg.Flow0Timeouts += panel.Flow0Timeouts
			agg.AggregateGoodputBps += panel.AggregateGoodputBps
			agg.REDEarlyDrops += panel.REDEarlyDrops
			agg.REDForcedDrops += panel.REDForcedDrops
			agg.BottleneckUtilization += panel.BottleneckUtilization
		}
		n := int64(len(cfg.Seeds))
		agg.Flow0GoodputBps /= float64(n)
		agg.Flow0Packets /= n
		agg.Flow0Timeouts /= float64(n)
		agg.AggregateGoodputBps /= float64(n)
		agg.REDEarlyDrops /= uint64(n)
		agg.REDForcedDrops /= uint64(n)
		agg.BottleneckUtilization /= float64(n)
		res.Panels = append(res.Panels, agg)
	}
	return res, nil
}

func figure6Run(cfg Figure6Config, kind workload.Kind, seed int64) (Figure6Panel, error) {
	sched := sim.NewScheduler(seed)
	redCfg := netem.PaperREDConfig()
	if cfg.RED != nil {
		redCfg = *cfg.RED
	}
	red := netem.Must(netem.NewRED(redCfg, sched.Rand()))

	dcfg := netem.PaperDropTailConfig(cfg.Flows)
	dcfg.ForwardQueue = red
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return Figure6Panel{}, err
	}

	specs := make([]workload.FlowSpec, cfg.Flows)
	for i := range specs {
		start := sim.Time(0)
		// The first five flows start at time 0; then one every 0.5 s.
		if i >= 5 {
			start = time.Duration(i-4) * 500 * time.Millisecond
		}
		specs[i] = workload.FlowSpec{
			Kind:    kind,
			StartAt: start,
			Bytes:   tcp.Infinite,
			Window:  30,
		}
	}
	flows, err := workload.InstallAll(sched, d, specs)
	if err != nil {
		return Figure6Panel{}, err
	}

	// Sample bottleneck utilization every 100 ms: bits forwarded per
	// interval over the link capacity.
	const sampleEvery = 100 * time.Millisecond
	link := d.ForwardLink()
	util := trace.NewSampler(sched, sampleEvery, trace.DeltaProbe(func() float64 {
		return float64(link.TxBytes) * 8
	}))
	if err := util.Start(); err != nil {
		return Figure6Panel{}, err
	}

	sched.Run(cfg.Duration)

	panel := Figure6Panel{
		Variant:        kind,
		Flow0Seq:       flows[0].Trace.SeqSeries(int64(tcp.DefaultMSS)),
		Flow0Timeouts:  float64(flows[0].Trace.Timeouts),
		REDEarlyDrops:  red.EarlyDrops,
		REDForcedDrops: red.ForcedDrops,
	}
	panel.Flow0GoodputBps = flows[0].Trace.GoodputBps(0, cfg.Duration)
	panel.Flow0Packets = flows[0].Trace.BytesAcked / int64(tcp.DefaultMSS)
	for _, f := range flows {
		panel.AggregateGoodputBps += f.Trace.GoodputBps(0, cfg.Duration)
	}
	panel.BottleneckUtilization = util.Mean() / (dcfg.BottleneckBps * sampleEvery.Seconds())
	return panel, nil
}

// Render returns the panels as a summary table followed by ASCII
// sequence plots.
func (r *Figure6Result) Render() string {
	t := Table{
		Title: fmt.Sprintf("Figure 6: first flow under RED gateways (%d flows, %.1fs)",
			r.Config.Flows, r.Config.Duration.Seconds()),
		Header: []string{"variant", "flow1 goodput", "flow1 pkts acked", "flow1 timeouts",
			"aggregate", "utilization", "RED early/forced drops"},
	}
	for _, p := range r.Panels {
		t.AddRow(p.Variant.String(), kbps(p.Flow0GoodputBps),
			fmt.Sprintf("%d", p.Flow0Packets),
			fmt.Sprintf("%.1f", p.Flow0Timeouts),
			kbps(p.AggregateGoodputBps),
			fmt.Sprintf("%.1f%%", p.BottleneckUtilization*100),
			fmt.Sprintf("%d/%d", p.REDEarlyDrops, p.REDForcedDrops))
	}
	out := t.String()
	for _, p := range r.Panels {
		out += fmt.Sprintf("\nsequence plot (%s): packets sent vs time\n%s",
			p.Variant, trace.RenderASCII(p.Flow0Seq, 72, 18))
	}
	return out
}

// Panel returns the panel for a variant, if present.
func (r *Figure6Result) Panel(kind workload.Kind) (Figure6Panel, bool) {
	for _, p := range r.Panels {
		if p.Variant == kind {
			return p, true
		}
	}
	return Figure6Panel{}, false
}
