package experiments

import (
	"testing"
	"time"

	"rrtcp/internal/faults"
	"rrtcp/internal/workload"
)

// A modest sweep across every variant must complete with zero
// invariant violations: the checker trusts the healthy senders.
func TestChaosSweepClean(t *testing.T) {
	res, err := Chaos(ChaosConfig{Schedules: 4, Seed: 7, Bytes: 100 * 1000, Horizon: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Violated(); got != 0 {
		t.Fatalf("clean sweep produced %d violations:\n%s", got, res.Render())
	}
	finished := 0
	for _, st := range res.Stats {
		if st.Runs != 4 {
			t.Errorf("%v: ran %d schedules, want 4", st.Variant, st.Runs)
		}
		finished += st.Finished
	}
	total := 4 * len(workload.Kinds())
	if finished < total*3/4 {
		t.Errorf("only %d/%d runs finished inside the horizon", finished, total)
	}
}

func TestChaosCaseRejectsBadInput(t *testing.T) {
	base := ChaosCase{Variant: "reno", Seed: 1, Bytes: 1000, Horizon: faults.Duration(time.Second)}
	for name, mutate := range map[string]func(*ChaosCase){
		"variant":  func(c *ChaosCase) { c.Variant = "quic" },
		"bytes":    func(c *ChaosCase) { c.Bytes = 0 },
		"horizon":  func(c *ChaosCase) { c.Horizon = 0 },
		"breakage": func(c *ChaosCase) { c.Breakage = "gremlins" },
	} {
		c := base
		mutate(&c)
		if _, err := RunChaosCase(c); err == nil {
			t.Errorf("bad %s accepted", name)
		}
	}
}

// wedgeCase deadlocks mid-transfer: the watchdog must flag the silent
// stall, and the resulting bundle must replay to the same violation.
func wedgeCase() ChaosCase {
	return ChaosCase{
		Variant:  "reno",
		Seed:     42,
		Bytes:    100 * 1000,
		Horizon:  faults.Duration(60 * time.Second),
		Breakage: "wedge",
	}
}

func TestChaosBrokenWedgeStalls(t *testing.T) {
	out, err := RunChaosCase(wedgeCase())
	if err != nil {
		t.Fatal(err)
	}
	if out.Finished {
		t.Fatal("wedged sender finished the transfer")
	}
	if len(out.Violations) == 0 {
		t.Fatal("wedged sender triggered no violation")
	}
	if rule := out.Violations[0].Rule; rule != "stall-no-timer" {
		t.Fatalf("wedge flagged as %q, want stall-no-timer", rule)
	}
	if len(out.Events) == 0 {
		t.Fatal("violation outcome carries no ring events")
	}
}

func TestChaosBrokenActnumFlagged(t *testing.T) {
	c := wedgeCase()
	c.Variant = "rr"
	c.Breakage = "actnum"
	out, err := RunChaosCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Fatal("lying recovery probe triggered no violation")
	}
	if rule := out.Violations[0].Rule; rule != "actnum-bounds" && rule != "actnum-open" {
		t.Fatalf("liar flagged as %q, want an actnum rule", rule)
	}
}

// The acceptance criterion: a violation's repro bundle replays to the
// identical violation — same rule, same flow, same simulated instant.
func TestChaosBundleReplaysDeterministically(t *testing.T) {
	out, err := RunChaosCase(wedgeCase())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Fatal("no violation to bundle")
	}
	dir := t.TempDir()
	path, err := WriteBundle(dir, &Bundle{Case: wedgeCase(), Violation: out.Violations[0], Events: out.Events})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Violation != out.Violations[0] {
		t.Fatalf("bundle round-trip changed the violation: %v -> %v", out.Violations[0], loaded.Violation)
	}
	if len(loaded.Events) != len(out.Events) {
		t.Fatalf("bundle round-trip changed the event tail: %d -> %d events", len(out.Events), len(loaded.Events))
	}
	for i := 0; i < 3; i++ {
		if _, err := ReplayBundle(loaded); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
}

// A healthy case must produce the byte-identical outcome on every run —
// the determinism that repro bundles stand on.
func TestChaosCaseDeterministic(t *testing.T) {
	c := ChaosCase{
		Variant: "rr",
		Seed:    99,
		Bytes:   100 * 1000,
		Horizon: faults.Duration(60 * time.Second),
		Plan: faults.PlanSpec{
			Flaps:       []faults.FlapSpec{{At: faults.Duration(2 * time.Second), Down: faults.Duration(500 * time.Millisecond)}},
			CorruptRate: 0.01,
			Ack:         &faults.AckSpec{Hold: faults.Duration(20 * time.Millisecond), Max: 4},
		},
	}
	a, err := RunChaosCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Finished != b.Finished || len(a.Events) != len(b.Events) {
		t.Fatalf("re-run diverged: finished %v/%v, %d/%d events",
			a.Finished, b.Finished, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
