package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
	"rrtcp/internal/workload"
)

// runAt executes a freshly built experiment at the given worker count
// and returns its text rendering and JSON encoding.
func runAt(t *testing.T, build func() Experiment, workers int) (string, string) {
	t.Helper()
	res, err := Run(build(), RunOptions{Parallel: workers})
	if err != nil {
		t.Fatalf("run (parallel=%d): %v", workers, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal (parallel=%d): %v", workers, err)
	}
	return res.Render(), string(b)
}

// assertParallelIdentical is the sweep engine's core contract: the
// merged output of a parallel run is byte-identical to sequential.
func assertParallelIdentical(t *testing.T, build func() Experiment) {
	t.Helper()
	seqRender, seqJSON := runAt(t, build, 1)
	for _, workers := range []int{4, 9} {
		parRender, parJSON := runAt(t, build, workers)
		if parRender != seqRender {
			t.Fatalf("parallel=%d rendering differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				workers, seqRender, parRender)
		}
		if parJSON != seqJSON {
			t.Fatalf("parallel=%d JSON differs from sequential", workers)
		}
	}
}

func TestFigure7ParallelIdentical(t *testing.T) {
	assertParallelIdentical(t, func() Experiment {
		return NewFigure7Experiment(Figure7Config{
			Variants:  []workload.Kind{workload.SACK, workload.RR},
			LossRates: []float64{0.01, 0.05},
			Seeds:     []int64{1, 2},
			Duration:  8 * time.Second,
		})
	})
}

func TestTable5ParallelIdentical(t *testing.T) {
	assertParallelIdentical(t, func() Experiment {
		return NewTable5Experiment(Table5Config{
			Flows:   6,
			Seeds:   []int64{1, 2},
			Horizon: 60 * time.Second,
			Cases: []Table5Case{
				{Label: "Reno/RR", Background: workload.Reno, Target: workload.RR},
				{Label: "RR/Reno", Background: workload.RR, Target: workload.Reno},
			},
		})
	})
}

func TestChaosParallelIdentical(t *testing.T) {
	assertParallelIdentical(t, func() Experiment {
		return NewChaosExperiment(ChaosConfig{
			Schedules: 3,
			Seed:      5,
			Variants:  []workload.Kind{workload.SACK, workload.RR, workload.FACK},
			Bytes:     50 * 1000,
			Horizon:   30 * time.Second,
		})
	})
}

// TestFigure5ParallelTelemetryIdentical checks the republish path: a
// parallel figure-5 run must deliver the same NDJSON event stream, in
// the same order, as a sequential one — each job captures into a
// private buffer and Reduce replays them in job-index order.
func TestFigure5ParallelTelemetryIdentical(t *testing.T) {
	capture := func(workers int) (string, string) {
		var buf bytes.Buffer
		nd := telemetry.NewNDJSONSink(&buf)
		e := NewFigure5Experiment(Figure5Config{
			Variants:  []workload.Kind{workload.NewReno, workload.RR},
			Telemetry: telemetry.NewBus(nd),
		})
		res, err := Run(e, RunOptions{Parallel: workers})
		if err != nil {
			t.Fatalf("run (parallel=%d): %v", workers, err)
		}
		if err := nd.Close(); err != nil {
			t.Fatalf("close sink: %v", err)
		}
		return res.Render(), buf.String()
	}
	seqRender, seqEvents := capture(1)
	parRender, parEvents := capture(4)
	if parRender != seqRender {
		t.Fatal("parallel figure-5 rendering differs from sequential")
	}
	if seqEvents == "" {
		t.Fatal("sequential run emitted no telemetry")
	}
	if parEvents != seqEvents {
		t.Fatal("parallel figure-5 event stream differs from sequential")
	}
}

// TestFigure5ParallelSpansIdentical extends the republish contract to
// the derived observability artifacts: the assembled span tree, the
// sampled-series CSV, and the Chrome trace must all be byte-identical
// between a sequential and a parallel run.
func TestFigure5ParallelSpansIdentical(t *testing.T) {
	capture := func(workers int) (spansText, csv, chrome string) {
		spanSink := telemetry.NewSpanSink()
		seriesSink := telemetry.NewSeriesSink()
		e := NewFigure5Experiment(Figure5Config{
			Variants:  []workload.Kind{workload.NewReno, workload.RR},
			Telemetry: telemetry.NewBus(spanSink, seriesSink),
		})
		if _, err := Run(e, RunOptions{Parallel: workers}); err != nil {
			t.Fatalf("run (parallel=%d): %v", workers, err)
		}
		spans, series := spanSink.Spans(), seriesSink.Series()
		var csvBuf, chromeBuf bytes.Buffer
		if err := telemetry.WriteSeriesCSV(&csvBuf, series); err != nil {
			t.Fatalf("csv (parallel=%d): %v", workers, err)
		}
		if err := telemetry.WriteChromeTrace(&chromeBuf, spans, series); err != nil {
			t.Fatalf("chrome (parallel=%d): %v", workers, err)
		}
		if err := telemetry.ValidateChromeTrace(chromeBuf.Bytes()); err != nil {
			t.Fatalf("chrome trace invalid (parallel=%d): %v", workers, err)
		}
		return telemetry.RenderSpans(spans), csvBuf.String(), chromeBuf.String()
	}
	seqSpans, seqCSV, seqChrome := capture(1)
	if !strings.Contains(seqSpans, "segment 1") {
		t.Fatalf("span tree missing the second variant's segment:\n%s", seqSpans)
	}
	parSpans, parCSV, parChrome := capture(4)
	if parSpans != seqSpans {
		t.Fatalf("parallel span tree differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqSpans, parSpans)
	}
	if parCSV != seqCSV {
		t.Fatal("parallel series CSV differs from sequential")
	}
	if parChrome != seqChrome {
		t.Fatal("parallel Chrome trace differs from sequential")
	}
}
