package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"rrtcp/internal/faults"
	"rrtcp/internal/guard"
	"rrtcp/internal/invariant"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
	"rrtcp/internal/workload"
)

// The stress soak is the scale-and-overload counterpart of the chaos
// sweep: instead of one flow per case, every cell packs many concurrent
// flows onto one shared bottleneck under a seeded-random fault plan,
// with the invariant checker (liveness watchdog included), a bounded
// telemetry sink, and a guard budget all armed. The point is not a
// paper figure — it is to demonstrate that the harness survives its own
// worst case: a cell that blows its budget degrades (a typed, reported
// outcome), never OOMs or wedges the sweep, and a cell that stays
// inside its budget produces byte-identical results run after run.

// StressConfig parameterizes a stress soak.
type StressConfig struct {
	// Cells is the number of independent simulation cells (default 8).
	Cells int `json:"cells"`
	// Flows is the number of concurrent flows per cell (default 64).
	Flows int `json:"flows"`
	// Seed drives per-cell seeds (default 1).
	Seed int64 `json:"seed"`
	// Bytes is the per-flow transfer size (default 32 kB).
	Bytes int64 `json:"bytes"`
	// Horizon bounds each cell in simulated time (default 60 s).
	Horizon sim.Time `json:"horizonNs"`
	// Variants cycle across a cell's flows (default: all).
	Variants []workload.Kind `json:"variants"`

	// MaxEvents / MaxWall / MaxHeapBytes are the per-cell guard budgets;
	// zero disables each. StormEvents is the Zeno detector and is always
	// armed (default 1<<20 consecutive events at a frozen clock).
	MaxEvents    uint64        `json:"maxEvents,omitempty"`
	MaxWall      time.Duration `json:"maxWallNs,omitempty"`
	MaxHeapBytes uint64        `json:"maxHeapBytes,omitempty"`
	StormEvents  uint64        `json:"stormEvents,omitempty"`

	// TelemetryBudget bounds each cell's event stream through a
	// BoundedSink (SampleOneInK past the budget); zero selects 10000.
	TelemetryBudget uint64 `json:"telemetryBudget,omitempty"`

	// FlowStats enables the aggregate flow-analytics layer: each cell
	// folds its flow lifecycle events into a flowstats.FlowTable —
	// subscribed directly on the bus, ahead of the BoundedSink's
	// sampling, so the accounting stays exact under overload — and the
	// result carries the merged Summary (see FlowReport).
	FlowStats bool `json:"flowStats,omitempty"`
	// FlowExemplars caps the reservoir of exemplar flows each cell's
	// table retains in full detail (0: aggregates only).
	FlowExemplars int `json:"flowExemplars,omitempty"`

	// Telemetry, when non-nil, receives each cell's final overload and
	// drop accounting, republished in cell order by Reduce.
	Telemetry *telemetry.Bus `json:"-"`
}

func (c *StressConfig) fillDefaults() {
	if c.Cells <= 0 {
		c.Cells = 8
	}
	if c.Flows <= 0 {
		c.Flows = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Bytes <= 0 {
		c.Bytes = 32 * 1000
	}
	if c.Horizon <= 0 {
		c.Horizon = 60 * time.Second
	}
	if len(c.Variants) == 0 {
		c.Variants = workload.Kinds()
	}
	if c.StormEvents == 0 {
		c.StormEvents = 1 << 20
	}
	if c.TelemetryBudget == 0 {
		c.TelemetryBudget = 10000
	}
}

// StressCell is one cell's outcome. All fields derive from the
// deterministic simulation, so a cell report reproduces bit-for-bit
// under its seed (wall/heap trips excepted — those budgets are sampled
// from the machine).
type StressCell struct {
	Cell     int     `json:"cell"`
	Flows    int     `json:"flows"`
	Finished int     `json:"finished"`
	Events   uint64  `json:"events"`
	SimTimeS float64 `json:"simTimeS"`
	// TelemetryKept / TelemetryDropped are the cell's BoundedSink
	// accounting.
	TelemetryKept    uint64 `json:"telemetryKept"`
	TelemetryDropped uint64 `json:"telemetryDropped"`
	// Violations counts structural invariant breaches; Stalls counts
	// liveness ("stall"/"stall-no-timer") detections, reported
	// separately because a stalled cell degrades rather than fails.
	Violations int `json:"violations"`
	Stalls     int `json:"stalls"`
	// Degraded names the tripped resource ("events", "event-storm",
	// "liveness", ...) for a cell that blew its budget; empty otherwise.
	Degraded string `json:"degraded,omitempty"`
	// Flow is the cell's flow-analytics summary, set when
	// StressConfig.FlowStats is on. Degraded cells carry it too — the
	// accounting up to the budget trip.
	Flow *flowstats.Summary `json:"flow,omitempty"`
}

// CellOverload is the error a budget-tripped cell returns: it carries
// the partial cell statistics alongside the typed cause, and unwraps to
// it, so the sweep's structural Degraded detection fires and Reduce can
// still report the cell.
type CellOverload struct {
	Cell StressCell
	Err  error // *guard.OverloadError or *invariant.StallError
}

// Error implements error.
func (e *CellOverload) Error() string {
	return fmt.Sprintf("stress: cell %d degraded: %v", e.Cell.Cell, e.Err)
}

// Unwrap exposes the typed cause to errors.As and to internal/sweep's
// Degraded-marker walk.
func (e *CellOverload) Unwrap() error { return e.Err }

// runStressCell executes one cell: Flows concurrent transfers on a
// shared dumbbell under a seeded-random fault plan, watched by the
// invariant checker and guarded by the configured budgets.
func runStressCell(cfg StressConfig, index int, seed int64) (StressCell, error) {
	sched := sim.NewScheduler(seed)
	ring := telemetry.NewRing(256)
	bounded := telemetry.NewBoundedSink(ring, telemetry.BoundedConfig{
		MaxEvents: cfg.TelemetryBudget,
		Policy:    telemetry.SampleOneInK,
		Src:       fmt.Sprintf("cell%d", index),
	})
	bus := telemetry.NewBus(bounded)
	var table *flowstats.FlowTable
	if cfg.FlowStats {
		table = flowstats.New(flowstats.Config{
			Exemplars: cfg.FlowExemplars,
			Seed:      seed,
		})
		bus.Subscribe(table)
	}
	checker := invariant.NewChecker(sched, bus)
	bus.Subscribe(checker)

	// The paper topology, scaled up: the bottleneck grows with the flow
	// count so the cell is congested but not parked, and the shared
	// buffer deepens with the fan-in.
	dcfg := netem.PaperDropTailConfig(cfg.Flows)
	if scale := float64(cfg.Flows) / 4; scale > 1 {
		dcfg.BottleneckBps *= scale
	}
	dcfg.ForwardQueue = netem.Must(netem.NewDropTail(8 + cfg.Flows))
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return StressCell{}, err
	}
	d.Instrument(bus)

	specs := make([]workload.FlowSpec, cfg.Flows)
	for i := range specs {
		specs[i] = workload.FlowSpec{
			Kind:      cfg.Variants[i%len(cfg.Variants)],
			StartAt:   sim.Time(i) * 5 * time.Millisecond,
			Bytes:     cfg.Bytes,
			Window:    32,
			Telemetry: bus,
		}
	}
	flows, err := workload.InstallAll(sched, d, specs)
	if err != nil {
		return StressCell{}, err
	}
	for _, f := range flows {
		checker.WatchSender(f.Sender)
	}
	if err := checker.StartWatchdog(0, 0, 0); err != nil {
		return StressCell{}, err
	}

	plan := faults.RandomPlanSpec(sched.DeriveRand("stress-plan"), cfg.Horizon, dcfg)
	if err := plan.Apply(sched, d, sched.DeriveRand("stress-faults"), bus); err != nil {
		return StressCell{}, err
	}

	mon, err := guard.Attach(sched, guard.Limits{
		MaxEvents:    cfg.MaxEvents,
		StormEvents:  cfg.StormEvents,
		MaxWall:      cfg.MaxWall,
		MaxHeapBytes: cfg.MaxHeapBytes,
	}, bus)
	if err != nil {
		return StressCell{}, err
	}

	sched.Run(cfg.Horizon)
	bounded.Finalize(sched.Now())

	cell := StressCell{
		Cell:             index,
		Flows:            cfg.Flows,
		Events:           sched.Processed(),
		SimTimeS:         sched.Now().Seconds(),
		TelemetryKept:    bounded.Kept(),
		TelemetryDropped: bounded.Dropped(),
	}
	for _, f := range flows {
		if f.Sender.Done() {
			cell.Finished++
		}
	}
	for _, v := range checker.Violations() {
		if v.Rule == "stall" || v.Rule == "stall-no-timer" {
			cell.Stalls++
		} else {
			cell.Violations++
		}
	}
	if table != nil {
		table.Flush(sched.Now())
		s := table.Summary()
		cell.Flow = &s
	}

	// Degradation priority: a guard trip explains the run ending early
	// and wins; a liveness stall with no guard trip degrades too (the
	// cell wedged but stayed inside its budgets).
	if oerr := mon.Err(); oerr != nil {
		cell.Degraded = oerr.Resource
		return cell, &CellOverload{Cell: cell, Err: oerr}
	}
	if serr := checker.StallError(); serr != nil {
		cell.Degraded = "liveness"
		return cell, &CellOverload{Cell: cell, Err: serr}
	}
	return cell, nil
}

// StressResult is the full soak outcome.
type StressResult struct {
	Config StressConfig `json:"config"`
	// Cells holds every cell's report in cell order — budget-tripped
	// cells included, marked by their Degraded field.
	Cells []StressCell `json:"cells"`
	// Degraded lists the budget-tripped cells' causes, in cell order.
	Degraded []StressDegrade `json:"degraded,omitempty"`
	// Aggregates across all cells.
	TotalEvents  uint64 `json:"totalEvents"`
	TotalKept    uint64 `json:"totalKept"`
	TotalDropped uint64 `json:"totalDropped"`
	Violations   int    `json:"violations"`
	Stalls       int    `json:"stalls"`
	// Flows is the merged flow-analytics summary across cells, set when
	// Config.FlowStats is on.
	Flows *flowstats.Summary `json:"flows,omitempty"`
}

// FlowReport computes the flow-analytics report, or a zero report when
// flow stats were not enabled.
func (r *StressResult) FlowReport() flowstats.Report {
	if r.Flows == nil {
		return flowstats.Report{}
	}
	return r.Flows.Report()
}

// StressDegrade records why one cell degraded.
type StressDegrade struct {
	Cell     int    `json:"cell"`
	Resource string `json:"resource"`
	Detail   string `json:"detail"`
}

// Violated reports the number of structural invariant violations across
// the soak — the count that should fail a run. Liveness stalls and
// budget trips are excluded: they surface as degraded cells, which is
// the soak behaving as designed.
func (r *StressResult) Violated() int { return r.Violations }

// Render formats the soak report.
func (r *StressResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stress soak: %d cells x %d flows (seed %d, %v horizon, %d-byte transfers)\n",
		r.Config.Cells, r.Config.Flows, r.Config.Seed, r.Config.Horizon, r.Config.Bytes)
	fmt.Fprintf(&b, "%-5s %6s %9s %10s %9s %8s %8s %s\n",
		"cell", "flows", "finished", "events", "simtime", "kept", "dropped", "state")
	for _, c := range r.Cells {
		state := "ok"
		if c.Degraded != "" {
			state = "degraded:" + c.Degraded
		}
		fmt.Fprintf(&b, "%-5d %6d %9d %10d %8.2fs %8d %8d %s\n",
			c.Cell, c.Flows, c.Finished, c.Events, c.SimTimeS,
			c.TelemetryKept, c.TelemetryDropped, state)
	}
	fmt.Fprintf(&b, "total: %d events, %d telemetry kept, %d dropped, %d degraded cells\n",
		r.TotalEvents, r.TotalKept, r.TotalDropped, len(r.Degraded))
	for _, d := range r.Degraded {
		fmt.Fprintf(&b, "DEGRADED cell %d (%s): %s\n", d.Cell, d.Resource, d.Detail)
	}
	if r.Violations > 0 {
		fmt.Fprintf(&b, "INVARIANT VIOLATIONS: %d structural breaches across cells\n", r.Violations)
	}
	if r.Stalls > 0 {
		fmt.Fprintf(&b, "liveness: %d stalled-flow detections\n", r.Stalls)
	}
	if r.Flows != nil {
		b.WriteByte('\n')
		b.WriteString(r.Flows.Report().Render())
	}
	return b.String()
}

// StressExperiment adapts the soak to the Experiment interface: one
// sweep job per cell, seeds derived by the engine from Config.Seed.
type StressExperiment struct {
	cfg StressConfig
}

// NewStressExperiment fills defaults and returns the experiment.
func NewStressExperiment(cfg StressConfig) *StressExperiment {
	cfg.fillDefaults()
	return &StressExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *StressExperiment) Name() string { return "stress" }

// DecodeResult implements ResultCodec for checkpoint resume. Only
// successful cells are journaled (degraded ones re-run and re-degrade
// deterministically), so a StressCell is the only shape to restore.
func (e *StressExperiment) DecodeResult(data []byte) (any, error) {
	var c StressCell
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("stress: decode checkpointed result: %w", err)
	}
	return c, nil
}

// Jobs implements Experiment.
func (e *StressExperiment) Jobs() ([]sweep.Job, error) {
	jobs := make([]sweep.Job, e.cfg.Cells)
	for i := range jobs {
		cell := i
		jobs[i] = sweep.Job{
			Name: fmt.Sprintf("cell%d", cell),
			Run: func(seed int64) (any, error) {
				c, err := runStressCell(e.cfg, cell, seed)
				if err != nil {
					return nil, err
				}
				return c, nil
			},
		}
	}
	return jobs, nil
}

// Reduce implements Experiment: cells assemble in cell order, degraded
// results are unpacked back into their partial cell reports, and each
// cell's final overload/drop accounting is republished onto the
// configured telemetry bus — in cell order, so the aggregate metrics
// stream is deterministic.
func (e *StressExperiment) Reduce(results []any) (Renderable, error) {
	cfg := e.cfg
	res := &StressResult{Config: cfg}
	for i, raw := range results {
		var cell StressCell
		switch v := raw.(type) {
		case StressCell:
			cell = v
		case sweep.Degraded:
			var co *CellOverload
			if !errors.As(v.Err, &co) {
				return nil, fmt.Errorf("stress: cell %d degraded without cell report: %w", i, v.Err)
			}
			cell = co.Cell
			res.Degraded = append(res.Degraded, StressDegrade{
				Cell:     cell.Cell,
				Resource: cell.Degraded,
				Detail:   co.Err.Error(),
			})
		default:
			return nil, fmt.Errorf("stress: result %d is %T, want StressCell or sweep.Degraded", i, raw)
		}
		res.Cells = append(res.Cells, cell)
		res.TotalEvents += cell.Events
		res.TotalKept += cell.TelemetryKept
		res.TotalDropped += cell.TelemetryDropped
		res.Violations += cell.Violations
		res.Stalls += cell.Stalls
		if cell.Flow != nil {
			if res.Flows == nil {
				res.Flows = &flowstats.Summary{}
			}
			res.Flows.Merge(*cell.Flow)
		}

		if cfg.Telemetry.Enabled() {
			if cell.TelemetryDropped > 0 {
				cfg.Telemetry.Publish(telemetry.Event{
					Comp: telemetry.CompTelemetry, Kind: telemetry.KTelemetryDrops,
					Src: fmt.Sprintf("cell%d", cell.Cell), Flow: telemetry.NoFlow,
					A: float64(cell.TelemetryDropped), B: float64(cell.TelemetryKept),
				})
			}
			if cell.Degraded != "" && cell.Degraded != "liveness" {
				cfg.Telemetry.Publish(telemetry.Event{
					Comp: telemetry.CompGuard, Kind: telemetry.KOverload,
					Src: cell.Degraded, Flow: telemetry.NoFlow,
					A: float64(cell.Events),
				})
			}
		}
	}
	return res, nil
}

// Stress runs a soak end to end with default execution options.
func Stress(cfg StressConfig) (*StressResult, error) {
	res, err := Run(NewStressExperiment(cfg), RunOptions{})
	if err != nil {
		return nil, err
	}
	return res.(*StressResult), nil
}
