// Package experiments contains one runner per table and figure of the
// paper's evaluation (Figure 5, Figure 6, Figure 7, Table 5), plus the
// ACK-loss robustness scenario of Section 2.3. Each runner builds the
// scenario from the substrate packages, executes it deterministically,
// and returns structured results with a text rendering that mirrors
// what the paper reports.
//
// Every runner implements the Experiment interface — Name, Jobs,
// Reduce — and executes on the internal/sweep worker pool, so its
// independent runs fan out across CPUs while the merged result stays
// byte-identical to sequential execution (see docs/SWEEP.md). The
// registry in registry.go lists the experiments in canonical order;
// the classic entry points (Figure5, Table5, Chaos, ...) remain as
// thin wrappers over Run.
package experiments

import (
	"fmt"
	"strings"

	"rrtcp/internal/trace"
)

// ackRecvKind names the trace kind counted as a received ACK.
const ackRecvKind = trace.EvAckRecv

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// kbps formats a bit-per-second value in Kbps.
func kbps(bps float64) string { return fmt.Sprintf("%.1f Kbps", bps/1000) }
