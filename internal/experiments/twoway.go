package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/workload"
)

// TwoWayConfig parameterizes the two-way-traffic extension experiment.
// The paper's §2.3 leans on the observation (Zhang, Shenker & Clark —
// its [22]) that two-way traffic through drop-tail gateways interleaves
// data with ACKs, compressing and dropping ACK runs; a recovery scheme
// that relies on the duplicate-ACK clock must survive that. We run
// forward transfers of each variant while reverse-direction TCP flows
// congest the ACK path with real data.
type TwoWayConfig struct {
	// Variants of the measured forward flow.
	Variants []workload.Kind
	// ReverseFlows is the number of opposing data flows.
	ReverseFlows int
	// TransferPackets is the forward transfer size in packets.
	TransferPackets int
	// ReverseBuffer is the shared R2→R1 buffer in packets.
	ReverseBuffer int
	// Horizon caps each run.
	Horizon sim.Time
	// Seeds to average over (start phases are jittered per seed).
	Seeds []int64
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int
}

func (c *TwoWayConfig) fillDefaults() {
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.NewReno, workload.SACK, workload.RR}
	}
	if c.ReverseFlows <= 0 {
		c.ReverseFlows = 2
	}
	if c.TransferPackets <= 0 {
		c.TransferPackets = 200
	}
	if c.ReverseBuffer <= 0 {
		c.ReverseBuffer = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = 300 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
}

// TwoWayRow is one variant's outcome under two-way traffic.
type TwoWayRow struct {
	Variant workload.Kind `json:"variant"`
	// MeanDelay is the forward transfer's mean completion time.
	MeanDelay sim.Time `json:"meanDelayNs"`
	// MeanAckLoss is the mean fraction of ACKs lost on the shared
	// reverse path.
	MeanAckLoss float64 `json:"meanAckLoss"`
	// MeanTimeouts is the forward flow's mean coarse-timeout count.
	MeanTimeouts float64 `json:"meanTimeouts"`
	// Completed counts finished runs out of Runs.
	Completed int `json:"completed"`
	Runs      int `json:"runs"`
	// DelayCI95Seconds is the 95% confidence half-width of MeanDelay.
	DelayCI95Seconds float64 `json:"delayCI95Seconds,omitempty"`
}

// TwoWayResult aggregates the comparison.
type TwoWayResult struct {
	Config TwoWayConfig `json:"config"`
	Rows   []TwoWayRow  `json:"rows"`
}

// TwoWay runs the experiment for each variant and seed.
func TwoWay(cfg TwoWayConfig) (*TwoWayResult, error) {
	res, err := Run(NewTwoWayExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*TwoWayResult), nil
}

// TwoWayExperiment adapts the two-way-traffic comparison to the
// Experiment interface: one job per (variant, seed) run.
type TwoWayExperiment struct {
	cfg TwoWayConfig
}

// NewTwoWayExperiment fills defaults and returns the experiment.
func NewTwoWayExperiment(cfg TwoWayConfig) *TwoWayExperiment {
	cfg.fillDefaults()
	return &TwoWayExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *TwoWayExperiment) Name() string { return "twoway" }

// twoWayOut is one (variant, seed) run's raw measurement.
type twoWayOut struct {
	Delay    sim.Time
	AckLoss  float64
	Timeouts uint64
	Finished bool
}

// Jobs implements Experiment.
func (e *TwoWayExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		for _, seed := range cfg.Seeds {
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("%v seed=%d", kind, seed),
				Seed: seed,
				Run: func(seed int64) (any, error) {
					delay, ackLoss, timeouts, finished, err := twoWayRun(cfg, kind, seed)
					if err != nil {
						return nil, fmt.Errorf("two-way (%v): %w", kind, err)
					}
					return twoWayOut{Delay: delay, AckLoss: ackLoss, Timeouts: timeouts, Finished: finished}, nil
				},
			})
		}
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *TwoWayExperiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[twoWayOut](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &TwoWayResult{Config: cfg}
	i := 0
	for _, kind := range cfg.Variants {
		row := TwoWayRow{Variant: kind, Runs: len(cfg.Seeds)}
		var delays []float64
		var ackLossSum, timeoutSum float64
		for range cfg.Seeds {
			out := outs[i]
			i++
			ackLossSum += out.AckLoss
			timeoutSum += float64(out.Timeouts)
			if out.Finished {
				row.Completed++
				delays = append(delays, out.Delay.Seconds())
			}
		}
		if row.Completed > 0 {
			summary := stats.Summarize(delays)
			row.MeanDelay = sim.Time(summary.Mean * float64(time.Second))
			row.DelayCI95Seconds = summary.CI95
		}
		row.MeanAckLoss = ackLossSum / float64(len(cfg.Seeds))
		row.MeanTimeouts = timeoutSum / float64(len(cfg.Seeds))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func twoWayRun(cfg TwoWayConfig, kind workload.Kind, seed int64) (sim.Time, float64, uint64, bool, error) {
	sched := sim.NewScheduler(seed)
	dcfg := netem.PaperDropTailConfig(cfg.ReverseFlows + 1)
	// Both directions congested: Table 3's 8-packet buffer forward, a
	// small shared buffer on the reverse path so ACKs compete with the
	// opposing data for real.
	dcfg.ReverseQueue = netem.Must(netem.NewDropTail(cfg.ReverseBuffer))
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return 0, 0, 0, false, err
	}

	fwd, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:   kind,
		Bytes:  int64(cfg.TransferPackets) * 1000,
		Window: 18,
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	for i := 1; i <= cfg.ReverseFlows; i++ {
		jitter := time.Duration(sched.Rand().Int63n(int64(200 * time.Millisecond)))
		if _, err := workload.InstallReverse(sched, d, i, workload.FlowSpec{
			Kind:    workload.Reno,
			Bytes:   tcp.Infinite,
			Window:  18,
			StartAt: jitter,
		}); err != nil {
			return 0, 0, 0, false, err
		}
	}

	sched.Run(cfg.Horizon)

	acksSent := float64(fwd.Receiver.Segments)
	acksGot := float64(len(fwd.Trace.SamplesOf(ackRecvKind)))
	ackLoss := 0.0
	if acksSent > 0 && acksGot < acksSent {
		ackLoss = 1 - acksGot/acksSent
	}
	delay, ok := fwd.Trace.TransferDelay()
	return delay, ackLoss, fwd.Trace.Timeouts, ok, nil
}

// Render returns the comparison as a text table.
func (r *TwoWayResult) Render() string {
	t := Table{
		Title: fmt.Sprintf("Two-way traffic: forward transfer vs %d reverse TCP flows (drop-tail both ways)",
			r.Config.ReverseFlows),
		Header: []string{"variant", "mean delay", "mean ACK loss", "mean timeouts", "completed"},
	}
	for _, row := range r.Rows {
		delay := "DNF"
		if row.Completed > 0 {
			delay = fmt.Sprintf("%.3fs ±%.2f", row.MeanDelay.Seconds(), row.DelayCI95Seconds)
		}
		t.AddRow(row.Variant.String(), delay,
			fmt.Sprintf("%.1f%%", row.MeanAckLoss*100),
			fmt.Sprintf("%.1f", row.MeanTimeouts),
			fmt.Sprintf("%d/%d", row.Completed, row.Runs))
	}
	return t.String()
}

// Row returns the outcome for a variant.
func (r *TwoWayResult) Row(kind workload.Kind) (TwoWayRow, bool) {
	for _, row := range r.Rows {
		if row.Variant == kind {
			return row, true
		}
	}
	return TwoWayRow{}, false
}
