package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/core"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/trace"
	"rrtcp/internal/workload"
)

// AblationVariant names one RR design choice toggled off or replaced.
type AblationVariant struct {
	Label   string       `json:"label"`
	Options core.Options `json:"options"`
}

// AblationVariants returns the design-choice matrix DESIGN.md §5 calls
// out, with the published algorithm first.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Label: "rr (published)", Options: core.Options{}},
		{Label: "retreat 1-per-dup (right-edge)", Options: core.Options{RetreatDupsPerSegment: 1}},
		{Label: "no further-loss detection", Options: core.Options{DisableFurtherLossDetection: true}},
		{Label: "halve on further loss", Options: core.Options{HalveOnFurtherLoss: true}},
		{Label: "exit to ssthresh (big ACK)", Options: core.Options{ExitToSsthresh: true}},
	}
}

// AblationRow is one variant's outcome on the burst-loss transfer.
type AblationRow struct {
	Variant AblationVariant `json:"variant"`
	// TransferDelay for the Figure-5-style limited transfer.
	TransferDelay sim.Time `json:"transferDelayNs"`
	// Timeouts and Retransmits describe the recovery cost.
	Timeouts    uint64 `json:"timeouts"`
	Retransmits uint64 `json:"retransmits"`
	// ExitBurst is the largest number of data packets the sender
	// emitted within one bottleneck transmission time right after
	// leaving recovery — the "big ACK" burst measure.
	ExitBurst int `json:"exitBurst"`
	// Finished reports completion within the horizon.
	Finished bool `json:"finished"`
}

// AblationResult aggregates the matrix.
type AblationResult struct {
	Drops int           `json:"drops"`
	Rows  []AblationRow `json:"rows"`
}

// Ablation runs the Figure-5 burst-loss transfer (with an extra loss
// injected during recovery so the further-loss machinery is exercised)
// once per design variant.
func Ablation(drops int) (*AblationResult, error) {
	res, err := Run(NewAblationExperiment(drops), RunOptions{})
	if err != nil {
		return nil, err
	}
	return res.(*AblationResult), nil
}

// AblationExperiment adapts the design-choice matrix to the Experiment
// interface: one job per variant, all on the same engineered scenario.
type AblationExperiment struct {
	drops int
}

// NewAblationExperiment returns the experiment (drops <= 0 means 3).
func NewAblationExperiment(drops int) *AblationExperiment {
	if drops <= 0 {
		drops = 3
	}
	return &AblationExperiment{drops: drops}
}

// Name implements Experiment.
func (e *AblationExperiment) Name() string { return "ablation" }

// Jobs implements Experiment.
func (e *AblationExperiment) Jobs() ([]sweep.Job, error) {
	drops := e.drops
	var jobs []sweep.Job
	for _, v := range AblationVariants() {
		jobs = append(jobs, sweep.Job{
			Name: v.Label,
			// The scenario is fully engineered; every variant runs the
			// same fixed seed so rows differ only by the design knob.
			Seed: 1,
			Run: func(seed int64) (any, error) {
				row, err := ablationRun(drops, v, seed)
				if err != nil {
					return nil, fmt.Errorf("ablation (%s): %w", v.Label, err)
				}
				return row, nil
			},
		})
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *AblationExperiment) Reduce(results []any) (Renderable, error) {
	rows, err := sweep.Collect[AblationRow](results)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Drops: e.drops, Rows: rows}, nil
}

func ablationRun(drops int, v AblationVariant, seed int64) (AblationRow, error) {
	sched := sim.NewScheduler(seed)
	loss := netem.NewSeqLoss(nil)
	const mss = int64(1000)
	for i := 0; i < drops; i++ {
		loss.Drop(0, (60+int64(i))*mss)
	}
	// A further loss hits a new data packet sent during recovery: with
	// the window at ~13 packets when the burst hits, maxseq is ~73 at
	// entry and the retreat sub-phase injects packets 73+, so drop one
	// of those.
	loss.Drop(0, 75*mss)

	dcfg := netem.PaperDropTailConfig(1)
	dcfg.Loss = loss
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return AblationRow{}, err
	}
	opts := v.Options
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:            workload.RR,
		Bytes:           150 * mss,
		Window:          18,
		InitialSSThresh: 9,
		RROptions:       &opts,
	})
	if err != nil {
		return AblationRow{}, err
	}
	sched.Run(120 * time.Second)

	row := AblationRow{
		Variant:     v,
		Timeouts:    flow.Trace.Timeouts,
		Retransmits: flow.Trace.Retransmits,
		ExitBurst:   exitBurst(flow, d),
	}
	if delay, ok := flow.Trace.TransferDelay(); ok {
		row.Finished = true
		row.TransferDelay = delay
	}
	return row, nil
}

// exitBurst counts data packets sent within one bottleneck transmission
// time of the first recovery exit.
func exitBurst(flow *workload.Flow, d *netem.Dumbbell) int {
	samples := flow.Trace.Samples()
	var exitAt sim.Time = -1
	for _, s := range samples {
		if s.Kind == trace.EvExit {
			exitAt = s.At
			break
		}
	}
	if exitAt < 0 {
		return 0
	}
	window := d.ForwardLink().TransmissionDelay(1000)
	count := 0
	for _, s := range samples {
		if (s.Kind == trace.EvSend || s.Kind == trace.EvRetransmit) &&
			s.At >= exitAt && s.At <= exitAt+window {
			count++
		}
	}
	return count
}

// Render returns the ablation matrix as a text table.
func (r *AblationResult) Render() string {
	t := Table{
		Title:  fmt.Sprintf("RR design ablations (%d drops + 1 further loss during recovery)", r.Drops),
		Header: []string{"variant", "transfer delay", "timeouts", "rtx", "exit burst"},
	}
	for _, row := range r.Rows {
		delay := "DNF"
		if row.Finished {
			delay = fmt.Sprintf("%.3fs", row.TransferDelay.Seconds())
		}
		t.AddRow(row.Variant.Label, delay, fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.Retransmits), fmt.Sprintf("%d", row.ExitBurst))
	}
	return t.String()
}
