package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rrtcp/internal/workload"
)

// The flow-analytics reduction rides the sweep's byte-determinism
// contract: with flow accounting enabled, the rendered report (and the
// JSON carrying the merged histograms) must be identical at any worker
// count because per-job summaries merge in job order.
func TestFigure5FlowReportParallelIdentical(t *testing.T) {
	build := func() Experiment {
		return NewFigure5Experiment(Figure5Config{
			Variants:      []workload.Kind{workload.NewReno, workload.RR},
			FlowStats:     true,
			FlowExemplars: 2,
		})
	}
	assertParallelIdentical(t, build)

	res, err := Run(build(), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	f5 := res.(*Figure5Result)
	if f5.Flows == nil {
		t.Fatal("FlowStats run produced no flow summary")
	}
	report := f5.FlowReport()
	if report.Completed == 0 || len(report.Variants) != 2 {
		t.Fatalf("flow report incomplete: %+v", report)
	}
	if !strings.Contains(res.Render(), "Flow report:") {
		t.Fatalf("rendering missing the flow report:\n%s", res.Render())
	}
	var csv bytes.Buffer
	if err := report.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 { // header + 2 variants
		t.Fatalf("flow CSV has %d lines, want 3:\n%s", got, csv.String())
	}
}

func TestChaosFlowReportParallelIdentical(t *testing.T) {
	assertParallelIdentical(t, func() Experiment {
		return NewChaosExperiment(ChaosConfig{
			Schedules:     3,
			Seed:          5,
			Variants:      []workload.Kind{workload.SACK, workload.RR},
			Bytes:         50 * 1000,
			Horizon:       30 * time.Second,
			FlowStats:     true,
			FlowExemplars: 2,
		})
	})
}

// Stress drives its own parallelism knob; the flow summary merged from
// cell tables must be worker-count invariant too, and present even
// though cells run under bounded telemetry (the table subscribes ahead
// of the sampling sink, so accounting stays exact under overload).
func TestStressFlowReportParallelIdentical(t *testing.T) {
	run := func(workers int) *StressResult {
		cfg := smallStress()
		cfg.FlowStats = true
		cfg.FlowExemplars = 2
		res, err := Run(NewStressExperiment(cfg), RunOptions{Parallel: workers})
		if err != nil {
			t.Fatalf("stress (parallel=%d): %v", workers, err)
		}
		return res.(*StressResult)
	}
	seq, par := run(1), run(4)
	if seq.Render() != par.Render() {
		t.Fatalf("stress flow report differs across worker counts:\n--- sequential ---\n%s--- parallel ---\n%s",
			seq.Render(), par.Render())
	}
	if seq.Flows == nil || seq.Flows.Completed == 0 {
		t.Fatalf("stress flow summary missing: %+v", seq.Flows)
	}
	if !strings.Contains(seq.Render(), "Flow report:") {
		t.Fatalf("stress rendering missing flow report:\n%s", seq.Render())
	}
}

// Without FlowStats the layer is absent: no summary on the result, a
// zero report from the accessor, and no flow section in the rendering.
func TestFlowReportAbsentWhenDisabled(t *testing.T) {
	res, err := Run(NewFigure5Experiment(Figure5Config{
		Variants: []workload.Kind{workload.NewReno},
	}), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f5 := res.(*Figure5Result)
	if f5.Flows != nil {
		t.Fatalf("flow summary present without FlowStats: %+v", f5.Flows)
	}
	if r := f5.FlowReport(); r.Started != 0 || len(r.Variants) != 0 {
		t.Fatalf("disabled FlowReport non-zero: %+v", r)
	}
	if strings.Contains(res.Render(), "Flow report:") {
		t.Fatalf("rendering has a flow report without FlowStats:\n%s", res.Render())
	}
}
