package experiments

import (
	"fmt"
	"testing"
	"time"

	"rrtcp/internal/workload"
)

// BenchmarkChaosSweep measures the chaos fault sweep at increasing
// worker counts. On a multi-core machine the 4-worker case should run
// at least 2x faster than sequential; the merged result is
// byte-identical regardless (see determinism_test.go).
func BenchmarkChaosSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewChaosExperiment(ChaosConfig{
					Schedules: 4,
					Seed:      7,
					Variants:  []workload.Kind{workload.SACK, workload.RR, workload.LinKung, workload.FACK},
					Bytes:     100 * 1000,
					Horizon:   60 * time.Second,
				})
				if _, err := Run(e, RunOptions{Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
