package experiments

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
)

// smallStress keeps the soak fast enough for the unit-test tier while
// still multiplexing several flows per cell.
func smallStress() StressConfig {
	return StressConfig{
		Cells:   2,
		Flows:   6,
		Seed:    1,
		Bytes:   15 * 1000,
		Horizon: 3 * time.Second,
	}
}

func TestStressCleanRunIsDeterministic(t *testing.T) {
	run := func() string {
		res, err := Stress(smallStress())
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("renders diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if strings.Contains(a, "degraded:") {
		t.Fatalf("unbudgeted small soak degraded:\n%s", a)
	}
}

func TestStressBudgetTripDegradesDeterministically(t *testing.T) {
	cfg := smallStress()
	cfg.MaxEvents = 800
	run := func() *StressResult {
		res, err := Stress(cfg)
		if err != nil {
			t.Fatalf("a budget trip must degrade, not fail the sweep: %v", err)
		}
		return res
	}
	first := run()
	if len(first.Degraded) != cfg.Cells {
		t.Fatalf("%d cells degraded, want all %d under an 800-event budget", len(first.Degraded), cfg.Cells)
	}
	for _, c := range first.Cells {
		if c.Degraded != "events" {
			t.Fatalf("cell %d degraded as %q, want \"events\"", c.Cell, c.Degraded)
		}
		if c.Events != cfg.MaxEvents {
			t.Fatalf("cell %d stopped at %d events, want exactly the %d budget", c.Cell, c.Events, cfg.MaxEvents)
		}
	}
	if got := first.Violated(); got != 0 {
		t.Fatalf("Violated() = %d; budget trips must not count as structural violations", got)
	}
	second := run()
	if first.Render() != second.Render() {
		t.Fatalf("degraded reports diverged:\n--- first ---\n%s--- second ---\n%s",
			first.Render(), second.Render())
	}
}

func TestStressRenderReportsDegradedCells(t *testing.T) {
	cfg := smallStress()
	cfg.Cells = 1
	cfg.MaxEvents = 500
	res, err := Stress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"degraded:events", "DEGRADED cell 0 (events)", "events budget exceeded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStressReducePublishesAccounting(t *testing.T) {
	metrics := telemetry.NewMetricsSink()
	cfg := smallStress()
	cfg.Cells = 1
	cfg.MaxEvents = 500
	cfg.TelemetryBudget = 50 // force drops well before the budget trip
	cfg.Telemetry = telemetry.NewBus(metrics)
	res, err := Stress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDropped == 0 {
		t.Fatal("a 50-event telemetry budget dropped nothing")
	}
	if got := metrics.R.Counter("guard.overloads"); got != 1 {
		t.Fatalf("guard.overloads = %d, want the one budget trip", got)
	}
	if got := metrics.R.Counter("guard.events.trips"); got != 1 {
		t.Fatalf("guard.events.trips = %d, want 1", got)
	}
	if got := metrics.R.Gauge("telemetry.cell0.dropped_events"); got != float64(res.TotalDropped) {
		t.Fatalf("telemetry.cell0.dropped_events = %g, want %d", got, res.TotalDropped)
	}
	if got := metrics.R.Gauge("telemetry.cell0.kept_events"); got != float64(res.TotalKept) {
		t.Fatalf("telemetry.cell0.kept_events = %g, want %d", got, res.TotalKept)
	}
}

func TestStressCellTelemetryStaysBounded(t *testing.T) {
	cfg := smallStress()
	cfg.Cells = 1
	cfg.TelemetryBudget = 100
	res, err := Stress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.TelemetryDropped == 0 {
		t.Fatal("a 100-event budget on a multi-flow cell dropped nothing")
	}
	// SampleOneInK: past the budget only every 16th event survives, so
	// kept stays within budget + seen/16 + 1.
	total := c.TelemetryKept + c.TelemetryDropped
	if limit := cfg.TelemetryBudget + total/16 + 1; c.TelemetryKept > limit {
		t.Fatalf("kept %d of %d events, beyond the sampled bound %d", c.TelemetryKept, total, limit)
	}
}
