package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/model"
	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/workload"
)

// Figure7Config parameterizes the square-root-model fitness experiment
// (paper §4, Figure 7): a single long-lived flow suffers uniform random
// losses at gateway R1 while MSS and RTT are held fixed, and the
// measured window BW·RTT/MSS is compared against the Mathis bound
// C/sqrt(p).
type Figure7Config struct {
	// LossRates to sweep (paper: 0.001 … 0.1).
	LossRates []float64 `json:"lossRates"`
	// Variants to compare (paper: SACK and RR).
	Variants []workload.Kind `json:"variants"`
	// Duration of each run (paper: 100 s).
	Duration sim.Time `json:"durationNs"`
	// WarmUp excluded from measurement ("its start-up phase is ignored").
	WarmUp sim.Time `json:"warmUpNs"`
	// Seeds to average over; more seeds smooth the random-loss noise.
	Seeds []int64 `json:"seeds"`
	// RTT is the fixed two-way propagation delay (paper: 200 ms).
	RTT sim.Time `json:"rttNs"`
	// DelayedAck runs the receivers with RFC 1122 delayed ACKs, in
	// which case the model constant becomes C = sqrt(3/4) (extension;
	// the paper's receivers ACK every packet, C = sqrt(3/2)).
	DelayedAck bool `json:"delayedAck"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *Figure7Config) fillDefaults() {
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0.001, 0.003, 0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.1}
	}
	if len(c.Variants) == 0 {
		c.Variants = []workload.Kind{workload.SACK, workload.RR}
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Second
	}
	if c.WarmUp <= 0 {
		c.WarmUp = 10 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.RTT <= 0 {
		c.RTT = 200 * time.Millisecond
	}
}

// Figure7Point is one (variant, loss rate) measurement.
type Figure7Point struct {
	Variant workload.Kind `json:"variant"`
	// LossRate is the configured uniform drop probability p.
	LossRate float64 `json:"lossRate"`
	// Window is the measured BW·RTT/MSS in packets, averaged over seeds.
	Window float64 `json:"window"`
	// ModelWindow is the Mathis bound C/sqrt(p) with C = sqrt(3/2).
	ModelWindow float64 `json:"modelWindow"`
	// PadhyeWindow is the timeout-aware Padhye et al. prediction, which
	// the paper cites as the more accurate refinement (§4).
	PadhyeWindow float64 `json:"padhyeWindow"`
	// Timeouts is the mean coarse-timeout count per run, explaining the
	// departure from the model at high p.
	Timeouts float64 `json:"timeouts"`
}

// Figure7Result is the full sweep.
type Figure7Result struct {
	Config Figure7Config  `json:"config"`
	Points []Figure7Point `json:"points"`
}

// Figure7 runs the model-fitness sweep. The topology keeps the
// bottleneck uncongested (10 Mbps, deep buffer) so that the injected
// uniform losses are the only loss process and the RTT stays pinned at
// the configured value, as the model assumes.
func Figure7(cfg Figure7Config) (*Figure7Result, error) {
	res, err := Run(NewFigure7Experiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*Figure7Result), nil
}

// Figure7Experiment adapts the model-fitness sweep to the Experiment
// interface: one job per (variant, loss rate, seed) cell.
type Figure7Experiment struct {
	cfg Figure7Config
}

// NewFigure7Experiment fills defaults and returns the experiment.
func NewFigure7Experiment(cfg Figure7Config) *Figure7Experiment {
	cfg.fillDefaults()
	return &Figure7Experiment{cfg: cfg}
}

// Name implements Experiment.
func (e *Figure7Experiment) Name() string { return "fig7" }

// figure7Out is one (variant, rate, seed) run's raw measurement.
type figure7Out struct {
	Window   float64
	Timeouts uint64
}

// Jobs implements Experiment.
func (e *Figure7Experiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, kind := range cfg.Variants {
		for _, p := range cfg.LossRates {
			for _, seed := range cfg.Seeds {
				jobs = append(jobs, sweep.Job{
					Name: fmt.Sprintf("%v p=%g seed=%d", kind, p, seed),
					Seed: seed,
					Run: func(seed int64) (any, error) {
						w, to, err := figure7Run(cfg, kind, p, seed)
						if err != nil {
							return nil, fmt.Errorf("figure 7 (%v, p=%g): %w", kind, p, err)
						}
						return figure7Out{Window: w, Timeouts: to}, nil
					},
				})
			}
		}
	}
	return jobs, nil
}

// Reduce implements Experiment: it averages the per-seed measurements
// into one point per (variant, loss rate) cell, walking the results in
// the same nested order Jobs emitted them.
func (e *Figure7Experiment) Reduce(results []any) (Renderable, error) {
	outs, err := sweep.Collect[figure7Out](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	c := model.CAckEveryPacket
	ackPerPacket := 1
	if cfg.DelayedAck {
		c = model.CDelayedAck
		ackPerPacket = 2
	}
	res := &Figure7Result{Config: cfg}
	i := 0
	for _, kind := range cfg.Variants {
		for _, p := range cfg.LossRates {
			var windowSum, timeoutSum float64
			for range cfg.Seeds {
				windowSum += outs[i].Window
				timeoutSum += float64(outs[i].Timeouts)
				i++
			}
			n := float64(len(cfg.Seeds))
			res.Points = append(res.Points, Figure7Point{
				Variant:      kind,
				LossRate:     p,
				Window:       windowSum / n,
				ModelWindow:  model.SqrtWindow(p, c),
				PadhyeWindow: model.PadhyeWindow(cfg.RTT.Seconds(), 1.0, p, ackPerPacket),
				Timeouts:     timeoutSum / n,
			})
		}
	}
	return res, nil
}

func figure7Run(cfg Figure7Config, kind workload.Kind, p float64, seed int64) (float64, uint64, error) {
	sched := sim.NewScheduler(seed)
	loss := netem.NewUniformLoss(p, sched.Rand(), nil)

	// Side links contribute 2 ms per direction; the bottleneck carries
	// the rest of the fixed RTT.
	sideDelay := 1 * time.Millisecond
	bottleneckDelay := cfg.RTT/2 - 2*sideDelay
	dcfg := netem.DumbbellConfig{
		Flows:           1,
		BottleneckBps:   10e6,
		BottleneckDelay: bottleneckDelay,
		SideBps:         100e6,
		SideDelay:       sideDelay,
		ForwardQueue:    netem.Must(netem.NewDropTail(1000)),
		Loss:            loss,
	}
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return 0, 0, err
	}
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:  kind,
		Bytes: tcp.Infinite,
		// Large enough that the advertised window never binds: the
		// injected loss process must be the only throughput constraint,
		// as the model assumes.
		Window:     128,
		DelayedAck: cfg.DelayedAck,
	})
	if err != nil {
		return 0, 0, err
	}

	sched.Run(cfg.Duration)

	bw := flow.Trace.GoodputBps(cfg.WarmUp, cfg.Duration)
	window := bw * cfg.RTT.Seconds() / float64(tcp.DefaultMSS*8)
	return window, flow.Trace.Timeouts, nil
}

// Render returns the sweep as a table of measured vs model windows.
func (r *Figure7Result) Render() string {
	t := Table{
		Title:  "Figure 7: fitness to the square-root model (window = BW*RTT/MSS, packets)",
		Header: []string{"p", "model C/sqrt(p)", "padhye"},
	}
	// One column per variant, plus timeouts.
	for _, k := range r.Config.Variants {
		t.Header = append(t.Header, k.String(), k.String()+" timeouts")
	}
	for _, p := range r.Config.LossRates {
		row := []string{fmt.Sprintf("%.3f", p), "", ""}
		for _, k := range r.Config.Variants {
			for _, pt := range r.Points {
				if pt.Variant == k && pt.LossRate == p {
					if row[1] == "" {
						row[1] = fmt.Sprintf("%.1f", pt.ModelWindow)
						row[2] = fmt.Sprintf("%.1f", pt.PadhyeWindow)
					}
					row = append(row, fmt.Sprintf("%.1f", pt.Window),
						fmt.Sprintf("%.1f", pt.Timeouts))
				}
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Point returns the measurement for (variant, p), if present.
func (r *Figure7Result) Point(kind workload.Kind, p float64) (Figure7Point, bool) {
	for _, pt := range r.Points {
		if pt.Variant == kind && pt.LossRate == p {
			return pt, true
		}
	}
	return Figure7Point{}, false
}
