package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/stats"
	"rrtcp/internal/sweep"
	"rrtcp/internal/tcp"
	"rrtcp/internal/workload"
)

// Table5Config parameterizes the fairness experiment (paper §5,
// Table 5): nineteen staggered background flows with infinite data plus
// one targeted 100 KB transfer starting at 4.8 s share a 25-packet
// drop-tail bottleneck; the targeted flow's transfer delay and loss
// rate are measured across the four {Reno, RR} background/target
// combinations.
type Table5Config struct {
	// Flows is the total connection count (paper: 20).
	Flows int `json:"flows"`
	// TargetBytes is the targeted transfer size (paper: 100 KB).
	TargetBytes int64 `json:"targetBytes"`
	// TargetStart is when the targeted flow begins (paper: 4.8 s).
	TargetStart sim.Time `json:"targetStartNs"`
	// StaggerInterval separates background flow starts (paper: 0.5 s).
	StaggerInterval sim.Time `json:"staggerIntervalNs"`
	// Horizon caps the simulation if the target never finishes.
	Horizon sim.Time `json:"horizonNs"`
	// Seed for the scheduler.
	Seed int64 `json:"seed"`
	// Seeds, when set, are averaged over (drop-tail queueing among 20
	// staggered flows is sensitive to phase effects).
	Seeds []int64 `json:"seeds"`
	// Cases overrides the four default combinations.
	Cases []Table5Case `json:"cases"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

// Table5Case names one background/target variant combination.
type Table5Case struct {
	Label      string        `json:"label"`
	Background workload.Kind `json:"background"`
	Target     workload.Kind `json:"target"`
}

func (c *Table5Config) fillDefaults() {
	if c.Flows <= 0 {
		c.Flows = 20
	}
	if c.TargetBytes <= 0 {
		c.TargetBytes = 100 * 1000
	}
	if c.TargetStart <= 0 {
		c.TargetStart = 4800 * time.Millisecond
	}
	if c.StaggerInterval <= 0 {
		c.StaggerInterval = 500 * time.Millisecond
	}
	if c.Horizon <= 0 {
		c.Horizon = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(c.Cases) == 0 {
		c.Cases = []Table5Case{
			{Label: "1: Reno bg / Reno target", Background: workload.Reno, Target: workload.Reno},
			{Label: "2: RR bg / Reno target", Background: workload.RR, Target: workload.Reno},
			{Label: "3: RR bg / RR target", Background: workload.RR, Target: workload.RR},
			{Label: "4: Reno bg / RR target", Background: workload.Reno, Target: workload.RR},
		}
	}
}

// Table5Row is the targeted flow's outcome for one case.
type Table5Row struct {
	Case Table5Case `json:"case"`
	// TransferDelay is the targeted transfer's completion time.
	TransferDelay sim.Time `json:"transferDelayNs"`
	// LossRate is the targeted flow's retransmission fraction.
	LossRate float64 `json:"lossRate"`
	// GoodputBps is the targeted flow's achieved bandwidth.
	GoodputBps float64 `json:"goodputBps"`
	// Finished reports completion within the horizon.
	Finished bool `json:"finished"`
	// DelayCI95Seconds is the 95% confidence half-width of the mean
	// transfer delay across seeds.
	DelayCI95Seconds float64 `json:"delayCI95Seconds,omitempty"`
}

// Table5Result aggregates all cases.
type Table5Result struct {
	Config Table5Config `json:"config"`
	Rows   []Table5Row  `json:"rows"`
}

// Table5 runs the fairness matrix, averaging each case over the
// configured seeds.
func Table5(cfg Table5Config) (*Table5Result, error) {
	res, err := Run(NewTable5Experiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*Table5Result), nil
}

// Table5Experiment adapts the fairness matrix to the Experiment
// interface: one job per (case, seed) cell.
type Table5Experiment struct {
	cfg Table5Config
}

// NewTable5Experiment fills defaults and returns the experiment.
func NewTable5Experiment(cfg Table5Config) *Table5Experiment {
	cfg.fillDefaults()
	return &Table5Experiment{cfg: cfg}
}

// Name implements Experiment.
func (e *Table5Experiment) Name() string { return "table5" }

// Jobs implements Experiment.
func (e *Table5Experiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, tc := range cfg.Cases {
		for _, seed := range cfg.Seeds {
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("%s seed=%d", tc.Label, seed),
				Seed: seed,
				Run: func(seed int64) (any, error) {
					row, err := table5Run(cfg, tc, seed)
					if err != nil {
						return nil, fmt.Errorf("table 5 (%s): %w", tc.Label, err)
					}
					return row, nil
				},
			})
		}
	}
	return jobs, nil
}

// Reduce implements Experiment: per-seed rows collapse into one row per
// case with a mean transfer delay and its 95% confidence half-width.
func (e *Table5Experiment) Reduce(results []any) (Renderable, error) {
	rows, err := sweep.Collect[Table5Row](results)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	res := &Table5Result{Config: cfg}
	i := 0
	for _, tc := range cfg.Cases {
		var agg Table5Row
		var delays []float64
		for range cfg.Seeds {
			row := rows[i]
			i++
			agg.Case = tc
			agg.LossRate += row.LossRate
			if row.Finished {
				delays = append(delays, row.TransferDelay.Seconds())
				agg.GoodputBps += row.GoodputBps
			}
		}
		agg.LossRate /= float64(len(cfg.Seeds))
		if len(delays) > 0 {
			agg.Finished = true
			summary := stats.Summarize(delays)
			agg.TransferDelay = sim.Time(summary.Mean * float64(time.Second))
			agg.DelayCI95Seconds = summary.CI95
			agg.GoodputBps /= float64(len(delays))
		}
		res.Rows = append(res.Rows, agg)
	}
	return res, nil
}

func table5Run(cfg Table5Config, tc Table5Case, seed int64) (Table5Row, error) {
	sched := sim.NewScheduler(seed)
	dcfg := netem.PaperDropTailConfig(cfg.Flows)
	dcfg.ForwardQueue = netem.Must(netem.NewDropTail(25)) // paper §5: buffer raised to 25
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return Table5Row{}, err
	}

	specs := make([]workload.FlowSpec, cfg.Flows)
	for i := 0; i < cfg.Flows-1; i++ {
		// A drop-tail dumbbell is fully deterministic, so averaging over
		// seeds only helps if the seed perturbs something: jitter each
		// background start by up to 100 ms to vary the queue phase.
		jitter := time.Duration(sched.Rand().Int63n(int64(100 * time.Millisecond)))
		specs[i] = workload.FlowSpec{
			Kind:    tc.Background,
			StartAt: time.Duration(i)*cfg.StaggerInterval + jitter,
			Bytes:   tcp.Infinite,
			Window:  30,
		}
	}
	target := cfg.Flows - 1
	specs[target] = workload.FlowSpec{
		Kind:    tc.Target,
		StartAt: cfg.TargetStart,
		Bytes:   cfg.TargetBytes,
		Window:  30,
		// Stop the run as soon as the targeted transfer completes; only
		// the targeted flow is measured.
		OnDone: sched.Stop,
	}
	flows, err := workload.InstallAll(sched, d, specs)
	if err != nil {
		return Table5Row{}, err
	}
	sched.Run(cfg.Horizon)

	row := Table5Row{Case: tc, LossRate: flows[target].Trace.LossRate()}
	if delay, ok := flows[target].Trace.TransferDelay(); ok {
		row.Finished = true
		row.TransferDelay = delay
		row.GoodputBps = float64(cfg.TargetBytes) * 8 / delay.Seconds()
	}
	return row, nil
}

// Render returns the fairness matrix as a text table.
func (r *Table5Result) Render() string {
	t := Table{
		Title: fmt.Sprintf("Table 5: targeted %d KB transfer starting at %.1fs vs %d background flows (drop-tail/25)",
			r.Config.TargetBytes/1000, r.Config.TargetStart.Seconds(), r.Config.Flows-1),
		Header: []string{"case", "transfer delay", "loss rate", "achieved bw"},
	}
	for _, row := range r.Rows {
		delay, bw := "DNF", "-"
		if row.Finished {
			delay = fmt.Sprintf("%.1fs ±%.1f", row.TransferDelay.Seconds(), row.DelayCI95Seconds)
			bw = kbps(row.GoodputBps)
		}
		t.AddRow(row.Case.Label, delay, fmt.Sprintf("%.1f%%", row.LossRate*100), bw)
	}
	return t.String()
}

// Row returns the outcome whose case label starts with prefix.
func (r *Table5Result) Row(bg, target workload.Kind) (Table5Row, bool) {
	for _, row := range r.Rows {
		if row.Case.Background == bg && row.Case.Target == target {
			return row, true
		}
	}
	return Table5Row{}, false
}
