package experiments

import (
	"fmt"
	"time"

	"rrtcp/internal/netem"
	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/workload"
)

// SmoothStartConfig parameterizes the slow-start overshoot experiment.
// The paper cites its companion work (Wang, Xin, Reeves & Shin, ISCC
// 2000 — reference [21], "Smooth-start") as an orthogonal optimization
// that reduces the bursty losses slow start inflicts on a small
// gateway buffer. We slow-start into the Table 3 bottleneck with and
// without the refinement and count the damage.
type SmoothStartConfig struct {
	// Variant of the recovery scheme cleaning up afterwards.
	Variant workload.Kind `json:"variant"`
	// TransferPackets is the transfer size in packets.
	TransferPackets int `json:"transferPackets"`
	// InitialSSThresh forces a deep slow start (default 32, far above
	// the ~18-packet pipe capacity).
	InitialSSThresh float64 `json:"initialSSThresh"`
	// Horizon caps each run.
	Horizon sim.Time `json:"horizonNs"`
	// Seed drives the scheduler.
	Seed int64 `json:"seed"`
	// Parallel bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Parallel int `json:"-"`
}

func (c *SmoothStartConfig) fillDefaults() {
	if c.Variant == 0 {
		c.Variant = workload.RR
	}
	if c.TransferPackets <= 0 {
		c.TransferPackets = 200
	}
	if c.InitialSSThresh <= 0 {
		c.InitialSSThresh = 32
	}
	if c.Horizon <= 0 {
		c.Horizon = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SmoothStartRow is one slow-start flavour's outcome.
type SmoothStartRow struct {
	Label string `json:"label"`
	// SlowStartDrops counts bottleneck drops during the first second —
	// the slow-start overshoot burst.
	SlowStartDrops uint64 `json:"slowStartDrops"`
	// TotalDrops counts bottleneck drops over the whole run.
	TotalDrops uint64 `json:"totalDrops"`
	// TransferDelay is the completion time.
	TransferDelay sim.Time `json:"transferDelayNs"`
	// Finished reports completion within the horizon.
	Finished bool `json:"finished"`
}

// SmoothStartResult compares classic against smooth slow start.
type SmoothStartResult struct {
	Config SmoothStartConfig `json:"config"`
	Rows   []SmoothStartRow  `json:"rows"`
}

// SmoothStart runs the comparison.
func SmoothStart(cfg SmoothStartConfig) (*SmoothStartResult, error) {
	res, err := Run(NewSmoothStartExperiment(cfg), RunOptions{Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	return res.(*SmoothStartResult), nil
}

// SmoothStartExperiment adapts the slow-start comparison to the
// Experiment interface: one job per slow-start flavour.
type SmoothStartExperiment struct {
	cfg SmoothStartConfig
}

// NewSmoothStartExperiment fills defaults and returns the experiment.
func NewSmoothStartExperiment(cfg SmoothStartConfig) *SmoothStartExperiment {
	cfg.fillDefaults()
	return &SmoothStartExperiment{cfg: cfg}
}

// Name implements Experiment.
func (e *SmoothStartExperiment) Name() string { return "smoothstart" }

// Jobs implements Experiment.
func (e *SmoothStartExperiment) Jobs() ([]sweep.Job, error) {
	cfg := e.cfg
	var jobs []sweep.Job
	for _, smooth := range []bool{false, true} {
		name := "classic"
		if smooth {
			name = "smooth"
		}
		jobs = append(jobs, sweep.Job{
			Name: name,
			Seed: cfg.Seed,
			Run: func(seed int64) (any, error) {
				row, err := smoothStartRun(cfg, smooth, seed)
				if err != nil {
					return nil, fmt.Errorf("smooth start (%t): %w", smooth, err)
				}
				return row, nil
			},
		})
	}
	return jobs, nil
}

// Reduce implements Experiment.
func (e *SmoothStartExperiment) Reduce(results []any) (Renderable, error) {
	rows, err := sweep.Collect[SmoothStartRow](results)
	if err != nil {
		return nil, err
	}
	return &SmoothStartResult{Config: e.cfg, Rows: rows}, nil
}

func smoothStartRun(cfg SmoothStartConfig, smooth bool, seed int64) (SmoothStartRow, error) {
	sched := sim.NewScheduler(seed)
	dcfg := netem.PaperDropTailConfig(1)
	d, err := netem.NewDumbbell(sched, dcfg)
	if err != nil {
		return SmoothStartRow{}, err
	}
	flow, err := workload.Install(sched, d, 0, workload.FlowSpec{
		Kind:            cfg.Variant,
		Bytes:           int64(cfg.TransferPackets) * 1000,
		Window:          64,
		InitialSSThresh: cfg.InitialSSThresh,
		SmoothStart:     smooth,
	})
	if err != nil {
		return SmoothStartRow{}, err
	}

	// Snapshot drops after the slow-start window.
	var earlyDrops uint64
	if err := sched.NewTimer(func() {
		earlyDrops = d.BottleneckQueue().Drops
	}).At(sched.Now() + time.Second); err != nil {
		return SmoothStartRow{}, err
	}

	sched.Run(cfg.Horizon)

	label := "classic slow start"
	if smooth {
		label = "smooth-start [21]"
	}
	row := SmoothStartRow{
		Label:          label,
		SlowStartDrops: earlyDrops,
		TotalDrops:     d.BottleneckQueue().Drops,
	}
	if delay, ok := flow.Trace.TransferDelay(); ok {
		row.Finished = true
		row.TransferDelay = delay
	}
	return row, nil
}

// Render returns the comparison as a text table.
func (r *SmoothStartResult) Render() string {
	t := Table{
		Title: fmt.Sprintf("Smooth-start [21]: %s slow-starting into the 8-packet Table 3 buffer",
			r.Config.Variant),
		Header: []string{"slow start", "overshoot drops", "total drops", "transfer delay"},
	}
	for _, row := range r.Rows {
		delay := "DNF"
		if row.Finished {
			delay = fmt.Sprintf("%.3fs", row.TransferDelay.Seconds())
		}
		t.AddRow(row.Label, fmt.Sprintf("%d", row.SlowStartDrops),
			fmt.Sprintf("%d", row.TotalDrops), delay)
	}
	return t.String()
}

// Row returns the outcome for smooth (true) or classic (false).
func (r *SmoothStartResult) Row(smooth bool) (SmoothStartRow, bool) {
	want := "classic slow start"
	if smooth {
		want = "smooth-start [21]"
	}
	for _, row := range r.Rows {
		if row.Label == want {
			return row, true
		}
	}
	return SmoothStartRow{}, false
}
