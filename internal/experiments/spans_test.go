package experiments

import (
	"bytes"
	"testing"

	"rrtcp/internal/telemetry"
	"rrtcp/internal/workload"
)

// figure5Spans runs one figure-5 variant with telemetry captured and
// returns the assembled spans (and the raw events for further checks).
func figure5Spans(t *testing.T, drops int, kind workload.Kind) ([]*telemetry.Span, []telemetry.Event) {
	t.Helper()
	ring := telemetry.NewRing(0)
	cfg := Figure5Config{
		Drops:     drops,
		Variants:  []workload.Kind{kind},
		Telemetry: telemetry.NewBus(ring),
	}
	if _, err := Figure5(cfg); err != nil {
		t.Fatalf("figure5 (%v, drops=%d): %v", kind, drops, err)
	}
	sink := telemetry.NewSpanSink()
	for _, ev := range ring.Events() {
		sink.Emit(ev)
	}
	return sink.Spans(), ring.Events()
}

func spansOfKind(spans []*telemetry.Span, kind telemetry.SpanKind) []*telemetry.Span {
	var out []*telemetry.Span
	for _, sp := range spans {
		if sp.Kind == kind {
			out = append(out, sp)
		}
	}
	return out
}

// A clean burst (two drops in one window) is one recovery episode. For
// RR that episode must decompose into exactly one retreat and one probe
// child with no further-loss detections — the paper's Figure 2 shape.
func TestFigure5RREpisodeShape(t *testing.T) {
	spans, _ := figure5Spans(t, 2, workload.RR)

	conns := spansOfKind(spans, telemetry.SpanConn)
	if len(conns) != 1 {
		t.Fatalf("%d conn spans, want 1: %+v", len(conns), conns)
	}
	conn := conns[0]
	if conn.Open {
		t.Fatal("conn span never closed")
	}

	recs := spansOfKind(spans, telemetry.SpanRecovery)
	if len(recs) != 1 {
		t.Fatalf("%d recovery episodes, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Open {
		t.Fatal("recovery episode never closed")
	}
	if rec.Parent != conn.ID {
		t.Fatalf("recovery parent = %d, want conn %d", rec.Parent, conn.ID)
	}
	if rec.Begin < conn.Begin || rec.End > conn.End {
		t.Fatalf("episode [%v,%v] outside conn [%v,%v]", rec.Begin, rec.End, conn.Begin, conn.End)
	}
	if rec.Attrs["further_losses"] != 0 {
		t.Fatalf("clean burst reported %v further losses", rec.Attrs["further_losses"])
	}
	if rec.Attrs["enter_cwnd"] <= rec.Attrs["exit_cwnd"] {
		t.Fatalf("recovery did not shrink the window: enter=%v exit=%v",
			rec.Attrs["enter_cwnd"], rec.Attrs["exit_cwnd"])
	}

	retreats := spansOfKind(spans, telemetry.SpanRetreat)
	probes := spansOfKind(spans, telemetry.SpanProbe)
	if len(retreats) != 1 || len(probes) != 1 {
		t.Fatalf("%d retreat / %d probe sub-phases, want 1/1", len(retreats), len(probes))
	}
	retreat, probe := retreats[0], probes[0]
	if retreat.Parent != rec.ID || probe.Parent != rec.ID {
		t.Fatal("sub-phases not parented to the episode")
	}
	// Retreat and probe tile the episode: retreat from enter to the
	// transition, probe from the transition to exit.
	if retreat.Begin != rec.Begin || retreat.End != probe.Begin || probe.End != rec.End {
		t.Fatalf("sub-phases do not tile the episode: retreat [%v,%v], probe [%v,%v], episode [%v,%v]",
			retreat.Begin, retreat.End, probe.Begin, probe.End, rec.Begin, rec.End)
	}
	if retreat.Duration() <= 0 || probe.Duration() <= 0 {
		t.Fatal("degenerate sub-phase duration")
	}
}

// Baseline variants enter and exit recovery through the generic sender
// path: the episode must assemble flat, with no RR sub-phases.
func TestFigure5BaselineEpisodeFlat(t *testing.T) {
	spans, _ := figure5Spans(t, 2, workload.Reno)
	if n := len(spansOfKind(spans, telemetry.SpanRecovery)); n != 1 {
		t.Fatalf("%d recovery episodes, want 1", n)
	}
	if n := len(spansOfKind(spans, telemetry.SpanRetreat)); n != 0 {
		t.Fatalf("reno episode has %d retreat sub-phases", n)
	}
	if n := len(spansOfKind(spans, telemetry.SpanProbe)); n != 0 {
		t.Fatalf("reno episode has %d probe sub-phases", n)
	}
}

// A six-drop burst forces RR to detect further losses inside the
// episode: the recovery span carries the further-loss count, the
// instants land inside the probe sub-phase, and actnum steps down at
// the detection (the algorithm deflates its estimate of packets
// actually in the network when another hole appears).
func TestFigure5RRFurtherLossShape(t *testing.T) {
	spans, _ := figure5Spans(t, 6, workload.RR)
	recs := spansOfKind(spans, telemetry.SpanRecovery)
	if len(recs) != 1 {
		t.Fatalf("%d recovery episodes, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Attrs["further_losses"] < 1 {
		t.Fatalf("six-drop burst detected %v further losses, want >= 1", rec.Attrs["further_losses"])
	}
	probes := spansOfKind(spans, telemetry.SpanProbe)
	if len(probes) != 1 {
		t.Fatalf("%d probe sub-phases, want 1", len(probes))
	}
	probe := probes[0]

	// Walk the probe's instants: every further-loss must be followed by
	// an actnum sample below the last one seen before it.
	lastActnum := probe.Attrs["actnum"]
	furtherLosses := 0
	checked := 0
	for i, evt := range probe.Events {
		if evt.At < probe.Begin || evt.At > probe.End {
			t.Fatalf("instant %s@%v outside probe [%v,%v]", evt.Name, evt.At, probe.Begin, probe.End)
		}
		switch evt.Name {
		case "further-loss":
			furtherLosses++
			for _, next := range probe.Events[i+1:] {
				if next.Name == "actnum" {
					if next.A >= lastActnum {
						t.Fatalf("actnum %v did not decrease after further loss (was %v)", next.A, lastActnum)
					}
					checked++
					break
				}
			}
		case "actnum":
			lastActnum = evt.A
		}
	}
	if furtherLosses == 0 {
		t.Fatal("no further-loss instants on the probe span")
	}
	if checked == 0 {
		t.Fatal("no actnum sample followed a further-loss detection")
	}
}

// The gauge series sampled during a figure-5 run must cover the sender
// gauges and the bottleneck queue, and every sample must fall inside
// the run.
func TestFigure5SampledSeries(t *testing.T) {
	_, events := figure5Spans(t, 2, workload.RR)
	sink := telemetry.NewSeriesSink()
	for _, ev := range events {
		sink.Emit(ev)
	}
	series := sink.Series()
	bySrc := map[string]*telemetry.Series{}
	for _, sr := range series {
		bySrc[sr.Src] = sr
	}
	for _, want := range []string{"cwnd", "ssthresh", "srtt", "rto", "flight", "actnum", "fwd.qlen"} {
		sr := bySrc[want]
		if sr == nil {
			t.Fatalf("no sampled series %q (have %v)", want, keys(bySrc))
		}
		if len(sr.T) == 0 {
			t.Fatalf("series %q is empty", want)
		}
	}
	// The cwnd series must show the episode: growth out of slow start,
	// then the recovery collapse — a halving-or-worse between adjacent
	// samples when the burst hits.
	cwnd := bySrc["cwnd"]
	grew, collapsed := false, false
	for i := 1; i < len(cwnd.V); i++ {
		if cwnd.V[i] > cwnd.V[0] {
			grew = true
		}
		if grew && cwnd.V[i] <= cwnd.V[i-1]/2 {
			collapsed = true
			break
		}
	}
	if !grew || !collapsed {
		t.Fatalf("cwnd series shows no recovery collapse (grew=%v collapsed=%v): %v",
			grew, collapsed, cwnd.V)
	}
}

func keys(m map[string]*telemetry.Series) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// The full export path on a real multi-variant run: the Chrome trace
// must pass structural validation and contain one track per
// (segment, flow) plus counter lanes.
func TestFigure5ChromeTraceExport(t *testing.T) {
	ring := telemetry.NewRing(0)
	cfg := Figure5Config{
		Drops:     2,
		Variants:  []workload.Kind{workload.NewReno, workload.RR},
		Telemetry: telemetry.NewBus(ring),
	}
	if _, err := Figure5(cfg); err != nil {
		t.Fatal(err)
	}
	spanSink := telemetry.NewSpanSink()
	seriesSink := telemetry.NewSeriesSink()
	for _, ev := range ring.Events() {
		spanSink.Emit(ev)
		seriesSink.Emit(ev)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, spanSink.Spans(), seriesSink.Series()); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("fig5 trace fails structural validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"seg0 flow0"`, `"seg1 flow0"`, // one span track per variant segment
		`"probe"`,                // RR's sub-phase survives export
		`"seg1 flow0 cwnd"`,      // sender gauge counter lane
		`"seg0 fwd.qlen"`,        // queue gauge counter lane
		`"displayTimeUnit":"ms"`, // trace header
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace missing %s:\n%.400s", want, out)
		}
	}
}
