// Package trace records per-flow time series — the sequence-number
// traces behind the paper's Figure 6 plots — and computes the summary
// metrics the evaluation reports: effective throughput, transfer delay,
// and packet-loss rate.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// EventKind classifies a trace sample.
type EventKind int

// Trace sample kinds.
const (
	EvSend EventKind = iota + 1 // data segment transmitted (first time)
	EvRetransmit
	EvAckRecv   // ACK processed at the sender
	EvDeliver   // in-order data delivered to the receiving app
	EvTimeout   // retransmission timer expired
	EvRecovery  // sender entered loss recovery (fast retransmit)
	EvExit      // sender left loss recovery
	EvCwnd      // congestion window sample
	EvDupAck    // duplicate ACK processed
	EvFlowDone  // application transfer completed
	EvFurther   // RR detected a further loss inside recovery
	EvPhaseFlip // RR retreat→probe transition
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRetransmit:
		return "rtx"
	case EvAckRecv:
		return "ack"
	case EvDeliver:
		return "deliver"
	case EvTimeout:
		return "timeout"
	case EvRecovery:
		return "recovery"
	case EvExit:
		return "exit"
	case EvCwnd:
		return "cwnd"
	case EvDupAck:
		return "dupack"
	case EvFlowDone:
		return "done"
	case EvFurther:
		return "further-loss"
	case EvPhaseFlip:
		return "probe"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Sample is one trace record.
type Sample struct {
	At   sim.Time
	Kind EventKind
	// Seq is the byte sequence number involved (send/rtx/ack/deliver).
	Seq int64
	// Value carries kind-specific data (cwnd in packets for EvCwnd).
	Value float64
}

// FlowTrace accumulates samples and counters for one TCP connection.
// A nil *FlowTrace is valid and records nothing, so endpoints can trace
// unconditionally.
type FlowTrace struct {
	Flow    int
	Name    string
	samples []Sample

	// Counters.
	DataSent     uint64 // first transmissions
	Retransmits  uint64
	Timeouts     uint64
	Recoveries   uint64
	DupAcks      uint64
	BytesAcked   int64
	DeliveredSeq int64

	startAt  sim.Time
	doneAt   sim.Time
	finished bool
}

// New returns an empty trace for the flow.
func New(flow int, name string) *FlowTrace {
	return &FlowTrace{Flow: flow, Name: name, doneAt: -1}
}

// Add appends a sample and updates counters.
func (t *FlowTrace) Add(at sim.Time, kind EventKind, seq int64, value float64) {
	if t == nil {
		return
	}
	t.samples = append(t.samples, Sample{At: at, Kind: kind, Seq: seq, Value: value})
	switch kind {
	case EvSend:
		t.DataSent++
	case EvRetransmit:
		t.Retransmits++
	case EvTimeout:
		t.Timeouts++
	case EvRecovery:
		t.Recoveries++
	case EvDupAck:
		t.DupAcks++
	case EvDeliver:
		if seq > t.DeliveredSeq {
			t.DeliveredSeq = seq
		}
	case EvAckRecv:
		if seq > t.BytesAcked {
			t.BytesAcked = seq
		}
	case EvFlowDone:
		t.finished = true
		t.doneAt = at
	}
}

// Emit implements telemetry.Sink, making FlowTrace a subscriber of the
// event bus rather than a parallel recording mechanism: the endpoints
// publish unified telemetry events, and the trace maps the flow-scoped
// ones onto its legacy sample kinds and counters. Events with no trace
// equivalent (actnum updates, substrate events) are ignored, so the
// per-flow sample series keeps its pre-telemetry shape.
func (t *FlowTrace) Emit(ev telemetry.Event) { t.OnEvent(ev) }

var _ telemetry.Sink = (*FlowTrace)(nil)

// OnEvent is the typed form of Emit; a nil receiver records nothing.
func (t *FlowTrace) OnEvent(ev telemetry.Event) {
	if t == nil {
		return
	}
	switch ev.Kind {
	case telemetry.KSend:
		t.Add(ev.At, EvSend, ev.Seq, 0)
	case telemetry.KRetransmit:
		t.Add(ev.At, EvRetransmit, ev.Seq, 0)
	case telemetry.KAck:
		t.Add(ev.At, EvAckRecv, ev.Seq, 0)
	case telemetry.KDupAck:
		t.Add(ev.At, EvDupAck, ev.Seq, 0)
	case telemetry.KTimeout:
		t.Add(ev.At, EvTimeout, ev.Seq, 0)
	case telemetry.KCwnd:
		t.Add(ev.At, EvCwnd, ev.Seq, ev.A)
	case telemetry.KFlowDone:
		t.Add(ev.At, EvFlowDone, ev.Seq, 0)
	case telemetry.KDeliver:
		t.Add(ev.At, EvDeliver, ev.Seq, 0)
	case telemetry.KRecoveryEnter:
		t.Add(ev.At, EvRecovery, ev.Seq, ev.A)
	case telemetry.KRecoveryExit:
		t.Add(ev.At, EvExit, ev.Seq, ev.A)
	case telemetry.KFurtherLoss:
		t.Add(ev.At, EvFurther, ev.Seq, ev.A-ev.B)
	case telemetry.KRetreatProbe:
		t.Add(ev.At, EvPhaseFlip, ev.Seq, ev.A)
	}
}

// SetStart records when the flow began transmitting.
func (t *FlowTrace) SetStart(at sim.Time) {
	if t == nil {
		return
	}
	t.startAt = at
}

// Samples returns a copy of the recorded samples.
func (t *FlowTrace) Samples() []Sample {
	if t == nil {
		return nil
	}
	out := make([]Sample, len(t.samples))
	copy(out, t.samples)
	return out
}

// SamplesOf returns the samples of one kind, in time order.
func (t *FlowTrace) SamplesOf(kind EventKind) []Sample {
	if t == nil {
		return nil
	}
	var out []Sample
	for _, s := range t.samples {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Finished reports whether the flow's transfer completed, and when.
func (t *FlowTrace) Finished() (bool, sim.Time) {
	if t == nil {
		return false, 0
	}
	return t.finished, t.doneAt
}

// TransferDelay is the elapsed time from flow start to completion; it
// returns false if the flow never finished.
func (t *FlowTrace) TransferDelay() (sim.Time, bool) {
	if t == nil || !t.finished {
		return 0, false
	}
	return t.doneAt - t.startAt, true
}

// LossRate is the fraction of data transmissions (including
// retransmissions) that had to be retransmitted — the "packet loss
// rate" metric of the paper's Table 5.
func (t *FlowTrace) LossRate() float64 {
	if t == nil {
		return 0
	}
	total := t.DataSent + t.Retransmits
	if total == 0 {
		return 0
	}
	return float64(t.Retransmits) / float64(total)
}

// GoodputBps returns acknowledged application bytes per second over
// [from, to] — the paper's "effective throughput" metric.
func (t *FlowTrace) GoodputBps(from, to sim.Time) float64 {
	if t == nil || to <= from {
		return 0
	}
	var lo, hi int64 = -1, 0
	for _, s := range t.samples {
		if s.Kind != EvAckRecv {
			continue
		}
		if s.At < from {
			if s.Seq > lo {
				lo = s.Seq
			}
			continue
		}
		if s.At > to {
			break
		}
		if lo < 0 {
			lo = 0
		}
		if s.Seq > hi {
			hi = s.Seq
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		return 0
	}
	return float64(hi-lo) * 8 / (to - from).Seconds()
}

// SeqSeries returns (time, packet-number) points for send and
// retransmit events — the standard TCP sequence plot of Figure 6 —
// with sequence numbers scaled to packets of the given size.
func (t *FlowTrace) SeqSeries(packetSize int64) []Point {
	if t == nil || packetSize <= 0 {
		return nil
	}
	var pts []Point
	for _, s := range t.samples {
		if s.Kind == EvSend || s.Kind == EvRetransmit {
			pts = append(pts, Point{X: s.At.Seconds(), Y: float64(s.Seq) / float64(packetSize)})
		}
	}
	return pts
}

// Point is an (x, y) pair for plotted series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// RenderASCII draws a crude scatter plot of the points — enough to eyeball
// the Figure 6 shapes in a terminal. Width and height are in cells.
func RenderASCII(pts []Point, width, height int) string {
	if len(pts) == 0 || width < 2 || height < 2 {
		return "(no data)\n"
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %.1f..%.1f  x: %.2fs..%.2fs\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// SortSamples orders samples by time then sequence (helper for tests).
func SortSamples(ss []Sample) {
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].At != ss[j].At {
			return ss[i].At < ss[j].At
		}
		return ss[i].Seq < ss[j].Seq
	})
}
