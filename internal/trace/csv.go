package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams the trace's samples as CSV with the header
// time_s,event,seq,value — the raw material for external analysis of a
// run (spreadsheets, pandas, gnuplot). The header row is emitted even
// for a nil receiver or an empty trace, so downstream parsers always
// see a well-formed (if empty) file.
func (t *FlowTrace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "event", "seq", "value"}); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	if t == nil {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return fmt.Errorf("trace: csv flush: %w", err)
		}
		return nil
	}
	for _, s := range t.samples {
		rec := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			s.Kind.String(),
			strconv.FormatInt(s.Seq, 10),
			strconv.FormatFloat(s.Value, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: csv flush: %w", err)
	}
	return nil
}
