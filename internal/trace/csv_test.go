package trace

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
)

const csvHeader = "time_s,event,seq,value\n"

func TestWriteCSVNilReceiver(t *testing.T) {
	var tr *FlowTrace
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatalf("nil receiver: %v", err)
	}
	if b.String() != csvHeader {
		t.Fatalf("nil receiver output %q, want header only", b.String())
	}
}

func TestWriteCSVEmptyTrace(t *testing.T) {
	tr := New(0, "rr")
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if b.String() != csvHeader {
		t.Fatalf("empty trace output %q, want header only", b.String())
	}
}

func TestWriteCSVRows(t *testing.T) {
	tr := New(0, "rr")
	tr.Add(time.Second, EvSend, 1000, 0)
	tr.Add(2*time.Second, EvCwnd, 2000, 8.5)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), b.String())
	}
	if lines[0] != strings.TrimSuffix(csvHeader, "\n") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1.000000,send,1000,0.000" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2.000000,cwnd,2000,8.500" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestOnEventMapsTelemetryKinds(t *testing.T) {
	tr := New(0, "rr")
	tr.OnEvent(telemetry.Event{At: time.Second, Kind: telemetry.KCwnd, Seq: 1000, A: 7})
	tr.OnEvent(telemetry.Event{At: 2 * time.Second, Kind: telemetry.KRecoveryEnter, Seq: 2000, A: 13, B: 6.5})
	tr.OnEvent(telemetry.Event{At: 3 * time.Second, Kind: telemetry.KFurtherLoss, Seq: 3000, A: 4, B: 1})
	tr.OnEvent(telemetry.Event{At: 4 * time.Second, Kind: telemetry.KRecoveryExit, Seq: 4000, A: 5})

	checks := []struct {
		kind  EventKind
		value float64
	}{
		{EvCwnd, 7},
		{EvRecovery, 13},
		{EvFurther, 3}, // actnum − ndup
		{EvExit, 5},
	}
	for _, c := range checks {
		ss := tr.SamplesOf(c.kind)
		if len(ss) != 1 {
			t.Fatalf("%v samples = %d, want 1", c.kind, len(ss))
		}
		if ss[0].Value != c.value {
			t.Fatalf("%v value = %v, want %v", c.kind, ss[0].Value, c.value)
		}
	}
	// KActnum is deliberately not mapped: the legacy sample shape
	// predates per-RTT actnum telemetry.
	tr.OnEvent(telemetry.Event{At: 5 * time.Second, Kind: telemetry.KActnum, A: 4})
	if n := len(tr.Samples()); n != 4 {
		t.Fatalf("samples = %d, want 4 (actnum must not add one)", n)
	}
}
