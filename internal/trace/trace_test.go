package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *FlowTrace
	tr.Add(0, EvSend, 0, 0) // must not panic
	tr.SetStart(0)
	if tr.Samples() != nil {
		t.Fatal("nil trace returned samples")
	}
	if tr.LossRate() != 0 {
		t.Fatal("nil trace loss rate")
	}
	if tr.GoodputBps(0, time.Second) != 0 {
		t.Fatal("nil trace goodput")
	}
	if _, ok := tr.TransferDelay(); ok {
		t.Fatal("nil trace finished")
	}
}

func TestCounters(t *testing.T) {
	tr := New(1, "test")
	tr.Add(0, EvSend, 0, 0)
	tr.Add(1, EvSend, 1000, 0)
	tr.Add(2, EvRetransmit, 0, 0)
	tr.Add(3, EvTimeout, 0, 0)
	tr.Add(4, EvRecovery, 0, 0)
	tr.Add(5, EvDupAck, 0, 0)
	if tr.DataSent != 2 || tr.Retransmits != 1 || tr.Timeouts != 1 ||
		tr.Recoveries != 1 || tr.DupAcks != 1 {
		t.Fatalf("counters wrong: %+v", tr)
	}
}

func TestLossRate(t *testing.T) {
	tr := New(1, "test")
	for i := 0; i < 9; i++ {
		tr.Add(0, EvSend, int64(i)*1000, 0)
	}
	tr.Add(0, EvRetransmit, 0, 0)
	if got := tr.LossRate(); got != 0.1 {
		t.Fatalf("loss rate = %v, want 0.1", got)
	}
}

func TestLossRateEmpty(t *testing.T) {
	if New(0, "x").LossRate() != 0 {
		t.Fatal("empty trace loss rate nonzero")
	}
}

func TestTransferDelay(t *testing.T) {
	tr := New(1, "test")
	tr.SetStart(2 * time.Second)
	tr.Add(5*time.Second, EvFlowDone, 100, 0)
	delay, ok := tr.TransferDelay()
	if !ok || delay != 3*time.Second {
		t.Fatalf("delay = %v, %v; want 3s", delay, ok)
	}
	done, at := tr.Finished()
	if !done || at != 5*time.Second {
		t.Fatalf("finished = %v at %v", done, at)
	}
}

func TestGoodputBps(t *testing.T) {
	tr := New(1, "test")
	// Acks: 10 KB acked at t=1s, 20 KB at t=2s.
	tr.Add(time.Second, EvAckRecv, 10_000, 0)
	tr.Add(2*time.Second, EvAckRecv, 20_000, 0)
	// Over [0, 2s]: 20 KB → 80 Kbps.
	if got := tr.GoodputBps(0, 2*time.Second); got != 80_000 {
		t.Fatalf("goodput = %v, want 80000", got)
	}
	// Over [1s, 2s]: only the second 10 KB counts → 80 Kbps too.
	if got := tr.GoodputBps(time.Second+1, 2*time.Second); got < 79_000 || got > 81_000 {
		t.Fatalf("windowed goodput = %v, want ~80000", got)
	}
}

func TestGoodputEmptyWindow(t *testing.T) {
	tr := New(1, "test")
	if tr.GoodputBps(time.Second, time.Second) != 0 {
		t.Fatal("zero-width window produced goodput")
	}
	if tr.GoodputBps(2*time.Second, time.Second) != 0 {
		t.Fatal("inverted window produced goodput")
	}
}

func TestSamplesOfFiltersKind(t *testing.T) {
	tr := New(1, "test")
	tr.Add(0, EvSend, 0, 0)
	tr.Add(1, EvRetransmit, 1000, 0)
	tr.Add(2, EvSend, 2000, 0)
	if got := len(tr.SamplesOf(EvSend)); got != 2 {
		t.Fatalf("%d send samples, want 2", got)
	}
	if got := len(tr.SamplesOf(EvTimeout)); got != 0 {
		t.Fatalf("%d timeout samples, want 0", got)
	}
}

func TestSeqSeries(t *testing.T) {
	tr := New(1, "test")
	tr.Add(time.Second, EvSend, 5000, 0)
	tr.Add(2*time.Second, EvRetransmit, 5000, 0)
	tr.Add(3*time.Second, EvAckRecv, 6000, 0) // not part of the series
	pts := tr.SeqSeries(1000)
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	if pts[0].X != 1 || pts[0].Y != 5 {
		t.Fatalf("point 0 = %+v, want (1, 5)", pts[0])
	}
	if tr.SeqSeries(0) != nil {
		t.Fatal("zero packet size produced points")
	}
}

func TestRenderASCII(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 4}}
	out := RenderASCII(pts, 20, 10)
	if !strings.Contains(out, "*") {
		t.Fatal("no points rendered")
	}
	if RenderASCII(nil, 20, 10) != "(no data)\n" {
		t.Fatal("empty input not handled")
	}
	if RenderASCII(pts, 1, 1) != "(no data)\n" {
		t.Fatal("degenerate grid not handled")
	}
	// Identical points must not divide by zero.
	same := []Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if !strings.Contains(RenderASCII(same, 10, 5), "*") {
		t.Fatal("degenerate range not handled")
	}
}

func TestSortSamples(t *testing.T) {
	ss := []Sample{
		{At: 2, Seq: 1},
		{At: 1, Seq: 2},
		{At: 1, Seq: 1},
	}
	SortSamples(ss)
	if ss[0].At != 1 || ss[0].Seq != 1 || ss[2].At != 2 {
		t.Fatalf("sort wrong: %+v", ss)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSend, EvRetransmit, EvAckRecv, EvDeliver, EvTimeout,
		EvRecovery, EvExit, EvCwnd, EvDupAck, EvFlowDone, EvFurther, EvPhaseFlip}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

// Property: BytesAcked equals the maximum acked sequence ever recorded.
func TestBytesAckedProperty(t *testing.T) {
	f := func(acks []uint32) bool {
		tr := New(1, "t")
		var maxAck int64
		for i, a := range acks {
			seq := int64(a)
			tr.Add(time.Duration(i), EvAckRecv, seq, 0)
			if seq > maxAck {
				maxAck = seq
			}
		}
		return tr.BytesAcked == maxAck
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(1, "test")
	tr.Add(time.Second, EvSend, 1000, 0)
	tr.Add(2*time.Second, EvCwnd, 1000, 4.5)
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	if lines[0] != "time_s,event,seq,value" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000000,send,1000,") {
		t.Fatalf("row %q", lines[1])
	}
	if !strings.Contains(lines[2], "cwnd") || !strings.Contains(lines[2], "4.500") {
		t.Fatalf("row %q", lines[2])
	}
}

func TestWriteCSVNil(t *testing.T) {
	var tr *FlowTrace
	if err := tr.WriteCSV(&strings.Builder{}); err != nil {
		t.Fatalf("nil trace: %v", err)
	}
}

// Property: RenderASCII never panics and always contains every point
// marker for arbitrary inputs.
func TestRenderASCIIProperty(t *testing.T) {
	f := func(xs, ys []int16, w, h uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([]Point, 0, n)
		for i := 0; i < n; i++ {
			pts = append(pts, Point{X: float64(xs[i]), Y: float64(ys[i])})
		}
		out := RenderASCII(pts, int(w%100), int(h%40))
		if len(pts) == 0 || int(w%100) < 2 || int(h%40) < 2 {
			return out == "(no data)\n"
		}
		return strings.Contains(out, "*")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
