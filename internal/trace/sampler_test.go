package trace

import (
	"testing"
	"time"

	"rrtcp/internal/sim"
)

func TestSamplerPollsAtInterval(t *testing.T) {
	sched := sim.NewScheduler(1)
	calls := 0
	s := NewSampler(sched, 100*time.Millisecond, func() float64 {
		calls++
		return float64(calls)
	})
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	sched.Run(time.Second)
	pts := s.Points()
	if len(pts) != 10 {
		t.Fatalf("%d samples in 1s at 100ms, want 10", len(pts))
	}
	if pts[0].X != 0.1 || pts[9].X != 1.0 {
		t.Fatalf("sample times wrong: first %v last %v", pts[0].X, pts[9].X)
	}
	if s.Mean() != 5.5 {
		t.Fatalf("mean = %v, want 5.5", s.Mean())
	}
}

func TestSamplerStop(t *testing.T) {
	sched := sim.NewScheduler(1)
	s := NewSampler(sched, 100*time.Millisecond, func() float64 { return 1 })
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	sched.Run(300 * time.Millisecond)
	s.Stop()
	n := len(s.Points())
	sched.Run(time.Second)
	if len(s.Points()) > n+1 {
		t.Fatalf("sampler kept polling after Stop: %d → %d", n, len(s.Points()))
	}
}

func TestSamplerEmptyMean(t *testing.T) {
	sched := sim.NewScheduler(1)
	s := NewSampler(sched, time.Second, func() float64 { return 1 })
	if s.Mean() != 0 {
		t.Fatal("empty mean nonzero")
	}
}

func TestDeltaProbe(t *testing.T) {
	counter := 0.0
	probe := DeltaProbe(func() float64 { return counter })
	if got := probe(); got != 0 {
		t.Fatalf("first poll = %v, want 0 (priming)", got)
	}
	counter = 10
	if got := probe(); got != 10 {
		t.Fatalf("delta = %v, want 10", got)
	}
	counter = 15
	if got := probe(); got != 5 {
		t.Fatalf("delta = %v, want 5", got)
	}
	if got := probe(); got != 0 {
		t.Fatalf("idle delta = %v, want 0", got)
	}
}

func TestSamplerClampsInterval(t *testing.T) {
	sched := sim.NewScheduler(1)
	s := NewSampler(sched, 0, func() float64 { return 1 })
	if s.interval <= 0 {
		t.Fatal("non-positive interval not clamped")
	}
}
