package trace

import "rrtcp/internal/sim"

// Sampler polls a scalar probe at a fixed simulated interval and
// records the series — used for queue occupancy and link utilization,
// the quantities behind the paper's claim that RR "achieves higher
// link utilization while recovering the lost packets".
type Sampler struct {
	sched    *sim.Scheduler
	interval sim.Time
	probe    func() float64
	timer    *sim.Timer

	points  []Point
	stopped bool
}

// NewSampler builds a sampler; call Start to begin polling.
func NewSampler(sched *sim.Scheduler, interval sim.Time, probe func() float64) *Sampler {
	if interval <= 0 {
		interval = 1
	}
	s := &Sampler{sched: sched, interval: interval, probe: probe}
	s.timer = sched.NewTimer(s.tick)
	return s
}

// Start schedules the first poll one interval from now.
func (s *Sampler) Start() error {
	return s.timer.At(s.sched.Now() + s.interval)
}

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	s.points = append(s.points, Point{
		X: s.sched.Now().Seconds(),
		Y: s.probe(),
	})
	s.timer.Reset(s.interval)
}

// Stop halts polling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

// Points returns a copy of the recorded series.
func (s *Sampler) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Mean returns the arithmetic mean of the sampled values (0 if empty).
func (s *Sampler) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Y
	}
	return sum / float64(len(s.points))
}

// DeltaProbe adapts a monotonically increasing counter (bytes sent,
// packets forwarded) into a per-interval rate probe: each poll returns
// the counter's increase since the previous poll.
func DeltaProbe(counter func() float64) func() float64 {
	var last float64
	var primed bool
	return func() float64 {
		cur := counter()
		if !primed {
			primed = true
			last = cur
			return 0
		}
		d := cur - last
		last = cur
		return d
	}
}
