// Package guard is the simulator's overload-robustness layer: resource
// budgets attached to a sim.Scheduler that convert runaway runs —
// event storms, frozen clocks, unbounded heaps, wall-clock wedges —
// into a typed *OverloadError and a clean stop, instead of an OOM kill
// or a hang.
//
// The paper's evaluation scales to regimes (thousands of concurrent
// flows, adversarial fault schedules) where a single pathological run
// can take the whole sweep down with it. The guard makes "this cell
// blew its budget" a first-class, reportable outcome: the scheduler
// stops after the in-flight event, the monitor retains the typed error,
// a telemetry event records what tripped, and internal/sweep converts
// the failure into a non-retried Degraded result so the sweep completes
// and reports rather than crashing.
//
// Determinism: the event-count, sim-time, and event-storm budgets are
// functions of the event sequence alone, so a given seed trips at the
// same event every run. The wall-clock and heap ceilings are sampled
// from the machine and inherently nondeterministic; they exist as
// last-resort backstops, and a run they stop is already outside the
// deterministic regime. With no budget tripped the guard observes but
// never steers, so guarded and unguarded runs process byte-identical
// event sequences.
package guard

import (
	"fmt"
	"runtime"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// Resource names, used as OverloadError.Resource and as the Src of the
// telemetry "overload" event.
const (
	// ResourceEvents is the processed-event-count budget.
	ResourceEvents = "events"
	// ResourceSimTime is the simulated-clock budget.
	ResourceSimTime = "sim-time"
	// ResourceStorm is the event-storm/Zeno detector: too many events
	// processed without the simulated clock advancing.
	ResourceStorm = "event-storm"
	// ResourceWall is the wall-clock budget (sampled, nondeterministic).
	ResourceWall = "wall-clock"
	// ResourceHeap is the sampled heap ceiling (nondeterministic).
	ResourceHeap = "heap"
)

// Limits is a set of resource budgets; every zero field means "no
// limit", so the zero value guards nothing.
type Limits struct {
	// MaxEvents bounds the total number of processed events.
	// Deterministic: a run trips at exactly this count.
	MaxEvents uint64
	// MaxSimTime bounds the simulated clock — the budget form of a run
	// horizon, for RunAll-style executions that have none. Deterministic.
	MaxSimTime sim.Time
	// StormEvents is the event-storm/Zeno detector: the run trips after
	// this many consecutive events fire without the simulated clock
	// advancing (a zero-delay self-rescheduling loop would otherwise
	// spin forever, invisible to any sim-time watchdog — including
	// invariant.StartWatchdog, whose ticks are themselves sim-time
	// scheduled). Deterministic.
	StormEvents uint64
	// MaxWall bounds the run's wall-clock time, checked every
	// SampleEvery events. Nondeterministic by nature; a backstop.
	MaxWall time.Duration
	// MaxHeapBytes bounds the process heap (runtime.MemStats.HeapAlloc),
	// sampled every SampleEvery events. Nondeterministic; a backstop
	// against OOM, not an accounting tool.
	MaxHeapBytes uint64
	// SampleEvery is the cadence (in processed events) of the wall and
	// heap checks; zero selects DefaultSampleEvery. The deterministic
	// budgets are checked on every event regardless.
	SampleEvery uint64
}

// DefaultSampleEvery is the wall/heap sampling cadence when
// Limits.SampleEvery is zero: frequent enough to catch a blow-up within
// a few milliseconds of simulation, rare enough that ReadMemStats cost
// stays invisible.
const DefaultSampleEvery = 16384

// Enabled reports whether any budget is set.
func (l Limits) Enabled() bool {
	return l.MaxEvents > 0 || l.MaxSimTime > 0 || l.StormEvents > 0 ||
		l.MaxWall > 0 || l.MaxHeapBytes > 0
}

// Validate rejects negative budgets (durations are the only signed
// fields).
func (l Limits) Validate() error {
	if l.MaxSimTime < 0 {
		return fmt.Errorf("guard: MaxSimTime must be non-negative, got %v", l.MaxSimTime)
	}
	if l.MaxWall < 0 {
		return fmt.Errorf("guard: MaxWall must be non-negative, got %v", l.MaxWall)
	}
	return nil
}

// OverloadError reports a tripped resource budget. It implements the
// structural Degraded marker internal/sweep looks for, so a job that
// returns (or wraps) one becomes a Degraded sweep result rather than a
// failure.
type OverloadError struct {
	// Resource names the budget that tripped (the Resource* constants).
	Resource string `json:"resource"`
	// Observed and Limit quantify the trip in the resource's own unit
	// (events, seconds, bytes).
	Observed float64 `json:"observed"`
	Limit    float64 `json:"limit"`
	// At is the simulated instant of the trip; Events the processed
	// count.
	At     sim.Time `json:"atNs"`
	Events uint64   `json:"events"`
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("guard: %s budget exceeded: %g > %g (at %v, %d events)",
		e.Resource, e.Observed, e.Limit, e.At, e.Events)
}

// Degraded marks the error as a budget trip: the run degraded by
// design rather than failing. internal/sweep discovers the marker
// structurally (like its Transient taxonomy) and converts the job into
// a Degraded result instead of a sweep failure.
func (e *OverloadError) Degraded() bool { return true }

// Monitor attaches a Limits set to one scheduler via its guard hook.
// All methods run on the simulation goroutine; a monitor belongs to
// exactly one scheduler.
type Monitor struct {
	limits Limits
	bus    *telemetry.Bus
	err    *OverloadError

	// Event-storm tracking: the sim time last observed and the number of
	// consecutive events processed at it.
	lastNow  sim.Time
	stormRun uint64

	// Wall-clock origin, set at the first guarded event so setup cost
	// (topology construction) doesn't count against the run.
	wallStart time.Time
}

// Attach validates the limits and installs a monitor on the scheduler's
// guard hook. A tripped budget stops the scheduler after the in-flight
// event, records the typed *OverloadError (retrievable via Err and
// sim.Scheduler.GuardErr), and publishes a telemetry "overload" event
// on bus (which may be nil). Attaching an empty Limits removes any
// installed guard, restoring the zero-cost path.
func Attach(sched *sim.Scheduler, limits Limits, bus *telemetry.Bus) (*Monitor, error) {
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	if limits.SampleEvery == 0 {
		limits.SampleEvery = DefaultSampleEvery
	}
	m := &Monitor{limits: limits, bus: bus}
	if !limits.Enabled() {
		sched.SetGuard(nil)
		return m, nil
	}
	sched.SetGuard(m.check)
	return m, nil
}

// Err returns the budget trip that stopped the run, or nil. Nil-safe.
func (m *Monitor) Err() *OverloadError {
	if m == nil {
		return nil
	}
	return m.err
}

// Tripped reports whether any budget has tripped. Nil-safe.
func (m *Monitor) Tripped() bool { return m.Err() != nil }

// check is the scheduler guard hook. The deterministic budgets (events,
// sim-time, storm) are evaluated on every event, in a fixed order so
// simultaneous trips resolve identically every run; the sampled
// backstops (wall, heap) run every SampleEvery events. Once tripped the
// monitor keeps returning the same error, so a caller that ignores the
// stop and calls Run again stops immediately instead of burning more
// budget.
func (m *Monitor) check(now sim.Time, processed uint64, pending int) error {
	if m.err != nil {
		return m.err
	}
	l := m.limits
	if now == m.lastNow {
		m.stormRun++
	} else {
		m.lastNow = now
		m.stormRun = 0
	}
	switch {
	case l.MaxEvents > 0 && processed >= l.MaxEvents:
		return m.trip(ResourceEvents, float64(processed), float64(l.MaxEvents), now, processed)
	case l.MaxSimTime > 0 && now >= l.MaxSimTime:
		return m.trip(ResourceSimTime, now.Seconds(), l.MaxSimTime.Seconds(), now, processed)
	case l.StormEvents > 0 && m.stormRun >= l.StormEvents:
		return m.trip(ResourceStorm, float64(m.stormRun), float64(l.StormEvents), now, processed)
	}
	if (l.MaxWall > 0 || l.MaxHeapBytes > 0) && processed%l.SampleEvery == 0 {
		if l.MaxWall > 0 {
			if m.wallStart.IsZero() {
				m.wallStart = time.Now()
			} else if wall := time.Since(m.wallStart); wall >= l.MaxWall {
				return m.trip(ResourceWall, wall.Seconds(), l.MaxWall.Seconds(), now, processed)
			}
		}
		if l.MaxHeapBytes > 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc >= l.MaxHeapBytes {
				return m.trip(ResourceHeap, float64(ms.HeapAlloc), float64(l.MaxHeapBytes), now, processed)
			}
		}
	}
	return nil
}

// trip records and publishes the budget violation.
func (m *Monitor) trip(resource string, observed, limit float64, at sim.Time, events uint64) error {
	m.err = &OverloadError{
		Resource: resource, Observed: observed, Limit: limit,
		At: at, Events: events,
	}
	m.bus.Publish(telemetry.Event{
		At:   at,
		Comp: telemetry.CompGuard,
		Kind: telemetry.KOverload,
		Src:  resource,
		Flow: telemetry.NoFlow,
		A:    observed,
		B:    limit,
	})
	return m.err
}
