package guard

import (
	"strings"
	"testing"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
)

// tickChain schedules a self-rescheduling event that advances the clock
// by step per firing, forever — a minimal unbounded workload.
func tickChain(t *testing.T, sched *sim.Scheduler, step sim.Time) {
	t.Helper()
	var tick func()
	tick = func() {
		if _, err := sched.Schedule(step, tick); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sched.Schedule(step, tick); err != nil {
		t.Fatal(err)
	}
}

// collector records every event published on the bus.
type collector struct{ events []telemetry.Event }

func (c *collector) Emit(ev telemetry.Event) { c.events = append(c.events, ev) }

func TestMaxEventsTripsDeterministically(t *testing.T) {
	run := func() *OverloadError {
		sched := sim.NewScheduler(1)
		tickChain(t, sched, time.Millisecond)
		mon, err := Attach(sched, Limits{MaxEvents: 100}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched.Run(time.Hour)
		return mon.Err()
	}
	first := run()
	if first == nil {
		t.Fatal("budget never tripped")
	}
	if first.Resource != ResourceEvents {
		t.Fatalf("tripped %q, want %q", first.Resource, ResourceEvents)
	}
	if first.Events != 100 {
		t.Fatalf("tripped at event %d, want 100", first.Events)
	}
	if second := run(); *second != *first {
		t.Fatalf("non-deterministic trip: %+v vs %+v", first, second)
	}
}

func TestMaxSimTimeTrips(t *testing.T) {
	sched := sim.NewScheduler(1)
	tickChain(t, sched, time.Millisecond)
	mon, err := Attach(sched, Limits{MaxSimTime: 50 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Hour)
	oe := mon.Err()
	if oe == nil || oe.Resource != ResourceSimTime {
		t.Fatalf("got %v, want a %s trip", oe, ResourceSimTime)
	}
	if oe.At < 50*time.Millisecond {
		t.Fatalf("tripped at %v, before the %v budget", oe.At, 50*time.Millisecond)
	}
	if got := sched.GuardErr(); got != error(oe) {
		t.Fatalf("scheduler retained %v, monitor %v", got, oe)
	}
}

func TestStormDetectorTripsOnFrozenClock(t *testing.T) {
	sched := sim.NewScheduler(1)
	// A zero-delay self-rescheduling loop: the clock never advances, so
	// no horizon and no sim-time watchdog can end this run.
	tickChain(t, sched, 0)
	mon, err := Attach(sched, Limits{StormEvents: 500}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sched.Run(time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("storm never tripped; run wedged")
	}
	oe := mon.Err()
	if oe == nil || oe.Resource != ResourceStorm {
		t.Fatalf("got %v, want a %s trip", oe, ResourceStorm)
	}
	if oe.At != 0 {
		t.Fatalf("storm tripped at %v, want the frozen clock's 0", oe.At)
	}
}

func TestStormResetsWhenClockAdvances(t *testing.T) {
	sched := sim.NewScheduler(1)
	tickChain(t, sched, time.Millisecond) // clock advances every event
	mon, err := Attach(sched, Limits{StormEvents: 2, MaxEvents: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Hour)
	oe := mon.Err()
	if oe == nil || oe.Resource != ResourceEvents {
		t.Fatalf("got %v, want the %s budget (storm must not trip on an advancing clock)", oe, ResourceEvents)
	}
}

func TestSampledBackstops(t *testing.T) {
	t.Run("heap", func(t *testing.T) {
		sched := sim.NewScheduler(1)
		tickChain(t, sched, time.Millisecond)
		mon, err := Attach(sched, Limits{MaxHeapBytes: 1, SampleEvery: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched.Run(time.Hour)
		if oe := mon.Err(); oe == nil || oe.Resource != ResourceHeap {
			t.Fatalf("got %v, want a %s trip (any live heap exceeds 1 byte)", oe, ResourceHeap)
		}
	})
	t.Run("wall", func(t *testing.T) {
		sched := sim.NewScheduler(1)
		tickChain(t, sched, time.Millisecond)
		mon, err := Attach(sched, Limits{MaxWall: time.Nanosecond, SampleEvery: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched.Run(time.Hour)
		if oe := mon.Err(); oe == nil || oe.Resource != ResourceWall {
			t.Fatalf("got %v, want a %s trip", oe, ResourceWall)
		}
	})
}

func TestTripPublishesOverloadEvent(t *testing.T) {
	sched := sim.NewScheduler(1)
	tickChain(t, sched, time.Millisecond)
	var col collector
	bus := telemetry.NewBus(&col)
	if _, err := Attach(sched, Limits{MaxEvents: 10}, bus); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Hour)
	var got *telemetry.Event
	for i := range col.events {
		if col.events[i].Kind == telemetry.KOverload {
			got = &col.events[i]
		}
	}
	if got == nil {
		t.Fatal("no overload event published")
	}
	if got.Comp != telemetry.CompGuard || got.Src != ResourceEvents {
		t.Fatalf("overload event = %+v, want comp guard, src %q", got, ResourceEvents)
	}
	if got.A != 10 || got.B != 10 {
		t.Fatalf("overload observed/limit = %g/%g, want 10/10", got.A, got.B)
	}
}

func TestUntrippedGuardDoesNotSteer(t *testing.T) {
	run := func(limits Limits) (uint64, sim.Time) {
		sched := sim.NewScheduler(7)
		var tick func()
		fired := 0
		tick = func() {
			fired++
			if fired < 200 {
				if _, err := sched.Schedule(sim.Time(sched.Rand().Intn(5)+1), tick); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := sched.Schedule(1, tick); err != nil {
			t.Fatal(err)
		}
		mon, err := Attach(sched, limits, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched.RunAll()
		if mon.Tripped() {
			t.Fatalf("budget tripped unexpectedly: %v", mon.Err())
		}
		return sched.Processed(), sched.Now()
	}
	freeEvents, freeNow := run(Limits{})
	guardedEvents, guardedNow := run(Limits{MaxEvents: 1 << 30, StormEvents: 1 << 30, MaxSimTime: time.Hour})
	if freeEvents != guardedEvents || freeNow != guardedNow {
		t.Fatalf("guarded run diverged: %d events at %v vs unguarded %d at %v",
			guardedEvents, guardedNow, freeEvents, freeNow)
	}
}

func TestAttachEmptyLimitsRemovesGuard(t *testing.T) {
	sched := sim.NewScheduler(1)
	if _, err := Attach(sched, Limits{MaxEvents: 1}, nil); err != nil {
		t.Fatal(err)
	}
	mon, err := Attach(sched, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tickChain(t, sched, time.Millisecond)
	sched.Run(10 * time.Millisecond)
	if mon.Tripped() || sched.GuardErr() != nil {
		t.Fatalf("removed guard still tripped: %v / %v", mon.Err(), sched.GuardErr())
	}
}

func TestValidateRejectsNegativeBudgets(t *testing.T) {
	sched := sim.NewScheduler(1)
	if _, err := Attach(sched, Limits{MaxSimTime: -1}, nil); err == nil {
		t.Fatal("negative MaxSimTime accepted")
	}
	if _, err := Attach(sched, Limits{MaxWall: -time.Second}, nil); err == nil {
		t.Fatal("negative MaxWall accepted")
	}
}

func TestOverloadErrorIsDegraded(t *testing.T) {
	oe := &OverloadError{Resource: ResourceEvents, Observed: 5, Limit: 5, Events: 5}
	if !oe.Degraded() {
		t.Fatal("OverloadError must carry the Degraded marker")
	}
	if msg := oe.Error(); !strings.Contains(msg, "events budget exceeded") {
		t.Fatalf("unexpected message %q", msg)
	}
}
