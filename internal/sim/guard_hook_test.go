package sim

import (
	"errors"
	"testing"
	"time"
)

func TestGuardHookStopsRunAndRetainsError(t *testing.T) {
	s := NewScheduler(1)
	var tick func()
	tick = func() {
		if _, err := s.Schedule(time.Millisecond, tick); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Schedule(time.Millisecond, tick); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("budget blown")
	s.SetGuard(func(now Time, processed uint64, pending int) error {
		if processed >= 5 {
			return wantErr
		}
		return nil
	})
	s.Run(time.Hour)
	if s.Processed() != 5 {
		t.Fatalf("processed %d events, want the guard to stop after 5", s.Processed())
	}
	if !errors.Is(s.GuardErr(), wantErr) {
		t.Fatalf("GuardErr = %v, want %v", s.GuardErr(), wantErr)
	}
	if s.Pending() == 0 {
		t.Fatal("the stopped run should leave the rescheduled event pending")
	}
	// The clock stays at the stopping event, not the horizon.
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v, want %v", s.Now(), 5*time.Millisecond)
	}
}

func TestGuardHookNilIsFree(t *testing.T) {
	run := func(guarded bool) (uint64, Time) {
		s := NewScheduler(3)
		if guarded {
			s.SetGuard(func(Time, uint64, int) error { return nil })
		}
		fired := 0
		var tick func()
		tick = func() {
			fired++
			if fired < 100 {
				if _, err := s.Schedule(Time(s.Rand().Intn(7)+1), tick); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := s.Schedule(1, tick); err != nil {
			t.Fatal(err)
		}
		s.RunAll()
		return s.Processed(), s.Now()
	}
	freeN, freeAt := run(false)
	guardN, guardAt := run(true)
	if freeN != guardN || freeAt != guardAt {
		t.Fatalf("never-tripping guard diverged the run: %d@%v vs %d@%v", guardN, guardAt, freeN, freeAt)
	}
	if s := NewScheduler(1); s.GuardErr() != nil {
		t.Fatal("fresh scheduler reports a guard error")
	}
}
