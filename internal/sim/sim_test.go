package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i, d := range []time.Duration{30, 10, 20} {
		i := i
		if _, err := s.Schedule(d*time.Millisecond, func() { got = append(got, i) }); err != nil {
			t.Fatalf("schedule: %v", err)
		}
	}
	s.RunAll()
	want := []int{1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulerSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Schedule(time.Millisecond, func() { got = append(got, i) }); err != nil {
			t.Fatalf("schedule: %v", err)
		}
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of order: %v", got)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	if _, err := s.Schedule(42*time.Millisecond, func() { at = s.Now() }); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.RunAll()
	if at != 42*time.Millisecond {
		t.Fatalf("event fired at %v, want 42ms", at)
	}
	if s.Now() != 42*time.Millisecond {
		t.Fatalf("clock at %v, want 42ms", s.Now())
	}
}

func TestSchedulerRunHorizon(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	if _, err := s.Schedule(2*time.Second, func() { fired = true }); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("clock at %v, want 1s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestSchedulerScheduleInPast(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.Schedule(-time.Millisecond, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := s.Schedule(time.Second, func() {}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.RunAll()
	if _, err := s.At(0, func() {}); err == nil {
		t.Fatal("scheduling before the current clock accepted")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	ev, err := s.Schedule(time.Millisecond, func() { fired = true })
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.Cancel(ev)
	s.Cancel(ev) // double cancel is a no-op
	s.Cancel(nil)
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerCancelFromWithinEvent(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	var later *Event
	if _, err := s.Schedule(time.Millisecond, func() { s.Cancel(later) }); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	var err error
	later, err = s.Schedule(2*time.Millisecond, func() { fired = true })
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.RunAll()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 0; i < 5; i++ {
		if _, err := s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		}); err != nil {
			t.Fatalf("schedule: %v", err)
		}
	}
	s.RunAll()
	if count != 2 {
		t.Fatalf("processed %d events after Stop, want 2", count)
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	if _, err := s.Schedule(time.Millisecond, func() {
		got = append(got, s.Now())
		if _, err := s.Schedule(time.Millisecond, func() { got = append(got, s.Now()) }); err != nil {
			t.Errorf("nested schedule: %v", err)
		}
	}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	s.RunAll()
	if len(got) != 2 || got[1] != 2*time.Millisecond {
		t.Fatalf("nested event timing wrong: %v", got)
	}
}

func TestSchedulerDeterministicRand(t *testing.T) {
	a, b := NewScheduler(7), NewScheduler(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestSchedulerProcessedCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 10; i++ {
		if _, err := s.Schedule(time.Duration(i)*time.Millisecond, func() {}); err != nil {
			t.Fatalf("schedule: %v", err)
		}
	}
	s.RunAll()
	if s.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", s.Processed())
	}
}

// Property: regardless of the order delays are scheduled in, events fire
// in nondecreasing time order, and same-time events fire in schedule
// order.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) > 200 {
			delaysMs = delaysMs[:200]
		}
		s := NewScheduler(1)
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delaysMs {
			i := i
			if _, err := s.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, firing{at: s.Now(), seq: i})
			}); err != nil {
				return false
			}
		}
		s.RunAll()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		// Firing times must equal the sorted delays.
		sorted := make([]time.Duration, len(delaysMs))
		for i, d := range delaysMs {
			sorted[i] = time.Duration(d) * time.Millisecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, f := range fired {
			if f.at != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of events means exactly the
// uncancelled ones fire.
func TestSchedulerCancelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(seed)
		n := 50
		events := make([]*Event, n)
		fired := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			ev, err := s.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() { fired[i] = true })
			if err != nil {
				return false
			}
			events[i] = ev
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				s.Cancel(events[i])
			}
		}
		s.RunAll()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetReplacesPending(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	timer := NewTimer(s, func() { count++ })
	timer.Reset(10 * time.Millisecond)
	timer.Reset(20 * time.Millisecond)
	if !timer.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if timer.ExpiresAt() != 20*time.Millisecond {
		t.Fatalf("expires at %v, want 20ms", timer.ExpiresAt())
	}
	s.RunAll()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	if timer.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	timer := NewTimer(s, func() { fired = true })
	timer.Reset(10 * time.Millisecond)
	timer.Stop()
	timer.Stop() // idempotent
	s.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerNegativeDelayClamped(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	timer := NewTimer(s, func() { fired = true })
	timer.Reset(-time.Second)
	s.RunAll()
	if !fired {
		t.Fatal("timer with clamped delay did not fire")
	}
}

func TestTimerRearmsFromCallback(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var timer *Timer
	timer = NewTimer(s, func() {
		count++
		if count < 3 {
			timer.Reset(time.Millisecond)
		}
	})
	timer.Reset(time.Millisecond)
	s.RunAll()
	if count != 3 {
		t.Fatalf("timer chain fired %d times, want 3", count)
	}
}
