package sim

import (
	"testing"
	"time"
)

// chain schedules a self-rescheduling event n times on s.
func chain(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	left := n
	var tick func()
	tick = func() {
		left--
		if left > 0 {
			if _, err := s.Schedule(time.Millisecond, tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalCountersFlushRemainder checks the batched event counter:
// a run processing fewer events than the flush interval must still
// land them in the process-wide total when Run returns (the deferred
// remainder flush). Deltas are used because the counters are shared
// with every other test in the binary.
func TestGlobalCountersFlushRemainder(t *testing.T) {
	const n = 100 // well under globalFlushEvery
	before, _ := GlobalCounters()
	s := NewScheduler(1)
	chain(t, s, n)
	s.RunAll()
	after, _ := GlobalCounters()
	if got := after - before; got < n {
		t.Errorf("global events grew by %d, want >= %d", got, n)
	}
	if s.Processed() != n {
		t.Errorf("Processed() = %d, want %d", s.Processed(), n)
	}
}

// TestGlobalCountersBatchBoundary crosses the flush interval to
// exercise the in-loop flush path as well as the remainder.
func TestGlobalCountersBatchBoundary(t *testing.T) {
	const n = globalFlushEvery + globalFlushEvery/2
	before, _ := GlobalCounters()
	s := NewScheduler(2)
	chain(t, s, n)
	s.RunAll()
	after, _ := GlobalCounters()
	if got := after - before; got < n {
		t.Errorf("global events grew by %d, want >= %d", got, n)
	}
}

func TestCountPackets(t *testing.T) {
	_, before := GlobalCounters()
	CountPackets(7)
	CountPackets(3)
	_, after := GlobalCounters()
	if got := after - before; got < 10 {
		t.Errorf("global packets grew by %d, want >= 10", got)
	}
}
