package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEntry is one pending event in the reference queue: the same
// (time, sequence) key the arena heap orders by, plus the test's id.
type refEntry struct {
	at  Time
	seq uint64
	id  int
}

// refHeap is a textbook container/heap min-heap over (time, sequence) —
// the implementation the index-based 4-ary heap replaced, kept here as
// the ordering oracle.
type refHeap []refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestHeapMatchesReferenceOrder drives N random schedules and cancels —
// through both the Timer API and the deprecated Schedule/At shims — and
// checks that the events fire in exactly the (time, sequence) order a
// reference container/heap implementation pops them. This is the
// determinism contract the experiment goldens depend on.
func TestHeapMatchesReferenceOrder(t *testing.T) {
	const ops = 2000
	for trial := int64(0); trial < 10; trial++ {
		rng := rand.New(rand.NewSource(trial + 100))
		s := NewScheduler(trial)

		var got []int
		var seq uint64 // mirrors the scheduler's internal sequence counter

		// live holds the reference model of pending events.
		live := map[int]refEntry{}
		nextID := 0

		type oneShot struct {
			ev *Event
			id int
		}
		type timerArm struct {
			tm *Timer
			id int // id of the currently armed expiry, -1 when stopped
		}
		var shots []oneShot
		var timers []*timerArm

		for i := 0; i < ops; i++ {
			switch k := rng.Intn(10); {
			case k < 4: // deprecated one-shot Schedule
				id := nextID
				nextID++
				at := Time(rng.Intn(1000)) * time.Microsecond
				ev, err := s.At(at, func() { got = append(got, id) })
				if err != nil {
					t.Fatal(err)
				}
				live[id] = refEntry{at: at, seq: seq, id: id}
				seq++
				shots = append(shots, oneShot{ev: ev, id: id})
			case k < 7: // arm (or re-arm) a timer
				var ta *timerArm
				if len(timers) == 0 || rng.Intn(3) == 0 {
					ta = &timerArm{id: -1}
					ta.tm = s.NewTimer(func() { got = append(got, ta.id) })
					timers = append(timers, ta)
				} else {
					ta = timers[rng.Intn(len(timers))]
				}
				if ta.id >= 0 {
					delete(live, ta.id) // re-arm replaces the pending expiry
				}
				id := nextID
				nextID++
				at := Time(rng.Intn(1000)) * time.Microsecond
				if err := ta.tm.At(at); err != nil {
					t.Fatal(err)
				}
				ta.id = id
				live[id] = refEntry{at: at, seq: seq, id: id}
				seq++
			case k < 9 && len(shots) > 0: // cancel a one-shot
				j := rng.Intn(len(shots))
				s.Cancel(shots[j].ev)
				delete(live, shots[j].id)
				shots = append(shots[:j], shots[j+1:]...)
			case len(timers) > 0: // stop a timer
				ta := timers[rng.Intn(len(timers))]
				ta.tm.Stop()
				if ta.id >= 0 {
					delete(live, ta.id)
					ta.id = -1
				}
			}
		}

		// Reference pop order via container/heap.
		ref := make(refHeap, 0, len(live))
		for _, e := range live {
			ref = append(ref, e)
		}
		heap.Init(&ref)
		want := make([]int, 0, len(ref))
		for ref.Len() > 0 {
			want = append(want, heap.Pop(&ref).(refEntry).id)
		}

		s.RunAll()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, reference popped %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire order diverges at %d: got id %d, reference id %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestTimerSteadyStateZeroAlloc asserts the tentpole allocation
// contract: re-arming and firing a Timer allocates nothing once the
// heap and arena are warm.
func TestTimerSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler(1)
	var tm *Timer
	fires := 0
	tm = s.NewTimer(func() { fires++ })

	// Warm up: grow the heap and arena to steady-state size.
	tm.Reset(time.Microsecond)
	s.Run(s.Now() + 2*time.Microsecond)

	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 500; i++ {
			tm.Reset(time.Microsecond)
			s.Run(s.Now() + 2*time.Microsecond)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state timer churn allocates %.2f allocs/run, want 0", avg)
	}
	if fires == 0 {
		t.Fatal("timer never fired")
	}
}

// TestRekeyWhileArmedZeroAlloc covers the Reset-while-armed fast path
// (the retransmission-timer pattern): the pending entry is re-keyed in
// place without touching the free list.
func TestRekeyWhileArmedZeroAlloc(t *testing.T) {
	s := NewScheduler(1)
	tm := s.NewTimer(func() {})
	tm.Reset(time.Second)
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 500; i++ {
			tm.Reset(time.Second) // always pending: pure re-key
		}
	})
	if avg != 0 {
		t.Fatalf("re-keying an armed timer allocates %.2f allocs/run, want 0", avg)
	}
	if !tm.Armed() {
		t.Fatal("timer should still be armed")
	}
}
