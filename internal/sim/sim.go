// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with stable FIFO ordering for
// simultaneous events, cancellable timers, and a seedable random-number
// source. It is the substrate on which the network and TCP models run,
// playing the role ns-2's scheduler plays in the paper's evaluation.
//
// The event queue is an index-based 4-ary min-heap over an arena of
// value slots with free-list recycling: scheduling, firing, and
// cancelling events allocate nothing in steady state, and cancel is
// O(log n) via the slot's tracked heap position. The preferred
// scheduling surface is the reusable-timer API (Scheduler.NewTimer plus
// Timer.At/Reset/Stop, mirroring time.Timer); the closure-based
// Schedule/At calls remain as thin deprecated shims that allocate a
// handle per call.
package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Process-wide simulator totals, aggregated across every scheduler in
// the process so a live introspection scrape can watch a parallel
// sweep's aggregate event and packet rates. Schedulers batch their
// event counts (one atomic add per globalFlushEvery events, plus one
// at the end of each Run), so the hot loop pays a counter increment
// and a mask test per event; packet sources (netem links) add as they
// transmit. The counters are observability-only: nothing in the
// simulation reads them, so they cannot perturb determinism.
var (
	globalEvents  atomic.Uint64
	globalPackets atomic.Uint64
)

// globalFlushEvery is the event-count batching interval (power of two).
const globalFlushEvery = 4096

// CountPackets adds n simulated transmitted packets to the process-wide
// total.
func CountPackets(n uint64) { globalPackets.Add(n) }

// GlobalCounters reports the process-wide totals: discrete events
// processed and packets transmitted across every scheduler so far.
func GlobalCounters() (events, packets uint64) {
	return globalEvents.Load(), globalPackets.Load()
}

// Time is a simulated instant, measured as an offset from the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// ErrScheduleInPast is returned when an event is scheduled before the
// current simulated time.
var ErrScheduleInPast = errors.New("sim: event scheduled in the past")

// heapEntry is one pending event in the priority queue. Entries are
// pure values (no pointers), so sift operations move them without
// write barriers; idx names the arena slot holding the handler.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

// timerSlot is one arena cell. Timer-owned slots are persistent: the
// handler is written once at NewTimer and the slot is never recycled,
// so arming and firing touch only pointer-free fields (no write
// barriers on the hot path). One-shot slots backing the deprecated
// Schedule/At shims recycle through the free list the moment they fire
// or are cancelled; gen increments on every recycle so stale Event
// handles can detect reuse.
type timerSlot struct {
	fn       func()
	at       Time
	gen      uint64
	heapPos  int32
	nextFree int32
	oneShot  bool
}

// Scheduler owns the virtual clock and the pending event set. The zero
// value is not usable; construct one with NewScheduler.
type Scheduler struct {
	now     Time
	nextSeq uint64
	stopped bool
	seed    int64
	rng     *rand.Rand

	// Event queue: 4-ary min-heap of value entries ordered by
	// (time, sequence), over an arena of recycled handler slots.
	heap      []heapEntry
	slots     []timerSlot
	freeHead  int32
	highWater int

	// Processed counts events that have fired, for diagnostics.
	processed uint64

	// Profiling hook, fired every profEvery processed events.
	profEvery uint64
	profHook  func(now Time, processed uint64, pending int)

	// Guard hook, consulted after every processed event; a non-nil
	// return stops the run and is retained as guardErr.
	guard    func(now Time, processed uint64, pending int) error
	guardErr error
}

// NewScheduler returns a scheduler whose clock reads zero and whose
// random source is seeded with the given seed. All randomness used by a
// simulation must flow through Rand so that runs are reproducible.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed)), freeHead: -1}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Seed reports the seed the scheduler was constructed with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Rand exposes the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// DeriveRand returns an independent deterministic random source keyed
// by the scheduler's seed and the given tag. Consumers with their own
// randomness (fault injectors, chaos schedules) draw from a derived
// stream so their draws neither perturb nor depend on the shared Rand
// sequence: adding a fault plan to a scenario leaves every other random
// decision in the run unchanged.
func (s *Scheduler) DeriveRand(tag string) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(s.seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(tag))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Pending reports the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Processed reports the number of events that have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// HeapHighWater reports the deepest the pending-event heap has been
// over the scheduler's lifetime — the working-set figure the headline
// benchmarks publish alongside throughput.
func (s *Scheduler) HeapHighWater() int { return s.highWater }

// SetProfileHook installs fn to be called every `every` processed
// events with the current time, the total processed count, and the
// heap depth — the scheduler-side feed for telemetry profiling. A nil
// fn or zero interval removes the hook. The hook runs synchronously on
// the simulation goroutine and must not schedule or cancel events.
func (s *Scheduler) SetProfileHook(every uint64, fn func(now Time, processed uint64, pending int)) {
	if fn == nil || every == 0 {
		s.profEvery, s.profHook = 0, nil
		return
	}
	s.profEvery, s.profHook = every, fn
}

// SetGuard installs fn to be consulted after every processed event with
// the current time, the total processed count, and the heap depth — the
// scheduler side of the overload guard (internal/guard). When fn
// returns a non-nil error the run stops after the in-flight event and
// the error is retained for GuardErr. A nil fn removes the hook; with
// no guard installed the loop pays a single nil check per event, so a
// guarded-but-untripped run processes the exact same event sequence as
// an unguarded one. Like the profiling hook, fn runs synchronously on
// the simulation goroutine and must not schedule or cancel events.
func (s *Scheduler) SetGuard(fn func(now Time, processed uint64, pending int) error) {
	s.guard = fn
}

// GuardErr reports the error that stopped the last run via the guard
// hook, or nil. It stays set across subsequent Run calls so callers can
// inspect it after a multi-phase simulation.
func (s *Scheduler) GuardErr() error { return s.guardErr }

// ---- heap + arena internals -------------------------------------------------

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		s.slots[h[i].idx].heapPos = int32(i)
		i = p
	}
	h[i] = e
	s.slots[e.idx].heapPos = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(h[c], h[best]) {
				best = c
			}
		}
		if !entryLess(h[best], e) {
			break
		}
		h[i] = h[best]
		s.slots[h[i].idx].heapPos = int32(i)
		i = best
	}
	h[i] = e
	s.slots[e.idx].heapPos = int32(i)
}

func (s *Scheduler) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap) - 1)
	if len(s.heap) > s.highWater {
		s.highWater = len(s.heap)
	}
}

// heapPop removes and returns the minimum entry. The caller is
// responsible for recycling the entry's slot.
func (s *Scheduler) heapPop() heapEntry {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 0 {
		s.slots[s.heap[0].idx].heapPos = 0
		s.siftDown(0)
	}
	return top
}

// heapRemove deletes the entry at heap position pos (a cancel).
func (s *Scheduler) heapRemove(pos int) {
	h := s.heap
	n := len(h) - 1
	s.heap = h[:n]
	if pos == n {
		return
	}
	moved := h[n]
	h[pos] = moved
	s.slots[moved.idx].heapPos = int32(pos)
	s.siftDown(pos)
	if s.heap[pos].idx == moved.idx {
		s.siftUp(pos)
	}
}

func (s *Scheduler) allocSlot(fn func(), oneShot bool) int32 {
	var i int32
	if s.freeHead >= 0 {
		i = s.freeHead
		s.freeHead = s.slots[i].nextFree
	} else {
		s.slots = append(s.slots, timerSlot{})
		i = int32(len(s.slots) - 1)
	}
	sl := &s.slots[i]
	sl.fn = fn
	sl.heapPos = -1
	sl.nextFree = -1
	sl.oneShot = oneShot
	return i
}

// freeSlot recycles a slot onto the free list, bumping its generation
// so outstanding handles observe the slot as no longer theirs.
func (s *Scheduler) freeSlot(i int32) {
	sl := &s.slots[i]
	sl.fn = nil
	sl.gen++
	sl.heapPos = -1
	sl.nextFree = s.freeHead
	s.freeHead = i
}

// armSlot enqueues slot i's handler at absolute instant t, consuming
// one sequence number. A slot that is already pending is re-keyed in
// place — one sift instead of a remove-then-push — which is safe for
// determinism because heap pop order depends only on the (time, seq)
// keys of the live entries, never on how they got there.
func (s *Scheduler) armSlot(i int32, t Time) error {
	if t < s.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrScheduleInPast, t, s.now)
	}
	sl := &s.slots[i]
	sl.at = t
	seq := s.nextSeq
	s.nextSeq++
	if pos := sl.heapPos; pos >= 0 {
		old := s.heap[pos]
		s.heap[pos] = heapEntry{at: t, seq: seq, idx: i}
		// seq only ever grows, so the new key moves toward the leaves
		// unless the time moved strictly earlier.
		if t < old.at {
			s.siftUp(int(pos))
		} else {
			s.siftDown(int(pos))
		}
		return nil
	}
	s.heapPush(heapEntry{at: t, seq: seq, idx: i})
	return nil
}

// disarm cancels the pending event in slot i if the generation still
// matches; otherwise (already fired, cancelled, or recycled) it is a
// no-op.
func (s *Scheduler) disarm(i int32, gen uint64) {
	if i < 0 || int(i) >= len(s.slots) {
		return
	}
	sl := &s.slots[i]
	if sl.gen != gen || sl.heapPos < 0 {
		return
	}
	s.heapRemove(int(sl.heapPos))
	s.freeSlot(i)
}

// ---- deprecated closure-scheduling shim -------------------------------------

// Event is a cancellation handle for a closure scheduled through the
// deprecated Schedule/At shims. Events are ordered by time; events
// scheduled for the same instant run in scheduling order.
//
// Deprecated: new code should hold a *Timer from Scheduler.NewTimer,
// which is reusable and allocation-free to arm.
type Event struct {
	s   *Scheduler
	at  Time
	idx int32
	gen uint64
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has fired or been cancelled.
func (e *Event) Cancelled() bool {
	return e.idx < 0 || int(e.idx) >= len(e.s.slots) || e.s.slots[e.idx].gen != e.gen
}

// Schedule enqueues fn to run after delay and returns a handle that can
// cancel it. A negative delay returns ErrScheduleInPast.
//
// Deprecated: use Scheduler.NewTimer with Timer.Reset; it reuses one
// timer object across arms instead of allocating a handle per call.
func (s *Scheduler) Schedule(delay Time, fn func()) (*Event, error) {
	return s.At(s.now+delay, fn)
}

// At enqueues fn to run at the absolute instant t.
//
// Deprecated: use Scheduler.NewTimer with Timer.At.
func (s *Scheduler) At(t Time, fn func()) (*Event, error) {
	i := s.allocSlot(fn, true)
	if err := s.armSlot(i, t); err != nil {
		s.freeSlot(i)
		return nil, err
	}
	return &Event{s: s, at: t, idx: i, gen: s.slots[i].gen}, nil
}

// Cancel removes an event from the queue. Cancelling a nil, fired, or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil {
		return
	}
	s.disarm(e.idx, e.gen)
	e.idx = -1
}

// Stop makes the current Run call return after the in-flight event.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue empties, Stop is called,
// or the next event lies strictly beyond until. Unless stopped early,
// the clock is left at until.
func (s *Scheduler) Run(until Time) {
	s.run(until, true)
}

// RunAll executes events until the queue is empty or Stop is called,
// leaving the clock at the last fired event.
func (s *Scheduler) RunAll() {
	s.run(1<<63-1, false)
}

func (s *Scheduler) run(until Time, advanceClock bool) {
	s.stopped = false
	var batch uint64 // events since the last global-counter flush
	defer func() {
		if batch > 0 {
			globalEvents.Add(batch)
		}
	}()
	for len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > until {
			s.now = until
			return
		}
		top := s.heapPop()
		sl := &s.slots[top.idx]
		fn := sl.fn
		s.now = top.at
		if sl.oneShot {
			s.freeSlot(top.idx)
		} else {
			// Persistent timer slot: mark it idle so the handler can
			// re-arm; fn stays in place for the timer's next arm.
			sl.heapPos = -1
		}
		s.processed++
		if batch++; batch == globalFlushEvery {
			globalEvents.Add(batch)
			batch = 0
		}
		fn()
		if s.profHook != nil && s.processed%s.profEvery == 0 {
			s.profHook(s.now, s.processed, len(s.heap))
		}
		if s.guard != nil {
			if err := s.guard(s.now, s.processed, len(s.heap)); err != nil {
				s.guardErr = err
				s.stopped = true
			}
		}
	}
	if !s.stopped && advanceClock && s.now < until {
		s.now = until
	}
}

// ---- reusable timers --------------------------------------------------------

// Timer is a restartable one-shot timer bound to a scheduler — the
// building block for TCP retransmission timers and every other
// recurring event source. A Timer is created once with its handler and
// re-armed any number of times; arming allocates nothing, because the
// pending event lives in a recycled scheduler arena slot. Timers mirror
// time.Timer: At/Reset arm, Stop disarms, and an expired timer simply
// reads as not Armed until re-armed (the handler does not need to touch
// the timer).
type Timer struct {
	s    *Scheduler
	slot int32
}

// NewTimer returns a stopped timer that runs fn when it expires. The
// timer owns its arena slot for the scheduler's lifetime, so create
// timers per long-lived event source (or pool them), not per arm.
func (s *Scheduler) NewTimer(fn func()) *Timer {
	return &Timer{s: s, slot: s.allocSlot(fn, false)}
}

// NewTimer returns a stopped timer bound to s that runs fn when it
// expires.
//
// Deprecated: use Scheduler.NewTimer.
func NewTimer(s *Scheduler, fn func()) *Timer {
	return s.NewTimer(fn)
}

// At arms the timer to fire at the absolute instant at, replacing any
// pending expiry. Arming before the current simulated time returns
// ErrScheduleInPast and leaves the timer stopped.
func (t *Timer) At(at Time) error {
	if err := t.s.armSlot(t.slot, at); err != nil {
		t.Stop()
		return err
	}
	return nil
}

// Reset (re)arms the timer to fire after d, replacing any pending
// expiry. A negative d is clamped to zero.
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.At(t.s.now + d) //nolint:errcheck // now+d with d >= 0 is never in the past
}

// Stop disarms the timer if it is pending. Stopping an expired or
// already-stopped timer is a no-op.
func (t *Timer) Stop() {
	sl := &t.s.slots[t.slot]
	if sl.heapPos < 0 {
		return
	}
	t.s.heapRemove(int(sl.heapPos))
	sl.heapPos = -1
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool {
	return t.s.slots[t.slot].heapPos >= 0
}

// ExpiresAt reports when the timer will fire; valid only when Armed.
func (t *Timer) ExpiresAt() Time {
	if !t.Armed() {
		return 0
	}
	return t.s.slots[t.slot].at
}
