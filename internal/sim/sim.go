// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with stable FIFO ordering for
// simultaneous events, cancellable timers, and a seedable random-number
// source. It is the substrate on which the network and TCP models run,
// playing the role ns-2's scheduler plays in the paper's evaluation.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Process-wide simulator totals, aggregated across every scheduler in
// the process so a live introspection scrape can watch a parallel
// sweep's aggregate event and packet rates. Schedulers batch their
// event counts (one atomic add per globalFlushEvery events, plus one
// at the end of each Run), so the hot loop pays a counter increment
// and a mask test per event; packet sources (netem links) add as they
// transmit. The counters are observability-only: nothing in the
// simulation reads them, so they cannot perturb determinism.
var (
	globalEvents  atomic.Uint64
	globalPackets atomic.Uint64
)

// globalFlushEvery is the event-count batching interval (power of two).
const globalFlushEvery = 4096

// CountPackets adds n simulated transmitted packets to the process-wide
// total.
func CountPackets(n uint64) { globalPackets.Add(n) }

// GlobalCounters reports the process-wide totals: discrete events
// processed and packets transmitted across every scheduler so far.
func GlobalCounters() (events, packets uint64) {
	return globalEvents.Load(), globalPackets.Load()
}

// Time is a simulated instant, measured as an offset from the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a unit of scheduled work. Events are ordered by time; events
// scheduled for the same instant run in scheduling order.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.dead }

// eventHeap orders events by (time, sequence) so that simultaneous
// events fire in the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// ErrScheduleInPast is returned when an event is scheduled before the
// current simulated time.
var ErrScheduleInPast = errors.New("sim: event scheduled in the past")

// Scheduler owns the virtual clock and the pending event set. The zero
// value is not usable; construct one with NewScheduler.
type Scheduler struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool
	seed    int64
	rng     *rand.Rand

	// Processed counts events that have fired, for diagnostics.
	processed uint64

	// Profiling hook, fired every profEvery processed events.
	profEvery uint64
	profHook  func(now Time, processed uint64, pending int)

	// Guard hook, consulted after every processed event; a non-nil
	// return stops the run and is retained as guardErr.
	guard    func(now Time, processed uint64, pending int) error
	guardErr error
}

// NewScheduler returns a scheduler whose clock reads zero and whose
// random source is seeded with the given seed. All randomness used by a
// simulation must flow through Rand so that runs are reproducible.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Seed reports the seed the scheduler was constructed with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Rand exposes the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// DeriveRand returns an independent deterministic random source keyed
// by the scheduler's seed and the given tag. Consumers with their own
// randomness (fault injectors, chaos schedules) draw from a derived
// stream so their draws neither perturb nor depend on the shared Rand
// sequence: adding a fault plan to a scenario leaves every other random
// decision in the run unchanged.
func (s *Scheduler) DeriveRand(tag string) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(s.seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(tag))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Pending reports the number of events waiting to fire.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Processed reports the number of events that have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// SetProfileHook installs fn to be called every `every` processed
// events with the current time, the total processed count, and the
// heap depth — the scheduler-side feed for telemetry profiling. A nil
// fn or zero interval removes the hook. The hook runs synchronously on
// the simulation goroutine and must not schedule or cancel events.
func (s *Scheduler) SetProfileHook(every uint64, fn func(now Time, processed uint64, pending int)) {
	if fn == nil || every == 0 {
		s.profEvery, s.profHook = 0, nil
		return
	}
	s.profEvery, s.profHook = every, fn
}

// SetGuard installs fn to be consulted after every processed event with
// the current time, the total processed count, and the heap depth — the
// scheduler side of the overload guard (internal/guard). When fn
// returns a non-nil error the run stops after the in-flight event and
// the error is retained for GuardErr. A nil fn removes the hook; with
// no guard installed the loop pays a single nil check per event, so a
// guarded-but-untripped run processes the exact same event sequence as
// an unguarded one. Like the profiling hook, fn runs synchronously on
// the simulation goroutine and must not schedule or cancel events.
func (s *Scheduler) SetGuard(fn func(now Time, processed uint64, pending int) error) {
	s.guard = fn
}

// GuardErr reports the error that stopped the last run via the guard
// hook, or nil. It stays set across subsequent Run calls so callers can
// inspect it after a multi-phase simulation.
func (s *Scheduler) GuardErr() error { return s.guardErr }

// Schedule enqueues fn to run after delay and returns a handle that can
// cancel it. A negative delay returns ErrScheduleInPast.
func (s *Scheduler) Schedule(delay Time, fn func()) (*Event, error) {
	return s.At(s.now+delay, fn)
}

// At enqueues fn to run at the absolute instant t.
func (s *Scheduler) At(t Time, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrScheduleInPast, t, s.now)
	}
	e := &Event{at: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e, nil
}

// Cancel removes an event from the queue. Cancelling a nil, fired, or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.idx >= 0 && e.idx < s.queue.Len() && s.queue[e.idx] == e {
		heap.Remove(&s.queue, e.idx)
	}
}

// Stop makes the current Run call return after the in-flight event.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue empties, Stop is called,
// or the next event lies strictly beyond until. Unless stopped early,
// the clock is left at until.
func (s *Scheduler) Run(until Time) {
	s.run(until, true)
}

// RunAll executes events until the queue is empty or Stop is called,
// leaving the clock at the last fired event.
func (s *Scheduler) RunAll() {
	s.run(1<<63-1, false)
}

func (s *Scheduler) run(until Time, advanceClock bool) {
	s.stopped = false
	var batch uint64 // events since the last global-counter flush
	defer func() {
		if batch > 0 {
			globalEvents.Add(batch)
		}
	}()
	for s.queue.Len() > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			s.now = until
			return
		}
		popped, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			continue
		}
		if popped.dead {
			continue
		}
		s.now = popped.at
		popped.dead = true
		s.processed++
		if batch++; batch == globalFlushEvery {
			globalEvents.Add(batch)
			batch = 0
		}
		popped.fn()
		if s.profHook != nil && s.processed%s.profEvery == 0 {
			s.profHook(s.now, s.processed, s.queue.Len())
		}
		if s.guard != nil {
			if err := s.guard(s.now, s.processed, s.queue.Len()); err != nil {
				s.guardErr = err
				s.stopped = true
			}
		}
	}
	if !s.stopped && advanceClock && s.now < until {
		s.now = until
	}
}

// Timer is a restartable one-shot timer bound to a scheduler, the
// building block for TCP retransmission timers.
type Timer struct {
	sched *Scheduler
	ev    *Event
	fn    func()
}

// NewTimer returns a stopped timer that runs fn when it expires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	return &Timer{sched: s, fn: fn}
}

// Reset (re)arms the timer to fire after d, replacing any pending
// expiry. A negative d is clamped to zero.
func (t *Timer) Reset(d Time) {
	t.Stop()
	if d < 0 {
		d = 0
	}
	ev, err := t.sched.Schedule(d, t.expire)
	if err != nil {
		return
	}
	t.ev = ev
}

func (t *Timer) expire() {
	t.ev = nil
	t.fn()
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sched.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// ExpiresAt reports when the timer will fire; valid only when Armed.
func (t *Timer) ExpiresAt() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.At()
}
