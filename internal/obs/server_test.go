package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"rrtcp/internal/sim"
	"rrtcp/internal/sweep"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Inc("queue.fwd.drops", 3)
	reg.SetGauge("queue.fwd.occupancy", 7)
	reg.Observe("sender.0.episode", 0.25)
	ps := telemetry.NewProgressState()

	srv := New(Config{Registry: reg, Progress: ps})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, Start returned %q", srv.Addr(), addr)
	}
	base := "http://" + addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.ValidatePrometheus(body); err != nil {
		t.Errorf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"rrsim_queue_drops_total{instance=\"fwd\"} 3",
		"rrsim_queue_occupancy{instance=\"fwd\"} 7",
		"rrsim_sim_events_total",
		"rrsim_sim_packets_total",
		"rrsim_process_goroutines",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap telemetry.ProgressSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.Active {
		t.Error("idle /progress reports an active sweep")
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestScrapeDuringParallelSweep is the live-introspection race check:
// four sweep workers publish into a shared registry while an HTTP
// client scrapes /metrics and /progress as fast as it can. Under
// -race this proves a scrape never tears or conflicts with publishers;
// functionally it checks the scraped exposition stays well-formed
// mid-run and the final totals are exact.
func TestScrapeDuringParallelSweep(t *testing.T) {
	sink := telemetry.NewMetricsSink()
	ps := telemetry.NewProgressState()
	srv := New(Config{Registry: sink.R, Progress: ps})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	// Scraper: hammer both read endpoints until the sweep finishes.
	var stop atomic.Bool
	scraped := make(chan error, 1)
	go func() {
		var firstErr error
		for !stop.Load() {
			resp, err := http.Get(base + "/metrics")
			if err == nil {
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil {
					if verr := telemetry.ValidatePrometheus(body); verr != nil && firstErr == nil {
						firstErr = fmt.Errorf("mid-sweep exposition invalid: %w", verr)
					}
				}
			}
			if resp, err := http.Get(base + "/progress"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		scraped <- firstErr
	}()

	// The sweep: jobs write flow metrics straight into the shared
	// registry from worker goroutines — exactly the concurrent-publisher
	// load the registry documents as safe — while the coordinator feeds
	// progress events to both sinks.
	const jobs, perJob = 32, 200
	bus := telemetry.NewBus(sink, ps)
	js := make([]sweep.Job, jobs)
	for i := range js {
		i := i
		js[i] = sweep.Job{
			Name: fmt.Sprintf("job%d", i),
			Run: func(seed int64) (any, error) {
				for k := 0; k < perJob; k++ {
					sink.R.Inc("sender.0.data_sent", 1)
					sink.R.SetGauge("sender.0.cwnd", float64(k))
					sink.R.ObserveLog("sender.0.rtt_s", 0.001*float64(k+1))
				}
				return i, nil
			},
		}
	}
	if _, err := sweep.Run(sweep.Config{Name: "scrape-test", Workers: 4, Telemetry: bus}, js); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	if err := <-scraped; err != nil {
		t.Error(err)
	}

	if got := sink.R.Counter("sender.0.data_sent"); got != jobs*perJob {
		t.Errorf("sender.0.data_sent = %d, want %d", got, jobs*perJob)
	}
	snap := ps.Snapshot()
	if snap.Active || snap.Completed != jobs || snap.Jobs != jobs || snap.SweepsDone != 1 {
		t.Errorf("final progress snapshot off: %+v", snap)
	}
	if h := sink.R.LogHist("sweep.job_latency_s"); h == nil || h.Count() != jobs {
		t.Errorf("sweep.job_latency_s count = %v, want %d", h, jobs)
	}
}

func TestProgressLiveDuringSweep(t *testing.T) {
	ps := telemetry.NewProgressState()
	bus := telemetry.NewBus(ps)
	started := make(chan struct{})
	release := make(chan struct{})
	js := []sweep.Job{
		{Name: "gate", Run: func(int64) (any, error) {
			close(started)
			<-release
			return nil, nil
		}},
		{Name: "tail", Run: func(int64) (any, error) { return nil, nil }},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := sweep.Run(sweep.Config{Name: "live", Workers: 2, Telemetry: bus}, js); err != nil {
			t.Error(err)
		}
	}()
	<-started
	snap := ps.Snapshot()
	if !snap.Active || snap.Sweep != "live" || snap.Jobs != 2 {
		t.Errorf("mid-sweep snapshot = %+v, want active sweep %q with 2 jobs", snap, "live")
	}
	if snap.WallS < 0 {
		t.Errorf("live wall clock negative: %v", snap.WallS)
	}
	close(release)
	<-done
	final := ps.Snapshot()
	if final.Active || final.Completed != 2 {
		t.Errorf("final snapshot = %+v", final)
	}
}

func TestNilServerIsInert(t *testing.T) {
	var s *Server
	if addr, err := s.Start(":0"); err != nil || addr != "" {
		t.Errorf("nil Start = %q, %v", addr, err)
	}
	if s.Addr() != "" {
		t.Error("nil Addr non-empty")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if s.Registry() != nil {
		t.Error("nil Registry non-nil")
	}
}

func TestServerDoubleStartFails(t *testing.T) {
	s := New(Config{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start succeeded")
	}
	// Empty sources still serve valid documents.
	code, body := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.ValidatePrometheus(body); err != nil {
		t.Errorf("registry-less exposition invalid: %v", err)
	}
	code, body = get(t, "http://"+addr+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap telemetry.ProgressSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("progress-less /progress not JSON: %v", err)
	}
}

// TestServerSlowClientTimeouts pins the hardening contract: header and
// body read deadlines protect handler goroutines from stalled peers,
// while no write deadline is set — /debug/pprof/profile legitimately
// streams for its whole ?seconds= window.
func TestServerSlowClientTimeouts(t *testing.T) {
	s := New(Config{})
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a stalled peer pins a goroutine forever")
	}
	if s.srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if s.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections never reaped")
	}
	if s.srv.WriteTimeout != 0 {
		t.Error("WriteTimeout set: would truncate long pprof profile streams")
	}
}

// TestServerCloseGraceful checks shutdown lets an in-flight scrape
// finish: a /metrics request racing Close must still complete with a
// full, valid body, and Close must be safe to call again afterwards.
func TestServerCloseGraceful(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Inc("queue.fwd.drops", 1)
	s := New(Config{Registry: reg})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type scrape struct {
		code int
		body []byte
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{code: resp.StatusCode, body: body, err: err}
	}()
	// Close concurrently with the scrape; graceful shutdown means an
	// admitted request is never cut mid-body. If Close wins the race
	// outright the request is refused before it starts — also fine.
	if err := s.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	r := <-got
	if r.err == nil {
		if r.code != http.StatusOK {
			t.Fatalf("scrape racing Close got status %d", r.code)
		}
		if err := telemetry.ValidatePrometheus(r.body); err != nil {
			t.Fatalf("scrape racing Close returned a truncated exposition: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The listener is really gone.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestFlowsScrapeDuringParallelSweep extends the live-introspection
// race check to the flow-analytics table: sweep workers complete flows
// into a shared FlowTable while an HTTP client hammers /flows. Under
// -race this proves a scrape never tears against Emit's folding;
// functionally every mid-run body must be a well-formed report and the
// final scrape must carry the exact flow counts.
func TestFlowsScrapeDuringParallelSweep(t *testing.T) {
	table := flowstats.New(flowstats.Config{Exemplars: 4, Seed: 1})
	srv := New(Config{Flows: table})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	var stop atomic.Bool
	scraped := make(chan error, 1)
	go func() {
		var firstErr error
		for !stop.Load() {
			resp, err := http.Get(base + "/flows")
			if err != nil {
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || firstErr != nil {
				continue
			}
			var r flowstats.Report
			if jerr := json.Unmarshal(body, &r); jerr != nil {
				firstErr = fmt.Errorf("mid-sweep /flows not a report: %w\n%s", jerr, body)
			} else if r.Completed > r.Started {
				firstErr = fmt.Errorf("mid-sweep /flows inconsistent: %d completed of %d started", r.Completed, r.Started)
			}
		}
		scraped <- firstErr
	}()

	// Each job completes a block of flows through the shared table —
	// the live-monitoring topology, where one table watches all
	// workers (the deterministic reduction path uses private tables).
	// All events share one timestamp: workers interleave arbitrarily,
	// and a rewinding clock would read as a new stream segment.
	const jobs, perJob = 16, 50
	const at = sim.Time(1e6)
	bus := telemetry.NewBus(table)
	js := make([]sweep.Job, jobs)
	for i := range js {
		i := i
		js[i] = sweep.Job{
			Name: fmt.Sprintf("flows%d", i),
			Run: func(seed int64) (any, error) {
				variant := "rr"
				if i%2 == 1 {
					variant = "reno"
				}
				for k := 0; k < perJob; k++ {
					id := int32(i*perJob + k)
					bus.Publish(telemetry.Event{At: at, Comp: telemetry.CompSender,
						Kind: telemetry.KFlowStart, Src: variant, Flow: id, Seq: 1000})
					bus.Publish(telemetry.Event{At: at, Comp: telemetry.CompSender,
						Kind: telemetry.KFlowStats, Src: variant, Flow: id, Seq: 1000, A: 1})
				}
				return i, nil
			},
		}
	}
	if _, err := sweep.Run(sweep.Config{Name: "flows-scrape", Workers: 4}, js); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	if err := <-scraped; err != nil {
		t.Error(err)
	}

	code, body := get(t, base+"/flows")
	if code != http.StatusOK {
		t.Fatalf("/flows status %d", code)
	}
	var final flowstats.Report
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatalf("/flows not JSON: %v\n%s", err, body)
	}
	if final.Started != jobs*perJob || final.Completed != jobs*perJob {
		t.Errorf("final /flows counts %d/%d, want %d/%d",
			final.Completed, final.Started, jobs*perJob, jobs*perJob)
	}
	if len(final.Variants) != 2 {
		t.Errorf("final /flows has %d variants, want 2", len(final.Variants))
	}
}
