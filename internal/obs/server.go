// Package obs is the live introspection layer: a small HTTP server
// that exposes a running simulation or sweep without touching its
// determinism. It serves
//
//	/metrics      Prometheus text exposition of a telemetry.Registry,
//	              plus process/runtime gauges and the process-wide
//	              simulator totals (events and packets so far)
//	/progress     JSON snapshot of live sweep state (jobs completed,
//	              per-worker utilization) from a telemetry.ProgressState
//	/flows        JSON snapshot of flow analytics (live/completed
//	              counts, per-variant FCT quantiles, goodput, Jain
//	              fairness) from a flowstats.FlowTable
//	/healthz      liveness: {"status":"ok","uptime_s":...}
//	/debug/pprof  the standard runtime profiler endpoints
//
// The server reads shared state that the simulation writes — the
// Registry's atomic cells, the ProgressState's locked snapshot, the
// scheduler's batched global counters — so a scrape never blocks a
// publisher and costs nothing when no listener is attached: with no
// server started there are no extra goroutines, no sockets, and the
// sinks degrade to the same discipline as the null telemetry sink.
// All methods are nil-safe: a nil *Server starts nothing and closes
// cleanly, so call sites can thread an optional server through without
// branching.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"rrtcp/internal/sim"
	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
)

// Config wires the server's data sources. Any field may be nil; the
// corresponding endpoint then serves an empty-but-valid document.
type Config struct {
	// Registry is the live metrics store behind /metrics.
	Registry *telemetry.Registry
	// Progress is the live sweep state behind /progress.
	Progress *telemetry.ProgressState
	// Flows is the live flow-analytics table behind /flows.
	Flows *flowstats.FlowTable
}

// Server is the introspection HTTP server. Construct with New, then
// Start; the zero value and nil are inert.
type Server struct {
	cfg     Config
	srv     *http.Server
	ln      net.Listener
	started time.Time
}

// New returns an unstarted server over the given sources.
func New(cfg Config) *Server { return &Server{cfg: cfg} }

// Registry returns the server's metrics registry (may be nil).
func (s *Server) Registry() *telemetry.Registry {
	if s == nil {
		return nil
	}
	return s.cfg.Registry
}

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address — useful when the
// port was 0. Starting a nil server is a no-op returning "".
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	if s.ln != nil {
		return "", fmt.Errorf("obs: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.started = time.Now()
	// Slow-client protection: bound how long a connection may take to
	// present its request, so a stalled or malicious peer cannot pin a
	// handler goroutine forever. No WriteTimeout — /debug/pprof/profile
	// legitimately streams for its full ?seconds= window (30s default)
	// and a write deadline would truncate it.
	s.srv = &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.srv.Serve(ln) }() // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr reports the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// shutdownGrace bounds how long Close waits for in-flight scrapes to
// finish before cutting connections. Long enough for a /metrics or
// /progress response, deliberately shorter than a full pprof profile —
// shutdown should not wait 30s on a profiler.
const shutdownGrace = 3 * time.Second

// Close stops the server gracefully: the listener closes immediately
// (no new scrapes), in-flight handlers get shutdownGrace to finish,
// and only then are stragglers cut. Safe on nil and on a never-started
// server.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Grace expired with handlers still running (a long pprof
		// stream, a wedged client): fall back to the hard close.
		return s.srv.Close()
	}
	return nil
}

// mux assembles the endpoint routing. Handlers are registered on a
// private mux — never http.DefaultServeMux — so importing net/http/pprof
// machinery leaks nothing into other servers in the process.
func (s *Server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/progress", s.handleProgress)
	m.HandleFunc("/flows", s.handleFlows)
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r := s.cfg.Registry; r != nil {
		if err := r.WritePrometheus(w); err != nil {
			return // client went away mid-write; nothing to salvage
		}
	}
	writeProcessMetrics(w, time.Since(s.started).Seconds())
}

// writeProcessMetrics appends the self-observation families every
// scrape gets regardless of registry wiring: simulator totals, runtime
// memory/goroutine gauges, uptime.
func writeProcessMetrics(w http.ResponseWriter, uptime float64) {
	events, packets := sim.GlobalCounters()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE rrsim_sim_events_total counter\nrrsim_sim_events_total %d\n", events)
	fmt.Fprintf(w, "# TYPE rrsim_sim_packets_total counter\nrrsim_sim_packets_total %d\n", packets)
	fmt.Fprintf(w, "# TYPE rrsim_process_goroutines gauge\nrrsim_process_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE rrsim_process_heap_alloc_bytes gauge\nrrsim_process_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# TYPE rrsim_process_total_alloc_bytes_total counter\nrrsim_process_total_alloc_bytes_total %d\n", ms.TotalAlloc)
	fmt.Fprintf(w, "# TYPE rrsim_process_gc_runs_total counter\nrrsim_process_gc_runs_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# TYPE rrsim_process_uptime_seconds gauge\nrrsim_process_uptime_seconds %g\n", uptime)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cfg.Progress.Snapshot()) // nil-safe: zero snapshot
}

func (s *Server) handleFlows(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cfg.Flows.Report()) // nil-safe: zero report
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%g}\n", time.Since(s.started).Seconds())
}
